module pipesyn

go 1.22
