#!/bin/sh
# CI gate, Makefile-free form: static checks, full tests, then the race
# lane that continuously exercises the parallel synthesis scheduler.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./...
# Robustness lane: the cancellation, fault-injection, and goroutine-leak
# tests under the race detector (stalled evaluators, injected panics,
# deadline teardowns across the scheduler/synthesis/core stack).
go test -race -run 'Cancel|Fault|Leak' ./...
# Service lane: the full adcsynd job-manager/HTTP suite under the race
# detector (queue backpressure, single-flight dedup, NDJSON streaming,
# drain).
go test -race ./internal/service
# Persistence lane: journal replay, crash recovery, the terminal-job
# retention/leak regression (500-job soak), and the disk-cache
# durability tests under the race detector.
go test -race -run 'Recover|Retention|Retain|Journal|RetryAfter|Leak|CacheDisk' ./internal/service ./internal/synth
# Yield lane: the Monte-Carlo draw pool, the behavioral simulator, and
# the spectral metrics under the race detector — the determinism contract
# (per-draw seeds, order-independent mismatch streams) is what the
# concurrent draws lean on.
go test -race ./internal/yield ./internal/adcsim ./internal/dsp
# Cluster lane: the consistent-hash ring and the 3-node in-process
# cluster tests (routing/dedupe, peer cache fill, lease takeover, hop
# guard) under the race detector — the membership, replication, and
# proxy paths are all concurrent by construction.
go test -race ./internal/cluster
# End-to-end daemon smoke, all legs: boot → study over HTTP → cached
# rerun → /metrics → SIGTERM drain; the kill -9 crash-recovery leg (same
# -state-dir restart must finish the interrupted study); and the yield
# leg (200-draw mode:yield study bit-identical across daemons with
# different -workers, yield counters on /metrics).
./scripts/serve_smoke.sh
# Sharded-cluster smoke: three loopback nodes — cluster-wide dedupe via
# ring routing, a zero-evaluation peer-cache run on a cold node,
# bit-identical results vs a single-node daemon, and a kill -9 lease
# takeover completing the same job id on a survivor.
./scripts/cluster_smoke.sh
# Racing lane: the successive-halving scheduler (plan/promotion ranking),
# the quadratic-surrogate proposal loop, and the worker-count
# bit-identity tests at the synthesis, study, and service levels under
# the race detector — rung promotion is a cross-worker reduction, so the
# determinism contract and the data-race check are the same test.
go test -race ./internal/race
go test -race -run 'Race|Surrogate' ./internal/synth ./internal/core ./internal/service
# Sparse-solver lane: the sparse/dense bit-exactness, symbolic-coverage,
# modified-Newton determinism, ordered-pivot equivalence, and
# batched-evaluation equivalence tests under the race detector — the
# correctness contract of the fast path.
go test -race -run 'MatchesDense|SymbolicCovers|NewtonReuse|BitIdentical|Batch|OrderedPivot' \
    ./internal/la ./internal/sim ./internal/hybrid ./internal/synth
# Benchmark smoke: one iteration of the kernel and end-to-end benchmarks
# (including the batched-evaluator and full-study paths) so perf-path
# regressions (panics, singular matrices) surface in CI without paying
# for a full measurement run.
go test -bench=. -benchtime=1x -run='^$' ./internal/la ./internal/expr ./internal/sim ./internal/hybrid
go test -bench='^Benchmark(OP|TranSettle|TranSettleFullNewton|ACSweep|Study13b|Study13bRacing)$' -benchtime=1x -run='^$' .
# Advisory perf diff against the committed BENCH_kernels.json snapshot:
# prints >10% ns/op regressions but never fails the gate (shared CI
# boxes are noisy; BENCHDIFF_STRICT=1 makes it fatal locally).
BENCHDIFF_BENCHTIME=1x ./scripts/benchdiff.sh || true
