// Command adcsynd is the long-running synthesis service: the paper's
// batch flow (enumerate candidates, synthesize every distinct MDAC, rank
// by power) wrapped in an HTTP API with a bounded job queue, streamed
// per-stage progress, Prometheus metrics, and graceful drain.
//
// Usage:
//
//	adcsynd [-addr :8080] [-workers 0] [-queue 16] [-executors 1]
//	        [-cache-dir DIR] [-state-dir DIR] [-retain 256] [-retain-age 1h]
//	        [-job-timeout 0] [-race-default] [-drain-timeout 30s] [-pprof ADDR]
//	        [-node URL -peers URL,URL,... [-vnodes 64] [-lease 10s]
//	         [-heartbeat 1s] [-metrics-aggregate]]
//
// Endpoints:
//
//	POST   /v1/studies            submit {bits, fs, vref, mode, evals, ...}
//	                              mode "yield" adds {draws, minEnob}: a
//	                              Monte-Carlo sign-off job that synthesizes,
//	                              then samples mismatch draws — progress
//	                              streams as yield_chunk events, results
//	                              carry the ENOB/SNDR distributions + yield
//	GET    /v1/studies            list jobs (?state= filters; /v1/jobs alias)
//	GET    /v1/studies/{id}       status + result
//	GET    /v1/studies/{id}/events NDJSON progress stream
//	DELETE /v1/studies/{id}       cancel
//	GET    /metrics               Prometheus text format
//	GET    /healthz               liveness (always 200 while serving)
//	GET    /readyz                readiness (503 while draining or replaying)
//
// -race-default normalizes every submitted study onto the
// successive-halving racing scheduler (DESIGN.md §5.9) at admission, so
// the daemon's dedup keys, journal, and cluster routing all see the
// normalized request; in cluster mode set it identically on every node.
//
// Identical concurrent submissions (same content address over every
// study-shaping knob) share one execution. A full queue answers 429 with
// a Retry-After computed from the observed drain rate rather than
// queueing unboundedly. On SIGTERM/SIGINT the daemon stops admitting,
// rejects queued jobs, gives in-flight jobs -drain-timeout to finish,
// then cancels them and exits.
//
// Cluster mode (-node + -peers) shards the daemon with a consistent-hash
// ring: submits route to the key's ring owner (so identical studies
// dedupe cluster-wide), cache misses fill from peers, and each admitted
// job's claim is lease-replicated to a ring successor that re-enqueues
// it under the same id if the owner dies. Adds /v1/cluster/health,
// /v1/cluster/status, /v1/cluster/replicate, and /v1/cache/{key}.
// See DESIGN.md §5.8.
//
// With -state-dir set, every admitted job is journaled to an fsync'd
// append-only log: after a crash (kill -9 included) a restart with the
// same -state-dir re-enqueues the jobs that were queued or running and
// restores recent terminal results — recovered work replays from the
// synthesis cache, so it costs roughly one cache sweep. Terminal jobs
// are kept queryable in a ring bounded by -retain / -retain-age; older
// ones are evicted so the daemon's memory stays flat under sustained
// traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pipesyn/internal/cluster"
	"pipesyn/internal/service"
	"pipesyn/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "synthesis worker budget shared by all jobs (0 = all cores)")
	queueCap := flag.Int("queue", 16, "admission queue capacity (full queue answers 429)")
	executors := flag.Int("executors", 1, "studies running concurrently (each fans out on the shared workers)")
	cacheDir := flag.String("cache-dir", "", "content-addressed synthesis cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache entries (0 = default)")
	stateDir := flag.String("state-dir", "", "job journal directory for crash recovery (empty = in-memory jobs only)")
	retain := flag.Int("retain", 256, "terminal jobs kept queryable before eviction")
	retainAge := flag.Duration("retain-age", time.Hour, "terminal jobs older than this are evicted (0 = no age bound)")
	jobTimeout := flag.Duration("job-timeout", 0, "wall-clock budget per study (0 = unlimited)")
	raceDefault := flag.Bool("race-default", false, "run every submitted study under the successive-halving racing scheduler unless the request asked itself")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight jobs on shutdown")
	pprofAddr := flag.String("pprof", "", "loopback address for net/http/pprof, e.g. 127.0.0.1:6060 (empty = off)")
	nodeURL := flag.String("node", "", "this node's advertised URL in cluster mode, e.g. http://10.0.0.3:8080 (empty = single node)")
	peerURLs := flag.String("peers", "", "comma-separated peer URLs (cluster membership; self is implied)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per peer on the hash ring (0 = default 64)")
	lease := flag.Duration("lease", 10*time.Second, "job claim lease; a dead owner's jobs move after this expires")
	heartbeat := flag.Duration("heartbeat", time.Second, "peer health probe interval")
	metricsAggregate := flag.Bool("metrics-aggregate", false, "probe all peers at /metrics scrape time for fresh per-peer gauges")
	flag.Parse()

	*nodeURL = strings.TrimRight(strings.TrimSpace(*nodeURL), "/")
	if *nodeURL == "" && *peerURLs != "" {
		fatal(fmt.Errorf("-peers requires -node (this node's advertised URL)"))
	}

	// Profiling is served on its own loopback listener with a dedicated
	// mux: the debug surface never shares a port (or a handler tree) with
	// the public API, so exposing -addr does not expose pprof.
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listen: %w", err))
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := (&http.Server{Handler: mux}).Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "adcsynd: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "adcsynd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	// The cache is always on: request dedup across time is the service's
	// whole economy. -cache-dir adds the persistent tier.
	cache, err := synth.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fatal(err)
	}
	var journal *service.Journal
	if *stateDir != "" {
		if journal, err = service.OpenJournal(*stateDir); err != nil {
			fatal(err)
		}
		defer journal.Close()
	}
	man := service.NewManager(service.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		Executors:   *executors,
		JobTimeout:  *jobTimeout,
		DefaultRace: *raceDefault,
		Cache:       cache,
		Journal:     journal,
		Retain:      *retain,
		RetainAge:   *retainAge,
		NodeID:      *nodeURL,
		Lease:       *lease,
	})
	if journal != nil {
		stats, err := man.Recover()
		if err != nil {
			fatal(err)
		}
		if stats.Records > 0 || stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr,
				"adcsynd: journal replay: %d records (%d torn), %d jobs re-enqueued, %d unrecoverable, %d terminal restored\n",
				stats.Records, stats.Dropped, stats.Recovered, stats.Failed, stats.Restored)
		}
	}
	man.Start()
	local := service.NewServer(man)
	var handler http.Handler = local
	var node *cluster.Node
	if *nodeURL != "" {
		node, err = cluster.NewNode(cluster.Config{
			Self:             *nodeURL,
			Peers:            splitPeers(*peerURLs),
			VirtualNodes:     *vnodes,
			LeaseDuration:    *lease,
			HeartbeatEvery:   *heartbeat,
			AggregateMetrics: *metricsAggregate,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "adcsynd: "+format+"\n", args...)
			},
		}, man, cache, local)
		if err != nil {
			fatal(err)
		}
		// The cluster tier extends the cache: misses probe the key's ring
		// owner, fresh entries replicate there.
		cache.SetFill(node.CacheFill)
		cache.SetPush(node.CachePush)
		node.Start()
		handler = node
		fmt.Fprintf(os.Stderr, "adcsynd: cluster mode: %d peers, %d vnodes, lease %s\n",
			node.Ring().Len(), node.Ring().VNodes(), *lease)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adcsynd: listening on %s (workers=%d queue=%d executors=%d)\n",
		*addr, *workers, *queueCap, *executors)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "adcsynd: draining (grace %s)\n", *drainTimeout)
	man.Drain(*drainTimeout)
	if node != nil {
		// After the drain every job is terminal: release the replicas so
		// successors do not resurrect drained work, then stop the loops.
		node.Shutdown()
	}
	// Jobs are terminal and event streams closed; active handlers finish
	// within the shutdown grace.
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "adcsynd: drained cleanly")
}

// splitPeers parses the -peers list, tolerating blanks and trailing
// slashes (URLs are ring identities; a slash would split the keyspace).
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "adcsynd:", err)
	os.Exit(1)
}
