// Command adcsyn runs the full designer-driven topology optimization for a
// pipelined ADC: enumerate stage-resolution candidates, synthesize every
// distinct MDAC with hybrid evaluation, add sub-ADC power, and print the
// ranked configurations.
//
// Usage:
//
//	adcsyn -bits 13 -fs 40e6 [-mode hybrid|equation|simulation|yield]
//	       [-evals 180] [-restarts 1] [-retarget] [-seed 7] [-verify]
//	       [-race] [-race-rungs 2] [-race-eta 3] [-surrogate]
//	       [-draws 1000] [-min-enob 0]
//	       [-workers 0] [-cache-dir DIR] [-timeout DURATION] [-json]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -race turns on the successive-halving racing scheduler: every
// enumerated candidate is synthesized at a cheap low-fidelity rung, the
// top half (by feasibility, then cost) is promoted, and only the
// survivors get the full budget, warm-started from their own
// low-fidelity best sizing. -race-rungs and -race-eta shape the
// schedule. -surrogate interleaves deterministic quadratic-model sizing
// proposals with the annealer's random moves. Both knobs keep the
// bit-identical-for-any--workers contract.
//
// -mode yield is the Monte-Carlo sign-off lane: synthesize with the full
// hybrid evaluator, map the best design onto its process-variation error
// model, sample -draws mismatch realizations (each behaviorally sine-
// tested), and report the ENOB/SNDR distributions plus the yield against
// -min-enob (default bits−1). Draw seeds derive from the study content
// address and the draw index, so the analysis is bit-identical for any
// -workers setting.
//
// -workers bounds the parallel synthesis scheduler (0 = all cores,
// 1 = serial); every setting produces the same study bit for bit.
// -cache-dir enables the content-addressed synthesis cache backed by the
// given directory, so re-running the same study replays its design
// points without evaluator calls.
// -timeout bounds the wall-clock budget of the whole study (0 = none);
// on expiry — or on Ctrl-C — the run stops within one evaluation and
// exits non-zero with a partial-free state (nothing half-written to the
// cache).
// -json replaces the human-readable report with the study result as
// machine-readable JSON on stdout, in the same shape the adcsynd
// service answers with.
// -cpuprofile/-memprofile write pprof profiles of the optimization run
// for `go tool pprof`; the memory profile is taken after the run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"pipesyn/internal/core"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/report"
	"pipesyn/internal/sched"
	"pipesyn/internal/service"
	"pipesyn/internal/synth"
	"pipesyn/internal/yield"
)

func main() {
	bits := flag.Int("bits", 13, "target resolution, bits")
	fs := flag.Float64("fs", 40e6, "sample rate, Hz")
	vref := flag.Float64("vref", 1.0, "reference (full scale ±VRef), V")
	modeStr := flag.String("mode", "hybrid", "evaluation mode: hybrid, equation, simulation, or yield (Monte-Carlo sign-off)")
	draws := flag.Int("draws", 1000, "mode yield: Monte-Carlo process draws")
	minENOB := flag.Float64("min-enob", 0, "mode yield: pass/fail ENOB spec (0 = bits-1)")
	evals := flag.Int("evals", 180, "annealing evaluations per MDAC")
	pattern := flag.Int("pattern", 90, "pattern-search evaluations per MDAC")
	restarts := flag.Int("restarts", 1, "synthesis restarts per MDAC")
	retarget := flag.Bool("retarget", false, "chain warm starts across MDACs (faster, slightly suboptimal)")
	raceOn := flag.Bool("race", false, "successive-halving racing over the candidate portfolio")
	raceRungs := flag.Int("race-rungs", 0, "racing rungs (0 = default 2)")
	raceEta := flag.Int("race-eta", 0, "racing budget-reduction factor between rungs (0 = default 3)")
	surrogate := flag.Bool("surrogate", false, "interleave quadratic-surrogate sizing proposals with annealer moves")
	seed := flag.Int64("seed", 7, "random seed")
	verify := flag.Bool("verify", false, "run a behavioral sine test on the best configuration")
	jsonOut := flag.Bool("json", false, "emit the study result as JSON on stdout (same shape as the adcsynd service)")
	withSHA := flag.Bool("sha", false, "also synthesize the front-end sample-and-hold")
	workers := flag.Int("workers", 0, "parallel synthesis workers (0 = all cores, 1 = serial)")
	cacheDir := flag.String("cache-dir", "", "content-addressed synthesis cache directory (empty = no cache)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole study (0 = unlimited)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file (taken after the run)")
	flag.Parse()

	// Shared with the adcsynd API so CLI and service accept the same
	// mode vocabulary. Yield is not an evaluator mode: it synthesizes
	// with the full hybrid evaluator, then runs the Monte-Carlo lane.
	isYield := *modeStr == "yield"
	mode := hybrid.Hybrid
	var err error
	if !isYield {
		if mode, err = service.ParseMode(*modeStr); err != nil {
			fatal(err)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal exits via os.Exit, which skips defers; register the
		// flush so a failed run still leaves a usable profile.
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopCPU()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}
	var cache *synth.Cache
	if *cacheDir != "" {
		cache, err = synth.NewCache(0, *cacheDir)
		if err != nil {
			fatal(err)
		}
	}
	opts := core.Options{
		Bits: *bits, SampleRate: *fs, VRef: *vref, Mode: mode, Retarget: *retarget,
		Race: *raceOn, RaceRungs: *raceRungs, RaceEta: *raceEta,
		IncludeSHA: *withSHA, Workers: *workers,
		Synth: synth.Options{
			Seed: *seed, MaxEvals: *evals, PatternIter: *pattern,
			Restarts: *restarts, Cache: cache, Surrogate: *surrogate,
		},
	}
	var pool *sched.Pool
	if isYield {
		// One explicit pool serves both the synthesis fan-out and the
		// Monte-Carlo draws, so -workers bounds the whole run.
		pool = sched.NewPool(*workers)
		opts.Pool = pool
	}
	// Ctrl-C (or SIGTERM from a job runner) cancels the study; the engine
	// checks the context once per evaluation, so teardown is prompt even
	// mid-synthesis. An optional -timeout turns the same path into a
	// wall-clock budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	t0 := time.Now()
	st, err := core.Optimize(ctx, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fatal(fmt.Errorf("study exceeded the %s budget: %w", *timeout, err))
		case errors.Is(err, context.Canceled):
			fatal(fmt.Errorf("study interrupted: %w", err))
		}
		fatal(err)
	}
	var yres *yield.Result
	if isYield {
		spec := yield.Spec{Draws: *draws, MinENOB: *minENOB}
		model, err := yield.FromStudy(st, opts, spec)
		if err != nil {
			fatal(err)
		}
		yres, err = yield.Run(ctx, pool, model, core.StudyKey(opts), spec, yield.Hooks{})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fatal(fmt.Errorf("yield analysis interrupted: %w", err))
			}
			fatal(err)
		}
	}
	if *jsonOut {
		// Machine-readable path: the same wire type the adcsynd service
		// answers with, so CLI and daemon reports are interchangeable.
		out := service.EncodeStudy(st, mode, time.Since(t0))
		if isYield {
			out.Mode = "yield"
			out.Yield = yres
		}
		if *verify {
			m, err := core.BehavioralCheck(st, opts, 4096)
			if err != nil {
				fatal(err)
			}
			out.Behavioral = &service.BehavioralJSON{ENOB: m.ENOB, SNDRdB: m.SNDRdB, SFDRdB: m.SFDRdB}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("pipesyn topology optimization — %d-bit %.0f MSPS (%s mode)\n",
		*bits, *fs/1e6, mode)
	fmt.Printf("elapsed %s, %d evaluator calls, %d MDAC design points (%d paper classes)\n",
		time.Since(t0).Round(time.Millisecond), st.TotalEvals, len(st.MDACs), st.PaperMDACClasses)
	if st.Race != nil {
		fmt.Printf("racing: %d rungs, %d promotions, %d candidates pruned at low fidelity\n",
			st.Race.Rungs, st.Race.Promotions, st.Race.Pruned)
	}
	if st.SurrogateProposals > 0 {
		fmt.Printf("surrogate: %d proposals, %d accepted by the annealer\n",
			st.SurrogateProposals, st.SurrogateAccepted)
	}
	if cache != nil {
		cs := cache.Stats()
		fmt.Printf("synthesis cache: %d hits (%d from disk), %d misses in %s\n",
			st.CacheHits, cs.DiskHits, st.CacheMisses, *cacheDir)
	}
	fmt.Println()
	if err := report.Fig1(os.Stdout, st); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := report.Fig2(os.Stdout, []*core.Study{st}); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := report.MDACTable(os.Stdout, st); err != nil {
		fatal(err)
	}
	fmt.Printf("\nbest configuration: %s (%.3f mW over the leading stages)\n",
		st.Best.Config, st.Best.TotalPower*1e3)
	if st.SHA != nil {
		fmt.Printf("front-end S/H: %.3f mW (shared by every candidate) → full front end %.3f mW\n",
			st.SHA.Metrics.Power*1e3, st.FullPower(st.Best)*1e3)
	}

	if *verify {
		m, err := core.BehavioralCheck(st, opts, 4096)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("behavioral check: ENOB %.2f bits (SNDR %.1f dB, SFDR %.1f dB)\n",
			m.ENOB, m.SNDRdB, m.SFDRdB)
	}

	if isYield {
		fmt.Printf("\nMonte-Carlo sign-off: %d process draws against ENOB >= %.2f\n",
			yres.Draws, yres.MinENOB)
		fmt.Printf("yield %.1f%% (%d/%d pass)\n", yres.Yield*100, yres.Pass, yres.Draws)
		fmt.Printf("ENOB  min %.2f  p05 %.2f  p50 %.2f  p95 %.2f  max %.2f  mean %.2f\n",
			yres.ENOB.Min, yres.ENOB.P05, yres.ENOB.P50, yres.ENOB.P95, yres.ENOB.Max, yres.ENOB.Mean)
		fmt.Printf("SNDR  min %.1f  p05 %.1f  p50 %.1f  p95 %.1f  max %.1f  mean %.1f dB\n",
			yres.SNDRdB.Min, yres.SNDRdB.P05, yres.SNDRdB.P50, yres.SNDRdB.P95, yres.SNDRdB.Max, yres.SNDRdB.Mean)
	}
}

// stopCPU flushes the CPU profile; fatal calls it because os.Exit skips
// the deferred flush in main.
var stopCPU = func() {}

func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adcsyn: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // report live allocations, not GC noise
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "adcsyn: memprofile:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adcsyn:", err)
	stopCPU()
	os.Exit(1)
}
