// Command spicelet is a miniature circuit simulator over this project's
// MNA engine: it reads a SPICE-flavoured deck and runs the requested
// analysis.
//
// Usage:
//
//	spicelet -op deck.sp
//	spicelet -ac "1k:10G" -out vout deck.sp
//	spicelet -tran "1n:5u" -out vout deck.sp
//	spicelet -noise "1k:10G" -out vout deck.sp (output thermal noise)
//	spicelet -tf -in vin -out vout deck.sp     (symbolic DPI/SFG transfer function)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"pipesyn/internal/dpi"
	"pipesyn/internal/netlist"
	"pipesyn/internal/sim"
	"pipesyn/internal/units"
)

func main() {
	opFlag := flag.Bool("op", false, "DC operating point")
	acFlag := flag.String("ac", "", "AC sweep range, e.g. 1k:10G")
	noiseFlag := flag.String("noise", "", "noise integration band, e.g. 1k:10G")
	tranFlag := flag.String("tran", "", "transient step:stop, e.g. 1n:5u")
	tfFlag := flag.Bool("tf", false, "symbolic transfer function via DPI/SFG + Mason")
	inNode := flag.String("in", "", "input node for -tf (defaults to the AC source)")
	outNode := flag.String("out", "", "output node for -ac/-tran/-tf")
	points := flag.Int("ppd", 20, "AC points per decade")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("expected one deck file, got %d args", flag.NArg()))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ckt, err := netlist.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	switch {
	case *tfFlag:
		runTF(ckt, *inNode, *outNode)
	case *noiseFlag != "":
		runNoise(ckt, *noiseFlag, *outNode, *points)
	case *acFlag != "":
		runAC(ckt, *acFlag, *outNode, *points)
	case *tranFlag != "":
		runTran(ckt, *tranFlag, *outNode)
	default:
		*opFlag = true
		fallthrough
	case *opFlag:
		runOP(ckt)
	}
}

func runOP(ckt *netlist.Circuit) {
	res, err := sim.OP(ckt, sim.DCOpts{})
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(res.V))
	for n := range res.V {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("node voltages:")
	for _, n := range names {
		fmt.Printf("  v(%s) = %s\n", n, units.Format(res.V[n], "V"))
	}
	if len(res.MOS) > 0 {
		fmt.Println("transistors:")
		mnames := make([]string, 0, len(res.MOS))
		for n := range res.MOS {
			mnames = append(mnames, n)
		}
		sort.Strings(mnames)
		for _, n := range mnames {
			op := res.MOS[n]
			fmt.Printf("  %s: %s id=%s gm=%s gds=%s\n", n, op.Region,
				units.Format(op.ID, "A"), units.Format(op.GM, "S"), units.Format(op.GDS, "S"))
		}
	}
	fmt.Printf("supply power: %s\n", units.Format(res.SupplyPower(ckt), "W"))
	fmt.Printf("(%d Newton iterations)\n", res.Iterations)
}

func runAC(ckt *netlist.Circuit, span, out string, ppd int) {
	if out == "" {
		fatal(fmt.Errorf("-ac requires -out node"))
	}
	lo, hi, err := parseSpan(span)
	if err != nil {
		fatal(err)
	}
	op, err := sim.OP(ckt, sim.DCOpts{})
	if err != nil {
		fatal(err)
	}
	ac, err := sim.AC(ckt, op, sim.ACOpts{FStart: lo, FStop: hi, PointsPerDecade: ppd})
	if err != nil {
		fatal(err)
	}
	h, err := ac.Transfer(out)
	if err != nil {
		fatal(err)
	}
	mag, ph := sim.GainPhase(h)
	fmt.Println("freq,mag_db,phase_deg")
	for i, f := range ac.Freqs {
		fmt.Printf("%g,%.4f,%.3f\n", f, mag[i], ph[i])
	}
	m, err := ac.Characterize(out)
	if err == nil {
		fmt.Fprintf(os.Stderr, "dc gain %.2f dB, f3dB %s, unity %s, PM %.1f°\n",
			m.DCGainDB, units.Format(m.F3DBHz, "Hz"), units.Format(m.UnityGainHz, "Hz"), m.PhaseMargin)
	}
}

func runNoise(ckt *netlist.Circuit, span, out string, ppd int) {
	if out == "" {
		fatal(fmt.Errorf("-noise requires -out node"))
	}
	lo, hi, err := parseSpan(span)
	if err != nil {
		fatal(err)
	}
	op, err := sim.OP(ckt, sim.DCOpts{})
	if err != nil {
		fatal(err)
	}
	res, err := sim.Noise(ckt, op, sim.NoiseOpts{
		Output: out, FStart: lo, FStop: hi, PointsPerDecade: ppd,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("freq,psd_v2_per_hz")
	for i, f := range res.Freqs {
		fmt.Printf("%g,%.6g\n", f, res.PSD[i])
	}
	fmt.Fprintf(os.Stderr, "integrated output noise: %s RMS\n", units.Format(res.RMS(), "V"))
	fmt.Fprintln(os.Stderr, "per-element contributions (RMS):")
	names := make([]string, 0, len(res.ByElement))
	for n := range res.ByElement {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", n, units.Format(math.Sqrt(res.ByElement[n]), "V"))
	}
}

func runTran(ckt *netlist.Circuit, span, out string) {
	if out == "" {
		fatal(fmt.Errorf("-tran requires -out node"))
	}
	step, stop, err := parseSpan(span)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Tran(ckt, sim.TranOpts{TStep: step, TStop: stop})
	if err != nil {
		fatal(err)
	}
	w, err := res.Waveform(out)
	if err != nil {
		fatal(err)
	}
	fmt.Println("time,v")
	for i, t := range res.T {
		fmt.Printf("%g,%.6g\n", t, w[i])
	}
}

func runTF(ckt *netlist.Circuit, in, out string) {
	if out == "" {
		fatal(fmt.Errorf("-tf requires -out node"))
	}
	an, err := dpi.Build(ckt, dpi.Options{Input: in, IncludeCaps: true})
	if err != nil {
		fatal(err)
	}
	tf, err := an.TransferFunction(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("H(%s→%s) = %s\n", an.Input, out, tf)
	fmt.Println("\nloops:")
	for _, l := range an.Graph.DescribeLoops() {
		fmt.Println(" ", l)
	}
}

func parseSpan(s string) (float64, float64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("span %q is not lo:hi", s)
	}
	a, err := units.Parse(lo)
	if err != nil {
		return 0, 0, err
	}
	b, err := units.Parse(hi)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spicelet:", err)
	os.Exit(1)
}
