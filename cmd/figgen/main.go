// Command figgen regenerates the paper's figures from scratch:
//
//	figgen -fig 1          stage power per 13-bit candidate (Fig. 1)
//	figgen -fig 2          total power for 10–13 bit candidates (Fig. 2)
//	figgen -fig 3          optimum-configuration rules (Fig. 3)
//	figgen -fig retarget   cold vs warm-start synthesis (setup-time claim)
//	figgen -fig hybrid     evaluation-mode accuracy/speed comparison (§3)
//	figgen -fig all        everything
//
// Use -csv to emit machine-readable data alongside the text rendering,
// and -quick for a low-budget smoke run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pipesyn/internal/core"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/report"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/synth"
	"pipesyn/internal/units"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 1, 2, 3, retarget, hybrid, all")
	quick := flag.Bool("quick", false, "small synthesis budgets (smoke run)")
	csv := flag.Bool("csv", false, "emit CSV after each figure")
	seed := flag.Int64("seed", 7, "random seed")
	workers := flag.Int("workers", 0, "parallel synthesis workers (0 = all cores, 1 = serial)")
	cacheDir := flag.String("cache-dir", "", "content-addressed synthesis cache directory (empty = no cache)")
	flag.Parse()

	budget := synth.Options{Seed: *seed, MaxEvals: 180, PatternIter: 90, Restarts: 2}
	if *quick {
		budget = synth.Options{Seed: *seed, MaxEvals: 40, PatternIter: 20}
	}
	if *cacheDir != "" {
		cache, err := synth.NewCache(0, *cacheDir)
		if err != nil {
			fatal(err)
		}
		budget.Cache = cache
	}
	g := &generator{budget: budget, csv: *csv, quick: *quick, workers: *workers}

	switch *fig {
	case "1":
		g.fig1()
	case "2":
		g.fig2and3(false)
	case "3":
		g.fig2and3(true)
	case "retarget":
		g.retarget()
	case "hybrid":
		g.hybridCompare()
	case "all":
		g.fig1()
		g.fig2and3(true)
		g.retarget()
		g.hybridCompare()
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

type generator struct {
	budget  synth.Options
	csv     bool
	quick   bool
	workers int

	study13 *core.Study // cached across figures
}

func (g *generator) opts(bits int) core.Options {
	return core.Options{
		Bits: bits, SampleRate: 40e6, Mode: hybrid.Hybrid, Synth: g.budget,
		Workers: g.workers,
	}
}

func (g *generator) run13() *core.Study {
	if g.study13 == nil {
		st, err := core.Optimize(context.Background(), g.opts(13))
		if err != nil {
			fatal(err)
		}
		g.study13 = st
	}
	return g.study13
}

func (g *generator) fig1() {
	t0 := time.Now()
	st := g.run13()
	if err := report.Fig1(os.Stdout, st); err != nil {
		fatal(err)
	}
	if err := report.MDACTable(os.Stdout, st); err != nil {
		fatal(err)
	}
	fmt.Printf("(generated in %s)\n\n", time.Since(t0).Round(time.Millisecond))
	if g.csv {
		t := figure1CSV(st)
		if err := t.CSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func figure1CSV(st *core.Study) *report.Table {
	t := &report.Table{Header: []string{"config", "stage", "bits", "mdac_w", "subadc_w", "total_w", "feasible"}}
	for _, c := range st.Candidates {
		for _, s := range c.Stages {
			t.Add(c.Config.String(), fmt.Sprint(s.Stage), fmt.Sprint(s.Bits),
				fmt.Sprint(s.MDACPower), fmt.Sprint(s.SubADCPower),
				fmt.Sprint(s.Total), fmt.Sprint(s.Feasible))
		}
	}
	return t
}

func (g *generator) fig2and3(withRules bool) {
	t0 := time.Now()
	bits := []int{10, 11, 12, 13}
	if g.quick {
		bits = []int{10, 13}
	}
	var studies []*core.Study
	for _, k := range bits {
		if k == 13 {
			studies = append(studies, g.run13())
			continue
		}
		st, err := core.Optimize(context.Background(), g.opts(k))
		if err != nil {
			fatal(err)
		}
		studies = append(studies, st)
	}
	if err := report.Fig2(os.Stdout, studies); err != nil {
		fatal(err)
	}
	if withRules {
		fmt.Println()
		if err := report.Fig3(os.Stdout, core.DeriveRules(studies)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("(generated in %s)\n\n", time.Since(t0).Round(time.Millisecond))
	if g.csv {
		t := &report.Table{Header: []string{"bits", "config", "total_w", "feasible"}}
		for _, st := range studies {
			for _, c := range st.Candidates {
				t.Add(fmt.Sprint(st.Bits), c.Config.String(),
					fmt.Sprint(c.TotalPower), fmt.Sprint(c.AllFeasible))
			}
		}
		if err := t.CSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// retarget reproduces the paper's setup-time observation: the first
// synthesis is expensive, retargeting to a neighbouring spec is cheap.
func (g *generator) retarget() {
	t0 := time.Now()
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 12, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		fatal(err)
	}
	spec := specs[1]
	cold, err := synth.Synthesize(context.Background(), spec, proc, synth.Options{
		Seed: 21, MaxEvals: g.budget.MaxEvals, PatternIter: g.budget.PatternIter, Mode: hybrid.Hybrid,
	})
	if err != nil {
		fatal(err)
	}
	// Retarget: 20% faster sampling for the same stage.
	spec2 := spec
	spec2.GBWMin *= 1.2
	spec2.SRMin *= 1.2
	warm, err := synth.Synthesize(context.Background(), spec2, proc, synth.Options{
		Seed: 22, MaxEvals: g.budget.MaxEvals, PatternIter: g.budget.PatternIter,
		Mode: hybrid.Hybrid, WarmStart: cold.Sizing,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("Setup-time experiment — cold synthesis vs warm retargeting (§4 text)")
	t := &report.Table{Header: []string{"run", "evals", "evals-to-feasible", "power", "feasible"}}
	t.Add("cold (first block)", fmt.Sprint(cold.Evals), fmt.Sprint(cold.EvalsToFeasible),
		units.Format(cold.Metrics.Power, "W"), fmt.Sprint(cold.Feasible))
	t.Add("warm (retarget)", fmt.Sprint(warm.Evals), fmt.Sprint(warm.EvalsToFeasible),
		units.Format(warm.Metrics.Power, "W"), fmt.Sprint(warm.Feasible))
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if cold.Evals > 0 {
		fmt.Printf("retarget effort ratio: %.1f×\n", float64(cold.Evals)/float64(warm.Evals))
	}
	fmt.Printf("(generated in %s)\n\n", time.Since(t0).Round(time.Millisecond))
}

// hybridCompare reproduces the §3 argument: hybrid evaluation matches the
// simulation answer at a fraction of the cost; equations are faster still
// but less faithful.
func (g *generator) hybridCompare() {
	t0 := time.Now()
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 12, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		fatal(err)
	}
	sp := specs[1]
	sz := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad, CFeed: sp.CFeed,
		Gain: sp.GainMin, Swing: sp.SwingMin,
	})
	fmt.Println("Evaluation-mode comparison (§3) — one MDAC candidate, three evaluators")
	t := &report.Table{Header: []string{"mode", "time/eval", "TF leg", "loop gain", "crossover", "PM", "settle"}}
	reps := 5
	for _, mode := range []hybrid.Mode{hybrid.SimOnly, hybrid.Hybrid, hybrid.EquationOnly} {
		se := hybrid.NewStageEvaluator(sp, proc, mode)
		var m hybrid.Metrics
		start := time.Now()
		for i := 0; i < reps; i++ {
			m, err = se.Evaluate(context.Background(), sz)
			if err != nil {
				fatal(err)
			}
		}
		per := time.Since(start) / time.Duration(reps)
		t.Add(mode.String(), per.Round(time.Microsecond).String(),
			m.TFTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", m.LoopGain0),
			units.Format(m.CrossoverHz, "Hz"),
			fmt.Sprintf("%.1f°", m.PhaseMargin),
			units.Format(m.SettleTime, "s"))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("(generated in %s)\n\n", time.Since(t0).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figgen:", err)
	os.Exit(1)
}
