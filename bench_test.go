// Benchmark harness: one benchmark per figure/claim in the paper's
// evaluation section. Each benchmark regenerates its figure from scratch
// (synthesis included), writes the rendered text into figures/, and
// reports the headline numbers as custom metrics. Run with
//
//	go test -bench=. -benchmem
//
// The studies are memoized across benchmarks within one process so Fig. 2
// and Fig. 3 reuse the Fig. 1 work, exactly as the paper's flow shares
// MDAC syntheses across configurations.
package pipesyn_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"pipesyn/internal/core"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/report"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/subadc"
	"pipesyn/internal/synth"
)

// benchBudget is the per-MDAC synthesis budget used by the figure
// regeneration. Two restarts keep candidate ordering stable against
// annealing noise at a few seconds per MDAC.
func benchBudget(seed int64) synth.Options {
	return synth.Options{Seed: seed, MaxEvals: 150, PatternIter: 80, Restarts: 2}
}

func benchOpts(bits int) core.Options {
	return core.Options{
		Bits: bits, SampleRate: 40e6, Mode: hybrid.Hybrid, Synth: benchBudget(7),
	}
}

var (
	studyOnce sync.Once
	studies   map[int]*core.Study
	studyErr  error
)

// allStudies runs the 10–13 bit sweep once per process.
func allStudies(b *testing.B) map[int]*core.Study {
	b.Helper()
	studyOnce.Do(func() {
		studies = map[int]*core.Study{}
		for _, k := range []int{10, 11, 12, 13} {
			st, err := core.Optimize(context.Background(), benchOpts(k))
			if err != nil {
				studyErr = err
				return
			}
			studies[k] = st
		}
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studies
}

func writeFigure(b *testing.B, name string, render func(f *os.File) error) {
	b.Helper()
	if err := os.MkdirAll("figures", 0o755); err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(filepath.Join("figures", name))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1StagePower13Bit regenerates Fig. 1: per-stage power of the
// seven 13-bit candidates. Headline metrics: total power of the best
// candidate and the first-stage power spread across m₁ ∈ {2,3,4}.
func BenchmarkFig1StagePower13Bit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := allStudies(b)[13]
		writeFigure(b, "fig1_stage_power_13bit.txt", func(f *os.File) error {
			if err := report.Fig1(f, st); err != nil {
				return err
			}
			return report.MDACTable(f, st)
		})
		b.ReportMetric(st.Best.TotalPower*1e3, "mW_best")
		// First-stage power per first-stage resolution.
		firstPower := map[int]float64{}
		for _, c := range st.Candidates {
			firstPower[c.Config[0]] = c.Stages[0].Total
		}
		b.ReportMetric(firstPower[2]*1e3, "mW_stage1_m2")
		b.ReportMetric(firstPower[3]*1e3, "mW_stage1_m3")
		b.ReportMetric(firstPower[4]*1e3, "mW_stage1_m4")
	}
}

// BenchmarkFig2TotalPower regenerates Fig. 2: total leading-stage power of
// every candidate for 10–13 bit targets. Headline metric: best-candidate
// power per resolution.
func BenchmarkFig2TotalPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := allStudies(b)
		ordered := []*core.Study{all[10], all[11], all[12], all[13]}
		writeFigure(b, "fig2_total_power.txt", func(f *os.File) error {
			return report.Fig2(f, ordered)
		})
		for _, st := range ordered {
			b.ReportMetric(st.Best.TotalPower*1e3, fmt.Sprintf("mW_best_%dbit", st.Bits))
		}
	}
}

// BenchmarkFig3Rules regenerates Fig. 3: the optimum-configuration rules
// derived from the sweep. Headline metrics: the first/last stage bits of
// every optimum.
func BenchmarkFig3Rules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := allStudies(b)
		ordered := []*core.Study{all[10], all[11], all[12], all[13]}
		rules := core.DeriveRules(ordered)
		writeFigure(b, "fig3_rules.txt", func(f *os.File) error {
			return report.Fig3(f, rules)
		})
		for _, r := range rules {
			b.ReportMetric(float64(r.FirstBits), fmt.Sprintf("m1_%dbit", r.Bits))
			b.ReportMetric(float64(r.LastBits), fmt.Sprintf("mLast_%dbit", r.Bits))
		}
	}
}

// BenchmarkOptimizeSerialVsParallel measures the parallel study engine
// against the serial baseline on the same 10-bit hybrid-mode study: the
// DAG scheduler fans the independent MDAC design points (and restarts)
// across cores, and the studies are bit-identical, so the time ratio of
// the two sub-benchmarks is the pure scheduling speedup (≈ min(cores,
// points) on a multicore host; ≈ 1 on a single core). The third
// sub-benchmark replays the study through the content-addressed cache
// and reports its near-zero evaluator calls.
func BenchmarkOptimizeSerialVsParallel(b *testing.B) {
	parOpts := func() core.Options {
		return core.Options{
			Bits: 10, SampleRate: 40e6, Mode: hybrid.Hybrid,
			Synth: synth.Options{Seed: 7, MaxEvals: 60, PatternIter: 30, Restarts: 2},
		}
	}
	var serialBest, parallelBest float64
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := parOpts()
			opts.Workers = 1
			st, err := core.Optimize(context.Background(), opts)
			if err != nil {
				b.Fatal(err)
			}
			serialBest = st.Best.TotalPower
			b.ReportMetric(float64(st.TotalEvals), "evals")
		}
	})
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := core.Optimize(context.Background(), parOpts())
			if err != nil {
				b.Fatal(err)
			}
			parallelBest = st.Best.TotalPower
			b.ReportMetric(float64(st.TotalEvals), "evals")
		}
	})
	if serialBest != 0 && parallelBest != 0 && serialBest != parallelBest {
		b.Fatalf("parallel study diverged: %.9g vs serial %.9g", parallelBest, serialBest)
	}
	b.Run("warm-cache", func(b *testing.B) {
		cache, err := synth.NewCache(0, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		prime := parOpts()
		prime.Synth.Cache = cache
		if _, err := core.Optimize(context.Background(), prime); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := parOpts()
			opts.Synth.Cache = cache
			st, err := core.Optimize(context.Background(), opts)
			if err != nil {
				b.Fatal(err)
			}
			if st.TotalEvals != 0 {
				b.Fatalf("warm run spent %d evaluator calls", st.TotalEvals)
			}
			b.ReportMetric(float64(st.CacheHits), "cache_hits")
			b.ReportMetric(float64(st.TotalEvals), "evals")
		}
	})
}

// BenchmarkRetargetColdVsWarm reproduces the §4 setup-time claim: a warm-
// started retarget of a neighbouring spec reaches feasibility with far
// fewer evaluator calls than the first (cold) synthesis.
func BenchmarkRetargetColdVsWarm(b *testing.B) {
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 12, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	spec := specs[1]
	for i := 0; i < b.N; i++ {
		cold, err := synth.Synthesize(context.Background(), spec, proc, synth.Options{
			Seed: 21, MaxEvals: 150, PatternIter: 80, Mode: hybrid.Hybrid,
		})
		if err != nil {
			b.Fatal(err)
		}
		retargeted := spec
		retargeted.GBWMin *= 1.2
		retargeted.SRMin *= 1.2
		warm, err := synth.Synthesize(context.Background(), retargeted, proc, synth.Options{
			Seed: 22, MaxEvals: 150, PatternIter: 80, Mode: hybrid.Hybrid,
			WarmStart: cold.Sizing,
		})
		if err != nil {
			b.Fatal(err)
		}
		writeFigure(b, "retarget_cold_vs_warm.txt", func(f *os.File) error {
			fmt.Fprintf(f, "cold: evals=%d evals-to-feasible=%d power=%.4g W feasible=%v\n",
				cold.Evals, cold.EvalsToFeasible, cold.Metrics.Power, cold.Feasible)
			fmt.Fprintf(f, "warm: evals=%d evals-to-feasible=%d power=%.4g W feasible=%v\n",
				warm.Evals, warm.EvalsToFeasible, warm.Metrics.Power, warm.Feasible)
			return nil
		})
		b.ReportMetric(float64(cold.Evals), "evals_cold")
		b.ReportMetric(float64(warm.Evals), "evals_warm")
		if warm.EvalsToFeasible > 0 && cold.EvalsToFeasible > 0 {
			b.ReportMetric(float64(cold.EvalsToFeasible)/float64(warm.EvalsToFeasible), "feasible_speedup")
		}
	}
}

// BenchmarkEvalHybridVsSimVsEq reproduces the §3 evaluation comparison:
// per-candidate evaluation time for the three evaluator modes, plus the
// accuracy of the cheap modes against the swept-AC reference.
func BenchmarkEvalHybridVsSimVsEq(b *testing.B) {
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 12, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	sp := specs[1]
	sz := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad, CFeed: sp.CFeed,
		Gain: sp.GainMin, Swing: sp.SwingMin,
	})
	ref, err := hybrid.NewStageEvaluator(sp, proc, hybrid.SimOnly).Evaluate(context.Background(), sz)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []hybrid.Mode{hybrid.SimOnly, hybrid.Hybrid, hybrid.EquationOnly} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			se := hybrid.NewStageEvaluator(sp, proc, mode)
			var m hybrid.Metrics
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err = se.Evaluate(context.Background(), sz)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			relErr := func(got, want float64) float64 {
				if want == 0 {
					return 0
				}
				d := (got - want) / want
				if d < 0 {
					d = -d
				}
				return d
			}
			b.ReportMetric(relErr(m.CrossoverHz, ref.CrossoverHz)*100, "%err_crossover")
			b.ReportMetric(relErr(m.LoopGain0, ref.LoopGain0)*100, "%err_loopgain")
			b.ReportMetric(relErr(m.SettleTime, ref.SettleTime)*100, "%err_settle")
			b.ReportMetric(float64(m.TFTime.Nanoseconds()), "ns_tf_leg")
		})
	}
}

// BenchmarkBehavioralVerification regenerates the cross-layer check: the
// best synthesized 13-bit configuration run through the behavioral
// converter with its synthesized static errors and kT/C noise.
func BenchmarkBehavioralVerification(b *testing.B) {
	st := allStudies(b)[13]
	for i := 0; i < b.N; i++ {
		m, err := core.BehavioralCheck(st, benchOpts(13), 4096)
		if err != nil {
			b.Fatal(err)
		}
		writeFigure(b, "behavioral_13bit.txt", func(f *os.File) error {
			_, err := fmt.Fprintf(f, "config %s: SNDR %.2f dB, SFDR %.2f dB, ENOB %.2f\n",
				st.Best.Config, m.SNDRdB, m.SFDRdB, m.ENOB)
			return err
		})
		b.ReportMetric(m.ENOB, "ENOB")
	}
}

// BenchmarkSubADCPowerCurve is the ablation behind the enumeration bound
// mᵢ ≤ 4: comparator-bank power grows exponentially with stage resolution.
func BenchmarkSubADCPowerCurve(b *testing.B) {
	proc := pdk.TSMC025()
	for i := 0; i < b.N; i++ {
		curve, err := subADCCurve(proc)
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range curve {
			b.ReportMetric(p*1e3, fmt.Sprintf("mW_%dbit_bank", j+2))
		}
	}
}

func subADCCurve(proc *pdk.Process) ([]float64, error) {
	return subadc.PowerCurve(proc, 40e6, 1.0, 2, 5)
}

// BenchmarkTopologyAblation is the design-choice ablation DESIGN.md calls
// out: for each stage of the 13-bit 4-3-2 pipeline, compare the designer-
// equation power of the two-stage Miller OTA against the single-stage
// telescopic cascode. The telescopic undercuts the Miller wherever its
// limited gain suffices (later stages); the front stage needs the
// two-stage amplifier — which is why the synthesis flow carries both.
func BenchmarkTopologyAblation(b *testing.B) {
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 13, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{4, 3, 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, sp := range specs {
			blk := opamp.BlockSpec{
				GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad,
				CFeed: sp.CFeed, Gain: sp.GainMin, Swing: sp.SwingMin,
			}
			miller := opamp.Analyze(proc, opamp.InitialSizing(proc, blk), sp.CLoad+sp.CFeed)
			tele := opamp.AnalyzeTelescopic(proc, opamp.InitialTelescopic(proc, blk), sp.CLoad+sp.CFeed)
			b.ReportMetric(miller.Power*1e3, fmt.Sprintf("mW_miller_s%d", sp.Stage))
			b.ReportMetric(tele.Power*1e3, fmt.Sprintf("mW_tele_s%d", sp.Stage))
			// Telescopic feasibility marker: gain headroom vs requirement.
			b.ReportMetric(tele.A0/sp.GainMin, fmt.Sprintf("teleGainMargin_s%d", sp.Stage))
		}
		// Full hybrid synthesis of the last listed stage with both cells:
		// where the telescopic has gain headroom it should win on power.
		last := specs[len(specs)-1]
		for _, topo := range []opamp.Topology{opamp.Miller, opamp.Telescopic} {
			res, err := synth.Synthesize(context.Background(), last, proc, synth.Options{
				Seed: 31, MaxEvals: 80, PatternIter: 40,
				Mode: hybrid.Hybrid, Topology: topo,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Metrics.Power*1e3, fmt.Sprintf("mW_synth_%s", topo))
		}
	}
}
