// Package pipesyn reproduces "Designer-Driven Topology Optimization for
// Pipelined Analog to Digital Converters" (Chien, Chen, Lou, Ma, Rutenbar,
// Mukherjee — DATE 2005) as a self-contained Go library: a circuit
// simulator (DC/AC/transient MNA), a DPI/SFG + Mason's-rule symbolic
// analyzer, a square-law 0.25 µm device model, switched-capacitor MDAC and
// flash sub-ADC generators, a simulated-annealing cell synthesizer, a
// behavioral pipelined-ADC verifier, and the designer-driven topology
// optimization flow that ties them together.
//
// The public surface lives under internal/ packages by design — this
// module is an experiment harness; the binaries in cmd/ and the programs
// in examples/ are the supported entry points:
//
//	cmd/adcsyn    full topology optimization for a target resolution
//	cmd/figgen    regenerate every figure of the paper
//	cmd/spicelet  the underlying mini circuit simulator as a CLI
//
// The benchmark suite at the repository root (bench_test.go) regenerates
// each of the paper's figures and records the headline numbers; see
// EXPERIMENTS.md for paper-versus-measured notes.
package pipesyn
