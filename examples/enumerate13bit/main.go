// Enumerate13bit walks through the paper's §2 candidate enumeration: the
// constraint set, the seven 13-bit configurations, their implied full
// pipelines, and the eleven distinct MDACs they share.
package main

import (
	"fmt"
	"log"

	"pipesyn/internal/enum"
)

func main() {
	cs := enum.Constraints{}
	cs.FillDefaults()
	fmt.Printf("constraints: %d ≤ mᵢ ≤ %d, mᵢ ≥ mᵢ₊₁, leading stages to %d bits\n\n",
		cs.MinStageBits, cs.MaxStageBits, cs.LeadingBits)

	cands, err := enum.Candidates(13, enum.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the %d candidates for a 13-bit converter:\n", len(cands))
	for _, c := range cands {
		full, err := c.WithTail(13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s leading R=%d bits, full pipeline %s (%d stages)\n",
			c, c.Resolution(), full, len(full))
	}

	keys := enum.DistinctMDACs(cands)
	fmt.Printf("\ndistinct MDAC design classes across all candidates: %d (the paper's \"eleven MDACs\")\n", len(keys))
	for _, k := range keys {
		fmt.Printf("  stage %d, %d-bit\n", k.Stage, k.Bits)
	}

	fmt.Println("\nper-stage residue gains of 4-3-2:")
	cfg := enum.Config{4, 3, 2}
	for i := range cfg {
		fmt.Printf("  stage %d: %d raw bits → interstage gain %d×, cumulative resolution %d bits\n",
			i+1, cfg[i], cfg.Gain(i), cfg.ResolutionAfter(i+1))
	}
}
