// Masons demonstrates the DPI/SFG symbolic-analysis flow of the paper's
// §3 on a two-stage amplifier: build the signal-flow graph from the
// netlist, list its loops, derive the symbolic transfer function with
// Mason's rule, then bind DC-extracted small-signal values and print the
// numeric poles, gain and bandwidth — the "hybrid equation+simulation"
// data path in miniature.
package main

import (
	"fmt"
	"log"
	"math"

	"pipesyn/internal/dpi"
	"pipesyn/internal/netlist"
	"pipesyn/internal/sim"
	"pipesyn/internal/units"
)

const deck = `* two-stage amplifier (VCCS macromodel of each stage)
VIN in 0 DC 0 AC 1
* stage 1: gm1 into r1 ∥ c1
G1 0 n1 in 0 1m
R1 n1 0 100k
C1 n1 0 50f
* stage 2: gm2 into r2 ∥ c2, with Miller cap cc bridging
G2 0 out n1 0 4m
R2 out 0 50k
C2 out 0 1p
CC n1 out 80f
`

func main() {
	ckt, err := netlist.Parse(deck)
	if err != nil {
		log.Fatal(err)
	}
	an, err := dpi.Build(ckt, dpi.Options{IncludeCaps: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signal-flow graph loops (DPI form):")
	for _, l := range an.Graph.DescribeLoops() {
		fmt.Println(" ", l)
	}

	tf, err := an.TransferFunction("out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsymbolic transfer function (Mason's rule):")
	fmt.Println("  H(s) =", tf)
	fmt.Println("  free symbols:", tf.Vars())

	// Bind numeric values — for R/C/G elements they come straight from
	// the netlist; a transistor circuit would take them from sim.OP.
	op, err := sim.OP(ckt, sim.DCOpts{})
	if err != nil {
		log.Fatal(err)
	}
	env, err := dpi.Env(ckt, op, dpi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Numeric path: compile the symbolic expression and sweep it with
	// complex arithmetic — the same robust route the hybrid evaluator
	// takes (converting a Mason expression to polynomial coefficients is
	// exact on paper but loses double precision on wide-band networks).
	prog, vars, err := tf.Compile()
	if err != nil {
		log.Fatal(err)
	}
	sIdx := prog.VarIndex("s")
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		if i != sIdx {
			vals[i] = complex(env[name], 0)
		}
	}
	evalAt := func(f float64) complex128 {
		vals[sIdx] = complex(0, 2*math.Pi*f)
		v, err := prog.EvalC(vals)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	dcGain := real(evalAt(1)) // far below the first pole
	fmt.Printf("\nnumeric transfer function: DC gain %.1f (%.1f dB)\n",
		dcGain, units.DB(math.Abs(dcGain)))
	// Dominant pole: the −3 dB frequency; unity-gain: |H| = 1 crossing.
	f3db, funity := 0.0, 0.0
	prevMag := math.Abs(dcGain)
	for f := 100.0; f < 100e9; f *= 1.07 {
		mag := math.Hypot(real(evalAt(f)), imag(evalAt(f)))
		if f3db == 0 && mag < math.Abs(dcGain)/math.Sqrt2 {
			f3db = f
		}
		if funity == 0 && prevMag >= 1 && mag < 1 {
			funity = f
		}
		prevMag = mag
	}
	fmt.Printf("dominant pole (−3 dB): %s\n", units.Format(f3db, "Hz"))
	fmt.Printf("unity-gain frequency:  %s\n", units.Format(funity, "Hz"))

	// Cross-check against the AC simulator: the two must agree, because
	// they describe the same linear network.
	ac, err := sim.AC(ckt, op, sim.ACOpts{FStart: 1e2, FStop: 100e9, PointsPerDecade: 20})
	if err != nil {
		log.Fatal(err)
	}
	met, err := ac.Characterize("out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AC-simulated unity-gain frequency %s (symbolic vs simulated match)\n",
		units.Format(met.UnityGainHz, "Hz"))
}
