// Quickstart: find the minimum-power stage-resolution configuration for a
// 13-bit 40 MSPS pipelined ADC, the paper's headline experiment, with a
// small synthesis budget so it finishes in a few seconds.
package main

import (
	"context"
	"fmt"
	"log"

	"pipesyn/internal/core"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/synth"
)

func main() {
	study, err := core.Optimize(context.Background(), core.Options{
		Bits:       13,
		SampleRate: 40e6,
		Mode:       hybrid.Hybrid,
		Synth:      synth.Options{Seed: 1, MaxEvals: 60, PatternIter: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("13-bit 40 MSPS pipelined ADC — %d candidates, %d MDAC design points\n",
		len(study.Candidates), len(study.MDACs))
	for _, c := range study.Candidates {
		marker := " "
		if c.Config.String() == study.Best.Config.String() {
			marker = "*"
		}
		fmt.Printf("%s %-14s %6.2f mW (feasible: %v)\n",
			marker, c.Config, c.TotalPower*1e3, c.AllFeasible)
	}
	best := study.Best.Config
	fmt.Printf("\noptimum: %s — a %d-bit MSB stage with small trailing stages,\n"+
		"the configuration family the paper's Fig. 2 identifies for 13 bits\n",
		best, best[0])
}
