// Mdacsynth sizes the first-stage 4-bit MDAC of a 13-bit 40 MSPS pipeline:
// spec translation, hybrid synthesis, and the resulting transistor sizes
// and audited performance.
package main

import (
	"context"
	"fmt"
	"log"

	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/synth"
	"pipesyn/internal/units"
)

func main() {
	adc := stagespec.ADCSpec{Bits: 13, SampleRate: 40e6, VRef: 1.0}
	specs, err := stagespec.Translate(adc, enum.Config{4, 3, 2})
	if err != nil {
		log.Fatal(err)
	}
	sp := specs[0]
	fmt.Println("block spec for stage 1 (4-bit) of the 13-bit 40 MSPS 4-3-2 pipeline:")
	fmt.Printf("  gain %g×, β=%.3f, Cs=%s, Cf=%s, CL=%s\n",
		sp.Gain, sp.Beta, units.Format(sp.CSample, "F"),
		units.Format(sp.CFeed, "F"), units.Format(sp.CLoad, "F"))
	fmt.Printf("  settle to %.2g in %s, GBW ≥ %s, SR ≥ %s, gain ≥ %.0f, swing ≥ ±%.2f V\n",
		sp.SettleTol, units.Format(sp.TSettle+sp.TSlew, "s"),
		units.Format(sp.GBWMin, "Hz"), units.Format(sp.SRMin, "V/s"),
		sp.GainMin, sp.SwingMin)

	proc := pdk.TSMC025()
	res, err := synth.Synthesize(context.Background(), sp, proc, synth.Options{
		Seed: 3, MaxEvals: 150, PatternIter: 80, Mode: hybrid.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	s, ok := res.Sizing.(opamp.MillerSizing)
	if !ok {
		log.Fatalf("unexpected topology %s", res.Sizing.Topology())
	}
	fmt.Printf("\nsynthesized two-stage Miller OTA (%d evaluations, feasible: %v):\n", res.Evals, res.Feasible)
	fmt.Printf("  input pair   W/L = %s / %s\n", units.Format(s.W1, "m"), units.Format(s.L1, "m"))
	fmt.Printf("  mirror load  W/L = %s / %s\n", units.Format(s.W3, "m"), units.Format(s.L3, "m"))
	fmt.Printf("  second stage W/L = %s / %s\n", units.Format(s.W5, "m"), units.Format(s.L5, "m"))
	fmt.Printf("  IRef=%s (tail ×%.1f, out ×%.1f), Cc=%s, Rz=%s\n",
		units.Format(s.IRef, "A"), s.KTail, s.K2,
		units.Format(s.CC, "F"), units.Format(s.RZ, "Ω"))
	m := res.Metrics
	fmt.Printf("\naudited performance (hybrid evaluation):\n")
	fmt.Printf("  power %s, amp gain %.0f, loop crossover %s, PM %.1f°\n",
		units.Format(m.Power, "W"), m.AmpGain, units.Format(m.CrossoverHz, "Hz"), m.PhaseMargin)
	fmt.Printf("  settled in %s (window %s), static error %.2g\n",
		units.Format(m.SettleTime, "s"), units.Format(sp.TSettle+sp.TSlew, "s"), m.StaticError)
	if len(res.Report.Failures) > 0 {
		fmt.Println("  outstanding violations:", res.Report.Failures)
	}
}
