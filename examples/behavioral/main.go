// Behavioral runs the 13-bit 4-3-2… pipeline through the behavioral
// converter model: an ideal sine test, then the same test with realistic
// non-idealities (kT/C noise, comparator offsets inside the redundancy
// margin, finite loop gain), showing what digital correction absorbs and
// what it cannot.
package main

import (
	"fmt"
	"log"
	"math"

	"pipesyn/internal/adcsim"
	"pipesyn/internal/dsp"
	"pipesyn/internal/enum"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func main() {
	const (
		bits = 13
		fs   = 40e6
		n    = 4096
	)
	full, err := enum.Config{4, 3, 2}.WithTail(bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %s (%d stages, %d bits)\n\n", full, len(full), full.Resolution())

	run := func(name string, configure func(c *adcsim.Converter) error) {
		conv, err := adcsim.New(full, 1.0, 99)
		if err != nil {
			log.Fatal(err)
		}
		if configure != nil {
			if err := configure(conv); err != nil {
				log.Fatal(err)
			}
		}
		fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
		samples := conv.SineTest(fs, fSig, n, 0.95)
		m, err := dsp.SineTestMetrics(samples, fs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s SNDR %6.2f dB  SFDR %6.2f dB  ENOB %5.2f\n",
			name, m.SNDRdB, m.SFDRdB, m.ENOB)
	}

	run("ideal stages", nil)

	run("comparator offsets (in margin)", func(c *adcsim.Converter) error {
		for i := range c.Stages {
			st := c.Stages[i]
			st.CompOffsetRMS = 1.0 / 64 // ≈ VRef/64, well inside ±VRef/2G
			if err := c.SetStage(i, st); err != nil {
				return err
			}
		}
		return nil
	})

	run("kT/C noise per the budget", func(c *adcsim.Converter) error {
		proc := pdk.TSMC025()
		adc := stagespec.ADCSpec{Bits: bits, SampleRate: fs, VRef: 1}
		specs, err := stagespec.Translate(adc, enum.Config{4, 3, 2})
		if err != nil {
			return err
		}
		for i := range specs {
			st := c.Stages[i]
			st.NoiseRMS = math.Sqrt(proc.KTOverC(specs[i].CSample))
			if err := c.SetStage(i, st); err != nil {
				return err
			}
		}
		return nil
	})

	run("0.3% stage-1 gain error (fatal)", func(c *adcsim.Converter) error {
		st := c.Stages[0]
		st.GainError = 0.003
		return c.SetStage(0, st)
	})

	// INL/DNL of a shorter pipeline via the ramp-histogram method.
	short, _ := enum.Config{3, 2}.WithTail(8)
	conv, err := adcsim.New(short, 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	hist := conv.RampHistogram(16)
	inl, dnl, err := dsp.INLDNL(hist[:len(hist)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-bit %s ramp test: peak INL %.3f LSB, peak DNL %.3f LSB\n",
		short, dsp.PeakAbs(inl), dsp.PeakAbs(dnl))
}
