package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1},
		{"-3.5", -3.5},
		{"2.5u", 2.5e-6},
		{"2.5U", 2.5e-6},
		{"10pF", 10e-12},
		{"40MEG", 40e6},
		{"40meg", 40e6},
		{"40M", 40e-3}, // SPICE: M is milli
		{"1.5e-3", 1.5e-3},
		{"1E3", 1e3},
		{"3k3", 3e3}, // trailing digits after suffix are unit-ish, ignored
		{"100n", 100e-9},
		{"0.18u", 0.18e-6},
		{"5V", 5},
		{"2.2kOhm", 2.2e3},
		{"1f", 1e-15},
		{"7t", 7e12},
		{"1g", 1e9},
		{"+4", 4},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			continue
		}
		if !approx(got, c.want, 1e-12) {
			t.Errorf("Parse(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "--1", "1..2", "  ", "1 2", "1?"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %g, want error", in, v)
		}
	}
}

func TestParseExponentVsUnit(t *testing.T) {
	// "1e" should not eat 'e' as exponent start when no digits follow.
	// Here 'e' is treated as a unit letter (no scale), value 1.
	v, err := Parse("1e")
	if err != nil {
		t.Fatalf("Parse(1e): %v", err)
	}
	if v != 1 {
		t.Fatalf("Parse(1e) = %g, want 1", v)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5e-6, "2.5uF"},
		{0, "0F"},
		{1e3, "1kF"},
		{40e6, "40MEGF"},
	}
	for _, c := range cases {
		if got := Format(c.in, "F"); got != c.want {
			t.Errorf("Format(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatParseProperty(t *testing.T) {
	f := func(mant float64, exp int8) bool {
		if math.IsNaN(mant) || math.IsInf(mant, 0) {
			return true
		}
		// Constrain to a representable engineering range.
		e := int(exp)%12 - 6
		v := math.Mod(math.Abs(mant), 999) * math.Pow10(e)
		if v == 0 {
			return true
		}
		s := Format(v, "")
		got, err := Parse(s)
		return err == nil && approx(got, v, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDB(t *testing.T) {
	if got := DB(10); !approx(got, 20, 1e-12) {
		t.Errorf("DB(10) = %g, want 20", got)
	}
	if got := FromDB(40); !approx(got, 100, 1e-12) {
		t.Errorf("FromDB(40) = %g, want 100", got)
	}
	if got := PowerDB(100); !approx(got, 20, 1e-12) {
		t.Errorf("PowerDB(100) = %g, want 20", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		v := math.Abs(x)
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) || v > 1e150 {
			return true
		}
		return approx(FromDB(DB(v)), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse(bad) did not panic")
		}
	}()
	MustParse("not-a-number")
}

func TestParseMilAndMixedSuffixes(t *testing.T) {
	v, err := Parse("2mil")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 50.8e-6, 1e-9) {
		t.Fatalf("2mil = %g, want 50.8µ", v)
	}
	// "m" right after digits is milli even when followed by unit letters.
	v, err = Parse("3mV")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 3e-3, 1e-12) {
		t.Fatalf("3mV = %g", v)
	}
}
