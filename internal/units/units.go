// Package units provides SPICE-style engineering-notation parsing and
// formatting for physical quantities, plus small helpers for decibel
// conversion that the rest of the simulator and synthesis stack share.
//
// The grammar follows classic SPICE conventions: a decimal number followed
// by an optional scale suffix (f, p, n, u, m, k, meg, g, t) and optional
// trailing unit letters which are ignored ("10pF" parses as 10e-12).
// Suffix matching is case-insensitive; "M" means milli and "MEG" means 1e6,
// exactly as in Berkeley SPICE.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// scale maps a lower-cased SPICE suffix to its multiplier. Longer suffixes
// must be matched before their prefixes (meg before m, mil before m).
var scales = []struct {
	suffix string
	mult   float64
}{
	{"meg", 1e6},
	{"mil", 25.4e-6},
	{"t", 1e12},
	{"g", 1e9},
	{"k", 1e3},
	{"m", 1e-3},
	{"u", 1e-6},
	{"n", 1e-9},
	{"p", 1e-12},
	{"f", 1e-15},
	{"a", 1e-18},
}

// Parse converts a SPICE-style value string such as "2.5u", "40MEG", "10pF"
// or "1.5e-3" into a float64. Trailing unit letters after a recognized
// suffix are ignored, as are unit letters with no suffix ("5V" == 5).
func Parse(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty value")
	}
	// Split the leading numeric part from the suffix.
	i := 0
	seenDigit := false
	for i < len(t) {
		c := t[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			i++
		case c == '.' || c == '+' || c == '-':
			i++
		case (c == 'e' || c == 'E') && i+1 < len(t) && isExpTail(t[i+1:]):
			i++
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, fmt.Errorf("units: %q has no numeric part", s)
	}
	num := t[:i]
	rest := strings.ToLower(t[i:])
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number %q in %q: %v", num, s, err)
	}
	if rest == "" {
		return v, nil
	}
	for _, sc := range scales {
		if strings.HasPrefix(rest, sc.suffix) {
			return v * sc.mult, nil
		}
	}
	// No scale suffix: the remainder must be unit letters only.
	for _, c := range rest {
		if !((c >= 'a' && c <= 'z') || c == 'Ω' || c == '/' || c == '^' || (c >= '0' && c <= '9')) {
			return 0, fmt.Errorf("units: unrecognized suffix %q in %q", rest, s)
		}
	}
	return v, nil
}

// isExpTail reports whether s looks like the tail of a float exponent:
// an optional sign followed by a digit. It distinguishes "1e3" (exponent)
// from "1e" with a trailing unit we should not eat.
func isExpTail(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '+' || s[0] == '-' {
		s = s[1:]
	}
	return len(s) > 0 && s[0] >= '0' && s[0] <= '9'
}

// MustParse is Parse for programmer-supplied literals; it panics on error.
func MustParse(s string) float64 {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Format renders v with an engineering suffix and the given unit, choosing
// the scale so that the mantissa lies in [1, 1000) where possible:
// Format(2.5e-6, "F") == "2.5uF".
func Format(v float64, unit string) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return trimFloat(v) + unit
	}
	type step struct {
		mult   float64
		suffix string
	}
	steps := []step{
		{1e12, "T"}, {1e9, "G"}, {1e6, "MEG"}, {1e3, "k"}, {1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	a := math.Abs(v)
	for _, st := range steps {
		if a >= st.mult {
			return trimFloat(v/st.mult) + st.suffix + unit
		}
	}
	return trimFloat(v/1e-15) + "f" + unit
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return s
}

// DB converts a magnitude ratio to decibels (20·log10).
func DB(ratio float64) float64 { return 20 * math.Log10(ratio) }

// FromDB converts decibels to a magnitude ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/20) }

// PowerDB converts a power ratio to decibels (10·log10).
func PowerDB(ratio float64) float64 { return 10 * math.Log10(ratio) }
