// Package eqmodel is the pure equation-based ADC power model — the
// methodology of Hershenson's geometric-programming pipeline synthesis
// (paper reference [5]) reproduced as a baseline. Every stage's MDAC is
// "sized" with the designer's closed-form two-stage OTA equations and
// costed analytically, with no simulator in the loop; the flash sub-ADC
// uses the same comparator equations as the hybrid flow. The paper's
// argument is that this style is fast but trades away accuracy; the
// comparison benchmarks quantify that on our stack.
package eqmodel

import (
	"fmt"

	"pipesyn/internal/enum"
	"pipesyn/internal/opamp"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/subadc"
)

// StagePower is the analytic power breakdown of one pipeline stage.
type StagePower struct {
	Stage  int
	Bits   int
	MDAC   float64 // residue amplifier static power, W
	SubADC float64 // comparator bank power, W
	Total  float64
	Sizing opamp.MillerSizing // the equation sizing behind the number
}

// Evaluate costs a candidate configuration with equations only.
func Evaluate(adc stagespec.ADCSpec, cfg enum.Config) ([]StagePower, error) {
	specs, err := stagespec.Translate(adc, cfg)
	if err != nil {
		return nil, err
	}
	adc.FillDefaults()
	out := make([]StagePower, len(specs))
	for i, sp := range specs {
		sz := opamp.InitialSizing(adc.Process, opamp.BlockSpec{
			GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad,
			CFeed: sp.CFeed, Gain: sp.GainMin, Swing: sp.SwingMin,
		})
		eq := opamp.Analyze(adc.Process, sz, sp.CLoad+sp.CFeed)
		bank, err := subadc.Design(sp, adc.Process, adc.SampleRate)
		if err != nil {
			return nil, fmt.Errorf("eqmodel: stage %d sub-ADC: %w", sp.Stage, err)
		}
		out[i] = StagePower{
			Stage:  sp.Stage,
			Bits:   sp.Bits,
			MDAC:   eq.Power,
			SubADC: bank.TotalPower,
			Total:  eq.Power + bank.TotalPower,
			Sizing: sz,
		}
	}
	return out, nil
}

// TotalPower sums the leading-stage powers of a candidate.
func TotalPower(stages []StagePower) float64 {
	t := 0.0
	for _, s := range stages {
		t += s.Total
	}
	return t
}

// Rank evaluates every candidate for a K-bit converter and returns them
// ordered by ascending total power — the equation-based answer to the
// paper's topology question.
type Ranked struct {
	Config enum.Config
	Stages []StagePower
	Total  float64
}

// Rank orders all enumeration candidates by analytic power.
func Rank(adc stagespec.ADCSpec, cs enum.Constraints) ([]Ranked, error) {
	cands, err := enum.Candidates(adc.Bits, cs)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, 0, len(cands))
	for _, cfg := range cands {
		st, err := Evaluate(adc, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{Config: cfg, Stages: st, Total: TotalPower(st)})
	}
	// Insertion sort by total power (n is tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total < out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
