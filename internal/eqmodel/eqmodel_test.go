package eqmodel

import (
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/stagespec"
)

func adc(bits int) stagespec.ADCSpec {
	return stagespec.ADCSpec{Bits: bits, SampleRate: 40e6, VRef: 1}
}

func TestEvaluate432(t *testing.T) {
	stages, err := Evaluate(adc(13), enum.Config{4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages", len(stages))
	}
	for _, s := range stages {
		if s.MDAC <= 0 || s.SubADC <= 0 {
			t.Fatalf("stage %d: non-positive power %+v", s.Stage, s)
		}
		if s.Total != s.MDAC+s.SubADC {
			t.Fatalf("stage %d: total mismatch", s.Stage)
		}
	}
	// First stage dominates the budget (tightest settling + biggest cap).
	if stages[0].MDAC < stages[2].MDAC {
		t.Fatalf("stage-1 MDAC %g should exceed stage-3 %g", stages[0].MDAC, stages[2].MDAC)
	}
	total := TotalPower(stages)
	// Plausible envelope for a 13-bit 40 MSPS 0.25 µm pipeline front end:
	// milliwatts to tens of milliwatts.
	if total < 1e-3 || total > 200e-3 {
		t.Fatalf("total = %g W, outside plausible envelope", total)
	}
}

func TestRankCoversAllCandidates(t *testing.T) {
	ranked, err := Rank(adc(13), enum.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 7 {
		t.Fatalf("ranked %d candidates, want 7", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Total < ranked[i-1].Total {
			t.Fatal("not sorted ascending")
		}
	}
}

// The equation model must reproduce the qualitative Fig. 1 observation:
// first-stage MDAC power is within a small factor across first-stage
// resolutions (2, 3, 4 bits), because accuracy and noise — not raw stage
// resolution — set the cost of the first stage.
func TestFirstStagePowerWeaklyDependsOnResolution(t *testing.T) {
	var p [3]float64
	for i, cfg := range []enum.Config{{2, 2, 2, 2, 2, 2}, {3, 3, 3}, {4, 4}} {
		st, err := Evaluate(adc(13), cfg)
		if err != nil {
			t.Fatal(err)
		}
		p[i] = st[0].MDAC
	}
	hi, lo := p[0], p[0]
	for _, v := range p[1:] {
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	if hi/lo > 3 {
		t.Fatalf("first-stage power spread too wide: %v", p)
	}
}

// Later stages must get cheaper — the paper's premise for truncating the
// enumeration at 7 bits of leading resolution.
func TestStagePowerDecays(t *testing.T) {
	st, err := Evaluate(adc(13), enum.Config{2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st[len(st)-1].Total > st[0].Total/2 {
		t.Fatalf("last stage %g not well below first %g", st[len(st)-1].Total, st[0].Total)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(adc(13), enum.Config{}); err == nil {
		t.Fatal("expected invalid-config error")
	}
	if _, err := Evaluate(stagespec.ADCSpec{Bits: 13}, enum.Config{4, 3, 2}); err == nil {
		t.Fatal("expected sample-rate error")
	}
	if _, err := Rank(stagespec.ADCSpec{Bits: 1, SampleRate: 1}, enum.Constraints{}); err == nil {
		t.Fatal("expected enumeration error")
	}
}
