package mdac

import (
	"fmt"

	"pipesyn/internal/netlist"
	"pipesyn/internal/opamp"
)

// TwoPhaseCircuit builds the complete switched-capacitor MDAC with its
// clocked switches, operating on the standard two-phase cycle:
//
//	φ1 (sample):  Cs bottom plate ← vin,  summing node ← VCM,
//	              Cf shorted (amplifier reset)
//	φ2 (hold):    Cs bottom plate ← vdac, amplifier closes the loop
//	              through Cf
//
// Charge conservation then gives out = VCM + (Cs/Cf)·(vin − vdac), the
// stage's residue with gain Cs/Cf = 2^(m−1). The hold-phase evaluation
// circuits (HoldCircuit/LoopCircuit) abstract the φ1 machinery away for
// synthesis speed; this netlist exists to prove, at transistor level,
// that the sampled-data behaviour the behavioral model assumes actually
// emerges from the switch timing. vin and vdac are DC levels.
func (st Stage) TwoPhaseCircuit(vin, vdac float64) (*netlist.Circuit, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	p := st.Process
	c := netlist.New(fmt.Sprintf("mdac stage %d (%d-bit) two-phase", st.Spec.Stage, st.Spec.Bits))
	p.Attach(c)
	c.MustAdd(&netlist.Element{
		Name: "vdd", Type: netlist.VSource, Nodes: []string{"vdd", "0"},
		Src: &netlist.Source{DC: p.VDD},
	})
	c.MustAdd(&netlist.Element{
		Name: "vcm", Type: netlist.VSource, Nodes: []string{opamp.PortInP, "0"},
		Src: &netlist.Source{DC: VCM},
	})
	c.MustAdd(&netlist.Element{
		Name: "vin", Type: netlist.VSource, Nodes: []string{"vin", "0"},
		Src: &netlist.Source{DC: vin},
	})
	c.MustAdd(&netlist.Element{
		Name: "vdac", Type: netlist.VSource, Nodes: []string{"vdac", "0"},
		Src: &netlist.Source{DC: vdac},
	})
	st.Sizing.Build(c, p, AmpPrefix)

	// Capacitor network: Cs from the summing node to its bottom plate,
	// Cf from output to summing node.
	c.MustAdd(&netlist.Element{
		Name: "cs", Type: netlist.Capacitor,
		Nodes: []string{NodeSum, "csbot"}, Value: st.Spec.CSample,
	})
	c.MustAdd(&netlist.Element{
		Name: "cf", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, NodeSum}, Value: st.Spec.CFeed,
	})
	c.MustAdd(&netlist.Element{
		Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, "0"}, Value: st.Spec.CLoad,
	})

	sw := func(name, a, b string, phase int) {
		c.MustAdd(&netlist.Element{
			Name: name, Type: netlist.Switch, Nodes: []string{a, b},
			Model:  "swideal",
			Params: map[string]float64{"phase": float64(phase)},
		})
	}
	// φ1: sample vin, pin the summing node to VCM, reset Cf.
	sw("s1", "csbot", "vin", 1)
	sw("s2", NodeSum, opamp.PortInP, 1) // summing node to the VCM rail
	sw("s3", NodeOut, NodeSum, 1)       // short Cf: amplifier reset
	// φ2: transfer charge against the DAC level.
	sw("s4", "csbot", "vdac", 2)
	return c, nil
}

// TwoPhaseExpected returns the ideal settled output of the two-phase
// stage for the given input and DAC levels.
func (st Stage) TwoPhaseExpected(vin, vdac float64) float64 {
	return VCM + st.Spec.CSample/st.Spec.CFeed*(vin-vdac)
}
