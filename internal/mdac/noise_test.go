package mdac

import (
	"testing"

	"pipesyn/internal/sim"
)

// Cross-layer check of the kT/C budgeting: the simulated output noise of
// a biased hold-phase stage, referred to the stage input, must stay
// within the same order as the kT/C noise of its sampling capacitor —
// the designer-equation budget stagespec allocates. (The hold loop adds
// amplifier channel noise on top of the capacitor network, so the bound
// is a factor, not an equality.)
func TestHoldCircuitNoiseNearKTC(t *testing.T) {
	st := testStage(t)
	hold, err := st.HoldCircuit()
	if err != nil {
		t.Fatal(err)
	}
	op, err := sim.OP(hold, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Noise(hold, op, sim.NoiseOpts{
		Output: NodeOut, FStart: 1e3, FStop: 100e9, PointsPerDecade: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	outNoise := res.Integrated
	inReferred := outNoise / (st.Spec.Gain * st.Spec.Gain)
	ktc := 1.380649e-23 * 300 / st.Spec.CSample
	if inReferred <= 0 {
		t.Fatal("no noise measured")
	}
	ratio := inReferred / ktc
	if ratio > 30 || ratio < 0.05 {
		t.Fatalf("input-referred hold noise %g V² vs kT/Cs %g V² (ratio %g) — budget broken",
			inReferred, ktc, ratio)
	}
	// The amplifier transistors must be accounted among the contributors.
	foundMOS := false
	for name := range res.ByElement {
		if len(name) > 2 && name[:2] == "a." {
			foundMOS = true
		}
	}
	if !foundMOS {
		t.Fatal("no amplifier noise contribution recorded")
	}
}
