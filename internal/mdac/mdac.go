// Package mdac builds the transistor-level test circuits for one pipeline
// stage's multiplying DAC: the hold-phase closed loop (amplifier with
// capacitive feedback, driven by a worst-case residue step) used for DC
// bias, power and transient settling, and the broken-loop netlist used for
// symbolic loop-gain extraction via DPI/SFG. Element names are shared
// between the two netlists so small-signal values extracted from the
// closed-loop operating point bind directly into the open-loop transfer
// function — the data flow at the heart of the paper's hybrid evaluation.
package mdac

import (
	"fmt"

	"pipesyn/internal/netlist"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

// AmpPrefix namespaces the amplifier devices inside generated netlists.
const AmpPrefix = "a."

// Node names used by the generated circuits.
const (
	NodeOut  = "out"
	NodeSum  = "inn" // summing node (amplifier inverting input)
	NodeStep = "vb"  // bottom plate of the sampling capacitor
	NodeFB   = "fb"  // summing node replica in the broken-loop netlist
	NodeDrv  = "inn" // driven amplifier input in the broken-loop netlist
)

// VCM is the input/output common-mode bias. With an NMOS-input two-stage
// amplifier on a 3.3 V rail, 1.4 V keeps the pair, the tail sink and both
// output devices comfortably saturated.
const VCM = 1.4

// Stage couples a block spec with an amplifier sizing candidate. Any
// opamp.Amp topology rides the same circuits: the builders only rely on
// the shared port convention.
type Stage struct {
	Spec    stagespec.MDACSpec
	Sizing  opamp.Amp
	Process *pdk.Process
}

// StepDelay is when the residue step fires in transient tests.
const StepDelay = 2e-9

// StepRise is the step source's rise time.
const StepRise = 50e-12

// HoldCircuit builds the hold-phase closed loop:
//
//	vstep ──Cs──●──────┐
//	            │      │ (inn, summing node)
//	           Cf      ▷── amplifier ──●── out
//	            └──────┴───────────────┘
//	                                  CL to ground
//
// A large bias resistor parallels Cf so the amplifier finds a unity-
// feedback DC operating point (the standard SPICE trick for SC stages).
// Its value must be large against the feedback impedance at signal
// frequencies but small against the solver's gmin shunts (1 GΩ sits three
// decades below 1/gmin and three above 1/(2π·Cf·fs)). The step source
// carries both the transient PULSE (amplitude spec.StepMax/Gain, which
// produces a full-reference step at the output) and a unit AC magnitude so
// the same netlist serves closed-loop AC analysis.
func (st Stage) HoldCircuit() (*netlist.Circuit, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	p := st.Process
	c := netlist.New(fmt.Sprintf("mdac stage %d (%d-bit) hold phase", st.Spec.Stage, st.Spec.Bits))
	p.Attach(c)
	c.MustAdd(&netlist.Element{
		Name: "vdd", Type: netlist.VSource, Nodes: []string{"vdd", "0"},
		Src: &netlist.Source{DC: p.VDD},
	})
	c.MustAdd(&netlist.Element{
		Name: "vcm", Type: netlist.VSource, Nodes: []string{opamp.PortInP, "0"},
		Src: &netlist.Source{DC: VCM},
	})
	st.Sizing.Build(c, p, AmpPrefix)
	c.MustAdd(&netlist.Element{
		Name: "cf", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, NodeSum}, Value: st.Spec.CFeed,
	})
	c.MustAdd(&netlist.Element{
		Name: "rb", Type: netlist.Resistor,
		Nodes: []string{NodeOut, NodeSum}, Value: 1e9,
	})
	c.MustAdd(&netlist.Element{
		Name: "cs", Type: netlist.Capacitor,
		Nodes: []string{NodeSum, NodeStep}, Value: st.Spec.CSample,
	})
	stepV := st.Spec.StepMax / st.Spec.Gain
	src := &netlist.Source{DC: VCM, ACMag: 1, Kind: netlist.SrcPulse}
	src.Pulse.V1 = VCM
	src.Pulse.V2 = VCM + stepV
	src.Pulse.TD = StepDelay
	src.Pulse.TR = StepRise
	src.Pulse.TF = StepRise
	src.Pulse.PW = 1 // single step within any realistic window
	src.Pulse.PER = 2
	c.MustAdd(&netlist.Element{
		Name: "vstep", Type: netlist.VSource, Nodes: []string{NodeStep, "0"}, Src: src,
	})
	c.MustAdd(&netlist.Element{
		Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, "0"}, Value: st.Spec.CLoad,
	})
	return c, nil
}

// LoopCircuit builds the broken-loop netlist for loop-gain extraction: the
// amplifier's inverting input is driven directly (AC source), while the
// feedback network hangs off the output and terminates at a replica
// summing node "fb" loaded by the sampling capacitor and cin (the
// amplifier's input capacitance, passed in from the closed-loop operating
// point so the loop sees its real load). No bias resistor is present: this
// netlist is only analyzed symbolically with small-signal values imported
// from the closed-loop operating point, and omitting it keeps the DC loop
// gain reading at its true SC value β·A0. The loop gain is
// T(s) = −V(fb)/V(inn).
func (st Stage) LoopCircuit(cin float64) (*netlist.Circuit, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	p := st.Process
	c := netlist.New(fmt.Sprintf("mdac stage %d (%d-bit) loop gain", st.Spec.Stage, st.Spec.Bits))
	p.Attach(c)
	c.MustAdd(&netlist.Element{
		Name: "vdd", Type: netlist.VSource, Nodes: []string{"vdd", "0"},
		Src: &netlist.Source{DC: p.VDD},
	})
	c.MustAdd(&netlist.Element{
		Name: "vcm", Type: netlist.VSource, Nodes: []string{opamp.PortInP, "0"},
		Src: &netlist.Source{DC: VCM},
	})
	st.Sizing.Build(c, p, AmpPrefix)
	// Drive the inverting input directly.
	c.MustAdd(&netlist.Element{
		Name: "vx", Type: netlist.VSource, Nodes: []string{NodeDrv, "0"},
		Src: &netlist.Source{DC: VCM, ACMag: 1},
	})
	// Feedback network re-terminated at the replica node.
	c.MustAdd(&netlist.Element{
		Name: "cf", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, NodeFB}, Value: st.Spec.CFeed,
	})
	c.MustAdd(&netlist.Element{
		Name: "cs", Type: netlist.Capacitor,
		Nodes: []string{NodeFB, "0"}, Value: st.Spec.CSample,
	})
	if cin > 0 {
		c.MustAdd(&netlist.Element{
			Name: "cin", Type: netlist.Capacitor,
			Nodes: []string{NodeFB, "0"}, Value: cin,
		})
	}
	c.MustAdd(&netlist.Element{
		Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{NodeOut, "0"}, Value: st.Spec.CLoad,
	})
	return c, nil
}

func (st Stage) validate() error {
	if st.Process == nil {
		return fmt.Errorf("mdac: nil process")
	}
	if st.Sizing == nil {
		return fmt.Errorf("mdac: nil amplifier sizing")
	}
	sp := st.Spec
	if sp.CFeed <= 0 || sp.CSample <= 0 || sp.CLoad <= 0 {
		return fmt.Errorf("mdac: stage %d has non-positive capacitors", sp.Stage)
	}
	if sp.Gain < 1 {
		return fmt.Errorf("mdac: stage %d gain %g < 1", sp.Stage, sp.Gain)
	}
	return nil
}

// IdealOutputStep is the residue step the hold circuit should produce at
// the output once settled: stepV at the bottom plate times Cs/Cf.
func (st Stage) IdealOutputStep() float64 {
	return st.Spec.StepMax / st.Spec.Gain * (st.Spec.CSample / st.Spec.CFeed)
}
