package mdac

import (
	"math"
	"testing"

	"pipesyn/internal/sim"
)

// The transistor-level two-phase MDAC must realize the sampled-data
// transfer out = VCM + (Cs/Cf)(vin − vdac) the behavioral model assumes.
func TestTwoPhaseChargeTransfer(t *testing.T) {
	st := testStage(t)
	period := 2 * (st.Spec.TSettle + st.Spec.TSlew)
	nov := period / 50

	for _, tc := range []struct{ vin, vdac float64 }{
		{VCM + 0.10, VCM},        // pure amplification of a small input
		{VCM + 0.20, VCM + 0.25}, // DAC subtraction dominates
		{VCM - 0.15, VCM - 0.10},
	} {
		c, err := st.TwoPhaseCircuit(tc.vin, tc.vdac)
		if err != nil {
			t.Fatal(err)
		}
		// Two full clock periods: settle the sample in the first φ1,
		// transfer in φ2; measure at the end of the first φ2.
		res, err := sim.Tran(c, sim.TranOpts{
			TStop: 1.0 * period, TStep: period / 800,
			ClockPeriod: period, NonOverlap: nov,
		})
		if err != nil {
			t.Fatalf("vin=%g vdac=%g: %v", tc.vin, tc.vdac, err)
		}
		// Sample the output just before φ2 ends.
		tMeasure := period - 2*nov
		got, err := res.At(NodeOut, tMeasure)
		if err != nil {
			t.Fatal(err)
		}
		want := st.TwoPhaseExpected(tc.vin, tc.vdac)
		// The relaxed test stage settles to ~1.6% tolerance; allow 4% of
		// the step plus a few mV of reset/charge-injection artifacts.
		tol := 0.04*math.Abs(want-VCM) + 5e-3
		if math.Abs(got-want) > tol {
			t.Fatalf("vin=%g vdac=%g: out=%g, want %g (±%g)", tc.vin, tc.vdac, got, want, tol)
		}
	}
}

// During φ1 the amplifier is reset: output and summing node sit at VCM.
func TestTwoPhaseResetState(t *testing.T) {
	st := testStage(t)
	period := 2 * (st.Spec.TSettle + st.Spec.TSlew)
	c, err := st.TwoPhaseCircuit(VCM+0.2, VCM)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Tran(c, sim.TranOpts{
		TStop: period / 2, TStep: period / 800,
		ClockPeriod: period, NonOverlap: period / 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Late in φ1 everything is reset near VCM and the sampling cap's
	// bottom plate tracks vin.
	tSample := 0.4 * period
	vout, _ := res.At(NodeOut, tSample)
	vsum, _ := res.At(NodeSum, tSample)
	vbot, _ := res.At("csbot", tSample)
	if math.Abs(vout-VCM) > 0.02 || math.Abs(vsum-VCM) > 0.02 {
		t.Fatalf("reset state out=%g sum=%g, want ≈%g", vout, vsum, VCM)
	}
	if math.Abs(vbot-(VCM+0.2)) > 0.01 {
		t.Fatalf("bottom plate %g should track vin %g", vbot, VCM+0.2)
	}
}
