package mdac

import (
	"math"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
	"pipesyn/internal/stagespec"
)

// testStage builds a relaxed stage (late-pipeline 2-bit of a 10-bit ADC)
// so tests run fast and converge easily.
func testStage(t *testing.T) Stage {
	t.Helper()
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[2] // third stage: modest requirements
	p := pdk.TSMC025()
	sz := opamp.InitialSizing(p, opamp.BlockSpec{
		GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad, CFeed: sp.CFeed,
		Gain: sp.GainMin, Swing: sp.SwingMin,
	})
	return Stage{Spec: sp, Sizing: sz, Process: p}
}

func TestHoldCircuitBiases(t *testing.T) {
	st := testStage(t)
	c, err := st.HoldCircuit()
	if err != nil {
		t.Fatal(err)
	}
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatalf("hold circuit failed to bias: %v", err)
	}
	vout, _ := op.Voltage(NodeOut)
	vsum, _ := op.Voltage(NodeSum)
	// DC unity feedback through rb: out ≈ inn ≈ VCM.
	if math.Abs(vout-VCM) > 0.15 || math.Abs(vsum-VCM) > 0.15 {
		t.Fatalf("bias point out=%g inn=%g, want ≈%g", vout, vsum, VCM)
	}
	if p := op.SupplyPower(c); p <= 0 {
		t.Fatalf("power = %g", p)
	}
}

func TestHoldCircuitSettlesToIdealStep(t *testing.T) {
	st := testStage(t)
	c, err := st.HoldCircuit()
	if err != nil {
		t.Fatal(err)
	}
	window := st.Spec.TSettle + st.Spec.TSlew
	tr, err := sim.Tran(c, sim.TranOpts{
		TStop: StepDelay + 2*window, TStep: window / 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := tr.At(NodeOut, StepDelay/2)
	vEnd, _ := tr.At(NodeOut, StepDelay+2*window)
	gotStep := v0 - vEnd // inverting stage: bottom plate up → output down
	want := st.IdealOutputStep()
	if math.Abs(gotStep-want)/want > 0.05 {
		t.Fatalf("output step = %g, want ≈ %g", gotStep, want)
	}
}

func TestLoopCircuitBuilds(t *testing.T) {
	st := testStage(t)
	c, err := st.LoopCircuit(50e-15)
	if err != nil {
		t.Fatal(err)
	}
	if c.Find("cin") == nil {
		t.Fatal("cin missing")
	}
	// cin omitted when non-positive.
	c2, err := st.LoopCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Find("cin") != nil {
		t.Fatal("cin should be absent for 0")
	}
	// The loop circuit shares amplifier element names with the hold
	// circuit, which is what lets operating points transfer.
	hold, _ := st.HoldCircuit()
	for _, name := range []string{"a.m1", "a.m5", "a.cc", "a.rz"} {
		if c.Find(name) == nil || hold.Find(name) == nil {
			t.Fatalf("element %s not shared between netlists", name)
		}
	}
}

func TestValidation(t *testing.T) {
	st := testStage(t)
	st.Process = nil
	if _, err := st.HoldCircuit(); err == nil {
		t.Fatal("expected nil-process error")
	}
	st = testStage(t)
	st.Spec.CFeed = 0
	if _, err := st.HoldCircuit(); err == nil {
		t.Fatal("expected bad-cap error")
	}
	st = testStage(t)
	st.Spec.Gain = 0.5
	if _, err := st.LoopCircuit(0); err == nil {
		t.Fatal("expected bad-gain error")
	}
}

func TestIdealOutputStep(t *testing.T) {
	st := testStage(t)
	// StepMax/Gain · Cs/Cf = StepMax/Gain · Gain = StepMax.
	if math.Abs(st.IdealOutputStep()-st.Spec.StepMax) > 1e-12 {
		t.Fatalf("ideal step = %g, want %g", st.IdealOutputStep(), st.Spec.StepMax)
	}
}
