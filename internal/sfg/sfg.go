// Package sfg implements signal-flow graphs and Mason's gain rule, the
// symbolic-analysis step of the paper's block-level synthesis flow (§3):
// once a circuit is rendered as a DPI/SFG graph, the transfer function
// between any source node and any output node follows from
//
//	H = Σₖ Pₖ·Δₖ / Δ
//
// where Pₖ are forward-path gains, Δ = 1 − ΣLᵢ + ΣLᵢLⱼ − … over products of
// non-touching loop gains, and Δₖ is Δ restricted to loops not touching
// path k. Edge gains are symbolic expressions (package expr), so the
// resulting transfer function stays symbolic until small-signal values are
// bound.
package sfg

import (
	"fmt"
	"sort"
	"strings"

	"pipesyn/internal/expr"
)

// Graph is a directed signal-flow graph with symbolic branch gains.
// Parallel edges accumulate by addition, as SFG semantics require.
type Graph struct {
	names []string
	index map[string]int
	// adj[from][to] = summed branch gain.
	adj map[int]map[int]expr.Expr
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: map[string]int{}, adj: map[int]map[int]expr.Expr{}}
}

// AddNode ensures a node exists and returns its index.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = i
	return i
}

// Nodes returns node names in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.names...) }

// AddEdge adds a branch from→to with the given gain; repeated calls on the
// same pair sum gains. Self-loops are allowed (they are ordinary loops in
// Mason's formula).
func (g *Graph) AddEdge(from, to string, gain expr.Expr) {
	if gain.IsZero() {
		return
	}
	f, t := g.AddNode(from), g.AddNode(to)
	m := g.adj[f]
	if m == nil {
		m = map[int]expr.Expr{}
		g.adj[f] = m
	}
	if old, ok := m[t]; ok {
		m[t] = expr.Add(old, gain)
	} else {
		m[t] = gain
	}
}

// Gain returns the branch gain from→to and whether the edge exists.
func (g *Graph) Gain(from, to string) (expr.Expr, bool) {
	f, ok := g.index[from]
	if !ok {
		return expr.Zero, false
	}
	t, ok := g.index[to]
	if !ok {
		return expr.Zero, false
	}
	e, ok := g.adj[f][t]
	return e, ok
}

// Loop is a simple cycle with its symbolic gain and member-node set.
type Loop struct {
	Nodes []int // in cycle order, first node is the smallest index
	Gain  expr.Expr
	set   map[int]bool
}

// Path is a simple input→output path with its gain and member-node set.
type Path struct {
	Nodes []int
	Gain  expr.Expr
	set   map[int]bool
}

// Loops enumerates every simple cycle in the graph. The implementation is
// a DFS restricted to cycles whose smallest node index is the start node,
// which enumerates each cycle exactly once (the core idea of Johnson's
// algorithm; the graphs here are small enough to skip its blocking lists).
func (g *Graph) Loops() []Loop {
	n := len(g.names)
	var loops []Loop
	stack := []int{}
	onStack := make([]bool, n)
	var start int
	var dfs func(v int)
	dfs = func(v int) {
		stack = append(stack, v)
		onStack[v] = true
		// Deterministic order for reproducible output.
		targets := sortedKeys(g.adj[v])
		for _, w := range targets {
			if w == start {
				loops = append(loops, g.makeLoop(stack))
			} else if w > start && !onStack[w] {
				dfs(w)
			}
		}
		stack = stack[:len(stack)-1]
		onStack[v] = false
	}
	for start = 0; start < n; start++ {
		dfs(start)
	}
	return loops
}

func (g *Graph) makeLoop(stack []int) Loop {
	nodes := append([]int(nil), stack...)
	gain := expr.One
	set := map[int]bool{}
	for i, v := range nodes {
		w := nodes[(i+1)%len(nodes)]
		gain = expr.Mul(gain, g.adj[v][w])
		set[v] = true
	}
	return Loop{Nodes: nodes, Gain: gain, set: set}
}

// ForwardPaths enumerates every simple path from→to.
func (g *Graph) ForwardPaths(from, to string) ([]Path, error) {
	f, ok := g.index[from]
	if !ok {
		return nil, fmt.Errorf("sfg: unknown node %q", from)
	}
	t, ok := g.index[to]
	if !ok {
		return nil, fmt.Errorf("sfg: unknown node %q", to)
	}
	var paths []Path
	visited := make([]bool, len(g.names))
	stack := []int{}
	var dfs func(v int)
	dfs = func(v int) {
		stack = append(stack, v)
		visited[v] = true
		if v == t {
			paths = append(paths, g.makePath(stack))
		} else {
			for _, w := range sortedKeys(g.adj[v]) {
				if !visited[w] {
					dfs(w)
				}
			}
		}
		stack = stack[:len(stack)-1]
		visited[v] = false
	}
	dfs(f)
	return paths, nil
}

func (g *Graph) makePath(stack []int) Path {
	nodes := append([]int(nil), stack...)
	gain := expr.One
	set := map[int]bool{}
	for i := 0; i+1 < len(nodes); i++ {
		gain = expr.Mul(gain, g.adj[nodes[i]][nodes[i+1]])
	}
	for _, v := range nodes {
		set[v] = true
	}
	return Path{Nodes: nodes, Gain: gain, set: set}
}

// touches reports whether two node sets intersect.
func touches(a, b map[int]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}

// determinant computes Δ over the subset of loops whose index passes keep:
// Δ = 1 − Σ Lᵢ + Σ LᵢLⱼ − … with products only over mutually non-touching
// loops. A recursive inclusion of loops with sign alternation handles any
// order of non-touching sets.
func determinant(loops []Loop, keep func(i int) bool) expr.Expr {
	var active []Loop
	for i, l := range loops {
		if keep(i) {
			active = append(active, l)
		}
	}
	delta := expr.One
	// chooseFrom accumulates: for each combination of mutually non-touching
	// loops {i1<i2<…}, add (−1)^k · product of gains.
	var recurse func(startIdx int, sign float64, gainSoFar expr.Expr, used []map[int]bool)
	recurse = func(startIdx int, sign float64, gainSoFar expr.Expr, used []map[int]bool) {
		for i := startIdx; i < len(active); i++ {
			l := active[i]
			conflict := false
			for _, u := range used {
				if touches(u, l.set) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			g := expr.Mul(gainSoFar, l.Gain)
			delta = expr.Add(delta, expr.Mul(expr.C(sign), g))
			recurse(i+1, -sign, g, append(used, l.set))
		}
	}
	recurse(0, -1, expr.One, nil)
	return delta
}

// TransferFunction applies Mason's gain rule between the given nodes. The
// source node must be a pure source in SFG terms (the caller typically
// injects via a dedicated input node). It returns the symbolic H = out/in.
func (g *Graph) TransferFunction(from, to string) (expr.Expr, error) {
	paths, err := g.ForwardPaths(from, to)
	if err != nil {
		return expr.Zero, err
	}
	loops := g.Loops()
	delta := determinant(loops, func(int) bool { return true })
	num := expr.Zero
	for _, p := range paths {
		dk := determinant(loops, func(i int) bool { return !touches(loops[i].set, p.set) })
		num = expr.Add(num, expr.Mul(p.Gain, dk))
	}
	return expr.Div(num, delta), nil
}

// Determinant returns the full graph determinant Δ; exposed because Δ = 0
// locates the characteristic equation (poles) of the network.
func (g *Graph) Determinant() expr.Expr {
	loops := g.Loops()
	return determinant(loops, func(int) bool { return true })
}

// DescribeLoops renders loops with node names, for reports and debugging.
func (g *Graph) DescribeLoops() []string {
	loops := g.Loops()
	out := make([]string, len(loops))
	for i, l := range loops {
		names := make([]string, len(l.Nodes))
		for j, v := range l.Nodes {
			names[j] = g.names[v]
		}
		out[i] = fmt.Sprintf("L%d: %s [gain %s]", i+1, strings.Join(names, "→"), l.Gain)
	}
	return out
}

func sortedKeys(m map[int]expr.Expr) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
