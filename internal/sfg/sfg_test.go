package sfg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesyn/internal/expr"
)

func ev(t *testing.T, e expr.Expr, env map[string]float64) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

// Classic negative-feedback loop: H = A / (1 + A·B).
func TestMasonFeedbackLoop(t *testing.T) {
	g := New()
	g.AddEdge("in", "e", expr.One)
	g.AddEdge("e", "out", expr.V("A"))
	g.AddEdge("out", "e", expr.Neg(expr.V("B")))
	h, err := g.TransferFunction("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{"A": 100, "B": 0.1}
	got := ev(t, h, env)
	want := 100.0 / (1 + 100*0.1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("H = %g, want %g", got, want)
	}
}

// Two self-loops on consecutive path nodes are non-touching:
// Δ = (1-L1)(1-L2), path touches both, so H = P/Δ with the product form.
func TestMasonNonTouchingLoops(t *testing.T) {
	g := New()
	g.AddEdge("in", "a", expr.V("g1"))
	g.AddEdge("a", "b", expr.V("g2"))
	g.AddEdge("b", "out", expr.V("g3"))
	g.AddEdge("a", "a", expr.V("L1"))
	g.AddEdge("b", "b", expr.V("L2"))
	h, err := g.TransferFunction("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{"g1": 2, "g2": 3, "g3": 5, "L1": 0.25, "L2": -0.5}
	got := ev(t, h, env)
	want := (2.0 * 3 * 5) / ((1 - 0.25) * (1 + 0.5))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("H = %g, want %g", got, want)
	}
}

// A loop not touching the forward path contributes to Δ but also to Δk.
func TestMasonDetachedLoop(t *testing.T) {
	g := New()
	g.AddEdge("in", "out", expr.V("P"))
	// Isolated two-node loop u↔v not on the path.
	g.AddEdge("u", "v", expr.V("a"))
	g.AddEdge("v", "u", expr.V("b"))
	h, err := g.TransferFunction("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	// H = P·(1-ab)/(1-ab) = P for any a,b ≠ resonance.
	env := map[string]float64{"P": 7, "a": 0.3, "b": 0.4}
	if got := ev(t, h, env); math.Abs(got-7) > 1e-12 {
		t.Fatalf("H = %g, want 7", got)
	}
}

// Two forward paths sum.
func TestMasonParallelPaths(t *testing.T) {
	g := New()
	g.AddEdge("in", "m", expr.V("p"))
	g.AddEdge("m", "out", expr.One)
	g.AddEdge("in", "out", expr.V("q"))
	h, err := g.TransferFunction("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{"p": 3, "q": 4}
	if got := ev(t, h, env); math.Abs(got-7) > 1e-12 {
		t.Fatalf("H = %g, want 7", got)
	}
}

// Parallel edges between the same pair of nodes sum their gains.
func TestParallelEdgesSum(t *testing.T) {
	g := New()
	g.AddEdge("in", "out", expr.V("a"))
	g.AddEdge("in", "out", expr.V("b"))
	gain, ok := g.Gain("in", "out")
	if !ok {
		t.Fatal("edge missing")
	}
	got := ev(t, gain, map[string]float64{"a": 2, "b": 5})
	if got != 7 {
		t.Fatalf("summed gain = %g, want 7", got)
	}
}

func TestLoopsEnumeration(t *testing.T) {
	g := New()
	// Triangle a→b→c→a plus self-loop at b: 2 simple cycles.
	g.AddEdge("a", "b", expr.One)
	g.AddEdge("b", "c", expr.One)
	g.AddEdge("c", "a", expr.One)
	g.AddEdge("b", "b", expr.V("x"))
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2: %v", len(loops), g.DescribeLoops())
	}
}

func TestForwardPathsCount(t *testing.T) {
	g := New()
	// Diamond: in→a→out, in→b→out.
	g.AddEdge("in", "a", expr.One)
	g.AddEdge("in", "b", expr.One)
	g.AddEdge("a", "out", expr.One)
	g.AddEdge("b", "out", expr.One)
	paths, err := g.ForwardPaths("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2", len(paths))
	}
}

func TestUnknownNodes(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", expr.One)
	if _, err := g.TransferFunction("nope", "b"); err == nil {
		t.Fatal("expected error for unknown source")
	}
	if _, err := g.TransferFunction("a", "nope"); err == nil {
		t.Fatal("expected error for unknown sink")
	}
}

func TestZeroGainEdgeIgnored(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", expr.Zero)
	if _, ok := g.Gain("a", "b"); ok {
		t.Fatal("zero edge should not be stored")
	}
}

// Property: for a random series chain with per-node self-loops, Mason
// equals the product of g_i/(1-L_i) — each self-loop touches only its node.
func TestMasonChainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 2 // 2..5 chain links
		r := rand.New(rand.NewSource(seed))
		g := New()
		want := 1.0
		prev := "in"
		for i := 0; i < n; i++ {
			node := string(rune('a' + i))
			gain := r.Float64()*2 + 0.1
			g.AddEdge(prev, node, expr.C(gain))
			loop := r.Float64()*0.8 - 0.4 // |L|<1 keeps it well-posed
			g.AddEdge(node, node, expr.C(loop))
			want *= gain / (1 - loop)
			prev = node
		}
		g.AddEdge(prev, "out", expr.One)
		h, err := g.TransferFunction("in", "out")
		if err != nil {
			return false
		}
		got, err := h.Eval(nil)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The graph determinant of a single loop is 1 − L.
func TestDeterminant(t *testing.T) {
	g := New()
	g.AddEdge("x", "y", expr.V("a"))
	g.AddEdge("y", "x", expr.V("b"))
	d := g.Determinant()
	got := ev(t, d, map[string]float64{"a": 0.5, "b": 0.5})
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Δ = %g, want 0.75", got)
	}
}

func TestNodesOrder(t *testing.T) {
	g := New()
	g.AddNode("n1")
	g.AddNode("n2")
	g.AddNode("n1") // duplicate is a no-op
	ns := g.Nodes()
	if len(ns) != 2 || ns[0] != "n1" || ns[1] != "n2" {
		t.Fatalf("Nodes = %v", ns)
	}
}
