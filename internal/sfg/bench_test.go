package sfg

import (
	"fmt"
	"testing"

	"pipesyn/internal/expr"
)

// ladder builds an n-node DPI-style chain with local feedback, the shape
// Mason's rule sees for cascaded amplifier stages.
func ladder(n int) *Graph {
	g := New()
	prev := "in"
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("n%d", i)
		g.AddEdge(prev, node, expr.V(fmt.Sprintf("a%d", i)))
		g.AddEdge(node, prev, expr.V(fmt.Sprintf("b%d", i))) // local return
		prev = node
	}
	g.AddEdge(prev, "out", expr.One)
	return g
}

func BenchmarkMasonLadder6(b *testing.B) {
	g := ladder(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TransferFunction("in", "out"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopEnumerationLadder8(b *testing.B) {
	g := ladder(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Loops()
	}
}
