// batch.go packs MOS parameters as a struct-of-arrays slab for batched
// candidate evaluation. The per-Newton-iteration stamp loop is the
// hottest code in the simulator; evaluating it against MOSParams structs
// drags a string header and several never-read fields through the cache
// and recomputes the same derived constants (KP·W/L, λ·Lref/L, √φ, the
// geometry capacitances) on every call. A ParamsBatch precomputes those
// constants once at pack time and lays the per-device values out as flat
// parallel float64 slices, candidate-major, so one candidate's Newton
// iteration streams a contiguous slab region.
package device

import "math"

// ParamsBatch holds the packed parameters of B structurally identical
// candidates, each with the same D devices in the same order. Device j
// of candidate i lives at flat index i*Stride()+j in every column.
// EvalInto is bit-identical to MOSParams.EvalInto on the device that was
// packed: every precomputed constant uses the exact expression (and
// operation order) of the scalar path, so switching a solver between the
// two never perturbs results.
type ParamsBatch struct {
	cands, devs int

	pol     []float64 // +1 NMOS, −1 PMOS
	vtoN    []float64 // threshold in the mapped-NMOS frame
	gamma   []float64
	phi     []float64
	sqrtPhi []float64
	k       []float64 // KP·W/L
	lam     []float64 // Lambda·0.25µm/L
	cch     []float64 // Cox·W·L
	cgsoW   []float64 // CGSO·W
	cgdoW   []float64 // CGDO·W
	cjwW    []float64 // CJW·W
}

// NewParamsBatch allocates a slab for cands candidates of devs devices.
func NewParamsBatch(cands, devs int) *ParamsBatch {
	n := cands * devs
	return &ParamsBatch{
		cands: cands, devs: devs,
		pol: make([]float64, n), vtoN: make([]float64, n),
		gamma: make([]float64, n), phi: make([]float64, n),
		sqrtPhi: make([]float64, n), k: make([]float64, n),
		lam: make([]float64, n), cch: make([]float64, n),
		cgsoW: make([]float64, n), cgdoW: make([]float64, n),
		cjwW: make([]float64, n),
	}
}

// Stride returns the devices-per-candidate stride: candidate i's devices
// occupy flat indices [i*Stride(), (i+1)*Stride()).
func (pb *ParamsBatch) Stride() int { return pb.devs }

// Cands returns the number of candidates the slab was sized for.
func (pb *ParamsBatch) Cands() int { return pb.cands }

// Set packs device dev of candidate cand, precomputing the derived
// constants the evaluation path reads.
func (pb *ParamsBatch) Set(cand, dev int, p *MOSParams) {
	i := cand*pb.devs + dev
	pol, vtoN := 1.0, p.VTO
	if p.PMOS {
		pol, vtoN = -1, -p.VTO
	}
	pb.pol[i] = pol
	pb.vtoN[i] = vtoN
	pb.gamma[i] = p.Gamma
	pb.phi[i] = p.Phi
	pb.sqrtPhi[i] = math.Sqrt(p.Phi)
	pb.k[i] = p.KP * p.W / p.L
	pb.lam[i] = p.Lambda * 0.25e-6 / p.L
	pb.cch[i] = p.Cox * p.W * p.L
	pb.cgsoW[i] = p.CGSO * p.W
	pb.cgdoW[i] = p.CGDO * p.W
	pb.cjwW[i] = p.CJW * p.W
}

// EvalInto evaluates the packed device at flat index idx at the given
// terminal voltages, writing the operating point into op. It mirrors
// MOSParams.EvalInto operation for operation — polarity mapping,
// drain/source reverse swap, square-law forward evaluation, Meyer
// capacitances — reading only the precomputed slab columns.
func (pb *ParamsBatch) EvalInto(op *OP, idx int, vd, vg, vs, vb float64) {
	pol := pb.pol[idx]
	vgs := pol * (vg - vs)
	vds := pol * (vd - vs)
	vbs := pol * (vb - vs)
	reverse := vds < 0
	if reverse {
		vgs, vds, vbs = vgs-vds, -vds, vbs-vds
	}
	// Body effect on the clamped branch, exactly like evalForward.
	arg := pb.phi[idx] - vbs
	var dvthDvbs float64
	if arg < 1e-6 {
		arg = 1e-6
	} else {
		dvthDvbs = -pb.gamma[idx] / (2 * math.Sqrt(arg))
	}
	vth := pb.vtoN[idx] + pb.gamma[idx]*(math.Sqrt(arg)-pb.sqrtPhi[idx])
	vov := vgs - vth
	k := pb.k[idx]
	lam := pb.lam[idx]
	var id, gm, gds, gmb float64
	var region Region
	switch {
	case vov <= 0:
		region = Cutoff
		const gleak = 1e-12
		id = gleak * vds
		gds = gleak
	case vds >= vov:
		region = Saturation
		cm := 1 + lam*vds
		id = 0.5 * k * vov * vov * cm
		gm = k * vov * cm
		gds = 0.5 * k * vov * vov * lam
		gmb = gm * (-dvthDvbs)
	default:
		region = Triode
		cm := 1 + lam*vds
		base := vov*vds - 0.5*vds*vds
		id = k * base * cm
		gm = k * vds * cm
		gds = k*(vov-vds)*cm + k*base*lam
		gmb = gm * (-dvthDvbs)
	}
	if reverse {
		id, gm, gds, gmb = -id, -gm, gm+gds+gmb, -gmb
	}
	op.ID = pol * id
	op.GM, op.GDS, op.GMB = gm, gds, gmb
	op.Region = region
	op.VGS = vgs
	op.VDS = vds
	op.VOV = vov
	switch region {
	case Cutoff:
		op.CGB = pb.cch[idx]
		op.CGS = pb.cgsoW[idx]
		op.CGD = pb.cgdoW[idx]
	case Saturation:
		op.CGS = (2.0/3.0)*pb.cch[idx] + pb.cgsoW[idx]
		op.CGD = pb.cgdoW[idx]
		op.CGB = 0
	case Triode:
		op.CGS = 0.5*pb.cch[idx] + pb.cgsoW[idx]
		op.CGD = 0.5*pb.cch[idx] + pb.cgdoW[idx]
		op.CGB = 0
	}
	op.CDB = pb.cjwW[idx]
	op.CSB = pb.cjwW[idx]
}
