// Package device implements the MOSFET model used across DC, AC and
// transient analyses: a LEVEL-1 square-law model with channel-length
// modulation and body effect, the classic choice for a 0.25 µm synthesis
// flow where the optimizer cares about gm/ID-level fidelity rather than
// deep-submicron second-order effects. The model supports both carrier
// polarities and reverse (drain/source-swapped) operation so Newton
// iterations can wander without breaking derivative consistency.
package device

import (
	"fmt"
	"math"

	"pipesyn/internal/netlist"
)

// Region labels the DC operating region of a MOSFET.
type Region int

const (
	Cutoff Region = iota
	Triode
	Saturation
)

func (r Region) String() string {
	switch r {
	case Cutoff:
		return "cutoff"
	case Triode:
		return "triode"
	case Saturation:
		return "saturation"
	}
	return "?"
}

// MOSParams collects the electrical parameters of one sized transistor.
type MOSParams struct {
	Name   string
	PMOS   bool
	W, L   float64 // metres
	VTO    float64 // zero-bias threshold; negative for PMOS
	KP     float64 // transconductance parameter µCox, A/V²
	Lambda float64 // channel-length modulation, 1/V (per unit L at Lref)
	Gamma  float64 // body-effect coefficient, √V
	Phi    float64 // surface potential, V
	Cox    float64 // gate-oxide capacitance per area, F/m²
	CGSO   float64 // gate-source overlap, F/m
	CGDO   float64 // gate-drain overlap, F/m
	CJW    float64 // junction capacitance per device width, F/m
}

// FromNetlist builds MOSParams from an element and its .model card.
// W and L are required on the instance; everything else defaults to a
// generic 0.25 µm-class value so hand-written decks stay terse.
func FromNetlist(e *netlist.Element, m *netlist.Model) (MOSParams, error) {
	if e.Type != netlist.MOS {
		return MOSParams{}, fmt.Errorf("device: element %s is not a MOSFET", e.Name)
	}
	w := e.Param("w", 0)
	l := e.Param("l", 0)
	if w <= 0 || l <= 0 {
		return MOSParams{}, fmt.Errorf("device: %s needs positive W and L", e.Name)
	}
	pmos := m.Type == "pmos"
	vtoDef := 0.45
	kpDef := 180e-6
	if pmos {
		vtoDef = -0.5
		kpDef = 60e-6
	}
	p := MOSParams{
		Name:   e.Name,
		PMOS:   pmos,
		W:      w,
		L:      l,
		VTO:    m.Param("vto", vtoDef),
		KP:     m.Param("kp", kpDef),
		Lambda: m.Param("lambda", 0.06),
		Gamma:  m.Param("gamma", 0.45),
		Phi:    m.Param("phi", 0.8),
		Cox:    m.Param("cox", 6e-3),
		CGSO:   m.Param("cgso", 3e-10),
		CGDO:   m.Param("cgdo", 3e-10),
		CJW:    m.Param("cjw", 8e-10),
	}
	return p, nil
}

// OP is a MOSFET DC operating point with the small-signal parameters that
// both the AC analysis and the DPI/SFG symbolic flow consume. ID is the
// current into the drain terminal.
type OP struct {
	ID     float64
	GM     float64 // ∂ID/∂VGS
	GDS    float64 // ∂ID/∂VDS
	GMB    float64 // ∂ID/∂VBS
	Region Region
	VGS    float64
	VDS    float64
	VOV    float64 // overdrive of the conducting mode
	// Terminal capacitances at the operating point.
	CGS, CGD, CGB, CDB, CSB float64
}

// Eval computes the operating point at the given terminal voltages
// (drain, gate, source, bulk, all referred to ground).
func (p *MOSParams) Eval(vd, vg, vs, vb float64) OP {
	var op OP
	p.EvalInto(&op, vd, vg, vs, vb)
	return op
}

// EvalInto is Eval writing into a caller-provided OP, avoiding the
// struct-return copy on the per-Newton-iteration stamp path.
func (p *MOSParams) EvalInto(op *OP, vd, vg, vs, vb float64) {
	pol := 1.0
	if p.PMOS {
		pol = -1
	}
	// Map to an equivalent NMOS problem.
	vgs := pol * (vg - vs)
	vds := pol * (vd - vs)
	vbs := pol * (vb - vs)
	reverse := vds < 0
	if reverse {
		// Swap source and drain: the device is symmetric.
		vgs, vds, vbs = vgs-vds, -vds, vbs-vds
	}
	id, gm, gds, gmb, region, vth := p.evalForward(vgs, vds, vbs)
	if reverse {
		// Chain rule back to the original terminal ordering.
		id, gm, gds, gmb = -id, -gm, gm+gds+gmb, -gmb
		// gds above: ∂(−f(vgs−vds, −vds, vbs−vds))/∂vds = f_g + f_d + f_b.
	}
	op.ID = pol * id
	op.GM, op.GDS, op.GMB = gm, gds, gmb
	op.Region = region
	op.VGS = vgs
	op.VDS = vds
	op.VOV = vgs - vth
	p.caps(op)
}

// evalForward evaluates the square-law equations for vds ≥ 0, returning
// the drain current and its three partial derivatives plus the threshold.
func (p *MOSParams) evalForward(vgs, vds, vbs float64) (id, gm, gds, gmb float64, region Region, vth float64) {
	// Body effect: vth = VTO + γ(√(φ−vbs) − √φ). Clamp the sqrt argument;
	// the derivative is taken on the clamped branch which keeps Newton
	// consistent.
	vtoN := p.VTO
	if p.PMOS {
		vtoN = -p.VTO // in the mapped NMOS frame the threshold is positive
	}
	phiV := p.Phi
	arg := phiV - vbs
	var dvthDvbs float64
	if arg < 1e-6 {
		arg = 1e-6
		dvthDvbs = 0
	} else {
		dvthDvbs = -p.Gamma / (2 * math.Sqrt(arg))
	}
	vth = vtoN + p.Gamma*(math.Sqrt(arg)-math.Sqrt(phiV))
	vov := vgs - vth
	k := p.KP * p.W / p.L
	lam := p.Lambda * 0.25e-6 / p.L // λ scales inversely with channel length
	switch {
	case vov <= 0:
		region = Cutoff
		// A tiny subthreshold-ish conductance keeps the Jacobian
		// non-singular when a device turns off mid-iteration.
		const gleak = 1e-12
		id = gleak * vds
		gds = gleak
		gm, gmb = 0, 0
	case vds >= vov:
		region = Saturation
		cm := 1 + lam*vds
		id = 0.5 * k * vov * vov * cm
		gm = k * vov * cm
		gds = 0.5 * k * vov * vov * lam
		gmb = gm * (-dvthDvbs) // ∂id/∂vbs = −gm·∂vth/∂vbs
	default:
		region = Triode
		cm := 1 + lam*vds
		base := vov*vds - 0.5*vds*vds
		id = k * base * cm
		gm = k * vds * cm
		gds = k*(vov-vds)*cm + k*base*lam
		gmb = gm * (-dvthDvbs)
	}
	return id, gm, gds, gmb, region, vth
}

// caps fills the terminal capacitances using the Meyer-style piecewise
// model: channel capacitance splits 2/3-to-source in saturation and
// half/half in triode, plus constant overlap and junction terms.
func (p *MOSParams) caps(op *OP) {
	cch := p.Cox * p.W * p.L
	switch op.Region {
	case Cutoff:
		op.CGB = cch
		op.CGS = p.CGSO * p.W
		op.CGD = p.CGDO * p.W
	case Saturation:
		op.CGS = (2.0/3.0)*cch + p.CGSO*p.W
		op.CGD = p.CGDO * p.W
		op.CGB = 0
	case Triode:
		op.CGS = 0.5*cch + p.CGSO*p.W
		op.CGD = 0.5*cch + p.CGDO*p.W
		op.CGB = 0
	}
	op.CDB = p.CJW * p.W
	op.CSB = p.CJW * p.W
}

// SwitchParams models an ideal clocked switch as a two-state resistor.
type SwitchParams struct {
	Ron, Roff float64
	Phase     int // which non-overlapping clock phase closes it (1 or 2); 0 = always on
}

// SwitchFromNetlist extracts switch parameters from an element/model pair.
func SwitchFromNetlist(e *netlist.Element, m *netlist.Model) SwitchParams {
	return SwitchParams{
		Ron:   m.Param("ron", 1e3),
		Roff:  m.Param("roff", 1e12),
		Phase: int(e.Param("phase", 0)),
	}
}

// Conductance returns the switch conductance given whether its phase is
// active.
func (s SwitchParams) Conductance(active bool) float64 {
	if active {
		return 1 / s.Ron
	}
	return 1 / s.Roff
}
