package device

import "testing"

func BenchmarkMOSEval(b *testing.B) {
	m := nmos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Eval(1.5, 1.0, 0, 0)
	}
}
