package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesyn/internal/netlist"
)

func nmos() MOSParams {
	return MOSParams{
		Name: "m1", W: 10e-6, L: 0.25e-6,
		VTO: 0.45, KP: 180e-6, Lambda: 0.06, Gamma: 0.45, Phi: 0.8,
		Cox: 6e-3, CGSO: 3e-10, CGDO: 3e-10, CJW: 8e-10,
	}
}

func pmos() MOSParams {
	p := nmos()
	p.PMOS = true
	p.VTO = -0.5
	p.KP = 60e-6
	return p
}

func TestRegions(t *testing.T) {
	m := nmos()
	if op := m.Eval(1.0, 0.2, 0, 0); op.Region != Cutoff {
		t.Fatalf("vgs<vth should be cutoff, got %v", op.Region)
	}
	if op := m.Eval(2.0, 1.0, 0, 0); op.Region != Saturation {
		t.Fatalf("vds>vov should be saturation, got %v", op.Region)
	}
	if op := m.Eval(0.1, 1.5, 0, 0); op.Region != Triode {
		t.Fatalf("small vds should be triode, got %v", op.Region)
	}
}

func TestSquareLawCurrent(t *testing.T) {
	m := nmos()
	m.Lambda = 0 // pure square law for the analytic check
	m.Gamma = 0
	vgs, vds := 1.0, 2.0
	op := m.Eval(vds, vgs, 0, 0)
	k := m.KP * m.W / m.L
	want := 0.5 * k * (vgs - m.VTO) * (vgs - m.VTO)
	if math.Abs(op.ID-want)/want > 1e-12 {
		t.Fatalf("ID = %g, want %g", op.ID, want)
	}
	wantGM := k * (vgs - m.VTO)
	if math.Abs(op.GM-wantGM)/wantGM > 1e-12 {
		t.Fatalf("GM = %g, want %g", op.GM, wantGM)
	}
}

func TestPMOSSymmetry(t *testing.T) {
	// A PMOS biased mirror-image to an NMOS conducts the mirrored current.
	n := nmos()
	n.Gamma = 0
	p := pmos()
	p.Gamma = 0
	p.VTO = -n.VTO
	p.KP = n.KP
	nOp := n.Eval(1.5, 1.2, 0, 0)
	pOp := p.Eval(-1.5, -1.2, 0, 0)
	if math.Abs(nOp.ID+pOp.ID) > 1e-15 {
		t.Fatalf("PMOS mirror ID = %g, want %g", pOp.ID, -nOp.ID)
	}
	if pOp.Region != Saturation {
		t.Fatalf("PMOS region = %v", pOp.Region)
	}
	// Conductances keep NMOS sign convention.
	if pOp.GM <= 0 || pOp.GDS < 0 {
		t.Fatalf("PMOS small-signal signs: gm=%g gds=%g", pOp.GM, pOp.GDS)
	}
}

func TestReverseModeContinuity(t *testing.T) {
	// Current must be an odd-ish continuous function through vds = 0.
	m := nmos()
	idPlus := m.Eval(1e-6, 1.5, 0, 0).ID
	idMinus := m.Eval(-1e-6, 1.5, 0, 0).ID
	if idPlus <= 0 || idMinus >= 0 {
		t.Fatalf("sign error around vds=0: %g / %g", idPlus, idMinus)
	}
	if math.Abs(idPlus+idMinus) > 1e-3*math.Abs(idPlus) {
		t.Fatalf("discontinuity at vds=0: %g vs %g", idPlus, idMinus)
	}
}

// Property: analytic derivatives match finite differences in every region.
func TestDerivativesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := nmos()
		vg := r.Float64()*3 - 0.5
		vd := r.Float64()*3 - 0.5
		vb := -r.Float64() // reverse-biased bulk
		const h = 1e-7
		op := m.Eval(vd, vg, 0, vb)
		// Skip points too close to a region boundary where the piecewise
		// model is legitimately non-differentiable.
		if math.Abs(op.VDS-op.VOV) < 1e-3 || math.Abs(op.VOV) < 1e-3 {
			return true
		}
		gmNum := (m.Eval(vd, vg+h, 0, vb).ID - m.Eval(vd, vg-h, 0, vb).ID) / (2 * h)
		gdsNum := (m.Eval(vd+h, vg, 0, vb).ID - m.Eval(vd-h, vg, 0, vb).ID) / (2 * h)
		gmbNum := (m.Eval(vd, vg, 0, vb+h).ID - m.Eval(vd, vg, 0, vb-h).ID) / (2 * h)
		scale := math.Abs(op.GM) + math.Abs(op.GDS) + 1e-9
		return math.Abs(op.GM-gmNum) < 1e-4*scale &&
			math.Abs(op.GDS-gdsNum) < 1e-4*scale &&
			math.Abs(op.GMB-gmbNum) < 1e-3*scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBodyEffectRaisesVth(t *testing.T) {
	m := nmos()
	// Same vgs: more reverse bulk bias → less current.
	id0 := m.Eval(2, 1.2, 0, 0).ID
	id1 := m.Eval(2, 1.2, 0, -1).ID
	if id1 >= id0 {
		t.Fatalf("body effect missing: id(vbs=-1)=%g ≥ id(0)=%g", id1, id0)
	}
}

func TestCapacitances(t *testing.T) {
	m := nmos()
	sat := m.Eval(2, 1.2, 0, 0)
	tri := m.Eval(0.05, 2.0, 0, 0)
	off := m.Eval(2, 0, 0, 0)
	cch := m.Cox * m.W * m.L
	if math.Abs(sat.CGS-(2.0/3.0)*cch-m.CGSO*m.W) > 1e-20 {
		t.Fatalf("sat CGS = %g", sat.CGS)
	}
	if tri.CGD <= sat.CGD {
		t.Fatal("triode CGD should exceed saturation CGD (channel splits)")
	}
	if off.CGB != cch {
		t.Fatalf("cutoff CGB = %g, want %g", off.CGB, cch)
	}
	if sat.CDB <= 0 || sat.CSB <= 0 {
		t.Fatal("junction caps must be positive")
	}
}

func TestFromNetlist(t *testing.T) {
	deck := `* m
M1 d g s 0 nch W=20u L=0.5u
.model nch nmos (vto=0.4 kp=200u)
`
	c, err := netlist.Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	e := c.Find("m1")
	mod, _ := c.ModelFor(e)
	p, err := FromNetlist(e, mod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.W-20e-6) > 1e-18 || math.Abs(p.L-0.5e-6) > 1e-18 || p.VTO != 0.4 {
		t.Fatalf("params = %+v", p)
	}
	// Missing W/L errors.
	bad := &netlist.Element{Name: "m2", Type: netlist.MOS, Nodes: []string{"d", "g", "s", "0"}}
	if _, err := FromNetlist(bad, mod); err == nil {
		t.Fatal("expected W/L error")
	}
	// Wrong element type errors.
	r := &netlist.Element{Name: "r1", Type: netlist.Resistor, Nodes: []string{"a", "b"}}
	if _, err := FromNetlist(r, mod); err == nil {
		t.Fatal("expected type error")
	}
}

func TestPMOSDefaults(t *testing.T) {
	deck := `* p
M1 d g s b pch W=20u L=0.5u
.model pch pmos ()
`
	c, _ := netlist.Parse(deck)
	e := c.Find("m1")
	mod, _ := c.ModelFor(e)
	p, err := FromNetlist(e, mod)
	if err != nil {
		t.Fatal(err)
	}
	if !p.PMOS || p.VTO >= 0 {
		t.Fatalf("PMOS defaults wrong: %+v", p)
	}
}

func TestSwitch(t *testing.T) {
	deck := `* sw
S1 a b swm phase=2
.model swm sw (ron=200 roff=1e9)
`
	c, _ := netlist.Parse(deck)
	e := c.Find("s1")
	mod, _ := c.ModelFor(e)
	sp := SwitchFromNetlist(e, mod)
	if sp.Phase != 2 || sp.Ron != 200 {
		t.Fatalf("switch params = %+v", sp)
	}
	if g := sp.Conductance(true); g != 1/200.0 {
		t.Fatalf("on conductance = %g", g)
	}
	if g := sp.Conductance(false); g != 1e-9 {
		t.Fatalf("off conductance = %g", g)
	}
}

func TestLambdaScalesWithLength(t *testing.T) {
	// Longer channel → less channel-length modulation → higher rout.
	short := nmos()
	long := nmos()
	long.L = 1e-6
	long.W = 40e-6 // same W/L
	gdsShort := short.Eval(2, 1.2, 0, 0).GDS
	gdsLong := long.Eval(2, 1.2, 0, 0).GDS
	if gdsLong >= gdsShort {
		t.Fatalf("gds(long)=%g should be < gds(short)=%g", gdsLong, gdsShort)
	}
}

func TestRegionString(t *testing.T) {
	if Cutoff.String() != "cutoff" || Saturation.String() != "saturation" || Triode.String() != "triode" {
		t.Fatal("Region strings")
	}
}
