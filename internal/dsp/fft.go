// Package dsp provides the signal-processing substrate for ADC
// verification: a radix-2 FFT, window functions, coherent-sampling
// helpers, and spectral metrics (SNDR, SFDR, THD, ENOB) plus code-domain
// INL/DNL extraction. The behavioral pipeline simulator uses it to prove
// that a synthesized stage-resolution configuration really delivers the
// target effective number of bits.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT (normalized by 1/N).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// Window identifies a window function for spectral analysis.
type Window int

const (
	Rectangular Window = iota
	Hann
	Blackman
)

// Apply multiplies x in place by the window and returns the coherent gain
// (mean window value) for amplitude correction. The windows are the
// periodic (DFT-even) forms — denominator n, not n−1 — which is what
// spectral analysis wants: the implied periodic extension has no seam, so
// a coherent tone stays leakage-free. (The symmetric n−1 form belongs to
// FIR filter design, and divides by zero for n == 1.) Slices shorter than
// two samples are left untouched with unit gain.
func (w Window) Apply(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 1
	}
	sum := 0.0
	for i := range x {
		var c float64
		t := 2 * math.Pi * float64(i) / float64(n)
		switch w {
		case Rectangular:
			c = 1
		case Hann:
			c = 0.5 * (1 - math.Cos(t))
		case Blackman:
			c = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
		}
		x[i] *= c
		sum += c
	}
	return sum / float64(n)
}

// CoherentBin returns a frequency (Hz) close to fTarget that lands an
// exact odd number of cycles in n samples at rate fs, guaranteeing
// leakage-free spectra with a rectangular window.
func CoherentBin(fs, fTarget float64, n int) (fSig float64, cycles int) {
	cycles = int(math.Round(fTarget / fs * float64(n)))
	if cycles < 1 {
		cycles = 1
	}
	if cycles%2 == 0 {
		cycles++ // odd cycle counts avoid sharing factors with n (a power of 2)
	}
	if cycles >= n/2 {
		cycles = n/2 - 1
	}
	return fs * float64(cycles) / float64(n), cycles
}

// Spectrum holds a one-sided power spectrum of a real signal.
type Spectrum struct {
	Power []float64 // bins 0..N/2, |X_k|² normalized
	Fs    float64
	N     int
}

// PowerSpectrum computes the one-sided power spectrum of x after applying
// the window.
func PowerSpectrum(x []float64, fs float64, w Window) (*Spectrum, error) {
	n := len(x)
	buf := make([]float64, n)
	copy(buf, x)
	cg := w.Apply(buf)
	cx := make([]complex128, n)
	for i, v := range buf {
		cx[i] = complex(v, 0)
	}
	if err := FFT(cx); err != nil {
		return nil, err
	}
	half := n/2 + 1
	p := make([]float64, half)
	norm := 1 / (float64(n) * cg)
	for k := 0; k < half; k++ {
		m := cmplx.Abs(cx[k]) * norm
		p[k] = m * m
		if k != 0 && k != n/2 {
			// Fold the negative-frequency half in POWER: bin k and bin
			// N−k each hold |X|², so the one-sided bin carries 2·|X|².
			// (Folding in amplitude before squaring would give 4×.) A
			// full-scale unit sine thus lands 0.5 = −3.01 dB in its bin,
			// and the one-sided bins sum to the signal's mean square.
			p[k] *= 2
		}
	}
	return &Spectrum{Power: p, Fs: fs, N: n}, nil
}

// BinFreq returns the center frequency of bin k.
func (s *Spectrum) BinFreq(k int) float64 { return s.Fs * float64(k) / float64(s.N) }
