package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] = [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a single complex exponential concentrates in one bin.
	n := 64
	y := make([]complex128, n)
	k0 := 5
	for i := range y {
		ang := 2 * math.Pi * float64(k0) * float64(i) / float64(n)
		y[i] = cmplx.Rect(1, ang)
	}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	for k, v := range y {
		want := 0.0
		if k == k0 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d = %g, want %g", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTBadLength(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// Property: IFFT(FFT(x)) == x.
func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64, szRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (int(szRaw)%7 + 2) // 4..512
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval — total time-domain energy equals spectral energy.
func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256
		x := make([]complex128, n)
		timeE := 0.0
		for i := range x {
			v := r.Float64()*2 - 1
			x[i] = complex(v, 0)
			timeE += v * v
		}
		if err := FFT(x); err != nil {
			return false
		}
		freqE := 0.0
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) < 1e-9*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCoherentBin(t *testing.T) {
	fs := 40e6
	n := 4096
	f, cycles := CoherentBin(fs, 2e6, n)
	if cycles%2 == 0 {
		t.Fatalf("cycles = %d, want odd", cycles)
	}
	// f must land exactly on a bin.
	k := f / fs * float64(n)
	if math.Abs(k-math.Round(k)) > 1e-9 {
		t.Fatalf("not on a bin: %g", k)
	}
	if math.Abs(f-2e6)/2e6 > 0.01 {
		t.Fatalf("f = %g too far from target", f)
	}
	// Extremes clamp.
	if _, c := CoherentBin(fs, 0, n); c < 1 {
		t.Fatal("cycles must be ≥1")
	}
	if _, c := CoherentBin(fs, fs, n); c >= n/2 {
		t.Fatal("cycles must stay below Nyquist")
	}
}

// Golden absolute-power contract of the one-sided fold: a coherent unit
// sine concentrates exactly its mean square — 0.5, i.e. −3.01 dBFS — in
// its bin, and the one-sided bins sum to the time-domain mean square
// (one-sided Parseval). The pre-fix fold doubled amplitude before
// squaring, putting 4× power (+3.01 dB) in every non-DC bin.
func TestPowerSpectrumUnitSineGolden(t *testing.T) {
	n := 4096
	fs := 40e6
	fSig, k := CoherentBin(fs, 2.3e6, n)
	x := make([]float64, n)
	meanSq := 0.0
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * fSig * float64(i) / fs)
		meanSq += x[i] * x[i]
	}
	meanSq /= float64(n)
	sp, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Power[k]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("unit-sine bin power = %.12g (%.3f dB), want 0.5 (−3.01 dB)",
			got, 10*math.Log10(got))
	}
	total := 0.0
	for _, p := range sp.Power {
		total += p
	}
	if math.Abs(total-meanSq) > 1e-9 {
		t.Fatalf("one-sided Parseval: Σ bins = %.12g, mean square = %.12g", total, meanSq)
	}
	// The absolute metrics derived from the spectrum inherit the scale.
	m, err := sp.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.SignalPow-0.5) > 1e-9 {
		t.Fatalf("SignalPow = %g, want 0.5", m.SignalPow)
	}
}

// DC and Nyquist have no negative-frequency twin and must not be doubled:
// a pure DC offset shows up at exactly its squared value.
func TestPowerSpectrumDCNotDoubled(t *testing.T) {
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.25
	}
	sp, err := PowerSpectrum(x, 1, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Power[0]-0.0625) > 1e-12 {
		t.Fatalf("DC power = %g, want 0.0625", sp.Power[0])
	}
	// Nyquist: alternating ±A concentrates A² in bin N/2.
	for i := range x {
		x[i] = 0.5
		if i%2 == 1 {
			x[i] = -0.5
		}
	}
	sp, err = PowerSpectrum(x, 1, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Power[n/2]-0.25) > 1e-12 {
		t.Fatalf("Nyquist power = %g, want 0.25", sp.Power[n/2])
	}
}

// Periodic-window contract: the periodic Hann sums to exactly n/2 (its
// cosine term cancels over a whole period), so the coherent gain is
// exactly 0.5 — and a one-sample slice must pass through untouched
// instead of producing NaN from the symmetric form's n−1 denominator.
func TestWindowPeriodicForm(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		if cg := Hann.Apply(x); math.Abs(cg-0.5) > 1e-12 {
			t.Fatalf("n=%d: periodic Hann coherent gain = %.15g, want exactly 0.5", n, cg)
		}
	}
	one := []float64{3}
	for _, w := range []Window{Rectangular, Hann, Blackman} {
		if cg := w.Apply(one); cg != 1 || one[0] != 3 {
			t.Fatalf("window %v on n=1: cg=%g x=%g (want pass-through)", w, cg, one[0])
		}
		if math.IsNaN(one[0]) {
			t.Fatalf("window %v produced NaN for n=1", w)
		}
	}
	if cg := Hann.Apply(nil); cg != 1 {
		t.Fatalf("nil slice: cg = %g", cg)
	}
}

func TestSNDRIdealQuantizer(t *testing.T) {
	// An ideal B-bit quantizer shows SNDR ≈ 6.02B + 1.76 dB.
	for _, bits := range []int{8, 10, 12} {
		n := 4096
		fs := 40e6
		fSig, _ := CoherentBin(fs, 2.3e6, n)
		levels := float64(int(1) << bits)
		samples := make([]float64, n)
		for i := range samples {
			v := 0.5 + 0.5*math.Sin(2*math.Pi*fSig*float64(i)/fs) // full scale [0,1]
			q := math.Floor(v*levels) / levels
			if q > (levels-1)/levels {
				q = (levels - 1) / levels
			}
			samples[i] = q
		}
		m, err := SineTestMetrics(samples, fs)
		if err != nil {
			t.Fatal(err)
		}
		want := 6.02*float64(bits) + 1.76
		if math.Abs(m.SNDRdB-want) > 1.5 {
			t.Fatalf("%d-bit SNDR = %g dB, want ≈ %g", bits, m.SNDRdB, want)
		}
		if math.Abs(m.ENOB-float64(bits)) > 0.3 {
			t.Fatalf("%d-bit ENOB = %g", bits, m.ENOB)
		}
	}
}

func TestTHDDetectsHarmonics(t *testing.T) {
	n := 4096
	fs := 1e6
	fSig, k := CoherentBin(fs, 50e3, n)
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		ph := 2 * math.Pi * fSig * float64(i) / fs
		clean[i] = math.Sin(ph)
		dirty[i] = math.Sin(ph) + 0.01*math.Sin(3*ph) // −40 dB HD3
	}
	_ = k
	mc, err := SineTestMetrics(clean, fs)
	if err != nil {
		t.Fatal(err)
	}
	md, err := SineTestMetrics(dirty, fs)
	if err != nil {
		t.Fatal(err)
	}
	if md.THDdB > -39 || md.THDdB < -41 {
		t.Fatalf("THD = %g dB, want ≈ −40", md.THDdB)
	}
	if mc.SNDRdB < md.SNDRdB+30 {
		t.Fatalf("clean SNDR %g should far exceed dirty %g", mc.SNDRdB, md.SNDRdB)
	}
	if md.SFDRdB > 41 || md.SFDRdB < 39 {
		t.Fatalf("SFDR = %g dB, want ≈ 40", md.SFDRdB)
	}
}

func TestWindows(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 1
	}
	cg := Hann.Apply(x)
	if math.Abs(cg-0.5) > 0.02 {
		t.Fatalf("Hann coherent gain = %g, want ≈0.5", cg)
	}
	if x[0] != 0 || x[len(x)/2] < 0.9 {
		t.Fatalf("Hann shape wrong: %g %g", x[0], x[len(x)/2])
	}
	y := make([]float64, 64)
	for i := range y {
		y[i] = 1
	}
	if cg := Rectangular.Apply(y); cg != 1 {
		t.Fatalf("Rect gain = %g", cg)
	}
	z := make([]float64, 64)
	for i := range z {
		z[i] = 1
	}
	if cg := Blackman.Apply(z); math.Abs(cg-0.42) > 0.02 {
		t.Fatalf("Blackman gain = %g, want ≈0.42", cg)
	}
}

func TestHannLeakageSuppression(t *testing.T) {
	// Non-coherent tone: Hann window must localize energy far better than
	// rectangular. Compare power three bins away from the signal.
	n := 1024
	fs := 1e6
	f := fs * (100.5) / float64(n) // half-bin offset: worst case
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	rect, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	hann, err := PowerSpectrum(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	far := 110
	if hann.Power[far] >= rect.Power[far] {
		t.Fatalf("Hann leakage %g should be below rectangular %g", hann.Power[far], rect.Power[far])
	}
}

func TestINLDNL(t *testing.T) {
	// Perfectly uniform histogram → zero INL/DNL.
	counts := make([]int, 16)
	for i := range counts {
		counts[i] = 100
	}
	inl, dnl, err := INLDNL(counts)
	if err != nil {
		t.Fatal(err)
	}
	if PeakAbs(inl) > 1e-12 || PeakAbs(dnl) > 1e-12 {
		t.Fatalf("uniform histogram gave INL %g DNL %g", PeakAbs(inl), PeakAbs(dnl))
	}
	// A code that is 50% wide has DNL −0.5.
	counts[5] = 50
	_, dnl, err = INLDNL(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dnl[5]+0.48) > 0.05 { // ideal recomputed with the short bin
		t.Fatalf("DNL[5] = %g, want ≈ −0.5", dnl[5])
	}
	// Errors.
	if _, _, err := INLDNL(make([]int, 2)); err == nil {
		t.Fatal("expected short-histogram error")
	}
	if _, _, err := INLDNL(make([]int, 8)); err == nil {
		t.Fatal("expected empty-histogram error")
	}
}

func TestSpectrumBinFreq(t *testing.T) {
	s := &Spectrum{Fs: 1000, N: 100}
	if f := s.BinFreq(10); f != 100 {
		t.Fatalf("BinFreq = %g", f)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	s := &Spectrum{Power: make([]float64, 4), Fs: 1, N: 8}
	if _, err := s.Analyze(0); err == nil {
		t.Fatal("expected short-spectrum error")
	}
	s2 := &Spectrum{Power: make([]float64, 64), Fs: 1, N: 128}
	if _, err := s2.Analyze(0); err == nil {
		t.Fatal("expected no-signal error")
	}
}
