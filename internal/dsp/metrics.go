package dsp

import (
	"fmt"
	"math"
)

// SpectralMetrics summarizes converter performance from a sine-wave test.
type SpectralMetrics struct {
	SignalBin  int
	SignalPow  float64
	SNDRdB     float64 // signal / (noise + distortion)
	SFDRdB     float64 // signal / largest spur
	THDdB      float64 // harmonics (2..5) / signal
	ENOB       float64 // (SNDR − 1.76)/6.02
	NoiseFloor float64 // mean non-signal bin power
}

// Analyze extracts converter metrics from a one-sided power spectrum
// produced by a coherent sine test. skirt widens the signal bin exclusion
// (use 0 for coherent sampling, ≥2 with windows).
func (s *Spectrum) Analyze(skirt int) (SpectralMetrics, error) {
	if len(s.Power) < 8 {
		return SpectralMetrics{}, fmt.Errorf("dsp: spectrum too short (%d bins)", len(s.Power))
	}
	// Locate the signal: the largest bin excluding DC (and its skirt).
	sig := 1 + skirt
	for k := 1 + skirt; k < len(s.Power); k++ {
		if s.Power[k] > s.Power[sig] {
			sig = k
		}
	}
	signalPow := 0.0
	inSignal := func(k int) bool { return k >= sig-skirt && k <= sig+skirt }
	inDC := func(k int) bool { return k <= skirt }
	for k := range s.Power {
		if inSignal(k) {
			signalPow += s.Power[k]
		}
	}
	if signalPow <= 0 {
		return SpectralMetrics{}, fmt.Errorf("dsp: no signal found")
	}
	noiseDist := 0.0
	count := 0
	maxSpur := 0.0
	for k := range s.Power {
		if inSignal(k) || inDC(k) {
			continue
		}
		noiseDist += s.Power[k]
		count++
		if s.Power[k] > maxSpur {
			maxSpur = s.Power[k]
		}
	}
	// Harmonics 2..5 with aliasing folded back into [0, N/2].
	thd := 0.0
	n := s.N
	for h := 2; h <= 5; h++ {
		bin := (sig * h) % n
		if bin > n/2 {
			bin = n - bin
		}
		if bin >= 0 && bin < len(s.Power) && !inSignal(bin) && !inDC(bin) {
			thd += s.Power[bin]
		}
	}
	m := SpectralMetrics{SignalBin: sig, SignalPow: signalPow}
	if noiseDist <= 0 {
		noiseDist = 1e-300
	}
	m.SNDRdB = 10 * math.Log10(signalPow/noiseDist)
	if maxSpur <= 0 {
		maxSpur = 1e-300
	}
	m.SFDRdB = 10 * math.Log10(signalPow/maxSpur)
	if thd <= 0 {
		thd = 1e-300
	}
	m.THDdB = 10 * math.Log10(thd/signalPow)
	m.ENOB = (m.SNDRdB - 1.76) / 6.02
	if count > 0 {
		m.NoiseFloor = noiseDist / float64(count)
	}
	return m, nil
}

// SineTestMetrics is the one-call path from a sampled sine to metrics,
// assuming coherent sampling (rectangular window, no skirt).
func SineTestMetrics(samples []float64, fs float64) (SpectralMetrics, error) {
	sp, err := PowerSpectrum(samples, fs, Rectangular)
	if err != nil {
		return SpectralMetrics{}, err
	}
	return sp.Analyze(0)
}

// INLDNL computes integral and differential nonlinearity (in LSB) from a
// ramp histogram: counts[c] is how many samples landed in code c for a
// uniform full-scale ramp input. Codes with zero expected count are
// skipped. The first and last code are excluded, as is conventional.
func INLDNL(counts []int) (inl, dnl []float64, err error) {
	n := len(counts)
	if n < 4 {
		return nil, nil, fmt.Errorf("dsp: need ≥4 codes, got %d", n)
	}
	total := 0
	for _, c := range counts[1 : n-1] {
		total += c
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("dsp: empty histogram")
	}
	ideal := float64(total) / float64(n-2)
	dnl = make([]float64, n)
	inl = make([]float64, n)
	acc := 0.0
	for c := 1; c < n-1; c++ {
		dnl[c] = float64(counts[c])/ideal - 1
		acc += dnl[c]
		inl[c] = acc
	}
	return inl, dnl, nil
}

// PeakAbs returns the maximum |v| over a slice, for INL/DNL summaries.
func PeakAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
