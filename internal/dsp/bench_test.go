package dsp

import (
	"math"
	"testing"
)

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSineTestMetrics4096(b *testing.B) {
	n := 4096
	fs := 40e6
	fSig, _ := CoherentBin(fs, 2.3e6, n)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 0.5 + 0.5*math.Sin(2*math.Pi*fSig*float64(i)/fs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SineTestMetrics(samples, fs); err != nil {
			b.Fatal(err)
		}
	}
}
