package subadc

import (
	"math"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func specFor(t *testing.T, bits int) stagespec.MDACSpec {
	t.Helper()
	adc := stagespec.ADCSpec{Bits: 13, SampleRate: 40e6, VRef: 1}
	var cfg enum.Config
	switch bits {
	case 2:
		cfg = enum.Config{2, 2, 2, 2, 2, 2}
	case 3:
		cfg = enum.Config{3, 3, 3}
	case 4:
		cfg = enum.Config{4, 4}
	default:
		t.Fatalf("unsupported bits %d", bits)
	}
	specs, err := stagespec.Translate(adc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return specs[0]
}

func TestDesignBasics(t *testing.T) {
	p := pdk.TSMC025()
	b, err := Design(specFor(t, 3), p, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 6 {
		t.Fatalf("3-bit stage → %d comparators, want 6", b.Count)
	}
	if b.TotalPower <= 0 || b.TotalPower > 10e-3 {
		t.Fatalf("bank power = %g W, implausible", b.TotalPower)
	}
	if math.Abs(b.TotalPower-float64(b.Count)*b.PerComp.Power) > 1e-12 {
		t.Fatal("total power must be count × per-comparator power")
	}
}

func TestPowerGrowsWithResolution(t *testing.T) {
	p := pdk.TSMC025()
	var prev float64
	for _, bits := range []int{2, 3, 4} {
		b, err := Design(specFor(t, bits), p, 40e6)
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalPower <= prev {
			t.Fatalf("%d-bit bank power %g not above %g", bits, b.TotalPower, prev)
		}
		prev = b.TotalPower
	}
}

func TestPowerScalesWithRate(t *testing.T) {
	p := pdk.TSMC025()
	spec := specFor(t, 3)
	slow, err := Design(spec, p, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Design(spec, p, 80e6)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalPower <= slow.TotalPower {
		t.Fatalf("faster clock must cost more: %g vs %g", fast.TotalPower, slow.TotalPower)
	}
}

func TestTighterOffsetCostsMore(t *testing.T) {
	p := pdk.TSMC025()
	spec := specFor(t, 3)
	loose, err := Design(spec, p, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	tight := spec
	tight.CompOffsetTol = spec.CompOffsetTol / 8
	tb, err := Design(tight, p, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if tb.PerComp.PreampI <= loose.PerComp.PreampI {
		t.Fatal("tighter offset must demand more preamp current")
	}
}

func TestDesignErrors(t *testing.T) {
	p := pdk.TSMC025()
	if _, err := Design(specFor(t, 3), p, 0); err == nil {
		t.Fatal("expected rate error")
	}
	bad := specFor(t, 3)
	bad.ComparatorCount = 0
	if _, err := Design(bad, p, 40e6); err == nil {
		t.Fatal("expected count error")
	}
}

func TestPowerCurve(t *testing.T) {
	p := pdk.TSMC025()
	curve, err := PowerCurve(p, 40e6, 1.0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	// Exponential comparator count dominates: the 4-bit bank costs more
	// than 3× the 2-bit bank.
	if curve[2] < 3*curve[0] {
		t.Fatalf("curve not superlinear: %v", curve)
	}
	if _, err := PowerCurve(p, 40e6, 1, 5, 4); err == nil {
		t.Fatal("expected range error")
	}
}
