// Package subadc models the flash sub-ADC inside each pipeline stage: a
// bank of clocked comparators (preamplifier + regenerative latch) whose
// power the paper adds to the MDAC power to obtain total stage power.
// The model is the standard design procedure: the preamplifier must
// amplify an LSB-scale overdrive to the latch's sensitivity within the
// comparison window, and the latch must regenerate to full swing within
// its time constant budget; both translate to gm, hence current, hence
// power. Digital correction relaxes comparator accuracy to the stage's
// own (coarse) LSB, which is why sub-ADC power stays small next to the
// MDAC — but with 2^m−2 comparators it grows exponentially in m, the
// counterweight that makes stage-resolution optimization non-trivial.
package subadc

import (
	"fmt"
	"math"

	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

// Comparator is one comparator's design point.
type Comparator struct {
	PreampGM    float64 // preamplifier transconductance, S
	PreampI     float64 // preamplifier static current, A
	LatchCLoad  float64 // regeneration node capacitance, F
	LatchEnergy float64 // CV² dynamic energy per decision, J
	Power       float64 // total average power at the stage clock rate, W
}

// Bank is the full flash converter of one stage.
type Bank struct {
	Count      int
	PerComp    Comparator
	TotalPower float64
}

// Design sizes the comparator bank for a stage spec at the given sample
// rate. Model:
//
//   - The preamp must raise the minimum overdrive (¼ of the comparator
//     offset tolerance) to the latch sensitivity (~10 mV) within half the
//     comparison window: gm/C_int sets that exponential-free linear gain
//     bandwidth, giving gm ≥ A_need·C_int/t_cmp.
//   - The latch regenerates with τ = C_latch/gm_latch; full swing needs
//     ~ln(VDD/V_sense)·τ < t_cmp/2, but its power is dominated by the CV²f
//     dynamic term, which we charge at the clock rate.
func Design(spec stagespec.MDACSpec, proc *pdk.Process, fs float64) (Bank, error) {
	if fs <= 0 {
		return Bank{}, fmt.Errorf("subadc: non-positive sample rate")
	}
	if spec.ComparatorCount <= 0 {
		return Bank{}, fmt.Errorf("subadc: stage %d has no comparators", spec.Stage)
	}
	const (
		cInt   = 30e-15 // preamp integration node capacitance
		cLatch = 20e-15 // regeneration node capacitance
		vSense = 10e-3  // latch sensitivity
		vovPre = 0.15   // preamp overdrive bias
	)
	tCmp := 1 / (2 * fs) // comparison happens in the half-period

	// Required preamp gain: smallest resolvable input is a quarter of the
	// offset tolerance (margin for latch noise and hysteresis).
	vMin := spec.CompOffsetTol / 4
	aNeed := vSense / vMin
	if aNeed < 1 {
		aNeed = 1
	}
	gmPre := aNeed * cInt / (0.5 * tCmp)
	iPre := gmPre * vovPre / 2 // square-law I = gm·Vov/2

	// Latch dynamic energy per decision: both regeneration nodes swing
	// rail to rail.
	eLatch := cLatch * proc.VDD * proc.VDD

	per := Comparator{
		PreampGM:    gmPre,
		PreampI:     iPre,
		LatchCLoad:  cLatch,
		LatchEnergy: eLatch,
		Power:       proc.VDD*iPre + eLatch*fs,
	}
	b := Bank{Count: spec.ComparatorCount, PerComp: per}
	b.TotalPower = float64(b.Count) * per.Power
	return b, nil
}

// PowerCurve reports bank power across stage resolutions at fixed offset
// budgeting — used by the ablation benchmarks to show the exponential
// comparator-count term.
func PowerCurve(proc *pdk.Process, fs, vref float64, bitsLo, bitsHi int) ([]float64, error) {
	if bitsLo < 2 || bitsHi < bitsLo {
		return nil, fmt.Errorf("subadc: bad resolution range %d..%d", bitsLo, bitsHi)
	}
	out := make([]float64, 0, bitsHi-bitsLo+1)
	for m := bitsLo; m <= bitsHi; m++ {
		spec := stagespec.MDACSpec{
			Stage:           1,
			Bits:            m,
			ComparatorCount: (1 << m) - 2,
			CompOffsetTol:   vref / math.Pow(2, float64(m+1)),
		}
		b, err := Design(spec, proc, fs)
		if err != nil {
			return nil, err
		}
		out = append(out, b.TotalPower)
	}
	return out, nil
}
