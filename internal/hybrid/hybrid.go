// Package hybrid implements the paper's block-level evaluation flow (§3):
// every synthesis candidate is scored by
//
//  1. a DC simulation of the closed-loop MDAC to bias the amplifier and
//     extract small-signal parameters (simulation, trustworthy bias),
//  2. a numerical transfer function — the DPI/SFG symbolic loop gain with
//     the extracted values bound — for gain, crossover and phase margin
//     (equation-fast, simulation-accurate for linear behaviour), and
//  3. a transient simulation of the worst-case residue step for the
//     large-swing settling behaviour that linear models cannot capture.
//
// Two alternative evaluators bracket the hybrid: EquationOnly uses the
// closed-form textbook expressions end to end (the style of [Hershenson,
// ICCAD'02]), and SimOnly replaces the symbolic transfer function with a
// swept AC analysis. Benchmarks over the three modes reproduce the paper's
// speed/accuracy argument.
package hybrid

import (
	"context"
	"fmt"
	"math"

	"time"

	"pipesyn/internal/device"
	"pipesyn/internal/dpi"
	"pipesyn/internal/expr"
	"pipesyn/internal/mdac"
	"pipesyn/internal/netlist"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
	"pipesyn/internal/stagespec"
)

// Mode selects the evaluation strategy.
type Mode int

const (
	Hybrid Mode = iota
	EquationOnly
	SimOnly
)

func (m Mode) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case EquationOnly:
		return "equation"
	case SimOnly:
		return "simulation"
	}
	return "?"
}

// Metrics is the outcome of evaluating one MDAC sizing candidate.
type Metrics struct {
	Mode Mode

	Power float64 // static supply power, W

	LoopGain0   float64 // T(0), loop gain at DC
	AmpGain     float64 // A0 = T(0)/β
	CrossoverHz float64 // loop unity-gain frequency
	PhaseMargin float64 // degrees
	StaticError float64 // closed-loop static gain error ≈ 1/T(0)

	SettleTime float64 // measured settling time from the step, s
	Settled    bool    // reached the tolerance band within the window

	SwingLo, SwingHi float64 // output range with all devices saturated
	AllSaturated     bool    // every amplifier FET in saturation at OP

	// Per-leg wall-clock costs, for the §3 speed/accuracy comparison:
	// the transfer-function leg is where hybrid and full simulation
	// diverge (symbolic program sweep vs per-frequency matrix solves).
	DCTime, TFTime, TranTime time.Duration
}

// StageEvaluator evaluates sizing candidates for one fixed stage spec.
// It caches the compiled symbolic loop transfer function: the MDAC
// topology never changes during a synthesis run, so the expensive
// DPI/SFG + Mason step happens once and every candidate only re-binds the
// extracted small-signal values.
type StageEvaluator struct {
	Spec    stagespec.MDACSpec
	Process *pdk.Process
	Mode    Mode

	// NewtonReuse enables the simulator's factorization-reuse Newton
	// variant (DESIGN.md §5.5) on the DC and transient legs. It applies
	// identically to the serial and batched paths, so Evaluate and
	// EvaluateBatch stay bitwise interchangeable for a given setting.
	NewtonReuse bool

	prog *expr.Program
	vars []string
	sIdx int
}

// NewStageEvaluator prepares an evaluator for the given block spec.
func NewStageEvaluator(spec stagespec.MDACSpec, proc *pdk.Process, mode Mode) *StageEvaluator {
	return &StageEvaluator{Spec: spec, Process: proc, Mode: mode}
}

// Evaluate scores a candidate stage under the given mode. For repeated
// evaluations of the same spec (synthesis inner loop), prefer a shared
// StageEvaluator, which caches the symbolic transfer function.
func Evaluate(ctx context.Context, st mdac.Stage, mode Mode) (Metrics, error) {
	se := NewStageEvaluator(st.Spec, st.Process, mode)
	return se.Evaluate(ctx, st.Sizing)
}

// Evaluate scores one sizing candidate. All candidates evaluated through
// one StageEvaluator must share a topology (the compiled loop transfer
// function is cached per topology).
//
// One evaluation is the engine's cancellation granule: ctx is checked on
// entry and between the DC, transfer-function, and transient legs, so a
// cancelled synthesis returns within the leg already in flight.
func (se *StageEvaluator) Evaluate(ctx context.Context, sizing opamp.Amp) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	st := mdac.Stage{Spec: se.Spec, Sizing: sizing, Process: se.Process}
	switch se.Mode {
	case EquationOnly:
		return evaluateEquations(st)
	case Hybrid, SimOnly:
		return se.evaluateWithSim(ctx, st)
	}
	return Metrics{}, fmt.Errorf("hybrid: unknown mode %d", se.Mode)
}

// EvaluateBatch scores a population of sizing candidates in one call,
// sharing a single warm simulation kernel (layout, sparsity analysis,
// solver workspaces) across all of them. Candidates are evaluated in
// index order and every result is bitwise identical to calling Evaluate
// on the same sizing, so callers may switch between the two paths
// without perturbing a deterministic synthesis run.
//
// The returned slices are index-aligned with sizings: errs[i] is nil
// exactly when metrics[i] is valid. Cancellation is checked between
// candidates; once ctx is done the remaining entries carry ctx.Err().
func (se *StageEvaluator) EvaluateBatch(ctx context.Context, sizings []opamp.Amp) ([]Metrics, []error) {
	metrics := make([]Metrics, len(sizings))
	errs := make([]error, len(sizings))
	if se.Mode != EquationOnly && len(sizings) > 1 {
		holds := make([]*netlist.Circuit, len(sizings))
		var buildErr error
		for i, sz := range sizings {
			st := mdac.Stage{Spec: se.Spec, Sizing: sz, Process: se.Process}
			holds[i], buildErr = st.HoldCircuit()
			if buildErr != nil {
				break
			}
		}
		if buildErr == nil {
			bt, err := sim.NewBatch(holds)
			if err == nil {
				for i, sz := range sizings {
					if err := ctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					st := mdac.Stage{Spec: se.Spec, Sizing: sz, Process: se.Process}
					metrics[i], errs[i] = se.evaluateHold(ctx, st, holds[i], batchSolver{bt: bt, idx: i})
				}
				return metrics, errs
			}
		}
		// Hold construction or batch binding failed (e.g. a candidate
		// changed the topology): fall through to the serial path, which
		// reports per-candidate errors with full context.
	}
	for i := range sizings {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		metrics[i], errs[i] = se.Evaluate(ctx, sizings[i])
	}
	return metrics, errs
}

// compileLoopTF builds and caches the symbolic loop transfer function
// from the candidate's topology. The cin placeholder value is irrelevant:
// only the element's existence shapes the topology, and Env re-binds its
// value on every candidate.
func (se *StageEvaluator) compileLoopTF(amp opamp.Amp) error {
	if se.prog != nil {
		return nil
	}
	st := mdac.Stage{Spec: se.Spec, Sizing: amp, Process: se.Process}
	loop, err := st.LoopCircuit(1e-16)
	if err != nil {
		return err
	}
	// The diode-connected mirror gate is a low-impedance bias node;
	// grounding it for small-signal purposes is the designer's standard
	// simplification and collapses the Mason loop set (and with it the
	// compiled program) by an order of magnitude.
	an, err := dpi.Build(loop, dpi.Options{
		Input: mdac.NodeDrv, IncludeCaps: true,
		ACGround: []string{mdac.AmpPrefix + "bn"},
	})
	if err != nil {
		return fmt.Errorf("hybrid: DPI build: %w", err)
	}
	tf, err := an.TransferFunction(mdac.NodeFB)
	if err != nil {
		return fmt.Errorf("hybrid: Mason: %w", err)
	}
	prog, vars, err := tf.Compile()
	if err != nil {
		return err
	}
	se.prog, se.vars = prog, vars
	se.sIdx = prog.VarIndex("s")
	if se.sIdx < 0 {
		return fmt.Errorf("hybrid: loop transfer function lost its frequency dependence")
	}
	return nil
}

// evaluateEquations is the pure closed-form path: no simulator calls.
func evaluateEquations(st mdac.Stage) (Metrics, error) {
	sp := st.Spec
	eq := st.Sizing.Analyze(st.Process, sp.CLoad+sp.CFeed)
	beta := sp.Beta
	m := Metrics{Mode: EquationOnly}
	m.Power = eq.Power
	m.AmpGain = eq.A0
	m.LoopGain0 = eq.A0 * beta
	m.CrossoverHz = eq.GBW * beta
	m.PhaseMargin = 90 - math.Atan(m.CrossoverHz/eq.P2)*180/math.Pi
	if m.LoopGain0 > 0 {
		m.StaticError = 1 / m.LoopGain0
	} else {
		m.StaticError = 1
	}
	// Settling: slew phase + N·τ linear phase.
	step := st.IdealOutputStep()
	tSlew := 0.0
	if eq.SR > 0 {
		tSlew = step / eq.SR * 0.5 // half the step is slew-limited, typically
	}
	tau := 1 / (2 * math.Pi * m.CrossoverHz)
	ntau := math.Log(1 / sp.SettleTol)
	m.SettleTime = tSlew + ntau*tau
	m.Settled = m.SettleTime <= sp.TSettle+sp.TSlew
	m.SwingLo, m.SwingHi = eq.SwingLo, eq.SwingHi
	m.AllSaturated = true // equations assume intended regions
	return m, nil
}

// holdSolver abstracts how the closed-loop hold circuit's DC and
// transient legs are solved: standalone sim calls, or a warm sim.Batch
// kernel shared across a candidate population. Both produce bit-identical
// results, so the evaluation metrics do not depend on the path taken.
type holdSolver interface {
	op(hold *netlist.Circuit, opts sim.DCOpts) (*sim.DCResult, error)
	tran(hold *netlist.Circuit, opts sim.TranOpts) (*sim.TranResult, error)
}

// standaloneSolver compiles the circuit on every call (the historical
// single-candidate path).
type standaloneSolver struct{}

func (standaloneSolver) op(hold *netlist.Circuit, opts sim.DCOpts) (*sim.DCResult, error) {
	return sim.OP(hold, opts)
}

func (standaloneSolver) tran(hold *netlist.Circuit, opts sim.TranOpts) (*sim.TranResult, error) {
	return sim.Tran(hold, opts)
}

// batchSolver routes the hold-circuit legs of candidate idx through a
// shared warm kernel.
type batchSolver struct {
	bt  *sim.Batch
	idx int
}

func (bs batchSolver) op(_ *netlist.Circuit, opts sim.DCOpts) (*sim.DCResult, error) {
	return bs.bt.OP(bs.idx, opts)
}

func (bs batchSolver) tran(_ *netlist.Circuit, opts sim.TranOpts) (*sim.TranResult, error) {
	return bs.bt.Tran(bs.idx, opts)
}

// evaluateWithSim shares the DC + transient legs between Hybrid and
// SimOnly; they differ in how the loop transfer function is obtained.
func (se *StageEvaluator) evaluateWithSim(ctx context.Context, st mdac.Stage) (Metrics, error) {
	hold, err := st.HoldCircuit()
	if err != nil {
		return Metrics{Mode: se.Mode}, err
	}
	return se.evaluateHold(ctx, st, hold, standaloneSolver{})
}

// evaluateHold runs the three evaluation legs against an already-built
// hold circuit, solving the DC and transient legs through sv.
func (se *StageEvaluator) evaluateHold(ctx context.Context, st mdac.Stage, hold *netlist.Circuit, sv holdSolver) (Metrics, error) {
	mode := se.Mode
	m := Metrics{Mode: mode}
	sp := st.Spec

	tDC := time.Now()
	op, err := sv.op(hold, sim.DCOpts{NewtonReuse: se.NewtonReuse})
	if err != nil {
		return m, fmt.Errorf("hybrid: closed-loop OP: %w", err)
	}
	m.DCTime = time.Since(tDC)
	m.Power = op.SupplyPower(hold)

	// Operating-region audit over the amplifier devices. The mirror
	// diodes are saturated by construction; all of them must be.
	m.AllSaturated = true
	var cin float64
	for name, mop := range op.MOS {
		if mop.Region != device.Saturation {
			m.AllSaturated = false
		}
		if name == mdac.AmpPrefix+"m1" {
			cin = mop.CGS
		}
	}
	m.SwingLo, m.SwingHi = st.Sizing.SwingWindow(op.MOS, mdac.AmpPrefix, st.Process.VDD)

	// Loop transfer function.
	if err := ctx.Err(); err != nil {
		return m, err
	}
	loop, err := st.LoopCircuit(cin)
	if err != nil {
		return m, err
	}
	beta := sp.CFeed / (sp.CFeed + sp.CSample + cin)
	tTF := time.Now()
	switch mode {
	case Hybrid:
		if err := se.compileLoopTF(st.Sizing); err != nil {
			return m, err
		}
		env, err := dpi.Env(loop, op, dpi.Options{})
		if err != nil {
			return m, err
		}
		// Evaluate the cached symbolic transfer function pointwise with
		// complex arithmetic. (Converting the un-cancelled degree-~50
		// Mason rational function to polynomial coefficients loses double
		// precision; direct evaluation of the compiled program does not.)
		met, err := se.loopMetrics(env)
		if err != nil {
			return m, fmt.Errorf("hybrid: numeric TF: %w", err)
		}
		m.LoopGain0 = met.gain0
		m.CrossoverHz = met.crossover
		m.PhaseMargin = met.pm
	case SimOnly:
		ac, err := sim.AC(loop, op, sim.ACOpts{FStart: 1e3, FStop: 100e9, PointsPerDecade: 40})
		if err != nil {
			return m, fmt.Errorf("hybrid: AC sweep: %w", err)
		}
		h, err := ac.Transfer(mdac.NodeFB)
		if err != nil {
			return m, err
		}
		vals := make([]complex128, len(h))
		for i := range h {
			vals[i] = -h[i] // loop gain T = −V(fb)
		}
		met := loopMetricsFrom(ac.Freqs, vals)
		m.LoopGain0 = met.gain0
		m.CrossoverHz = met.crossover
		m.PhaseMargin = met.pm
	}
	m.TFTime = time.Since(tTF)
	m.AmpGain = m.LoopGain0 / beta
	if m.LoopGain0 > 0 {
		m.StaticError = 1 / m.LoopGain0
	} else {
		m.StaticError = 1
	}

	// Transient settling of the worst-case residue step.
	if err := ctx.Err(); err != nil {
		return m, err
	}
	window := sp.TSlew + sp.TSettle
	tStop := mdac.StepDelay + 1.5*window
	tStep := window / 400
	tTran := time.Now()
	tr, err := sv.tran(hold, sim.TranOpts{TStop: tStop, TStep: tStep, NewtonReuse: se.NewtonReuse})
	if err != nil {
		return m, fmt.Errorf("hybrid: transient: %w", err)
	}
	m.TranTime = time.Since(tTran)
	settle, ok, err := SettleTime(tr, mdac.NodeOut, mdac.StepDelay, sp.SettleTol*st.IdealOutputStep())
	if err != nil {
		return m, err
	}
	m.SettleTime = settle
	m.Settled = ok && settle <= window
	return m, nil
}

type loopMet struct {
	gain0, crossover, pm float64
}

// loopMetrics extracts the loop-gain metrics from the cached program with
// an adaptive two-pass sweep: a coarse pass brackets the unity crossing,
// a fine pass around it pins down the crossover and phase margin.
func (se *StageEvaluator) loopMetrics(env map[string]float64) (loopMet, error) {
	coarseF, coarseV, err := se.sweepProgram(env, 1e3, 100e9, 8)
	if err != nil {
		return loopMet{}, err
	}
	negate(coarseV) // loop gain T = −V(fb)/V(drive)
	met := loopMetricsFrom(coarseF, coarseV)
	if met.crossover > 0 {
		lo := met.crossover / 3
		hi := met.crossover * 3
		fineF, fineV, err := se.sweepProgram(env, lo, hi, 40)
		if err != nil {
			return loopMet{}, err
		}
		negate(fineV)
		fine := loopMetricsFrom(fineF, fineV)
		if fine.crossover > 0 {
			met.crossover = fine.crossover
			met.pm = fine.pm
		}
	}
	return met, nil
}

func negate(v []complex128) {
	for i := range v {
		v[i] = -v[i]
	}
}

// sweepProgram evaluates the cached transfer-function program over a
// log-frequency grid — the "numerical transfer function" leg of the
// hybrid evaluator.
func (se *StageEvaluator) sweepProgram(env map[string]float64, fLo, fHi float64, ppd int) ([]float64, []complex128, error) {
	slot := make([]complex128, len(se.vars))
	for i, name := range se.vars {
		if i == se.sIdx {
			continue
		}
		v, ok := env[name]
		if !ok {
			return nil, nil, fmt.Errorf("hybrid: environment missing %q", name)
		}
		slot[i] = complex(v, 0)
	}
	decades := math.Log10(fHi / fLo)
	n := int(decades*float64(ppd)) + 1
	if n < 2 {
		n = 2
	}
	freqs := make([]float64, n)
	vals := make([]complex128, n)
	// Per-call (not per-evaluator) buffer: evaluators are shared across
	// the parallel scheduler's workers, the buffer must not be.
	var buf expr.EvalBuf
	for i := 0; i < n; i++ {
		f := fLo * math.Pow(10, decades*float64(i)/float64(n-1))
		freqs[i] = f
		slot[se.sIdx] = complex(0, 2*math.Pi*f)
		v, err := se.prog.EvalCInto(&buf, slot)
		if err != nil {
			return nil, nil, err
		}
		vals[i] = v
	}
	return freqs, vals, nil
}

// loopMetricsFrom extracts the DC loop gain, unity crossover and phase
// margin from sampled loop-gain data (phase unwrapped across the sweep).
func loopMetricsFrom(freqs []float64, vals []complex128) loopMet {
	var met loopMet
	if len(vals) == 0 {
		return met
	}
	met.gain0 = cmplxAbs(vals[0])
	prevMag := cmplxAbs(vals[0])
	prevPhase := math.Atan2(imag(vals[0]), real(vals[0])) * 180 / math.Pi
	for i := 1; i < len(vals); i++ {
		mag := cmplxAbs(vals[i])
		phase := math.Atan2(imag(vals[i]), real(vals[i])) * 180 / math.Pi
		for phase-prevPhase > 180 {
			phase -= 360
		}
		for phase-prevPhase < -180 {
			phase += 360
		}
		if met.crossover == 0 && prevMag >= 1 && mag < 1 {
			frac := (prevMag - 1) / (prevMag - mag)
			lf := math.Log10(freqs[i-1]) + frac*(math.Log10(freqs[i])-math.Log10(freqs[i-1]))
			met.crossover = math.Pow(10, lf)
			phAt := prevPhase + frac*(phase-prevPhase)
			pm := 180 + phAt
			for pm > 360 {
				pm -= 360
			}
			for pm < -360 {
				pm += 360
			}
			met.pm = pm
		}
		prevMag, prevPhase = mag, phase
	}
	return met
}

func cmplxAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

// SettleTime measures when the waveform last leaves the ±band around its
// own final value, returning the elapsed time since t0. ok is false when
// the waveform never stays inside the band.
func SettleTime(tr *sim.TranResult, node string, t0, band float64) (float64, bool, error) {
	w, err := tr.Waveform(node)
	if err != nil {
		return 0, false, err
	}
	if len(w) < 2 {
		return 0, false, fmt.Errorf("hybrid: waveform too short")
	}
	final := w[len(w)-1]
	lastOutside := -1
	for i, v := range w {
		if tr.T[i] < t0 {
			continue
		}
		if math.Abs(v-final) > band {
			lastOutside = i
		}
	}
	if lastOutside == -1 {
		return 0, true, nil // never left the band after the step
	}
	// Require a meaningful dwell inside the band at the end of the window;
	// a waveform that only "settles" because the final sample matches
	// itself has not settled.
	tEnd := tr.T[len(tr.T)-1]
	dwell := tEnd - tr.T[lastOutside]
	if lastOutside >= len(w)-2 || dwell < 0.02*(tEnd-t0) {
		return tEnd - t0, false, nil
	}
	return tr.T[lastOutside+1] - t0, true, nil
}

// CheckSpec converts raw metrics into a pass/fail audit against the block
// spec, with a scalar violation measure for penalty-based optimization
// (0 = feasible; larger = worse).
type SpecReport struct {
	Violations float64
	Failures   []string
}

// Check audits metrics against the stage spec. PMMin is the phase-margin
// floor (60° is the customary settling-friendly target).
func Check(sp Specs, m Metrics) SpecReport {
	var r SpecReport
	add := func(short float64, format string, args ...interface{}) {
		if short > 0 {
			r.Violations += short
			r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
		}
	}
	add(rel(sp.GainMin, m.AmpGain), "gain %.0f < required %.0f", m.AmpGain, sp.GainMin)
	add(rel(sp.CrossoverMin, m.CrossoverHz), "crossover %.3g < required %.3g", m.CrossoverHz, sp.CrossoverMin)
	add(rel(sp.PMMin, m.PhaseMargin), "PM %.1f° < required %.1f°", m.PhaseMargin, sp.PMMin)
	add(rel(m.StaticError, sp.StaticErrMax)*0.5, "static error %.2g > budget %.2g", m.StaticError, sp.StaticErrMax)
	if !m.Settled {
		r.Violations += 1
		r.Failures = append(r.Failures, "did not settle in window")
	}
	add(rel(m.SettleTime, sp.SettleTimeMax), "settle %.3g > window %.3g", m.SettleTime, sp.SettleTimeMax)
	if m.SwingLo > sp.SwingLoMax {
		r.Violations += (m.SwingLo - sp.SwingLoMax)
		r.Failures = append(r.Failures, fmt.Sprintf("swing floor %.2f above %.2f", m.SwingLo, sp.SwingLoMax))
	}
	if m.SwingHi < sp.SwingHiMin {
		r.Violations += (sp.SwingHiMin - m.SwingHi)
		r.Failures = append(r.Failures, fmt.Sprintf("swing ceiling %.2f below %.2f", m.SwingHi, sp.SwingHiMin))
	}
	if !m.AllSaturated {
		r.Violations += 2
		r.Failures = append(r.Failures, "device out of saturation")
	}
	return r
}

// rel returns the normalized shortfall of got versus a want-at-least
// target (0 when satisfied).
func rel(want, got float64) float64 {
	if want <= 0 || got >= want {
		return 0
	}
	return (want - got) / want
}

// Specs is the pass/fail threshold set derived from an MDAC spec.
type Specs struct {
	GainMin       float64
	CrossoverMin  float64 // β·GBW requirement
	PMMin         float64
	StaticErrMax  float64
	SettleTimeMax float64
	SwingLoMax    float64
	SwingHiMin    float64
}

// SpecsFor derives the audit thresholds from a stage.
func SpecsFor(st mdac.Stage) Specs {
	sp := st.Spec
	return Specs{
		GainMin:       sp.GainMin,
		CrossoverMin:  sp.GBWMin * sp.Beta,
		PMMin:         60,
		StaticErrMax:  sp.SettleTol / 2,
		SettleTimeMax: sp.TSettle + sp.TSlew,
		SwingLoMax:    mdac.VCM - sp.SwingMin,
		SwingHiMin:    mdac.VCM + sp.SwingMin,
	}
}
