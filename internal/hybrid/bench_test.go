package hybrid

import (
	"context"
	"testing"

	"pipesyn/internal/opamp"
)

// benchSizings derives n structurally identical sizing variants of the
// relaxed stage, spread far enough apart that each candidate settles on
// its own operating point.
func benchSizings(tb testing.TB, n int) []opamp.Amp {
	tb.Helper()
	st := relaxedStage(tb)
	base := st.Sizing.Vector()
	out := make([]opamp.Amp, n)
	for i := range out {
		v := append([]float64(nil), base...)
		for j := range v {
			v[j] *= 1 + 0.04*float64(i)*float64(j%3)
		}
		sz, err := st.Sizing.WithVector(v)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = sz.Bound(st.Process)
	}
	return out
}

// BenchmarkEvaluateSerial8 evaluates 8 candidates through independent
// Evaluate calls: each pays its own netlist build, layout compile,
// symbolic analysis, and workspace allocation.
func BenchmarkEvaluateSerial8(b *testing.B) {
	st := relaxedStage(b)
	sizings := benchSizings(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se := NewStageEvaluator(st.Spec, st.Process, Hybrid)
		for _, sz := range sizings {
			if _, err := se.Evaluate(context.Background(), sz); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateBatch8 evaluates the same 8 candidates through one
// warm sim.Batch kernel with the reuse-Newton solver on — the
// configuration the annealer's batched moves run (synth.Options
// {BatchEval, NewtonReuse}). Compare ns/op against EvaluateSerial8 for
// the full batched-path speedup; for the same-config bitwise
// equivalence contract see TestEvaluateBatchMatchesSerial.
func BenchmarkEvaluateBatch8(b *testing.B) {
	st := relaxedStage(b)
	sizings := benchSizings(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se := NewStageEvaluator(st.Spec, st.Process, Hybrid)
		se.NewtonReuse = true
		_, errs := se.EvaluateBatch(context.Background(), sizings)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
