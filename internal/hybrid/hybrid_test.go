package hybrid

import (
	"context"
	"math"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/mdac"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
	"pipesyn/internal/stagespec"
)

// relaxedStage returns a late-pipeline stage whose initial sizing is
// likely near-feasible, for fast integration tests.
func relaxedStage(t testing.TB) mdac.Stage {
	t.Helper()
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[1]
	p := pdk.TSMC025()
	sz := opamp.InitialSizing(p, opamp.BlockSpec{
		GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad, CFeed: sp.CFeed,
		Gain: sp.GainMin, Swing: sp.SwingMin,
	})
	return mdac.Stage{Spec: sp, Sizing: sz, Process: p}
}

func TestHybridEvaluation(t *testing.T) {
	st := relaxedStage(t)
	m, err := Evaluate(context.Background(), st, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if m.Power <= 0 {
		t.Fatalf("power = %g", m.Power)
	}
	if m.AmpGain < 100 {
		t.Fatalf("amp gain = %g, implausibly low for a two-stage OTA", m.AmpGain)
	}
	if m.CrossoverHz <= 0 {
		t.Fatalf("no crossover found")
	}
	if m.PhaseMargin <= 0 || m.PhaseMargin >= 180 {
		t.Fatalf("PM = %g out of range", m.PhaseMargin)
	}
	if m.SettleTime <= 0 {
		t.Fatalf("settle time = %g", m.SettleTime)
	}
	if m.SwingHi <= m.SwingLo {
		t.Fatalf("swing window inverted: [%g, %g]", m.SwingLo, m.SwingHi)
	}
}

// The central claim of the hybrid method: its linear metrics agree with
// full (swept AC) simulation because both come from the same extracted
// small-signal reality.
func TestHybridMatchesSimOnly(t *testing.T) {
	st := relaxedStage(t)
	hy, err := Evaluate(context.Background(), st, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Evaluate(context.Background(), st, SimOnly)
	if err != nil {
		t.Fatal(err)
	}
	relDiff := func(a, b float64) float64 {
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	if relDiff(hy.LoopGain0, so.LoopGain0) > 0.02 {
		t.Fatalf("loop gain: hybrid %g vs sim %g", hy.LoopGain0, so.LoopGain0)
	}
	if relDiff(hy.CrossoverHz, so.CrossoverHz) > 0.05 {
		t.Fatalf("crossover: hybrid %g vs sim %g", hy.CrossoverHz, so.CrossoverHz)
	}
	if math.Abs(hy.PhaseMargin-so.PhaseMargin) > 3 {
		t.Fatalf("PM: hybrid %g vs sim %g", hy.PhaseMargin, so.PhaseMargin)
	}
	// Power and settling come from identical legs, so they must agree
	// almost exactly.
	if relDiff(hy.Power, so.Power) > 1e-9 {
		t.Fatalf("power mismatch: %g vs %g", hy.Power, so.Power)
	}
}

// The equation-only path should be in the right ballpark (it is the
// designer's model, not reality) — within a factor of ~3 on gain and
// crossover for a near-textbook sizing.
func TestEquationOnlyBallpark(t *testing.T) {
	st := relaxedStage(t)
	eq, err := Evaluate(context.Background(), st, EquationOnly)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Evaluate(context.Background(), st, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(a, b float64) float64 {
		if a < b {
			a, b = b, a
		}
		return a / b
	}
	if r := ratio(eq.AmpGain, hy.AmpGain); r > 4 {
		t.Fatalf("equation gain %g vs hybrid %g: ratio %g", eq.AmpGain, hy.AmpGain, r)
	}
	if r := ratio(eq.CrossoverHz, hy.CrossoverHz); r > 4 {
		t.Fatalf("equation crossover %g vs hybrid %g: ratio %g", eq.CrossoverHz, hy.CrossoverHz, r)
	}
	if r := ratio(eq.Power, hy.Power); r > 2 {
		t.Fatalf("equation power %g vs hybrid %g", eq.Power, hy.Power)
	}
}

func TestCheckAudit(t *testing.T) {
	st := relaxedStage(t)
	specs := SpecsFor(st)
	good := Metrics{
		AmpGain: specs.GainMin * 2, CrossoverHz: specs.CrossoverMin * 2,
		PhaseMargin: 70, StaticError: specs.StaticErrMax / 2,
		SettleTime: specs.SettleTimeMax / 2, Settled: true,
		SwingLo: specs.SwingLoMax - 0.1, SwingHi: specs.SwingHiMin + 0.1,
		AllSaturated: true,
	}
	if r := Check(specs, good); r.Violations != 0 {
		t.Fatalf("good metrics flagged: %v", r.Failures)
	}
	bad := good
	bad.AmpGain = specs.GainMin / 10
	bad.Settled = false
	bad.AllSaturated = false
	r := Check(specs, bad)
	if r.Violations <= 0 || len(r.Failures) < 3 {
		t.Fatalf("bad metrics not flagged: %+v", r)
	}
}

func TestModeString(t *testing.T) {
	if Hybrid.String() != "hybrid" || EquationOnly.String() != "equation" || SimOnly.String() != "simulation" {
		t.Fatal("mode strings")
	}
	if _, err := Evaluate(context.Background(), relaxedStage(t), Mode(99)); err == nil {
		t.Fatal("expected unknown-mode error")
	}
}

func TestSettleTimeMeasurement(t *testing.T) {
	// Synthetic waveform: steps at t=1, exponentially approaches 2.0.
	tr := synthTran()
	st, ok, err := SettleTime(tr, "out", 1.0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("should settle")
	}
	// exp(-t/0.5) < 0.02/1.0 → t > 0.5·ln50 ≈ 1.96.
	if st < 1.5 || st > 2.5 {
		t.Fatalf("settle time = %g, want ≈2", st)
	}
	// Impossible band: never settles.
	_, ok, err = SettleTime(tr, "out", 1.0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("should not settle to 1e-12")
	}
	if _, _, err := SettleTime(tr, "ghost", 0, 1); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func synthTran() *sim.TranResult {
	n := 500
	tr := &sim.TranResult{V: map[string][]float64{}}
	for i := 0; i < n; i++ {
		tt := float64(i) * 0.01
		v := 1.0
		if tt >= 1 {
			v = 2 - math.Exp(-(tt-1)/0.5)
		}
		tr.T = append(tr.T, tt)
		tr.V["out"] = append(tr.V["out"], v)
	}
	return tr
}

// TestEvaluateBatchMatchesSerial: the batched evaluator is a pure
// throughput optimization — every metric must be bitwise identical to
// the serial Evaluate path for the same sizing.
func TestEvaluateBatchMatchesSerial(t *testing.T) {
	st := relaxedStage(t)
	se := NewStageEvaluator(st.Spec, st.Process, Hybrid)
	base := st.Sizing.Vector()
	sizings := make([]opamp.Amp, 4)
	for i := range sizings {
		v := append([]float64(nil), base...)
		for j := range v {
			v[j] *= 1 + 0.05*float64(i)*float64(j%3)
		}
		sz, err := st.Sizing.WithVector(v)
		if err != nil {
			t.Fatal(err)
		}
		sizings[i] = sz.Bound(st.Process)
	}
	batchM, batchE := se.EvaluateBatch(context.Background(), sizings)
	// Fresh evaluator for the serial pass so the TF cache state matches.
	se2 := NewStageEvaluator(st.Spec, st.Process, Hybrid)
	for i, sz := range sizings {
		serial, err := se2.Evaluate(context.Background(), sz)
		if batchE[i] != nil || err != nil {
			if (batchE[i] == nil) != (err == nil) {
				t.Fatalf("cand %d: batch err %v, serial err %v", i, batchE[i], err)
			}
			continue
		}
		b := batchM[i]
		pairs := [][2]float64{
			{b.Power, serial.Power}, {b.LoopGain0, serial.LoopGain0},
			{b.AmpGain, serial.AmpGain}, {b.CrossoverHz, serial.CrossoverHz},
			{b.PhaseMargin, serial.PhaseMargin}, {b.StaticError, serial.StaticError},
			{b.SettleTime, serial.SettleTime},
			{b.SwingLo, serial.SwingLo}, {b.SwingHi, serial.SwingHi},
		}
		for k, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("cand %d metric %d: batch %.17g vs serial %.17g", i, k, p[0], p[1])
			}
		}
		if b.Settled != serial.Settled || b.AllSaturated != serial.AllSaturated {
			t.Fatalf("cand %d: boolean metrics diverge", i)
		}
	}
}

// TestEvaluateBatchEquationMode: the batch entry point must work for the
// equation-only evaluator too (plain serial loop underneath).
func TestEvaluateBatchEquationMode(t *testing.T) {
	st := relaxedStage(t)
	se := NewStageEvaluator(st.Spec, st.Process, EquationOnly)
	ms, errs := se.EvaluateBatch(context.Background(), []opamp.Amp{st.Sizing, st.Sizing})
	for i := range ms {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if ms[i].Power <= 0 {
			t.Fatalf("cand %d: power %g", i, ms[i].Power)
		}
	}
}
