package yield

import (
	"context"
	"sync/atomic"
	"testing"

	"pipesyn/internal/core"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/sched"
	"pipesyn/internal/synth"
)

// testModel is a 10-bit pipeline with mismatch magnitudes that produce a
// non-trivial yield (some draws pass, some fail) so distribution and
// determinism assertions bite.
func testModel(t *testing.T) *Model {
	t.Helper()
	full, err := enum.Config{3, 2, 2}.WithTail(10)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Config: full, VRef: 1.0, SampleRate: 40e6}
	for i, bits := range full {
		sd := StageDist{Bits: bits, CompOffsetSigma: 1.0 / 48}
		if i < 3 {
			sd.GainSigma = 1.5e-3
			sd.CapSigma = 1.5e-3
			sd.NoiseRMS = 2e-4
		}
		m.Stages = append(m.Stages, sd)
	}
	return m
}

func TestDrawSeedContract(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		s := DrawSeed("key-a", i)
		if s != DrawSeed("key-a", i) {
			t.Fatalf("draw %d seed not stable", i)
		}
		if seen[s] {
			t.Fatalf("draw %d seed collides", i)
		}
		seen[s] = true
	}
	if DrawSeed("key-a", 0) == DrawSeed("key-b", 0) {
		t.Fatal("different study keys must give different draw streams")
	}
}

func TestKeyCanonicalizesDefaults(t *testing.T) {
	explicit := Spec{Draws: 1000, MinENOB: 9, Points: 4096, Amplitude: 0.95, CapA: 1e-3, OffsetMargin: 3}
	if Key("sk", 10, Spec{}) != Key("sk", 10, explicit) {
		t.Fatal("spelled-out defaults must share the zero spec's key")
	}
	if Key("sk", 10, Spec{Draws: 2000}) == Key("sk", 10, Spec{}) {
		t.Fatal("draw count must shape the key")
	}
	if Key("sk", 10, Spec{Chunk: 7}) != Key("sk", 10, Spec{}) {
		t.Fatal("chunk is reporting-only and must not shape the key")
	}
	if Key("sk2", 10, Spec{}) == Key("sk", 10, Spec{}) {
		t.Fatal("study key must shape the yield key")
	}
}

// The reproducibility contract: identical results — bit for bit, per
// draw — whether the draws run serially or spread across workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	m := testModel(t)
	spec := Spec{Draws: 96, MinENOB: 9, Points: 1024, Chunk: 16}
	run := func(workers int) *Result {
		res, err := Run(context.Background(), sched.NewPool(workers), m, "study-key", spec, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Pass != parallel.Pass || serial.Yield != parallel.Yield {
		t.Fatalf("yield differs: serial %d/%f parallel %d/%f",
			serial.Pass, serial.Yield, parallel.Pass, parallel.Yield)
	}
	for i := range serial.ENOBs {
		if serial.ENOBs[i] != parallel.ENOBs[i] {
			t.Fatalf("draw %d ENOB differs: %v vs %v", i, serial.ENOBs[i], parallel.ENOBs[i])
		}
	}
	if serial.ENOB != parallel.ENOB || serial.SNDRdB != parallel.SNDRdB {
		t.Fatalf("distributions differ: %+v vs %+v", serial.ENOB, parallel.ENOB)
	}
	// Sanity on the spread: a mismatch model must actually disperse.
	if serial.ENOB.Min >= serial.ENOB.Max {
		t.Fatalf("degenerate ENOB distribution: %+v", serial.ENOB)
	}
	if serial.Pass == 0 || serial.Pass == spec.Draws {
		t.Logf("warning: degenerate yield %d/%d — thresholds may need retuning", serial.Pass, spec.Draws)
	}
}

// A draw is a pure function of (studyKey, index): running a single draw
// standalone reproduces the same realization the batch run saw.
func TestRunDrawMatchesBatch(t *testing.T) {
	m := testModel(t)
	spec := Spec{Draws: 16, MinENOB: 9, Points: 1024}
	res, err := Run(context.Background(), sched.NewPool(4), m, "sk", spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, 15} {
		d, err := m.RunDraw(DrawSeed("sk", i), spec)
		if err != nil {
			t.Fatal(err)
		}
		if d.ENOB != res.ENOBs[i] {
			t.Fatalf("draw %d standalone ENOB %v != batch %v", i, d.ENOB, res.ENOBs[i])
		}
	}
}

func TestRunHooksAndCancel(t *testing.T) {
	m := testModel(t)
	spec := Spec{Draws: 48, MinENOB: 9, Points: 512, Chunk: 8}
	var drawCount atomic.Int64
	var last Progress
	res, err := Run(context.Background(), sched.NewPool(1), m, "sk", spec, Hooks{
		Progress: func(p Progress) { last = p },
		Draw:     func(int, Draw) { drawCount.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(drawCount.Load()) != spec.Draws {
		t.Fatalf("draw hook fired %d times, want %d", drawCount.Load(), spec.Draws)
	}
	if last.Done != spec.Draws || last.Pass != res.Pass {
		t.Fatalf("final progress %+v disagrees with result pass=%d", last, res.Pass)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, sched.NewPool(2), m, "sk", spec, Hooks{}); err == nil {
		t.Fatal("cancelled run must surface ctx error")
	}
}

// FromStudy end to end on a cheap equation-mode synthesis: the model
// must carry spec-derived distributions, and the analysis of a sound
// design should pass a relaxed spec for most draws.
func TestFromStudyAndRun(t *testing.T) {
	opts := core.Options{
		Bits: 10, SampleRate: 40e6, Mode: hybrid.EquationOnly,
		Workers: 1,
		Synth:   synth.Options{Seed: 1, MaxEvals: 60, PatternIter: 40},
	}
	st, err := core.Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Draws: 32, MinENOB: 8, Points: 1024}
	m, err := FromStudy(st, opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) != len(m.Config) {
		t.Fatalf("model has %d stage dists for %d stages", len(m.Stages), len(m.Config))
	}
	lead := m.Stages[0]
	if lead.NoiseRMS <= 0 || lead.CompOffsetSigma <= 0 || lead.CapSigma <= 0 {
		t.Fatalf("leading stage lost its error model: %+v", lead)
	}
	// Tail stages carry comparator mismatch but no amplifier errors.
	tail := m.Stages[len(m.Stages)-1]
	if tail.CompOffsetSigma <= 0 || tail.CapSigma != 0 || tail.NoiseRMS != 0 {
		t.Fatalf("tail stage model wrong: %+v", tail)
	}
	res, err := Run(context.Background(), sched.NewPool(2), m, core.StudyKey(opts), spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Draws != 32 || res.Yield < 0.5 {
		t.Fatalf("sound 10-bit design should mostly clear ENOB 8: yield %.2f (%d/%d), ENOB %+v",
			res.Yield, res.Pass, res.Draws, res.ENOB)
	}
}
