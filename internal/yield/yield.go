// Package yield is the Monte-Carlo design-signoff layer: it maps a
// synthesized pipeline (a core.Study) onto a process-variation error
// model, samples N mismatch realizations, runs the full behavioral sine
// test per realization on the shared scheduler pool, and reports the
// ENOB/SNDR distributions plus the parametric yield against a spec.
//
// Determinism is the load-bearing contract. Every draw's random stream is
// seeded from (study content address, draw index) alone — DrawSeed — so
// draw k sees the same mismatch realization regardless of worker count,
// scheduling order, or which other draws ran before it; the reduction
// happens in draw-index order. Two runs of the same study key and spec
// are bit-identical, whether they ran on 1 worker or 64, in one process
// or across a crash/recovery boundary.
//
// The error model (FromStudy) is derived from what the synthesis engine
// actually designed, not from free-floating knobs:
//
//   - capacitor mismatch: Pelgrom scaling σ(ΔC/C) = CapA/√(Cu/1fF) of
//     the stage's unit capacitor Cu = CSample/G — bigger synthesized
//     caps really do yield better. It enters twice, as a closed-loop
//     gain-error draw and as per-DAC-level static errors
//     (adcsim.StageModel.DACMismatch), the component digital correction
//     cannot absorb.
//   - comparator offset: the sub-ADC was designed to tolerate
//     CompOffsetTol, assumed to sit OffsetMargin sigmas out, so each
//     comparator's threshold offset draws from σ = Tol/Margin.
//   - noise: the kT/C of the synthesized sampling capacitor.
//   - gain/settling: the amplifier's loop-gain shortfall (StaticError)
//     as the systematic gain error, and the unsettled residue fraction
//     exp(−2π·fc·Tsettle) implied by the measured crossover.
package yield

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"pipesyn/internal/adcsim"
	"pipesyn/internal/core"
	"pipesyn/internal/dsp"
	"pipesyn/internal/enum"
	"pipesyn/internal/sched"
	"pipesyn/internal/stagespec"
)

// Spec configures one Monte-Carlo yield analysis. The zero value means
// "defaults for the target resolution" — WithDefaults canonicalizes, and
// Key hashes the canonical form, so requests that spell the defaults out
// share a content address with requests that omit them.
type Spec struct {
	// Draws is the number of process realizations (default 1000).
	Draws int `json:"draws"`
	// MinENOB is the pass/fail spec (default: target resolution − 1, the
	// customary behavioral sign-off line).
	MinENOB float64 `json:"minEnob"`
	// Points is the sine-test length, a power of two (default 4096).
	Points int `json:"points"`
	// Amplitude is the test amplitude relative to full scale (default
	// 0.95, clear of the clamp rails).
	Amplitude float64 `json:"amplitude"`
	// CapA is the Pelgrom matching coefficient: σ(ΔC/C) of a 1 fF unit
	// capacitor (default 1e-3; matching improves with √C).
	CapA float64 `json:"capA"`
	// OffsetMargin says how many sigmas out the synthesized comparator
	// offset tolerance sits (default 3): σ_offset = CompOffsetTol/Margin.
	OffsetMargin float64 `json:"offsetMargin"`
	// Chunk is the progress granularity in draws (default 32). It shapes
	// reporting only, never the result.
	Chunk int `json:"-"`
}

// WithDefaults returns the canonical form of the spec for a converter of
// the given target resolution.
func (s Spec) WithDefaults(bits int) Spec {
	if s.Draws <= 0 {
		s.Draws = 1000
	}
	if s.MinENOB <= 0 {
		s.MinENOB = float64(bits) - 1
	}
	if s.Points <= 0 {
		s.Points = 4096
	}
	if s.Amplitude <= 0 {
		s.Amplitude = 0.95
	}
	if s.CapA <= 0 {
		s.CapA = 1e-3
	}
	if s.OffsetMargin <= 0 {
		s.OffsetMargin = 3
	}
	if s.Chunk <= 0 {
		s.Chunk = 32
	}
	return s
}

// Key is the content address of a yield analysis: the synthesis study
// key extended with every yield-shaping knob (canonicalized first, so
// defaulted and spelled-out requests collide). Chunk is excluded — it
// shapes progress reporting, not results. The serving layer single-
// flights and journals yield jobs on this key.
func Key(studyKey string, bits int, s Spec) string {
	s = s.WithDefaults(bits)
	blob, err := json.Marshal(struct {
		StudyKey string
		Spec     Spec
	}{studyKey, s})
	if err != nil {
		panic(fmt.Sprintf("yield: key marshal: %v", err)) // value fields only
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// DrawSeed derives draw k's RNG seed from the study content address and
// the draw index alone. This is the whole reproducibility story: the
// seed does not depend on worker count, draw scheduling order, or any
// process state, so draw k is the same draw everywhere, forever.
func DrawSeed(studyKey string, draw int) int64 {
	h := sha256.New()
	h.Write([]byte(studyKey))
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(draw))
	h.Write(idx[:])
	sum := h.Sum(nil)
	return int64(binary.BigEndian.Uint64(sum[:8]))
}

// StageDist is the per-stage error distribution sampled once per draw.
type StageDist struct {
	Bits            int
	GainErrorNom    float64 // systematic closed-loop gain error (loop-gain shortfall)
	GainSigma       float64 // σ of the capacitor-ratio gain-error draw
	SettleError     float64 // unsettled residue fraction at the end of the window
	NoiseRMS        float64 // input-referred kT/C noise, V
	CompOffsetSigma float64 // per-comparator threshold offset σ, V
	CapSigma        float64 // per-unit-capacitor σ(ΔC/C) — drives DAC-level mismatch
}

// Model is a synthesized design mapped to its behavioral error
// distributions, ready to sample.
type Model struct {
	Config     enum.Config // full pipeline including the correction tail
	VRef       float64
	SampleRate float64
	Stages     []StageDist // one per pipeline stage (tail stages included)
}

// FromStudy maps the study's best candidate onto a Model using the block
// specs the synthesis actually ran against and the per-stage hybrid
// metrics it produced. Tail stages beyond the costed leading stages
// carry the last leading stage's comparator-offset distribution (their
// errors are attenuated by the upstream gain, so this is conservative)
// and no amplifier errors.
func FromStudy(st *core.Study, opts core.Options, spec Spec) (*Model, error) {
	opts = opts.WithDefaults()
	spec = spec.WithDefaults(st.Bits)
	full, err := st.Best.Config.WithTail(st.Bits)
	if err != nil {
		return nil, err
	}
	adc := stagespec.ADCSpec{Bits: st.Bits, SampleRate: st.SampleRate, VRef: opts.VRef, Process: opts.Process}
	specs, err := stagespec.Translate(adc, st.Best.Config)
	if err != nil {
		return nil, err
	}
	if len(specs) != len(st.Best.Stages) {
		return nil, fmt.Errorf("yield: %d specs for %d costed stages", len(specs), len(st.Best.Stages))
	}
	m := &Model{Config: full, VRef: opts.VRef, SampleRate: st.SampleRate}
	for i, sr := range st.Best.Stages {
		sp := specs[i]
		g := float64(int(1) << (sr.Bits - 1))
		// Pelgrom: the unit capacitor is the sampling bank split across
		// the G DAC units; matching scales with 1/√C.
		unitFF := sp.CSample / g / 1e-15
		capSigma := spec.CapA / math.Sqrt(math.Max(unitFF, 1))
		// Single-pole settling residue implied by the measured loop
		// crossover over the synthesized settling window; an unsettled
		// verdict floors it at the spec tolerance.
		settle := 0.0
		if fc := sr.Metrics.CrossoverHz; fc > 0 && sp.TSettle > 0 {
			settle = math.Exp(-2 * math.Pi * fc * sp.TSettle)
		}
		if !sr.Metrics.Settled && settle < sp.SettleTol {
			settle = sp.SettleTol
		}
		m.Stages = append(m.Stages, StageDist{
			Bits:            sr.Bits,
			GainErrorNom:    -sr.Metrics.StaticError,
			GainSigma:       capSigma * math.Sqrt(1+1/g), // Cs/Cf ratio of G units over 1
			SettleError:     settle,
			NoiseRMS:        math.Sqrt(opts.Process.KTOverC(sp.CSample)),
			CompOffsetSigma: sp.CompOffsetTol / spec.OffsetMargin,
			CapSigma:        capSigma,
		})
	}
	for i := len(specs); i < len(full); i++ {
		m.Stages = append(m.Stages, StageDist{
			Bits:            full[i],
			CompOffsetSigma: m.Stages[len(specs)-1].CompOffsetSigma,
		})
	}
	return m, nil
}

// Draw is one mismatch realization's verdict.
type Draw struct {
	ENOB   float64 `json:"enob"`
	SNDRdB float64 `json:"sndrDb"`
	SFDRdB float64 `json:"sfdrDb"`
	Pass   bool    `json:"pass"`
}

// RunDraw samples one realization from the model under the given seed
// and runs the behavioral sine test. The sampling order is fixed (stage
// by stage: gain draw, then DAC levels), so a seed fully determines the
// realization. A converter so broken that no signal survives scores
// ENOB 0 and fails rather than erroring: catastrophe is a yield outcome.
func (m *Model) RunDraw(seed int64, spec Spec) (Draw, error) {
	spec = spec.WithDefaults(m.Config.Resolution())
	rng := rand.New(rand.NewSource(seed))
	conv, err := adcsim.New(m.Config, m.VRef, seed)
	if err != nil {
		return Draw{}, err
	}
	if len(m.Stages) != len(conv.Stages) {
		return Draw{}, fmt.Errorf("yield: model has %d stages, converter %d", len(m.Stages), len(conv.Stages))
	}
	for i, sd := range m.Stages {
		sm := conv.Stages[i]
		sm.GainError = sd.GainErrorNom
		if sd.GainSigma > 0 {
			sm.GainError += rng.NormFloat64() * sd.GainSigma
		}
		sm.SettleError = sd.SettleError
		sm.NoiseRMS = sd.NoiseRMS
		sm.CompOffsetRMS = sd.CompOffsetSigma
		if sd.CapSigma > 0 {
			g := 1 << (sm.Bits - 1)
			mm := make([]float64, 2*g-1)
			for j := range mm {
				// Level d switches |d| unit caps: its error grows as √|d|.
				d := float64(j - (g - 1))
				mm[j] = rng.NormFloat64() * sd.CapSigma * math.Sqrt(math.Abs(d))
			}
			sm.DACMismatch = mm
		}
		if err := conv.SetStage(i, sm); err != nil {
			return Draw{}, err
		}
	}
	fSig, _ := dsp.CoherentBin(m.SampleRate, m.SampleRate/17, spec.Points)
	samples := conv.SineTest(m.SampleRate, fSig, spec.Points, spec.Amplitude)
	met, err := dsp.SineTestMetrics(samples, m.SampleRate)
	if err != nil {
		return Draw{Pass: false}, nil
	}
	return Draw{ENOB: met.ENOB, SNDRdB: met.SNDRdB, SFDRdB: met.SFDRdB,
		Pass: met.ENOB >= spec.MinENOB}, nil
}

// Dist summarizes one metric's distribution over the draws.
type Dist struct {
	Min  float64 `json:"min"`
	P05  float64 `json:"p05"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// distOf reduces values (draw order) to a Dist. Percentiles use the
// deterministic nearest-rank convention on the sorted copy.
func distOf(values []float64) Dist {
	if len(values) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	pct := func(q float64) float64 {
		i := int(math.Round(q * float64(len(s)-1)))
		return s[i]
	}
	return Dist{
		Min: s[0], Max: s[len(s)-1], Mean: sum / float64(len(values)),
		P05: pct(0.05), P50: pct(0.50), P95: pct(0.95),
	}
}

// Result is a completed yield analysis.
type Result struct {
	Draws   int     `json:"draws"`
	Pass    int     `json:"pass"`
	Yield   float64 `json:"yield"`
	MinENOB float64 `json:"minEnob"`
	ENOB    Dist    `json:"enob"`
	SNDRdB  Dist    `json:"sndrDb"`
	// ENOBs holds every draw's ENOB in draw-index order — the raw
	// material for histograms and for bit-identity assertions in tests.
	ENOBs []float64 `json:"-"`
}

// Progress is one chunk-granular observation during a run. Done and Pass
// are monotone counters over completed draws (completion order, which is
// scheduling-dependent — unlike the result, which is not).
type Progress struct {
	Done  int
	Draws int
	Pass  int
}

// Hooks observe a run. Both callbacks fire on worker goroutines and must
// be safe for concurrent use; neither influences the result.
type Hooks struct {
	Progress func(Progress)      // every Chunk completed draws, and at the end
	Draw     func(i int, d Draw) // every completed draw (metrics histograms)
}

// Run executes the Monte-Carlo analysis on the pool: spec.Draws
// realizations, each seeded by DrawSeed(studyKey, i), reduced in draw
// order. Cancelling ctx aborts within one draw. The result is
// bit-identical for any worker count.
func Run(ctx context.Context, pool *sched.Pool, m *Model, studyKey string, spec Spec, hooks Hooks) (*Result, error) {
	spec = spec.WithDefaults(m.Config.Resolution())
	if pool == nil {
		pool = sched.NewPool(0)
	}
	draws := make([]Draw, spec.Draws)
	errs := make([]error, spec.Draws)
	var done, pass atomic.Int64
	if err := pool.ForEach(ctx, spec.Draws, func(i int) {
		d, err := m.RunDraw(DrawSeed(studyKey, i), spec)
		if err != nil {
			errs[i] = err
			return
		}
		draws[i] = d
		if hooks.Draw != nil {
			hooks.Draw(i, d)
		}
		if d.Pass {
			pass.Add(1) // before done.Add: the final chunk sees every pass
		}
		n := int(done.Add(1))
		if hooks.Progress != nil && (n%spec.Chunk == 0 || n == spec.Draws) {
			hooks.Progress(Progress{Done: n, Draws: spec.Draws, Pass: int(pass.Load())})
		}
	}); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("yield: draw %d: %w", i, err)
		}
	}

	res := &Result{Draws: spec.Draws, MinENOB: spec.MinENOB}
	enobs := make([]float64, spec.Draws)
	sndrs := make([]float64, spec.Draws)
	for i, d := range draws {
		enobs[i] = d.ENOB
		sndrs[i] = d.SNDRdB
		if d.Pass {
			res.Pass++
		}
	}
	res.Yield = float64(res.Pass) / float64(spec.Draws)
	res.ENOB = distOf(enobs)
	res.SNDRdB = distOf(sndrs)
	res.ENOBs = enobs
	return res, nil
}
