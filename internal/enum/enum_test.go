package enum

import (
	"sort"
	"testing"
	"testing/quick"
)

// The headline check: the enumeration reproduces the paper's seven 13-bit
// candidates exactly.
func TestThirteenBitCandidatesMatchPaper(t *testing.T) {
	cands, err := Candidates(13, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(cands))
	for i, c := range cands {
		got[i] = c.String()
	}
	sort.Strings(got)
	want := []string{
		"2-2-2-2-2-2",
		"3-2-2-2-2",
		"3-3-2-2",
		"3-3-3",
		"4-2-2-2",
		"4-3-2",
		"4-4",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d candidates %v, want 7", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

// The paper synthesized eleven MDACs to cover all seven configurations.
func TestElevenDistinctMDACs(t *testing.T) {
	cands, err := Candidates(13, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	keys := DistinctMDACs(cands)
	if len(keys) != 11 {
		t.Fatalf("distinct MDAC design points = %d, want 11: %v", len(keys), keys)
	}
}

func TestResolutionArithmetic(t *testing.T) {
	c := Config{4, 3, 2}
	if r := c.Resolution(); r != 7 {
		t.Fatalf("R(4-3-2) = %d, want 7", r)
	}
	if r := c.ResolutionAfter(1); r != 4 {
		t.Fatalf("R after stage 1 = %d, want 4", r)
	}
	if r := c.ResolutionAfter(2); r != 6 {
		t.Fatalf("R after stage 2 = %d, want 6", r)
	}
	if r := c.ResolutionAfter(0); r != 0 {
		t.Fatalf("R after 0 stages = %d", r)
	}
	if r := c.ResolutionAfter(99); r != 7 {
		t.Fatalf("R clamps to full config: %d", r)
	}
	if g := c.Gain(0); g != 8 {
		t.Fatalf("gain(4b) = %d, want 8", g)
	}
	if g := c.Gain(2); g != 2 {
		t.Fatalf("gain(2b) = %d, want 2", g)
	}
}

func TestWithTail(t *testing.T) {
	c := Config{4, 3, 2}
	full, err := c.WithTail(13)
	if err != nil {
		t.Fatal(err)
	}
	if full.Resolution() != 13 {
		t.Fatalf("tail completion = %s → %d bits", full, full.Resolution())
	}
	// 7 + 6 tail stages of 1 effective bit each.
	if len(full) != 9 {
		t.Fatalf("full pipeline %s has %d stages, want 9", full, len(full))
	}
	if _, err := c.WithTail(5); err == nil {
		t.Fatal("expected over-resolution error")
	}
}

func TestValid(t *testing.T) {
	if !(Config{4, 3, 2}).Valid(4) {
		t.Fatal("4-3-2 should be valid")
	}
	if (Config{3, 4}).Valid(4) {
		t.Fatal("ascending config should be invalid")
	}
	if (Config{5, 2}).Valid(4) {
		t.Fatal("over-max stage should be invalid")
	}
	if (Config{2, 1}).Valid(4) {
		t.Fatal("1-bit stage should be invalid")
	}
	if (Config{}).Valid(4) {
		t.Fatal("empty config should be invalid")
	}
}

func TestCandidatesForSmallerADCs(t *testing.T) {
	// Every K from 10..13 enumerates the same 7-bit leading set (the
	// leading-bit cutoff is independent of K once K ≥ 7).
	base, _ := Candidates(13, Constraints{})
	for _, k := range []int{10, 11, 12} {
		c, err := Candidates(k, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		if len(c) != len(base) {
			t.Fatalf("K=%d: %d candidates, want %d", k, len(c), len(base))
		}
	}
	// A 5-bit converter enumerates to K=5 directly.
	c, err := Candidates(5, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range c {
		if cfg.Resolution() != 5 {
			t.Fatalf("K=5 candidate %s has R=%d", cfg, cfg.Resolution())
		}
	}
}

func TestCandidatesErrors(t *testing.T) {
	if _, err := Candidates(1, Constraints{}); err == nil {
		t.Fatal("expected error for sub-minimum K")
	}
}

// Properties: every enumerated candidate is valid, hits the leading-bit
// target exactly, and the set contains no duplicates.
func TestCandidateInvariantsProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw)%10 + 4 // 4..13
		cands, err := Candidates(k, Constraints{})
		if err != nil {
			return false
		}
		target := 7
		if k < 7 {
			target = k
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if !c.Valid(4) {
				return false
			}
			if c.Resolution() != target {
				return false
			}
			if seen[c.String()] {
				return false
			}
			seen[c.String()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctMDACsStable(t *testing.T) {
	cands, _ := Candidates(13, Constraints{})
	a := DistinctMDACs(cands)
	b := DistinctMDACs(cands)
	if len(a) != len(b) {
		t.Fatal("non-deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not stable")
		}
	}
}
