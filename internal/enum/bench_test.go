package enum

import "testing"

func BenchmarkCandidates13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Candidates(13, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}
