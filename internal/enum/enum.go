// Package enum implements the paper's candidate enumeration (§2): the set
// of stage-resolution configurations {m₁ m₂ …} considered for a K-bit
// pipelined ADC.
//
// Bookkeeping convention (reverse-engineered to match the paper's data
// exactly): mᵢ is the raw sub-ADC resolution of stage i including the one
// redundancy bit used by digital correction, so the inter-stage gain is
// 2^(mᵢ−1) and the cumulative output resolution after stage j is
//
//	R_j = m₁ + Σ_{i=2..j} (mᵢ − 1).
//
// The paper's constraints are mᵢ ≤ 4 (closed-loop bandwidth), mᵢ ≥ 2,
// mᵢ ≥ mᵢ₊₁ (area), and only the leading stages up to R = 7 bits are
// enumerated, because ADC power is dominated by the first few bits; the
// tail of every candidate continues with identical 2-bit (1-effective-bit)
// stages. Under these rules a 13-bit converter has exactly the seven
// candidates of Fig. 1: 2-2-2-2-2-2, 3-2-2-2-2, 3-3-2-2, 3-3-3, 4-2-2-2,
// 4-3-2, 4-4.
package enum

import (
	"fmt"
	"strconv"
	"strings"
)

// Config is one stage-resolution candidate: the raw bits per leading stage.
type Config []int

// String renders a config the way the paper writes it: "4-3-2".
func (c Config) String() string {
	parts := make([]string, len(c))
	for i, m := range c {
		parts[i] = strconv.Itoa(m)
	}
	return strings.Join(parts, "-")
}

// Resolution returns the cumulative output resolution R_j after the last
// listed stage: m₁ + Σ(mᵢ−1).
func (c Config) Resolution() int {
	if len(c) == 0 {
		return 0
	}
	r := c[0]
	for _, m := range c[1:] {
		r += m - 1
	}
	return r
}

// ResolutionAfter returns R_j after stage j (1-based); j=0 returns 0.
func (c Config) ResolutionAfter(j int) int {
	if j <= 0 {
		return 0
	}
	if j > len(c) {
		j = len(c)
	}
	return Config(c[:j]).Resolution()
}

// Gain returns the inter-stage residue gain of stage i (0-based): 2^(mᵢ−1).
func (c Config) Gain(i int) int { return 1 << (c[i] - 1) }

// Valid reports whether the config satisfies the paper's constraints.
func (c Config) Valid(maxBits int) bool {
	if len(c) == 0 {
		return false
	}
	for i, m := range c {
		if m < 2 || m > maxBits {
			return false
		}
		if i > 0 && m > c[i-1] {
			return false
		}
	}
	return true
}

// WithTail extends the leading-stage config with 2-bit stages until the
// cumulative resolution reaches K, producing the full pipeline the
// candidate denotes (the "…" in "4-3-2…").
func (c Config) WithTail(k int) (Config, error) {
	r := c.Resolution()
	if r > k {
		return nil, fmt.Errorf("enum: config %s already exceeds %d bits", c, k)
	}
	full := append(Config(nil), c...)
	for r < k {
		full = append(full, 2)
		r++
	}
	return full, nil
}

// Constraints parameterizes the enumeration; the zero value plus
// FillDefaults reproduces the paper's setup.
type Constraints struct {
	MaxStageBits int // mᵢ ≤ this (paper: 4)
	MinStageBits int // mᵢ ≥ this (paper: 2)
	LeadingBits  int // enumerate leading stages with R = this (paper: 7)
	NonIncrease  bool
}

// FillDefaults applies the paper's constraint set to zero fields.
func (cs *Constraints) FillDefaults() {
	if cs.MaxStageBits == 0 {
		cs.MaxStageBits = 4
	}
	if cs.MinStageBits == 0 {
		cs.MinStageBits = 2
	}
	if cs.LeadingBits == 0 {
		cs.LeadingBits = 7
	}
}

// Candidates enumerates every leading-stage configuration for a K-bit
// converter under the given constraints. The result is ordered
// lexicographically ascending (2-2-… first, 4-4 last) for reproducibility.
func Candidates(k int, cs Constraints) ([]Config, error) {
	cs.FillDefaults()
	if !cs.NonIncrease {
		cs.NonIncrease = true // the paper's area constraint is always on
	}
	if k < cs.LeadingBits {
		// Short converters enumerate to K directly.
		cs.LeadingBits = k
	}
	if k < cs.MinStageBits {
		return nil, fmt.Errorf("enum: %d-bit target below minimum stage resolution", k)
	}
	var out []Config
	var walk func(prefix Config, r int)
	walk = func(prefix Config, r int) {
		if r == cs.LeadingBits {
			cand := append(Config(nil), prefix...)
			out = append(out, cand)
			return
		}
		hi := cs.MaxStageBits
		if len(prefix) > 0 && prefix[len(prefix)-1] < hi {
			hi = prefix[len(prefix)-1]
		}
		for m := cs.MinStageBits; m <= hi; m++ {
			var add int
			if len(prefix) == 0 {
				add = m
			} else {
				add = m - 1
			}
			if r+add > cs.LeadingBits {
				continue
			}
			walk(append(prefix, m), r+add)
		}
	}
	walk(nil, 0)
	if len(out) == 0 {
		return nil, fmt.Errorf("enum: no feasible configuration for K=%d under %+v", k, cs)
	}
	return out, nil
}

// StageSpecKey identifies a distinct MDAC design point: the stage position
// in the pipeline together with its raw resolution. Stage position fixes
// the accuracy and noise budget (how many bits remain downstream), the
// resolution fixes the gain and capacitor array, so two stages sharing a
// key can reuse one synthesized MDAC. Across the seven 13-bit candidates
// there are exactly eleven distinct keys — the paper's "eleven MDACs".
type StageSpecKey struct {
	Stage int // 1-based pipeline position
	Bits  int // mᵢ
}

// DistinctMDACs returns the set of distinct MDAC design points across the
// given candidates, in first-appearance order.
func DistinctMDACs(configs []Config) []StageSpecKey {
	seen := map[StageSpecKey]bool{}
	var out []StageSpecKey
	for _, c := range configs {
		for i := range c {
			key := StageSpecKey{Stage: i + 1, Bits: c[i]}
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	return out
}
