package pdk

import (
	"math"
	"testing"

	"pipesyn/internal/netlist"
)

func TestDefaultProcessValid(t *testing.T) {
	p := TSMC025()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.VDD != 3.3 || p.LMin != 0.25e-6 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestKTOverC(t *testing.T) {
	p := TSMC025()
	// kT/C for 1 pF at 300 K ≈ (64.3 µV)².
	v := math.Sqrt(p.KTOverC(1e-12))
	if math.Abs(v-64.3e-6)/64.3e-6 > 0.01 {
		t.Fatalf("sqrt(kT/C) = %g, want ≈64.3 µV", v)
	}
}

func TestNoiseCapFor(t *testing.T) {
	p := TSMC025()
	budget := p.KTOverC(2e-12) // noise of a 2 pF cap
	c := p.NoiseCapFor(budget)
	if math.Abs(c-2e-12)/2e-12 > 1e-9 {
		t.Fatalf("NoiseCapFor round-trip = %g, want 2p", c)
	}
	// Tiny budgets clamp at CapMin; non-positive budgets mean "don't care".
	if c := p.NoiseCapFor(1); c != p.CapMin {
		t.Fatalf("loose budget should clamp to CapMin, got %g", c)
	}
	if c := p.NoiseCapFor(0); c != p.CapMax {
		t.Fatalf("zero budget should return CapMax, got %g", c)
	}
}

func TestClamps(t *testing.T) {
	p := TSMC025()
	if w := p.ClampW(0); w != p.WMin {
		t.Fatalf("ClampW(0) = %g", w)
	}
	if w := p.ClampW(1); w != p.WMax {
		t.Fatalf("ClampW(1m) = %g", w)
	}
	if l := p.ClampL(0.3e-6); l != 0.3e-6 {
		t.Fatalf("in-range L clamped: %g", l)
	}
	if c := p.ClampC(1); c != p.CapMax {
		t.Fatalf("ClampC huge = %g", c)
	}
}

func TestModelCardsAttach(t *testing.T) {
	p := TSMC025()
	c := netlist.New("test")
	p.Attach(c)
	c.MustAdd(&netlist.Element{
		Name: "m1", Type: netlist.MOS,
		Nodes:  []string{"d", "g", "s", "0"},
		Model:  "nch",
		Params: map[string]float64{"w": 1e-6, "l": 0.25e-6},
	})
	m, err := c.ModelFor(c.Find("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Param("vto", 0) != p.NMOS.VTO {
		t.Fatalf("vto = %g", m.Param("vto", 0))
	}
	// All three cards present.
	for _, name := range []string{"nch", "pch", "swideal"} {
		found := false
		for _, card := range p.ModelCards() {
			if card.Name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing model card %s", name)
		}
	}
}

func TestValidateCatchesBrokenKits(t *testing.T) {
	break1 := TSMC025()
	break1.VDD = 0
	break2 := TSMC025()
	break2.PMOS.VTO = 0.3
	break3 := TSMC025()
	break3.CapMax = break3.CapMin / 2
	break4 := TSMC025()
	break4.NMOS.VTO = -0.1
	break5 := TSMC025()
	break5.LMax = break5.LMin / 10
	break6 := TSMC025()
	break6.Temp = 0
	for i, p := range []*Process{break1, break2, break3, break4, break5, break6} {
		if err := p.Validate(); err == nil {
			t.Errorf("broken kit %d passed validation", i+1)
		}
	}
}
