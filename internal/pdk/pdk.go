// Package pdk provides the 0.25 µm 3.3 V CMOS process description that
// stands in for the proprietary foundry kit used in the paper. The numbers
// are public-textbook values for a generic quarter-micron process; the
// synthesis flow only relies on them being self-consistent, because the
// paper's claim — the power *ordering* of stage-resolution configurations —
// is driven by gm/ID physics and kT/C noise scaling, not by any particular
// foundry's decimal places.
package pdk

import (
	"fmt"

	"pipesyn/internal/netlist"
)

// Process bundles every process-level constant the flow needs.
type Process struct {
	Name string
	VDD  float64 // supply, V
	Temp float64 // kelvin

	LMin, WMin float64 // minimum feature sizes, m
	LMax, WMax float64 // sanity bounds for the optimizer, m

	// NMOS / PMOS square-law parameters.
	NMOS, PMOS MOSKit

	// Capacitor technology (MiM/poly-poly) density and limits.
	CapDensity float64 // F/m²
	CapMin     float64 // smallest manufacturable unit cap, F
	CapMax     float64 // largest practical cap per device, F

	// Switch technology abstraction for SC circuits.
	SwitchRon, SwitchRoff float64
}

// MOSKit is the parameter bag for one device polarity.
type MOSKit struct {
	VTO    float64
	KP     float64
	Lambda float64
	Gamma  float64
	Phi    float64
	Cox    float64
	CGSO   float64
	CGDO   float64
	CJW    float64
}

// Boltzmann constant (J/K).
const Boltzmann = 1.380649e-23

// TSMC025 returns the default generic 0.25 µm 3.3 V process used for all
// the paper-reproduction experiments. (The name records the class of
// process, not an actual foundry deck.)
func TSMC025() *Process {
	return &Process{
		Name: "generic-0.25um-3.3V",
		VDD:  3.3,
		Temp: 300,
		LMin: 0.25e-6, WMin: 0.5e-6,
		LMax: 10e-6, WMax: 2000e-6,
		NMOS: MOSKit{
			VTO: 0.45, KP: 180e-6, Lambda: 0.06, Gamma: 0.45, Phi: 0.8,
			Cox: 6e-3, CGSO: 3e-10, CGDO: 3e-10, CJW: 8e-10,
		},
		PMOS: MOSKit{
			VTO: -0.5, KP: 60e-6, Lambda: 0.08, Gamma: 0.5, Phi: 0.8,
			Cox: 6e-3, CGSO: 3e-10, CGDO: 3e-10, CJW: 9e-10,
		},
		CapDensity: 1e-3, // 1 fF/µm²
		CapMin:     5e-15,
		CapMax:     20e-12,
		SwitchRon:  500,
		SwitchRoff: 1e12,
	}
}

// KT returns kT at the process temperature, in joules.
func (p *Process) KT() float64 { return Boltzmann * p.Temp }

// KTOverC returns the mean-square kT/C sampling-noise voltage for a
// capacitor of value c.
func (p *Process) KTOverC(c float64) float64 { return p.KT() / c }

// NoiseCapFor returns the smallest sampling capacitor whose kT/C noise
// power stays below the given mean-square voltage budget.
func (p *Process) NoiseCapFor(vnsq float64) float64 {
	if vnsq <= 0 {
		return p.CapMax
	}
	c := p.KT() / vnsq
	if c < p.CapMin {
		c = p.CapMin
	}
	return c
}

// ModelCards returns the .model cards for this process, ready to attach to
// generated circuits.
func (p *Process) ModelCards() []*netlist.Model {
	mk := func(name, typ string, k MOSKit) *netlist.Model {
		return &netlist.Model{Name: name, Type: typ, Params: map[string]float64{
			"vto": k.VTO, "kp": k.KP, "lambda": k.Lambda, "gamma": k.Gamma,
			"phi": k.Phi, "cox": k.Cox, "cgso": k.CGSO, "cgdo": k.CGDO, "cjw": k.CJW,
		}}
	}
	return []*netlist.Model{
		mk("nch", "nmos", p.NMOS),
		mk("pch", "pmos", p.PMOS),
		{Name: "swideal", Type: "sw", Params: map[string]float64{
			"ron": p.SwitchRon, "roff": p.SwitchRoff,
		}},
	}
}

// Attach registers the process model cards on a circuit.
func (p *Process) Attach(c *netlist.Circuit) {
	for _, m := range p.ModelCards() {
		c.AddModel(m)
	}
}

// ClampW and ClampL bound a candidate device size to the manufacturable
// range; the synthesis optimizer calls these after every move.
func (p *Process) ClampW(w float64) float64 { return clamp(w, p.WMin, p.WMax) }

// ClampL bounds a channel length.
func (p *Process) ClampL(l float64) float64 { return clamp(l, p.LMin, p.LMax) }

// ClampC bounds a capacitor value.
func (p *Process) ClampC(c float64) float64 { return clamp(c, p.CapMin, p.CapMax) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Validate checks internal consistency; generated processes (tests, custom
// kits) should call it once.
func (p *Process) Validate() error {
	switch {
	case p.VDD <= 0:
		return fmt.Errorf("pdk: non-positive supply")
	case p.LMin <= 0 || p.WMin <= 0 || p.LMax < p.LMin || p.WMax < p.WMin:
		return fmt.Errorf("pdk: inconsistent geometry bounds")
	case p.NMOS.VTO <= 0:
		return fmt.Errorf("pdk: NMOS threshold must be positive")
	case p.PMOS.VTO >= 0:
		return fmt.Errorf("pdk: PMOS threshold must be negative")
	case p.NMOS.KP <= 0 || p.PMOS.KP <= 0:
		return fmt.Errorf("pdk: non-positive transconductance parameter")
	case p.CapMin <= 0 || p.CapMax < p.CapMin:
		return fmt.Errorf("pdk: inconsistent capacitor bounds")
	case p.Temp <= 0:
		return fmt.Errorf("pdk: non-positive temperature")
	}
	return nil
}
