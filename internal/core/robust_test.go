package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/enum"
	"pipesyn/internal/sched"
	"pipesyn/internal/synth"
	"pipesyn/internal/testutil"
)

// TestOptimizeNoCandidatesError: contradictory constraints enumerate
// nothing. Optimize used to index Candidates[0] regardless and panic on
// an empty enumeration; it must return a descriptive error instead
// (from the enumerator when it detects the dead end itself, or from
// core's own guard).
func TestOptimizeNoCandidatesError(t *testing.T) {
	opts := eqOpts(13)
	opts.Constraints = enum.Constraints{MinStageBits: 4, MaxStageBits: 3}
	_, err := Optimize(context.Background(), opts)
	if err == nil {
		t.Fatal("Optimize accepted constraints that admit no candidates")
	}
	if !strings.Contains(err.Error(), "no feasible configuration") &&
		!strings.Contains(err.Error(), "no pipeline candidates") {
		t.Fatalf("err = %v, want a no-candidates diagnosis", err)
	}
}

// TestOptimizeCancelPrompt: cancelling a study mid-flight must abort
// within one evaluation granule, return ctx.Err(), and leave no
// scheduler goroutines behind.
func TestOptimizeCancelPrompt(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	opts := eqOpts(13)
	opts.Workers = 4
	opts.Synth.EvalHook = func(ctx context.Context, _ int) error {
		<-ctx.Done()
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	startT := time.Now()
	st, err := Optimize(ctx, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st != nil {
		t.Fatal("cancelled study returned a partial Study")
	}
	if elapsed := time.Since(startT); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestOptimizePanicNamesDesignPoint: a worker panic during synthesis
// must surface as a *sched.PanicError whose label identifies the design
// point, not crash the study.
func TestOptimizePanicNamesDesignPoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	opts := eqOpts(13)
	opts.Workers = 2
	opts.Synth.EvalHook = func(context.Context, int) error {
		panic("injected study fault")
	}
	_, err := Optimize(context.Background(), opts)
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if !strings.Contains(pe.Label, "design point stage") {
		t.Fatalf("panic label %q does not name the design point", pe.Label)
	}
	if pe.Value != "injected study fault" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

// TestSweepDeadline: a deadline on a multi-resolution sweep must tear
// down every study under the shared pool and report it.
func TestSweepDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	base := eqOpts(0)
	base.Workers = 4
	base.Synth.EvalHook = func(ctx context.Context, _ int) error {
		<-ctx.Done()
		return ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	startT := time.Now()
	_, err := Sweep(ctx, []int{10, 11, 12}, base)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(startT); elapsed > 5*time.Second {
		t.Fatalf("deadline teardown took %v", elapsed)
	}
}

// TestOptimizeCancelCachesNothing: a cancelled study must not publish
// half-baked results into a shared synthesis cache — a later run with
// the same cache must do real work and succeed.
func TestOptimizeCancelCachesNothing(t *testing.T) {
	cache, err := synth.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts(10)
	opts.Synth.Cache = cache
	opts.Synth.EvalHook = func(ctx context.Context, _ int) error {
		<-ctx.Done()
		return ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := Optimize(ctx, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled study published %d cache entries", cache.Len())
	}
	// The same cache serves a clean re-run.
	opts.Synth.EvalHook = nil
	st, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 {
		t.Fatalf("re-run hit %d poisoned cache entries", st.CacheHits)
	}
	if !st.Best.AllFeasible {
		t.Fatal("re-run after cancellation failed to find a feasible study")
	}
}
