package core

import (
	"context"
	"reflect"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/synth"
)

// eqOpts runs the full flow with equation-mode evaluation: structurally
// identical to the hybrid flow, fast enough to exercise every candidate in
// unit tests.
func eqOpts(bits int) Options {
	return Options{
		Bits:       bits,
		SampleRate: 40e6,
		Mode:       hybrid.EquationOnly,
		Synth:      synth.Options{Seed: 1, MaxEvals: 60, PatternIter: 40},
	}
}

func TestOptimize13BitEquationMode(t *testing.T) {
	st, err := Optimize(context.Background(), eqOpts(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Candidates) != 7 {
		t.Fatalf("%d candidates, want 7", len(st.Candidates))
	}
	if st.PaperMDACClasses != 11 {
		t.Fatalf("%d MDAC reuse classes, want the paper's 11", st.PaperMDACClasses)
	}
	if len(st.MDACs) != 20 {
		t.Fatalf("%d exact design points, want 20", len(st.MDACs))
	}
	// Candidates sorted ascending by power within feasibility class.
	for i := 1; i < len(st.Candidates); i++ {
		a, b := st.Candidates[i-1], st.Candidates[i]
		if a.AllFeasible == b.AllFeasible && a.TotalPower > b.TotalPower {
			t.Fatal("candidates not sorted")
		}
	}
	if st.Best.TotalPower <= 0 {
		t.Fatal("best candidate has no power")
	}
	if st.TotalEvals == 0 {
		t.Fatal("no synthesis work recorded")
	}
	// Every candidate sums its stage powers.
	for _, c := range st.Candidates {
		sum := 0.0
		for _, s := range c.Stages {
			sum += s.Total
		}
		if diff := sum - c.TotalPower; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%s: power sum mismatch", c.Config)
		}
	}
}

func TestWarmStartChainsAcrossMDACs(t *testing.T) {
	opts := eqOpts(13)
	opts.Retarget = true
	st, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, rec := range st.MDACs {
		if rec.WarmFrom != nil {
			warm++
		}
	}
	// With 11 MDACs and chaining both across stages and resolutions, the
	// majority should be retargets, as in the paper.
	if warm < 6 {
		t.Fatalf("only %d of %d MDACs were retargeted", warm, len(st.MDACs))
	}
}

func TestSweepAndRules(t *testing.T) {
	studies, err := Sweep(context.Background(), []int{10, 11}, eqOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 || studies[0].Bits != 10 || studies[1].Bits != 11 {
		t.Fatalf("sweep shape wrong")
	}
	rules := DeriveRules(studies)
	if len(rules) != 2 {
		t.Fatalf("rules = %+v", rules)
	}
	for _, r := range rules {
		if r.FirstBits != r.Best[0] || r.LastBits != r.Best[len(r.Best)-1] {
			t.Fatalf("rule fields inconsistent: %+v", r)
		}
		if !r.Best.Valid(4) {
			t.Fatalf("best config invalid: %v", r.Best)
		}
	}
}

func TestOptimizeHybridSmoke(t *testing.T) {
	// One small hybrid-mode study on a modest converter proves the full
	// simulate-extract-synthesize loop end to end.
	if testing.Short() {
		t.Skip("hybrid study is seconds-long")
	}
	opts := Options{
		Bits:        8,
		SampleRate:  40e6,
		Mode:        hybrid.Hybrid,
		Constraints: enum.Constraints{LeadingBits: 5},
		Synth:       synth.Options{Seed: 2, MaxEvals: 25, PatternIter: 15},
	}
	st, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Best.TotalPower <= 0 {
		t.Fatal("no power result")
	}
	for _, rec := range st.MDACs {
		if rec.Result.Metrics.Power <= 0 {
			t.Fatalf("MDAC %+v has no power", rec.Key)
		}
	}
}

func TestBehavioralCheck(t *testing.T) {
	opts := eqOpts(10)
	st, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BehavioralCheck(st, opts, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// A synthesized 10-bit converter should deliver most of its bits; the
	// equation-mode static errors are optimistic, so allow a wide floor.
	if m.ENOB < 7.5 || m.ENOB > 10.2 {
		t.Fatalf("behavioral ENOB = %.2f, outside plausible band", m.ENOB)
	}
}

// TestOptimizeParallelMatchesSerial is the scheduler's determinism
// guarantee: any worker count reproduces the serial study bit-identically
// — same candidate ordering, same powers, same per-key sizings — both
// cold and under retargeting (where warm sources are DAG dependencies).
func TestOptimizeParallelMatchesSerial(t *testing.T) {
	for _, retarget := range []bool{false, true} {
		opts := eqOpts(13)
		opts.Retarget = retarget
		opts.Workers = 1
		serial, err := Optimize(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			opts := eqOpts(13)
			opts.Retarget = retarget
			opts.Workers = workers
			par, err := Optimize(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if par.Best.Config.String() != serial.Best.Config.String() {
				t.Fatalf("retarget=%v workers=%d: best %s != serial %s",
					retarget, workers, par.Best.Config, serial.Best.Config)
			}
			if par.TotalEvals != serial.TotalEvals {
				t.Fatalf("retarget=%v workers=%d: evals %d != serial %d",
					retarget, workers, par.TotalEvals, serial.TotalEvals)
			}
			if len(par.Candidates) != len(serial.Candidates) {
				t.Fatalf("candidate count differs")
			}
			for i := range serial.Candidates {
				a, b := serial.Candidates[i], par.Candidates[i]
				if a.Config.String() != b.Config.String() || a.TotalPower != b.TotalPower {
					t.Fatalf("retarget=%v workers=%d: candidate %d differs: %s %.9g vs %s %.9g",
						retarget, workers, i, a.Config, a.TotalPower, b.Config, b.TotalPower)
				}
			}
			if !reflect.DeepEqual(serial.MDACs, par.MDACs) {
				t.Fatalf("retarget=%v workers=%d: per-key MDAC records differ", retarget, workers)
			}
		}
	}
}

// TestSweepParallelMatchesSerial checks the concurrent per-resolution
// studies against the serial sweep.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serialBase := eqOpts(0)
	serialBase.Workers = 1
	serial, err := Sweep(context.Background(), []int{10, 11, 12}, serialBase)
	if err != nil {
		t.Fatal(err)
	}
	parBase := eqOpts(0)
	parBase.Workers = 4
	par, err := Sweep(context.Background(), []int{10, 11, 12}, parBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("sweep lengths differ")
	}
	for i := range serial {
		if par[i].Bits != serial[i].Bits ||
			par[i].Best.Config.String() != serial[i].Best.Config.String() ||
			par[i].Best.TotalPower != serial[i].Best.TotalPower {
			t.Fatalf("study %d differs: %d-bit %s %.9g vs %d-bit %s %.9g",
				i, serial[i].Bits, serial[i].Best.Config, serial[i].Best.TotalPower,
				par[i].Bits, par[i].Best.Config, par[i].Best.TotalPower)
		}
	}
}

// TestOptimizeCacheSecondRunSkipsEvals exercises the content-addressed
// cache through the full study flow: the second run replays every
// synthesis (TotalEvals → 0), and a fresh cache over the same directory
// round-trips through the disk store.
func TestOptimizeCacheSecondRunSkipsEvals(t *testing.T) {
	dir := t.TempDir()
	cache, err := synth.NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts(12)
	opts.Synth.Cache = cache

	cold, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.TotalEvals == 0 {
		t.Fatal("cold run did no work")
	}
	if cold.CacheHits != 0 || cold.CacheMisses != len(cold.MDACs) {
		t.Fatalf("cold run counters: %d hits, %d misses over %d points",
			cold.CacheHits, cold.CacheMisses, len(cold.MDACs))
	}

	warm, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalEvals != 0 {
		t.Fatalf("warm run spent %d evals, want 0", warm.TotalEvals)
	}
	if warm.CacheHits != len(warm.MDACs) || warm.CacheMisses != 0 {
		t.Fatalf("warm run counters: %d hits, %d misses over %d points",
			warm.CacheHits, warm.CacheMisses, len(warm.MDACs))
	}
	if warm.Best.Config.String() != cold.Best.Config.String() ||
		warm.Best.TotalPower != cold.Best.TotalPower {
		t.Fatalf("cached study diverged: %s %.9g vs %s %.9g",
			warm.Best.Config, warm.Best.TotalPower, cold.Best.Config, cold.Best.TotalPower)
	}

	// Fresh process simulation: a brand-new cache over the same directory
	// must serve everything from disk.
	cache2, err := synth.NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Synth.Cache = cache2
	disk, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if disk.TotalEvals != 0 || disk.CacheHits != len(disk.MDACs) {
		t.Fatalf("disk round-trip: %d evals, %d hits", disk.TotalEvals, disk.CacheHits)
	}
	if st := cache2.Stats(); st.DiskHits != int64(len(disk.MDACs)) {
		t.Fatalf("disk hits = %d, want %d", st.DiskHits, len(disk.MDACs))
	}
	if disk.Best.TotalPower != cold.Best.TotalPower {
		t.Fatal("disk-cached study diverged from the cold run")
	}
}

func TestOptimizeErrors(t *testing.T) {
	bad := eqOpts(2)
	if _, err := Optimize(context.Background(), bad); err == nil {
		t.Fatal("expected enumeration/translation error")
	}
}

func TestOptimizeWithSHA(t *testing.T) {
	opts := eqOpts(10)
	opts.IncludeSHA = true
	st, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.SHA == nil || st.SHA.Metrics.Power <= 0 {
		t.Fatal("S/H missing from study")
	}
	full := st.FullPower(st.Best)
	if full <= st.Best.TotalPower {
		t.Fatal("full power must include the S/H")
	}
	// Without the flag, FullPower equals the leading-stage power.
	st2, err := Optimize(context.Background(), eqOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	if st2.FullPower(st2.Best) != st2.Best.TotalPower {
		t.Fatal("FullPower without SHA should be unchanged")
	}
}
