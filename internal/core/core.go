// Package core implements the paper's contribution: designer-driven
// topology optimization for pipelined ADCs. It glues the whole stack
// together exactly as §2–§4 describe:
//
//  1. enumerate the stage-resolution candidates for the target resolution
//     (package enum),
//  2. translate converter-level specs into per-stage MDAC block specs with
//     the designer's analytical system model (package stagespec),
//  3. synthesize each *distinct* MDAC once with the cell-level sizing
//     engine driven by hybrid evaluation (packages synth/hybrid), reusing
//     earlier results as warm starts — the paper's "retargeting" that cut
//     setup from weeks to a day,
//  4. add the flash sub-ADC power (package subadc) and rank candidates by
//     total leading-stage power (Fig. 1/Fig. 2), and
//  5. distil the optimum-configuration decision rules across target
//     resolutions (Fig. 3).
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"pipesyn/internal/adcsim"
	"pipesyn/internal/dsp"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/race"
	"pipesyn/internal/sched"
	"pipesyn/internal/sha"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/subadc"
	"pipesyn/internal/synth"
)

// Options configures a topology-optimization study.
type Options struct {
	Bits        int
	SampleRate  float64
	VRef        float64
	Process     *pdk.Process
	Mode        hybrid.Mode
	Constraints enum.Constraints
	Synth       synth.Options
	// Retarget chains warm starts across the distinct MDACs (the paper's
	// weeks→day productivity lever). It trades evaluation count for
	// solution quality: a seed inherited from a tighter spec can leave a
	// relaxed stage over-designed under a short retarget schedule, so the
	// power-comparison studies default to independent cold syntheses and
	// the retargeting benchmark exercises this flag explicitly.
	Retarget bool
	// Race turns on the successive-halving racing scheduler (DESIGN.md
	// §5.9): every enumeration candidate first runs at a cheap
	// low-fidelity synthesis budget (MaxEvals and PatternIter divided by
	// RaceEta per rung gap), the top half by feasibility-then-cost is
	// promoted rung by rung, and only the survivors pay full fidelity —
	// warm-started from their own low-fidelity best sizing, which also
	// triggers the retargeting budget shrink. The mechanized analogue of
	// the paper's designer discarding clearly losing stage-resolution
	// configurations before spending simulation time on them. Supersedes
	// Retarget's cross-point warm chaining when both are set. Joins the
	// study key (with RaceRungs/RaceEta) only when on.
	Race bool
	// RaceRungs and RaceEta shape the racing plan: the number of fidelity
	// rungs (default 2) and the budget ratio between adjacent rungs
	// (default 3 — empirically the point where the low-fidelity basins
	// are good enough that warm-started survivors match or beat the
	// uniform flow's final power while well over 30% of the evaluator
	// calls are saved). Ignored unless Race is set.
	RaceRungs int
	RaceEta   int
	// IncludeSHA also synthesizes the front-end sample-and-hold
	// amplifier. Its power is identical across candidates (the paper
	// excludes it from the comparison figures for that reason) and is
	// reported separately on the Study.
	IncludeSHA bool
	// Workers bounds the concurrent synthesis workers. Design points,
	// their restarts, and (in a Sweep) the per-resolution studies all
	// draw from the same budget. 0 = GOMAXPROCS, 1 = fully serial. Every
	// worker count produces bit-identical studies: per-key seeds are
	// fixed by sorted key order, warm-start sources are scheduled as DAG
	// dependencies, and all reductions happen in key order.
	Workers int
	// Pool supplies an existing shared worker budget instead of Workers
	// (Sweep threads its pool through every study).
	Pool *sched.Pool
	// Progress, when set, receives study-level progress events: the plan
	// (how many design points), each design point starting and
	// finishing, and the S/H synthesis. Design points run on worker
	// goroutines, so the callback must be safe for concurrent use and
	// must not block. Evaluation-granule progress rides the separate
	// synth.Options.Progress seam; neither influences the study result.
	Progress func(ev ProgressEvent)
}

// ProgressEvent is one study-level observation delivered to
// Options.Progress. Kind says which fields are meaningful:
//
//   - "plan":        Points and Candidates are set — the study's shape.
//   - "point_start": Point (0-based), Stage, Bits, PriorBits.
//   - "point_done":  the above plus CacheHit, Feasible, Power, Evals.
//   - "sha_start", "sha_done": the front-end S/H synthesis (IncludeSHA).
//   - "race_rung": Rung (1-based), Candidates (entrants), Promoted,
//     Pruned — one racing rung finished and its promotion was decided.
//   - "yield_chunk": Done, Draws, Pass — Monte-Carlo yield-lane progress
//     (emitted by the serving layer, not by Optimize itself).
type ProgressEvent struct {
	Kind       string  `json:"kind"`
	Point      int     `json:"point,omitempty"`
	Points     int     `json:"points,omitempty"`
	Candidates int     `json:"candidates,omitempty"`
	Stage      int     `json:"stage,omitempty"`
	Bits       int     `json:"bits,omitempty"`
	PriorBits  int     `json:"priorBits,omitempty"`
	CacheHit   bool    `json:"cacheHit,omitempty"`
	Feasible   bool    `json:"feasible,omitempty"`
	Power      float64 `json:"powerW,omitempty"`
	Evals      int     `json:"evals,omitempty"`
	Done       int     `json:"done,omitempty"`
	Draws      int     `json:"draws,omitempty"`
	Pass       int     `json:"pass,omitempty"`
	Rung       int     `json:"rung,omitempty"`
	Promoted   int     `json:"promoted,omitempty"`
	Pruned     int     `json:"pruned,omitempty"`
}

// emit delivers a progress event when a sink is configured.
func (o *Options) emit(ev ProgressEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

func (o *Options) fillDefaults() {
	if o.VRef == 0 {
		o.VRef = 1.0
	}
	if o.Process == nil {
		o.Process = pdk.TSMC025()
	}
	if o.SampleRate == 0 {
		o.SampleRate = 40e6
	}
	if o.RaceRungs == 0 {
		o.RaceRungs = 2
	}
	if o.RaceEta == 0 {
		o.RaceEta = 3
	}
}

// WithDefaults returns a copy with the study-shaping defaults applied
// (reference, process, sample rate) — the same normalization Optimize
// and StudyKey perform, exported for layers that interpret a study
// downstream (the Monte-Carlo yield lane derives its error model from
// the same process and reference the synthesis actually used).
func (o Options) WithDefaults() Options {
	o.fillDefaults()
	return o
}

// StageResult is the costed outcome of one pipeline stage in a candidate.
type StageResult struct {
	Stage, Bits int
	MDACPower   float64
	SubADCPower float64
	Total       float64
	Feasible    bool
	Sizing      opamp.Amp
	Metrics     hybrid.Metrics
}

// CandidateResult is one enumerated configuration fully costed.
type CandidateResult struct {
	Config      enum.Config
	Stages      []StageResult
	TotalPower  float64 // sum over the leading stages (the paper's Fig. 2 metric)
	AllFeasible bool
	// Pruned marks a candidate the racing scheduler eliminated at a
	// low-fidelity rung; its Stages and TotalPower reflect the reduced
	// budget it was last costed at, and it always ranks below every
	// full-fidelity survivor. Never set outside Options.Race.
	Pruned bool
}

// DesignPoint identifies one exact MDAC design point: stage position, raw
// resolution, and the resolution already in hand at its input. Two
// candidates sharing all three fields see identical block specs, so one
// synthesis serves both. (The paper counts reuse classes by stage and
// resolution only — "eleven MDACs" for 13 bits; the exact points number
// twenty, and Study reports both.)
type DesignPoint struct {
	Stage, Bits, PriorBits int
}

// MDACRecord tracks one synthesized MDAC design point.
type MDACRecord struct {
	Key      DesignPoint
	Result   *synth.Result
	WarmFrom *DesignPoint // nil = cold start
}

// Study is a completed topology optimization for one target resolution.
type Study struct {
	Bits       int
	SampleRate float64
	Candidates []CandidateResult // sorted ascending by TotalPower
	Best       CandidateResult
	MDACs      []MDACRecord
	// PaperMDACClasses is the paper's reuse count: distinct
	// (stage, resolution) pairs across the candidates (11 for 13 bits).
	PaperMDACClasses int
	TotalEvals       int
	// CacheHits / CacheMisses count how many of this study's syntheses
	// (design points plus the S/H, when included) were replayed from the
	// content-addressed cache versus searched fresh. Both stay zero when
	// no cache is configured on Options.Synth.Cache.
	CacheHits, CacheMisses int
	// SHA is the synthesized front-end sample-and-hold (nil unless
	// Options.IncludeSHA); its power adds to every candidate equally.
	SHA *synth.Result
	// Race summarizes the successive-halving scheduler's work (nil
	// unless Options.Race).
	Race *RaceStats
	// SurrogateProposals / SurrogateAccepted aggregate the quadratic
	// surrogate's counters across every synthesis in the study (0 unless
	// Options.Synth.Surrogate).
	SurrogateProposals int
	SurrogateAccepted  int
}

// RaceStats is the racing scheduler's scorecard: how many fidelity
// rungs ran, how many candidate promotions were granted across them,
// and how many candidates were pruned before full fidelity.
type RaceStats struct {
	Rungs      int
	Promotions int
	Pruned     int
}

// FullPower returns a candidate's leading-stage power plus the shared
// front-end S/H power when one was synthesized.
func (st *Study) FullPower(c CandidateResult) float64 {
	p := c.TotalPower
	if st.SHA != nil {
		p += st.SHA.Metrics.Power
	}
	return p
}

// StudyKey computes the content address of a whole study: a SHA-256
// over every input that shapes the result — resolution, rate, reference,
// process, evaluation mode, enumeration constraints, the retarget/S-H
// switches, and the canonicalized synthesis options (the same
// normalization the per-MDAC cache key uses; see synth.Options.
// Canonical). Execution knobs (Workers, Pool, Cache, hooks) are
// excluded, so two requests that must produce bit-identical studies get
// the same key. The serving layer single-flights concurrent identical
// submissions on it.
func StudyKey(opts Options) string {
	opts.fillDefaults()
	opts.Constraints.FillDefaults()
	s := opts.Synth.Canonical()
	type keyFields struct {
		Bits                         int
		SampleRate, VRef             float64
		Process                      string
		Mode                         int
		Constraints                  enum.Constraints
		Retarget, IncludeSHA         bool
		Seed                         int64
		MaxEvals, PatternIter        int
		Restarts                     int
		InitTemp, CoolRate, PenaltyW float64
		Topology                     int
		// BatchEval alters the annealing trajectory only when >1; keys
		// minted before the knob existed must stay valid, so it is
		// omitted at its default (mirrors synth.CacheKey). NewtonReuse
		// keys the same way: omitted unless the reuse path is on.
		BatchEval   int  `json:",omitempty"`
		NewtonReuse bool `json:",omitempty"`
		// The surrogate and racing knobs change the search trajectory
		// only when on, so they key the same way: omitted at their
		// defaults, with the racing shape keyed only under Race.
		Surrogate bool `json:",omitempty"`
		Race      bool `json:",omitempty"`
		RaceRungs int  `json:",omitempty"`
		RaceEta   int  `json:",omitempty"`
	}
	kf := keyFields{opts.Bits, opts.SampleRate, opts.VRef, opts.Process.Name, int(opts.Mode),
		opts.Constraints, opts.Retarget, opts.IncludeSHA,
		s.Seed, s.MaxEvals, s.PatternIter, s.Restarts,
		s.InitTemp, s.CoolRate, s.PenaltyW, int(s.Topology), 0, s.NewtonReuse,
		s.Surrogate, false, 0, 0}
	if s.BatchEval > 1 {
		kf.BatchEval = s.BatchEval
	}
	if opts.Race {
		kf.Race = true
		kf.RaceRungs = opts.RaceRungs
		kf.RaceEta = opts.RaceEta
	}
	blob, err := json.Marshal(kf)
	if err != nil {
		// Value fields only; Marshal cannot fail. Loud beats silent.
		panic(fmt.Sprintf("core: study key marshal: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Optimize runs the full designer-driven flow for one target resolution.
//
// Cancelling ctx aborts the study within one evaluation granule and
// returns ctx.Err(); a panic inside a synthesis worker surfaces as a
// *sched.PanicError naming the design point instead of crashing the
// process.
func Optimize(ctx context.Context, opts Options) (*Study, error) {
	opts.fillDefaults()
	adc := stagespec.ADCSpec{
		Bits: opts.Bits, SampleRate: opts.SampleRate,
		VRef: opts.VRef, Process: opts.Process,
	}
	cands, err := enum.Candidates(opts.Bits, opts.Constraints)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no pipeline candidates for %d bits under constraints %+v", opts.Bits, opts.Constraints)
	}

	// Translate every candidate and index the exact design points. Two
	// candidates share a synthesis only when stage position, resolution
	// AND prior resolution coincide, because all three shape the block
	// spec (settling tolerance, capacitor budget, load).
	specsByCand := make([][]stagespec.MDACSpec, len(cands))
	specOf := map[DesignPoint]stagespec.MDACSpec{}
	for i, cfg := range cands {
		specs, err := stagespec.Translate(adc, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", cfg, err)
		}
		specsByCand[i] = specs
		for _, sp := range specs {
			specOf[DesignPoint{Stage: sp.Stage, Bits: sp.Bits, PriorBits: sp.PriorBits}] = sp
		}
	}

	// Synthesize each design point once, optionally chaining warm starts:
	// first the same resolution one stage earlier, then the previous
	// resolution at the same stage.
	keys := make([]DesignPoint, 0, len(specOf))
	for k := range specOf {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		return a.PriorBits < b.PriorBits
	})
	study := &Study{
		Bits: opts.Bits, SampleRate: opts.SampleRate,
		PaperMDACClasses: len(enum.DistinctMDACs(cands)),
	}
	pool := opts.Pool
	if pool == nil {
		pool = sched.NewPool(opts.Workers)
	}

	// Warm-start candidates for key i, in deterministic preference order:
	// first the same resolution one stage earlier, then the previous
	// resolution at the same stage — considering only keys that precede i
	// in sorted order, exactly the results the serial flow would have in
	// hand. Under Retarget these become the DAG edges: a design point
	// dispatches once its potential warm sources are done, so the
	// parallel schedule picks the same seed the serial one does.
	warmIdx := make([][]int, len(keys))
	if opts.Retarget && !opts.Race {
		for i, key := range keys {
			for j := 0; j < i; j++ {
				if prev := keys[j]; prev.Stage == key.Stage-1 && prev.Bits == key.Bits {
					warmIdx[i] = append(warmIdx[i], j)
				}
			}
			for j := 0; j < i; j++ {
				if prev := keys[j]; prev.Stage == key.Stage && prev.Bits == key.Bits-1 {
					warmIdx[i] = append(warmIdx[i], j)
				}
			}
		}
	}

	opts.emit(ProgressEvent{Kind: "plan", Points: len(keys), Candidates: len(cands)})
	var results map[DesignPoint]*synth.Result
	var prunedCand map[int]bool
	if opts.Race {
		var err error
		results, prunedCand, err = runRace(ctx, &opts, study, keys, specOf, specsByCand, cands, pool)
		if err != nil {
			return nil, err
		}
	} else {
		resArr := make([]*synth.Result, len(keys))
		warmFrom := make([]*DesignPoint, len(keys))
		nodes := make([]sched.Node, len(keys))
		for i := range keys {
			i := i
			key := keys[i]
			deps := warmIdx[i]
			nodes[i] = sched.Node{
				Deps:  deps,
				Label: fmt.Sprintf("design point stage %d (%d-bit)", key.Stage, key.Bits),
				Run: func(ctx context.Context) error {
					sOpts := opts.Synth
					sOpts.Mode = opts.Mode
					sOpts.Seed = opts.Synth.Seed + int64(i+1)
					sOpts.Pool = pool
					if opts.Retarget {
						for _, j := range deps {
							if prev := resArr[j]; prev != nil && prev.Feasible {
								sOpts.WarmStart = prev.Sizing
								k := keys[j]
								warmFrom[i] = &k
								break
							}
						}
					}
					opts.emit(ProgressEvent{Kind: "point_start", Point: i, Points: len(keys),
						Stage: key.Stage, Bits: key.Bits, PriorBits: key.PriorBits})
					res, err := synth.Synthesize(ctx, specOf[key], opts.Process, sOpts)
					if err != nil {
						return fmt.Errorf("core: synthesis of stage %d (%d-bit): %w", key.Stage, key.Bits, err)
					}
					resArr[i] = res
					opts.emit(ProgressEvent{Kind: "point_done", Point: i, Points: len(keys),
						Stage: key.Stage, Bits: key.Bits, PriorBits: key.PriorBits,
						CacheHit: res.CacheHit, Feasible: res.Feasible,
						Power: res.Metrics.Power, Evals: res.Evals})
					return nil
				}}
		}
		if err := sched.Run(ctx, pool, nodes); err != nil {
			return nil, err
		}
		results = map[DesignPoint]*synth.Result{}
		for i, key := range keys {
			res := resArr[i]
			results[key] = res
			accountResult(study, res, opts.Synth.Cache != nil)
			study.MDACs = append(study.MDACs, MDACRecord{Key: key, Result: res, WarmFrom: warmFrom[i]})
		}
	}

	// Cost every candidate from the shared design-point results. The
	// comparator bank depends only on the design point, so it is designed
	// once per key and shared across the candidates that contain it.
	banks := make(map[DesignPoint]subadc.Bank, len(keys))
	for i, cfg := range cands {
		cr := CandidateResult{Config: cfg, AllFeasible: true, Pruned: prunedCand[i]}
		for _, sp := range specsByCand[i] {
			key := DesignPoint{Stage: sp.Stage, Bits: sp.Bits, PriorBits: sp.PriorBits}
			res := results[key]
			bank, ok := banks[key]
			if !ok {
				var err error
				bank, err = subadc.Design(sp, opts.Process, opts.SampleRate)
				if err != nil {
					return nil, fmt.Errorf("core: %s stage %d sub-ADC: %w", cfg, sp.Stage, err)
				}
				banks[key] = bank
			}
			sr := StageResult{
				Stage: sp.Stage, Bits: sp.Bits,
				MDACPower:   res.Metrics.Power,
				SubADCPower: bank.TotalPower,
				Total:       res.Metrics.Power + bank.TotalPower,
				Feasible:    res.Feasible,
				Sizing:      res.Sizing,
				Metrics:     res.Metrics,
			}
			cr.Stages = append(cr.Stages, sr)
			cr.TotalPower += sr.Total
			cr.AllFeasible = cr.AllFeasible && sr.Feasible
		}
		study.Candidates = append(study.Candidates, cr)
	}
	sort.Slice(study.Candidates, func(i, j int) bool {
		a, b := study.Candidates[i], study.Candidates[j]
		// Full-fidelity survivors outrank race-pruned candidates — a
		// pruned power number was costed at a reduced budget and is not
		// comparable — then fully feasible candidates outrank partially
		// infeasible ones.
		if a.Pruned != b.Pruned {
			return !a.Pruned
		}
		if a.AllFeasible != b.AllFeasible {
			return a.AllFeasible
		}
		return a.TotalPower < b.TotalPower
	})
	study.Best = study.Candidates[0]

	if opts.IncludeSHA {
		// The stage-1 sampling capacitor is position-budgeted, hence
		// identical across candidates; any candidate's first stage works
		// as the S/H load.
		sOpts := opts.Synth
		sOpts.Mode = opts.Mode
		sOpts.Seed = opts.Synth.Seed + 7919
		sOpts.Pool = pool
		opts.emit(ProgressEvent{Kind: "sha_start"})
		res, err := sha.Synthesize(ctx, adc, specsByCand[0][0].CSample, opts.Process, sOpts)
		if err != nil {
			return nil, fmt.Errorf("core: S/H synthesis: %w", err)
		}
		opts.emit(ProgressEvent{Kind: "sha_done", CacheHit: res.CacheHit,
			Feasible: res.Feasible, Power: res.Metrics.Power, Evals: res.Evals})
		study.SHA = res
		accountResult(study, res, opts.Synth.Cache != nil)
	}
	return study, nil
}

// accountResult folds one completed synthesis into the study-level
// accounting: evaluator spend, cache traffic, surrogate counters.
func accountResult(st *Study, res *synth.Result, cacheOn bool) {
	st.TotalEvals += res.Evals
	st.SurrogateProposals += res.SurrogateProposals
	st.SurrogateAccepted += res.SurrogateAccepted
	if cacheOn {
		if res.CacheHit {
			st.CacheHits++
		} else {
			st.CacheMisses++
		}
	}
}

// runRace executes the successive-halving schedule: every rung
// synthesizes the design points the still-active candidates need at
// that rung's reduced budget, ranks the candidates by
// feasibility-then-cost, and promotes the top half into the next rung;
// the final rung runs at full fidelity, each survivor's points
// warm-started from their own lower-fidelity best sizing (racing's
// WarmFrom is the point itself, so MDAC records carry nil).
//
// Determinism matches the uniform path's contract: per-point seeds are
// fixed by the global sorted-key index (identical across rungs, so a
// rung is a budget change, not a reseed), every reduction and promotion
// happens in index order, and the returned maps are bit-identical for
// any worker count. It returns the latest result per design point and
// the set of candidate indices that were pruned before full fidelity.
func runRace(ctx context.Context, opts *Options, study *Study, keys []DesignPoint,
	specOf map[DesignPoint]stagespec.MDACSpec, specsByCand [][]stagespec.MDACSpec,
	cands []enum.Config, pool *sched.Pool) (map[DesignPoint]*synth.Result, map[int]bool, error) {

	// Canonical() applies the synthesis defaults without the warm-start
	// shrink, giving the full-fidelity budget the rung divisors scale.
	canon := opts.Synth.Canonical()
	plan := race.Plan(len(cands), opts.RaceRungs, opts.RaceEta)
	study.Race = &RaceStats{Rungs: len(plan)}
	pointOf := func(sp stagespec.MDACSpec) DesignPoint {
		return DesignPoint{Stage: sp.Stage, Bits: sp.Bits, PriorBits: sp.PriorBits}
	}

	active := make([]int, len(cands))
	for i := range active {
		active[i] = i
	}
	results := make(map[DesignPoint]*synth.Result, len(keys))
	banks := make(map[DesignPoint]subadc.Bank, len(keys))
	pruned := make(map[int]bool)
	cacheOn := opts.Synth.Cache != nil

	for r, rung := range plan {
		entrants := len(active)
		// The design points the surviving candidates still need, in the
		// global sorted-key order every worker count walks identically.
		needSet := make(map[DesignPoint]bool)
		for _, ci := range active {
			for _, sp := range specsByCand[ci] {
				needSet[pointOf(sp)] = true
			}
		}
		needed := make([]int, 0, len(needSet))
		for i, key := range keys {
			if needSet[key] {
				needed = append(needed, i)
			}
		}

		resArr := make([]*synth.Result, len(needed))
		errArr := make([]error, len(needed))
		if err := pool.ForEach(ctx, len(needed), func(j int) {
			i := needed[j]
			key := keys[i]
			sOpts := opts.Synth
			sOpts.Mode = opts.Mode
			sOpts.Seed = opts.Synth.Seed + int64(i+1)
			sOpts.Pool = pool
			sOpts.MaxEvals = canon.MaxEvals / rung.Divisor
			if sOpts.MaxEvals < 1 {
				sOpts.MaxEvals = 1
			}
			sOpts.PatternIter = canon.PatternIter / rung.Divisor
			if sOpts.PatternIter < 1 {
				sOpts.PatternIter = 1
			}
			if r > 0 {
				// Promotion fidelity: continue from this point's own best
				// sizing one rung down. Every needed key ran in the prior
				// rung (the active set only shrinks), so the lookup is a
				// completed result, never a data race.
				if prev := results[key]; prev != nil && prev.Feasible {
					sOpts.WarmStart = prev.Sizing
				}
			}
			opts.emit(ProgressEvent{Kind: "point_start", Point: i, Points: len(keys),
				Stage: key.Stage, Bits: key.Bits, PriorBits: key.PriorBits, Rung: r + 1})
			res, err := synth.Synthesize(ctx, specOf[key], opts.Process, sOpts)
			if err != nil {
				errArr[j] = fmt.Errorf("core: rung %d synthesis of stage %d (%d-bit): %w",
					r+1, key.Stage, key.Bits, err)
				return
			}
			resArr[j] = res
			opts.emit(ProgressEvent{Kind: "point_done", Point: i, Points: len(keys),
				Stage: key.Stage, Bits: key.Bits, PriorBits: key.PriorBits, Rung: r + 1,
				CacheHit: res.CacheHit, Feasible: res.Feasible,
				Power: res.Metrics.Power, Evals: res.Evals})
		}); err != nil {
			return nil, nil, err
		}
		for _, err := range errArr {
			if err != nil {
				return nil, nil, err
			}
		}
		for j, i := range needed {
			results[keys[i]] = resArr[j]
			accountResult(study, resArr[j], cacheOn)
		}

		promotedN := 0
		if rung.Keep > 0 {
			standings := make([]race.Standing, len(active))
			for si, ci := range active {
				st := race.Standing{Index: ci, Feasible: true}
				for _, sp := range specsByCand[ci] {
					key := pointOf(sp)
					res := results[key]
					bank, ok := banks[key]
					if !ok {
						var err error
						bank, err = subadc.Design(sp, opts.Process, opts.SampleRate)
						if err != nil {
							return nil, nil, fmt.Errorf("core: %s stage %d sub-ADC: %w", cands[ci], sp.Stage, err)
						}
						banks[key] = bank
					}
					st.Cost += res.Metrics.Power + bank.TotalPower
					st.Feasible = st.Feasible && res.Feasible
				}
				standings[si] = st
			}
			next := race.Promote(standings, rung.Keep)
			nextSet := make(map[int]bool, len(next))
			for _, ci := range next {
				nextSet[ci] = true
			}
			for _, ci := range active {
				if !nextSet[ci] {
					pruned[ci] = true
				}
			}
			promotedN = len(next)
			study.Race.Promotions += len(next)
			study.Race.Pruned += len(active) - len(next)
			active = next
		}
		opts.emit(ProgressEvent{Kind: "race_rung", Rung: r + 1,
			Candidates: entrants, Promoted: promotedN, Pruned: study.Race.Pruned})
	}

	// Every key was synthesized at rung 0 (all candidates start active),
	// so the record set is complete; pruned candidates' points stay at
	// the last fidelity they were costed at.
	for _, key := range keys {
		study.MDACs = append(study.MDACs, MDACRecord{Key: key, Result: results[key]})
	}
	return results, pruned, nil
}

// Sweep runs studies across target resolutions (the paper's 10–13 bit
// exploration, Fig. 2). The per-resolution studies are independent, so
// they run concurrently under one shared worker budget; each study is
// still bit-identical to its serial run, and errors surface for the
// lowest-index resolution that failed.
func Sweep(ctx context.Context, bits []int, base Options) ([]*Study, error) {
	pool := base.Pool
	if pool == nil {
		pool = sched.NewPool(base.Workers)
	}
	out := make([]*Study, len(bits))
	errs := make([]error, len(bits))
	if err := pool.ForEach(ctx, len(bits), func(i int) {
		o := base
		o.Bits = bits[i]
		o.Pool = pool
		st, err := Optimize(ctx, o)
		if err != nil {
			errs[i] = fmt.Errorf("core: %d-bit study: %w", bits[i], err)
			return
		}
		out[i] = st
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Rule is one row of the Fig. 3 decision table.
type Rule struct {
	Bits      int
	Best      enum.Config
	FirstBits int
	LastBits  int
}

// DeriveRules summarizes a sweep into the paper's optimum-candidate rules.
func DeriveRules(studies []*Study) []Rule {
	rules := make([]Rule, 0, len(studies))
	for _, st := range studies {
		cfg := st.Best.Config
		rules = append(rules, Rule{
			Bits:      st.Bits,
			Best:      cfg,
			FirstBits: cfg[0],
			LastBits:  cfg[len(cfg)-1],
		})
	}
	return rules
}

// BehavioralCheck closes the loop: it builds a behavioral converter from
// the study's best configuration, injects the synthesized static error and
// the kT/C noise implied by the stage capacitors, runs a coherent sine
// test, and reports the ENOB. A sound synthesis should land within a
// fraction of a bit of the target.
func BehavioralCheck(study *Study, opts Options, n int) (dsp.SpectralMetrics, error) {
	opts.fillDefaults()
	full, err := study.Best.Config.WithTail(study.Bits)
	if err != nil {
		return dsp.SpectralMetrics{}, err
	}
	conv, err := adcsim.New(full, opts.VRef, 1234)
	if err != nil {
		return dsp.SpectralMetrics{}, err
	}
	adc := stagespec.ADCSpec{Bits: study.Bits, SampleRate: study.SampleRate, VRef: opts.VRef, Process: opts.Process}
	specs, err := stagespec.Translate(adc, study.Best.Config)
	if err != nil {
		return dsp.SpectralMetrics{}, err
	}
	for i, sr := range study.Best.Stages {
		m := conv.Stages[i]
		m.GainError = -sr.Metrics.StaticError // loop-gain shortfall compresses the residue
		m.NoiseRMS = math.Sqrt(opts.Process.KTOverC(specs[i].CSample))
		if err := conv.SetStage(i, m); err != nil {
			return dsp.SpectralMetrics{}, err
		}
	}
	fSig, _ := dsp.CoherentBin(study.SampleRate, study.SampleRate/17, n)
	samples := conv.SineTest(study.SampleRate, fSig, n, 0.95)
	return dsp.SineTestMetrics(samples, study.SampleRate)
}
