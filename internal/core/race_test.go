package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestOptimizeRaceParallelMatchesSerial pins racing's half of the
// determinism contract: the rung schedule, promotions, and final study
// are bit-identical for any worker count (run under -race in CI, which
// also makes it the rung-promotion data-race probe).
func TestOptimizeRaceParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) *Study {
		o := eqOpts(12)
		o.Race = true
		o.Workers = workers
		st, err := Optimize(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial := mk(1)
	if serial.Race == nil || serial.Race.Rungs != 2 {
		t.Fatalf("race stats missing or wrong shape: %+v", serial.Race)
	}
	if serial.Race.Pruned == 0 {
		t.Fatal("racing pruned nothing — the schedule never fired")
	}
	for _, w := range []int{2, 8} {
		if got := mk(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d racing study diverged from serial", w)
		}
	}
}

// TestOptimizeRaceSavesEvals is the study-level acceptance property:
// racing must reach a fully feasible best configuration with at least
// 30%% fewer evaluator calls than the uniform flow, at equal or better
// power, and the winner must be a full-fidelity survivor.
func TestOptimizeRaceSavesEvals(t *testing.T) {
	uniform, err := Optimize(context.Background(), eqOpts(13))
	if err != nil {
		t.Fatal(err)
	}
	ro := eqOpts(13)
	ro.Race = true
	raced, err := Optimize(context.Background(), ro)
	if err != nil {
		t.Fatal(err)
	}
	if !raced.Best.AllFeasible {
		t.Fatalf("racing best is not feasible: %+v", raced.Best.Config)
	}
	if raced.Best.Pruned {
		t.Fatal("racing elected a pruned candidate as Best")
	}
	if raced.TotalEvals > uniform.TotalEvals*7/10 {
		t.Fatalf("racing spent %d evals vs uniform %d — want ≥30%% fewer",
			raced.TotalEvals, uniform.TotalEvals)
	}
	if raced.Best.TotalPower > uniform.Best.TotalPower*1.001 {
		t.Fatalf("racing best power %.3g W worse than uniform %.3g W",
			raced.Best.TotalPower, uniform.Best.TotalPower)
	}
	// The pruned flags, stats, and ranking must agree: every pruned
	// candidate ranks after every survivor, and the counts line up.
	prunedCount := 0
	sawPruned := false
	for _, c := range raced.Candidates {
		if c.Pruned {
			prunedCount++
			sawPruned = true
		} else if sawPruned {
			t.Fatal("a full-fidelity survivor ranked below a pruned candidate")
		}
	}
	if prunedCount != raced.Race.Pruned {
		t.Fatalf("%d candidates flagged pruned, stats say %d", prunedCount, raced.Race.Pruned)
	}
	if len(raced.Candidates) != len(uniform.Candidates) {
		t.Fatalf("racing dropped candidates from the report: %d vs %d",
			len(raced.Candidates), len(uniform.Candidates))
	}
}

// TestOptimizeRaceEmitsRungEvents: one race_rung event per rung, with
// the entrant/promotion accounting the daemon's metrics hang off.
func TestOptimizeRaceEmitsRungEvents(t *testing.T) {
	var mu sync.Mutex
	var rungs []ProgressEvent
	o := eqOpts(12)
	o.Race = true
	o.Progress = func(ev ProgressEvent) {
		if ev.Kind == "race_rung" {
			mu.Lock()
			rungs = append(rungs, ev)
			mu.Unlock()
		}
	}
	st, err := Optimize(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rungs) != st.Race.Rungs {
		t.Fatalf("%d race_rung events for %d rungs", len(rungs), st.Race.Rungs)
	}
	first, last := rungs[0], rungs[len(rungs)-1]
	if first.Rung != 1 || first.Candidates != len(st.Candidates) {
		t.Fatalf("first rung event malformed: %+v", first)
	}
	if first.Promoted == 0 || first.Promoted >= first.Candidates {
		t.Fatalf("first rung promoted %d of %d", first.Promoted, first.Candidates)
	}
	if last.Rung != st.Race.Rungs || last.Promoted != 0 {
		t.Fatalf("final rung event malformed: %+v", last)
	}
	if last.Pruned != st.Race.Pruned {
		t.Fatalf("final event reports %d pruned, stats say %d", last.Pruned, st.Race.Pruned)
	}
}
