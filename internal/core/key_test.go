package core

import (
	"context"
	"testing"

	"pipesyn/internal/sched"
	"pipesyn/internal/synth"
)

// TestStudyKeyIgnoresExecutionKnobs pins the property the serving
// layer's crash recovery depends on: a job journaled in one process and
// re-submitted in another must land on the same content address even
// though pools, caches, worker counts, and observation hooks are all
// rebuilt from scratch. Only the study-shaping inputs may move the key.
func TestStudyKeyIgnoresExecutionKnobs(t *testing.T) {
	base := Options{Bits: 12, SampleRate: 40e6, VRef: 1.0, Synth: synth.Options{Seed: 7, MaxEvals: 50}}
	key := StudyKey(base)
	if key == "" || key != StudyKey(base) {
		t.Fatalf("StudyKey not deterministic: %q vs %q", key, StudyKey(base))
	}

	cache, err := synth.NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	exec := base
	exec.Workers = 3
	exec.Pool = sched.NewPool(2)
	exec.Progress = func(ProgressEvent) {}
	exec.Synth.Cache = cache
	exec.Synth.EvalHook = func(context.Context, int) error { return nil }
	exec.Synth.Progress = func(synth.Progress) {}
	exec.Synth.Workers = 5
	if got := StudyKey(exec); got != key {
		t.Fatalf("execution knobs changed the key: %q vs %q", got, key)
	}

	// Defaults are normalized: spelling a zero field explicitly is the
	// same study.
	spelled := base
	spelled.SampleRate = 0 // defaults to 40e6
	if got := StudyKey(spelled); got != key {
		t.Fatalf("default normalization broken: %q vs %q", got, key)
	}

	// BatchEval 0 and 1 both mean serial annealing: journaled study
	// addresses from before the knob existed must stay reachable.
	serial := base
	serial.Synth.BatchEval = 1
	if got := StudyKey(serial); got != key {
		t.Fatalf("Synth.BatchEval=1 changed the key: %q vs %q", got, key)
	}

	// The racing shape is dormant without Race: spelled-out defaults (or
	// any rungs/eta value) with Race off must not move the key, so
	// pre-racing journaled addresses stay reachable.
	shapeOnly := base
	shapeOnly.RaceRungs = 3
	shapeOnly.RaceEta = 8
	if got := StudyKey(shapeOnly); got != key {
		t.Fatalf("RaceRungs/RaceEta changed the key without Race: %q vs %q", got, key)
	}

	// With Race on, the shape participates: defaults spelled explicitly
	// match the implicit form, and a different shape is a different study.
	raced := base
	raced.Race = true
	racedSpelled := raced
	racedSpelled.RaceRungs = 2
	racedSpelled.RaceEta = 3
	if StudyKey(raced) != StudyKey(racedSpelled) {
		t.Fatal("explicit racing defaults diverged from the implicit form")
	}
	deeper := raced
	deeper.RaceRungs = 3
	if StudyKey(deeper) == StudyKey(raced) {
		t.Fatal("RaceRungs did not move the key under Race")
	}

	for name, mut := range map[string]func(*Options){
		"bits":      func(o *Options) { o.Bits = 13 },
		"rate":      func(o *Options) { o.SampleRate = 80e6 },
		"seed":      func(o *Options) { o.Synth.Seed = 8 },
		"mode":      func(o *Options) { o.Mode = 2 },
		"sha":       func(o *Options) { o.IncludeSHA = true },
		"batch":     func(o *Options) { o.Synth.BatchEval = 8 },
		"race":      func(o *Options) { o.Race = true },
		"surrogate": func(o *Options) { o.Synth.Surrogate = true },
	} {
		changed := base
		mut(&changed)
		if StudyKey(changed) == key {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}
