// Package testutil holds cross-package helpers for the robustness test
// suite: fault-injection studies in synth/core and the scheduler tests
// all share the goroutine-leak check here.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to the baseline by
// the end of the test. Helper goroutines racing to exit get a grace
// window before the check gives up; on failure the full stack dump is
// attached so the leaked goroutine is identifiable.
//
// Call it first in any test that cancels, faults, or panics the
// parallel engine: a wedged worker shows up here instead of silently
// accumulating across the suite.
func VerifyNoLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		after := runtime.NumGoroutine()
		for after > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			after = runtime.NumGoroutine()
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}
