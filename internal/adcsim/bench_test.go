package adcsim

import (
	"testing"

	"pipesyn/internal/enum"
)

func BenchmarkConvert13Bit(b *testing.B) {
	full, err := enum.Config{4, 3, 2}.WithTail(13)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(full, 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Convert(0.37)
	}
}
