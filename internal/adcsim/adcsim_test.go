package adcsim

import (
	"math"
	"testing"

	"pipesyn/internal/dsp"
	"pipesyn/internal/enum"
)

func ideal13(t *testing.T) *Converter {
	t.Helper()
	full, err := enum.Config{4, 3, 2}.WithTail(13)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(full, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestResolution(t *testing.T) {
	c := ideal13(t)
	if c.Resolution() != 13 {
		t.Fatalf("resolution = %d", c.Resolution())
	}
}

func TestMonotonicOnRamp(t *testing.T) {
	c := ideal13(t)
	prev := -1
	for i := 0; i <= 1000; i++ {
		v := -1.0 + 2.0*float64(i)/1000
		code := c.Convert(v)
		if code < prev {
			t.Fatalf("non-monotonic at v=%g: %d after %d", v, code, prev)
		}
		prev = code
	}
	if c.Convert(-2) != c.Convert(-1) || c.Convert(-2) != 0 {
		t.Fatal("under-range must clamp to 0")
	}
	if c.Convert(2) != c.Convert(1) {
		t.Fatal("over-range must clamp to the top used code")
	}
}

func TestIdealENOB(t *testing.T) {
	for _, tc := range []struct {
		cfg enum.Config
		k   int
	}{
		{enum.Config{4, 3, 2}, 13},
		{enum.Config{2, 2, 2, 2, 2, 2}, 13},
		{enum.Config{3, 2, 2, 2, 2}, 10},
	} {
		full, err := tc.cfg.WithTail(tc.k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(full, 1.0, 7)
		if err != nil {
			t.Fatal(err)
		}
		n := 4096
		fs := 40e6
		fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
		samples := c.SineTest(fs, fSig, n, 0.95)
		m, err := dsp.SineTestMetrics(samples, fs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.ENOB-float64(tc.k)) > 0.5 {
			t.Fatalf("%s @ %d-bit: ENOB = %.2f", tc.cfg, tc.k, m.ENOB)
		}
	}
}

// Digital correction must absorb comparator offsets up to the redundancy
// margin; beyond it, ENOB collapses.
func TestRedundancyAbsorbsOffsets(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 4096
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)

	run := func(offsetRMS float64) float64 {
		c, err := New(full, 1.0, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Stages {
			st := c.Stages[i]
			st.CompOffsetRMS = offsetRMS
			if err := c.SetStage(i, st); err != nil {
				t.Fatal(err)
			}
		}
		m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
		if err != nil {
			t.Fatal(err)
		}
		return m.ENOB
	}
	// Offsets at 1/8 of the stage LSB (well within the ±VRef/2G margin).
	small := run(1.0 / 8 / 16)
	if small < 12.5 {
		t.Fatalf("correctable offsets broke the converter: ENOB %.2f", small)
	}
	// Offsets far beyond the margin.
	big := run(0.25)
	if big > small-1.5 {
		t.Fatalf("huge offsets should collapse ENOB: %.2f vs %.2f", big, small)
	}
}

func TestGainErrorDegrades(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 4096
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
	c, _ := New(full, 1.0, 13)
	st := c.Stages[0]
	st.GainError = 0.01 // 1% first-stage gain error: catastrophic at 13 bits
	if err := c.SetStage(0, st); err != nil {
		t.Fatal(err)
	}
	m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
	if err != nil {
		t.Fatal(err)
	}
	// The residual sawtooth after the correlated (gain-like) part is
	// ε·q(v) with q uniform in ±1/2G: distortion RMS ≈ ε/(2G√3), which
	// for ε = 1%, G = 8 puts ENOB near 10.5 — a ~2.5 bit loss.
	if m.ENOB > 11 {
		t.Fatalf("1%% stage-1 gain error should crush ENOB, got %.2f", m.ENOB)
	}
}

func TestNoiseBudgetHalfLSB(t *testing.T) {
	// Input-referred noise of 1/2 LSB RMS costs ≈ 1 bit of ENOB-ish;
	// verify direction and rough scale.
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 4096
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
	lsb := 2.0 / math.Exp2(13)
	c, _ := New(full, 1.0, 17)
	st := c.Stages[0]
	st.NoiseRMS = lsb / 2
	if err := c.SetStage(0, st); err != nil {
		t.Fatal(err)
	}
	m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ENOB > 12.8 || m.ENOB < 11 {
		t.Fatalf("half-LSB noise: ENOB %.2f outside expected band", m.ENOB)
	}
}

func TestSettleErrorActsLikeGainError(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 4096
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
	c, _ := New(full, 1.0, 19)
	st := c.Stages[0]
	st.SettleError = 0.005
	if err := c.SetStage(0, st); err != nil {
		t.Fatal(err)
	}
	m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
	if err != nil {
		t.Fatal(err)
	}
	// Same sawtooth mechanism as gain error at half the magnitude:
	// roughly a 1.5 bit loss.
	if m.ENOB > 12 {
		t.Fatalf("0.5%% settling error should degrade ENOB, got %.2f", m.ENOB)
	}
}

func TestRampHistogramINLDNL(t *testing.T) {
	// A short ideal pipeline: near-zero INL/DNL.
	full, _ := enum.Config{3, 2}.WithTail(6)
	c, err := New(full, 1.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	hist := c.RampHistogram(32)
	// The top code of a redundancy-corrected pipeline is unused; drop it
	// so the histogram edges line up with INLDNL's edge exclusion.
	hist = hist[:len(hist)-1]
	inl, dnl, err := dsp.INLDNL(hist)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.PeakAbs(dnl) > 0.2 || dsp.PeakAbs(inl) > 0.3 {
		t.Fatalf("ideal converter INL %.3f DNL %.3f", dsp.PeakAbs(inl), dsp.PeakAbs(dnl))
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := New(enum.Config{}, 1, 0); err == nil {
		t.Fatal("expected invalid-config error")
	}
	if _, err := New(enum.Config{2, 2}, 0, 0); err == nil {
		t.Fatal("expected reference error")
	}
	c, _ := New(enum.Config{2, 2}, 1, 0)
	if err := c.SetStage(9, StageModel{Bits: 2}); err == nil {
		t.Fatal("expected range error")
	}
	if err := c.SetStage(0, StageModel{Bits: 4}); err == nil {
		t.Fatal("expected resolution-change error")
	}
}

func TestConvertAll(t *testing.T) {
	c := ideal13(t)
	codes := c.ConvertAll([]float64{-1, 0, 1})
	if len(codes) != 3 || codes[0] >= codes[1] || codes[1] >= codes[2] {
		t.Fatalf("codes = %v", codes)
	}
}

// Mismatch draws must be a pure function of (seed, stage): configuring
// the stages in any order, any number of times, yields the same offsets
// as configuring them front to back — the contract the Monte-Carlo yield
// lane's reproducibility rests on.
func TestSetStageOrderIndependent(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	build := func(order []int) *Converter {
		c, err := New(full, 1.0, 99)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			st := c.Stages[i]
			st.CompOffsetRMS = 1.0 / 64
			if err := c.SetStage(i, st); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	fwd := make([]int, len(full))
	rev := make([]int, len(full))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(full) - 1 - i
	}
	a, b := build(fwd), build(rev)
	for i := range a.offsets {
		if len(a.offsets[i]) != len(b.offsets[i]) {
			t.Fatalf("stage %d offset count differs", i)
		}
		for j := range a.offsets[i] {
			if a.offsets[i][j] != b.offsets[i][j] {
				t.Fatalf("stage %d offset %d: %g (0,1,2 order) vs %g (2,1,0 order)",
					i, j, a.offsets[i][j], b.offsets[i][j])
			}
		}
	}
	// Re-setting one stage must not disturb any other stage's draw.
	st := a.Stages[0]
	if err := a.SetStage(0, st); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.offsets); i++ {
		for j := range a.offsets[i] {
			if a.offsets[i][j] != b.offsets[i][j] {
				t.Fatalf("SetStage(0) perturbed stage %d offsets", i)
			}
		}
	}
}

// Dynamic noise draws ride their own stream: converting samples (which
// consumes noise) must not shift the static mismatch that a later
// SetStage draws.
func TestConvertDoesNotPerturbMismatch(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	configure := func(c *Converter, convertFirst bool) {
		st0 := c.Stages[0]
		st0.NoiseRMS = 1e-4
		if err := c.SetStage(0, st0); err != nil {
			t.Fatal(err)
		}
		if convertFirst {
			for i := 0; i < 257; i++ {
				c.Convert(float64(i)/300 - 0.4)
			}
		}
		st1 := c.Stages[1]
		st1.CompOffsetRMS = 1.0 / 64
		if err := c.SetStage(1, st1); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := New(full, 1.0, 5)
	b, _ := New(full, 1.0, 5)
	configure(a, true)
	configure(b, false)
	for j := range a.offsets[1] {
		if a.offsets[1][j] != b.offsets[1][j] {
			t.Fatalf("noise consumption changed stage-1 mismatch draw: %g vs %g",
				a.offsets[1][j], b.offsets[1][j])
		}
	}
}

// DAC-level mismatch is a static error the digital correction cannot
// absorb: large per-level errors must degrade ENOB, and a wrong-length
// vector must be rejected.
func TestDACMismatchDegrades(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 4096
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)

	c, _ := New(full, 1.0, 29)
	st := c.Stages[0]
	if err := c.SetStage(0, StageModel{Bits: st.Bits, DACMismatch: []float64{0, 0}}); err == nil {
		t.Fatal("expected length validation error for DAC mismatch")
	}
	g := 1 << (st.Bits - 1)
	mm := make([]float64, 2*g-1)
	for j := range mm {
		d := j - (g - 1)
		mm[j] = 0.02 * float64(d%3) // a few % of a level: gross at 13 bits
	}
	st.DACMismatch = mm
	if err := c.SetStage(0, st); err != nil {
		t.Fatal(err)
	}
	m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ENOB > 9 {
		t.Fatalf("gross DAC mismatch should crush ENOB, got %.2f", m.ENOB)
	}
}

// Monte Carlo mismatch analysis: with comparator offsets drawn at half
// the redundancy margin, every mismatch realization must still convert
// within a fraction of a bit of the target — the statistical face of the
// digital-correction guarantee.
func TestMonteCarloOffsetYield(t *testing.T) {
	full, _ := enum.Config{4, 3, 2}.WithTail(13)
	n := 2048
	fs := 40e6
	fSig, _ := dsp.CoherentBin(fs, 2.3e6, n)
	// Stage-1 margin is ±VRef/2G = ±1/16; draw at σ = margin/4.
	sigma := 1.0 / 64
	worst := 99.0
	for seed := int64(0); seed < 20; seed++ {
		c, err := New(full, 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Stages {
			st := c.Stages[i]
			st.CompOffsetRMS = sigma
			if err := c.SetStage(i, st); err != nil {
				t.Fatal(err)
			}
		}
		m, err := dsp.SineTestMetrics(c.SineTest(fs, fSig, n, 0.95), fs)
		if err != nil {
			t.Fatal(err)
		}
		if m.ENOB < worst {
			worst = m.ENOB
		}
	}
	if worst < 12.3 {
		t.Fatalf("worst-case ENOB over 20 mismatch draws = %.2f, want ≥ 12.3", worst)
	}
}
