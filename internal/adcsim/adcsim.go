// Package adcsim is a behavioral simulator for pipelined ADCs with
// digital correction. It models each stage as a flash sub-ADC deciding a
// DAC level plus an amplified residue, with injectable non-idealities
// (gain error, input-referred noise, comparator offsets, incomplete
// settling), then reconstructs the output code exactly as the correction
// logic does. Together with package dsp it verifies that a synthesized
// stage-resolution configuration actually delivers the target ENOB — and
// that the 1-bit redundancy really absorbs comparator-level errors.
package adcsim

import (
	"fmt"
	"math"
	"math/rand"

	"pipesyn/internal/enum"
)

// StageModel is the behavioral description of one pipeline stage.
type StageModel struct {
	Bits int // raw resolution mᵢ (gain 2^(mᵢ−1))
	// Non-idealities; all zero = ideal stage. GainError and SettleError
	// scale the entire closed-loop residue expression G·v − d·VRef — in a
	// real MDAC the signal gain and the DAC subtraction share the same
	// capacitor ratio and loop gain, which is exactly why such errors
	// produce code-transition discontinuities rather than a benign
	// full-scale rescale.
	GainError     float64 // relative closed-loop gain error
	NoiseRMS      float64 // input-referred additive noise, V
	CompOffsetRMS float64 // per-comparator threshold offset, V
	SettleError   float64 // unsettled fraction of the residue step
}

// Converter is a behavioral pipelined ADC. The input range is ±VRef.
type Converter struct {
	VRef   float64
	Stages []StageModel
	rng    *rand.Rand
	// offsets[i][j] is the fixed offset of stage i's j-th threshold,
	// drawn once at construction (offsets are static mismatch, not noise).
	offsets [][]float64
}

// New builds a converter from a full configuration (use
// enum.Config.WithTail to extend a leading-stage candidate to K bits).
// Seed fixes the mismatch draw.
func New(cfg enum.Config, vref float64, seed int64) (*Converter, error) {
	if !cfg.Valid(6) {
		return nil, fmt.Errorf("adcsim: invalid configuration %s", cfg)
	}
	if vref <= 0 {
		return nil, fmt.Errorf("adcsim: non-positive reference")
	}
	c := &Converter{VRef: vref, rng: rand.New(rand.NewSource(seed))}
	for _, m := range cfg {
		c.Stages = append(c.Stages, StageModel{Bits: m})
	}
	c.resampleOffsets()
	return c, nil
}

// SetStage replaces a stage model (to inject non-idealities) and redraws
// that stage's comparator offsets.
func (c *Converter) SetStage(i int, m StageModel) error {
	if i < 0 || i >= len(c.Stages) {
		return fmt.Errorf("adcsim: stage %d out of range", i)
	}
	if m.Bits != c.Stages[i].Bits {
		return fmt.Errorf("adcsim: cannot change stage resolution (%d→%d)", c.Stages[i].Bits, m.Bits)
	}
	c.Stages[i] = m
	c.resampleOffsets()
	return nil
}

func (c *Converter) resampleOffsets() {
	c.offsets = make([][]float64, len(c.Stages))
	for i, st := range c.Stages {
		g := 1 << (st.Bits - 1)
		n := 2*g - 2 // thresholds of a 2^bits−2 comparator flash
		c.offsets[i] = make([]float64, n)
		for j := range c.offsets[i] {
			c.offsets[i][j] = c.rng.NormFloat64() * st.CompOffsetRMS
		}
	}
}

// Resolution returns the effective number of bits of the pipeline,
// m₁ + Σ(mᵢ−1).
func (c *Converter) Resolution() int {
	cfg := make(enum.Config, len(c.Stages))
	for i, s := range c.Stages {
		cfg[i] = s.Bits
	}
	return cfg.Resolution()
}

// Convert digitizes one sample (clamped to ±VRef) and returns the
// corrected output code in [0, 2^K).
func (c *Converter) Convert(vin float64) int {
	k := c.Resolution()
	vhat := c.convertValue(vin)
	// Map the reconstructed value (in VRef units, range ±1) to a code.
	// Ideal reconstructions land exactly on the grid x ∈ {1 … 2^K−1}, so
	// round (not floor) keeps float dust from dithering adjacent codes;
	// the shift by one puts the bottom of the range at code 0 (the top
	// code 2^K−1 is unused, as in any redundancy-corrected pipeline).
	x := (vhat + 1) / 2 * math.Exp2(float64(k))
	code := int(math.Round(x)) - 1
	if code < 0 {
		code = 0
	}
	if max := int(math.Exp2(float64(k))) - 1; code > max {
		code = max
	}
	return code
}

// convertValue runs the pipeline and digital correction, returning the
// reconstructed input estimate normalized to VRef (range ≈ ±1).
func (c *Converter) convertValue(vin float64) float64 {
	v := clamp(vin, -c.VRef, c.VRef)
	acc := 0.0      // reconstructed estimate, in VRef units
	gainProd := 1.0 // Π_{j≤i} G_j
	for i, st := range c.Stages {
		g := float64(int(1) << (st.Bits - 1))
		if st.NoiseRMS > 0 {
			v += c.rng.NormFloat64() * st.NoiseRMS
		}
		d := c.subADC(i, v, int(g))
		gainProd *= g
		acc += float64(d) / gainProd // d_i·VRef / Π_{j≤i}G_j, normalized
		if i == len(c.Stages)-1 {
			break
		}
		// Residue amplification: gain error and incomplete settling scale
		// the whole closed-loop expression (signal and DAC terms share
		// the capacitor ratio), creating the classic INL staircase.
		v = (1 + st.GainError) * (1 - st.SettleError) * (g*v - float64(d)*c.VRef)
	}
	// The final residue below the last flash's LSB is the converter's
	// quantization error (±½ LSB for ideal stages).
	return acc
}

// subADC quantizes v with stage i's flash: thresholds at
// (j+0.5)·VRef/G for j in [−(G−1), G−2], plus static offsets.
// The decision d ∈ [−(G−1), G−1].
func (c *Converter) subADC(stage int, v float64, g int) int {
	d := -(g - 1)
	offs := c.offsets[stage]
	for j := -(g - 1); j <= g-2; j++ {
		t := (float64(j) + 0.5) * c.VRef / float64(g)
		oi := j + g - 1
		if oi < len(offs) {
			t += offs[oi]
		}
		if v > t {
			d++
		}
	}
	return d
}

// ConvertAll digitizes a sample vector.
func (c *Converter) ConvertAll(samples []float64) []int {
	out := make([]int, len(samples))
	for i, v := range samples {
		out[i] = c.Convert(v)
	}
	return out
}

// SineTest runs a coherent full-scale sine test and returns the codes as
// normalized floats ready for dsp.SineTestMetrics. amplitude is relative
// to full scale (use ~0.95 to avoid clipping the edges).
func (c *Converter) SineTest(fs, fSig float64, n int, amplitude float64) []float64 {
	k := c.Resolution()
	scale := math.Exp2(float64(k))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := amplitude * c.VRef * math.Sin(2*math.Pi*fSig*float64(i)/fs)
		out[i] = float64(c.Convert(v)) / scale
	}
	return out
}

// RampHistogram drives a uniform ramp through the converter and returns
// the code histogram for INL/DNL extraction.
func (c *Converter) RampHistogram(samplesPerCode int) []int {
	k := c.Resolution()
	codes := int(math.Exp2(float64(k)))
	total := codes * samplesPerCode
	hist := make([]int, codes)
	for i := 0; i < total; i++ {
		v := -c.VRef + 2*c.VRef*(float64(i)+0.5)/float64(total)
		hist[c.Convert(v)]++
	}
	return hist
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
