// Package adcsim is a behavioral simulator for pipelined ADCs with
// digital correction. It models each stage as a flash sub-ADC deciding a
// DAC level plus an amplified residue, with injectable non-idealities
// (gain error, input-referred noise, comparator offsets, incomplete
// settling), then reconstructs the output code exactly as the correction
// logic does. Together with package dsp it verifies that a synthesized
// stage-resolution configuration actually delivers the target ENOB — and
// that the 1-bit redundancy really absorbs comparator-level errors.
package adcsim

import (
	"fmt"
	"math"
	"math/rand"

	"pipesyn/internal/enum"
)

// StageModel is the behavioral description of one pipeline stage.
type StageModel struct {
	Bits int // raw resolution mᵢ (gain 2^(mᵢ−1))
	// Non-idealities; all zero = ideal stage. GainError and SettleError
	// scale the entire closed-loop residue expression G·v − d·VRef — in a
	// real MDAC the signal gain and the DAC subtraction share the same
	// capacitor ratio and loop gain, which is exactly why such errors
	// produce code-transition discontinuities rather than a benign
	// full-scale rescale.
	GainError     float64 // relative closed-loop gain error
	NoiseRMS      float64 // input-referred additive noise, V
	CompOffsetRMS float64 // per-comparator threshold offset, V
	SettleError   float64 // unsettled fraction of the residue step
	// DACMismatch is the static per-level error of the stage DAC in VRef
	// units: level d subtracts (d + DACMismatch[d+G−1])·VRef from the
	// amplified input instead of d·VRef. In a switched-capacitor MDAC
	// each level switches a different subset of the sampling unit caps,
	// so capacitor mismatch lands exactly here — level-dependent DAC
	// errors the digital correction cannot absorb. Length must be 0
	// (ideal) or 2G−1 where G = 2^(Bits−1), indexed by d+G−1 for
	// d ∈ [−(G−1), G−1].
	DACMismatch []float64
}

// Converter is a behavioral pipelined ADC. The input range is ±VRef.
type Converter struct {
	VRef   float64
	Stages []StageModel
	// seed anchors the static-mismatch draws. Each stage's comparator
	// offsets come from its own deterministic substream of this seed, so
	// injecting a model into one stage never disturbs another stage's
	// mismatch realization, and the draw is independent of the order in
	// which stages are configured.
	seed int64
	// noise is the dynamic-noise stream, deliberately separate from the
	// mismatch substreams: Convert calls consume noise samples without
	// perturbing the static mismatch state.
	noise *rand.Rand
	// offsets[i][j] is the fixed offset of stage i's j-th threshold,
	// drawn once per SetStage (offsets are static mismatch, not noise).
	offsets [][]float64
}

// stageSeed derives the deterministic substream seed for one stage's
// static mismatch (or, with stage = −1, the dynamic-noise stream). It is
// a splitmix64-style finalizer over (seed, stage): adjacent seeds and
// stages land in statistically unrelated streams.
func stageSeed(seed int64, stage int) int64 {
	z := uint64(seed) + uint64(stage+2)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// New builds a converter from a full configuration (use
// enum.Config.WithTail to extend a leading-stage candidate to K bits).
// Seed fixes the mismatch draw.
func New(cfg enum.Config, vref float64, seed int64) (*Converter, error) {
	if !cfg.Valid(6) {
		return nil, fmt.Errorf("adcsim: invalid configuration %s", cfg)
	}
	if vref <= 0 {
		return nil, fmt.Errorf("adcsim: non-positive reference")
	}
	c := &Converter{VRef: vref, seed: seed, noise: rand.New(rand.NewSource(stageSeed(seed, -1)))}
	for _, m := range cfg {
		c.Stages = append(c.Stages, StageModel{Bits: m})
	}
	c.offsets = make([][]float64, len(c.Stages))
	for i := range c.Stages {
		c.resampleStage(i)
	}
	return c, nil
}

// SetStage replaces a stage model (to inject non-idealities) and redraws
// that stage's — and only that stage's — comparator offsets from its
// deterministic substream. Stage i's mismatch realization therefore
// depends only on (seed, i, CompOffsetRMS), not on how many times or in
// which order other stages were configured.
func (c *Converter) SetStage(i int, m StageModel) error {
	if i < 0 || i >= len(c.Stages) {
		return fmt.Errorf("adcsim: stage %d out of range", i)
	}
	if m.Bits != c.Stages[i].Bits {
		return fmt.Errorf("adcsim: cannot change stage resolution (%d→%d)", c.Stages[i].Bits, m.Bits)
	}
	if n := len(m.DACMismatch); n != 0 {
		if want := 2*(1<<(m.Bits-1)) - 1; n != want {
			return fmt.Errorf("adcsim: stage %d DAC mismatch has %d levels, want %d", i, n, want)
		}
	}
	c.Stages[i] = m
	c.resampleStage(i)
	return nil
}

// resampleStage redraws stage i's comparator offsets from the stage's own
// substream. A fresh generator per call makes the draw a pure function of
// (converter seed, stage index, the stage's CompOffsetRMS).
func (c *Converter) resampleStage(i int) {
	st := c.Stages[i]
	rng := rand.New(rand.NewSource(stageSeed(c.seed, i)))
	g := 1 << (st.Bits - 1)
	n := 2*g - 2 // thresholds of a 2^bits−2 comparator flash
	c.offsets[i] = make([]float64, n)
	for j := range c.offsets[i] {
		c.offsets[i][j] = rng.NormFloat64() * st.CompOffsetRMS
	}
}

// Resolution returns the effective number of bits of the pipeline,
// m₁ + Σ(mᵢ−1).
func (c *Converter) Resolution() int {
	cfg := make(enum.Config, len(c.Stages))
	for i, s := range c.Stages {
		cfg[i] = s.Bits
	}
	return cfg.Resolution()
}

// Convert digitizes one sample (clamped to ±VRef) and returns the
// corrected output code in [0, 2^K).
func (c *Converter) Convert(vin float64) int {
	k := c.Resolution()
	vhat := c.convertValue(vin)
	// Map the reconstructed value (in VRef units, range ±1) to a code.
	// Ideal reconstructions land exactly on the grid x ∈ {1 … 2^K−1}, so
	// round (not floor) keeps float dust from dithering adjacent codes;
	// the shift by one puts the bottom of the range at code 0 (the top
	// code 2^K−1 is unused, as in any redundancy-corrected pipeline).
	x := (vhat + 1) / 2 * math.Exp2(float64(k))
	code := int(math.Round(x)) - 1
	if code < 0 {
		code = 0
	}
	if max := int(math.Exp2(float64(k))) - 1; code > max {
		code = max
	}
	return code
}

// convertValue runs the pipeline and digital correction, returning the
// reconstructed input estimate normalized to VRef (range ≈ ±1).
func (c *Converter) convertValue(vin float64) float64 {
	v := clamp(vin, -c.VRef, c.VRef)
	acc := 0.0      // reconstructed estimate, in VRef units
	gainProd := 1.0 // Π_{j≤i} G_j
	for i, st := range c.Stages {
		g := float64(int(1) << (st.Bits - 1))
		if st.NoiseRMS > 0 {
			v += c.noise.NormFloat64() * st.NoiseRMS
		}
		d := c.subADC(i, v, int(g))
		gainProd *= g
		acc += float64(d) / gainProd // d_i·VRef / Π_{j≤i}G_j, normalized
		if i == len(c.Stages)-1 {
			break
		}
		// Residue amplification: gain error and incomplete settling scale
		// the whole closed-loop expression (signal and DAC terms share
		// the capacitor ratio), creating the classic INL staircase. The
		// DAC level itself carries its static capacitor-mismatch error:
		// the analog subtraction is off by DACMismatch[d+G−1]·VRef while
		// the digital reconstruction still assumes the ideal level.
		dac := float64(d)
		if len(st.DACMismatch) > 0 {
			dac += st.DACMismatch[d+int(g)-1]
		}
		v = (1 + st.GainError) * (1 - st.SettleError) * (g*v - dac*c.VRef)
	}
	// The final residue below the last flash's LSB is the converter's
	// quantization error (±½ LSB for ideal stages).
	return acc
}

// subADC quantizes v with stage i's flash: thresholds at
// (j+0.5)·VRef/G for j in [−(G−1), G−2], plus static offsets.
// The decision d ∈ [−(G−1), G−1].
func (c *Converter) subADC(stage int, v float64, g int) int {
	d := -(g - 1)
	offs := c.offsets[stage]
	for j := -(g - 1); j <= g-2; j++ {
		t := (float64(j) + 0.5) * c.VRef / float64(g)
		oi := j + g - 1
		if oi < len(offs) {
			t += offs[oi]
		}
		if v > t {
			d++
		}
	}
	return d
}

// ConvertAll digitizes a sample vector.
func (c *Converter) ConvertAll(samples []float64) []int {
	out := make([]int, len(samples))
	for i, v := range samples {
		out[i] = c.Convert(v)
	}
	return out
}

// SineTest runs a coherent full-scale sine test and returns the codes as
// normalized floats ready for dsp.SineTestMetrics. amplitude is relative
// to full scale (use ~0.95 to avoid clipping the edges).
func (c *Converter) SineTest(fs, fSig float64, n int, amplitude float64) []float64 {
	k := c.Resolution()
	scale := math.Exp2(float64(k))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := amplitude * c.VRef * math.Sin(2*math.Pi*fSig*float64(i)/fs)
		out[i] = float64(c.Convert(v)) / scale
	}
	return out
}

// RampHistogram drives a uniform ramp through the converter and returns
// the code histogram for INL/DNL extraction.
func (c *Converter) RampHistogram(samplesPerCode int) []int {
	k := c.Resolution()
	codes := int(math.Exp2(float64(k)))
	total := codes * samplesPerCode
	hist := make([]int, codes)
	for i := 0; i < total; i++ {
		v := -c.VRef + 2*c.VRef*(float64(i)+0.5)/float64(total)
		hist[c.Convert(v)]++
	}
	return hist
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
