package poly

import "testing"

func BenchmarkRootsDegree8(b *testing.B) {
	p := FromRoots(-1, -3, -10, -30, -100, -300, -1000, -3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Roots()
	}
}

func BenchmarkRatMulAdd(b *testing.B) {
	h1, _ := NewRat(New(1), New(1, 1e-9))
	h2, _ := NewRat(New(100), New(1, 1e-6, 1e-15))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h1.Mul(h2).Add(h1)
	}
}
