// Package poly implements univariate polynomials and rational functions in
// the Laplace variable s, together with a Durand–Kerner root finder. These
// are the numeric backbone for transfer functions produced by the DPI/SFG
// + Mason's-rule flow: once small-signal parameters are known numerically,
// a transfer function becomes a Rat whose poles and zeros, DC gain and
// frequency response drive the fast "equation side" of the hybrid evaluator.
package poly

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a real polynomial stored as ascending coefficients:
// p[0] + p[1]·x + p[2]·x² + …  The zero polynomial is the empty slice.
type Poly []float64

// New builds a polynomial from ascending coefficients, trimming trailing
// zeros so Degree is well-defined.
func New(coeffs ...float64) Poly { return Poly(coeffs).Trim() }

// Trim removes trailing (high-order) zero coefficients.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the polynomial degree; the zero polynomial has degree -1.
func (p Poly) Degree() int { return len(p.Trim()) - 1 }

// IsZero reports whether p is identically zero.
func (p Poly) IsZero() bool { return len(p.Trim()) == 0 }

// Clone returns a copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, v := range q {
		out[i] += v
	}
	return out.Trim()
}

// Sub returns p − q.
func (p Poly) Sub(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, v := range q {
		out[i] -= v
	}
	return out.Trim()
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	p, q = p.Trim(), q.Trim()
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out.Trim()
}

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	if k == 0 {
		return nil
	}
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = k * v
	}
	return out.Trim()
}

// Eval evaluates p at the complex point x by Horner's method.
func (p Poly) Eval(x complex128) complex128 {
	var acc complex128
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + complex(p[i], 0)
	}
	return acc
}

// EvalReal evaluates p at a real point.
func (p Poly) EvalReal(x float64) float64 {
	acc := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + p[i]
	}
	return acc
}

// Deriv returns dp/dx.
func (p Poly) Deriv() Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out.Trim()
}

// Monic returns p scaled so its leading coefficient is 1; the zero
// polynomial is returned unchanged.
func (p Poly) Monic() Poly {
	p = p.Trim()
	if len(p) == 0 {
		return p
	}
	return p.Scale(1 / p[len(p)-1])
}

// String renders p in ascending-power form like "1 + 2·s + 3·s^2".
func (p Poly) String() string {
	p2 := p.Trim()
	if len(p2) == 0 {
		return "0"
	}
	var parts []string
	for i, c := range p2 {
		if c == 0 && len(p2) > 1 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, fmt.Sprintf("%.6g", c))
		case 1:
			parts = append(parts, fmt.Sprintf("%.6g·s", c))
		default:
			parts = append(parts, fmt.Sprintf("%.6g·s^%d", c, i))
		}
	}
	return strings.Join(parts, " + ")
}

// Roots returns all complex roots of p using the Durand–Kerner iteration.
// The polynomial must have degree ≥ 1; degree-0 and zero polynomials
// return nil. Results are unordered.
func (p Poly) Roots() []complex128 {
	p = p.Trim()
	n := len(p) - 1
	if n < 1 {
		return nil
	}
	// Strip roots at the origin exactly: they are common in transfer
	// functions (zeros at DC) and slow the iteration.
	zeroRoots := 0
	for len(p) > 1 && p[0] == 0 {
		p = p[1:]
		zeroRoots++
	}
	n = len(p) - 1
	roots := make([]complex128, 0, n+zeroRoots)
	for i := 0; i < zeroRoots; i++ {
		roots = append(roots, 0)
	}
	if n < 1 {
		return roots
	}
	c := make([]complex128, len(p))
	lead := p[len(p)-1]
	for i, v := range p {
		c[i] = complex(v/lead, 0)
	}
	// Initial guesses on a circle with radius from the Cauchy bound,
	// slightly detuned to break symmetry.
	radius := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(real(c[i])); a > radius {
			radius = a
		}
	}
	radius = 1 + radius
	z := make([]complex128, n)
	for i := range z {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.4
		z[i] = complex(radius*math.Cos(theta), radius*math.Sin(theta))
	}
	evalMonic := func(x complex128) complex128 {
		var acc complex128
		for i := len(c) - 1; i >= 0; i-- {
			acc = acc*x + c[i]
		}
		return acc
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range z {
			num := evalMonic(z[i])
			den := complex(1, 0)
			for j := range z {
				if j != i {
					den *= z[i] - z[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates.
				z[i] += complex(1e-6, 1e-6)
				continue
			}
			step := num / den
			z[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-13*(1+radius) {
			break
		}
	}
	// Polish: snap near-real roots onto the axis (transfer functions of
	// RC circuits have real poles; tiny imaginary dust confuses reports).
	for i := range z {
		if math.Abs(imag(z[i])) < 1e-9*(1+math.Abs(real(z[i]))) {
			z[i] = complex(real(z[i]), 0)
		}
	}
	return append(roots, z...)
}

// FromRoots builds the monic polynomial with the given roots, discarding
// any residual imaginary part (callers pass conjugate pairs).
func FromRoots(roots ...complex128) Poly {
	acc := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(acc)+1)
		for i, a := range acc {
			next[i] -= a * r
			next[i+1] += a
		}
		acc = next
	}
	out := make(Poly, len(acc))
	for i, v := range acc {
		out[i] = real(v)
	}
	return out.Trim()
}
