package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratApprox(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol*(1+cmplx.Abs(a)+cmplx.Abs(b))
}

func TestRatBasics(t *testing.T) {
	// H(s) = 10 / (1 + s/1000): single-pole low-pass.
	h, err := NewRat(New(10), New(1, 1.0/1000))
	if err != nil {
		t.Fatal(err)
	}
	if g := h.DCGain(); math.Abs(g-10) > 1e-12 {
		t.Fatalf("DCGain = %g, want 10", g)
	}
	// At the pole frequency the magnitude drops by √2.
	m := cmplx.Abs(h.EvalJW(1000))
	if math.Abs(m-10/math.Sqrt2) > 1e-9 {
		t.Fatalf("|H(jωp)| = %g, want %g", m, 10/math.Sqrt2)
	}
	poles := h.Poles()
	if len(poles) != 1 || cmplx.Abs(poles[0]-complex(-1000, 0)) > 1e-6 {
		t.Fatalf("poles = %v, want [-1000]", poles)
	}
}

func TestRatZeroDenominator(t *testing.T) {
	if _, err := NewRat(New(1), New()); err == nil {
		t.Fatal("expected error for zero denominator")
	}
}

func TestRatArithmetic(t *testing.T) {
	a := RatConst(2)
	s := RatVar()
	// H = 2/(s+2) built as 2 · (1/(s+2))
	one := RatConst(1)
	h := a.Mul(one.Div(s.Add(RatConst(2))))
	if g := h.DCGain(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("DCGain = %g, want 1", g)
	}
	// Sum of partial fractions: 1/(s+1) + 1/(s+2) = (2s+3)/((s+1)(s+2))
	f1 := one.Div(s.Add(RatConst(1)))
	f2 := one.Div(s.Add(RatConst(2)))
	sum := f1.Add(f2)
	for _, fr := range []float64{0.1, 1, 3, 10} {
		sp := complex(0, fr)
		want := 1/(sp+1) + 1/(sp+2)
		if !ratApprox(sum.Eval(sp), want, 1e-10) {
			t.Fatalf("sum mismatch at %v: %v vs %v", sp, sum.Eval(sp), want)
		}
	}
}

func TestRatSubNegDiv(t *testing.T) {
	s := RatVar()
	h := s.Sub(s)
	if !h.IsZero() {
		t.Fatalf("s-s = %v, want 0", h)
	}
	n := RatConst(3).Neg()
	if g := n.DCGain(); g != -3 {
		t.Fatalf("Neg DCGain = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero rat should panic")
		}
	}()
	_ = RatConst(1).Div(Rat{Num: nil, Den: New(1)})
}

func TestReduceOrigin(t *testing.T) {
	// s/(s·(s+1)) should reduce to 1/(s+1).
	s := RatVar()
	den := s.Mul(s.Add(RatConst(1)))
	h := s.Div(den)
	if g := h.DCGain(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("DCGain after origin-cancel = %g, want 1", g)
	}
}

// Property: Add/Mul of random rationals agree with pointwise complex
// arithmetic away from poles.
func TestRatFieldProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randRat := func() Rat {
			num := New(r.Float64()*4-2, r.Float64()*4-2)
			den := New(r.Float64()*4+1, r.Float64()*2+0.5) // keeps poles left of origin-ish
			q, _ := NewRat(num, den)
			return q
		}
		a, b := randRat(), randRat()
		pt := complex(0, 0.7+r.Float64())
		sum := a.Add(b).Eval(pt)
		prod := a.Mul(b).Eval(pt)
		wantSum := a.Eval(pt) + b.Eval(pt)
		wantProd := a.Eval(pt) * b.Eval(pt)
		return ratApprox(sum, wantSum, 1e-9) && ratApprox(prod, wantProd, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCharacterizeSinglePole(t *testing.T) {
	// H = 1000/(1+s/ωp), fp = 1 kHz → unity gain at ~1 MHz, PM ≈ 90°.
	fp := 1e3
	h, _ := NewRat(New(1000), New(1, 1/(2*math.Pi*fp)))
	b := h.Characterize(1, 1e9, 100)
	if math.Abs(b.DCGainDB-60) > 0.01 {
		t.Fatalf("DCGainDB = %g, want 60", b.DCGainDB)
	}
	if math.Abs(b.Pole3DBHz-fp)/fp > 0.05 {
		t.Fatalf("Pole3DBHz = %g, want ≈ %g", b.Pole3DBHz, fp)
	}
	if math.Abs(b.UnityGainHz-1e6)/1e6 > 0.05 {
		t.Fatalf("UnityGainHz = %g, want ≈ 1e6", b.UnityGainHz)
	}
	if math.Abs(b.PhaseMargin-90) > 3 {
		t.Fatalf("PhaseMargin = %g, want ≈ 90", b.PhaseMargin)
	}
}

func TestCharacterizeTwoPole(t *testing.T) {
	// Two-pole: second pole at the extrapolated unity-gain frequency. The
	// actual crossover shifts down to ≈0.786·fu, giving PM ≈ 51.8°
	// (180 − 90 − atan(0.786)).
	a0 := 1000.0
	fp1 := 1e3
	fu := a0 * fp1 // 1e6
	h1, _ := NewRat(New(a0), New(1, 1/(2*math.Pi*fp1)))
	h2, _ := NewRat(New(1), New(1, 1/(2*math.Pi*fu)))
	h := h1.Mul(h2)
	b := h.Characterize(1, 1e9, 200)
	if math.Abs(b.PhaseMargin-51.8) > 3 {
		t.Fatalf("PhaseMargin = %g, want ≈ 51.8", b.PhaseMargin)
	}
	if b.UnityGainHz > fu || b.UnityGainHz < 0.5*fu {
		t.Fatalf("UnityGainHz = %g, want slightly below %g", b.UnityGainHz, fu)
	}
}

func TestRatString(t *testing.T) {
	h, _ := NewRat(New(1), New(1, 1))
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRatScaleZerosClone(t *testing.T) {
	h, _ := NewRat(New(0, 2), New(1, 1)) // 2s/(1+s): zero at origin
	s2 := h.Scale(3)
	if g := s2.Eval(complex(1, 0)); cmplxAbsDiff(g, complex(3, 0)) > 1e-12 {
		t.Fatalf("Scale: H(1) = %v, want 3", g)
	}
	zeros := h.Zeros()
	if len(zeros) != 1 || cmplxAbsDiff(zeros[0], 0) > 1e-9 {
		t.Fatalf("zeros = %v, want [0]", zeros)
	}
	p := New(1, 2, 3)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliased the backing array")
	}
	// DCGain of an integrator is +Inf; of a zero numerator, 0.
	integ, _ := NewRat(New(1), New(0, 1))
	if !math.IsInf(integ.DCGain(), 1) {
		t.Fatalf("integrator DCGain = %g", integ.DCGain())
	}
	null, _ := NewRat(New(), New(1))
	if g := null.DCGain(); g != 0 {
		t.Fatalf("zero rat DCGain = %g", g)
	}
}

func cmplxAbsDiff(a, b complex128) float64 {
	d := a - b
	return math.Hypot(real(d), imag(d))
}
