package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestArithmetic(t *testing.T) {
	p := New(1, 2)    // 1 + 2s
	q := New(3, 0, 1) // 3 + s²
	sum := p.Add(q)
	want := New(4, 2, 1)
	if len(sum) != len(want) {
		t.Fatalf("Add len = %d, want %d", len(sum), len(want))
	}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Add[%d] = %g, want %g", i, sum[i], want[i])
		}
	}
	prod := p.Mul(q) // (1+2s)(3+s²) = 3 + 6s + s² + 2s³
	wantP := New(3, 6, 1, 2)
	for i := range wantP {
		if prod[i] != wantP[i] {
			t.Fatalf("Mul[%d] = %g, want %g", i, prod[i], wantP[i])
		}
	}
	if d := p.Sub(p); !d.IsZero() {
		t.Fatalf("p-p = %v, want zero", d)
	}
}

func TestTrimDegree(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if p.Degree() != 1 {
		t.Fatalf("Degree = %d, want 1", p.Degree())
	}
	if New().Degree() != -1 {
		t.Fatal("zero poly degree should be -1")
	}
	if !(Poly{0, 0}).Trim().IsZero() {
		t.Fatal("Trim should yield zero poly")
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -3, 2) // 1 - 3x + 2x² ; roots 0.5 and 1
	if v := p.EvalReal(1); v != 0 {
		t.Fatalf("p(1) = %g, want 0", v)
	}
	if v := p.EvalReal(0.5); math.Abs(v) > 1e-15 {
		t.Fatalf("p(0.5) = %g, want 0", v)
	}
	if v := p.Eval(complex(2, 0)); cmplx.Abs(v-3) > 1e-15 {
		t.Fatalf("p(2) = %v, want 3", v)
	}
}

func TestDeriv(t *testing.T) {
	p := New(5, 3, 0, 7) // 5 + 3x + 7x³
	d := p.Deriv()       // 3 + 21x²
	want := New(3, 0, 21)
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Deriv[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if New(4).Deriv() != nil {
		t.Fatal("constant deriv should be zero poly")
	}
}

func TestRootsQuadratic(t *testing.T) {
	// (x-2)(x+5) = x² + 3x - 10
	p := New(-10, 3, 1)
	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	sort.Slice(roots, func(i, j int) bool { return real(roots[i]) < real(roots[j]) })
	if cmplx.Abs(roots[0]-complex(-5, 0)) > 1e-8 || cmplx.Abs(roots[1]-complex(2, 0)) > 1e-8 {
		t.Fatalf("roots = %v, want [-5 2]", roots)
	}
}

func TestRootsComplexPair(t *testing.T) {
	// x² + 1 → ±j
	p := New(1, 0, 1)
	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots", len(roots))
	}
	for _, r := range roots {
		if math.Abs(real(r)) > 1e-8 || math.Abs(math.Abs(imag(r))-1) > 1e-8 {
			t.Fatalf("root %v not ±j", r)
		}
	}
}

func TestRootsAtOrigin(t *testing.T) {
	// x²(x-3) = x³ - 3x²
	p := New(0, 0, -3, 1)
	roots := p.Roots()
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(roots))
	}
	zeroCount := 0
	threeFound := false
	for _, r := range roots {
		if r == 0 {
			zeroCount++
		}
		if cmplx.Abs(r-3) < 1e-8 {
			threeFound = true
		}
	}
	if zeroCount != 2 || !threeFound {
		t.Fatalf("roots = %v, want two zeros and a 3", roots)
	}
}

// Property: FromRoots followed by Roots recovers the root multiset for
// well-separated real roots.
func TestRootsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		r := rand.New(rand.NewSource(seed))
		// Well-separated real roots in [-10, 10].
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i*7) - 10 + r.Float64()
		}
		var croots []complex128
		for _, w := range want {
			croots = append(croots, complex(w, 0))
		}
		p := FromRoots(croots...)
		got := p.Roots()
		if len(got) != n {
			return false
		}
		gr := make([]float64, n)
		for i, g := range got {
			if math.Abs(imag(g)) > 1e-6 {
				return false
			}
			gr[i] = real(g)
		}
		sort.Float64s(gr)
		sort.Float64s(want)
		for i := range want {
			if math.Abs(gr[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMonic(t *testing.T) {
	p := New(2, 4).Monic()
	if p[1] != 1 || p[0] != 0.5 {
		t.Fatalf("Monic = %v", p)
	}
}

func TestString(t *testing.T) {
	if s := New(1, 2, 3).String(); s != "1 + 2·s + 3·s^2" {
		t.Fatalf("String = %q", s)
	}
	if s := New().String(); s != "0" {
		t.Fatalf("zero String = %q", s)
	}
}
