package poly

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Rat is a rational function Num(s)/Den(s). The zero value is invalid;
// use NewRat or the arithmetic methods, which keep Den non-zero.
type Rat struct {
	Num, Den Poly
}

// NewRat builds a rational function, normalizing the representation so
// that the denominator's leading coefficient is positive where possible.
func NewRat(num, den Poly) (Rat, error) {
	den = den.Trim()
	if den.IsZero() {
		return Rat{}, fmt.Errorf("poly: rational function with zero denominator")
	}
	return Rat{Num: num.Trim(), Den: den}.normalize(), nil
}

// RatConst returns the constant rational function k/1.
func RatConst(k float64) Rat { return Rat{Num: New(k), Den: New(1)} }

// RatVar returns the rational function s/1 (the Laplace variable itself).
func RatVar() Rat { return Rat{Num: New(0, 1), Den: New(1)} }

// normalize scales numerator and denominator so the denominator's largest
// |coefficient| is 1, taming overflow when Mason's rule multiplies many
// branch gains.
func (r Rat) normalize() Rat {
	m := 0.0
	for _, v := range r.Den {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 || m == 1 {
		return r
	}
	inv := 1 / m
	return Rat{Num: r.Num.Scale(inv), Den: r.Den.Scale(inv)}
}

// IsZero reports whether the numerator is identically zero.
func (r Rat) IsZero() bool { return r.Num.IsZero() }

// Add returns r + q.
func (r Rat) Add(q Rat) Rat {
	num := r.Num.Mul(q.Den).Add(q.Num.Mul(r.Den))
	den := r.Den.Mul(q.Den)
	return Rat{Num: num, Den: den}.reduceOrigin().normalize()
}

// Sub returns r − q.
func (r Rat) Sub(q Rat) Rat { return r.Add(q.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat { return Rat{Num: r.Num.Scale(-1), Den: r.Den} }

// Mul returns r · q.
func (r Rat) Mul(q Rat) Rat {
	return Rat{Num: r.Num.Mul(q.Num), Den: r.Den.Mul(q.Den)}.reduceOrigin().normalize()
}

// Div returns r / q; it panics if q is identically zero, mirroring the
// arithmetic error it would be in a hand-derived transfer function.
func (r Rat) Div(q Rat) Rat {
	if q.Num.IsZero() {
		panic("poly: division by zero rational function")
	}
	return Rat{Num: r.Num.Mul(q.Den), Den: r.Den.Mul(q.Num)}.reduceOrigin().normalize()
}

// Scale returns k·r.
func (r Rat) Scale(k float64) Rat { return Rat{Num: r.Num.Scale(k), Den: r.Den} }

// reduceOrigin cancels common factors of s (roots at the origin), the only
// exact cancellation that shows up systematically in circuit algebra.
func (r Rat) reduceOrigin() Rat {
	n, d := r.Num, r.Den
	for len(n) > 1 && len(d) > 1 && n[0] == 0 && d[0] == 0 {
		n, d = n[1:], d[1:]
	}
	if len(n) == 0 {
		// Zero numerator: fix denominator to 1 for canonical form.
		return Rat{Num: nil, Den: New(1)}
	}
	return Rat{Num: n, Den: d}
}

// Eval evaluates r at the complex frequency s.
func (r Rat) Eval(s complex128) complex128 {
	d := r.Den.Eval(s)
	if d == 0 {
		return cmplx.Inf()
	}
	return r.Num.Eval(s) / d
}

// EvalJW evaluates r at s = jω.
func (r Rat) EvalJW(omega float64) complex128 { return r.Eval(complex(0, omega)) }

// DCGain returns r(0); infinite if the denominator has a root at 0.
func (r Rat) DCGain() float64 {
	if len(r.Den) == 0 || r.Den[0] == 0 {
		return math.Inf(1)
	}
	if len(r.Num) == 0 {
		return 0
	}
	return r.Num[0] / r.Den[0]
}

// Poles returns the denominator roots sorted by ascending magnitude.
func (r Rat) Poles() []complex128 { return sortedRoots(r.Den) }

// Zeros returns the numerator roots sorted by ascending magnitude.
func (r Rat) Zeros() []complex128 { return sortedRoots(r.Num) }

func sortedRoots(p Poly) []complex128 {
	roots := p.Roots()
	sort.Slice(roots, func(i, j int) bool {
		return cmplx.Abs(roots[i]) < cmplx.Abs(roots[j])
	})
	return roots
}

// String renders the rational function as "(num)/(den)".
func (r Rat) String() string {
	return fmt.Sprintf("(%s)/(%s)", r.Num.String(), r.Den.String())
}

// Bode characterization extracted from a rational transfer function.
type Bode struct {
	DCGainDB    float64 // 20·log10 |H(0)|
	UnityGainHz float64 // frequency where |H| crosses 1 (0 if never)
	PhaseMargin float64 // degrees, 180 + phase at unity-gain crossing
	Pole3DBHz   float64 // -3 dB bandwidth relative to DC gain (0 if none found)
}

// Characterize sweeps the transfer function logarithmically between fLo and
// fHi (Hz) and extracts classical stability/bandwidth metrics. It is the
// "equation side" analogue of an AC simulation: evaluating a Rat at a few
// hundred points costs microseconds.
func (r Rat) Characterize(fLo, fHi float64, pointsPerDecade int) Bode {
	if pointsPerDecade <= 0 {
		pointsPerDecade = 50
	}
	var b Bode
	dc := math.Abs(r.DCGain())
	if math.IsInf(dc, 0) {
		// Integrator-like: sample near fLo for a reference gain.
		dc = cmplx.Abs(r.EvalJW(2 * math.Pi * fLo))
	}
	if dc > 0 {
		b.DCGainDB = 20 * math.Log10(dc)
	} else {
		b.DCGainDB = math.Inf(-1)
	}
	decades := math.Log10(fHi / fLo)
	n := int(decades*float64(pointsPerDecade)) + 1
	if n < 2 {
		n = 2
	}
	prevMag, prevPhase, prevF := math.NaN(), 0.0, 0.0
	target3db := dc / math.Sqrt2
	for i := 0; i < n; i++ {
		f := fLo * math.Pow(10, decades*float64(i)/float64(n-1))
		h := r.EvalJW(2 * math.Pi * f)
		mag := cmplx.Abs(h)
		phase := cmplx.Phase(h) * 180 / math.Pi
		if !math.IsNaN(prevMag) {
			if b.Pole3DBHz == 0 && prevMag >= target3db && mag < target3db {
				b.Pole3DBHz = interpCross(prevF, f, prevMag, mag, target3db)
			}
			if b.UnityGainHz == 0 && prevMag >= 1 && mag < 1 {
				b.UnityGainHz = interpCross(prevF, f, prevMag, mag, 1)
				// Unwrap phase continuation from the previous point for PM.
				ph := phase
				for ph-prevPhase > 180 {
					ph -= 360
				}
				for ph-prevPhase < -180 {
					ph += 360
				}
				frac := (b.UnityGainHz - prevF) / (f - prevF)
				phAt := prevPhase + frac*(ph-prevPhase)
				pm := 180 + phAt
				for pm > 360 {
					pm -= 360
				}
				for pm < -360 {
					pm += 360
				}
				b.PhaseMargin = pm
			}
			// Track unwrapped phase.
			for phase-prevPhase > 180 {
				phase -= 360
			}
			for phase-prevPhase < -180 {
				phase += 360
			}
		}
		prevMag, prevPhase, prevF = mag, phase, f
	}
	return b
}

// interpCross linearly interpolates (in log-f) the frequency where the
// magnitude crosses the target between two samples.
func interpCross(f0, f1, m0, m1, target float64) float64 {
	if m0 == m1 {
		return f0
	}
	frac := (m0 - target) / (m0 - m1)
	lf := math.Log10(f0) + frac*(math.Log10(f1)-math.Log10(f0))
	return math.Pow(10, lf)
}
