// Package report renders study results as aligned text tables, ASCII bar
// charts and CSV — the forms in which the reproduction regenerates the
// paper's figures (per-stage power bars for Fig. 1, per-candidate totals
// for Fig. 2, the decision-rule table for Fig. 3).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pipesyn/internal/core"
	"pipesyn/internal/units"
)

// Table is a simple aligned-column text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, w2 := range widths {
		total += w2 + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated values (naive quoting: cells
// containing commas are double-quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// BarChart renders labeled horizontal bars scaled to maxWidth characters.
func BarChart(w io.Writer, title string, labels []string, values []float64, unit string, maxWidth int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels vs %d values", len(labels), len(values))
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		if _, err := fmt.Fprintf(w, "  %-*s %s %s\n",
			maxL, labels[i], strings.Repeat("█", n)+strings.Repeat(" ", maxWidth-n),
			units.Format(v, unit)); err != nil {
			return err
		}
	}
	return nil
}

// Fig1 renders the per-stage power chart of a study (paper Fig. 1): one
// row per candidate, stage powers in milliwatts.
func Fig1(w io.Writer, st *core.Study) error {
	fmt.Fprintf(w, "Fig. 1 — stage power for the %d-bit ADC configurations (%s)\n",
		st.Bits, units.Format(st.SampleRate, "SPS"))
	t := &Table{Header: []string{"config", "stage", "bits", "MDAC", "sub-ADC", "total", "feasible"}}
	for _, c := range st.Candidates {
		for _, s := range c.Stages {
			t.Add(c.Config.String(),
				fmt.Sprintf("%d", s.Stage),
				fmt.Sprintf("%d", s.Bits),
				units.Format(s.MDACPower, "W"),
				units.Format(s.SubADCPower, "W"),
				units.Format(s.Total, "W"),
				fmt.Sprintf("%v", s.Feasible))
		}
	}
	return t.Write(w)
}

// Fig2 renders total leading-stage power per candidate across studies
// (paper Fig. 2).
func Fig2(w io.Writer, studies []*core.Study) error {
	fmt.Fprintln(w, "Fig. 2 — total leading-stage power per candidate")
	for _, st := range studies {
		labels := make([]string, 0, len(st.Candidates))
		values := make([]float64, 0, len(st.Candidates))
		ordered := append([]core.CandidateResult(nil), st.Candidates...)
		sort.Slice(ordered, func(i, j int) bool {
			return ordered[i].Config.String() < ordered[j].Config.String()
		})
		for _, c := range ordered {
			label := c.Config.String()
			if !c.AllFeasible {
				label += " (infeasible)"
			}
			labels = append(labels, label)
			values = append(values, c.TotalPower)
		}
		title := fmt.Sprintf("%d-bit (best: %s)", st.Bits, st.Best.Config)
		if err := BarChart(w, title, labels, values, "W", 40); err != nil {
			return err
		}
	}
	return nil
}

// Fig3 renders the decision-rule table derived from a sweep (paper Fig. 3).
func Fig3(w io.Writer, rules []core.Rule) error {
	fmt.Fprintln(w, "Fig. 3 — optimum candidate enumeration rules")
	t := &Table{Header: []string{"resolution", "optimum", "first stage", "last stage"}}
	for _, r := range rules {
		t.Add(fmt.Sprintf("%d bits", r.Bits), r.Best.String(),
			fmt.Sprintf("%d bits", r.FirstBits), fmt.Sprintf("%d bits", r.LastBits))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	// The paper's boxed observations, checked against the data.
	first4 := true
	last2 := true
	for _, r := range rules {
		if r.Bits >= 11 && r.FirstBits != 4 {
			first4 = false
		}
		if r.LastBits != 2 {
			last2 = false
		}
	}
	fmt.Fprintf(w, "rule: MSB stage is 4-bit for ≥11-bit targets: %v\n", first4)
	fmt.Fprintf(w, "rule: 2-bit last optimized stage is common:   %v\n", last2)
	return nil
}

// MDACTable lists every synthesized design point of a study.
func MDACTable(w io.Writer, st *core.Study) error {
	fmt.Fprintf(w, "Synthesized MDAC design points (%d, paper reuse classes: %d)\n",
		len(st.MDACs), st.PaperMDACClasses)
	t := &Table{Header: []string{"stage", "bits", "prior", "power", "feasible", "evals", "warm"}}
	for _, rec := range st.MDACs {
		warm := "-"
		if rec.WarmFrom != nil {
			warm = fmt.Sprintf("s%d/%db", rec.WarmFrom.Stage, rec.WarmFrom.Bits)
		}
		t.Add(
			fmt.Sprintf("%d", rec.Key.Stage),
			fmt.Sprintf("%d", rec.Key.Bits),
			fmt.Sprintf("%d", rec.Key.PriorBits),
			units.Format(rec.Result.Metrics.Power, "W"),
			fmt.Sprintf("%v", rec.Result.Feasible),
			fmt.Sprintf("%d", rec.Result.Evals),
			warm)
	}
	return t.Write(w)
}
