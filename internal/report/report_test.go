package report

import (
	"context"
	"strings"
	"testing"

	"pipesyn/internal/core"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/synth"
)

func studyFixture(t *testing.T) *core.Study {
	t.Helper()
	st, err := core.Optimize(context.Background(), core.Options{
		Bits: 10, SampleRate: 40e6, Mode: hybrid.EquationOnly,
		Synth: synth.Options{Seed: 1, MaxEvals: 40, PatternIter: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{Header: []string{"a", "long-header", "c"}}
	tab.Add("x", "y", "z")
	tab.Add("wide-cell", "1", "2")
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Column 2 starts at the same offset in header and rows.
	hIdx := strings.Index(lines[0], "long-header")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Fatalf("misaligned: header col at %d, row col at %d\n%s", hIdx, rIdx, sb.String())
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("with,comma", `with"quote`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("bad quoting: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "title", []string{"a", "bb"}, []float64{1e-3, 2e-3}, "W", 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "█") {
		t.Fatalf("chart missing pieces: %s", out)
	}
	// The larger bar is longer.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	if err := BarChart(&sb, "t", []string{"a"}, []float64{1, 2}, "", 0); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestFigureRenderers(t *testing.T) {
	st := studyFixture(t)
	var sb strings.Builder
	if err := Fig1(&sb, st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 1") || !strings.Contains(sb.String(), st.Best.Config.String()) {
		t.Fatalf("Fig1 output incomplete")
	}
	sb.Reset()
	if err := Fig2(&sb, []*core.Study{st}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10-bit") {
		t.Fatalf("Fig2 output incomplete: %s", sb.String())
	}
	sb.Reset()
	rules := core.DeriveRules([]*core.Study{st})
	if err := Fig3(&sb, rules); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "optimum") {
		t.Fatalf("Fig3 output incomplete")
	}
	sb.Reset()
	if err := MDACTable(&sb, st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "design points") {
		t.Fatalf("MDACTable output incomplete")
	}
}

func TestFig3Rules(t *testing.T) {
	rules := []core.Rule{
		{Bits: 13, Best: enum.Config{4, 3, 2}, FirstBits: 4, LastBits: 2},
		{Bits: 10, Best: enum.Config{3, 2, 2, 2, 2}, FirstBits: 3, LastBits: 2},
	}
	var sb strings.Builder
	if err := Fig3(&sb, rules); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "≥11-bit targets: true") {
		t.Fatalf("first-stage rule not derived: %s", out)
	}
	if !strings.Contains(out, "common:   true") {
		t.Fatalf("last-stage rule not derived: %s", out)
	}
}
