package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pipesyn/internal/cluster"
	"pipesyn/internal/service"
	"pipesyn/internal/synth"
)

// testNode is one in-process cluster member listening on a real
// loopback port (peers discover each other over actual HTTP).
type testNode struct {
	url   string
	man   *service.Manager
	cache *synth.Cache
	node  *cluster.Node
	srv   *httptest.Server
	evals atomic.Int64 // synthesis evaluations executed ON this node
	stall atomic.Bool  // when set, this node's evaluations block
	gate  chan struct{}
}

// kill simulates a crash: the listener drops and the cluster loops stop
// cold — no drain, no replica release — exactly what a kill -9 leaves.
func (tn *testNode) kill() {
	tn.srv.CloseClientConnections()
	tn.srv.Close()
	tn.node.Stop()
}

// newTestCluster boots n nodes that all know each other. Ports are
// bound before any node starts so the membership list exists up front.
func newTestCluster(t *testing.T, n int, lease, heartbeat time.Duration) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		tn := &testNode{url: urls[i], gate: make(chan struct{})}
		cache, err := synth.NewCache(0, "")
		if err != nil {
			t.Fatal(err)
		}
		tn.cache = cache
		tn.man = service.NewManager(service.Config{
			Workers: 2, QueueCap: 8, Cache: cache,
			NodeID: urls[i], Lease: lease,
			EvalHook: func(ctx context.Context, eval int) error {
				tn.evals.Add(1)
				if tn.stall.Load() {
					select {
					case <-tn.gate:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
				return nil
			},
		})
		tn.man.Start()
		local := service.NewServer(tn.man)
		node, err := cluster.NewNode(cluster.Config{
			Self: urls[i], Peers: urls, VirtualNodes: 16,
			LeaseDuration: lease, HeartbeatEvery: heartbeat,
			Logf: t.Logf,
		}, tn.man, cache, local)
		if err != nil {
			t.Fatal(err)
		}
		cache.SetFill(node.CacheFill)
		cache.SetPush(node.CachePush)
		tn.node = node
		tn.srv = &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: node}}
		tn.srv.Start()
		nodes[i] = tn
	}
	// Only now start the cluster loops: a bound-but-unserved listener
	// accepts connections and strands the priming heartbeat until the
	// probe times out, so every server must be live first.
	for _, tn := range nodes {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Stop()
			tn.man.Drain(time.Second)
			tn.srv.Close()
		}
	})
	return nodes
}

func tinyStudy(bits int) service.StudyRequest {
	return service.StudyRequest{Bits: bits, Mode: "equation", Evals: 8, Pattern: 6, Seed: 3}
}

// submitTo posts req to the given node, optionally with the forwarded
// hop-guard header (forcing local execution).
func submitTo(t *testing.T, url string, req service.StudyRequest, forced bool) (*http.Response, service.SubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if forced {
		hreq.Header.Set(cluster.ForwardedHeader, "test")
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub service.SubmitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sub
}

// waitDone polls url for job id until it is done (404 tolerated: during
// a takeover the job briefly exists nowhere reachable).
func waitDone(t *testing.T, url, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last service.JobStatus
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&last); err == nil {
				if last.State == service.StateDone {
					resp.Body.Close()
					return last
				}
				if last.State.Terminal() {
					resp.Body.Close()
					t.Fatalf("job %s reached %q (error %q), want done", id, last.State, last.Error)
				}
			}
		}
		if resp != nil {
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished (last state %q)", id, last.State)
	return last
}

func jobKey(t *testing.T, req service.StudyRequest) string {
	t.Helper()
	opts, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	return req.JobKey(opts)
}

// TestClusterRoutingDedup: the same study submitted to two different
// nodes lands on one ring owner and executes once — the second submit
// dedupes against the first in-flight job, cluster-wide.
func TestClusterRoutingDedup(t *testing.T) {
	nodes := newTestCluster(t, 3, 10*time.Second, 100*time.Millisecond)
	req := tinyStudy(10)
	owner := nodes[0].node.Ring().Owner(jobKey(t, req))

	// Stall the owner so the twin submission arrives while in-flight.
	for _, tn := range nodes {
		if tn.url == owner {
			tn.stall.Store(true)
		}
	}

	resp1, sub1 := submitTo(t, nodes[0].url, req, false)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", resp1.StatusCode)
	}
	resp2, sub2 := submitTo(t, nodes[1].url, req, false)
	if resp2.StatusCode != http.StatusOK || !sub2.Deduped {
		t.Fatalf("twin submit: HTTP %d deduped=%v, want 200 deduped", resp2.StatusCode, sub2.Deduped)
	}
	if sub1.ID != sub2.ID {
		t.Fatalf("twin submits got different jobs: %s vs %s", sub1.ID, sub2.ID)
	}

	// Release the owner and finish via a third node's fan-out lookup.
	for _, tn := range nodes {
		if tn.url == owner {
			tn.stall.Store(false)
			close(tn.gate)
		}
	}
	st := waitDone(t, nodes[2].url, sub1.ID, 30*time.Second)
	if st.Owner != owner {
		t.Fatalf("job owner %q, want ring owner %q", st.Owner, owner)
	}

	// Exactly one node did the work.
	executed := 0
	for _, tn := range nodes {
		if tn.evals.Load() > 0 {
			if tn.url != owner {
				t.Fatalf("node %s executed evaluations but %s owns the key", tn.url, owner)
			}
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("%d nodes executed the study, want exactly 1", executed)
	}

	// The cluster status surface sees all three peers alive.
	resp, err := http.Get(nodes[2].url + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var status cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Peers) != 3 {
		t.Fatalf("status reports %d peers, want 3", len(status.Peers))
	}
	for _, p := range status.Peers {
		if !p.Alive {
			t.Fatalf("peer %s reported dead in a healthy cluster", p.URL)
		}
	}
}

// TestClusterPeerCacheFill: after one node computes a study, a forced-
// local re-run on a cold node is served entirely by the peer cache tier
// — zero evaluations — and returns a bit-identical result.
func TestClusterPeerCacheFill(t *testing.T) {
	nodes := newTestCluster(t, 3, 10*time.Second, 100*time.Millisecond)
	req := tinyStudy(10)

	_, sub := submitTo(t, nodes[0].url, req, false)
	first := waitDone(t, nodes[0].url, sub.ID, 60*time.Second)

	// Let the async push replication quiesce: every fresh entry reaches
	// its cache-key ring owner before the cold node asks.
	waitPushes := func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			pending := int64(0)
			for _, tn := range nodes {
				pending += tn.node.PendingPushes()
			}
			if pending == 0 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("cache pushes never drained")
	}
	waitPushes()

	// Pick a node that did no work: its only copies are peer copies.
	var cold *testNode
	for _, tn := range nodes {
		if tn.evals.Load() == 0 {
			cold = tn
			break
		}
	}
	if cold == nil {
		t.Fatal("every node executed evaluations; dedup is broken")
	}

	// Forced local (hop guard set): the cold node must execute the study
	// itself — but every design point fills from peers.
	resp, sub2 := submitTo(t, cold.url, req, true)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forced-local submit: HTTP %d, want 202", resp.StatusCode)
	}
	// (ids are minted per node and may coincide across nodes for the
	// same key; the lookup below hits the cold node's local job first.)
	second := waitDone(t, cold.url, sub2.ID, 60*time.Second)
	if got := cold.evals.Load(); got != 0 {
		t.Fatalf("cold node executed %d evaluations, want 0 (peer cache)", got)
	}
	if cold.cache.Stats().PeerHits == 0 {
		t.Fatal("cold node reported no peer cache hits")
	}
	if second.Owner != cold.url {
		t.Fatalf("forced-local job owner %q, want %q (hop guard must pin execution)", second.Owner, cold.url)
	}

	// Determinism across nodes: byte-identical design content. (The
	// execution-accounting fields — totalEvals, cacheHits, elapsed —
	// legitimately differ: the cold run IS the all-cache-hit run.)
	type designOnly struct {
		Best       any `json:"best"`
		Candidates any `json:"candidates"`
	}
	canon := func(st service.JobStatus) []byte {
		blob, _ := json.Marshal(st.Result)
		var d designOnly
		if err := json.Unmarshal(blob, &d); err != nil {
			t.Fatal(err)
		}
		out, _ := json.Marshal(d)
		return out
	}
	a, b := canon(first), canon(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("designs differ across nodes:\n%s\nvs\n%s", a, b)
	}
	if second.Result == nil || second.Result.TotalEvals != 0 {
		t.Fatalf("cold run reported %d engine evaluations, want 0", second.Result.TotalEvals)
	}
}

// TestClusterLeaseTakeover: kill the node that owns a running job; its
// lease expires, the ring successor re-enqueues the SAME job id via the
// recovery path (the stream opens with a "recovered" event), and the
// job completes on the survivor.
func TestClusterLeaseTakeover(t *testing.T) {
	lease := 400 * time.Millisecond
	nodes := newTestCluster(t, 3, lease, 50*time.Millisecond)
	req := tinyStudy(10)
	owner := nodes[0].node.Ring().Owner(jobKey(t, req))

	var ownerNode *testNode
	var survivor *testNode
	for _, tn := range nodes {
		if tn.url == owner {
			ownerNode = tn
		} else {
			survivor = tn
		}
	}
	ownerNode.stall.Store(true) // the job must still be running at kill time

	_, sub := submitTo(t, survivor.url, req, false)

	// The claim replicates on admission; give the control plane a beat,
	// then crash the owner without ceremony.
	time.Sleep(2 * lease / 3)
	ownerNode.kill()

	st := waitDone(t, survivor.url, sub.ID, 60*time.Second)
	if st.ID != sub.ID {
		t.Fatalf("takeover changed the job id: %s → %s", sub.ID, st.ID)
	}
	if st.Owner == owner {
		t.Fatalf("finished job still owned by the dead node %s", owner)
	}

	// Exactly one survivor took it over.
	takeovers := int64(0)
	for _, tn := range nodes {
		if tn != ownerNode {
			takeovers += tn.node.Takeovers()
		}
	}
	if takeovers != 1 {
		t.Fatalf("%d takeovers recorded, want 1", takeovers)
	}

	// The re-enqueued job announces itself as recovered on its stream.
	resp, err := http.Get(survivor.url + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawRecovered := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev service.Event
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Kind == "recovered" {
			sawRecovered = true
			break
		}
	}
	if !sawRecovered {
		t.Fatal("takeover job stream has no recovered event")
	}

	// Release the dead node's stalled evaluation goroutines for cleanup.
	close(ownerNode.gate)
}

// TestClusterForwardedLookupMiss: a forwarded job lookup that misses
// locally answers 404 instead of fanning back out (the hop guard, read
// side).
func TestClusterForwardedLookupMiss(t *testing.T) {
	nodes := newTestCluster(t, 3, 10*time.Second, 100*time.Millisecond)
	_, sub := submitTo(t, nodes[0].url, tinyStudy(10), false)
	waitDone(t, nodes[0].url, sub.ID, 60*time.Second)

	// Find a node that does NOT hold the job locally.
	var absent *testNode
	for _, tn := range nodes {
		if _, ok := tn.man.Get(sub.ID); !ok {
			absent = tn
			break
		}
	}
	if absent == nil {
		t.Skip("job present on every node (single-node ring?)")
	}
	hreq, _ := http.NewRequest(http.MethodGet, absent.url+"/v1/jobs/"+sub.ID, nil)
	hreq.Header.Set(cluster.ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forwarded lookup of absent job: HTTP %d, want 404", resp.StatusCode)
	}
	// Unforwarded, the same node finds it by fan-out.
	resp2, err := http.Get(absent.url + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fan-out lookup: HTTP %d, want 200", resp2.StatusCode)
	}
}
