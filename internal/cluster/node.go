package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pipesyn/internal/service"
	"pipesyn/internal/synth"
)

// ForwardedHeader is the hop guard: a proxied request carries the entry
// node's identity here, and a node that receives it executes locally no
// matter what its ring says. One hop maximum — transient membership
// disagreement can never loop a request around the cluster.
const ForwardedHeader = "X-Adcsyn-Forwarded"

// Config shapes one cluster node.
type Config struct {
	// Self is this node's advertised base URL (how peers reach it),
	// e.g. "http://10.0.0.3:8080".
	Self string
	// Peers is the full membership, Self included (it is added if
	// missing). Order is irrelevant; the ring is deterministic in the
	// set.
	Peers []string
	// VirtualNodes per peer on the ring (<=0 = DefaultVirtualNodes).
	VirtualNodes int
	// LeaseDuration is how long a job claim lives without renewal
	// (default 10s). The owner renews at a third of this; a successor
	// fires takeover only after expiry AND a failed owner heartbeat.
	LeaseDuration time.Duration
	// HeartbeatEvery is the peer probe cadence (default 1s).
	HeartbeatEvery time.Duration
	// AggregateMetrics makes /metrics scrape every peer's health at
	// exposition time, so the per-peer adcsynd_cluster_* gauges are
	// fresh rather than one heartbeat old.
	AggregateMetrics bool
	// Logf receives operational one-liners (nil = silent).
	Logf func(format string, args ...any)
}

// Health is the GET /v1/cluster/health body — the heartbeat payload and
// the per-peer numbers the status/metrics surfaces re-export.
type Health struct {
	Node          string    `json:"node"`
	Ready         bool      `json:"ready"`
	Draining      bool      `json:"draining"`
	QueueDepth    int       `json:"queueDepth"`
	QueueCapacity int       `json:"queueCapacity"`
	PoolInFlight  int64     `json:"poolInflight"`
	RunningJobs   int       `json:"runningJobs"`
	QueuedJobs    int       `json:"queuedJobs"`
	StandbyJobs   int       `json:"standbyJobs"`
	Time          time.Time `json:"time"`
}

// PeerStatus is one membership row of GET /v1/cluster/status.
type PeerStatus struct {
	URL      string    `json:"url"`
	Self     bool      `json:"self,omitempty"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"lastSeen,omitempty"`
	Error    string    `json:"error,omitempty"`
	Health   *Health   `json:"health,omitempty"`
}

// Status is the GET /v1/cluster/status body: the ring view plus every
// peer's last-known health.
type Status struct {
	Self      string       `json:"self"`
	VNodes    int          `json:"vnodes"`
	Peers     []PeerStatus `json:"peers"`
	Standby   int          `json:"standbyJobs"`
	Takeovers int64        `json:"takeovers"`
}

// replicateMsg is the POST /v1/cluster/replicate body: the owner hands
// its ring successor enough to re-run the job — the id, the request,
// and the lease deadline. A terminal State releases the replica.
type replicateMsg struct {
	ID    string                `json:"id"`
	Key   string                `json:"key"`
	Owner string                `json:"owner"`
	Lease time.Time             `json:"lease"`
	State service.State         `json:"state"`
	Req   *service.StudyRequest `json:"req,omitempty"`
}

type peerInfo struct {
	alive    bool
	lastSeen time.Time
	lastErr  string
	health   Health
}

// standbyJob is a replica held for a peer: re-enqueued locally iff the
// lease expires while the owner is unreachable.
type standbyJob struct {
	id    string
	key   string
	owner string
	lease time.Time
	req   service.StudyRequest
}

// ownedJob tracks a locally admitted cluster job for lease renewal.
type ownedJob struct {
	id  string
	key string
}

type pushItem struct {
	key string
	res *synth.Result
}

// Node is one member of a sharded adcsynd cluster: it owns the ring
// view, probes peers, replicates its jobs to ring successors, takes
// over expired leases, and (as an http.Handler, see handler.go) routes
// job traffic to ring owners.
type Node struct {
	cfg    Config
	ring   *Ring
	man    *service.Manager
	cache  *synth.Cache
	local  *service.Server
	mux    *http.ServeMux
	client *http.Client // short-deadline control traffic
	stream *http.Client // proxied job traffic; bounded by request contexts

	mu      sync.Mutex
	peers   map[string]*peerInfo
	standby map[string]*standbyJob
	owned   map[string]*ownedJob

	pushq       chan pushItem
	pushPending atomic.Int64

	proxiedSubmits    atomic.Int64
	proxiedLookups    atomic.Int64
	proxyFallbacks    atomic.Int64
	fillHits          atomic.Int64
	fillMisses        atomic.Int64
	pushSent          atomic.Int64
	pushDropped       atomic.Int64
	replicatedOut     atomic.Int64
	replicatedIn      atomic.Int64
	takeovers         atomic.Int64
	heartbeatFailures atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewNode builds a node over a started Manager, its synthesis cache,
// and the local HTTP surface. Callers wire the cache into the cluster
// tier with cache.SetFill(node.CacheFill) and
// cache.SetPush(node.CachePush), then node.Start() the loops.
func NewNode(cfg Config, man *service.Manager, cache *synth.Cache, local *service.Server) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self (advertised URL) is required")
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 10 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	peers := append([]string(nil), cfg.Peers...)
	peers = append(peers, cfg.Self)
	ring := NewRing(peers, cfg.VirtualNodes)
	if ring.Len() < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides %s", cfg.Self)
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		man:     man,
		cache:   cache,
		local:   local,
		client:  &http.Client{Timeout: 5 * time.Second},
		stream:  &http.Client{}, // no client timeout: streams end with their request context
		peers:   make(map[string]*peerInfo),
		standby: make(map[string]*standbyJob),
		owned:   make(map[string]*ownedJob),
		pushq:   make(chan pushItem, 1024),
		stop:    make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		if p != cfg.Self {
			n.peers[p] = &peerInfo{}
		}
	}
	n.mux = n.routes()
	return n, nil
}

// Ring exposes the node's ring view (read-only).
func (n *Node) Ring() *Ring { return n.ring }

// Start launches the heartbeat, lease-renewal, takeover-watch, and
// cache-push loops.
func (n *Node) Start() {
	n.heartbeatAll() // prime liveness before the first tick
	loops := []func(){n.heartbeatLoop, n.renewLoop, n.watchLoop, n.pushLoop}
	n.wg.Add(len(loops))
	for _, loop := range loops {
		go func(f func()) { defer n.wg.Done(); f() }(loop)
	}
}

// Stop halts the background loops without touching peers — the
// kill-path teardown tests use it to simulate a silent death.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.wg.Wait()
}

// Shutdown releases the node's cluster obligations after the manager
// has drained: every tracked job's replica is released with its
// terminal state so successors do not resurrect drained work, then the
// loops stop.
func (n *Node) Shutdown() {
	n.renewOwned(true)
	n.Stop()
}

func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.heartbeatAll()
		}
	}
}

func (n *Node) heartbeatAll() {
	for _, peer := range n.ring.Peers() {
		if peer == n.cfg.Self {
			continue
		}
		h, err := n.fetchHealth(peer)
		n.mu.Lock()
		pi := n.peers[peer]
		wasAlive := pi.alive
		if err != nil {
			pi.alive = false
			pi.lastErr = err.Error()
		} else {
			pi.alive = true
			pi.lastSeen = time.Now()
			pi.lastErr = ""
			pi.health = *h
		}
		n.mu.Unlock()
		if err != nil {
			n.heartbeatFailures.Add(1)
			if wasAlive {
				n.cfg.Logf("cluster: peer %s unreachable: %v", peer, err)
			}
		} else if !wasAlive {
			n.cfg.Logf("cluster: peer %s reachable", peer)
		}
	}
}

func (n *Node) fetchHealth(peer string) (*Health, error) {
	resp, err := n.client.Get(peer + "/v1/cluster/health")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("health: HTTP %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("health decode: %w", err)
	}
	return &h, nil
}

// localHealth assembles this node's heartbeat payload.
func (n *Node) localHealth() Health {
	snap := n.man.Snapshot()
	n.mu.Lock()
	standby := len(n.standby)
	n.mu.Unlock()
	return Health{
		Node:          n.cfg.Self,
		Ready:         n.man.Ready(),
		Draining:      snap.Draining,
		QueueDepth:    snap.QueueDepth,
		QueueCapacity: snap.QueueCapacity,
		PoolInFlight:  snap.PoolInFlight,
		RunningJobs:   snap.JobsByState[service.StateRunning],
		QueuedJobs:    snap.JobsByState[service.StateQueued],
		StandbyJobs:   standby,
		Time:          time.Now(),
	}
}

// peerAlive reports the last heartbeat verdict for peer (self is always
// alive).
func (n *Node) peerAlive(peer string) bool {
	if peer == n.cfg.Self {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	pi, ok := n.peers[peer]
	return ok && pi.alive
}

// alivePeers returns the peers (never self) currently passing
// heartbeats, in ring-sorted order.
func (n *Node) alivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for _, p := range n.ring.Peers() {
		if p == n.cfg.Self {
			continue
		}
		if pi, ok := n.peers[p]; ok && pi.alive {
			out = append(out, p)
		}
	}
	return out
}

// replicaTarget picks where a job replica for key lives: the first
// alive peer (never self) walking the ring from the key's owner. With
// everyone up and self the owner, that is the ring successor.
func (n *Node) replicaTarget(key string) string {
	for _, p := range n.ring.Successors(key, n.ring.Len()) {
		if p == n.cfg.Self {
			continue
		}
		if n.peerAlive(p) {
			return p
		}
	}
	return ""
}

// trackOwned registers a locally admitted job for lease replication and
// immediately replicates its claim.
func (n *Node) trackOwned(job *service.Job) {
	if job == nil {
		return
	}
	n.mu.Lock()
	n.owned[job.ID] = &ownedJob{id: job.ID, key: job.Key}
	n.mu.Unlock()
	n.replicateJob(job.ID, job.Key, job.Req, job.State())
}

// replicateJob sends one claim (or release, when state is terminal) for
// a job to its replica target. Best-effort: an unreachable target is
// retried on the next renewal tick.
func (n *Node) replicateJob(id, key string, req service.StudyRequest, state service.State) {
	target := n.replicaTarget(key)
	if target == "" {
		return
	}
	msg := replicateMsg{
		ID: id, Key: key, Owner: n.cfg.Self,
		Lease: time.Now().Add(n.cfg.LeaseDuration),
		State: state,
	}
	if !state.Terminal() {
		r := req
		msg.Req = &r
	}
	blob, err := json.Marshal(msg)
	if err != nil {
		return
	}
	resp, err := n.client.Post(target+"/v1/cluster/replicate", "application/json", bytes.NewReader(blob))
	if err != nil {
		n.cfg.Logf("cluster: replicate %s to %s: %v", id, target, err)
		return
	}
	resp.Body.Close()
	n.replicatedOut.Add(1)
}

func (n *Node) renewLoop() {
	every := n.cfg.LeaseDuration / 3
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.renewOwned(false)
		}
	}
}

// renewOwned re-replicates every tracked job's claim; terminal jobs are
// released and untracked. With final=true (shutdown) still-live jobs
// are released too — the daemon is leaving the cluster and its drained
// work must not be resurrected.
func (n *Node) renewOwned(final bool) {
	n.mu.Lock()
	owned := make([]*ownedJob, 0, len(n.owned))
	for _, o := range n.owned {
		owned = append(owned, o)
	}
	n.mu.Unlock()
	for _, o := range owned {
		job, ok := n.man.Get(o.id)
		if !ok {
			// Evicted from the retention ring: long terminal. Release.
			n.replicateJob(o.id, o.key, service.StudyRequest{}, service.StateDone)
			n.untrack(o.id)
			continue
		}
		state := job.State()
		if state.Terminal() || final {
			if !state.Terminal() {
				state = service.StateCancelled // draining release
			}
			n.replicateJob(o.id, o.key, job.Req, state)
			n.untrack(o.id)
			continue
		}
		n.replicateJob(o.id, o.key, job.Req, state)
	}
}

func (n *Node) untrack(id string) {
	n.mu.Lock()
	delete(n.owned, id)
	n.mu.Unlock()
}

// handleReplicate ingests a peer's claim: terminal states release the
// replica, live ones upsert it with the fresh lease.
func (n *Node) handleReplicate(msg replicateMsg) {
	n.replicatedIn.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.State.Terminal() {
		delete(n.standby, msg.ID)
		return
	}
	if msg.Req == nil {
		return
	}
	n.standby[msg.ID] = &standbyJob{
		id: msg.ID, key: msg.Key, owner: msg.Owner,
		lease: msg.Lease, req: *msg.Req,
	}
}

func (n *Node) watchLoop() {
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.checkLeases()
		}
	}
}

// checkLeases fires takeover for every standby job whose lease expired
// while its owner fails heartbeats: the job is re-enqueued here under
// the same id via the recovery path (it opens with a "recovered"
// event), then tracked and re-replicated onward so the work stays
// protected. An expired lease with a LIVE owner is left alone — slow
// renewal is not death — but dropped once it is stale beyond doubt
// (10 lease periods), so a restarted owner's forgotten claims do not
// pin memory forever.
func (n *Node) checkLeases() {
	now := time.Now()
	n.mu.Lock()
	var expired []*standbyJob
	for _, sb := range n.standby {
		if now.After(sb.lease) {
			expired = append(expired, sb)
		}
	}
	n.mu.Unlock()
	for _, sb := range expired {
		if n.peerAlive(sb.owner) {
			if now.Sub(sb.lease) > 10*n.cfg.LeaseDuration {
				n.mu.Lock()
				delete(n.standby, sb.id)
				n.mu.Unlock()
			}
			continue
		}
		job, accepted, err := n.man.Resubmit(sb.id, sb.req)
		if err == service.ErrQueueFull {
			continue // retry next tick
		}
		n.mu.Lock()
		delete(n.standby, sb.id)
		n.mu.Unlock()
		if err != nil {
			n.cfg.Logf("cluster: takeover of %s from %s failed: %v", sb.id, sb.owner, err)
			continue
		}
		if accepted {
			n.takeovers.Add(1)
			n.cfg.Logf("cluster: lease on %s expired (owner %s down): job re-enqueued here", sb.id, sb.owner)
			n.trackOwned(job)
		}
	}
}

// CacheFill is the synthesis cache's peer tier: on a local miss, ask
// the key's ring owner for its copy (GET /v1/cache/{key}, gob — the
// disk-store format). Wire it with cache.SetFill(node.CacheFill).
func (n *Node) CacheFill(key string) (*synth.Result, bool) {
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self || !n.peerAlive(owner) {
		return nil, false
	}
	resp, err := n.client.Get(owner + "/v1/cache/" + key)
	if err != nil {
		n.fillMisses.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.fillMisses.Add(1)
		return nil, false
	}
	res, err := synth.DecodeResult(resp.Body)
	if err != nil {
		n.fillMisses.Add(1)
		return nil, false
	}
	n.fillHits.Add(1)
	return res, true
}

// CachePush replicates a fresh cache entry to the key's ring owner so
// any peer's later CacheFill finds it there. Asynchronous and bounded:
// the synthesis hot path only enqueues; a full queue drops the push
// (the entry still lives locally — worst case a peer recomputes). Wire
// it with cache.SetPush(node.CachePush).
func (n *Node) CachePush(key string, res *synth.Result) {
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self {
		return // already at the authority
	}
	select {
	case n.pushq <- pushItem{key, res}:
		n.pushPending.Add(1)
	default:
		n.pushDropped.Add(1)
	}
}

// PendingPushes reports queued-plus-inflight cache pushes (tests drain
// on it).
func (n *Node) PendingPushes() int64 { return n.pushPending.Load() }

// Takeovers reports how many expired peer leases this node has claimed.
func (n *Node) Takeovers() int64 { return n.takeovers.Load() }

func (n *Node) pushLoop() {
	for {
		select {
		case <-n.stop:
			return
		case it := <-n.pushq:
			n.sendPush(it)
			n.pushPending.Add(-1)
		}
	}
}

func (n *Node) sendPush(it pushItem) {
	owner := n.ring.Owner(it.key)
	if owner == n.cfg.Self || !n.peerAlive(owner) {
		n.pushDropped.Add(1)
		return
	}
	var buf bytes.Buffer
	if err := synth.EncodeResult(&buf, it.res); err != nil {
		n.pushDropped.Add(1)
		return
	}
	req, err := http.NewRequest(http.MethodPut, owner+"/v1/cache/"+it.key, &buf)
	if err != nil {
		n.pushDropped.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.client.Do(req)
	if err != nil {
		n.pushDropped.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		n.pushDropped.Add(1)
		return
	}
	n.pushSent.Add(1)
}

// status assembles the /v1/cluster/status body.
func (n *Node) status() Status {
	st := Status{
		Self:      n.cfg.Self,
		VNodes:    n.ring.VNodes(),
		Takeovers: n.takeovers.Load(),
	}
	self := n.localHealth()
	n.mu.Lock()
	st.Standby = len(n.standby)
	for _, p := range n.ring.Peers() {
		if p == n.cfg.Self {
			h := self
			st.Peers = append(st.Peers, PeerStatus{URL: p, Self: true, Alive: true, LastSeen: h.Time, Health: &h})
			continue
		}
		pi := n.peers[p]
		ps := PeerStatus{URL: p, Alive: pi.alive, LastSeen: pi.lastSeen, Error: pi.lastErr}
		if pi.alive {
			h := pi.health
			ps.Health = &h
		}
		st.Peers = append(st.Peers, ps)
	}
	n.mu.Unlock()
	return st
}
