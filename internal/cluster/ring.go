// Package cluster turns N independent adcsynd daemons into one sharded
// service. The pieces build on invariants the single-node engine already
// guarantees: a study is a deterministic function of its content address
// (core.StudyKey / yield.Key), so *where* it runs never changes the
// answer, and identical studies can be routed to one owner and
// single-flighted cluster-wide.
//
//   - ring.go    consistent-hash ring: virtual nodes, SHA-256 placement,
//     deterministic owner + successor order for any key
//   - node.go    peer membership (heartbeats over /v1/cluster/health),
//     lease-based job replication and takeover, and the
//     peer cache fill/push hooks for the synthesis cache
//   - handler.go the HTTP routing layer: wraps the local service.Server,
//     proxies job traffic to ring owners with a hop guard,
//     and serves the cluster endpoints
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-peer virtual-node count. 64 points per
// peer keeps the max/mean load skew under ~20% for small clusters while
// the ring stays a few KiB.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring: each peer contributes
// vnodes points placed by SHA-256, and a key is owned by the first point
// clockwise from the key's own hash. Construction is deterministic in
// the peer *set* (input order is irrelevant), so every node that knows
// the same membership computes the same owner for every key — the
// property routing, cache fill, and lease handoff all lean on.
type Ring struct {
	vnodes int
	peers  []string
	points []ringPoint // sorted by hash, ties by peer
}

type ringPoint struct {
	hash uint64
	peer string
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256.
// Study keys are themselves SHA-256 hex strings, but hashing again costs
// nothing and lets arbitrary keys (peer names, cache keys) share the
// same ring.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given peers (deduplicated; order does
// not matter) with vnodes virtual nodes each (<=0 takes the default).
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, peers: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash64(p + "#" + strconv.Itoa(i)), p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the member set, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Len reports the number of distinct peers.
func (r *Ring) Len() int { return len(r.peers) }

// VNodes reports the per-peer virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// ownerIndex locates the first ring point clockwise from key's hash.
func (r *Ring) ownerIndex(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}

// Owner returns the peer that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.ownerIndex(key)].peer
}

// Successors returns up to n distinct peers in ring order starting at
// the key's owner. Successors(key, 1)[0] == Owner(key); the second entry
// is the natural standby for lease-based handoff.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.ownerIndex(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
