package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("study-key-%04d", i)
	}
	return keys
}

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

// TestRingDistribution: key load per peer stays near uniform, and skew
// shrinks as the virtual-node count grows. Checked across the full
// vnode ladder so a placement regression at any config is caught.
func TestRingDistribution(t *testing.T) {
	keys := testKeys(4096)
	peers := testPeers(5)
	want := float64(len(keys)) / float64(len(peers))
	for _, vnodes := range []int{1, 2, 4, 8, 16, 32, 64} {
		ring := NewRing(peers, vnodes)
		counts := make(map[string]int, len(peers))
		for _, k := range keys {
			owner := ring.Owner(k)
			if owner == "" {
				t.Fatalf("vnodes=%d: no owner for %q", vnodes, k)
			}
			counts[owner]++
		}
		// Every peer must own SOMETHING at every config...
		for _, p := range peers {
			if counts[p] == 0 && vnodes >= 4 {
				t.Errorf("vnodes=%d: peer %s owns no keys", vnodes, p)
			}
		}
		// ...and at the default config the skew must be modest.
		if vnodes == DefaultVirtualNodes {
			for p, c := range counts {
				if ratio := float64(c) / want; ratio < 0.5 || ratio > 1.6 {
					t.Errorf("vnodes=%d: peer %s owns %d keys (%.2fx the fair share)", vnodes, p, c, ratio)
				}
			}
		}
	}
}

// TestRingDeterministicOwner: the ring is a function of the peer SET —
// shuffled membership lists, duplicate entries, and repeated
// construction all place every key identically.
func TestRingDeterministicOwner(t *testing.T) {
	keys := testKeys(512)
	peers := testPeers(7)
	ref := NewRing(peers, 16)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shuffled = append(shuffled, peers[trial%len(peers)]) // duplicate entry
		ring := NewRing(shuffled, 16)
		for _, k := range keys {
			if got, want := ring.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: owner of %q = %s, want %s", trial, k, got, want)
			}
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a peer moves only the keys it
// takes over — every moved key moves TO the joiner, none between
// incumbents — and the moved share is near 1/(n+1).
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := testKeys(4096)
	peers := testPeers(5)
	joiner := "http://10.0.0.99:8080"
	before := NewRing(peers, DefaultVirtualNodes)
	after := NewRing(append(append([]string(nil), peers...), joiner), DefaultVirtualNodes)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != joiner {
			t.Fatalf("key %q moved %s → %s, not to the joiner", k, was, is)
		}
	}
	share := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(len(peers)+1)
	if share < ideal/2 || share > ideal*2 {
		t.Errorf("join moved %.1f%% of keys, want near %.1f%%", share*100, ideal*100)
	}
}

// TestRingMinimalMovementOnLeave: removing a peer moves only ITS keys —
// keys owned by survivors stay exactly where they were.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := testKeys(4096)
	peers := testPeers(5)
	leaver := peers[2]
	before := NewRing(peers, DefaultVirtualNodes)
	var rest []string
	for _, p := range peers {
		if p != leaver {
			rest = append(rest, p)
		}
	}
	after := NewRing(rest, DefaultVirtualNodes)
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == leaver {
			if is == leaver {
				t.Fatalf("key %q still owned by departed %s", k, leaver)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %s → %s though its owner never left", k, was, is)
		}
	}
}

// TestRingSuccessors: the successor walk starts at the owner, yields
// distinct peers, and covers the whole membership when asked for it.
func TestRingSuccessors(t *testing.T) {
	peers := testPeers(5)
	ring := NewRing(peers, 8)
	for _, k := range testKeys(64) {
		succ := ring.Successors(k, len(peers)+3) // over-ask: clamps to membership
		if len(succ) != len(peers) {
			t.Fatalf("key %q: %d successors, want %d", k, len(succ), len(peers))
		}
		if succ[0] != ring.Owner(k) {
			t.Fatalf("key %q: successors start at %s, owner is %s", k, succ[0], ring.Owner(k))
		}
		seen := make(map[string]bool)
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("key %q: duplicate successor %s", k, p)
			}
			seen[p] = true
		}
	}
	if got := ring.Successors("k", 1); len(got) != 1 || got[0] != ring.Owner("k") {
		t.Fatalf("Successors(k,1) = %v, want [%s]", got, ring.Owner("k"))
	}
	if NewRing(nil, 4).Owner("k") != "" {
		t.Fatal("empty ring must own nothing")
	}
}
