// HTTP face of a cluster node: the same public API the single-node
// daemon serves, plus the peer protocol. Job traffic is routed by the
// consistent-hash ring — a submit whose key hashes to a peer is proxied
// there (one hop, guarded by ForwardedHeader), a status/cancel/events
// request for a job this node does not hold fans out to alive peers —
// while /v1/cluster/* and /v1/cache/* carry membership, replication,
// and the shared cache tier between nodes.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"pipesyn/internal/service"
	"pipesyn/internal/synth"
)

func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

func (n *Node) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/health", n.handleHealth)
	mux.HandleFunc("GET /v1/cluster/status", n.handleStatus)
	mux.HandleFunc("POST /v1/cluster/replicate", n.handleReplicateHTTP)
	mux.HandleFunc("GET /v1/cache/{key}", n.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", n.handleCachePut)
	mux.HandleFunc("POST /v1/cache/{key}", n.handleCachePut)
	mux.HandleFunc("POST /v1/studies", n.handleSubmit)
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	for _, base := range []string{"/v1/studies", "/v1/jobs"} {
		mux.HandleFunc("GET "+base+"/{id}", n.handleJobRoute)
		mux.HandleFunc("GET "+base+"/{id}/events", n.handleJobRoute)
		mux.HandleFunc("DELETE "+base+"/{id}", n.handleJobRoute)
	}
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("/", n.local.ServeHTTP)
	return mux
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.localHealth())
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.status())
}

func (n *Node) handleReplicateHTTP(w http.ResponseWriter, r *http.Request) {
	var msg replicateMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxStudyBodyBytes)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode replicate: %w", err))
		return
	}
	if msg.ID == "" || msg.Owner == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("replicate: id and owner are required"))
		return
	}
	n.handleReplicate(msg)
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheGet serves this node's synthesis cache to peers in the
// disk-store gob format. Strictly local tiers — a miss is a 404, never
// a recursive fill.
func (n *Node) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	res, ok := n.cache.GetLocal(r.PathValue("key"))
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = synth.EncodeResult(w, res)
}

// handleCachePut ingests a peer's pushed entry. PutLocal, not Put: the
// entry lands here and stops — no onward push under a disagreeing ring.
func (n *Node) handleCachePut(w http.ResponseWriter, r *http.Request) {
	res, err := synth.DecodeResult(http.MaxBytesReader(w, r.Body, maxCacheEntryBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode cache entry: %w", err))
		return
	}
	n.cache.PutLocal(r.PathValue("key"), res)
	w.WriteHeader(http.StatusNoContent)
}

// maxCacheEntryBytes bounds a pushed cache entry: a sized design point
// is a few kilobytes of gob; a megabyte is ample.
const maxCacheEntryBytes = 1 << 20

// handleSubmit routes a study to the ring owner of its job key. Local
// execution when: this node owns the key, the owner fails heartbeats
// (degraded mode — wrong shard beats no service), or the request is
// already forwarded (hop guard). Otherwise the decoded request is
// re-posted to the owner and the reply relayed verbatim, falling back
// to local execution only when the proxy transport itself fails (no
// response bytes written yet, so the retry is invisible to the client).
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := service.DecodeStudyRequest(w, r)
	if !ok {
		return
	}
	opts, err := req.Options()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := req.JobKey(opts)
	owner := n.ring.Owner(key)
	forwarded := r.Header.Get(ForwardedHeader) != ""
	if forwarded || owner == n.cfg.Self || !n.peerAlive(owner) {
		n.submitLocal(w, req)
		return
	}
	n.proxiedSubmits.Add(1)
	blob, merr := json.Marshal(req)
	if merr != nil {
		httpError(w, http.StatusBadRequest, merr)
		return
	}
	preq, perr := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+r.URL.Path, bytes.NewReader(blob))
	if perr != nil {
		httpError(w, http.StatusInternalServerError, perr)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, derr := n.client.Do(preq)
	if derr != nil {
		// Transport failure before any response byte: degrade to local.
		n.proxyFallbacks.Add(1)
		n.cfg.Logf("cluster: submit proxy to %s failed (%v): executing locally", owner, derr)
		n.submitLocal(w, req)
		return
	}
	defer resp.Body.Close()
	relayResponse(w, resp, nil)
}

func (n *Node) submitLocal(w http.ResponseWriter, req service.StudyRequest) {
	job, fresh := n.local.WriteSubmit(w, req)
	if fresh {
		n.trackOwned(job)
	}
}

// handleJobRoute serves status/events/cancel. The job lives wherever it
// was admitted (ids are minted per node), so: local hit → local server;
// local miss on a forwarded request → honest 404; local miss otherwise
// → fan out to alive peers with the hop guard set and relay the first
// non-404 answer, streaming (flush per chunk) so proxied event feeds
// stay live.
func (n *Node) handleJobRoute(w http.ResponseWriter, r *http.Request) {
	if _, ok := n.man.Get(r.PathValue("id")); ok {
		n.local.ServeHTTP(w, r)
		return
	}
	if r.Header.Get(ForwardedHeader) != "" {
		n.local.ServeHTTP(w, r) // its 404
		return
	}
	n.proxiedLookups.Add(1)
	for _, peer := range n.alivePeers() {
		url := peer + r.URL.Path
		if q := r.URL.RawQuery; q != "" {
			url += "?" + q
		}
		preq, err := http.NewRequestWithContext(r.Context(), r.Method, url, nil)
		if err != nil {
			continue
		}
		preq.Header.Set(ForwardedHeader, n.cfg.Self)
		resp, err := n.stream.Do(preq)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		flusher, _ := w.(http.Flusher)
		relayResponse(w, resp, flusher)
		resp.Body.Close()
		return
	}
	n.local.ServeHTTP(w, r) // nobody has it: the local 404
}

// relayResponse copies status, headers, and body. With a non-nil
// flusher every read is flushed through, which keeps proxied NDJSON
// event streams delivering lines as they happen instead of on buffer
// boundaries.
func relayResponse(w http.ResponseWriter, resp *http.Response, flusher http.Flusher) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if flusher == nil {
		_, _ = io.Copy(w, resp.Body)
		return
	}
	buf := make([]byte, 32*1024)
	for {
		m, err := resp.Body.Read(buf)
		if m > 0 {
			if _, werr := w.Write(buf[:m]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleMetrics renders the local exposition, then appends the
// adcsynd_cluster_* series. In aggregation mode every peer is probed
// synchronously first so the per-peer gauges are scrape-fresh rather
// than one heartbeat old.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if n.cfg.AggregateMetrics {
		n.heartbeatAll()
	}
	n.local.ServeHTTP(w, r)
	n.writeClusterMetrics(w)
}

func (n *Node) writeClusterMetrics(w io.Writer) {
	st := n.status()
	fmt.Fprintf(w, "# HELP adcsynd_cluster_peers Cluster membership size (ring view).\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_peers gauge\n")
	fmt.Fprintf(w, "adcsynd_cluster_peers %d\n", n.ring.Len())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_ring_vnodes Virtual nodes per peer on the hash ring.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_ring_vnodes gauge\n")
	fmt.Fprintf(w, "adcsynd_cluster_ring_vnodes %d\n", n.ring.VNodes())

	fmt.Fprintf(w, "# HELP adcsynd_cluster_peer_up Peer passes heartbeats (1) or not (0); self is always 1.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_peer_up gauge\n")
	fmt.Fprintf(w, "# HELP adcsynd_cluster_peer_queue_depth Last-heartbeat queue depth per peer.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_peer_queue_depth gauge\n")
	fmt.Fprintf(w, "# HELP adcsynd_cluster_peer_inflight Last-heartbeat pool in-flight evaluations per peer.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_peer_inflight gauge\n")
	peers := append([]PeerStatus(nil), st.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].URL < peers[j].URL })
	for _, p := range peers {
		up := 0
		if p.Alive {
			up = 1
		}
		fmt.Fprintf(w, "adcsynd_cluster_peer_up{peer=%q} %d\n", p.URL, up)
		if p.Health != nil {
			fmt.Fprintf(w, "adcsynd_cluster_peer_queue_depth{peer=%q} %d\n", p.URL, p.Health.QueueDepth)
			fmt.Fprintf(w, "adcsynd_cluster_peer_inflight{peer=%q} %d\n", p.URL, p.Health.PoolInFlight)
		}
	}

	fmt.Fprintf(w, "# HELP adcsynd_cluster_proxied_total Requests routed to a peer, by kind.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_proxied_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_proxied_total{kind=\"submit\"} %d\n", n.proxiedSubmits.Load())
	fmt.Fprintf(w, "adcsynd_cluster_proxied_total{kind=\"lookup\"} %d\n", n.proxiedLookups.Load())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_proxy_fallbacks_total Submits executed locally after a failed proxy transport.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_proxy_fallbacks_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_proxy_fallbacks_total %d\n", n.proxyFallbacks.Load())

	fmt.Fprintf(w, "# HELP adcsynd_cluster_cache_fill_hits_total Synthesis cache misses answered by a peer.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_cache_fill_hits_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_cache_fill_hits_total %d\n", n.fillHits.Load())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_cache_fill_misses_total Peer cache probes that found nothing.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_cache_fill_misses_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_cache_fill_misses_total %d\n", n.fillMisses.Load())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_cache_push_total Cache entries replicated to ring owners, by result.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_cache_push_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_cache_push_total{result=\"sent\"} %d\n", n.pushSent.Load())
	fmt.Fprintf(w, "adcsynd_cluster_cache_push_total{result=\"dropped\"} %d\n", n.pushDropped.Load())

	fmt.Fprintf(w, "# HELP adcsynd_cluster_replicated_total Job claims replicated, by direction.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_replicated_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_replicated_total{dir=\"out\"} %d\n", n.replicatedOut.Load())
	fmt.Fprintf(w, "adcsynd_cluster_replicated_total{dir=\"in\"} %d\n", n.replicatedIn.Load())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_takeovers_total Jobs re-enqueued here after a peer's lease expired.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_takeovers_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_takeovers_total %d\n", n.takeovers.Load())
	fmt.Fprintf(w, "# HELP adcsynd_cluster_standby_jobs Peer job replicas held for lease watch.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_standby_jobs gauge\n")
	fmt.Fprintf(w, "adcsynd_cluster_standby_jobs %d\n", st.Standby)
	fmt.Fprintf(w, "# HELP adcsynd_cluster_heartbeat_failures_total Failed peer health probes.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_cluster_heartbeat_failures_total counter\n")
	fmt.Fprintf(w, "adcsynd_cluster_heartbeat_failures_total %d\n", n.heartbeatFailures.Load())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
