package sha

import (
	"context"
	"math"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/synth"
)

func adc(bits int) stagespec.ADCSpec {
	return stagespec.ADCSpec{Bits: bits, SampleRate: 40e6, VRef: 1}
}

func TestSpecBasics(t *testing.T) {
	sp, err := Spec(adc(13), 3e-12)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Gain != 1 || sp.Beta != 0.5 || sp.ComparatorCount != 0 {
		t.Fatalf("spec = %+v", sp)
	}
	// Full-resolution settling: ε = 2^-14.
	if math.Abs(sp.SettleTol-math.Pow(2, -14)) > 1e-15 {
		t.Fatalf("ε = %g", sp.SettleTol)
	}
	if sp.CLoad != 3e-12 {
		t.Fatalf("CLoad = %g", sp.CLoad)
	}
	// The S/H sampling cap must exceed any pipeline stage's (it carries a
	// third of the full budget with no preceding gain).
	specs, err := stagespec.Translate(adc(13), enum.Config{4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.CSample < specs[0].CSample/4 {
		t.Fatalf("S/H cap %g implausibly small vs stage-1 %g", sp.CSample, specs[0].CSample)
	}
}

func TestSpecScalesWithResolution(t *testing.T) {
	lo, err := Spec(adc(10), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Spec(adc(13), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if hi.CSample <= lo.CSample || hi.GainMin <= lo.GainMin || hi.GBWMin <= lo.GBWMin {
		t.Fatalf("13-bit S/H must be harder than 10-bit: %+v vs %+v", hi, lo)
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := Spec(adc(13), 0); err == nil {
		t.Fatal("expected load error")
	}
	if _, err := Spec(stagespec.ADCSpec{Bits: 13}, 1e-12); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSynthesizeSHA(t *testing.T) {
	// A 10-bit S/H synthesizes to a feasible amp in equation mode
	// (hybrid mode is exercised by the core integration tests).
	a := adc(10)
	res, err := Synthesize(context.Background(), a, 1e-12, pdk.TSMC025(), synth.Options{
		Seed: 5, MaxEvals: 300, PatternIter: 150, Mode: hybrid.EquationOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power <= 0 {
		t.Fatalf("power = %g", res.Metrics.Power)
	}
}

func TestSynthesizeSHAHybrid(t *testing.T) {
	a := adc(8)
	res, err := Synthesize(context.Background(), a, 0.5e-12, pdk.TSMC025(), synth.Options{
		Seed: 6, MaxEvals: 60, PatternIter: 40, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power <= 0 || res.Metrics.AmpGain < 100 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
}
