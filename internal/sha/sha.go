// Package sha models the front-end sample-and-hold amplifier of the
// paper's pipelined ADC architecture. The S/H sees the converter's full
// resolution: it must sample with the complete kT/C budget share and
// settle to K-bit accuracy, which usually makes it the single hungriest
// block. Because every enumeration candidate shares the same S/H, the
// paper's Fig. 1/2 comparisons exclude it — this package exists so the
// full-converter power can still be reported, and reuses the stage
// synthesis machinery by phrasing the S/H as a unity-gain MDAC spec.
package sha

import (
	"context"
	"fmt"
	"math"

	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/synth"
)

// NoiseShare is the fraction of the converter's thermal budget allotted
// to the front-end sampler (the pipeline stages share the rest; see
// stagespec's geometric allocation).
const NoiseShare = 1.0 / 3.0

// Spec derives the S/H block specification from the converter spec.
// firstStageCS is the sampling capacitor of the pipeline's first stage,
// which the S/H must drive during its hold phase.
func Spec(adc stagespec.ADCSpec, firstStageCS float64) (stagespec.MDACSpec, error) {
	adc.FillDefaults()
	if err := adc.Validate(); err != nil {
		return stagespec.MDACSpec{}, err
	}
	if firstStageCS <= 0 {
		return stagespec.MDACSpec{}, fmt.Errorf("sha: non-positive first-stage load")
	}
	p := adc.Process
	lsb := adc.VRef / math.Pow(2, float64(adc.Bits))
	qNoise := lsb * lsb / 12
	vnsq := NoiseShare * adc.NoiseFraction * qNoise
	cs := p.ClampC(p.NoiseCapFor(vnsq))

	tHalf := 1 / (2 * adc.SampleRate)
	tSettle := adc.SettleFraction * tHalf
	tSlew := adc.SlewFraction * tHalf
	eps := math.Pow(2, -float64(adc.Bits+1))
	ntau := math.Log(1 / eps)
	fCl := ntau / (2 * math.Pi * tSettle)
	const beta = 0.5 // flip-around unity sampler: Cs feeds back, Cs samples

	return stagespec.MDACSpec{
		Stage:     0, // in front of stage 1
		Bits:      1, // unity transfer: no sub-ADC, no residue gain
		PriorBits: 0,
		Gain:      1,
		Beta:      beta,
		CSample:   cs,
		CFeed:     cs,
		CLoad:     firstStageCS,
		SettleTol: eps,
		TSettle:   tSettle,
		TSlew:     tSlew,
		GBWMin:    fCl / beta,
		SRMin:     adc.VRef / tSlew,
		GainMin:   2 / (eps * beta),
		SwingMin:  adc.VRef / 2,
		StepMax:   adc.VRef,

		ComparatorCount: 0,
		CompOffsetTol:   0,
	}, nil
}

// Synthesize sizes the S/H amplifier and returns its power together with
// the synthesis result. It rides the same optimizer as the MDACs.
func Synthesize(ctx context.Context, adc stagespec.ADCSpec, firstStageCS float64, proc *pdk.Process, opts synth.Options) (*synth.Result, error) {
	sp, err := Spec(adc, firstStageCS)
	if err != nil {
		return nil, err
	}
	return synth.Synthesize(ctx, sp, proc, opts)
}
