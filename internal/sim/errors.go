package sim

import (
	"errors"
	"fmt"
)

// ConvergenceError is a typed Newton-convergence failure. It separates
// "this candidate circuit cannot be solved" — the routine outcome of an
// optimizer probing an infeasible sizing, which the annealer skips —
// from engine faults (singular systems, bad netlists, panics), which
// must abort a study. Callers unwrap it with errors.As through the
// hybrid evaluator's wrapping.
type ConvergenceError struct {
	Analysis   string  // which analysis failed: "dc" or "transient"
	Time       float64 // transient time point, seconds (0 for DC)
	Iterations int     // Newton iterations spent before giving up
	WorstNode  string  // node with the largest final voltage update
	WorstDelta float64 // that update's magnitude, volts
	Detail     string  // optional solver context (e.g. final node state)
}

func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("sim: %s Newton did not converge in %d iterations", e.Analysis, e.Iterations)
	if e.Analysis == "transient" {
		msg = fmt.Sprintf("sim: transient Newton did not converge at t=%g in %d iterations", e.Time, e.Iterations)
	}
	if e.WorstNode != "" {
		msg += fmt.Sprintf(" (worst node %s, Δ=%.3g V)", e.WorstNode, e.WorstDelta)
	}
	if e.Detail != "" {
		msg += " — " + e.Detail
	}
	return msg
}

// IsConvergence reports whether err is (or wraps) a ConvergenceError:
// an infeasible candidate rather than an engine fault.
func IsConvergence(err error) bool {
	var ce *ConvergenceError
	return errors.As(err, &ce)
}
