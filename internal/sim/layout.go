// Package sim is the circuit simulation engine: a modified-nodal-analysis
// (MNA) assembler with a Newton–Raphson DC operating-point solver
// (gmin and source stepping for robustness), a complex-valued AC analysis,
// and a trapezoidal transient analysis with two-phase clocked switches for
// switched-capacitor circuits. It is the "simulation side" of the paper's
// hybrid evaluation flow; the "equation side" lives in internal/dpi and
// internal/poly.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// Layout maps circuit nodes and source branch currents onto MNA unknowns.
// Ground ("0"/"gnd") is excluded; voltage-defined elements (V, E) get an
// extra branch-current row each.
type Layout struct {
	NodeIndex   map[string]int
	BranchIndex map[string]int // element name → branch unknown
	Nodes       []string       // index → name
	Size        int
}

// NewLayout builds the unknown map for a circuit.
func NewLayout(c *netlist.Circuit) *Layout {
	l := &Layout{NodeIndex: map[string]int{}, BranchIndex: map[string]int{}}
	for _, e := range c.Elements {
		for _, n := range e.Nodes {
			if isGround(n) {
				continue
			}
			if _, ok := l.NodeIndex[n]; !ok {
				l.NodeIndex[n] = len(l.Nodes)
				l.Nodes = append(l.Nodes, n)
			}
		}
	}
	next := len(l.Nodes)
	for _, e := range c.Elements {
		if e.Type == netlist.VSource || e.Type == netlist.VCVS {
			l.BranchIndex[e.Name] = next
			next++
		}
	}
	l.Size = next
	return l
}

func isGround(n string) bool { return n == "0" || n == "gnd" }

// idx returns the matrix row for a node, or -1 for ground.
func (l *Layout) idx(node string) int {
	if isGround(node) {
		return -1
	}
	i, ok := l.NodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", node))
	}
	return i
}

// Voltage extracts a node voltage from a solution vector (0 for ground).
func (l *Layout) Voltage(x []float64, node string) float64 {
	i := l.idx(node)
	if i < 0 {
		return 0
	}
	return x[i]
}

// compiled is the per-simulation view of a circuit: elements paired with
// their resolved device parameters so the assembly loop never re-parses
// model cards, plus the kernel layer (see kernel.go): element views with
// pre-resolved MNA indices, the constant stamp shared by every analysis,
// and the reusable solver workspaces.
type compiled struct {
	circuit  *netlist.Circuit
	layout   *Layout
	mos      map[string]device.MOSParams
	switches map[string]device.SwitchParams

	mosElems []mosElem
	mosPB    *device.ParamsBatch // SoA MOS parameter slab (shared across a Batch)
	mosBase  int                 // current candidate's flat offset into mosPB
	capElems []capElem
	swElems  []swElem
	srcElems []srcElem
	constG   *la.Matrix         // R/VCVS/VCCS/V-branch stamps: no gmin, no switches
	phaseG   map[int]*la.Matrix // constG + switch conductances, per clock phase
	sym      *la.Symbolic       // sparsity analysis of the full MNA stamp union
	symBase  *la.Symbolic       // baseline-only pattern for the residual mat-vec
	symOrd   *la.Symbolic       // static-ordered analysis, nil if no safe order
	dcws     *dcWorkspace
}

// resolveDevices validates element values and resolves model cards into
// device parameter structs. Shared by compile and the batch loader so a
// batch candidate sees exactly the standalone validation.
func resolveDevices(c *netlist.Circuit) (map[string]device.MOSParams, map[string]device.SwitchParams, error) {
	mos := map[string]device.MOSParams{}
	switches := map[string]device.SwitchParams{}
	for _, e := range c.Elements {
		switch e.Type {
		case netlist.MOS:
			m, err := c.ModelFor(e)
			if err != nil {
				return nil, nil, err
			}
			p, err := device.FromNetlist(e, m)
			if err != nil {
				return nil, nil, err
			}
			mos[e.Name] = p
		case netlist.Switch:
			m, err := c.ModelFor(e)
			if err != nil {
				return nil, nil, err
			}
			switches[e.Name] = device.SwitchFromNetlist(e, m)
		case netlist.Resistor:
			if e.Value <= 0 {
				return nil, nil, fmt.Errorf("sim: %s has non-positive resistance %g", e.Name, e.Value)
			}
		case netlist.Capacitor:
			if e.Value <= 0 {
				return nil, nil, fmt.Errorf("sim: %s has non-positive capacitance %g", e.Name, e.Value)
			}
		case netlist.VSource, netlist.ISource:
			if e.Src == nil {
				return nil, nil, fmt.Errorf("sim: source %s has no waveform", e.Name)
			}
		}
	}
	return mos, switches, nil
}

func compile(c *netlist.Circuit) (*compiled, error) {
	mos, switches, err := resolveDevices(c)
	if err != nil {
		return nil, err
	}
	cc := &compiled{
		circuit:  c,
		layout:   NewLayout(c),
		mos:      mos,
		switches: switches,
	}
	if cc.layout.Size == 0 {
		return nil, fmt.Errorf("sim: circuit %q has no unknowns", c.Title)
	}
	cc.buildKernel()
	return cc, nil
}

// describeState renders node voltages for error messages and debug logs.
func (l *Layout) describeState(x []float64) string {
	names := make([]string, len(l.Nodes))
	copy(names, l.Nodes)
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%.4g", n, x[l.NodeIndex[n]]))
	}
	return strings.Join(parts, " ")
}
