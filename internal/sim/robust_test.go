package sim

import (
	"errors"
	"math"
	"testing"
)

// TestDCConvergenceErrorTyped starves Newton of iterations and checks
// the failure surfaces as a *ConvergenceError carrying the analysis
// kind, the iteration budget, and the worst node — the typed signal
// that lets the synthesis engine treat it as an infeasible candidate
// instead of an engine fault.
func TestDCConvergenceErrorTyped(t *testing.T) {
	c := mustParse(t, `* divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
`)
	_, err := OP(c, DCOpts{MaxIter: 1})
	if err == nil {
		t.Fatal("OP with a 1-iteration budget converged")
	}
	if !IsConvergence(err) {
		t.Fatalf("err = %v, not classified as a convergence failure", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want wrapped *ConvergenceError", err)
	}
	if ce.Analysis != "dc" || ce.Iterations != 1 {
		t.Fatalf("ConvergenceError = %+v", ce)
	}
	if ce.WorstNode != "in" {
		t.Fatalf("worst node %q, want the 10 V source node \"in\"", ce.WorstNode)
	}
	if ce.WorstDelta <= 0 {
		t.Fatalf("worst delta %g, want > 0", ce.WorstDelta)
	}
}

// TestTranConvergenceErrorTyped does the same for the transient solver:
// a 1-iteration Newton budget cannot track a moving source even after
// the halving rescue, and the resulting error names the time point.
func TestTranConvergenceErrorTyped(t *testing.T) {
	c := mustParse(t, `* rc step
V1 in 0 PWL(0 0 1n 5)
R1 in out 1k
C1 out 0 1n
`)
	_, err := Tran(c, TranOpts{TStop: 100e-9, TStep: 10e-9, UseICs: true, MaxNewton: 1})
	if err == nil {
		t.Fatal("transient with a 1-iteration Newton budget converged")
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConvergenceError", err)
	}
	if ce.Analysis != "transient" || ce.Time <= 0 {
		t.Fatalf("ConvergenceError = %+v", ce)
	}
	if !IsConvergence(err) {
		t.Fatal("IsConvergence rejected a transient convergence failure")
	}
	// An engine fault — here a malformed window — must NOT classify as a
	// convergence failure.
	if _, err := Tran(c, TranOpts{TStop: -1, TStep: 1e-9}); err == nil || IsConvergence(err) {
		t.Fatalf("bad-window error misclassified: %v", err)
	}
}

// TestTranGminConfigurable: a capacitively coupled node is held up only
// by the gmin shunt. The default floor (1e-12 S) keeps it essentially
// frozen over microseconds; a deliberately heavy 1e-3 S shunt drains it
// with τ = C/G = 1 µs. The knob must match DCOpts.Gmin semantics.
func TestTranGminConfigurable(t *testing.T) {
	deck := `* floating cap node
V1 in 0 PWL(0 0 1n 1)
C1 in out 1n
`
	run := func(gmin float64) float64 {
		c := mustParse(t, deck)
		res, err := Tran(c, TranOpts{TStop: 5e-6, TStep: 10e-9, UseICs: true, Gmin: gmin})
		if err != nil {
			t.Fatalf("gmin=%g: %v", gmin, err)
		}
		v, err := res.At("out", 5e-6)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := run(0); v < 0.9 { // default 1e-12: node holds its coupled step
		t.Fatalf("default gmin leaked the floating node to %g V", v)
	}
	if v := run(1e-3); math.Abs(v) > 0.1 { // heavy shunt: drained in 5τ
		t.Fatalf("1e-3 S gmin left the floating node at %g V", v)
	}
}

// TestTranFinalSampleClamped pins the transient window contract: when
// TStop is not an integer multiple of TStep the rounded step count used
// to record a final sample past TStop; now the last step shortens and
// the final sample lands exactly on TStop.
func TestTranFinalSampleClamped(t *testing.T) {
	c := mustParse(t, `* rc
V1 in 0 DC 5
R1 in out 1k
C1 out 0 1n
`)
	const tStop, tStep = 1e-6, 0.35e-6 // round(1/0.35)=3 steps → nominal last t = 1.05 µs
	res, err := Tran(c, TranOpts{TStop: tStop, TStep: tStep, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.T[len(res.T)-1]; got != tStop {
		t.Fatalf("final sample at t=%g, want exactly TStop=%g", got, tStop)
	}
	for i, tp := range res.T {
		if tp > tStop {
			t.Fatalf("sample %d at t=%g exceeds TStop", i, tp)
		}
		if i > 0 && tp <= res.T[i-1] {
			t.Fatalf("time axis not strictly increasing at %d", i)
		}
	}
	// Integer-multiple windows keep their exact grid (no behavior change).
	c2 := mustParse(t, `* rc
V1 in 0 DC 5
R1 in out 1k
C1 out 0 1n
`)
	res2, err := Tran(c2, TranOpts{TStop: 1e-6, TStep: 0.25e-6, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.T) != 5 || res2.T[4] != 1e-6 {
		t.Fatalf("integer window grid changed: %v", res2.T)
	}
}

// TestPWLDuplicateTimePoints: two PWL points sharing a time encode an
// instantaneous step. Evaluation must take the later point's value
// instead of dividing by zero and propagating NaN into the solve.
func TestPWLDuplicateTimePoints(t *testing.T) {
	c := mustParse(t, `* pwl step
V1 in 0 PWL(0 0 1u 0 1u 1 2u 1)
R1 in out 1k
C1 out 0 1n
`)
	s := c.Elements[0].Src
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {0.5e-6, 0}, {1e-6, 1}, {1.5e-6, 1}, {3e-6, 1},
	} {
		got := sourceValue(s, tc.t)
		if math.IsNaN(got) {
			t.Fatalf("sourceValue(t=%g) is NaN", tc.t)
		}
		if got != tc.want {
			t.Fatalf("sourceValue(t=%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	// End to end: the step must propagate a finite RC response.
	res, err := Tran(c, TranOpts{TStop: 4e-6, TStep: 10e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.At("out", 4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.Abs(v-1) > 0.05 {
		t.Fatalf("out(4µs) = %g, want ≈1 (τ=1µs after the step)", v)
	}
}
