package sim

import (
	"math"
	"strings"
	"testing"

	"pipesyn/internal/device"
	"pipesyn/internal/netlist"
)

func mustParse(t *testing.T, deck string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Parse(deck)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return c
}

func mustOP(t *testing.T, c *netlist.Circuit, opts DCOpts) *DCResult {
	t.Helper()
	r, err := OP(c, opts)
	if err != nil {
		t.Fatalf("OP: %v", err)
	}
	return r
}

func TestDCResistorDivider(t *testing.T) {
	c := mustParse(t, `* divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
`)
	r := mustOP(t, c, DCOpts{})
	v, err := r.Voltage("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-7.5) > 1e-6 {
		t.Fatalf("mid = %g, want 7.5", v)
	}
	// Branch current through V1: 10V across 4k = 2.5 mA flowing in.
	if i := r.BranchI["v1"]; math.Abs(i+2.5e-3) > 1e-9 {
		t.Fatalf("I(V1) = %g, want -2.5m", i)
	}
	// Supply delivers 25 mW.
	if p := r.SupplyPower(c); math.Abs(p-25e-3) > 1e-9 {
		t.Fatalf("power = %g, want 25m", p)
	}
}

func TestDCCurrentSource(t *testing.T) {
	c := mustParse(t, `* isrc
I1 0 out DC 1m
R1 out 0 2k
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("out")
	if math.Abs(v-2.0) > 1e-6 {
		t.Fatalf("out = %g, want 2 (1mA into 2k)", v)
	}
}

func TestDCVCVS(t *testing.T) {
	c := mustParse(t, `* vcvs
V1 in 0 DC 0.5
R1 in 0 1k
E1 out 0 in 0 10
R2 out 0 1k
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("out")
	if math.Abs(v-5) > 1e-6 {
		t.Fatalf("out = %g, want 5", v)
	}
}

func TestDCVCCS(t *testing.T) {
	c := mustParse(t, `* vccs
V1 in 0 DC 1
R1 in 0 1k
G1 0 out in 0 2m
R2 out 0 1k
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("out")
	// 2mA into 1k = 2V.
	if math.Abs(v-2) > 1e-6 {
		t.Fatalf("out = %g, want 2", v)
	}
}

func TestDCCapacitorOpen(t *testing.T) {
	c := mustParse(t, `* cap is open in DC
V1 in 0 DC 5
R1 in out 1k
C1 out 0 1p
R2 out 0 1k
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("out")
	if math.Abs(v-2.5) > 1e-6 {
		t.Fatalf("out = %g, want 2.5", v)
	}
}

// Diode-connected NMOS: VGS solves 0.5k(VGS−VT)² = (VDD−VGS)/R.
func TestDCDiodeConnectedNMOS(t *testing.T) {
	c := mustParse(t, `* diode-connected
V1 vdd 0 DC 3.3
R1 vdd d 10k
M1 d d 0 0 nch W=10u L=1u
.model nch nmos (vto=0.45 kp=180u lambda=0 gamma=0)
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("d")
	// Solve analytically: 0.5·180µ·(10/1)·(v−0.45)² = (3.3−v)/10k.
	k := 0.5 * 180e-6 * 10
	// Newton on the analytic equation for the reference value.
	ref := 0.7
	for i := 0; i < 50; i++ {
		f := k*(ref-0.45)*(ref-0.45) - (3.3-ref)/1e4
		df := 2*k*(ref-0.45) + 1/1e4
		ref -= f / df
	}
	if math.Abs(v-ref) > 1e-4 {
		t.Fatalf("VGS = %g, want %g", v, ref)
	}
	op := r.MOS["m1"]
	if op.Region != device.Saturation {
		t.Fatalf("diode-connected device must saturate, got %v", op.Region)
	}
	if op.ID <= 0 {
		t.Fatalf("ID = %g", op.ID)
	}
}

// Common-source amplifier with resistive load: check the bias point is
// consistent (KCL at drain) and gm matches the analytic square law.
func TestDCCommonSource(t *testing.T) {
	c := mustParse(t, `* common source
V1 vdd 0 DC 3.3
VG g 0 DC 0.9
RD vdd d 2k
M1 d g 0 0 nch W=20u L=0.5u
.model nch nmos (vto=0.45 kp=180u lambda=0.05 gamma=0)
`)
	r := mustOP(t, c, DCOpts{})
	vd, _ := r.Voltage("d")
	op := r.MOS["m1"]
	// KCL: (3.3 − vd)/2k = ID.
	if math.Abs((3.3-vd)/2e3-op.ID) > 1e-9 {
		t.Fatalf("KCL violated: IR=%g ID=%g", (3.3-vd)/2e3, op.ID)
	}
	if op.Region != device.Saturation {
		t.Fatalf("region = %v", op.Region)
	}
}

// CMOS inverter-like stack: PMOS + NMOS both in saturation near midpoint.
func TestDCCMOSStack(t *testing.T) {
	c := mustParse(t, `* push-pull bias
V1 vdd 0 DC 3.3
VGN gn 0 DC 1.0
VGP gp 0 DC 2.3
M1 out gn 0 0 nch W=10u L=0.5u
M2 out gp vdd vdd pch W=30u L=0.5u
.model nch nmos (vto=0.45 kp=180u lambda=0.06)
.model pch pmos (vto=-0.5 kp=60u lambda=0.08)
`)
	r := mustOP(t, c, DCOpts{})
	v, _ := r.Voltage("out")
	if v < 0.2 || v > 3.1 {
		t.Fatalf("out = %g, expected an intermediate bias point", v)
	}
	// NMOS sinks what PMOS sources.
	in := r.MOS["m1"].ID
	ip := r.MOS["m2"].ID
	if math.Abs(in+ip) > 1e-7 {
		t.Fatalf("stack KCL: In=%g Ip=%g", in, ip)
	}
}

func TestDCSwitchStates(t *testing.T) {
	deck := `* switch divider
V1 in 0 DC 1
S1 in out swm phase=1
R1 out 0 1k
.model swm sw (ron=1k roff=1e12)
`
	c := mustParse(t, deck)
	// Phase 1 active: divider 1k/1k → 0.5.
	r := mustOP(t, c, DCOpts{SwitchPhase: 1})
	v, _ := r.Voltage("out")
	if math.Abs(v-0.5) > 1e-4 {
		t.Fatalf("on: out = %g, want 0.5", v)
	}
	// Phase 2 active: switch open → ~0.
	r = mustOP(t, c, DCOpts{SwitchPhase: 2})
	v, _ = r.Voltage("out")
	if math.Abs(v) > 1e-3 {
		t.Fatalf("off: out = %g, want ≈0", v)
	}
}

func TestDCErrors(t *testing.T) {
	// Unknown node query.
	c := mustParse(t, "V1 a 0 DC 1\nR1 a 0 1k\n")
	r := mustOP(t, c, DCOpts{})
	if _, err := r.Voltage("zzz"); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if v, err := r.Voltage("0"); err != nil || v != 0 {
		t.Fatal("ground must read 0")
	}
	// Bad element values caught at compile.
	bad := mustParse(t, "R1 a 0 1k\n")
	bad.Elements[0].Value = -5
	if _, err := OP(bad, DCOpts{}); err == nil {
		t.Fatal("expected negative-resistance error")
	}
	// Empty circuit.
	if _, err := OP(netlist.New("empty"), DCOpts{}); err == nil {
		t.Fatal("expected empty-circuit error")
	}
	// Missing model.
	miss := mustParse(t, "M1 d g 0 0 nomodel W=1u L=1u\nV1 d 0 DC 1\nV2 g 0 DC 1\n")
	if _, err := OP(miss, DCOpts{}); err == nil {
		t.Fatal("expected missing-model error")
	}
}

// A bistable-ish positive feedback circuit exercises the continuation
// fallbacks; it must converge to some consistent solution.
func TestDCConvergenceFallbacks(t *testing.T) {
	c := mustParse(t, `* cross-coupled load
V1 vdd 0 DC 3.3
R1 vdd a 10k
R2 vdd b 10k
M1 a b 0 0 nch W=50u L=0.25u
M2 b a 0 0 nch W=50u L=0.25u
.model nch nmos (vto=0.45 kp=180u)
`)
	r := mustOP(t, c, DCOpts{})
	va, _ := r.Voltage("a")
	vb, _ := r.Voltage("b")
	// KCL at both drains must hold whatever branch was found.
	ia := r.MOS["m1"].ID
	if math.Abs((3.3-va)/1e4-ia) > 1e-7 {
		t.Fatalf("KCL at a: %g vs %g", (3.3-va)/1e4, ia)
	}
	ib := r.MOS["m2"].ID
	if math.Abs((3.3-vb)/1e4-ib) > 1e-7 {
		t.Fatalf("KCL at b: %g vs %g", (3.3-vb)/1e4, ib)
	}
}

// Starving Newton of iterations forces the continuation ladder (gmin and
// source stepping); the solver must either converge through it or return
// a descriptive error — never panic.
func TestDCContinuationLadder(t *testing.T) {
	c := mustParse(t, `* cross-coupled, hard from a flat start
V1 vdd 0 DC 3.3
R1 vdd a 10k
R2 vdd b 10k
M1 a b 0 0 nch W=50u L=0.25u
M2 b a 0 0 nch W=50u L=0.25u
.model nch nmos (vto=0.45 kp=180u)
`)
	r, err := OP(c, DCOpts{MaxIter: 6})
	if err != nil {
		if !strings.Contains(err.Error(), "converge") {
			t.Fatalf("unhelpful error: %v", err)
		}
		return
	}
	// If it converged, KCL must hold.
	va, _ := r.Voltage("a")
	if math.Abs((3.3-va)/1e4-r.MOS["m1"].ID) > 1e-6 {
		t.Fatalf("ladder result violates KCL")
	}
}

// The continuation must eventually be exhausted on a truly broken setup,
// producing the state-describing error message.
func TestDCExhaustedError(t *testing.T) {
	c := mustParse(t, `* two-stage amp with 1-iteration budget
V1 vdd 0 DC 3.3
VG g 0 DC 0.9
RD vdd d 2k
M1 d g 0 0 nch W=20u L=0.5u
.model nch nmos (vto=0.45 kp=180u)
`)
	if _, err := OP(c, DCOpts{MaxIter: 1}); err == nil {
		t.Skip("converged in one iteration; nothing to assert")
	} else if !strings.Contains(err.Error(), "scale") && !strings.Contains(err.Error(), "converge") {
		t.Fatalf("error lacks diagnostics: %v", err)
	}
}
