package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"
)

func TestACRCLowpass(t *testing.T) {
	c := mustParse(t, `* rc lowpass, fp = 1/(2π·10k·1.59n) ≈ 10 kHz
V1 in 0 DC 0 AC 1
R1 in out 10k
C1 out 0 1.59155n
`)
	op := mustOP(t, c, DCOpts{})
	ac, err := AC(c, op, ACOpts{FStart: 10, FStop: 10e6, PointsPerDecade: 40})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ac.Characterize("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.DCGainDB) > 0.05 {
		t.Fatalf("DC gain = %g dB, want 0", m.DCGainDB)
	}
	if math.Abs(m.F3DBHz-10e3)/10e3 > 0.03 {
		t.Fatalf("f3dB = %g, want ≈10k", m.F3DBHz)
	}
	// Phase at the pole is −45°.
	h, _ := ac.Transfer("out")
	idx := 0
	for i, f := range ac.Freqs {
		if math.Abs(f-10e3) < math.Abs(ac.Freqs[idx]-10e3) {
			idx = i
		}
	}
	ph := cmplx.Phase(h[idx]) * 180 / math.Pi
	if math.Abs(ph+45) > 3 {
		t.Fatalf("phase at pole = %g, want −45", ph)
	}
}

func TestACCommonSourceGain(t *testing.T) {
	// Common-source with resistive load: |Av| = gm·(RD∥ro) at low f.
	c := mustParse(t, `* cs amp
V1 vdd 0 DC 3.3
VG g 0 DC 0.9 AC 1
RD vdd d 2k
M1 d g 0 0 nch W=20u L=0.5u
.model nch nmos (vto=0.45 kp=180u lambda=0.05 gamma=0)
`)
	op := mustOP(t, c, DCOpts{})
	mos := op.MOS["m1"]
	want := mos.GM * parallel(2e3, 1/mos.GDS)
	ac, err := AC(c, op, ACOpts{FStart: 100, FStop: 10e9, PointsPerDecade: 20})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ac.Transfer("d")
	got := cmplx.Abs(h[0])
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("|Av| = %g, want %g", got, want)
	}
	// Gain must roll off at high frequency due to device caps.
	if hi := cmplx.Abs(h[len(h)-1]); hi > got/2 {
		t.Fatalf("no rolloff: |Av(10GHz)| = %g vs %g", hi, got)
	}
}

func parallel(a, b float64) float64 { return a * b / (a + b) }

func TestACVCVSIdealAmp(t *testing.T) {
	c := mustParse(t, `* E source is frequency-flat
V1 in 0 AC 1
R1 in 0 1k
E1 out 0 in 0 42
R2 out 0 1k
`)
	op := mustOP(t, c, DCOpts{})
	ac, err := AC(c, op, ACOpts{FStart: 1, FStop: 1e6, PointsPerDecade: 10})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ac.Transfer("out")
	for i, v := range h {
		if math.Abs(cmplx.Abs(v)-42) > 1e-6 {
			t.Fatalf("|H(%g)| = %g, want 42", ac.Freqs[i], cmplx.Abs(v))
		}
	}
}

func TestACCurrentSourceStimulus(t *testing.T) {
	c := mustParse(t, `* 1A AC into 1k = 1kV response (linearity check)
I1 0 out AC 1
R1 out 0 1k
`)
	op := mustOP(t, c, DCOpts{})
	ac, err := AC(c, op, ACOpts{FStart: 1, FStop: 100, PointsPerDecade: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ac.Transfer("out")
	if math.Abs(cmplx.Abs(h[0])-1000) > 1e-6 {
		t.Fatalf("|Z| = %g, want 1000", cmplx.Abs(h[0]))
	}
}

func TestACErrors(t *testing.T) {
	c := mustParse(t, "V1 in 0 AC 1\nR1 in 0 1k\n")
	op := mustOP(t, c, DCOpts{})
	if _, err := AC(c, op, ACOpts{FStart: 0, FStop: 1e6}); err == nil {
		t.Fatal("expected bad-range error")
	}
	if _, err := AC(c, op, ACOpts{FStart: 1e6, FStop: 1}); err == nil {
		t.Fatal("expected inverted-range error")
	}
	ac, err := AC(c, op, ACOpts{FStart: 1, FStop: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Transfer("ghost"); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestGainPhaseUnwrap(t *testing.T) {
	// Construct a response that crosses ±180° and verify monotone unwrap.
	h := []complex128{
		cmplx.Rect(1, 3.0),
		cmplx.Rect(1, 3.1),
		cmplx.Rect(1, -3.1), // wrapped
		cmplx.Rect(1, -3.0),
	}
	_, ph := GainPhase(h)
	for i := 1; i < len(ph); i++ {
		if math.Abs(ph[i]-ph[i-1]) > 90 {
			t.Fatalf("phase jump at %d: %v", i, ph)
		}
	}
}

func TestACSwitchPhaseMatters(t *testing.T) {
	deck := `* switched divider
V1 in 0 DC 0 AC 1
S1 in out swm phase=1
R1 out 0 1k
.model swm sw (ron=1k roff=1e12)
`
	c := mustParse(t, deck)
	op := mustOP(t, c, DCOpts{SwitchPhase: 1})
	on, err := AC(c, op, ACOpts{FStart: 1, FStop: 10, SwitchPhase: 1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := AC(c, op, ACOpts{FStart: 1, FStop: 10, SwitchPhase: 2})
	if err != nil {
		t.Fatal(err)
	}
	hOn, _ := on.Transfer("out")
	hOff, _ := off.Transfer("out")
	if cmplx.Abs(hOn[0]) < 0.45 || cmplx.Abs(hOff[0]) > 1e-6 {
		t.Fatalf("switch phases: on=%g off=%g", cmplx.Abs(hOn[0]), cmplx.Abs(hOff[0]))
	}
}

// Property: AC analysis is linear in the stimulus — scaling the source
// magnitude scales every node response by the same factor.
func TestACLinearityProperty(t *testing.T) {
	deck := `* linearity
V1 in 0 DC 0.9 AC %g
R1 in g 100
RD vdd d 2k
V2 vdd 0 DC 3.3
M1 d g 0 0 nch W=20u L=0.5u
CL d 0 100f
.model nch nmos (vto=0.45 kp=180u)
`
	run := func(mag float64) []complex128 {
		c := mustParse(t, fmt.Sprintf(deck, mag))
		op := mustOP(t, c, DCOpts{})
		ac, err := AC(c, op, ACOpts{FStart: 1e4, FStop: 1e9, PointsPerDecade: 3})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := ac.Transfer("d")
		return h
	}
	h1 := run(1)
	h3 := run(3)
	for i := range h1 {
		if cmplx.Abs(h3[i]-3*h1[i]) > 1e-9*(1+cmplx.Abs(h1[i])) {
			t.Fatalf("AC not linear at index %d: %v vs 3×%v", i, h3[i], h1[i])
		}
	}
}
