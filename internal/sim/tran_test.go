package sim

import (
	"math"
	"testing"
)

func TestTranRCCharge(t *testing.T) {
	// RC step response: v(t) = 5(1 − e^{−t/τ}), τ = 1 µs.
	c := mustParse(t, `* rc step
V1 in 0 PWL(0 0 1n 5)
R1 in out 1k
C1 out 0 1n
`)
	res, err := Tran(c, TranOpts{TStop: 5e-6, TStep: 10e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-6
	for _, tp := range []float64{0.5e-6, 1e-6, 2e-6, 4e-6} {
		got, err := res.At("out", tp)
		if err != nil {
			t.Fatal(err)
		}
		want := 5 * (1 - math.Exp(-(tp-1e-9)/tau))
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("v(%g) = %g, want %g", tp, got, want)
		}
	}
}

func TestTranTrapVsBE(t *testing.T) {
	// Trapezoidal should be visibly more accurate than BE at a coarse
	// step. Free RC discharge from an initial condition, sampled at 2τ
	// (the simulator takes one BE start-up step in both runs).
	deck := `* rc discharge coarse
R1 top 0 1k
C1 top 0 1n
`
	c := mustParse(t, deck)
	step := 100e-9 // τ/10
	ics := map[string]float64{"top": 1.0}
	trap, err := Tran(c, TranOpts{TStop: 2e-6, TStep: step, Method: Trapezoidal, UseICs: true, ICs: ics})
	if err != nil {
		t.Fatal(err)
	}
	be, err := Tran(c, TranOpts{TStop: 2e-6, TStep: step, Method: BackwardEuler, UseICs: true, ICs: ics})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2.0)
	vTrap, _ := trap.At("top", 2e-6)
	vBE, _ := be.At("top", 2e-6)
	if math.Abs(vTrap-want) >= math.Abs(vBE-want) {
		t.Fatalf("trap err %g should beat BE err %g", math.Abs(vTrap-want), math.Abs(vBE-want))
	}
}

func TestTranSinSource(t *testing.T) {
	c := mustParse(t, `* follower of a sine through a resistor
V1 in 0 SIN(1 0.5 1MEG)
R1 in out 1
R2 out 0 1MEG
`)
	res, err := Tran(c, TranOpts{TStop: 2e-6, TStep: 5e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Peak near t = 0.25 µs should approach 1.5, trough near 0.75 µs → 0.5.
	peak, _ := res.At("out", 0.25e-6)
	trough, _ := res.At("out", 0.75e-6)
	if math.Abs(peak-1.5) > 0.01 || math.Abs(trough-0.5) > 0.01 {
		t.Fatalf("sine peaks: %g / %g", peak, trough)
	}
}

func TestTranPulse(t *testing.T) {
	c := mustParse(t, `* pulse passthrough
V1 in 0 PULSE(0 1 100n 10n 10n 200n 500n)
R1 in 0 1k
`)
	res, err := Tran(c, TranOpts{TStop: 1e-6, TStep: 2e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := res.At("in", 50e-9)  // before delay
	v1, _ := res.At("in", 200e-9) // during pulse
	v2, _ := res.At("in", 400e-9) // after pulse
	v3, _ := res.At("in", 700e-9) // second period, pulse high again
	if v0 != 0 || math.Abs(v1-1) > 1e-9 || math.Abs(v2) > 1e-9 || math.Abs(v3-1) > 1e-9 {
		t.Fatalf("pulse samples: %g %g %g %g", v0, v1, v2, v3)
	}
}

func TestClockPhase(t *testing.T) {
	period, nov := 100e-9, 5e-9
	cases := []struct {
		t    float64
		want int
	}{
		{0, 1},
		{20e-9, 1},
		{44e-9, 1},
		{47e-9, 0}, // non-overlap gap
		{50e-9, 2},
		{90e-9, 2},
		{97e-9, 0}, // gap before wrap
		{100e-9, 1},
		{120e-9, 1},
	}
	for _, c := range cases {
		if got := ClockPhase(c.t, period, nov); got != c.want {
			t.Errorf("ClockPhase(%g) = %d, want %d", c.t, got, c.want)
		}
	}
	if ClockPhase(123, 0, 0) != 0 {
		t.Error("no clock should mean no phase")
	}
}

// Switched-capacitor sample: during φ1 the cap tracks the input; during φ2
// it is isolated and holds.
func TestTranSampleAndHold(t *testing.T) {
	c := mustParse(t, `* track and hold
V1 in 0 DC 2
S1 in top swm phase=1
C1 top 0 1p
.model swm sw (ron=100 roff=1e13)
`)
	res, err := Tran(c, TranOpts{
		TStop: 200e-9, TStep: 0.5e-9,
		ClockPeriod: 100e-9, NonOverlap: 5e-9,
		UseICs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// End of φ1 (t≈40n): tracked to ≈2 V (τ = 100Ω·1pF = 0.1 ns).
	vTrack, _ := res.At("top", 40e-9)
	if math.Abs(vTrack-2) > 0.01 {
		t.Fatalf("tracking failed: %g", vTrack)
	}
	// During φ2 (t≈80n): held.
	vHold, _ := res.At("top", 80e-9)
	if math.Abs(vHold-2) > 0.02 {
		t.Fatalf("hold droop: %g", vHold)
	}
}

func TestTranMOSInverterSwitches(t *testing.T) {
	// NMOS inverter driven by a pulse: output swings opposite the input.
	c := mustParse(t, `* nmos inverter
V1 vdd 0 DC 3.3
VIN g 0 PULSE(0 3.3 20n 1n 1n 40n 100n)
RD vdd d 10k
M1 d g 0 0 nch W=10u L=0.25u
.model nch nmos (vto=0.45 kp=180u)
CL d 0 10f
`)
	res, err := Tran(c, TranOpts{TStop: 100e-9, TStep: 0.2e-9})
	if err != nil {
		t.Fatal(err)
	}
	vHighIn, _ := res.At("d", 50e-9) // input high → output low
	vLowIn, _ := res.At("d", 10e-9)  // input low → output high
	if vHighIn > 0.5 {
		t.Fatalf("output should pull low, got %g", vHighIn)
	}
	if vLowIn < 3.0 {
		t.Fatalf("output should sit high, got %g", vLowIn)
	}
}

func TestTranErrors(t *testing.T) {
	c := mustParse(t, "V1 a 0 DC 1\nR1 a 0 1k\n")
	if _, err := Tran(c, TranOpts{TStop: 0, TStep: 1e-9}); err == nil {
		t.Fatal("expected bad-window error")
	}
	if _, err := Tran(c, TranOpts{TStop: 1e-9, TStep: 1e-6}); err == nil {
		t.Fatal("expected step>stop error")
	}
	res, err := Tran(c, TranOpts{TStop: 10e-9, TStep: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Waveform("ghost"); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if w, err := res.Waveform("0"); err != nil || w[0] != 0 {
		t.Fatal("ground waveform must be zeros")
	}
}

func TestTranICs(t *testing.T) {
	// Start a free RC discharge from an initial condition.
	c := mustParse(t, `* discharge
R1 top 0 1k
C1 top 0 1n
`)
	res, err := Tran(c, TranOpts{
		TStop: 3e-6, TStep: 10e-9,
		UseICs: true, ICs: map[string]float64{"top": 2.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.At("top", 1e-6) // one τ later: 2/e
	want := 2 / math.E
	if math.Abs(v-want) > 0.03 {
		t.Fatalf("discharge v(τ) = %g, want %g", v, want)
	}
}

func TestTranPWLEdges(t *testing.T) {
	// Before the first point the source holds the first value; after the
	// last it holds the last value.
	c := mustParse(t, `* pwl edges
V1 in 0 PWL(10n 1 20n 2)
R1 in 0 1k
`)
	res, err := Tran(c, TranOpts{TStop: 40e-9, TStep: 1e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	early, _ := res.At("in", 2e-9)
	late, _ := res.At("in", 35e-9)
	if math.Abs(early-1) > 1e-9 || math.Abs(late-2) > 1e-9 {
		t.Fatalf("PWL edges: early=%g late=%g", early, late)
	}
}

func TestTranPulseNoPeriod(t *testing.T) {
	// PER=0 means a one-shot pulse.
	src := `* oneshot
V1 in 0 PULSE(0 1 5n 1n 1n 5n 0)
R1 in 0 1k
`
	c := mustParse(t, src)
	c.Find("v1").Src.Pulse.PER = 0
	res, err := Tran(c, TranOpts{TStop: 40e-9, TStep: 0.5e-9, UseICs: true})
	if err != nil {
		t.Fatal(err)
	}
	during, _ := res.At("in", 8e-9)
	after, _ := res.At("in", 30e-9)
	if math.Abs(during-1) > 1e-9 || math.Abs(after) > 1e-9 {
		t.Fatalf("one-shot pulse: during=%g after=%g", during, after)
	}
}
