package sim

import (
	"fmt"
	"math"

	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// Integrator selects the transient integration method.
type Integrator int

const (
	Trapezoidal Integrator = iota
	BackwardEuler
)

// TranOpts configures a transient run.
type TranOpts struct {
	TStop  float64
	TStep  float64
	Method Integrator
	// Two-phase non-overlapping clock for switched-capacitor circuits:
	// phase 1 occupies [0, T/2−Tnov), phase 2 occupies [T/2, T−Tnov).
	// ClockPeriod 0 disables the clock (all clocked switches open).
	ClockPeriod float64
	NonOverlap  float64
	MaxNewton   int
	// UseICs starts from the given node voltages instead of a DC solve.
	UseICs bool
	ICs    map[string]float64
}

// TranResult holds sampled waveforms.
type TranResult struct {
	T []float64
	V map[string][]float64
}

// Waveform returns a node waveform.
func (r *TranResult) Waveform(node string) ([]float64, error) {
	if isGround(node) {
		w := make([]float64, len(r.T))
		return w, nil
	}
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("sim: no node %q in transient solution", node)
	}
	return v, nil
}

// At samples a waveform at time t with linear interpolation.
func (r *TranResult) At(node string, t float64) (float64, error) {
	w, err := r.Waveform(node)
	if err != nil {
		return 0, err
	}
	if len(r.T) == 0 {
		return 0, fmt.Errorf("sim: empty transient result")
	}
	if t <= r.T[0] {
		return w[0], nil
	}
	if t >= r.T[len(r.T)-1] {
		return w[len(w)-1], nil
	}
	lo, hi := 0, len(r.T)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - r.T[lo]) / (r.T[hi] - r.T[lo])
	return w[lo] + frac*(w[hi]-w[lo]), nil
}

// ClockPhase reports which non-overlapping phase is active at time t.
// Returns 0 during non-overlap gaps.
func ClockPhase(t, period, nonOverlap float64) int {
	if period <= 0 {
		return 0
	}
	tm := math.Mod(t, period)
	if tm < 0 {
		tm += period
	}
	half := period / 2
	switch {
	case tm < half-nonOverlap:
		return 1
	case tm >= half && tm < period-nonOverlap:
		return 2
	default:
		return 0
	}
}

// capState carries the companion-model memory of one capacitor.
type capState struct {
	v float64 // voltage at previous accepted step
	i float64 // current at previous accepted step (for trapezoidal)
}

// Tran runs a fixed-step transient analysis. Each step solves the
// nonlinear network by Newton iteration with capacitor companion models
// (trapezoidal by default). Clocked switches follow the two-phase clock.
func Tran(c *netlist.Circuit, opts TranOpts) (*TranResult, error) {
	if opts.TStop <= 0 || opts.TStep <= 0 || opts.TStep > opts.TStop {
		return nil, fmt.Errorf("sim: bad transient window step=%g stop=%g", opts.TStep, opts.TStop)
	}
	if opts.MaxNewton == 0 {
		opts.MaxNewton = 80
	}
	cc, err := compile(c)
	if err != nil {
		return nil, err
	}
	l := cc.layout
	n := l.Size

	// Initial state: DC operating point with the t=0 clock phase, or ICs.
	x := make([]float64, n)
	if opts.UseICs {
		for node, v := range opts.ICs {
			if i := l.idx(node); i >= 0 {
				x[i] = v
			}
		}
	} else {
		dc, err := OP(c, DCOpts{SwitchPhase: ClockPhase(0, opts.ClockPeriod, opts.NonOverlap)})
		if err != nil {
			return nil, fmt.Errorf("sim: transient initial OP: %w", err)
		}
		copy(x, dc.x)
	}

	// Companion state per capacitor; MOS terminal caps get synthetic
	// entries keyed by element name + terminal pair.
	caps := map[string]*capState{}
	for _, e := range cc.circuit.Elements {
		if e.Type == netlist.Capacitor {
			v0 := nodeV(x, l.idx(e.Nodes[0])) - nodeV(x, l.idx(e.Nodes[1]))
			caps[e.Name] = &capState{v: v0}
		}
	}

	steps := int(math.Round(opts.TStop/opts.TStep)) + 1
	res := &TranResult{V: map[string][]float64{}}
	for name := range l.NodeIndex {
		res.V[name] = make([]float64, 0, steps)
	}
	record := func(t float64, x []float64) {
		res.T = append(res.T, t)
		for name, i := range l.NodeIndex {
			res.V[name] = append(res.V[name], x[i])
		}
	}
	record(0, x)

	a := la.NewMatrix(n, n)
	b := make([]float64, n)

	// solveStep runs damped Newton for one step ending at time t with
	// width h; it returns the converged state without touching x or the
	// capacitor memory.
	solveStep := func(xFrom []float64, t, h float64, method Integrator) ([]float64, error) {
		phase := ClockPhase(t, opts.ClockPeriod, opts.NonOverlap)
		xNew := append([]float64(nil), xFrom...)
		for it := 0; it < opts.MaxNewton; it++ {
			a.Zero()
			for i := range b {
				b[i] = 0
			}
			stampTran(cc, a, b, xNew, xFrom, caps, h, t, phase, method)
			f, err := la.Factor(a)
			if err != nil {
				return nil, fmt.Errorf("sim: singular matrix at t=%g: %w", t, err)
			}
			sol := f.Solve(b)
			maxStep := 0.0
			for i := 0; i < len(l.Nodes); i++ {
				if d := math.Abs(sol[i] - xNew[i]); d > maxStep {
					maxStep = d
				}
			}
			// Damp large Newton excursions (a hard residue step can throw
			// devices across regions; full steps then oscillate).
			alpha := 1.0
			const vLimit = 0.3
			if maxStep > vLimit {
				alpha = vLimit / maxStep
			}
			for i := range sol {
				xNew[i] += alpha * (sol[i] - xNew[i])
			}
			if alpha == 1 && maxStep < 1e-6+1e-4*la.NormInf(xNew) {
				return xNew, nil
			}
		}
		return nil, fmt.Errorf("sim: transient Newton failed at t=%g", t)
	}

	commitCaps := func(xNew []float64, h float64, method Integrator) {
		for _, e := range cc.circuit.Elements {
			if e.Type != netlist.Capacitor {
				continue
			}
			st := caps[e.Name]
			vNew := nodeV(xNew, l.idx(e.Nodes[0])) - nodeV(xNew, l.idx(e.Nodes[1]))
			switch method {
			case Trapezoidal:
				st.i = (2*e.Value/h)*(vNew-st.v) - st.i
			case BackwardEuler:
				st.i = (e.Value / h) * (vNew - st.v)
			}
			st.v = vNew
		}
	}

	// advance integrates from tPrev to tPrev+h, recursively halving the
	// step with backward Euler when Newton cannot converge (sharp source
	// edges and region changes are the usual culprits).
	var advance func(xFrom []float64, tPrev, h float64, method Integrator, depth int) ([]float64, error)
	advance = func(xFrom []float64, tPrev, h float64, method Integrator, depth int) ([]float64, error) {
		xNew, err := solveStep(xFrom, tPrev+h, h, method)
		if err == nil {
			commitCaps(xNew, h, method)
			return xNew, nil
		}
		if depth >= 10 {
			return nil, err
		}
		xMid, err := advance(xFrom, tPrev, h/2, BackwardEuler, depth+1)
		if err != nil {
			return nil, err
		}
		return advance(xMid, tPrev+h/2, h/2, BackwardEuler, depth+1)
	}

	h := opts.TStep
	prevPhase := ClockPhase(0, opts.ClockPeriod, opts.NonOverlap)
	for k := 1; k < steps; k++ {
		t := float64(k) * h
		phase := ClockPhase(t, opts.ClockPeriod, opts.NonOverlap)
		// Trapezoidal integration rings forever if started with a wrong
		// capacitor-current state; take a damping backward-Euler step at
		// t=0 and across every clock-phase discontinuity, as production
		// simulators do after breakpoints.
		method := opts.Method
		if k == 1 || phase != prevPhase {
			method = BackwardEuler
		}
		prevPhase = phase
		xNew, err := advance(x, t-h, h, method, 0)
		if err != nil {
			return nil, err
		}
		x = xNew
		record(t, x)
	}
	return res, nil
}

// stampTran assembles one Newton iteration of a transient step.
func stampTran(cc *compiled, a *la.Matrix, b []float64, x, xPrev []float64,
	caps map[string]*capState, h, t float64, phase int, method Integrator) {
	l := cc.layout
	for i := 0; i < len(l.Nodes); i++ {
		a.Add(i, i, 1e-12)
	}
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor:
			stampConductance(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), 1/e.Value)
		case netlist.Capacitor:
			st := caps[e.Name]
			p, nn := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			var geq, ieq float64
			switch method {
			case Trapezoidal:
				geq = 2 * e.Value / h
				ieq = geq*st.v + st.i
			case BackwardEuler:
				geq = e.Value / h
				ieq = geq * st.v
			}
			stampConductance(a, p, nn, geq)
			addRHS(b, p, ieq)
			addRHS(b, nn, -ieq)
		case netlist.Switch:
			sw := cc.switches[e.Name]
			active := sw.Phase == 0 || sw.Phase == phase
			stampConductance(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), sw.Conductance(active))
		case netlist.ISource:
			i0 := sourceValue(e.Src, t)
			addRHS(b, l.idx(e.Nodes[0]), -i0)
			addRHS(b, l.idx(e.Nodes[1]), +i0)
		case netlist.VSource:
			br := l.BranchIndex[e.Name]
			stampVoltageBranch(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
			b[br] += sourceValue(e.Src, t)
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			op, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVoltageBranch(a, op, on, br)
			addA(a, br, cp, -e.Value)
			addA(a, br, cn, +e.Value)
		case netlist.VCCS:
			stampVCCS(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]), e.Value)
		case netlist.MOS:
			p := cc.mos[e.Name]
			d, g, s, bk := l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			vd, vg, vs, vb := nodeV(x, d), nodeV(x, g), nodeV(x, s), nodeV(x, bk)
			op := p.Eval(vd, vg, vs, vb)
			stampVCCS(a, d, s, g, s, op.GM)
			stampConductance(a, d, s, op.GDS)
			stampVCCS(a, d, s, bk, s, op.GMB)
			ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
			addRHS(b, d, -ieq)
			addRHS(b, s, +ieq)
			// MOS terminal capacitances as backward-Euler companions
			// referenced to the previous accepted step (Meyer model).
			stampMOSCap(a, b, l, g, s, op.CGS, xPrev, h)
			stampMOSCap(a, b, l, g, d, op.CGD, xPrev, h)
			stampMOSCap(a, b, l, g, bk, op.CGB, xPrev, h)
			stampMOSCap(a, b, l, d, bk, op.CDB, xPrev, h)
			stampMOSCap(a, b, l, s, bk, op.CSB, xPrev, h)
		}
	}
}

// stampMOSCap adds a BE companion for a (possibly zero) device capacitance.
func stampMOSCap(a *la.Matrix, b []float64, l *Layout, p, n int, c float64, xPrev []float64, h float64) {
	if c <= 0 {
		return
	}
	geq := c / h
	vPrev := nodeV(xPrev, p) - nodeV(xPrev, n)
	ieq := geq * vPrev
	stampConductance(a, p, n, geq)
	addRHS(b, p, ieq)
	addRHS(b, n, -ieq)
}

// sourceValue evaluates an independent source waveform at time t.
func sourceValue(s *netlist.Source, t float64) float64 {
	switch s.Kind {
	case netlist.SrcDC:
		return s.DC
	case netlist.SrcSin:
		if t < s.Sin.Delay {
			return s.Sin.VO
		}
		ph := s.Sin.Phase * math.Pi / 180
		return s.Sin.VO + s.Sin.VA*math.Sin(2*math.Pi*s.Sin.Freq*(t-s.Sin.Delay)+ph)
	case netlist.SrcPulse:
		p := s.Pulse
		if t < p.TD {
			return p.V1
		}
		tm := t - p.TD
		if p.PER > 0 {
			tm = math.Mod(tm, p.PER)
		}
		switch {
		case tm < p.TR:
			return p.V1 + (p.V2-p.V1)*tm/p.TR
		case tm < p.TR+p.PW:
			return p.V2
		case tm < p.TR+p.PW+p.TF:
			return p.V2 + (p.V1-p.V2)*(tm-p.TR-p.PW)/p.TF
		default:
			return p.V1
		}
	case netlist.SrcPWL:
		pts := s.PWL
		if len(pts) == 0 {
			return s.DC
		}
		if t <= pts[0].T {
			return pts[0].V
		}
		for i := 1; i < len(pts); i++ {
			if t <= pts[i].T {
				frac := (t - pts[i-1].T) / (pts[i].T - pts[i-1].T)
				return pts[i-1].V + frac*(pts[i].V-pts[i-1].V)
			}
		}
		return pts[len(pts)-1].V
	}
	return s.DC
}
