package sim

import (
	"fmt"
	"math"

	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// Integrator selects the transient integration method.
type Integrator int

const (
	Trapezoidal Integrator = iota
	BackwardEuler
)

// TranOpts configures a transient run.
type TranOpts struct {
	TStop  float64
	TStep  float64
	Method Integrator
	// Two-phase non-overlapping clock for switched-capacitor circuits:
	// phase 1 occupies [0, T/2−Tnov), phase 2 occupies [T/2, T−Tnov).
	// ClockPeriod 0 disables the clock (all clocked switches open).
	ClockPeriod float64
	NonOverlap  float64
	MaxNewton   int
	// Gmin is the floor conductance from every node to ground, matching
	// DCOpts.Gmin (default 1e-12 S).
	Gmin float64
	// NewtonReuse enables modified-Newton (Shamanskii) iteration: within
	// a time step the Jacobian factorization from the first iteration is
	// reused while the step norm keeps contracting, and refreshed on slow
	// convergence. A step that fails to converge is retried with plain
	// Newton before the usual halving rescue. Off (the default) the
	// solver path is bit-identical to the historical full-Newton loop.
	NewtonReuse bool
	// UseICs starts from the given node voltages instead of a DC solve.
	UseICs bool
	ICs    map[string]float64
}

// TranResult holds sampled waveforms.
type TranResult struct {
	T []float64
	V map[string][]float64
}

// Waveform returns a node waveform.
func (r *TranResult) Waveform(node string) ([]float64, error) {
	if isGround(node) {
		w := make([]float64, len(r.T))
		return w, nil
	}
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("sim: no node %q in transient solution", node)
	}
	return v, nil
}

// At samples a waveform at time t with linear interpolation.
func (r *TranResult) At(node string, t float64) (float64, error) {
	w, err := r.Waveform(node)
	if err != nil {
		return 0, err
	}
	if len(r.T) == 0 {
		return 0, fmt.Errorf("sim: empty transient result")
	}
	if t <= r.T[0] {
		return w[0], nil
	}
	if t >= r.T[len(r.T)-1] {
		return w[len(w)-1], nil
	}
	lo, hi := 0, len(r.T)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - r.T[lo]) / (r.T[hi] - r.T[lo])
	return w[lo] + frac*(w[hi]-w[lo]), nil
}

// ClockPhase reports which non-overlapping phase is active at time t.
// Returns 0 during non-overlap gaps.
func ClockPhase(t, period, nonOverlap float64) int {
	if period <= 0 {
		return 0
	}
	tm := math.Mod(t, period)
	if tm < 0 {
		tm += period
	}
	half := period / 2
	switch {
	case tm < half-nonOverlap:
		return 1
	case tm >= half && tm < period-nonOverlap:
		return 2
	default:
		return 0
	}
}

// capRun carries the companion-model memory of one capacitor across the
// accepted steps of a transient run.
type capRun struct {
	capElem
	v float64 // voltage at previous accepted step
	i float64 // current at previous accepted step (for trapezoidal)
}

// tranRun holds everything one transient analysis reuses across steps:
// the capacitor companion memory and the step/iteration scratch buffers.
// An accepted step performs no heap allocation; only the rare halving
// rescue path allocates its midpoint state.
type tranRun struct {
	cc   *compiled
	opts TranOpts
	caps []capRun

	stepA *la.Matrix // step baseline: phase stamps + gmin + companions + sources
	stepB []float64
	a     *la.Matrix // per-Newton-iteration system
	b     []float64
	xNew  []float64
	r     []float64 // modified-Newton residual scratch
	d     []float64 // modified-Newton step scratch
	lu    *kernelLU

	// Modified-Newton factorization state, carried across time steps:
	// within a clock phase at a fixed step width the Jacobian drifts
	// slowly, so the stale factor keeps converging for several steps.
	haveFactor bool
	reuseCount int
	lastPhase  int
	lastH      float64
}

func newTranRun(cc *compiled, opts TranOpts, x0 []float64) *tranRun {
	n := cc.layout.Size
	tr := &tranRun{
		cc: cc, opts: opts,
		stepA: la.NewMatrix(n, n), stepB: make([]float64, n),
		a: la.NewMatrix(n, n), b: make([]float64, n),
		xNew: make([]float64, n),
		r:    make([]float64, n), d: make([]float64, n),
		lu: newKernelLU(cc),
	}
	tr.caps = make([]capRun, len(cc.capElems))
	for i, ce := range cc.capElems {
		tr.caps[i] = capRun{capElem: ce, v: nodeV(x0, ce.p) - nodeV(x0, ce.n)}
	}
	return tr
}

// solveStep runs damped Newton for one step ending at time t with width
// h, writing the converged state into dst (must not alias xFrom). The
// step baseline — phase conductances, gmin shunts, capacitor companions,
// sources at t — is assembled once; each Newton iteration copies it and
// stamps only the MOS devices. The capacitor memory is not touched.
func (tr *tranRun) solveStep(dst, xFrom []float64, t, h float64, method Integrator) error {
	cc := tr.cc
	l := cc.layout
	phase := ClockPhase(t, tr.opts.ClockPeriod, tr.opts.NonOverlap)
	copy(tr.stepA.Data, cc.phaseBase(phase).Data)
	for i := 0; i < len(l.Nodes); i++ {
		tr.stepA.Add(i, i, tr.opts.Gmin)
	}
	for i := range tr.stepB {
		tr.stepB[i] = 0
	}
	for ci := range tr.caps {
		st := &tr.caps[ci]
		var geq, ieq float64
		switch method {
		case Trapezoidal:
			geq = 2 * st.c / h
			ieq = geq*st.v + st.i
		case BackwardEuler:
			geq = st.c / h
			ieq = geq * st.v
		}
		stampConductance(tr.stepA, st.p, st.n, geq)
		addRHS(tr.stepB, st.p, ieq)
		addRHS(tr.stepB, st.n, -ieq)
	}
	stampSources(cc, tr.stepB, t)
	copy(dst, xFrom)
	if phase != tr.lastPhase || math.Abs(h-tr.lastH) > 1e-9*h {
		// Switch conductances or companion weights changed: any carried
		// factorization is far from the new Jacobian. The width test is
		// tolerant because the fixed-step driver's t−tPrev jitters by an
		// ulp between steps; a same-width stale factor is as good as ever.
		tr.haveFactor = false
	}
	tr.lastPhase, tr.lastH = phase, h
	err := tr.newtonLoop(dst, xFrom, t, h, tr.opts.NewtonReuse)
	if err != nil && tr.opts.NewtonReuse {
		// Divergence fallback: a stale factorization can stall on hard
		// steps; rerun the step with plain full Newton before the caller
		// resorts to halving.
		tr.lu.fallbacks++
		tr.haveFactor = false
		copy(dst, xFrom)
		err = tr.newtonLoop(dst, xFrom, t, h, false)
	}
	return err
}

// newtonLoop runs the damped Newton iteration of one step against the
// already-assembled step baseline. With reuse enabled the Jacobian is
// factored on the first iteration and then reused (delta solves against
// the stale factor) while the damped step norm contracts; it is
// refreshed when convergence slows or after several reuses.
func (tr *tranRun) newtonLoop(dst, xFrom []float64, t, h float64, reuse bool) error {
	cc := tr.cc
	l := cc.layout
	worstIdx, worstDelta := -1, 0.0
	lastStep, prevStep := math.Inf(1), math.Inf(1)
	for it := 0; it < tr.opts.MaxNewton; it++ {
		if !reuse {
			copy(tr.a.Data, tr.stepA.Data)
			copy(tr.b, tr.stepB)
			stampMOSTran(cc, tr.a, tr.b, dst, xFrom, h)
			if err := tr.lu.factor(tr.a); err != nil {
				return fmt.Errorf("sim: singular matrix at t=%g: %w", t, err)
			}
			tr.haveFactor = true
			tr.reuseCount = 0
			tr.lu.solveInto(tr.xNew, tr.b)
		} else {
			// Refresh when no factorization is carried, after a bounded
			// number of stale solves, or when the iteration stops
			// contracting (the stale factor has drifted too far).
			refactor := !tr.haveFactor || tr.reuseCount >= 50 || lastStep > 0.5*prevStep
			if refactor {
				copy(tr.a.Data, tr.stepA.Data)
				copy(tr.b, tr.stepB)
				stampMOSTran(cc, tr.a, tr.b, dst, xFrom, h)
				if err := tr.lu.factor(tr.a); err != nil {
					return fmt.Errorf("sim: singular matrix at t=%g: %w", t, err)
				}
				tr.haveFactor = true
				tr.reuseCount = 0
				// Fresh factor: the direct solve equals the delta solve
				// and skips the residual mat-vec.
				tr.lu.solveInto(tr.xNew, tr.b)
			} else {
				// Stale factor: only the residual is needed, and it is
				// evaluated directly (residualTran) — no matrix assembly.
				tr.reuseCount++
				tr.lu.reused++
				tr.residualTran(tr.r, dst, xFrom, h)
				tr.lu.solveInto(tr.d, tr.r)
				for i := range tr.xNew {
					tr.xNew[i] = dst[i] - tr.d[i]
				}
			}
		}
		sol := tr.xNew
		maxStep := 0.0
		maxIdx := -1
		for i := 0; i < len(l.Nodes); i++ {
			if d := math.Abs(sol[i] - dst[i]); d > maxStep {
				maxStep = d
				maxIdx = i
			}
		}
		worstIdx, worstDelta = maxIdx, maxStep
		prevStep, lastStep = lastStep, maxStep
		// Damp large Newton excursions (a hard residue step can throw
		// devices across regions; full steps then oscillate).
		alpha := 1.0
		const vLimit = 0.3
		if maxStep > vLimit {
			alpha = vLimit / maxStep
		}
		for i := range sol {
			dst[i] += alpha * (sol[i] - dst[i])
		}
		if alpha == 1 && maxStep < 1e-6+1e-4*la.NormInf(dst) {
			return nil
		}
	}
	worst := ""
	if worstIdx >= 0 {
		worst = l.Nodes[worstIdx]
	}
	return &ConvergenceError{
		Analysis: "transient", Time: t, Iterations: tr.opts.MaxNewton,
		WorstNode: worst, WorstDelta: worstDelta,
	}
}

// residualTran evaluates the nonlinear step residual f(x) at x into r
// without assembling the Newton system. In A(x)·x − b(x) each MOS
// companion's matrix terms cancel algebraically against its RHS
// contribution, leaving the raw drain current, and each Meyer-cap BE
// companion reduces to geq·(Δv − Δvprev): so
// f(x) = stepA·x − stepB + device currents. Stale-factor delta solves
// only need this residual, which is what makes skipping the full stamp
// on reuse iterations legal.
func (tr *tranRun) residualTran(r, x, xPrev []float64, h float64) {
	cc := tr.cc
	cc.symBase.MulVecInto(r, tr.stepA, x)
	for i := range r {
		r[i] -= tr.stepB[i]
	}
	var op device.OP
	pb, base := cc.mosPB, cc.mosBase
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
		pb.EvalInto(&op, base+i, vd, vg, vs, vb)
		addRHS(r, m.d, op.ID)
		addRHS(r, m.s, -op.ID)
		capResidual(r, m.g, m.s, op.CGS, x, xPrev, h)
		capResidual(r, m.g, m.d, op.CGD, x, xPrev, h)
		capResidual(r, m.g, m.b, op.CGB, x, xPrev, h)
		capResidual(r, m.d, m.b, op.CDB, x, xPrev, h)
		capResidual(r, m.s, m.b, op.CSB, x, xPrev, h)
	}
}

// capResidual adds a BE device-capacitance current c/h·(Δv − Δvprev) to
// the residual (the algebraic reduction of stampMOSCap's companion).
func capResidual(r []float64, p, n int, c float64, x, xPrev []float64, h float64) {
	if c <= 0 {
		return
	}
	i := (c / h) * ((nodeV(x, p) - nodeV(x, n)) - (nodeV(xPrev, p) - nodeV(xPrev, n)))
	addRHS(r, p, i)
	addRHS(r, n, -i)
}

// commitCaps advances the capacitor companion memory to the accepted
// state xNew.
func (tr *tranRun) commitCaps(xNew []float64, h float64, method Integrator) {
	for ci := range tr.caps {
		st := &tr.caps[ci]
		vNew := nodeV(xNew, st.p) - nodeV(xNew, st.n)
		switch method {
		case Trapezoidal:
			st.i = (2*st.c/h)*(vNew-st.v) - st.i
		case BackwardEuler:
			st.i = (st.c / h) * (vNew - st.v)
		}
		st.v = vNew
	}
}

// advance integrates from tPrev to tPrev+h into dst, recursively halving
// the step with backward Euler when Newton cannot converge (sharp source
// edges and region changes are the usual culprits).
func (tr *tranRun) advance(xFrom, dst []float64, tPrev, h float64, method Integrator, depth int) error {
	err := tr.solveStep(dst, xFrom, tPrev+h, h, method)
	if err == nil {
		tr.commitCaps(dst, h, method)
		return nil
	}
	if depth >= 10 {
		return err
	}
	xMid := make([]float64, len(dst))
	if err := tr.advance(xFrom, xMid, tPrev, h/2, BackwardEuler, depth+1); err != nil {
		return err
	}
	return tr.advance(xMid, dst, tPrev+h/2, h/2, BackwardEuler, depth+1)
}

// Tran runs a fixed-step transient analysis. Each step solves the
// nonlinear network by Newton iteration with capacitor companion models
// (trapezoidal by default). Clocked switches follow the two-phase clock.
func Tran(c *netlist.Circuit, opts TranOpts) (*TranResult, error) {
	cc, err := compile(c)
	if err != nil {
		return nil, err
	}
	return tranCompiled(cc, opts)
}

// tranCompiled is the compiled-circuit transient solver. The initial
// operating point runs on the same compilation, so a transient analysis
// compiles its netlist exactly once (Batch enters here with a shared,
// already-warm compilation).
func tranCompiled(cc *compiled, opts TranOpts) (*TranResult, error) {
	if opts.TStop <= 0 || opts.TStep <= 0 || opts.TStep > opts.TStop {
		return nil, fmt.Errorf("sim: bad transient window step=%g stop=%g", opts.TStep, opts.TStop)
	}
	if opts.MaxNewton == 0 {
		opts.MaxNewton = 80
	}
	if opts.Gmin == 0 {
		opts.Gmin = 1e-12
	}
	l := cc.layout
	n := l.Size

	// Initial state: DC operating point with the t=0 clock phase, or ICs.
	x := make([]float64, n)
	if opts.UseICs {
		for node, v := range opts.ICs {
			if i := l.idx(node); i >= 0 {
				x[i] = v
			}
		}
	} else {
		dc, err := opCompiled(cc, DCOpts{SwitchPhase: ClockPhase(0, opts.ClockPeriod, opts.NonOverlap), NewtonReuse: opts.NewtonReuse})
		if err != nil {
			return nil, fmt.Errorf("sim: transient initial OP: %w", err)
		}
		copy(x, dc.x)
	}

	run := newTranRun(cc, opts, x)
	defer run.lu.flush()

	steps := int(math.Round(opts.TStop/opts.TStep)) + 1
	res := &TranResult{T: make([]float64, 0, steps), V: map[string][]float64{}}
	// Recorder slots pair each waveform with its MNA row so the per-step
	// record loop never iterates a map; every slice (res.T included) is
	// preallocated to exactly `steps` samples, so appends never grow.
	type recSlot struct {
		name string
		idx  int
		w    []float64
	}
	slots := make([]recSlot, 0, len(l.NodeIndex))
	for name, i := range l.NodeIndex {
		slots = append(slots, recSlot{name, i, make([]float64, 0, steps)})
	}
	record := func(t float64, x []float64) {
		res.T = append(res.T, t)
		for si := range slots {
			slots[si].w = append(slots[si].w, x[slots[si].idx])
		}
	}
	record(0, x)

	xNext := make([]float64, n)
	h := opts.TStep
	tPrev := 0.0
	prevPhase := ClockPhase(0, opts.ClockPeriod, opts.NonOverlap)
	for k := 1; k < steps; k++ {
		t := float64(k) * h
		// When the window is not an integer multiple of the step, the
		// rounded step count can push the last nominal sample past TStop;
		// clamp it so the recorded window never exceeds the request and
		// the final step simply shortens.
		if t > opts.TStop {
			t = opts.TStop
		}
		hk := t - tPrev
		if hk <= 0 {
			break
		}
		phase := ClockPhase(t, opts.ClockPeriod, opts.NonOverlap)
		// Trapezoidal integration rings forever if started with a wrong
		// capacitor-current state; take a damping backward-Euler step at
		// t=0 and across every clock-phase discontinuity, as production
		// simulators do after breakpoints.
		method := opts.Method
		if k == 1 || phase != prevPhase {
			method = BackwardEuler
		}
		prevPhase = phase
		if err := run.advance(x, xNext, tPrev, hk, method, 0); err != nil {
			return nil, err
		}
		x, xNext = xNext, x
		record(t, x)
		tPrev = t
	}
	for _, s := range slots {
		res.V[s.name] = s.w
	}
	return res, nil
}

// stampMOSCap adds a BE companion for a (possibly zero) device capacitance.
func stampMOSCap(a *la.Matrix, b []float64, p, n int, c float64, xPrev []float64, h float64) {
	if c <= 0 {
		return
	}
	geq := c / h
	vPrev := nodeV(xPrev, p) - nodeV(xPrev, n)
	ieq := geq * vPrev
	stampConductance(a, p, n, geq)
	addRHS(b, p, ieq)
	addRHS(b, n, -ieq)
}

// sourceValue evaluates an independent source waveform at time t.
func sourceValue(s *netlist.Source, t float64) float64 {
	switch s.Kind {
	case netlist.SrcDC:
		return s.DC
	case netlist.SrcSin:
		if t < s.Sin.Delay {
			return s.Sin.VO
		}
		ph := s.Sin.Phase * math.Pi / 180
		return s.Sin.VO + s.Sin.VA*math.Sin(2*math.Pi*s.Sin.Freq*(t-s.Sin.Delay)+ph)
	case netlist.SrcPulse:
		p := s.Pulse
		if t < p.TD {
			return p.V1
		}
		tm := t - p.TD
		if p.PER > 0 {
			tm = math.Mod(tm, p.PER)
		}
		switch {
		case tm < p.TR:
			return p.V1 + (p.V2-p.V1)*tm/p.TR
		case tm < p.TR+p.PW:
			return p.V2
		case tm < p.TR+p.PW+p.TF:
			return p.V2 + (p.V1-p.V2)*(tm-p.TR-p.PW)/p.TF
		default:
			return p.V1
		}
	case netlist.SrcPWL:
		pts := s.PWL
		if len(pts) == 0 {
			return s.DC
		}
		if t <= pts[0].T {
			return pts[0].V
		}
		for i := 1; i < len(pts); i++ {
			if t <= pts[i].T {
				// Coincident time points encode an instantaneous step: on
				// an exact hit, the last point at that time wins, and a
				// zero-width segment never divides by zero (which would
				// propagate NaN into the solve).
				if t == pts[i].T {
					for i+1 < len(pts) && pts[i+1].T == pts[i].T {
						i++
					}
					return pts[i].V
				}
				dt := pts[i].T - pts[i-1].T
				if dt <= 0 {
					return pts[i].V
				}
				frac := (t - pts[i-1].T) / dt
				return pts[i-1].V + frac*(pts[i].V-pts[i-1].V)
			}
		}
		return pts[len(pts)-1].V
	}
	return s.DC
}
