// counters.go exposes kernel-level observability: how many numeric
// factorizations the Newton loops performed, how many solves reused a
// stale factorization (Shamanskii), how often reuse diverged and fell
// back to full Newton, how often the static-ordered pivot path hit a
// zero pivot and dropped to partial pivoting, and the distribution of
// batch widths. The counters are package-global atomics, but the Newton
// hot loops never touch them: each analysis accumulates into plain
// int64 fields on its kernelLU and flushes once at analysis end.
package sim

import (
	"sync/atomic"

	"pipesyn/internal/la"
)

// KernelBatchWidthBounds are the upper bounds of the batch-width
// histogram buckets; widths above the last bound land in an implicit
// +Inf bucket. Exposed so /metrics can render cumulative buckets.
var KernelBatchWidthBounds = [...]int64{1, 2, 4, 8, 16}

const kernelWidthBuckets = len(KernelBatchWidthBounds) + 1

// KernelStats is a snapshot of the kernel counters since process start.
type KernelStats struct {
	Factorizations   int64 // numeric factorizations performed
	ReusedSolves     int64 // Newton solves served by a stale factorization
	ReuseFallbacks   int64 // reuse divergences that re-ran with full Newton
	OrderedFallbacks int64 // static-order factorizations that hit a zero pivot
	BatchWidths      [kernelWidthBuckets]int64
	BatchWidthSum    int64 // sum of observed widths (histogram _sum)
}

var kstats struct {
	factorizations   atomic.Int64
	reusedSolves     atomic.Int64
	reuseFallbacks   atomic.Int64
	orderedFallbacks atomic.Int64
	batchWidths      [kernelWidthBuckets]atomic.Int64
	batchWidthSum    atomic.Int64
}

// ReadKernelStats returns the current counter values.
func ReadKernelStats() KernelStats {
	var s KernelStats
	s.Factorizations = kstats.factorizations.Load()
	s.ReusedSolves = kstats.reusedSolves.Load()
	s.ReuseFallbacks = kstats.reuseFallbacks.Load()
	s.OrderedFallbacks = kstats.orderedFallbacks.Load()
	for i := range s.BatchWidths {
		s.BatchWidths[i] = kstats.batchWidths[i].Load()
	}
	s.BatchWidthSum = kstats.batchWidthSum.Load()
	return s
}

// observeBatchWidth records one NewBatch of the given width. Cold path.
func observeBatchWidth(w int) {
	b := len(KernelBatchWidthBounds)
	for i, ub := range KernelBatchWidthBounds {
		if int64(w) <= ub {
			b = i
			break
		}
	}
	kstats.batchWidths[b].Add(1)
	kstats.batchWidthSum.Add(int64(w))
}

// kernelLU is the Newton loops' linear solver: a static-ordered sparse
// factorization when the compiled circuit admits one, with a
// partial-pivot fallback. The ordered path skips the per-factor pivot
// search (and its occupancy bookkeeping), which is the bulk of the
// factor cost on MNA-sized systems; if a numeric zero pivot appears
// under the fixed order, the analysis permanently drops to partial
// pivoting, whose pivot search is authoritative for genuine
// singularity. It also carries the locally accumulated counters.
type kernelLU struct {
	ord    *la.SparseLU // static-ordered solver, nil when no order exists
	pp     *la.SparseLU // partial-pivot solver (always present)
	live   *la.SparseLU // solver holding the current factorization
	useOrd bool

	factors, reused, fallbacks, ordFallbacks int64
}

func newKernelLU(cc *compiled) *kernelLU {
	lu := &kernelLU{pp: la.NewSparseLU(cc.sym)}
	if cc.symOrd != nil {
		lu.ord = la.NewSparseLU(cc.symOrd)
	}
	lu.reset()
	return lu
}

// reset re-arms the ordered fast path for a new top-level analysis, so a
// zero-pivot fallback in one analysis never leaks into the next (a batch
// shares DC workspaces across candidates, and load order must not change
// any candidate's result).
func (lu *kernelLU) reset() {
	lu.useOrd = lu.ord != nil
	if lu.useOrd {
		lu.live = lu.ord
	} else {
		lu.live = lu.pp
	}
}

// factor refreshes the numeric factorization of a.
func (lu *kernelLU) factor(a *la.Matrix) error {
	lu.factors++
	if lu.useOrd {
		if err := lu.ord.NumericFactor(a); err == nil {
			lu.live = lu.ord
			return nil
		}
		lu.ordFallbacks++
		lu.useOrd = false
		lu.live = lu.pp
	}
	return lu.pp.NumericFactor(a)
}

// solveInto solves against the current factorization.
func (lu *kernelLU) solveInto(x, b []float64) { lu.live.SolveInto(x, b) }

// flush publishes the locally accumulated counts to the package atomics
// and zeroes them. Called once per top-level analysis.
func (lu *kernelLU) flush() {
	if lu.factors != 0 {
		kstats.factorizations.Add(lu.factors)
		lu.factors = 0
	}
	if lu.reused != 0 {
		kstats.reusedSolves.Add(lu.reused)
		lu.reused = 0
	}
	if lu.fallbacks != 0 {
		kstats.reuseFallbacks.Add(lu.fallbacks)
		lu.fallbacks = 0
	}
	if lu.ordFallbacks != 0 {
		kstats.orderedFallbacks.Add(lu.ordFallbacks)
		lu.ordFallbacks = 0
	}
}
