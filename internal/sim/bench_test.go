package sim

import (
	"testing"

	"pipesyn/internal/netlist"
)

const benchAmpDeck = `* two-stage amp bench
V1 vdd 0 DC 3.3
VIN inp 0 DC 1.4 AC 1
M1 x1 inn tail 0 nch W=20u L=0.5u
M2 x2 inp tail 0 nch W=20u L=0.5u
M3 x1 x1 vdd vdd pch W=40u L=0.5u
M4 x2 x1 vdd vdd pch W=40u L=0.5u
M5 out x2 vdd vdd pch W=60u L=0.35u
M6 out bn 0 0 nch W=20u L=1u
M7 bn bn 0 0 nch W=5u L=1u
M8 tail bn 0 0 nch W=20u L=1u
IB vdd bn DC 20u
RZ x2 z 500
CC z out 0.5p
RFB out inn 1
CL out 0 1p
.model nch nmos (vto=0.45 kp=180u)
.model pch pmos (vto=-0.5 kp=60u)
`

func benchCircuit(b *testing.B) *netlist.Circuit {
	b.Helper()
	c, err := netlist.Parse(benchAmpDeck)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkOPTwoStageAmp(b *testing.B) {
	c := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OP(c, DCOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACTwoStageAmp(b *testing.B) {
	c := benchCircuit(b)
	op, err := OP(c, DCOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AC(c, op, ACOpts{FStart: 1e3, FStop: 10e9, PointsPerDecade: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranTwoStageAmp(b *testing.B) {
	c := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tran(c, TranOpts{TStop: 20e-9, TStep: 50e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseTwoStageAmp(b *testing.B) {
	c := benchCircuit(b)
	op, err := OP(c, DCOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Noise(c, op, NoiseOpts{Output: "out", FStart: 1e3, FStop: 10e9, PointsPerDecade: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
