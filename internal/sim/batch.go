// batch.go runs B candidate sizings of one topology through a single
// warm kernel. The expensive per-circuit work — node layout, sparsity
// analysis, symbolic factorization, solver workspaces — depends only on
// the structure (element names, types, connectivity), which all batch
// members share. Each candidate keeps its own packed parameter state
// (device params, capacitor values, source waveforms, assembled constant
// stamp), and selecting a candidate is a handful of pointer swaps.
package sim

import (
	"fmt"

	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// batchCand is one candidate's value state, laid out as parallel arrays
// aligned with the shared kernel's element views (structure-of-arrays
// across the batch: candidate i's parameters live in cands[i], indexed
// identically for every i).
type batchCand struct {
	circuit *netlist.Circuit
	views   kernelViews
	mos     map[string]device.MOSParams
	sw      map[string]device.SwitchParams
	phaseG  map[int]*la.Matrix
}

// Batch evaluates structurally identical candidate circuits on one
// shared compiled kernel. Construct with NewBatch; the candidate index
// passed to OP/Tran/AC selects which sizing the kernel solves.
//
// A Batch is not safe for concurrent use: the candidates share scratch
// workspaces by design.
type Batch struct {
	cc    *compiled
	cands []batchCand
	cur   int
}

// NewBatch compiles the first circuit and binds the remaining ones as
// candidates of the same topology. Every circuit must agree with the
// first in element count, names, types, and node connectivity; values
// (R/C, device geometry, model cards, source levels) are free to differ.
func NewBatch(circuits []*netlist.Circuit) (*Batch, error) {
	if len(circuits) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	cc, err := compile(circuits[0])
	if err != nil {
		return nil, err
	}
	bt := &Batch{cc: cc, cands: make([]batchCand, len(circuits)), cur: 0}
	if cc.phaseG == nil {
		cc.phaseG = map[int]*la.Matrix{}
	}
	bt.cands[0] = batchCand{
		circuit: circuits[0],
		views: kernelViews{
			mosElems: cc.mosElems, capElems: cc.capElems,
			swElems: cc.swElems, srcElems: cc.srcElems,
			constG: cc.constG,
		},
		mos: cc.mos, sw: cc.switches, phaseG: cc.phaseG,
	}
	allParams := make([][]device.MOSParams, len(circuits))
	allParams[0] = orderedMOSParams(circuits[0], cc.mos)
	for i := 1; i < len(circuits); i++ {
		c := circuits[i]
		if err := sameStructure(circuits[0], c); err != nil {
			return nil, fmt.Errorf("sim: batch candidate %d: %w", i, err)
		}
		mos, sw, err := resolveDevices(c)
		if err != nil {
			return nil, fmt.Errorf("sim: batch candidate %d: %w", i, err)
		}
		kv, mp := buildViews(c, cc.layout, mos, sw)
		allParams[i] = mp
		bt.cands[i] = batchCand{
			circuit: c,
			views:   kv,
			mos:     mos, sw: sw,
			phaseG: map[int]*la.Matrix{},
		}
	}
	// Pack every candidate's MOS parameters into one shared SoA slab,
	// candidate-major, in a single pass: loading candidate i then swaps
	// only the flat base offset, and its Newton iterations stream the
	// contiguous region [i·D, (i+1)·D).
	devs := len(cc.mosElems)
	pb := device.NewParamsBatch(len(circuits), devs)
	for i, mp := range allParams {
		for j := range mp {
			pb.Set(i, j, &mp[j])
		}
	}
	for i := range bt.cands {
		bt.cands[i].views.mosPB = pb
		bt.cands[i].views.mosBase = i * devs
	}
	// load(0) is a no-op (cur starts at 0), so install candidate 0's view
	// of the shared slab directly.
	cc.mosPB, cc.mosBase = pb, 0
	observeBatchWidth(len(circuits))
	return bt, nil
}

// orderedMOSParams returns a circuit's MOS parameters in element order —
// the same order buildViews appends mosElems.
func orderedMOSParams(c *netlist.Circuit, mos map[string]device.MOSParams) []device.MOSParams {
	var mp []device.MOSParams
	for _, e := range c.Elements {
		if e.Type == netlist.MOS {
			mp = append(mp, mos[e.Name])
		}
	}
	return mp
}

// sameStructure checks that two circuits share a topology: identical
// element sequence by name, type, and node connectivity. Model and value
// differences are allowed — they are exactly what a batch varies.
func sameStructure(ref, c *netlist.Circuit) error {
	if len(ref.Elements) != len(c.Elements) {
		return fmt.Errorf("element count %d differs from reference %d", len(c.Elements), len(ref.Elements))
	}
	for i, e := range c.Elements {
		r := ref.Elements[i]
		if e.Name != r.Name || e.Type != r.Type {
			return fmt.Errorf("element %d is %s(%v), reference has %s(%v)", i, e.Name, e.Type, r.Name, r.Type)
		}
		if len(e.Nodes) != len(r.Nodes) {
			return fmt.Errorf("element %s connects %d nodes, reference %d", e.Name, len(e.Nodes), len(r.Nodes))
		}
		for j, n := range e.Nodes {
			if n != r.Nodes[j] {
				return fmt.Errorf("element %s node %d is %q, reference %q", e.Name, j, n, r.Nodes[j])
			}
		}
	}
	return nil
}

// Len returns the number of candidates in the batch.
func (bt *Batch) Len() int { return len(bt.cands) }

// load installs candidate i's value state into the shared kernel.
func (bt *Batch) load(i int) error {
	if i < 0 || i >= len(bt.cands) {
		return fmt.Errorf("sim: batch index %d out of range [0,%d)", i, len(bt.cands))
	}
	if i == bt.cur {
		return nil
	}
	cand := &bt.cands[i]
	cc := bt.cc
	cc.circuit = cand.circuit
	cc.mos = cand.mos
	cc.switches = cand.sw
	cc.setViews(cand.views)
	cc.phaseG = cand.phaseG
	bt.cur = i
	return nil
}

// OP solves candidate i's operating point on the warm kernel. The result
// is bit-identical to sim.OP on the same circuit.
func (bt *Batch) OP(i int, opts DCOpts) (*DCResult, error) {
	if err := bt.load(i); err != nil {
		return nil, err
	}
	return opCompiled(bt.cc, opts)
}

// Tran runs candidate i's transient on the warm kernel. The result is
// bit-identical to sim.Tran on the same circuit.
func (bt *Batch) Tran(i int, opts TranOpts) (*TranResult, error) {
	if err := bt.load(i); err != nil {
		return nil, err
	}
	return tranCompiled(bt.cc, opts)
}

// AC runs candidate i's small-signal sweep about the given operating
// point. The result is bit-identical to sim.AC on the same circuit.
func (bt *Batch) AC(i int, op *DCResult, opts ACOpts) (*ACResult, error) {
	if err := bt.load(i); err != nil {
		return nil, err
	}
	return acCompiled(bt.cc, op, opts)
}
