package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// ACOpts configures the small-signal frequency sweep.
type ACOpts struct {
	FStart, FStop   float64
	PointsPerDecade int
	SwitchPhase     int // clock phase considered active (matches the DC bias point)
}

// ACResult holds the complex node voltages over the sweep.
type ACResult struct {
	Freqs []float64
	V     map[string][]complex128
}

// Transfer returns the complex response at a node across the sweep; the
// stimulus normalization is whatever AC magnitude the deck's sources carry
// (conventionally 1).
func (r *ACResult) Transfer(node string) ([]complex128, error) {
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("sim: no node %q in AC solution", node)
	}
	return v, nil
}

// GainPhase converts a transfer vector into magnitude (dB) and unwrapped
// phase (degrees) arrays.
func GainPhase(h []complex128) (magDB, phaseDeg []float64) {
	magDB = make([]float64, len(h))
	phaseDeg = make([]float64, len(h))
	prev := 0.0
	for i, v := range h {
		magDB[i] = 20 * math.Log10(cmplx.Abs(v)+1e-300)
		ph := cmplx.Phase(v) * 180 / math.Pi
		if i > 0 {
			for ph-prev > 180 {
				ph -= 360
			}
			for ph-prev < -180 {
				ph += 360
			}
		}
		phaseDeg[i] = ph
		prev = ph
	}
	return magDB, phaseDeg
}

// Metrics extracted from an AC sweep of a gain path.
type ACMetrics struct {
	DCGainDB    float64
	UnityGainHz float64
	PhaseMargin float64
	F3DBHz      float64
}

// Characterize extracts loop metrics from a node's transfer response.
func (r *ACResult) Characterize(node string) (ACMetrics, error) {
	h, err := r.Transfer(node)
	if err != nil {
		return ACMetrics{}, err
	}
	magDB, phase := GainPhase(h)
	var m ACMetrics
	m.DCGainDB = magDB[0]
	target3 := magDB[0] - 20*math.Log10(math.Sqrt2)
	for i := 1; i < len(magDB); i++ {
		if m.F3DBHz == 0 && magDB[i-1] >= target3 && magDB[i] < target3 {
			m.F3DBHz = logInterp(r.Freqs[i-1], r.Freqs[i], magDB[i-1], magDB[i], target3)
		}
		if m.UnityGainHz == 0 && magDB[i-1] >= 0 && magDB[i] < 0 {
			m.UnityGainHz = logInterp(r.Freqs[i-1], r.Freqs[i], magDB[i-1], magDB[i], 0)
			frac := (math.Log10(m.UnityGainHz) - math.Log10(r.Freqs[i-1])) /
				(math.Log10(r.Freqs[i]) - math.Log10(r.Freqs[i-1]))
			phAt := phase[i-1] + frac*(phase[i]-phase[i-1])
			m.PhaseMargin = 180 + phAt
			for m.PhaseMargin > 360 {
				m.PhaseMargin -= 360
			}
		}
	}
	return m, nil
}

func logInterp(f0, f1, m0, m1, target float64) float64 {
	if m0 == m1 {
		return f0
	}
	frac := (m0 - target) / (m0 - m1)
	return math.Pow(10, math.Log10(f0)+frac*(math.Log10(f1)-math.Log10(f0)))
}

// acEntry is one nonzero capacitive position in the small-signal system,
// paired with the conductance sharing that position so the complex entry
// can be rewritten (not accumulated) at each frequency.
type acEntry struct {
	idx  int // flat index into the dense matrix
	g, c float64
}

// acSweep is the reusable (G + jωC) assembler shared by the AC and noise
// sweeps. The complex matrix is seeded with complex(G, 0) once; setFreq
// then rewrites only the sparse capacitive entries, so a sweep does no
// per-frequency matrix assembly and no allocation. Refactoring at each
// frequency point runs on the compiled circuit's symbolic analysis
// (bit-identical to the dense complex LU).
type acSweep struct {
	a       *la.CMatrix
	entries []acEntry
	lu      *la.CSparseLU
}

func newACSweep(cc *compiled, g, cap *la.Matrix) *acSweep {
	s := &acSweep{a: la.NewCMatrix(g.Rows, g.Cols), lu: la.NewCSparseLU(cc.sym)}
	for i, gv := range g.Data {
		s.a.Data[i] = complex(gv, 0)
	}
	for i, cv := range cap.Data {
		if cv != 0 {
			s.entries = append(s.entries, acEntry{i, g.Data[i], cv})
		}
	}
	return s
}

// setFreq updates the system matrix to G + jωC for angular frequency ω.
func (s *acSweep) setFreq(omega float64) {
	for i := range s.entries {
		e := &s.entries[i]
		s.a.Data[e.idx] = complex(e.g, omega*e.c)
	}
}

// AC performs a small-signal sweep about the operating point op.
func AC(c *netlist.Circuit, op *DCResult, opts ACOpts) (*ACResult, error) {
	cc, err := compile(c)
	if err != nil {
		return nil, err
	}
	return acCompiled(cc, op, opts)
}

// acCompiled is AC on an already-compiled circuit (shared with Batch).
func acCompiled(cc *compiled, op *DCResult, opts ACOpts) (*ACResult, error) {
	if opts.FStart <= 0 || opts.FStop <= opts.FStart {
		return nil, fmt.Errorf("sim: bad AC range [%g, %g]", opts.FStart, opts.FStop)
	}
	if opts.PointsPerDecade <= 0 {
		opts.PointsPerDecade = 20
	}
	l := cc.layout
	n := l.Size
	// Frequency-independent (G) and capacitive (C) stamps assembled once;
	// the stimulus vector collects every source with an AC magnitude.
	g, cap, err := buildSmallSignal(cc, op, opts.SwitchPhase)
	if err != nil {
		return nil, err
	}
	b := make([]complex128, n)
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.ISource:
			if e.Src.ACMag != 0 {
				ph := e.Src.ACPhase * math.Pi / 180
				i0 := cmplx.Rect(e.Src.ACMag, ph)
				addCRHS(b, l.idx(e.Nodes[0]), -i0)
				addCRHS(b, l.idx(e.Nodes[1]), +i0)
			}
		case netlist.VSource:
			if e.Src.ACMag != 0 {
				ph := e.Src.ACPhase * math.Pi / 180
				b[l.BranchIndex[e.Name]] += cmplx.Rect(e.Src.ACMag, ph)
			}
		}
	}

	decades := math.Log10(opts.FStop / opts.FStart)
	nPts := int(decades*float64(opts.PointsPerDecade)) + 1
	if nPts < 2 {
		nPts = 2
	}
	res := &ACResult{Freqs: make([]float64, 0, nPts), V: map[string][]complex128{}}
	for name := range l.NodeIndex {
		res.V[name] = make([]complex128, nPts)
	}
	sys := newACSweep(cc, g, cap)
	x := make([]complex128, n)
	for k := 0; k < nPts; k++ {
		f := opts.FStart * math.Pow(10, decades*float64(k)/float64(nPts-1))
		res.Freqs = append(res.Freqs, f)
		sys.setFreq(2 * math.Pi * f)
		if err := sys.lu.NumericFactor(sys.a); err != nil {
			return nil, fmt.Errorf("sim: AC solve failed at %g Hz: %w", f, err)
		}
		sys.lu.SolveInto(x, b)
		for name, i := range l.NodeIndex {
			res.V[name][k] = x[i]
		}
	}
	return res, nil
}

func addCRHS(b []complex128, i int, v complex128) {
	if i >= 0 {
		b[i] += v
	}
}
