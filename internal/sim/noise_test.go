package sim

import (
	"math"
	"testing"
)

const kB = 1.380649e-23

// The classic result: the integrated output noise of any RC lowpass is
// kT/C, independent of R.
func TestNoiseKTOverC(t *testing.T) {
	for _, r := range []string{"1k", "100k"} {
		c := mustParse(t, `* rc
V1 in 0 DC 0
R1 in out `+r+`
C1 out 0 1p
`)
		op := mustOP(t, c, DCOpts{})
		// Band wide enough to capture essentially all the noise of both
		// resistor choices (pole at 1.6 MHz / 160 MHz).
		res, err := Noise(c, op, NoiseOpts{
			Output: "out", FStart: 1, FStop: 1e12, PointsPerDecade: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := kB * 300 / 1e-12
		if math.Abs(res.Integrated-want)/want > 0.02 {
			t.Fatalf("R=%s: integrated noise %g, want kT/C = %g", r, res.Integrated, want)
		}
	}
}

// A closed sampling switch obeys the same law: the track-phase noise of a
// switched-capacitor sampler is kT/C regardless of Ron.
func TestNoiseSwitchedCapSampler(t *testing.T) {
	c := mustParse(t, `* sc track
V1 in 0 DC 1
S1 in top swm phase=1
C1 top 0 2p
.model swm sw (ron=500 roff=1e13)
`)
	op := mustOP(t, c, DCOpts{SwitchPhase: 1})
	res, err := Noise(c, op, NoiseOpts{
		Output: "top", FStart: 1, FStop: 1e13, PointsPerDecade: 25, SwitchPhase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := kB * 300 / 2e-12
	if math.Abs(res.Integrated-want)/want > 0.03 {
		t.Fatalf("sampler noise %g, want kT/C = %g", res.Integrated, want)
	}
	// sqrt(kT/2pF) ≈ 45.5 µV.
	if rms := res.RMS(); math.Abs(rms-45.5e-6)/45.5e-6 > 0.03 {
		t.Fatalf("RMS = %g, want ≈45.5 µV", rms)
	}
}

// Low-frequency PSD of a resistive divider is 4kT·(R1∥R2).
func TestNoiseDividerPSD(t *testing.T) {
	c := mustParse(t, `* divider
V1 in 0 DC 1
R1 in out 10k
R2 out 0 10k
`)
	op := mustOP(t, c, DCOpts{})
	res, err := Noise(c, op, NoiseOpts{
		Output: "out", FStart: 1, FStop: 100, PointsPerDecade: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * kB * 300 * 5e3 // R1∥R2 = 5k
	if math.Abs(res.PSD[0]-want)/want > 0.01 {
		t.Fatalf("PSD = %g, want %g", res.PSD[0], want)
	}
	// Both resistors contribute; bookkeeping splits evenly by symmetry.
	if math.Abs(res.ByElement["r1"]-res.ByElement["r2"]) > 0.02*res.ByElement["r1"] {
		t.Fatalf("per-element split uneven: %v", res.ByElement)
	}
}

// A common-source amplifier's output noise: channel noise 4kTγgm into
// (RD∥ro)² plus the load resistor's own 4kT/RD, at low frequency.
func TestNoiseCommonSource(t *testing.T) {
	c := mustParse(t, `* cs amp
V1 vdd 0 DC 3.3
VG g 0 DC 0.9
RD vdd d 2k
M1 d g 0 0 nch W=20u L=0.5u
.model nch nmos (vto=0.45 kp=180u lambda=0.05 gamma=0)
`)
	op := mustOP(t, c, DCOpts{})
	res, err := Noise(c, op, NoiseOpts{
		Output: "d", FStart: 1e3, FStop: 1e5, PointsPerDecade: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	mos := op.MOS["m1"]
	rout := 1 / (1/2e3 + mos.GDS)
	want := 4 * kB * 300 * ((2.0/3.0)*mos.GM + 1/2e3) * rout * rout
	if math.Abs(res.PSD[0]-want)/want > 0.02 {
		t.Fatalf("PSD = %g, want %g", res.PSD[0], want)
	}
	// The transistor dominates when gm·γ > 1/RD.
	if res.ByElement["m1"] < res.ByElement["rd"] {
		t.Fatalf("channel noise should dominate: %v", res.ByElement)
	}
}

func TestNoiseErrors(t *testing.T) {
	c := mustParse(t, "V1 a 0 DC 1\nR1 a b 1k\nR2 b 0 1k\n")
	op := mustOP(t, c, DCOpts{})
	if _, err := Noise(c, op, NoiseOpts{Output: "", FStart: 1, FStop: 10}); err == nil {
		t.Fatal("expected missing-output error")
	}
	if _, err := Noise(c, op, NoiseOpts{Output: "b", FStart: 0, FStop: 10}); err == nil {
		t.Fatal("expected band error")
	}
	if _, err := Noise(c, op, NoiseOpts{Output: "ghost", FStart: 1, FStop: 10}); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if _, err := Noise(c, op, NoiseOpts{Output: "0", FStart: 1, FStop: 10}); err == nil {
		t.Fatal("expected ground-output error")
	}
	// Circuit with no noise sources (pure capacitive).
	nc := mustParse(t, "V1 a 0 DC 1\nC1 a b 1p\nC2 b 0 1p\n")
	nop := mustOP(t, nc, DCOpts{})
	if _, err := Noise(nc, nop, NoiseOpts{Output: "b", FStart: 1, FStop: 10}); err == nil {
		t.Fatal("expected no-sources error")
	}
}

// Noise must scale linearly with temperature.
func TestNoiseTemperatureScaling(t *testing.T) {
	c := mustParse(t, "V1 in 0 DC 0\nR1 in out 1k\nC1 out 0 1p\n")
	op := mustOP(t, c, DCOpts{})
	cold, err := Noise(c, op, NoiseOpts{Output: "out", FStart: 1, FStop: 1e12, PointsPerDecade: 20, Temp: 150})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Noise(c, op, NoiseOpts{Output: "out", FStart: 1, FStop: 1e12, PointsPerDecade: 20, Temp: 300})
	if err != nil {
		t.Fatal(err)
	}
	ratio := hot.Integrated / cold.Integrated
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("noise(300K)/noise(150K) = %g, want 2", ratio)
	}
}
