package sim

import (
	"fmt"
	"math"

	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// DCOpts tunes the operating-point solver.
type DCOpts struct {
	MaxIter     int     // Newton iterations per continuation step (default 150)
	VNTol       float64 // absolute voltage tolerance (default 1 µV)
	RelTol      float64 // relative tolerance (default 1e-3)
	Gmin        float64 // floor conductance from every node to ground (default 1e-12)
	VLimit      float64 // max Newton voltage step (default 0.5 V)
	SwitchPhase int     // which clock phase is active for clocked switches (0 = none)
	// NewtonReuse enables modified-Newton (Shamanskii) iteration: the
	// Jacobian factorization is reused across iterations while the step
	// norm contracts and refreshed on slow convergence, with a plain
	// full-Newton retry if the damped loop fails to converge. Off (the
	// default) the solver is bit-identical to the historical path.
	NewtonReuse bool
}

func (o *DCOpts) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	if o.VNTol == 0 {
		o.VNTol = 1e-6
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-3
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.VLimit == 0 {
		o.VLimit = 0.5
	}
}

// DCResult is a converged operating point.
type DCResult struct {
	V          map[string]float64   // node voltages
	MOS        map[string]device.OP // per-transistor operating points
	BranchI    map[string]float64   // currents through V/E elements
	Iterations int                  // total Newton iterations spent
	x          []float64
	layout     *Layout
}

// Voltage returns a node voltage (0 for ground, error for unknown nodes).
func (r *DCResult) Voltage(node string) (float64, error) {
	if isGround(node) {
		return 0, nil
	}
	v, ok := r.V[node]
	if !ok {
		return 0, fmt.Errorf("sim: no node %q in solution", node)
	}
	return v, nil
}

// SupplyPower sums V·I over DC voltage sources, giving the static power
// drawn from the supplies (positive = dissipated in the circuit).
func (r *DCResult) SupplyPower(c *netlist.Circuit) float64 {
	p := 0.0
	for _, e := range c.Elements {
		if e.Type != netlist.VSource || e.Src == nil {
			continue
		}
		if i, ok := r.BranchI[e.Name]; ok {
			// Branch current flows from + terminal through the source;
			// a source delivering power has V·I < 0 in MNA convention.
			p -= e.Src.DC * i
		}
	}
	return p
}

// OP computes the DC operating point. It first tries plain Newton from a
// flat start; on failure it walks a gmin-stepping ladder, then source
// stepping, mirroring Berkeley SPICE's continuation strategy.
func OP(c *netlist.Circuit, opts DCOpts) (*DCResult, error) {
	cc, err := compile(c)
	if err != nil {
		return nil, err
	}
	return opCompiled(cc, opts)
}

// opCompiled is the compiled-circuit operating-point solver: Tran and
// Batch enter here to reuse an existing compilation and its warm
// workspaces instead of re-compiling the netlist.
func opCompiled(cc *compiled, opts DCOpts) (*DCResult, error) {
	opts.defaults()
	// Re-arm the ordered-pivot fast path for this analysis and publish the
	// locally accumulated kernel counters when it finishes. The workspace
	// is created eagerly so batch candidates behave identically regardless
	// of load order.
	ws := cc.dcWS()
	ws.lu.reset()
	defer ws.lu.flush()
	x := make([]float64, cc.layout.Size)
	totalIter := 0

	try := func(x0 []float64, gmin, srcScale float64) ([]float64, int, error) {
		return newton(cc, x0, gmin, srcScale, opts)
	}

	// 1. Plain Newton.
	if sol, n, err := try(x, opts.Gmin, 1); err == nil {
		totalIter += n
		return finishDC(cc, sol, totalIter), nil
	} else {
		totalIter += n
	}

	// 2. Gmin stepping: solve with a heavy shunt everywhere, then relax.
	xg := make([]float64, cc.layout.Size)
	ok := true
	for _, g := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, opts.Gmin} {
		sol, n, err := try(xg, g, 1)
		totalIter += n
		if err != nil {
			ok = false
			break
		}
		xg = sol
	}
	if ok {
		return finishDC(cc, xg, totalIter), nil
	}

	// 3. Source stepping: ramp every independent source from 10% to 100%.
	xs := make([]float64, cc.layout.Size)
	for _, scale := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		sol, n, err := try(xs, opts.Gmin, scale)
		totalIter += n
		if err != nil {
			// %w keeps the typed ConvergenceError reachable via errors.As
			// so callers can classify the failure as an infeasible
			// candidate rather than an engine fault.
			return nil, fmt.Errorf("sim: DC failed to converge (newton, gmin and source stepping exhausted) at scale %g: %w", scale, err)
		}
		xs = sol
	}
	return finishDC(cc, xs, totalIter), nil
}

func finishDC(cc *compiled, x []float64, iters int) *DCResult {
	r := &DCResult{
		V:       map[string]float64{},
		MOS:     map[string]device.OP{},
		BranchI: map[string]float64{},
		x:       x,
		layout:  cc.layout,
	}
	for name, i := range cc.layout.NodeIndex {
		r.V[name] = x[i]
	}
	for name, i := range cc.layout.BranchIndex {
		r.BranchI[name] = x[i]
	}
	for _, e := range cc.circuit.Elements {
		if e.Type == netlist.MOS {
			p := cc.mos[e.Name]
			vd := cc.layout.Voltage(x, e.Nodes[0])
			vg := cc.layout.Voltage(x, e.Nodes[1])
			vs := cc.layout.Voltage(x, e.Nodes[2])
			vb := cc.layout.Voltage(x, e.Nodes[3])
			r.MOS[e.Name] = p.Eval(vd, vg, vs, vb)
		}
	}
	r.Iterations = iters
	return r
}

// newton runs damped Newton–Raphson until the voltage update is below
// tolerance. srcScale scales independent sources (for source stepping).
// The loop runs entirely inside the compiled circuit's DC workspace:
// each iteration copies the per-call baseline (constant stamps, gmin
// shunts, scaled sources), stamps only the MOS companions, and factors
// and solves in place — no heap allocation per iteration.
func newton(cc *compiled, x0 []float64, gmin, srcScale float64, opts DCOpts) ([]float64, int, error) {
	ws := cc.dcWS()
	ws.prepare(cc, gmin, srcScale, opts.SwitchPhase)
	sol, n, err := newtonLoop(cc, ws, x0, opts, opts.NewtonReuse)
	if err != nil && opts.NewtonReuse {
		// Divergence fallback: retry with plain full Newton before the
		// caller walks the continuation ladders.
		if _, diverged := err.(*ConvergenceError); diverged {
			ws.lu.fallbacks++
			sol2, n2, err2 := newtonLoop(cc, ws, x0, opts, false)
			return sol2, n + n2, err2
		}
	}
	return sol, n, err
}

func newtonLoop(cc *compiled, ws *dcWorkspace, x0 []float64, opts DCOpts, reuse bool) ([]float64, int, error) {
	x := ws.x
	copy(x, x0)
	worstIdx, worstDelta := -1, 0.0
	lastStep, prevStep := math.Inf(1), math.Inf(1)
	reuseCount := 0
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var err error
		if !reuse {
			err = ws.iterate(cc)
		} else {
			refactor := iter == 1 || reuseCount >= 6 || lastStep > 0.5*prevStep
			if refactor {
				reuseCount = 0
			} else {
				reuseCount++
			}
			err = ws.iterateReuse(cc, refactor)
		}
		if err != nil {
			return nil, iter, fmt.Errorf("sim: singular MNA matrix: %w", err)
		}
		xNew := ws.xNew
		// Damped update: limit the largest node-voltage change.
		maxDelta := 0.0
		maxIdx := -1
		for i := 0; i < len(cc.layout.Nodes); i++ {
			if d := math.Abs(xNew[i] - x[i]); d > maxDelta {
				maxDelta = d
				maxIdx = i
			}
		}
		worstIdx, worstDelta = maxIdx, maxDelta
		prevStep, lastStep = lastStep, maxDelta
		alpha := 1.0
		if maxDelta > opts.VLimit {
			alpha = opts.VLimit / maxDelta
		}
		converged := true
		for i := range x {
			step := alpha * (xNew[i] - x[i])
			x[i] += step
			if i < len(cc.layout.Nodes) {
				if math.Abs(step) > opts.VNTol+opts.RelTol*math.Abs(x[i]) {
					converged = false
				}
			}
		}
		if converged && alpha == 1.0 {
			// Detach the solution from the workspace: callers hold it
			// across later newton calls and in DCResult.
			return append([]float64(nil), x...), iter, nil
		}
	}
	worst := ""
	if worstIdx >= 0 {
		worst = cc.layout.Nodes[worstIdx]
	}
	return nil, opts.MaxIter, &ConvergenceError{
		Analysis: "dc", Iterations: opts.MaxIter,
		WorstNode: worst, WorstDelta: worstDelta,
		Detail: "state: " + cc.layout.describeState(x),
	}
}

// stampDC assembles the linearized MNA system at candidate solution x in
// one pass over the element list. Capacitors are open circuits in DC.
// The solver itself uses the split baseline+MOS kernel path (kernel.go);
// this single-pass assembler is kept as the reference the kernel is
// tested against (TestKernelStampMatchesReference).
func stampDC(cc *compiled, a *la.Matrix, b []float64, x []float64, gmin, srcScale float64, switchPhase int) {
	l := cc.layout
	// Gmin shunts keep floating nodes (e.g. capacitively driven gates)
	// weakly tied to ground.
	for i := 0; i < len(l.Nodes); i++ {
		a.Add(i, i, gmin)
	}
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor:
			stampConductance(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), 1/e.Value)
		case netlist.Capacitor:
			// open in DC
		case netlist.Switch:
			sw := cc.switches[e.Name]
			active := sw.Phase == 0 || sw.Phase == switchPhase
			stampConductance(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), sw.Conductance(active))
		case netlist.ISource:
			i0 := e.Src.DC * srcScale
			addRHS(b, l.idx(e.Nodes[0]), -i0)
			addRHS(b, l.idx(e.Nodes[1]), +i0)
		case netlist.VSource:
			br := l.BranchIndex[e.Name]
			stampVoltageBranch(a, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
			b[br] += e.Src.DC * srcScale
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			op, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVoltageBranch(a, op, on, br)
			addA(a, br, cp, -e.Value)
			addA(a, br, cn, +e.Value)
		case netlist.VCCS:
			op, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVCCS(a, op, on, cp, cn, e.Value)
		case netlist.MOS:
			p := cc.mos[e.Name]
			d, g, s, bk := l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			vd := nodeV(x, d)
			vg := nodeV(x, g)
			vs := nodeV(x, s)
			vb := nodeV(x, bk)
			op := p.Eval(vd, vg, vs, vb)
			// Linearized companion: id ≈ ID + gm·Δvgs + gds·Δvds + gmb·Δvbs.
			stampVCCS(a, d, s, g, s, op.GM)
			stampConductance(a, d, s, op.GDS)
			stampVCCS(a, d, s, bk, s, op.GMB)
			ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
			addRHS(b, d, -ieq)
			addRHS(b, s, +ieq)
		}
	}
}

func nodeV(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

func addA(a *la.Matrix, i, j int, v float64) {
	if i >= 0 && j >= 0 {
		a.Add(i, j, v)
	}
}

func addRHS(b []float64, i int, v float64) {
	if i >= 0 {
		b[i] += v
	}
}

// stampConductance places a two-terminal conductance between nodes p and n.
func stampConductance(a *la.Matrix, p, n int, g float64) {
	addA(a, p, p, g)
	addA(a, n, n, g)
	addA(a, p, n, -g)
	addA(a, n, p, -g)
}

// stampVCCS places i(p→n) = g·(vcp − vcn).
func stampVCCS(a *la.Matrix, p, n, cp, cn int, g float64) {
	addA(a, p, cp, g)
	addA(a, p, cn, -g)
	addA(a, n, cp, -g)
	addA(a, n, cn, g)
}

// stampVoltageBranch places the incidence pattern shared by V and E.
func stampVoltageBranch(a *la.Matrix, p, n, br int) {
	addA(a, br, p, 1)
	addA(a, br, n, -1)
	addA(a, p, br, 1)
	addA(a, n, br, -1)
}
