// kernel.go is the structure-reusing numerical kernel under the DC, AC,
// transient, and noise analyses. A compiled circuit carries element views
// resolved to MNA indices (no string or map lookups on the hot path) and
// a precomputed constant stamp: the G-matrix contributions of resistors,
// controlled sources, and voltage-branch incidence, extended per clock
// phase with the switch conductances. Each Newton iteration then starts
// from a copy of the baseline and stamps only the nonlinear and
// time-varying devices, with all scratch buffers (matrices, vectors, LU
// workspaces) owned by the compiled circuit and reused across iterations.
package sim

import (
	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// mosElem is a MOS transistor with its terminals resolved to MNA rows.
type mosElem struct {
	par        device.MOSParams
	d, g, s, b int
}

// capElem is a fixed capacitor with resolved terminals.
type capElem struct {
	p, n int
	c    float64
}

// swElem is a clocked (or static) switch with resolved terminals.
type swElem struct {
	p, n int
	par  device.SwitchParams
}

// srcElem is an independent source: br is the branch row for voltage
// sources and -1 for current sources.
type srcElem struct {
	src  *netlist.Source
	p, n int
	br   int
}

// buildKernel populates the compiled circuit's element views and the
// constant stamp. Called once from compile.
func (cc *compiled) buildKernel() {
	l := cc.layout
	n := l.Size
	cc.constG = la.NewMatrix(n, n)
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor:
			stampConductance(cc.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), 1/e.Value)
		case netlist.Capacitor:
			cc.capElems = append(cc.capElems, capElem{l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), e.Value})
		case netlist.Switch:
			cc.swElems = append(cc.swElems, swElem{l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), cc.switches[e.Name]})
		case netlist.ISource:
			cc.srcElems = append(cc.srcElems, srcElem{e.Src, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), -1})
		case netlist.VSource:
			br := l.BranchIndex[e.Name]
			stampVoltageBranch(cc.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
			cc.srcElems = append(cc.srcElems, srcElem{e.Src, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br})
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			op, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVoltageBranch(cc.constG, op, on, br)
			addA(cc.constG, br, cp, -e.Value)
			addA(cc.constG, br, cn, +e.Value)
		case netlist.VCCS:
			stampVCCS(cc.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]), e.Value)
		case netlist.MOS:
			cc.mosElems = append(cc.mosElems, mosElem{
				cc.mos[e.Name],
				l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]),
			})
		}
	}
}

// phaseBase returns the constant stamp extended with the switch
// conductances of the given clock phase, computed once per phase and
// cached on the compiled circuit (switched netlists see three phases:
// 1, 2, and the non-overlap gap 0).
func (cc *compiled) phaseBase(phase int) *la.Matrix {
	if m, ok := cc.phaseG[phase]; ok {
		return m
	}
	m := cc.constG.Clone()
	for _, sw := range cc.swElems {
		active := sw.par.Phase == 0 || sw.par.Phase == phase
		stampConductance(m, sw.p, sw.n, sw.par.Conductance(active))
	}
	if cc.phaseG == nil {
		cc.phaseG = map[int]*la.Matrix{}
	}
	cc.phaseG[phase] = m
	return m
}

// stampMOS adds the linearized MOS companion models at candidate
// solution x: id ≈ ID + gm·Δvgs + gds·Δvds + gmb·Δvbs. This is the only
// matrix work repeated at every Newton iteration of the DC solver.
func stampMOS(cc *compiled, a *la.Matrix, b []float64, x []float64) {
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
		op := m.par.Eval(vd, vg, vs, vb)
		stampVCCS(a, m.d, m.s, m.g, m.s, op.GM)
		stampConductance(a, m.d, m.s, op.GDS)
		stampVCCS(a, m.d, m.s, m.b, m.s, op.GMB)
		ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
		addRHS(b, m.d, -ieq)
		addRHS(b, m.s, +ieq)
	}
}

// stampMOSTran adds the MOS companions plus the backward-Euler Meyer
// terminal capacitances referenced to the previous accepted step.
func stampMOSTran(cc *compiled, a *la.Matrix, b []float64, x, xPrev []float64, h float64) {
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
		op := m.par.Eval(vd, vg, vs, vb)
		stampVCCS(a, m.d, m.s, m.g, m.s, op.GM)
		stampConductance(a, m.d, m.s, op.GDS)
		stampVCCS(a, m.d, m.s, m.b, m.s, op.GMB)
		ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
		addRHS(b, m.d, -ieq)
		addRHS(b, m.s, +ieq)
		stampMOSCap(a, b, m.g, m.s, op.CGS, xPrev, h)
		stampMOSCap(a, b, m.g, m.d, op.CGD, xPrev, h)
		stampMOSCap(a, b, m.g, m.b, op.CGB, xPrev, h)
		stampMOSCap(a, b, m.d, m.b, op.CDB, xPrev, h)
		stampMOSCap(a, b, m.s, m.b, op.CSB, xPrev, h)
	}
}

// stampSources adds the independent sources evaluated at time t into the
// right-hand side (their matrix incidence is part of the constant stamp).
func stampSources(cc *compiled, b []float64, t float64) {
	for i := range cc.srcElems {
		s := &cc.srcElems[i]
		v := sourceValue(s.src, t)
		if s.br >= 0 {
			b[s.br] += v
		} else {
			addRHS(b, s.p, -v)
			addRHS(b, s.n, +v)
		}
	}
}

// dcWorkspace holds every buffer the DC Newton loop touches, so an
// iteration performs zero heap allocations.
type dcWorkspace struct {
	base  *la.Matrix // baseline for this newton call: const + gmin + switches
	baseB []float64  // scaled independent-source RHS
	a     *la.Matrix
	b     []float64
	x     []float64
	xNew  []float64
	lu    la.LU
}

func (cc *compiled) dcWS() *dcWorkspace {
	if cc.dcws == nil {
		n := cc.layout.Size
		cc.dcws = &dcWorkspace{
			base: la.NewMatrix(n, n), baseB: make([]float64, n),
			a: la.NewMatrix(n, n), b: make([]float64, n),
			x: make([]float64, n), xNew: make([]float64, n),
		}
	}
	return cc.dcws
}

// prepare assembles the per-call DC baseline: constant stamp + phase
// switches + gmin shunts in the matrix, scaled sources in the RHS.
func (ws *dcWorkspace) prepare(cc *compiled, gmin, srcScale float64, switchPhase int) {
	copy(ws.base.Data, cc.phaseBase(switchPhase).Data)
	// Gmin shunts keep floating nodes (e.g. capacitively driven gates)
	// weakly tied to ground.
	for i := 0; i < len(cc.layout.Nodes); i++ {
		ws.base.Add(i, i, gmin)
	}
	for i := range ws.baseB {
		ws.baseB[i] = 0
	}
	for i := range cc.srcElems {
		s := &cc.srcElems[i]
		v := s.src.DC * srcScale
		if s.br >= 0 {
			ws.baseB[s.br] += v
		} else {
			addRHS(ws.baseB, s.p, -v)
			addRHS(ws.baseB, s.n, +v)
		}
	}
}

// iterate runs one DC Newton iteration from ws.x: baseline copy, MOS
// stamp, in-place factor and solve into ws.xNew. It is the unit the
// allocation guard tests measure.
func (ws *dcWorkspace) iterate(cc *compiled) error {
	copy(ws.a.Data, ws.base.Data)
	copy(ws.b, ws.baseB)
	stampMOS(cc, ws.a, ws.b, ws.x)
	if err := ws.lu.FactorInto(ws.a); err != nil {
		return err
	}
	ws.lu.SolveInto(ws.xNew, ws.b)
	return nil
}
