// kernel.go is the structure-reusing numerical kernel under the DC, AC,
// transient, and noise analyses. A compiled circuit carries element views
// resolved to MNA indices (no string or map lookups on the hot path) and
// a precomputed constant stamp: the G-matrix contributions of resistors,
// controlled sources, and voltage-branch incidence, extended per clock
// phase with the switch conductances. Each Newton iteration then starts
// from a copy of the baseline and stamps only the nonlinear and
// time-varying devices, with all scratch buffers (matrices, vectors, LU
// workspaces) owned by the compiled circuit and reused across iterations.
package sim

import (
	"pipesyn/internal/device"
	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// mosElem is a MOS transistor with its terminals resolved to MNA rows.
// Its parameters live in the kernel's SoA ParamsBatch slab (see
// kernelViews.mosPB); element i of a candidate reads slab index
// mosBase+i.
type mosElem struct {
	d, g, s, b int
}

// capElem is a fixed capacitor with resolved terminals.
type capElem struct {
	p, n int
	c    float64
}

// swElem is a clocked (or static) switch with resolved terminals.
type swElem struct {
	p, n int
	par  device.SwitchParams
}

// srcElem is an independent source: br is the branch row for voltage
// sources and -1 for current sources.
type srcElem struct {
	src  *netlist.Source
	p, n int
	br   int
}

// kernelViews is the per-candidate half of the compiled kernel: the
// element views with resolved MNA indices and device values, plus the
// assembled constant stamp. Structure (indices, element order) is shared
// across a Batch; the values inside are what distinguish candidates.
type kernelViews struct {
	mosElems []mosElem
	mosPB    *device.ParamsBatch // SoA MOS parameter slab (shared in a Batch)
	mosBase  int                 // this candidate's flat offset into mosPB
	capElems []capElem
	swElems  []swElem
	srcElems []srcElem
	constG   *la.Matrix
}

// buildViews assembles the element views and constant stamp for a
// circuit against a fixed layout, returning the MOS parameters in
// element order for the caller to pack into a ParamsBatch slab (a solo
// compile packs width 1; NewBatch packs all candidates into one slab).
// The single entry point keeps every candidate's assembly order
// identical, so Batch results are bit-identical to a standalone compile
// of the same circuit.
func buildViews(c *netlist.Circuit, l *Layout,
	mos map[string]device.MOSParams, switches map[string]device.SwitchParams) (kernelViews, []device.MOSParams) {
	var kv kernelViews
	var mp []device.MOSParams
	kv.constG = la.NewMatrix(l.Size, l.Size)
	for _, e := range c.Elements {
		switch e.Type {
		case netlist.Resistor:
			stampConductance(kv.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), 1/e.Value)
		case netlist.Capacitor:
			kv.capElems = append(kv.capElems, capElem{l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), e.Value})
		case netlist.Switch:
			kv.swElems = append(kv.swElems, swElem{l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), switches[e.Name]})
		case netlist.ISource:
			kv.srcElems = append(kv.srcElems, srcElem{e.Src, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), -1})
		case netlist.VSource:
			br := l.BranchIndex[e.Name]
			stampVoltageBranch(kv.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
			kv.srcElems = append(kv.srcElems, srcElem{e.Src, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br})
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			op, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVoltageBranch(kv.constG, op, on, br)
			addA(kv.constG, br, cp, -e.Value)
			addA(kv.constG, br, cn, +e.Value)
		case netlist.VCCS:
			stampVCCS(kv.constG, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]), e.Value)
		case netlist.MOS:
			kv.mosElems = append(kv.mosElems, mosElem{
				l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]),
			})
			mp = append(mp, mos[e.Name])
		}
	}
	return kv, mp
}

// packSolo packs one candidate's MOS parameters as a width-1 slab.
func packSolo(params []device.MOSParams) *device.ParamsBatch {
	pb := device.NewParamsBatch(1, len(params))
	for j := range params {
		pb.Set(0, j, &params[j])
	}
	return pb
}

// setViews installs a candidate's views into the compiled kernel.
func (cc *compiled) setViews(kv kernelViews) {
	cc.mosElems = kv.mosElems
	cc.mosPB = kv.mosPB
	cc.mosBase = kv.mosBase
	cc.capElems = kv.capElems
	cc.swElems = kv.swElems
	cc.srcElems = kv.srcElems
	cc.constG = kv.constG
}

// buildKernel populates the compiled circuit's element views and the
// constant stamp, and runs both symbolic analyses: the partial-pivot one
// (required by the complex AC solver and kept as the numeric fallback)
// and, when the pattern admits one, the static-ordered analysis the
// Newton loops prefer. Called once from compile.
func (cc *compiled) buildKernel() {
	kv, params := buildViews(cc.circuit, cc.layout, cc.mos, cc.switches)
	kv.mosPB = packSolo(params)
	cc.setViews(kv)
	pat := cc.buildPattern(true)
	cc.sym = la.Analyze(pat)
	// Base-only pattern (no MOS positions): the direct-residual path
	// multiplies the step baseline, whose MOS entries are structurally
	// zero, so its mat-vec skips them entirely.
	cc.symBase = la.Analyze(cc.buildPattern(false))
	if sym, err := la.AnalyzeOrdered(pat); err == nil {
		cc.symOrd = sym
	}
}

// buildPattern marks every matrix position any analysis can stamp for
// this circuit: the constant stamps, switch conductances in every phase,
// gmin shunts, the MOS companion entries, and the capacitive companions
// (backward-Euler/trapezoidal in transient, jωC in AC). The pattern is
// structural — derived from element incidence, never from assembled
// values, so stamps that numerically cancel still count as live.
// With includeMOS false it covers only the baseline assemblies (constant
// stamp + switches + gmin + fixed-cap companions), the pattern the
// direct-residual mat-vec runs over.
func (cc *compiled) buildPattern(includeMOS bool) *la.Pattern {
	l := cc.layout
	p := la.NewPattern(l.Size)
	markCond := func(a, b int) {
		p.Mark(a, a)
		p.Mark(b, b)
		p.Mark(a, b)
		p.Mark(b, a)
	}
	markVCCS := func(a, b, c, d int) {
		p.Mark(a, c)
		p.Mark(a, d)
		p.Mark(b, c)
		p.Mark(b, d)
	}
	markBranch := func(a, b, br int) {
		p.Mark(br, a)
		p.Mark(br, b)
		p.Mark(a, br)
		p.Mark(b, br)
	}
	for i := 0; i < len(l.Nodes); i++ {
		p.Mark(i, i) // gmin shunt
	}
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor, netlist.Capacitor, netlist.Switch:
			markCond(l.idx(e.Nodes[0]), l.idx(e.Nodes[1]))
		case netlist.VSource:
			markBranch(l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.BranchIndex[e.Name])
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			markBranch(l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
			p.Mark(br, l.idx(e.Nodes[2]))
			p.Mark(br, l.idx(e.Nodes[3]))
		case netlist.VCCS:
			markVCCS(l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]))
		case netlist.MOS:
			if !includeMOS {
				continue
			}
			d, g, s, b := l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			markVCCS(d, s, g, s) // gm
			markCond(d, s)       // gds
			markVCCS(d, s, b, s) // gmb
			// Meyer terminal capacitances.
			markCond(g, s)
			markCond(g, d)
			markCond(g, b)
			markCond(d, b)
			markCond(s, b)
		}
	}
	return p
}

// phaseBase returns the constant stamp extended with the switch
// conductances of the given clock phase, computed once per phase and
// cached on the compiled circuit (switched netlists see three phases:
// 1, 2, and the non-overlap gap 0).
func (cc *compiled) phaseBase(phase int) *la.Matrix {
	if m, ok := cc.phaseG[phase]; ok {
		return m
	}
	m := cc.constG.Clone()
	for _, sw := range cc.swElems {
		active := sw.par.Phase == 0 || sw.par.Phase == phase
		stampConductance(m, sw.p, sw.n, sw.par.Conductance(active))
	}
	if cc.phaseG == nil {
		cc.phaseG = map[int]*la.Matrix{}
	}
	cc.phaseG[phase] = m
	return m
}

// stampMOS adds the linearized MOS companion models at candidate
// solution x: id ≈ ID + gm·Δvgs + gds·Δvds + gmb·Δvbs. This is the only
// matrix work repeated at every Newton iteration of the DC solver.
func stampMOS(cc *compiled, a *la.Matrix, b []float64, x []float64) {
	var op device.OP
	pb, base := cc.mosPB, cc.mosBase
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
		pb.EvalInto(&op, base+i, vd, vg, vs, vb)
		stampVCCS(a, m.d, m.s, m.g, m.s, op.GM)
		stampConductance(a, m.d, m.s, op.GDS)
		stampVCCS(a, m.d, m.s, m.b, m.s, op.GMB)
		ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
		addRHS(b, m.d, -ieq)
		addRHS(b, m.s, +ieq)
	}
}

// stampMOSTran adds the MOS companions plus the backward-Euler Meyer
// terminal capacitances referenced to the previous accepted step.
func stampMOSTran(cc *compiled, a *la.Matrix, b []float64, x, xPrev []float64, h float64) {
	var op device.OP
	pb, base := cc.mosPB, cc.mosBase
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
		pb.EvalInto(&op, base+i, vd, vg, vs, vb)
		stampVCCS(a, m.d, m.s, m.g, m.s, op.GM)
		stampConductance(a, m.d, m.s, op.GDS)
		stampVCCS(a, m.d, m.s, m.b, m.s, op.GMB)
		ieq := op.ID - op.GM*(vg-vs) - op.GDS*(vd-vs) - op.GMB*(vb-vs)
		addRHS(b, m.d, -ieq)
		addRHS(b, m.s, +ieq)
		stampMOSCap(a, b, m.g, m.s, op.CGS, xPrev, h)
		stampMOSCap(a, b, m.g, m.d, op.CGD, xPrev, h)
		stampMOSCap(a, b, m.g, m.b, op.CGB, xPrev, h)
		stampMOSCap(a, b, m.d, m.b, op.CDB, xPrev, h)
		stampMOSCap(a, b, m.s, m.b, op.CSB, xPrev, h)
	}
}

// stampSources adds the independent sources evaluated at time t into the
// right-hand side (their matrix incidence is part of the constant stamp).
func stampSources(cc *compiled, b []float64, t float64) {
	for i := range cc.srcElems {
		s := &cc.srcElems[i]
		v := sourceValue(s.src, t)
		if s.br >= 0 {
			b[s.br] += v
		} else {
			addRHS(b, s.p, -v)
			addRHS(b, s.n, +v)
		}
	}
}

// dcWorkspace holds every buffer the DC Newton loop touches, so an
// iteration performs zero heap allocations. The factorization runs
// through the kernelLU (static-ordered when available, partial-pivot
// fallback); r and d are the residual/step scratch of the
// modified-Newton path.
type dcWorkspace struct {
	base  *la.Matrix // baseline for this newton call: const + gmin + switches
	baseB []float64  // scaled independent-source RHS
	a     *la.Matrix
	b     []float64
	x     []float64
	xNew  []float64
	r     []float64
	d     []float64
	lu    *kernelLU
}

func (cc *compiled) dcWS() *dcWorkspace {
	if cc.dcws == nil {
		n := cc.layout.Size
		cc.dcws = &dcWorkspace{
			base: la.NewMatrix(n, n), baseB: make([]float64, n),
			a: la.NewMatrix(n, n), b: make([]float64, n),
			x: make([]float64, n), xNew: make([]float64, n),
			r: make([]float64, n), d: make([]float64, n),
			lu: newKernelLU(cc),
		}
	}
	return cc.dcws
}

// prepare assembles the per-call DC baseline: constant stamp + phase
// switches + gmin shunts in the matrix, scaled sources in the RHS.
func (ws *dcWorkspace) prepare(cc *compiled, gmin, srcScale float64, switchPhase int) {
	copy(ws.base.Data, cc.phaseBase(switchPhase).Data)
	// Gmin shunts keep floating nodes (e.g. capacitively driven gates)
	// weakly tied to ground.
	for i := 0; i < len(cc.layout.Nodes); i++ {
		ws.base.Add(i, i, gmin)
	}
	for i := range ws.baseB {
		ws.baseB[i] = 0
	}
	for i := range cc.srcElems {
		s := &cc.srcElems[i]
		v := s.src.DC * srcScale
		if s.br >= 0 {
			ws.baseB[s.br] += v
		} else {
			addRHS(ws.baseB, s.p, -v)
			addRHS(ws.baseB, s.n, +v)
		}
	}
}

// iterate runs one DC Newton iteration from ws.x: baseline copy, MOS
// stamp, in-place factor and solve into ws.xNew. It is the unit the
// allocation guard tests measure.
func (ws *dcWorkspace) iterate(cc *compiled) error {
	copy(ws.a.Data, ws.base.Data)
	copy(ws.b, ws.baseB)
	stampMOS(cc, ws.a, ws.b, ws.x)
	if err := ws.lu.factor(ws.a); err != nil {
		return err
	}
	ws.lu.solveInto(ws.xNew, ws.b)
	return nil
}

// iterateReuse is the modified-Newton (Shamanskii) variant. With
// refactor true the system is stamped fresh, factored, and solved
// directly. With refactor false the previous factorization is reused
// for a delta solve — xNew = x − M⁻¹·f(x) with M the stale factor — and
// the residual f(x) is evaluated directly (residualDC), skipping the
// matrix assembly entirely: a stale-factor iteration never reads the
// Jacobian, only the residual.
func (ws *dcWorkspace) iterateReuse(cc *compiled, refactor bool) error {
	if refactor {
		copy(ws.a.Data, ws.base.Data)
		copy(ws.b, ws.baseB)
		stampMOS(cc, ws.a, ws.b, ws.x)
		if err := ws.lu.factor(ws.a); err != nil {
			return err
		}
		ws.lu.solveInto(ws.xNew, ws.b)
		return nil
	}
	ws.lu.reused++
	ws.residualDC(cc)
	ws.lu.solveInto(ws.d, ws.r)
	for i := range ws.xNew {
		ws.xNew[i] = ws.x[i] - ws.d[i]
	}
	return nil
}

// residualDC evaluates the nonlinear DC residual f(x) at ws.x into ws.r
// without assembling the Newton system: in A(x)·x − b(x) each MOS
// companion's matrix terms cancel algebraically against its RHS
// contribution, leaving the raw drain current, so
// f(x) = base·x − baseB + Σ (±ID) at each device's drain/source rows.
func (ws *dcWorkspace) residualDC(cc *compiled) {
	cc.symBase.MulVecInto(ws.r, ws.base, ws.x)
	for i := range ws.r {
		ws.r[i] -= ws.baseB[i]
	}
	var op device.OP
	pb, base := cc.mosPB, cc.mosBase
	for i := range cc.mosElems {
		m := &cc.mosElems[i]
		vd, vg, vs, vb := nodeV(ws.x, m.d), nodeV(ws.x, m.g), nodeV(ws.x, m.s), nodeV(ws.x, m.b)
		pb.EvalInto(&op, base+i, vd, vg, vs, vb)
		addRHS(ws.r, m.d, op.ID)
		addRHS(ws.r, m.s, -op.ID)
	}
}
