package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// NoiseOpts configures the small-signal noise analysis.
type NoiseOpts struct {
	Output          string  // node whose noise is reported
	FStart, FStop   float64 // integration band, Hz
	PointsPerDecade int     // default 20
	Temp            float64 // kelvin, default 300
	SwitchPhase     int     // clock phase considered closed
	// GammaMOS is the channel thermal-noise factor (default 2/3, the
	// long-channel value; short-channel devices run hotter).
	GammaMOS float64
}

// NoiseResult holds the output-referred noise analysis.
type NoiseResult struct {
	Freqs      []float64
	PSD        []float64          // output noise density, V²/Hz
	Integrated float64            // total output noise power over the band, V²
	ByElement  map[string]float64 // integrated contribution per noisy element, V²
}

// RMS returns the integrated output noise in volts RMS.
func (r *NoiseResult) RMS() float64 { return math.Sqrt(r.Integrated) }

// noiseSource is one white-noise current source in the linearized network.
type noiseSource struct {
	element string
	p, n    int     // injection nodes (MNA indices, -1 = ground)
	psd     float64 // current noise density, A²/Hz
}

// Noise computes the output-referred thermal noise of the circuit
// linearized at the operating point: resistor and closed-switch Johnson
// noise (4kT/R) and MOS channel noise (4kTγ·gm), each propagated to the
// output through the complex MNA system and summed in power. Flicker
// noise is out of scope — the paper's budgets are thermal (kT/C).
func Noise(c *netlist.Circuit, op *DCResult, opts NoiseOpts) (*NoiseResult, error) {
	if opts.Output == "" {
		return nil, fmt.Errorf("sim: noise analysis needs an output node")
	}
	if opts.FStart <= 0 || opts.FStop <= opts.FStart {
		return nil, fmt.Errorf("sim: bad noise band [%g, %g]", opts.FStart, opts.FStop)
	}
	if opts.PointsPerDecade <= 0 {
		opts.PointsPerDecade = 20
	}
	if opts.Temp == 0 {
		opts.Temp = 300
	}
	if opts.GammaMOS == 0 {
		opts.GammaMOS = 2.0 / 3.0
	}
	cc, err := compile(c)
	if err != nil {
		return nil, err
	}
	l := cc.layout
	outIdx := -1
	if !isGround(opts.Output) {
		i, ok := l.NodeIndex[opts.Output]
		if !ok {
			return nil, fmt.Errorf("sim: unknown output node %q", opts.Output)
		}
		outIdx = i
	}
	if outIdx < 0 {
		return nil, fmt.Errorf("sim: output node is ground")
	}

	const kB = 1.380649e-23
	fourKT := 4 * kB * opts.Temp

	// Enumerate noise sources from the linearized elements.
	var sources []noiseSource
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor:
			sources = append(sources, noiseSource{
				element: e.Name,
				p:       l.idx(e.Nodes[0]), n: l.idx(e.Nodes[1]),
				psd: fourKT / e.Value,
			})
		case netlist.Switch:
			sw := cc.switches[e.Name]
			active := sw.Phase == 0 || sw.Phase == opts.SwitchPhase
			g := sw.Conductance(active)
			// An open switch's 10^-12 S contributes nothing measurable;
			// skip it to keep the source list tight.
			if active {
				sources = append(sources, noiseSource{
					element: e.Name,
					p:       l.idx(e.Nodes[0]), n: l.idx(e.Nodes[1]),
					psd: fourKT * g,
				})
			}
		case netlist.MOS:
			mop, ok := op.MOS[e.Name]
			if !ok {
				return nil, fmt.Errorf("sim: operating point missing %s", e.Name)
			}
			if mop.GM <= 0 {
				continue // off devices are noiseless to first order
			}
			sources = append(sources, noiseSource{
				element: e.Name,
				p:       l.idx(e.Nodes[0]), n: l.idx(e.Nodes[2]), // drain–source
				psd: fourKT * opts.GammaMOS * mop.GM,
			})
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("sim: circuit has no noise sources")
	}

	// Assemble the same (G, C) pair the AC analysis uses.
	g, cap, err := buildSmallSignal(cc, op, opts.SwitchPhase)
	if err != nil {
		return nil, err
	}
	n := l.Size
	decades := math.Log10(opts.FStop / opts.FStart)
	nPts := int(decades*float64(opts.PointsPerDecade)) + 1
	if nPts < 2 {
		nPts = 2
	}
	res := &NoiseResult{
		Freqs:     make([]float64, 0, nPts),
		PSD:       make([]float64, 0, nPts),
		ByElement: map[string]float64{},
	}
	sys := newACSweep(cc, g, cap)
	b := make([]complex128, n)
	x := make([]complex128, n)
	perSrc := make([]float64, len(sources))
	perSrcPrev := make([]float64, len(sources))
	prevF, prevPSD := 0.0, 0.0
	for k := 0; k < nPts; k++ {
		f := opts.FStart * math.Pow(10, decades*float64(k)/float64(nPts-1))
		sys.setFreq(2 * math.Pi * f)
		if err := sys.lu.NumericFactor(sys.a); err != nil {
			return nil, fmt.Errorf("sim: noise solve failed at %g Hz: %w", f, err)
		}
		total := 0.0
		for si, src := range sources {
			for i := range b {
				b[i] = 0
			}
			if src.p >= 0 {
				b[src.p] -= 1
			}
			if src.n >= 0 {
				b[src.n] += 1
			}
			sys.lu.SolveInto(x, b)
			h := cmplx.Abs(x[outIdx])
			contrib := h * h * src.psd
			perSrc[si] = contrib
			total += contrib
		}
		res.Freqs = append(res.Freqs, f)
		res.PSD = append(res.PSD, total)
		if k > 0 {
			df := f - prevF
			res.Integrated += 0.5 * (total + prevPSD) * df
			for si := range sources {
				res.ByElement[sources[si].element] += 0.5 * (perSrc[si] + perSrcPrev[si]) * df
			}
		}
		prevF, prevPSD = f, total
		perSrc, perSrcPrev = perSrcPrev, perSrc
	}
	return res, nil
}

// buildSmallSignal assembles the conductance and capacitance matrices of
// the circuit linearized at op (shared by AC and noise analyses).
func buildSmallSignal(cc *compiled, op *DCResult, switchPhase int) (*la.Matrix, *la.Matrix, error) {
	l := cc.layout
	n := l.Size
	g := la.NewMatrix(n, n)
	cap := la.NewMatrix(n, n)
	for i := 0; i < len(l.Nodes); i++ {
		g.Add(i, i, 1e-12)
	}
	for _, e := range cc.circuit.Elements {
		switch e.Type {
		case netlist.Resistor:
			stampConductance(g, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), 1/e.Value)
		case netlist.Capacitor:
			stampConductance(cap, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), e.Value)
		case netlist.Switch:
			sw := cc.switches[e.Name]
			active := sw.Phase == 0 || sw.Phase == switchPhase
			stampConductance(g, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), sw.Conductance(active))
		case netlist.VSource:
			br := l.BranchIndex[e.Name]
			stampVoltageBranch(g, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), br)
		case netlist.VCVS:
			br := l.BranchIndex[e.Name]
			op2, on := l.idx(e.Nodes[0]), l.idx(e.Nodes[1])
			cp, cn := l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVoltageBranch(g, op2, on, br)
			addA(g, br, cp, -e.Value)
			addA(g, br, cn, +e.Value)
		case netlist.VCCS:
			stampVCCS(g, l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3]), e.Value)
		case netlist.MOS:
			mop, ok := op.MOS[e.Name]
			if !ok {
				return nil, nil, fmt.Errorf("sim: operating point missing transistor %s", e.Name)
			}
			d, gt, s, bk := l.idx(e.Nodes[0]), l.idx(e.Nodes[1]), l.idx(e.Nodes[2]), l.idx(e.Nodes[3])
			stampVCCS(g, d, s, gt, s, mop.GM)
			stampConductance(g, d, s, mop.GDS)
			stampVCCS(g, d, s, bk, s, mop.GMB)
			stampConductance(cap, gt, s, mop.CGS)
			stampConductance(cap, gt, d, mop.CGD)
			stampConductance(cap, gt, bk, mop.CGB)
			stampConductance(cap, d, bk, mop.CDB)
			stampConductance(cap, s, bk, mop.CSB)
		}
	}
	return g, cap, nil
}
