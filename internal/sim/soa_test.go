package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pipesyn/internal/netlist"
)

// TestBatchSoAStampDoesNotAllocate pins the batched stamp path's
// acceptance criterion: once the shared kernel is warm, a DC Newton
// iteration reading device parameters from a non-zero offset into the
// batch's SoA slab does zero heap allocations — the slab lookup must be
// pure indexing, never a per-device unpack.
func TestBatchSoAStampDoesNotAllocate(t *testing.T) {
	decks := []string{batchVariant(t, 0), batchVariant(t, 1), batchVariant(t, 2)}
	var circuits []*netlist.Circuit
	for _, d := range decks {
		circuits = append(circuits, parseDeck(t, d))
	}
	bt, err := NewBatch(circuits)
	if err != nil {
		t.Fatal(err)
	}
	// Load candidate 2 so the measured iteration streams the slab at a
	// non-zero base offset (candidate 0 aliases the standalone layout).
	if _, err := bt.OP(2, DCOpts{}); err != nil {
		t.Fatal(err)
	}
	cc := bt.cc
	if cc.mosBase == 0 {
		t.Fatal("candidate 2 left the slab base at 0; the SoA offset path is not under test")
	}
	opts := DCOpts{}
	opts.defaults()
	x0 := make([]float64, cc.layout.Size)
	sol, _, err := newton(cc, x0, opts.Gmin, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := cc.dcWS()
	ws.prepare(cc, opts.Gmin, 1, 0)
	copy(ws.x, sol)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ws.iterate(cc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched SoA Newton iteration allocates %g objects, want 0", allocs)
	}
}

// randomizedDeck perturbs the reuse deck's geometry, capacitors, and
// bias in log space: structurally always the same circuit, numerically a
// fresh one each call.
func randomizedDeck(rng *rand.Rand) string {
	s := func(base float64) float64 { return base * math.Exp(rng.NormFloat64()*0.2) }
	return fmt.Sprintf(`* randomized ordered-pivot deck
V1 vdd 0 DC 3.3
VIN in 0 SIN(1.4 0.2 2e6)
S1 in a sw phase=1
S2 a 0 sw phase=2
C1 a b %.4gp
S3 b 0 sw phase=1
S4 b out sw phase=2
C2 out fb %.4gp
M1 x1 b tail 0 nch W=%.4gu L=0.5u
M2 x2 fb tail 0 nch W=%.4gu L=0.5u
M3 x1 x1 vdd vdd pch W=%.4gu L=0.5u
M4 x2 x1 vdd vdd pch W=%.4gu L=0.5u
M5 out x2 vdd vdd pch W=%.4gu L=0.35u
M6 out bn 0 0 nch W=%.4gu L=1u
M7 bn bn 0 0 nch W=5u L=1u
M8 tail bn 0 0 nch W=%.4gu L=1u
IB vdd bn DC %.4gu
CL out 0 1p
.model sw sw (ron=1k roff=1e12)
.model nch nmos (vto=0.45 kp=180u)
.model pch pmos (vto=-0.5 kp=60u)
`, s(1), s(2), s(20), s(20), s(40), s(40), s(60), s(20), s(20), s(20))
}

// TestOrderedPivotMatchesDefault is the sim-level equivalence contract
// for the static-ordered pivot path: across randomized sizings of the
// reuse deck, the DC operating point and transient waveforms solved
// with the ordered factorization must agree with the partial-pivot
// default to simulation accuracy. (Pivot order changes rounding, so the
// comparison is tight-tolerance, not bitwise — the bitwise contract
// belongs to the default path, TestTranDefaultBitIdenticalToDense.)
func TestOrderedPivotMatchesDefault(t *testing.T) {
	const tol = 1e-6
	rng := rand.New(rand.NewSource(42))
	topts := TranOpts{
		TStop: 2e-7, TStep: 1e-9,
		ClockPeriod: 1e-7, NonOverlap: 2e-9,
	}
	for trial := 0; trial < 5; trial++ {
		deck := randomizedDeck(rng)
		ccOrd, err := compile(parseDeck(t, deck))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ccOrd.symOrd == nil {
			t.Fatalf("trial %d: deck admits no static order; the ordered path is not under test", trial)
		}
		ccDef, err := compile(parseDeck(t, deck))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ccDef.symOrd = nil // force the partial-pivot default

		opOrd, err := opCompiled(ccOrd, DCOpts{})
		if err != nil {
			t.Fatalf("trial %d ordered OP: %v", trial, err)
		}
		opDef, err := opCompiled(ccDef, DCOpts{})
		if err != nil {
			t.Fatalf("trial %d default OP: %v", trial, err)
		}
		for node, v := range opDef.V {
			if !relClose(opOrd.V[node], v, tol) {
				t.Fatalf("trial %d OP node %s: ordered %.12g vs default %.12g", trial, node, opOrd.V[node], v)
			}
		}

		trOrd, err := tranCompiled(ccOrd, topts)
		if err != nil {
			t.Fatalf("trial %d ordered tran: %v", trial, err)
		}
		trDef, err := tranCompiled(ccDef, topts)
		if err != nil {
			t.Fatalf("trial %d default tran: %v", trial, err)
		}
		if len(trOrd.T) != len(trDef.T) {
			t.Fatalf("trial %d: transient lengths differ: %d vs %d", trial, len(trOrd.T), len(trDef.T))
		}
		for node, w := range trDef.V {
			ow := trOrd.V[node]
			for k := range w {
				if !relClose(ow[k], w[k], tol) {
					t.Fatalf("trial %d tran node %s sample %d: ordered %.12g vs default %.12g",
						trial, node, k, ow[k], w[k])
				}
			}
		}
	}
}

// relClose compares with relative tolerance and a small absolute floor
// (node voltages are O(1); sub-nanovolt disagreement is noise).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale+1e-9
}
