package sim

import (
	"math"
	"math/rand"
	"testing"

	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// reuseDeck is a clocked switched-capacitor MOS deck exercising every
// stamp family the pattern recorder covers: MOS companions and Meyer
// caps, switches in both phases, caps, VCVS/VCCS, and sources.
const reuseDeck = `* sc integrator-ish reuse deck
V1 vdd 0 DC 3.3
VIN in 0 SIN(1.4 0.2 2e6)
S1 in a sw phase=1
S2 a 0 sw phase=2
C1 a b 1p
S3 b 0 sw phase=1
S4 b out sw phase=2
C2 out fb 2p
M1 x1 b tail 0 nch W=20u L=0.5u
M2 x2 fb tail 0 nch W=20u L=0.5u
M3 x1 x1 vdd vdd pch W=40u L=0.5u
M4 x2 x1 vdd vdd pch W=40u L=0.5u
M5 out x2 vdd vdd pch W=60u L=0.35u
M6 out bn 0 0 nch W=20u L=1u
M7 bn bn 0 0 nch W=5u L=1u
M8 tail bn 0 0 nch W=20u L=1u
IB vdd bn DC 20u
CL out 0 1p
.model sw sw (ron=1k roff=1e12)
.model nch nmos (vto=0.45 kp=180u)
.model pch pmos (vto=-0.5 kp=60u)
`

func parseDeck(t *testing.T, deck string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSymbolicCoversAssembled checks that the compile-time sparsity
// pattern covers every nonzero the DC and transient assemblers can
// produce, across random candidate states and all switch phases. A
// position outside the pattern would silently corrupt the sparse
// factorization, so this is the safety net for the pattern recorder.
func TestSymbolicCoversAssembled(t *testing.T) {
	c := parseDeck(t, reuseDeck)
	cc, err := compile(c)
	if err != nil {
		t.Fatal(err)
	}
	n := cc.layout.Size
	a := la.NewMatrix(n, n)
	b := make([]float64, n)
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		for i := range x {
			x[i] = 3.3 * (rng.Float64() - 0.2)
		}
		for phase := 0; phase <= 2; phase++ {
			for i := range a.Data {
				a.Data[i] = 0
			}
			stampDC(cc, a, b, x, 1e-12, 1, phase)
			if !cc.sym.Covers(a) {
				t.Fatalf("trial %d phase %d: DC stamp has nonzero outside symbolic pattern", trial, phase)
			}
			// Transient assembly: phase base + companions + MOS tran stamps.
			copy(a.Data, cc.phaseBase(phase).Data)
			for i := 0; i < len(cc.layout.Nodes); i++ {
				a.Add(i, i, 1e-12)
			}
			for i := range b {
				b[i] = 0
			}
			stampMOSTran(cc, a, b, x, x, 1e-9)
			if !cc.sym.Covers(a) {
				t.Fatalf("trial %d phase %d: tran stamp has nonzero outside symbolic pattern", trial, phase)
			}
		}
	}
}

// TestNewtonReuseOPMatchesDefault: the modified-Newton knob must land on
// the same operating point as the default full-Newton path within the
// solver's convergence tolerance. Both iterations share the same fixed
// point, but the stale-factor path stops when its (linearly contracting)
// step is small, so the landed point can differ by a few times the step
// tolerance at high-gain nodes.
func TestNewtonReuseOPMatchesDefault(t *testing.T) {
	c := parseDeck(t, reuseDeck)
	ref, err := OP(c, DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OP(c, DCOpts{NewtonReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for node, v := range ref.V {
		g := got.V[node]
		if math.Abs(g-v) > 5e-3*(1+math.Abs(v)) {
			t.Errorf("node %s: reuse OP %.12g vs default %.12g", node, g, v)
		}
	}
}

// TestNewtonReuseTranMatchesDefault: transient waveforms with the reuse
// knob on must track the default path within the Newton step tolerance
// at every accepted step (same fixed point, looser landing — see the OP
// test above).
func TestNewtonReuseTranMatchesDefault(t *testing.T) {
	c := parseDeck(t, reuseDeck)
	opts := TranOpts{
		TStop: 1e-6, TStep: 2e-9,
		ClockPeriod: 1e-7, NonOverlap: 2e-9,
	}
	ref, err := Tran(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NewtonReuse = true
	got, err := Tran(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.T) != len(ref.T) {
		t.Fatalf("step counts differ: %d vs %d", len(got.T), len(ref.T))
	}
	for node, w := range ref.V {
		gw := got.V[node]
		for i := range w {
			// Tolerance is loose relative to the supply swing: the two
			// trajectories accumulate independent step-tolerance errors
			// through the capacitor memory, which amplify transiently at
			// clock-switch edges.
			if math.Abs(gw[i]-w[i]) > 2e-2*(1+math.Abs(w[i])) {
				t.Fatalf("node %s sample %d (t=%g): reuse %.9g vs default %.9g",
					node, i, ref.T[i], gw[i], w[i])
			}
		}
	}
}

// TestTranDefaultBitIdenticalToDense: with every knob off, the sparse
// solver must reproduce the dense-era results exactly — the factorization
// is pivot-exact, so waveforms are compared bitwise against a dense
// reference solve of the same deck.
func TestTranDefaultBitIdenticalToDense(t *testing.T) {
	c := parseDeck(t, reuseDeck)
	opts := TranOpts{
		TStop: 5e-7, TStep: 2e-9,
		ClockPeriod: 1e-7, NonOverlap: 2e-9,
	}
	ref, err := Tran(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A second run must be deterministic to the bit.
	again, err := Tran(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for node, w := range ref.V {
		aw := again.V[node]
		for i := range w {
			if math.Float64bits(aw[i]) != math.Float64bits(w[i]) {
				t.Fatalf("node %s sample %d: runs differ bitwise", node, i)
			}
		}
	}
}
