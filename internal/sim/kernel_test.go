package sim

import (
	"math"
	"testing"

	"pipesyn/internal/la"
	"pipesyn/internal/netlist"
)

// kernelDeck exercises every element type the kernel splits between the
// constant stamp and the per-iteration stamp: resistors, capacitors,
// clocked switches, both independent sources, both controlled sources,
// and MOS devices — a switched-capacitor stage around the bench amp.
const kernelDeck = `* kernel reference deck
V1 vdd 0 DC 3.3
VIN in 0 DC 1.2 SIN 1.2 0.2 10e6
S1 in top swmod phase=1
S2 top fb swmod phase=2
CS top inn 0.5p
CF fb out 0.25p
E1 drv 0 x2 0 2
G1 x1 0 drv 0 1e-5
RB drv bias 10k
M1 x1 inn tail 0 nch W=20u L=0.5u
M2 x2 bias tail 0 nch W=20u L=0.5u
M3 x1 x1 vdd vdd pch W=40u L=0.5u
M4 x2 x1 vdd vdd pch W=40u L=0.5u
M5 out x2 vdd vdd pch W=60u L=0.35u
M6 out bn 0 0 nch W=20u L=1u
M7 bn bn 0 0 nch W=5u L=1u
M8 tail bn 0 0 nch W=20u L=1u
IB vdd bn DC 20u
CL out 0 1p
.model nch nmos (vto=0.45 kp=180u)
.model pch pmos (vto=-0.5 kp=60u)
.model swmod sw (ron=1k roff=1e12)
`

func compileDeck(t *testing.T, deck string) *compiled {
	t.Helper()
	c, err := netlist.Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// TestKernelStampMatchesReference checks the split baseline+MOS assembly
// against the single-pass reference assembler stampDC on every matrix
// and RHS entry. The two paths accumulate contributions in different
// orders, so agreement is to round-off, not bit-exact.
func TestKernelStampMatchesReference(t *testing.T) {
	cc := compileDeck(t, kernelDeck)
	n := cc.layout.Size
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.3 + 0.17*float64(i%7) // deterministic, devices span regions
	}
	for _, tc := range []struct {
		gmin, srcScale float64
		phase          int
	}{
		{1e-12, 1, 0},
		{1e-9, 0.7, 1},
		{1e-6, 0.25, 2},
	} {
		aRef := la.NewMatrix(n, n)
		bRef := make([]float64, n)
		stampDC(cc, aRef, bRef, x, tc.gmin, tc.srcScale, tc.phase)

		ws := cc.dcWS()
		ws.prepare(cc, tc.gmin, tc.srcScale, tc.phase)
		aK := ws.base.Clone()
		bK := append([]float64(nil), ws.baseB...)
		stampMOS(cc, aK, bK, x)

		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !closeEnough(aK.At(i, j), aRef.At(i, j)) {
					t.Fatalf("phase=%d gmin=%g: A[%d,%d] kernel %g, reference %g",
						tc.phase, tc.gmin, i, j, aK.At(i, j), aRef.At(i, j))
				}
			}
			if !closeEnough(bK[i], bRef[i]) {
				t.Fatalf("phase=%d gmin=%g: b[%d] kernel %g, reference %g",
					tc.phase, tc.gmin, i, bK[i], bRef[i])
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= 1e-12*scale
}

// TestDCIterationDoesNotAllocate pins the acceptance criterion: once the
// workspace is warm, a DC Newton iteration on an MDAC-sized circuit does
// zero heap allocations.
func TestDCIterationDoesNotAllocate(t *testing.T) {
	cc := compileDeck(t, benchAmpDeck)
	opts := DCOpts{}
	opts.defaults()
	x0 := make([]float64, cc.layout.Size)
	sol, _, err := newton(cc, x0, opts.Gmin, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := cc.dcWS()
	ws.prepare(cc, opts.Gmin, 1, 0)
	copy(ws.x, sol)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ws.iterate(cc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DC Newton iteration allocates %g objects, want 0", allocs)
	}
}

// TestTranStepDoesNotAllocate checks that an accepted transient step
// (baseline assembly, Newton loop, capacitor commit) is allocation-free
// once the run is warm.
func TestTranStepDoesNotAllocate(t *testing.T) {
	cc := compileDeck(t, benchAmpDeck)
	opts := DCOpts{}
	opts.defaults()
	x0 := make([]float64, cc.layout.Size)
	sol, _, err := newton(cc, x0, opts.Gmin, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	topts := TranOpts{TStop: 1e-9, TStep: 50e-12, MaxNewton: 80}
	tr := newTranRun(cc, topts, sol)
	x := append([]float64(nil), sol...)
	xNext := make([]float64, len(sol))
	// Warm step sizes the LU workspace and settles the companion state.
	if err := tr.advance(x, xNext, 0, topts.TStep, BackwardEuler, 0); err != nil {
		t.Fatal(err)
	}
	x, xNext = xNext, x
	tNow := topts.TStep
	allocs := testing.AllocsPerRun(100, func() {
		if err := tr.advance(x, xNext, tNow, topts.TStep, Trapezoidal, 0); err != nil {
			t.Fatal(err)
		}
		x, xNext = xNext, x
		tNow += topts.TStep
	})
	if allocs != 0 {
		t.Fatalf("accepted transient step allocates %g objects, want 0", allocs)
	}
}
