package sim

import (
	"math"
	"strings"
	"testing"

	"pipesyn/internal/netlist"
)

// batchVariant derives a sizing variant of reuseDeck by substituting
// device geometry and capacitor values. Structure (names, types, nodes)
// is untouched, which is the batch contract.
func batchVariant(t *testing.T, i int) string {
	t.Helper()
	switch i {
	case 0:
		return reuseDeck
	case 1:
		s := strings.ReplaceAll(reuseDeck, "M1 x1 b tail 0 nch W=20u L=0.5u", "M1 x1 b tail 0 nch W=28u L=0.4u")
		s = strings.ReplaceAll(s, "M2 x2 fb tail 0 nch W=20u L=0.5u", "M2 x2 fb tail 0 nch W=28u L=0.4u")
		s = strings.ReplaceAll(s, "C1 a b 1p", "C1 a b 1.5p")
		return s
	case 2:
		s := strings.ReplaceAll(reuseDeck, "M5 out x2 vdd vdd pch W=60u L=0.35u", "M5 out x2 vdd vdd pch W=90u L=0.3u")
		s = strings.ReplaceAll(s, "CL out 0 1p", "CL out 0 2.2p")
		s = strings.ReplaceAll(s, "IB vdd bn DC 20u", "IB vdd bn DC 35u")
		return s
	default:
		t.Fatalf("no variant %d", i)
		return ""
	}
}

// TestBatchBitIdenticalToStandalone: every analysis through the batch
// must reproduce the standalone single-circuit path to the bit, in any
// evaluation order.
func TestBatchBitIdenticalToStandalone(t *testing.T) {
	decks := []string{batchVariant(t, 0), batchVariant(t, 1), batchVariant(t, 2)}
	var circuits []*netlist.Circuit
	for _, d := range decks {
		circuits = append(circuits, parseDeck(t, d))
	}
	bt, err := NewBatch(circuits)
	if err != nil {
		t.Fatal(err)
	}
	tranOpts := TranOpts{
		TStop: 4e-7, TStep: 2e-9,
		ClockPeriod: 1e-7, NonOverlap: 2e-9,
	}
	acOpts := ACOpts{FStart: 1e3, FStop: 1e9, PointsPerDecade: 10}
	// Deliberately out of order to catch state leaking between loads.
	for _, i := range []int{2, 0, 1, 2, 1} {
		refOP, err := OP(circuits[i], DCOpts{})
		if err != nil {
			t.Fatal(err)
		}
		gotOP, err := bt.OP(i, DCOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for node, v := range refOP.V {
			if math.Float64bits(gotOP.V[node]) != math.Float64bits(v) {
				t.Fatalf("cand %d OP node %s: batch %.17g vs standalone %.17g", i, node, gotOP.V[node], v)
			}
		}
		refTr, err := Tran(circuits[i], tranOpts)
		if err != nil {
			t.Fatal(err)
		}
		gotTr, err := bt.Tran(i, tranOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTr.T) != len(refTr.T) {
			t.Fatalf("cand %d: tran lengths differ", i)
		}
		for node, w := range refTr.V {
			gw := gotTr.V[node]
			for k := range w {
				if math.Float64bits(gw[k]) != math.Float64bits(w[k]) {
					t.Fatalf("cand %d tran node %s sample %d: batch %.17g vs standalone %.17g",
						i, node, k, gw[k], w[k])
				}
			}
		}
		refAC, err := AC(circuits[i], refOP, acOpts)
		if err != nil {
			t.Fatal(err)
		}
		gotAC, err := bt.AC(i, gotOP, acOpts)
		if err != nil {
			t.Fatal(err)
		}
		for node, h := range refAC.V {
			gh := gotAC.V[node]
			for k := range h {
				if h[k] != gh[k] {
					t.Fatalf("cand %d AC node %s point %d: batch %v vs standalone %v", i, node, k, gh[k], h[k])
				}
			}
		}
	}
}

// TestBatchRejectsStructureMismatch: a candidate that renames, retypes,
// or rewires an element must be rejected up front.
func TestBatchRejectsStructureMismatch(t *testing.T) {
	base := parseDeck(t, reuseDeck)
	renamed := parseDeck(t, strings.Replace(reuseDeck, "CL out 0 1p", "CX out 0 1p", 1))
	if _, err := NewBatch([]*netlist.Circuit{base, renamed}); err == nil {
		t.Fatal("renamed element accepted into batch")
	}
	rewired := parseDeck(t, strings.Replace(reuseDeck, "CL out 0 1p", "CL out vdd 1p", 1))
	if _, err := NewBatch([]*netlist.Circuit{base, rewired}); err == nil {
		t.Fatal("rewired element accepted into batch")
	}
}

// TestBatchIndexErrors: out-of-range candidate indices fail cleanly.
func TestBatchIndexErrors(t *testing.T) {
	bt, err := NewBatch([]*netlist.Circuit{parseDeck(t, reuseDeck)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bt.OP(1, DCOpts{}); err == nil {
		t.Fatal("index 1 accepted on a 1-candidate batch")
	}
	if _, err := bt.Tran(-1, TranOpts{TStop: 1e-9, TStep: 1e-10}); err == nil {
		t.Fatal("index -1 accepted")
	}
}
