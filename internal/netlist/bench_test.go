package netlist

import "testing"

func BenchmarkParseDeck(b *testing.B) {
	deck := `* bench deck
.subckt inv in out vdd
M1 out in 0 0 nch W=1u L=0.25u
M2 out in vdd vdd pch W=2u L=0.25u
.ends
V1 vdd 0 DC 3.3
VIN a 0 PULSE(0 3.3 1n 0.1n 0.1n 5n 10n)
X1 a b vdd inv
X2 b c vdd inv
X3 c d vdd inv
CL d 0 10f
.model nch nmos (vto=0.45 kp=180u)
.model pch pmos (vto=-0.5 kp=60u)
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(deck); err != nil {
			b.Fatal(err)
		}
	}
}
