package netlist

import (
	"math"
	"strings"
	"testing"
)

const rcDeck = `* simple RC divider
V1 in 0 DC 3.3 AC 1
R1 in out 10k
C1 out 0 1p
.end
`

func TestParseRC(t *testing.T) {
	c, err := Parse(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Elements) != 3 {
		t.Fatalf("got %d elements, want 3", len(c.Elements))
	}
	r := c.Find("R1")
	if r == nil || r.Type != Resistor || r.Value != 10e3 {
		t.Fatalf("R1 = %+v", r)
	}
	cc := c.Find("c1")
	if cc == nil || cc.Type != Capacitor || cc.Value != 1e-12 {
		t.Fatalf("C1 = %+v", cc)
	}
	v := c.Find("V1")
	if v == nil || v.Src == nil || v.Src.DC != 3.3 || v.Src.ACMag != 1 {
		t.Fatalf("V1 = %+v src %+v", v, v.Src)
	}
	nodes := c.NodeNames()
	if len(nodes) != 2 || nodes[0] != "in" || nodes[1] != "out" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	deck := `* title
R1 a b
+ 2k ; trailing comment
* full comment line
C1 b 0 3p
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Find("r1"); r == nil || r.Value != 2e3 {
		t.Fatalf("continuation failed: %+v", r)
	}
	if len(c.Elements) != 2 {
		t.Fatalf("got %d elements", len(c.Elements))
	}
}

func TestParseMOSAndModel(t *testing.T) {
	deck := `* mos
M1 d g s 0 nch W=10u L=0.25u
.model nch nmos (vto=0.45 kp=180u lambda=0.06)
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Find("M1")
	if m == nil || m.Type != MOS {
		t.Fatalf("M1 = %+v", m)
	}
	if w := m.Param("w", 0); math.Abs(w-10e-6) > 1e-18 {
		t.Fatalf("W = %g", w)
	}
	model, err := c.ModelFor(m)
	if err != nil {
		t.Fatal(err)
	}
	if model.Type != "nmos" || model.Param("vto", 0) != 0.45 {
		t.Fatalf("model = %+v", model)
	}
	if kp := model.Param("kp", 0); math.Abs(kp-180e-6) > 1e-12 {
		t.Fatalf("kp = %g", kp)
	}
	// Defaults work.
	if g := model.Param("gamma", 0.5); g != 0.5 {
		t.Fatalf("default param = %g", g)
	}
}

func TestParseControlledSources(t *testing.T) {
	deck := `* ctl
E1 out 0 inp inn 1000
G1 out 0 inp inn 2m
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	e := c.Find("e1")
	if e == nil || e.Type != VCVS || e.Value != 1000 || len(e.Nodes) != 4 {
		t.Fatalf("E1 = %+v", e)
	}
	g := c.Find("g1")
	if g == nil || g.Type != VCCS || math.Abs(g.Value-2e-3) > 1e-15 {
		t.Fatalf("G1 = %+v", g)
	}
}

func TestParseSinSource(t *testing.T) {
	deck := `* sin
V1 in 0 SIN(1.65 0.5 1MEG) AC 1
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Find("v1").Src
	if s.Kind != SrcSin || s.Sin.VO != 1.65 || s.Sin.VA != 0.5 || s.Sin.Freq != 1e6 {
		t.Fatalf("src = %+v", s)
	}
	if s.ACMag != 1 {
		t.Fatalf("ACMag = %g", s.ACMag)
	}
}

func TestParsePulseAndPWL(t *testing.T) {
	deck := `* waveforms
V1 ck 0 PULSE(0 3.3 0 100p 100p 12n 25n)
V2 ramp 0 PWL(0 0 1u 1 2u 0)
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Find("v1").Src
	if p.Kind != SrcPulse || p.Pulse.V2 != 3.3 || math.Abs(p.Pulse.PER-25e-9) > 1e-20 {
		t.Fatalf("pulse = %+v", p)
	}
	w := c.Find("v2").Src
	if w.Kind != SrcPWL || len(w.PWL) != 3 || w.PWL[1].V != 1 {
		t.Fatalf("pwl = %+v", w)
	}
}

// TestParsePWLDuplicateTime: coincident PWL time points are the SPICE
// idiom for an instantaneous step; the parser must keep both points in
// order so evaluation can pick the later value.
func TestParsePWLDuplicateTime(t *testing.T) {
	c, err := Parse("* step\nV1 in 0 PWL(0 0 1u 0 1u 1 2u 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	w := c.Find("v1").Src
	if w.Kind != SrcPWL || len(w.PWL) != 4 {
		t.Fatalf("pwl = %+v", w)
	}
	if w.PWL[1].T != w.PWL[2].T || w.PWL[1].V != 0 || w.PWL[2].V != 1 {
		t.Fatalf("duplicate-time step not preserved in order: %+v", w.PWL)
	}
}

func TestParseParamSubstitution(t *testing.T) {
	deck := `* params
.param cval=2p rbig=100k
R1 a 0 {rbig}
C1 a 0 {cval}
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if c.Find("r1").Value != 100e3 {
		t.Fatalf("rbig = %g", c.Find("r1").Value)
	}
	if c.Find("c1").Value != 2e-12 {
		t.Fatalf("cval = %g", c.Find("c1").Value)
	}
	if _, err := Parse("R1 a 0 {nope}\n"); err == nil {
		t.Fatal("expected undefined-parameter error")
	}
}

func TestSubcktFlatten(t *testing.T) {
	deck := `* hierarchy
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 DC 1
X1 in 0 tap divider
X2 tap 0 tap2 divider
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	// 1 source + 2 instances × 2 resistors.
	if len(c.Elements) != 5 {
		t.Fatalf("got %d elements, want 5: %v", len(c.Elements), c)
	}
	r := c.Find("x1.r1")
	if r == nil {
		t.Fatal("flattened element x1.r1 missing")
	}
	if r.Nodes[0] != "in" || r.Nodes[1] != "tap" {
		t.Fatalf("x1.r1 nodes = %v", r.Nodes)
	}
	r2 := c.Find("x2.r2")
	if r2 == nil || r2.Nodes[0] != "tap2" || r2.Nodes[1] != "0" {
		t.Fatalf("x2.r2 = %+v", r2)
	}
}

func TestSubcktNested(t *testing.T) {
	deck := `* nested
.subckt unit a b
R1 a b 1k
.ends
.subckt pair x y
X1 x m unit
X2 m y unit
.ends
Xtop in 0 pair
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Elements) != 2 {
		t.Fatalf("got %d elements, want 2", len(c.Elements))
	}
	inner := c.Find("xtop.x1.r1")
	if inner == nil {
		names := []string{}
		for _, e := range c.Elements {
			names = append(names, e.Name)
		}
		t.Fatalf("nested flatten missing, have %v", names)
	}
	// Internal node m is namespaced.
	if inner.Nodes[1] != "xtop.m" {
		t.Fatalf("inner nodes = %v", inner.Nodes)
	}
}

func TestSubcktErrors(t *testing.T) {
	if _, err := Parse("X1 a b nope\n"); err == nil {
		t.Fatal("expected undefined subckt error")
	}
	if _, err := Parse(".subckt s a\nR1 a 0 1k\n"); err == nil {
		t.Fatal("expected unterminated subckt error")
	}
	rec := `.subckt s a
X1 a s
.ends
X1 in s
`
	if _, err := Parse(rec); err == nil {
		t.Fatal("expected recursion error")
	}
	if _, err := Parse(".subckt s a\nR1 a 0 1\n.ends\nX1 a b s\n"); err == nil {
		t.Fatal("expected port-count error")
	}
}

func TestParseSwitch(t *testing.T) {
	deck := `* sw
S1 a b swmod phase=1
.model swmod sw (ron=100 roff=1e12)
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Find("s1")
	if s == nil || s.Type != Switch || s.Param("phase", 0) != 1 {
		t.Fatalf("S1 = %+v", s)
	}
	m, err := c.ModelFor(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Param("ron", 0) != 100 {
		t.Fatalf("ron = %g", m.Param("ron", 0))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"Q1 a b c qmod\n",     // unsupported element
		"R1 a\n",              // missing value
		"M1 d g s nch\n",      // missing bulk
		"E1 a 0 b 0\n",        // missing gain
		"R1 a 0 zzz\n",        // bad value
		".model only1arg\n",   // incomplete model
		"V1 a 0 SIN(1 2)\n",   // SIN too short
		"V1 a 0 PULSE(1 2)\n", // PULSE too short
		"V1 a 0 PWL(1 2 3)\n", // odd PWL
		"R1 a 0 1k extra\n",   // non key=value trailing
		".param broken\n",     // bad param syntax
		"V1 a 0 banana\n",     // bad source token
		".ends\n",             // ends without subckt
		".subckt\nR1 a 0 1\n", // subckt without name
		"X1 justsub\n",        // X too short
	}
	for _, deck := range bad {
		if _, err := Parse(deck); err == nil {
			t.Errorf("Parse(%q) should fail", deck)
		}
	}
}

func TestModelErrors(t *testing.T) {
	c, _ := Parse("M1 d g s 0 missing W=1u L=1u\n")
	m := c.Find("m1")
	if _, err := c.ModelFor(m); err == nil {
		t.Fatal("expected undefined model error")
	}
	r := &Element{Name: "r1", Type: Resistor, Nodes: []string{"a", "0"}}
	if _, err := c.ModelFor(r); err == nil {
		t.Fatal("expected no-model error")
	}
}

func TestCircuitAddValidation(t *testing.T) {
	c := New("t")
	if err := c.Add(&Element{Name: "r1", Type: Resistor, Nodes: []string{"a"}}); err == nil {
		t.Fatal("expected node-count error")
	}
	if err := c.Add(&Element{Name: "r1", Type: Resistor, Nodes: []string{"a", ""}}); err == nil {
		t.Fatal("expected empty-node error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	c, err := Parse(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	out := c.String()
	c2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if len(c2.Elements) != len(c.Elements) {
		t.Fatalf("round trip lost elements:\n%s", out)
	}
	if !strings.Contains(out, ".end") {
		t.Fatal("missing .end")
	}
}

func TestAnalysisCardsIgnored(t *testing.T) {
	deck := "R1 a 0 1k\n.op\n.ac dec 10 1 1G\n.tran 1n 1u\n"
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Elements) != 1 {
		t.Fatalf("got %d elements", len(c.Elements))
	}
}

func TestElemTypeStrings(t *testing.T) {
	cases := map[ElemType]string{
		Resistor: "R", Capacitor: "C", VSource: "V", ISource: "I",
		VCVS: "E", VCCS: "G", MOS: "M", Switch: "S", ElemType(99): "?",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestMustAddPanics(t *testing.T) {
	c := New("t")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd with bad node count should panic")
		}
	}()
	c.MustAdd(&Element{Name: "r1", Type: Resistor, Nodes: []string{"a"}})
}

func TestStringRendersEveryType(t *testing.T) {
	deck := `* everything
V1 in 0 DC 1 AC 0.5 2
I1 0 b DC 1m
R1 in b 1k
C1 b 0 1p
E1 c 0 in 0 10
G1 0 c in 0 1m
M1 d in 0 0 nch W=1u L=0.25u
S1 d b swm phase=2
.model nch nmos (vto=0.45)
.model swm sw (ron=100)
`
	c, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	out := c.String()
	for _, want := range []string{"m1 d in 0 0 nch", "s1 d b swm", "AC 0.5", ".model nch nmos", "w=1e-06"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	// And it re-parses.
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
}
