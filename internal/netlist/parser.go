package netlist

import (
	"fmt"
	"strings"

	"pipesyn/internal/units"
)

// Parse reads a SPICE-flavoured deck and elaborates it into a flat Circuit.
// Supported cards: R, C, V, I, E, G, M, S elements; .model; .param;
// .subckt/.ends with X instantiation (flattened, nested allowed); '*' and
// ';' comments; '+' continuation lines. The first line is the title unless
// it parses as a card. Parameter references use {name} after .param.
func Parse(src string) (*Circuit, error) {
	p := &parser{
		params:  map[string]float64{},
		subckts: map[string]*Subckt{},
	}
	return p.parse(src)
}

type parser struct {
	params  map[string]float64
	subckts map[string]*Subckt
}

func (p *parser) parse(src string) (*Circuit, error) {
	lines := joinContinuations(src)
	c := New("")
	var curSub *Subckt // non-nil while inside .subckt
	var topInsts []*Inst

	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "*") {
			if i == 0 && line != "" {
				c.Title = strings.TrimPrefix(line, "*")
			}
			continue
		}
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
			if line == "" {
				continue
			}
		}
		fields := strings.Fields(line)
		head := strings.ToLower(fields[0])
		switch {
		case head == ".end":
			// done; ignore anything after
		case head == ".param":
			if err := p.parseParam(fields[1:]); err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
		case head == ".model":
			m, err := p.parseModel(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
			c.AddModel(m)
		case head == ".subckt":
			if curSub != nil {
				return nil, fmt.Errorf("line %d: nested .subckt definitions are not supported", i+1)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: .subckt needs a name", i+1)
			}
			curSub = &Subckt{Name: strings.ToLower(fields[1]), Ports: lowerAll(fields[2:])}
		case head == ".ends":
			if curSub == nil {
				return nil, fmt.Errorf("line %d: .ends without .subckt", i+1)
			}
			p.subckts[curSub.Name] = curSub
			curSub = nil
		case strings.HasPrefix(head, "."):
			// Analysis cards (.op/.ac/.tran) are handled by the CLI, not
			// the circuit model; skip silently.
		case head[0] == 'x':
			inst, err := p.parseInst(fields)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
			if curSub != nil {
				curSub.Insts = append(curSub.Insts, inst)
			} else {
				topInsts = append(topInsts, inst)
			}
		default:
			e, err := p.parseElement(fields)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
			if curSub != nil {
				curSub.Elements = append(curSub.Elements, e)
			} else if err := c.Add(e); err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
		}
	}
	if curSub != nil {
		return nil, fmt.Errorf("netlist: unterminated .subckt %s", curSub.Name)
	}
	// Flatten subcircuit instances (depth-first, cycle-checked).
	for _, inst := range topInsts {
		if err := p.flatten(c, inst, map[string]bool{}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// flatten expands one instance into c, renaming internal nodes to
// "<instpath>.<node>" and elements to "<instpath>.<name>". The instance's
// own node list is already fully resolved (top-level names, or mapped by
// the enclosing flatten call).
func (p *parser) flatten(c *Circuit, inst *Inst, active map[string]bool) error {
	def, ok := p.subckts[inst.Subckt]
	if !ok {
		return fmt.Errorf("netlist: instance %s references undefined subckt %q", inst.Name, inst.Subckt)
	}
	if active[inst.Subckt] {
		return fmt.Errorf("netlist: recursive subckt %q", inst.Subckt)
	}
	if len(inst.Nodes) != len(def.Ports) {
		return fmt.Errorf("netlist: instance %s has %d nodes, subckt %s has %d ports",
			inst.Name, len(inst.Nodes), def.Name, len(def.Ports))
	}
	active[inst.Subckt] = true
	defer delete(active, inst.Subckt)

	nodeMap := map[string]string{"0": "0", "gnd": "0"}
	for i, port := range def.Ports {
		nodeMap[port] = inst.Nodes[i]
	}
	mapNode := func(n string) string {
		if m, ok := nodeMap[n]; ok {
			return m
		}
		return inst.Name + "." + n
	}
	for _, e := range def.Elements {
		clone := &Element{
			Name:  inst.Name + "." + e.Name,
			Type:  e.Type,
			Value: e.Value,
			Model: e.Model,
			Src:   e.Src,
		}
		if e.Params != nil {
			clone.Params = map[string]float64{}
			for k, v := range e.Params {
				clone.Params[k] = v
			}
		}
		for _, n := range e.Nodes {
			clone.Nodes = append(clone.Nodes, mapNode(n))
		}
		if err := c.Add(clone); err != nil {
			return err
		}
	}
	for _, sub := range def.Insts {
		nested := &Inst{Name: inst.Name + "." + sub.Name, Subckt: sub.Subckt}
		for _, n := range sub.Nodes {
			nested.Nodes = append(nested.Nodes, mapNode(n))
		}
		if err := p.flatten(c, nested, active); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseParam(fields []string) error {
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf(".param entry %q is not name=value", f)
		}
		val, err := p.value(v)
		if err != nil {
			return err
		}
		p.params[strings.ToLower(k)] = val
	}
	return nil
}

func (p *parser) parseModel(fields []string) (*Model, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf(".model needs name and type")
	}
	m := &Model{Name: strings.ToLower(fields[0]), Type: strings.ToLower(fields[1]), Params: map[string]float64{}}
	rest := strings.Join(fields[2:], " ")
	rest = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(rest)
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf(".model parameter %q is not name=value", f)
		}
		val, err := p.value(v)
		if err != nil {
			return nil, err
		}
		m.Params[strings.ToLower(k)] = val
	}
	return m, nil
}

func (p *parser) parseInst(fields []string) (*Inst, error) {
	// Xname n1 n2 ... subcktName
	if len(fields) < 3 {
		return nil, fmt.Errorf("X card needs nodes and a subckt name")
	}
	return &Inst{
		Name:   strings.ToLower(fields[0]),
		Nodes:  lowerAll(fields[1 : len(fields)-1]),
		Subckt: strings.ToLower(fields[len(fields)-1]),
	}, nil
}

func (p *parser) parseElement(fields []string) (*Element, error) {
	name := strings.ToLower(fields[0])
	args := lowerAll(fields[1:])
	e := &Element{Name: name}
	switch name[0] {
	case 'r', 'c':
		if name[0] == 'r' {
			e.Type = Resistor
		} else {
			e.Type = Capacitor
		}
		if len(args) < 3 {
			return nil, fmt.Errorf("%s: needs 2 nodes and a value", name)
		}
		e.Nodes = args[:2]
		v, err := p.value(args[2])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		e.Value = v
		if err := p.keyParams(e, args[3:]); err != nil {
			return nil, err
		}
	case 'v', 'i':
		if name[0] == 'v' {
			e.Type = VSource
		} else {
			e.Type = ISource
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("%s: needs 2 nodes", name)
		}
		e.Nodes = args[:2]
		src, err := p.parseSource(args[2:])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		e.Src = src
	case 'e', 'g':
		if name[0] == 'e' {
			e.Type = VCVS
		} else {
			e.Type = VCCS
		}
		if len(args) < 5 {
			return nil, fmt.Errorf("%s: needs 4 nodes and a gain", name)
		}
		e.Nodes = args[:4]
		v, err := p.value(args[4])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		e.Value = v
	case 'm':
		e.Type = MOS
		if len(args) < 5 {
			return nil, fmt.Errorf("%s: needs d g s b and a model", name)
		}
		e.Nodes = args[:4]
		e.Model = args[4]
		if err := p.keyParams(e, args[5:]); err != nil {
			return nil, err
		}
	case 's':
		e.Type = Switch
		if len(args) < 3 {
			return nil, fmt.Errorf("%s: needs 2 nodes and a model", name)
		}
		e.Nodes = args[:2]
		e.Model = args[2]
		if err := p.keyParams(e, args[3:]); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unsupported element %q", name)
	}
	return e, nil
}

// parseSource handles "DC v", "AC mag [phase]", "SIN(...)", "PULSE(...)",
// "PWL(...)" and bare numeric DC values, in any order.
func (p *parser) parseSource(args []string) (*Source, error) {
	s := &Source{}
	// Re-tokenize so parentheses separate cleanly: "sin(0" → "sin ( 0".
	joined := strings.Join(args, " ")
	joined = strings.NewReplacer("(", " ( ", ")", " ) ", ",", " ").Replace(joined)
	toks := strings.Fields(joined)
	i := 0
	next := func() (string, bool) {
		if i < len(toks) {
			t := toks[i]
			i++
			return t, true
		}
		return "", false
	}
	readGroup := func() ([]float64, error) {
		var vals []float64
		t, ok := next()
		paren := false
		if ok && t == "(" {
			paren = true
			t, ok = next()
		}
		for ok && t != ")" {
			v, err := p.value(t)
			if err != nil {
				if paren {
					return nil, err
				}
				i-- // not ours; push back
				break
			}
			vals = append(vals, v)
			t, ok = next()
		}
		return vals, nil
	}
	for {
		t, ok := next()
		if !ok {
			break
		}
		switch t {
		case "dc":
			t2, ok := next()
			if !ok {
				return nil, fmt.Errorf("DC needs a value")
			}
			v, err := p.value(t2)
			if err != nil {
				return nil, err
			}
			s.DC = v
		case "ac":
			t2, ok := next()
			if !ok {
				return nil, fmt.Errorf("AC needs a magnitude")
			}
			v, err := p.value(t2)
			if err != nil {
				return nil, err
			}
			s.ACMag = v
			if i < len(toks) {
				if ph, err := p.value(toks[i]); err == nil {
					s.ACPhase = ph
					i++
				}
			}
		case "sin":
			vals, err := readGroup()
			if err != nil {
				return nil, err
			}
			if len(vals) < 3 {
				return nil, fmt.Errorf("SIN needs VO VA FREQ")
			}
			s.Kind = SrcSin
			s.Sin.VO, s.Sin.VA, s.Sin.Freq = vals[0], vals[1], vals[2]
			if len(vals) > 3 {
				s.Sin.Delay = vals[3]
			}
			if len(vals) > 4 {
				s.Sin.Phase = vals[4]
			}
		case "pulse":
			vals, err := readGroup()
			if err != nil {
				return nil, err
			}
			if len(vals) < 7 {
				return nil, fmt.Errorf("PULSE needs V1 V2 TD TR TF PW PER")
			}
			s.Kind = SrcPulse
			s.Pulse.V1, s.Pulse.V2, s.Pulse.TD = vals[0], vals[1], vals[2]
			s.Pulse.TR, s.Pulse.TF, s.Pulse.PW, s.Pulse.PER = vals[3], vals[4], vals[5], vals[6]
		case "pwl":
			vals, err := readGroup()
			if err != nil {
				return nil, err
			}
			if len(vals)%2 != 0 || len(vals) == 0 {
				return nil, fmt.Errorf("PWL needs (t,v) pairs")
			}
			s.Kind = SrcPWL
			for j := 0; j < len(vals); j += 2 {
				s.PWL = append(s.PWL, struct{ T, V float64 }{vals[j], vals[j+1]})
			}
		default:
			// Bare value is DC.
			v, err := p.value(t)
			if err != nil {
				return nil, fmt.Errorf("unrecognized source token %q", t)
			}
			s.DC = v
		}
	}
	return s, nil
}

// keyParams parses trailing name=value pairs into e.Params.
func (p *parser) keyParams(e *Element, args []string) error {
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("%s: expected name=value, got %q", e.Name, a)
		}
		val, err := p.value(v)
		if err != nil {
			return fmt.Errorf("%s: %v", e.Name, err)
		}
		if e.Params == nil {
			e.Params = map[string]float64{}
		}
		e.Params[strings.ToLower(k)] = val
	}
	return nil
}

// value resolves "{param}" references and engineering-notation literals.
func (p *parser) value(tok string) (float64, error) {
	if strings.HasPrefix(tok, "{") && strings.HasSuffix(tok, "}") {
		name := strings.ToLower(tok[1 : len(tok)-1])
		v, ok := p.params[name]
		if !ok {
			return 0, fmt.Errorf("undefined parameter %q", name)
		}
		return v, nil
	}
	return units.Parse(tok)
}

// joinContinuations merges SPICE '+' continuation lines.
func joinContinuations(src string) []string {
	raw := strings.Split(src, "\n")
	var out []string
	for _, line := range raw {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "+") && len(out) > 0 {
			out[len(out)-1] += " " + strings.TrimPrefix(trimmed, "+")
		} else {
			out = append(out, line)
		}
	}
	return out
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}
