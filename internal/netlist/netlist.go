// Package netlist defines the circuit data model shared by the simulator,
// the small-signal extractor and the circuit generators, together with a
// SPICE-flavoured deck parser. The model is deliberately close to Berkeley
// SPICE: named nodes with "0" as ground, two-terminal primitives, MOSFETs
// referencing .model cards, controlled sources, ideal clocked switches, and
// hierarchical .subckt definitions that are flattened before simulation.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// ElemType enumerates the supported element classes.
type ElemType int

const (
	Resistor  ElemType = iota // R: n+ n- value
	Capacitor                 // C: n+ n- value [ic=v]
	VSource                   // V: n+ n- source spec
	ISource                   // I: n+ n- source spec
	VCVS                      // E: out+ out- ctrl+ ctrl- gain
	VCCS                      // G: out+ out- ctrl+ ctrl- gm
	MOS                       // M: d g s b model W= L=
	Switch                    // S: n+ n- model (clocked via phase param)
)

func (t ElemType) String() string {
	switch t {
	case Resistor:
		return "R"
	case Capacitor:
		return "C"
	case VSource:
		return "V"
	case ISource:
		return "I"
	case VCVS:
		return "E"
	case VCCS:
		return "G"
	case MOS:
		return "M"
	case Switch:
		return "S"
	}
	return "?"
}

// SourceKind enumerates independent-source waveforms.
type SourceKind int

const (
	SrcDC SourceKind = iota
	SrcSin
	SrcPulse
	SrcPWL
)

// Source describes an independent source: a DC operating value, an AC
// small-signal magnitude/phase for .ac analysis, and an optional transient
// waveform.
type Source struct {
	DC      float64
	ACMag   float64
	ACPhase float64 // degrees
	Kind    SourceKind
	// SIN(VO VA FREQ TD PHASE): offset, amplitude, frequency, delay, phase°.
	Sin struct{ VO, VA, Freq, Delay, Phase float64 }
	// PULSE(V1 V2 TD TR TF PW PER).
	Pulse struct{ V1, V2, TD, TR, TF, PW, PER float64 }
	// PWL points (t, v).
	PWL []struct{ T, V float64 }
}

// Element is one circuit element instance.
type Element struct {
	Name   string
	Type   ElemType
	Nodes  []string
	Value  float64
	Model  string
	Params map[string]float64
	Src    *Source
}

// Param returns a named parameter with a default.
func (e *Element) Param(name string, def float64) float64 {
	if e.Params != nil {
		if v, ok := e.Params[strings.ToLower(name)]; ok {
			return v
		}
	}
	return def
}

// Model is a .model card: a named parameter bag with a type tag
// ("nmos", "pmos", "sw").
type Model struct {
	Name   string
	Type   string
	Params map[string]float64
}

// Param returns a named model parameter with a default.
func (m *Model) Param(name string, def float64) float64 {
	if m == nil {
		return def
	}
	if v, ok := m.Params[strings.ToLower(name)]; ok {
		return v
	}
	return def
}

// Subckt is a .subckt definition before flattening.
type Subckt struct {
	Name     string
	Ports    []string
	Elements []*Element
	Insts    []*Inst
}

// Inst is an X-card instantiation of a subcircuit.
type Inst struct {
	Name   string
	Nodes  []string
	Subckt string
}

// Circuit is a flat (post-elaboration) circuit plus its model cards.
type Circuit struct {
	Title    string
	Elements []*Element
	Models   map[string]*Model
}

// New returns an empty circuit.
func New(title string) *Circuit {
	return &Circuit{Title: title, Models: map[string]*Model{}}
}

// Add appends an element, validating its terminal count.
func (c *Circuit) Add(e *Element) error {
	want := map[ElemType]int{
		Resistor: 2, Capacitor: 2, VSource: 2, ISource: 2,
		VCVS: 4, VCCS: 4, MOS: 4, Switch: 2,
	}[e.Type]
	if len(e.Nodes) != want {
		return fmt.Errorf("netlist: %s needs %d nodes, got %d", e.Name, want, len(e.Nodes))
	}
	for _, n := range e.Nodes {
		if n == "" {
			return fmt.Errorf("netlist: %s has empty node name", e.Name)
		}
	}
	c.Elements = append(c.Elements, e)
	return nil
}

// MustAdd is Add for generated circuits; it panics on error because a bad
// terminal count there is a programming bug, not user input.
func (c *Circuit) MustAdd(e *Element) {
	if err := c.Add(e); err != nil {
		panic(err)
	}
}

// AddModel registers a model card.
func (c *Circuit) AddModel(m *Model) { c.Models[strings.ToLower(m.Name)] = m }

// ModelFor returns the model referenced by an element, or an error if the
// element names a model that was never defined.
func (c *Circuit) ModelFor(e *Element) (*Model, error) {
	if e.Model == "" {
		return nil, fmt.Errorf("netlist: element %s has no model", e.Name)
	}
	m, ok := c.Models[strings.ToLower(e.Model)]
	if !ok {
		return nil, fmt.Errorf("netlist: element %s references undefined model %q", e.Name, e.Model)
	}
	return m, nil
}

// NodeNames returns every node name (except ground "0"), sorted.
func (c *Circuit) NodeNames() []string {
	set := map[string]bool{}
	for _, e := range c.Elements {
		for _, n := range e.Nodes {
			if n != "0" && n != "gnd" {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Find returns the element with the given (case-insensitive) name.
func (c *Circuit) Find(name string) *Element {
	ln := strings.ToLower(name)
	for _, e := range c.Elements {
		if strings.ToLower(e.Name) == ln {
			return e
		}
	}
	return nil
}

// String renders the circuit as a deck, round-trippable through Parse for
// the element types this package defines.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", c.Title)
	for _, e := range c.Elements {
		fmt.Fprintf(&b, "%s %s", e.Name, strings.Join(e.Nodes, " "))
		switch e.Type {
		case Resistor, Capacitor, VCVS, VCCS:
			fmt.Fprintf(&b, " %g", e.Value)
		case MOS, Switch:
			fmt.Fprintf(&b, " %s", e.Model)
		case VSource, ISource:
			if e.Src != nil {
				fmt.Fprintf(&b, " DC %g", e.Src.DC)
				if e.Src.ACMag != 0 {
					fmt.Fprintf(&b, " AC %g %g", e.Src.ACMag, e.Src.ACPhase)
				}
			}
		}
		if e.Params != nil {
			keys := make([]string, 0, len(e.Params))
			for k := range e.Params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%g", k, e.Params[k])
			}
		}
		b.WriteByte('\n')
	}
	names := make([]string, 0, len(c.Models))
	for n := range c.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := c.Models[n]
		fmt.Fprintf(&b, ".model %s %s", m.Name, m.Type)
		keys := make([]string, 0, len(m.Params))
		for k := range m.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%g", k, m.Params[k])
		}
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}
