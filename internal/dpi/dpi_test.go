package dpi

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesyn/internal/netlist"
	"pipesyn/internal/sim"
)

func parse(t *testing.T, deck string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRCLowpassSymbolic(t *testing.T) {
	c := parse(t, `* rc
V1 in 0 DC 0 AC 1
R1 in out 10k
C1 out 0 1p
`)
	a, err := Build(c, Options{IncludeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	// Symbolic vars must be exactly {c_c1, g_r1, s}.
	vars := h.Vars()
	want := map[string]bool{"c_c1": true, "g_r1": true, "s": true}
	for _, v := range vars {
		if !want[v] {
			t.Fatalf("unexpected symbol %q in %s", v, h)
		}
	}
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Env(c, op, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rat, err := h.ToRat("s", env)
	if err != nil {
		t.Fatal(err)
	}
	if g := rat.DCGain(); math.Abs(g-1) > 1e-9 {
		t.Fatalf("DC gain = %g, want 1", g)
	}
	poles := rat.Poles()
	wantPole := -1.0 / (10e3 * 1e-12)
	if len(poles) != 1 || math.Abs(real(poles[0])-wantPole) > 1e-3*math.Abs(wantPole) {
		t.Fatalf("poles = %v, want %g", poles, wantPole)
	}
}

func TestVoltageDividerSymbolic(t *testing.T) {
	c := parse(t, `* divider
V1 in 0 AC 1
R1 in out 1k
R2 out 0 3k
`)
	a, err := Build(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Eval(map[string]float64{"g_r1": 1e-3, "g_r2": 1.0 / 3e3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("H = %g, want 0.75", got)
	}
}

// The headline consistency check of the hybrid method: the DPI/SFG
// symbolic transfer function, bound with DC-extracted small-signal values,
// must match a full AC simulation of the same common-source amplifier
// across the band.
func TestCommonSourceMatchesACSim(t *testing.T) {
	deck := `* cs amp
V1 vdd 0 DC 3.3
VG in 0 DC 0.9 AC 1
RD vdd d 2k
M1 d in 0 0 nch W=20u L=0.5u
CL d 0 100f
.model nch nmos (vto=0.45 kp=180u lambda=0.05 gamma=0)
`
	c := parse(t, deck)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(c, Options{IncludeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.TransferFunction("d")
	if err != nil {
		t.Fatal(err)
	}
	env, err := Env(c, op, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rat, err := h.ToRat("s", env)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := sim.AC(c, op, sim.ACOpts{FStart: 1e3, FStop: 10e9, PointsPerDecade: 10})
	if err != nil {
		t.Fatal(err)
	}
	hv, _ := ac.Transfer("d")
	for i, f := range ac.Freqs {
		want := hv[i]
		got := rat.EvalJW(2 * math.Pi * f)
		if cmplx.Abs(got-want) > 0.02*(1+cmplx.Abs(want)) {
			t.Fatalf("hybrid TF diverges from AC sim at %g Hz: %v vs %v", f, got, want)
		}
	}
	// Sanity: inverting gain gm·(RD∥ro) at low frequency.
	mos := op.MOS["m1"]
	wantGain := -mos.GM * (2e3 * (1 / mos.GDS) / (2e3 + 1/mos.GDS))
	if g := rat.DCGain(); math.Abs(g-wantGain) > 0.01*math.Abs(wantGain) {
		t.Fatalf("DC gain = %g, want %g", g, wantGain)
	}
}

func TestSupplyHandling(t *testing.T) {
	// VDD with no AC magnitude must be treated as AC ground, so RD shows
	// up as a load to ground, not a feed-through path.
	c := parse(t, `* supply grounding
V1 vdd 0 DC 3.3
VIN in 0 AC 1
R1 in out 1k
R2 vdd out 1k
`)
	a, err := Build(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Eval(map[string]float64{"g_r1": 1e-3, "g_r2": 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("H = %g, want 0.5", got)
	}
}

func TestSwitchEnv(t *testing.T) {
	c := parse(t, `* switch path
VIN in 0 AC 1
S1 in out swm phase=1
R1 out 0 1k
.model swm sw (ron=1k roff=1e12)
`)
	a, err := Build(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	op, err := sim.OP(c, sim.DCOpts{SwitchPhase: 1})
	if err != nil {
		t.Fatal(err)
	}
	envOn, _ := Env(c, op, Options{SwitchPhase: 1})
	envOff, _ := Env(c, op, Options{SwitchPhase: 2})
	on, _ := h.Eval(envOn)
	off, _ := h.Eval(envOff)
	if math.Abs(on-0.5) > 1e-9 || off > 1e-6 {
		t.Fatalf("switch transfer on=%g off=%g", on, off)
	}
}

func TestBuildErrors(t *testing.T) {
	// No input.
	c := parse(t, "R1 a 0 1k\n")
	if _, err := Build(c, Options{}); err == nil {
		t.Fatal("expected no-input error")
	}
	// VCVS rejected.
	c = parse(t, "VIN in 0 AC 1\nE1 out 0 in 0 10\nR1 out 0 1k\nR2 in 0 1k\n")
	if _, err := Build(c, Options{}); err == nil {
		t.Fatal("expected VCVS error")
	}
	// Input aliased to supply ground.
	c = parse(t, "V1 in 0 DC 3.3\nR1 in out 1k\nR2 out 0 1k\n")
	if _, err := Build(c, Options{Input: "in"}); err == nil {
		t.Fatal("expected grounded-input error")
	}
	// Input not touching anything.
	c = parse(t, "VIN in 0 AC 1\nR1 a 0 1k\nR2 a b 1k\n")
	if _, err := Build(c, Options{}); err == nil {
		t.Fatal("expected untouched-input error")
	}
	// Floating node: a VCCS drives "out" but nothing loads it, so the
	// node has no self-admittance and no DPI exists.
	c = parse(t, "VIN in 0 AC 1\nR1 in 0 1k\nG1 0 out in 0 1m\n")
	if _, err := Build(c, Options{}); err == nil {
		t.Fatal("expected floating-node error")
	}
	// Non-ground-referenced supply rejected.
	c = parse(t, "V1 a b DC 1\nVIN in 0 AC 1\nR1 in a 1k\nR2 b 0 1k\n")
	if _, err := Build(c, Options{}); err == nil {
		t.Fatal("expected supply-reference error")
	}
}

func TestEnvErrors(t *testing.T) {
	c := parse(t, `* missing op
VIN in 0 DC 1 AC 1
R1 in d 1k
M1 d in 0 0 nch W=1u L=1u
.model nch nmos ()
`)
	// An OP result that lacks the transistor.
	bare := &sim.DCResult{}
	if _, err := Env(c, bare, Options{}); err == nil {
		t.Fatal("expected missing-OP error")
	}
}

// Property-flavoured integration: for random RC ladders the DPI/SFG
// transfer function matches AC simulation at several frequencies.
func TestRandomRCLaddersMatchSim(t *testing.T) {
	decks := []string{
		`* ladder2
VIN in 0 AC 1
R1 in n1 1k
C1 n1 0 2p
R2 n1 n2 4k
C2 n2 0 1p
`,
		`* ladder with bridge cap
VIN in 0 AC 1
R1 in n1 2k
C1 n1 0 1p
C2 n1 n2 0.5p
R2 n2 0 8k
`,
		`* tee
VIN in 0 AC 1
R1 in n1 1k
R2 n1 n2 1k
C1 n1 0 3p
R3 n2 0 5k
C2 n2 0 0.2p
`,
	}
	for _, deck := range decks {
		c := parse(t, deck)
		op, err := sim.OP(c, sim.DCOpts{})
		if err != nil {
			t.Fatalf("%s: %v", deck[:12], err)
		}
		a, err := Build(c, Options{IncludeCaps: true})
		if err != nil {
			t.Fatal(err)
		}
		out := "n2"
		h, err := a.TransferFunction(out)
		if err != nil {
			t.Fatal(err)
		}
		env, _ := Env(c, op, Options{})
		rat, err := h.ToRat("s", env)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := sim.AC(c, op, sim.ACOpts{FStart: 1e3, FStop: 1e9, PointsPerDecade: 5})
		if err != nil {
			t.Fatal(err)
		}
		hv, _ := ac.Transfer(out)
		for i, f := range ac.Freqs {
			got := rat.EvalJW(2 * math.Pi * f)
			if cmplx.Abs(got-hv[i]) > 1e-3*(1+cmplx.Abs(hv[i])) {
				t.Fatalf("deck %q at %g Hz: %v vs %v", deck[:12], f, got, hv[i])
			}
		}
	}
}

// Property: for randomly generated RC/VCCS networks, the DPI/SFG + Mason
// transfer function (evaluated via the compiled program) matches the AC
// simulator at every probe frequency. This pits the two independent
// analysis paths — symbolic graph algebra and numeric matrix solves —
// against each other over a family of topologies.
func TestRandomNetworksMatchSimProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(3) + 2 // 2..4 internal nodes
		c := netlist.New("random network")
		c.MustAdd(&netlist.Element{
			Name: "vin", Type: netlist.VSource, Nodes: []string{"in", "0"},
			Src: &netlist.Source{ACMag: 1},
		})
		node := func(i int) string { return fmt.Sprintf("n%d", i) }
		// Series resistor chain guarantees every node a DC path.
		prev := "in"
		for i := 0; i < n; i++ {
			c.MustAdd(&netlist.Element{
				Name: fmt.Sprintf("r%d", i), Type: netlist.Resistor,
				Nodes: []string{prev, node(i)}, Value: 1e3 * (1 + 9*r.Float64()),
			})
			prev = node(i)
		}
		// Grounding resistor plus random caps and an occasional VCCS.
		c.MustAdd(&netlist.Element{
			Name: "rl", Type: netlist.Resistor,
			Nodes: []string{prev, "0"}, Value: 1e3 * (1 + 9*r.Float64()),
		})
		for i := 0; i < n; i++ {
			c.MustAdd(&netlist.Element{
				Name: fmt.Sprintf("c%d", i), Type: netlist.Capacitor,
				Nodes: []string{node(i), "0"}, Value: 1e-12 * (0.2 + r.Float64()),
			})
			if r.Float64() < 0.5 && i > 0 {
				c.MustAdd(&netlist.Element{
					Name: fmt.Sprintf("cb%d", i), Type: netlist.Capacitor,
					Nodes: []string{node(i - 1), node(i)}, Value: 0.3e-12 * r.Float64(),
				})
			}
		}
		if r.Float64() < 0.5 {
			c.MustAdd(&netlist.Element{
				Name: "g1", Type: netlist.VCCS,
				Nodes: []string{"0", node(n - 1), node(0), "0"},
				Value: 1e-4 * (1 + r.Float64()),
			})
		}
		out := node(n - 1)

		op, err := sim.OP(c, sim.DCOpts{})
		if err != nil {
			return false
		}
		a, err := Build(c, Options{IncludeCaps: true})
		if err != nil {
			return false
		}
		tf, err := a.TransferFunction(out)
		if err != nil {
			return false
		}
		env, err := Env(c, op, Options{})
		if err != nil {
			return false
		}
		prog, vars, err := tf.Compile()
		if err != nil {
			return false
		}
		vals := make([]complex128, len(vars))
		sIdx := -1
		for i, name := range vars {
			if name == "s" {
				sIdx = i
				continue
			}
			vals[i] = complex(env[name], 0)
		}
		ac, err := sim.AC(c, op, sim.ACOpts{FStart: 1e4, FStop: 1e9, PointsPerDecade: 2})
		if err != nil {
			return false
		}
		hv, _ := ac.Transfer(out)
		for i, f := range ac.Freqs {
			if sIdx >= 0 {
				vals[sIdx] = complex(0, 2*math.Pi*f)
			}
			got, err := prog.EvalC(vals)
			if err != nil {
				return false
			}
			if cmplx.Abs(got-hv[i]) > 1e-6*(1+cmplx.Abs(hv[i])) {
				t.Logf("seed %d: mismatch at %g Hz: %v vs %v", seed, f, got, hv[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
