package dpi

import (
	"fmt"
	"math"
	"sort"

	"pipesyn/internal/expr"
)

// Sensitivity is one parameter's normalized influence on a transfer
// function at a given frequency: S_p = (p/H)·∂H/∂p, the classical Bode
// sensitivity. |S| ≈ 0 marks a parameter the optimizer can ignore;
// |S| ≈ 1 marks one that moves the response one-for-one. The paper's §3
// uses exactly this kind of DPI/SFG-derived insight to "reduce the range
// of the design variables that define the design space".
type Sensitivity struct {
	Param string
	S     complex128
}

// Mag returns |S|.
func (s Sensitivity) Mag() float64 {
	return math.Hypot(real(s.S), imag(s.S))
}

// Sensitivities evaluates the normalized sensitivity of the symbolic
// transfer function tf to every bound parameter at s = jω, sorted by
// descending magnitude. The Laplace variable itself is skipped.
func Sensitivities(tf expr.Expr, env map[string]float64, omega float64) ([]Sensitivity, error) {
	cenv := make(map[string]complex128, len(env)+1)
	for k, v := range env {
		cenv[k] = complex(v, 0)
	}
	cenv["s"] = complex(0, omega)
	h, err := tf.EvalC(cenv)
	if err != nil {
		return nil, err
	}
	if h == 0 {
		return nil, fmt.Errorf("dpi: transfer function is zero at ω=%g; sensitivity undefined", omega)
	}
	var out []Sensitivity
	for _, p := range tf.Vars() {
		if p == "s" {
			continue
		}
		pv, ok := env[p]
		if !ok {
			return nil, fmt.Errorf("dpi: unbound parameter %q", p)
		}
		d := tf.Diff(p)
		dv, err := d.EvalC(cenv)
		if err != nil {
			return nil, err
		}
		out = append(out, Sensitivity{Param: p, S: complex(pv, 0) * dv / h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mag() > out[j].Mag() })
	return out, nil
}

// DominantParams returns the parameters whose sensitivity magnitude is at
// least frac of the largest one — the short list a designer would sweep.
func DominantParams(sens []Sensitivity, frac float64) []string {
	if len(sens) == 0 {
		return nil
	}
	floor := sens[0].Mag() * frac
	var out []string
	for _, s := range sens {
		if s.Mag() >= floor {
			out = append(out, s.Param)
		}
	}
	return out
}
