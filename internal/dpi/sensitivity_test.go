package dpi

import (
	"math"
	"testing"

	"pipesyn/internal/sim"
)

func TestSensitivityRCLowpass(t *testing.T) {
	c := parse(t, `* rc
V1 in 0 AC 1
R1 in out 10k
C1 out 0 1p
`)
	a, err := Build(c, Options{IncludeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Env(c, op, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At DC the gain is exactly 1 regardless of R or C: sensitivities ≈ 0.
	sDC, err := Sensitivities(tf, env, 1) // ≈ DC
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sDC {
		if s.Mag() > 1e-6 {
			t.Fatalf("DC sensitivity to %s = %g, want ≈0", s.Param, s.Mag())
		}
	}
	// At the pole frequency H depends on the ratio g/(sC): the two
	// sensitivities are equal in magnitude (1/√2) and opposite in sign.
	wp := 1.0 / (10e3 * 1e-12)
	sp, err := Sensitivities(tf, env, wp)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Sensitivity{}
	for _, s := range sp {
		byName[s.Param] = s
	}
	sg, sc := byName["g_r1"], byName["c_c1"]
	if math.Abs(sg.Mag()-1/math.Sqrt2) > 1e-9 {
		t.Fatalf("|S_g| = %g, want 1/√2", sg.Mag())
	}
	sum := sg.S + sc.S
	if math.Hypot(real(sum), imag(sum)) > 1e-9 {
		t.Fatalf("S_g + S_c = %v, want 0 (ratio dependence)", sum)
	}
}

func TestSensitivityRanksGmFirst(t *testing.T) {
	// Common-source amplifier in-band: gain ≈ −gm·(RD∥ro); gm and the
	// load dominate, junction capacitances are negligible at DC.
	deck := `* cs amp
V1 vdd 0 DC 3.3
VG in 0 DC 0.9 AC 1
RD vdd d 2k
M1 d in 0 0 nch W=20u L=0.5u
.model nch nmos (vto=0.45 kp=180u lambda=0.05 gamma=0)
`
	c := parse(t, deck)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(c, Options{IncludeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := a.TransferFunction("d")
	if err != nil {
		t.Fatal(err)
	}
	env, err := Env(c, op, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sens, err := Sensitivities(tf, env, 2*math.Pi*1e3)
	if err != nil {
		t.Fatal(err)
	}
	if sens[0].Param != "gm_m1" {
		t.Fatalf("top sensitivity = %s, want gm_m1 (%v)", sens[0].Param, sens[:3])
	}
	dom := DominantParams(sens, 0.5)
	// gm and the resistive load define the in-band gain; capacitors must
	// not make the 50 % cut at 1 kHz.
	for _, p := range dom {
		if p[0] == 'c' {
			t.Fatalf("capacitance %s should be negligible in-band: %v", p, dom)
		}
	}
}

// Property: sensitivities agree with a central finite difference on the
// magnitude response.
func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	c := parse(t, `* two-pole
VIN in 0 AC 1
R1 in a 1k
C1 a 0 2p
R2 a out 5k
C2 out 0 1p
`)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(c, Options{IncludeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := a.TransferFunction("out")
	if err != nil {
		t.Fatal(err)
	}
	env, err := Env(c, op, Options{})
	if err != nil {
		t.Fatal(err)
	}
	omega := 2 * math.Pi * 50e6
	sens, err := Sensitivities(tf, env, omega)
	if err != nil {
		t.Fatal(err)
	}
	evalH := func(e map[string]float64) complex128 {
		ce := map[string]complex128{"s": complex(0, omega)}
		for k, v := range e {
			ce[k] = complex(v, 0)
		}
		v, err := tf.EvalC(ce)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	h0 := evalH(env)
	for _, s := range sens {
		p := s.Param
		rel := 1e-6
		up := map[string]float64{}
		dn := map[string]float64{}
		for k, v := range env {
			up[k], dn[k] = v, v
		}
		up[p] = env[p] * (1 + rel)
		dn[p] = env[p] * (1 - rel)
		num := (evalH(up) - evalH(dn)) / complex(2*rel, 0) / h0
		diff := num - s.S
		if math.Hypot(real(diff), imag(diff)) > 1e-4*(1+s.Mag()) {
			t.Fatalf("sensitivity mismatch for %s: symbolic %v vs numeric %v", p, s.S, num)
		}
	}
}

func TestSensitivityErrors(t *testing.T) {
	c := parse(t, "VIN in 0 AC 1\nR1 in out 1k\nR2 out 0 1k\n")
	a, _ := Build(c, Options{})
	tf, _ := a.TransferFunction("out")
	if _, err := Sensitivities(tf, map[string]float64{}, 1); err == nil {
		t.Fatal("expected unbound-parameter error")
	}
	if got := DominantParams(nil, 0.5); got != nil {
		t.Fatal("empty input should yield nil")
	}
}
