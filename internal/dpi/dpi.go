// Package dpi implements the Driving-Point-Impedance / Signal-Flow-Graph
// construction of the paper's block-level synthesis flow (§3, step 1):
// a linearized circuit is rewritten as a signal-flow graph whose node
// equations read V_i = DPI_i · (injected currents), where DPI_i = 1/Y_ii is
// the driving-point impedance of node i and the branch from V_j into V_i
// carries gain −Y_ij/Y_ii. Applying Mason's rule to this graph (package
// sfg) yields the circuit's symbolic transfer function in terms of named
// small-signal parameters (gm_m1, gds_m1, cgs_m1, g_r1, c_c1, …); binding
// those names to values extracted from a DC simulation (package sim) gives
// the fast numerical transfer function used by the hybrid evaluator.
package dpi

import (
	"fmt"

	"pipesyn/internal/expr"
	"pipesyn/internal/netlist"
	"pipesyn/internal/sfg"
	"pipesyn/internal/sim"
)

// Options controls graph construction.
type Options struct {
	// Input names the AC input node. If empty, Build looks for the unique
	// voltage source with a non-zero AC magnitude and uses its + node.
	Input string
	// IncludeCaps adds capacitor and MOS-capacitance branches (s-domain
	// dynamics). Without them the graph yields the DC small-signal gain.
	IncludeCaps bool
	// SwitchPhase selects which clock phase is considered closed when the
	// circuit contains clocked switches.
	SwitchPhase int
	// ACGround lists nodes to treat as small-signal ground beyond the
	// supplies — typically low-impedance bias nodes (diode-connected
	// mirror gates). Collapsing them is the designer's usual first
	// simplification and shrinks the Mason loop set dramatically.
	ACGround []string
}

// Analysis is a constructed DPI/SFG ready for Mason's rule.
type Analysis struct {
	Graph   *sfg.Graph
	Input   string // SFG source node name
	Circuit *netlist.Circuit
	opts    Options
}

// yMatrix accumulates the symbolic nodal admittance matrix.
type yMatrix struct {
	names []string
	index map[string]int
	y     map[[2]int]expr.Expr
}

func newYMatrix() *yMatrix {
	return &yMatrix{index: map[string]int{}, y: map[[2]int]expr.Expr{}}
}

func (m *yMatrix) node(name string) int {
	if i, ok := m.index[name]; ok {
		return i
	}
	i := len(m.names)
	m.names = append(m.names, name)
	m.index[name] = i
	return i
}

func (m *yMatrix) add(i, j int, g expr.Expr) {
	if i < 0 || j < 0 {
		return
	}
	key := [2]int{i, j}
	if old, ok := m.y[key]; ok {
		m.y[key] = expr.Add(old, g)
	} else {
		m.y[key] = g
	}
}

// stampAdmittance places a two-terminal admittance between nodes a and b
// (indices, -1 = ground).
func (m *yMatrix) stampAdmittance(a, b int, g expr.Expr) {
	m.add(a, a, g)
	m.add(b, b, g)
	m.add(a, b, expr.Neg(g))
	m.add(b, a, expr.Neg(g))
}

// stampVCCS places i(p→n) = g·(v_cp − v_cn).
func (m *yMatrix) stampVCCS(p, n, cp, cn int, g expr.Expr) {
	m.add(p, cp, g)
	m.add(p, cn, expr.Neg(g))
	m.add(n, cp, expr.Neg(g))
	m.add(n, cn, g)
}

// Build constructs the DPI/SFG for a circuit. Supply-type voltage sources
// (AC magnitude zero) are treated as AC ground, the input source as the
// SFG source node. VCVS elements are not supported in symbolic analysis —
// real designs model gain with VCCS + load, and the restriction keeps the
// nodal formulation pure.
func Build(c *netlist.Circuit, opts Options) (*Analysis, error) {
	// Identify ground-aliased nodes (supply rails) and the input node.
	grounded := map[string]bool{"0": true, "gnd": true}
	for _, n := range opts.ACGround {
		grounded[n] = true
	}
	input := opts.Input
	for _, e := range c.Elements {
		if e.Type != netlist.VSource {
			continue
		}
		if e.Src != nil && e.Src.ACMag != 0 {
			if input == "" {
				input = e.Nodes[0]
			}
		} else if !isGroundName(e.Nodes[1]) {
			return nil, fmt.Errorf("dpi: supply %s must be ground-referenced", e.Name)
		} else {
			grounded[e.Nodes[0]] = true
		}
	}
	if input == "" {
		return nil, fmt.Errorf("dpi: no input node: set Options.Input or add a source with AC magnitude")
	}
	if grounded[input] {
		return nil, fmt.Errorf("dpi: input node %q is tied to an AC ground", input)
	}

	ym := newYMatrix()
	// Index every non-grounded node; the input participates in stamps as a
	// column (known voltage) but has no row of its own.
	nodeOf := func(name string) int {
		if grounded[name] {
			return -1
		}
		return ym.node(name)
	}
	for _, e := range c.Elements {
		switch e.Type {
		case netlist.Resistor:
			g := expr.V("g_" + e.Name)
			ym.stampAdmittance(nodeOf(e.Nodes[0]), nodeOf(e.Nodes[1]), g)
		case netlist.Capacitor:
			if !opts.IncludeCaps {
				continue
			}
			g := expr.Mul(expr.V("s"), expr.V("c_"+e.Name))
			ym.stampAdmittance(nodeOf(e.Nodes[0]), nodeOf(e.Nodes[1]), g)
		case netlist.Switch:
			g := expr.V("g_" + e.Name)
			ym.stampAdmittance(nodeOf(e.Nodes[0]), nodeOf(e.Nodes[1]), g)
		case netlist.VCCS:
			g := expr.V("gm_" + e.Name)
			ym.stampVCCS(nodeOf(e.Nodes[0]), nodeOf(e.Nodes[1]), nodeOf(e.Nodes[2]), nodeOf(e.Nodes[3]), g)
		case netlist.MOS:
			d, g, s, b := nodeOf(e.Nodes[0]), nodeOf(e.Nodes[1]), nodeOf(e.Nodes[2]), nodeOf(e.Nodes[3])
			ym.stampVCCS(d, s, g, s, expr.V("gm_"+e.Name))
			ym.stampAdmittance(d, s, expr.V("gds_"+e.Name))
			ym.stampVCCS(d, s, b, s, expr.V("gmb_"+e.Name))
			if opts.IncludeCaps {
				sC := func(suffix string) expr.Expr {
					return expr.Mul(expr.V("s"), expr.V(suffix+"_"+e.Name))
				}
				ym.stampAdmittance(g, s, sC("cgs"))
				ym.stampAdmittance(g, d, sC("cgd"))
				ym.stampAdmittance(g, b, sC("cgb"))
				ym.stampAdmittance(d, b, sC("cdb"))
				ym.stampAdmittance(s, b, sC("csb"))
			}
		case netlist.ISource, netlist.VSource:
			// Independent sources carry no admittance.
		case netlist.VCVS:
			return nil, fmt.Errorf("dpi: VCVS %s unsupported in symbolic analysis; model gain with a VCCS", e.Name)
		}
	}

	// The input node must have been indexed (as a column) by some stamp.
	inIdx, ok := ym.index[input]
	if !ok {
		return nil, fmt.Errorf("dpi: input node %q touches no element", input)
	}

	// Assemble the SFG: V_i = Σ_{j≠i} (−Y_ij/Y_ii)·V_j.
	g := sfg.New()
	g.AddNode(input)
	for i, name := range ym.names {
		if i == inIdx {
			continue // known voltage: source node, no equation
		}
		yii, ok := ym.y[[2]int{i, i}]
		if !ok || yii.IsZero() {
			return nil, fmt.Errorf("dpi: node %q has zero self-admittance (floating)", name)
		}
		for j, from := range ym.names {
			if j == i {
				continue
			}
			yij, ok := ym.y[[2]int{i, j}]
			if !ok || yij.IsZero() {
				continue
			}
			g.AddEdge(from, name, expr.Div(expr.Neg(yij), yii))
		}
	}
	return &Analysis{Graph: g, Input: input, Circuit: c, opts: opts}, nil
}

func isGroundName(n string) bool { return n == "0" || n == "gnd" }

// TransferFunction applies Mason's rule from the input to the given node,
// returning the symbolic voltage transfer function.
func (a *Analysis) TransferFunction(out string) (expr.Expr, error) {
	return a.Graph.TransferFunction(a.Input, out)
}

// Env binds every small-signal variable of the analysis to its numeric
// value: element values for R/C/VCCS/switch, DC-extracted gm/gds/caps for
// MOSFETs. The Laplace variable "s" stays free.
func Env(c *netlist.Circuit, op *sim.DCResult, opts Options) (map[string]float64, error) {
	env := map[string]float64{}
	for _, e := range c.Elements {
		switch e.Type {
		case netlist.Resistor:
			env["g_"+e.Name] = 1 / e.Value
		case netlist.Capacitor:
			env["c_"+e.Name] = e.Value
		case netlist.Switch:
			m, err := c.ModelFor(e)
			if err != nil {
				return nil, err
			}
			ron := m.Param("ron", 1e3)
			roff := m.Param("roff", 1e12)
			phase := int(e.Param("phase", 0))
			if phase == 0 || phase == opts.SwitchPhase {
				env["g_"+e.Name] = 1 / ron
			} else {
				env["g_"+e.Name] = 1 / roff
			}
		case netlist.VCCS:
			env["gm_"+e.Name] = e.Value
		case netlist.MOS:
			mop, ok := op.MOS[e.Name]
			if !ok {
				return nil, fmt.Errorf("dpi: operating point missing %s", e.Name)
			}
			env["gm_"+e.Name] = mop.GM
			env["gds_"+e.Name] = mop.GDS
			env["gmb_"+e.Name] = mop.GMB
			env["cgs_"+e.Name] = mop.CGS
			env["cgd_"+e.Name] = mop.CGD
			env["cgb_"+e.Name] = mop.CGB
			env["cdb_"+e.Name] = mop.CDB
			env["csb_"+e.Name] = mop.CSB
		}
	}
	return env, nil
}
