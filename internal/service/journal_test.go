// White-box tests for the durability layer: journal replay after a
// simulated crash, typed recovery failures, the terminal-job retention
// ring (the m.jobs leak regression), and the drain-rate Retry-After.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/testutil"
)

func tinyReq(bits int, seed int64) StudyRequest {
	return StudyRequest{Bits: bits, Mode: "equation", Evals: 4, Pattern: 4, Seed: seed}
}

func waitTerminal(t *testing.T, j *Job, want State) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(20 * time.Second):
		t.Fatalf("job %s never went terminal (state %q)", j.ID, j.State())
	}
	if st := j.State(); st != want {
		t.Fatalf("job %s reached %q, want %q (err %v)", j.ID, st, want, j.Status().Error)
	}
}

// TestRecoverRequeuesQueuedAndRunning is the crash-recovery core: a
// manager journals one running and one queued job, the process "dies"
// (the first manager is simply abandoned mid-flight), and a second
// manager replaying the same state dir re-enqueues both — same IDs, a
// leading "recovered" event — and runs them to completion.
func TestRecoverRequeuesQueuedAndRunning(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	jnA, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	manA := NewManager(Config{
		Workers: 1, QueueCap: 4, Executors: 1, Journal: jnA,
		EvalHook: func(ctx context.Context, eval int) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	manA.Start()

	running, _, err := manA.Submit(tinyReq(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, _, err := manA.Submit(tinyReq(11, 3))
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != StateQueued {
		t.Fatalf("second job state %q, want queued behind the single executor", queued.State())
	}

	// "Crash": manA is left running and untouched — exactly the state a
	// kill -9 leaves on disk. A second manager replays the journal.
	jnB, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	manB := NewManager(Config{Workers: 2, QueueCap: 4, Executors: 1, Journal: jnB})
	stats, err := manB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered != 2 || stats.Failed != 0 || stats.Restored != 0 {
		t.Fatalf("recovery stats %+v, want 2 recovered", stats)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, ok := manB.Get(id)
		if !ok {
			t.Fatalf("job %s not replayed", id)
		}
		replay, _, cancel := j.Subscribe()
		cancel()
		if len(replay) == 0 || replay[0].Kind != "recovered" {
			t.Fatalf("job %s event log starts with %+v, want recovered", id, replay)
		}
	}

	manB.Start()
	for _, id := range []string{running.ID, queued.ID} {
		j, _ := manB.Get(id)
		waitTerminal(t, j, StateDone)
		if st := j.Status(); st.Result == nil || st.Result.TotalEvals <= 0 {
			t.Fatalf("recovered job %s finished without a result: %+v", id, st)
		}
	}
	if got := manB.Metrics().JobsRecovered.Load(); got != 2 {
		t.Fatalf("recovered counter %d, want 2", got)
	}

	// Release the "crashed" manager so the leak check can hold.
	close(gate)
	manA.Drain(5 * time.Second)
	manB.Drain(time.Second)
	jnA.Close()
	jnB.Close()
}

// TestRecoverMarksUnrecoverableFailed exercises the typed failure path:
// journal entries whose request is missing, no longer validates, or
// whose content address does not round-trip are finalized failed with a
// *RecoveryError instead of being dropped or re-run.
func TestRecoverMarksUnrecoverableFailed(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	badReq := StudyRequest{Bits: 0} // fails validation (bits out of range)
	jn.append(journalRecord{Op: "submit", ID: "s000005-badreq00", Time: time.Now(), Key: "ffff", Req: &badReq, Created: time.Now()})
	okReq := tinyReq(10, 3)
	jn.append(journalRecord{Op: "submit", ID: "s000006-badkey00", Time: time.Now(), Key: strings.Repeat("0", 64), Req: &okReq, Created: time.Now()})
	jn.append(journalRecord{Op: "submit", ID: "s000007-noreq000", Time: time.Now(), Key: "aaaa", Created: time.Now()})
	jn.Close()

	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := NewManager(Config{Workers: 1, QueueCap: 2, Journal: jn2})
	stats, err := man.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 3 || stats.Recovered != 0 {
		t.Fatalf("recovery stats %+v, want 3 failed", stats)
	}
	for _, id := range []string{"s000005-badreq00", "s000006-badkey00", "s000007-noreq000"} {
		j, ok := man.Get(id)
		if !ok {
			t.Fatalf("unrecoverable job %s missing from the table", id)
		}
		if j.State() != StateFailed {
			t.Fatalf("job %s state %q, want failed", id, j.State())
		}
		var re *RecoveryError
		j.mu.Lock()
		jerr := j.err
		j.mu.Unlock()
		if !errors.As(jerr, &re) {
			t.Fatalf("job %s error %v, want *RecoveryError", id, jerr)
		}
	}
	if got := man.Metrics().JobsRecoveryFailed.Load(); got != 3 {
		t.Fatalf("recovery_failed counter %d, want 3", got)
	}

	// IDs stay monotonic across the restart: the next admission must not
	// collide with a replayed ID.
	man.Start()
	job, _, err := man.Submit(tinyReq(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, "s000008-") {
		t.Fatalf("post-recovery ID %q, want s000008-…", job.ID)
	}
	waitTerminal(t, job, StateDone)
	man.Drain(time.Second)
	jn2.Close()
}

// TestRecoverRestoresTerminalJobsAndTornTail: terminal jobs come back
// with state and result intact, a torn trailing line (the expected
// artifact of dying mid-append) is dropped without failing replay, and
// evicted jobs stay gone.
func TestRecoverRestoresTerminalJobsAndTornTail(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	doneReq := tinyReq(10, 3)
	jn.append(journalRecord{Op: "submit", ID: "s000001-aaaaaaaa", Time: time.Now(), Key: "aaaa", Req: &doneReq, Created: time.Now()})
	jn.append(journalRecord{Op: "final", ID: "s000001-aaaaaaaa", Time: time.Now(), State: StateDone, Result: &StudyJSON{Bits: 10, TotalEvals: 42}})
	evReq := tinyReq(11, 3)
	jn.append(journalRecord{Op: "submit", ID: "s000002-bbbbbbbb", Time: time.Now(), Key: "bbbb", Req: &evReq, Created: time.Now()})
	jn.append(journalRecord{Op: "final", ID: "s000002-bbbbbbbb", Time: time.Now(), State: StateFailed, Error: "boom"})
	jn.append(journalRecord{Op: "evict", ID: "s000002-bbbbbbbb", Time: time.Now()})
	jn.Close()
	// Torn tail: half a record, no newline.
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"s000003-cc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	man := NewManager(Config{Workers: 1, QueueCap: 2, Journal: jn2})
	stats, err := man.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restored != 1 || stats.Dropped != 1 || stats.Recovered != 0 || stats.Failed != 0 {
		t.Fatalf("recovery stats %+v, want 1 restored + 1 dropped", stats)
	}
	j, ok := man.Get("s000001-aaaaaaaa")
	if !ok {
		t.Fatal("terminal job not restored")
	}
	st := j.Status()
	if st.State != StateDone || st.Result == nil || st.Result.TotalEvals != 42 {
		t.Fatalf("restored terminal job %+v", st)
	}
	if _, ok := man.Get("s000002-bbbbbbbb"); ok {
		t.Fatal("evicted job resurrected by replay")
	}
	man.Drain(0)
}

// TestTerminalRetentionBoundsJobs is the leak regression for the
// serving layer's unbounded m.jobs growth: a soak of distinct short
// jobs must leave the job table bounded by the retention ring, with the
// overflow visible on the evicted counter, and the journal must have
// been compacted along the way rather than growing with traffic.
func TestTerminalRetentionBoundsJobs(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	const retain = 8
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := NewManager(Config{
		Workers: 2, QueueCap: n, Executors: 2,
		Retain: retain, Journal: jn,
	})
	man.Start()

	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		// Distinct seeds → distinct content addresses → no dedup.
		job, deduped, err := man.Submit(tinyReq(4, int64(i+1)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if deduped {
			t.Fatalf("submit %d unexpectedly deduped", i)
		}
		jobs = append(jobs, job)
	}
	for _, j := range jobs {
		waitTerminal(t, j, StateDone)
	}

	snap := man.Snapshot()
	total := 0
	for _, c := range snap.JobsByState {
		total += c
	}
	if total > retain {
		t.Fatalf("job table holds %d jobs after %d completions, want ≤ %d: the terminal leak is back", total, n, retain)
	}
	if snap.Retained > retain {
		t.Fatalf("retention ring %d over bound %d", snap.Retained, retain)
	}
	if got := man.Metrics().JobsEvicted.Load(); got < int64(n-retain) {
		t.Fatalf("evicted counter %d, want ≥ %d", got, n-retain)
	}
	if !testing.Short() {
		if snap.Journal.Compactions < 1 {
			t.Fatalf("journal never compacted over %d jobs (%d records)", n, snap.Journal.Records)
		}
		if snap.Journal.Records > journalCompactEvery+4*retain {
			t.Fatalf("journal records %d not bounded by compaction", snap.Journal.Records)
		}
	}
	man.Drain(time.Second)
	jn.Close()

	// A restart over the soaked state dir restores only the retained
	// tail — evict records hold across replay.
	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	man2 := NewManager(Config{Workers: 1, QueueCap: 4, Retain: retain, Journal: jn2})
	stats, err := man2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restored != retain || stats.Recovered != 0 {
		t.Fatalf("post-soak recovery %+v, want %d restored", stats, retain)
	}
	man2.Drain(0)
}

// TestRetentionAgeEvicts covers the age bound: terminal jobs older than
// RetainAge disappear on the next snapshot even when the size bound
// alone would keep them.
func TestRetentionAgeEvicts(t *testing.T) {
	man := NewManager(Config{Workers: 1, QueueCap: 4, Retain: 100, RetainAge: 30 * time.Millisecond})
	man.Start()
	job, _, err := man.Submit(tinyReq(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job, StateDone)
	time.Sleep(60 * time.Millisecond)
	if snap := man.Snapshot(); snap.Retained != 0 {
		t.Fatalf("aged-out job still retained: %+v", snap)
	}
	if _, ok := man.Get(job.ID); ok {
		t.Fatal("aged-out job still in the table")
	}
	man.Drain(time.Second)
}

// TestComputeRetryAfter pins the drain-rate estimate's shape: never
// below 1 s, scales with queue depth, divides across executors, and
// clamps at 60 s.
func TestComputeRetryAfter(t *testing.T) {
	cases := []struct {
		avg       time.Duration
		depth, ex int
		want      int
	}{
		{0, 5, 1, 1},                       // no observations yet
		{10 * time.Millisecond, 0, 1, 1},   // sub-second rounds up to 1
		{2 * time.Second, 3, 1, 8},         // (3+1)·2s
		{2 * time.Second, 3, 2, 4},         // two executors drain twice as fast
		{time.Hour, 10, 1, 60},             // clamped
		{1500 * time.Millisecond, 0, 1, 2}, // ceil, not floor
	}
	for _, c := range cases {
		if got := computeRetryAfter(c.avg, c.depth, c.ex); got != c.want {
			t.Errorf("computeRetryAfter(%v, %d, %d) = %d, want %d", c.avg, c.depth, c.ex, got, c.want)
		}
	}
}

// TestJournalRoundTripKeyStability pins the other half of recovery's
// contract (next to core.StudyKey's execution-knob independence): a
// StudyRequest that went through JSON — exactly what the journal stores
// — maps to the same content address as the original.
func TestJournalRoundTripKeyStability(t *testing.T) {
	for i, req := range []StudyRequest{
		tinyReq(10, 3),
		{Bits: 13, SampleRate: 80e6, VRef: 0.9, Mode: "hybrid", Evals: 7, Pattern: 5, Restarts: 2, Seed: 11, Retarget: true, SHA: true},
		{Bits: 10, Mode: "yield", Evals: 7, Pattern: 5, Seed: 11, Draws: 500, MinENOB: 8.5},
	} {
		dir := t.TempDir()
		jn, err := OpenJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts, err := req.Options()
		if err != nil {
			t.Fatal(err)
		}
		key := req.JobKey(opts)
		jn.append(journalRecord{Op: "submit", ID: fmt.Sprintf("s%06d-roundtrp", i+1), Time: time.Now(), Key: key, Req: &req, Created: time.Now()})
		jn.Close()

		jn2, err := OpenJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		man := NewManager(Config{Workers: 1, QueueCap: 2, Journal: jn2})
		stats, err := man.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Recovered != 1 || stats.Failed != 0 {
			t.Fatalf("case %d: key did not survive the JSON round trip: %+v", i, stats)
		}
		man.Drain(0)
		jn2.Close()
	}
}
