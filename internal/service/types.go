// Package service is the serving layer over the synthesis engine: a job
// manager with a bounded queue and single-flight admission (manager.go),
// a stdlib-only metrics registry in Prometheus text format (metrics.go),
// and the HTTP surface the adcsynd daemon exposes (server.go).
//
// This file holds the wire types shared between the daemon and the
// adcsyn CLI's -json mode, so a study reports identically whether it ran
// over HTTP or in-process.
package service

import (
	"fmt"
	"time"

	"pipesyn/internal/core"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/synth"
	"pipesyn/internal/yield"
)

// ParseMode maps the CLI/API mode string to the evaluator mode. Mode
// "yield" is not an evaluator — it is the Monte-Carlo sign-off lane
// layered over a hybrid study; callers route it before evaluating.
func ParseMode(s string) (hybrid.Mode, error) {
	switch s {
	case "", "hybrid":
		return hybrid.Hybrid, nil
	case "equation":
		return hybrid.EquationOnly, nil
	case "simulation":
		return hybrid.SimOnly, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want hybrid, equation, simulation, or yield)", s)
}

// StudyRequest is the POST /v1/studies body. The knobs mirror the adcsyn
// flags; zero fields take the same defaults the CLI applies.
type StudyRequest struct {
	Bits       int     `json:"bits"`
	SampleRate float64 `json:"fs,omitempty"`       // Hz, default 40e6
	VRef       float64 `json:"vref,omitempty"`     // V, default 1.0
	Mode       string  `json:"mode,omitempty"`     // hybrid|equation|simulation
	Evals      int     `json:"evals,omitempty"`    // annealing budget per MDAC
	Pattern    int     `json:"pattern,omitempty"`  // pattern-search budget per MDAC
	Restarts   int     `json:"restarts,omitempty"` // synthesis restarts per MDAC
	Seed       int64   `json:"seed,omitempty"`
	Retarget   bool    `json:"retarget,omitempty"` // chain warm starts across MDACs
	SHA        bool    `json:"sha,omitempty"`      // also synthesize the front-end S/H

	// Race turns on the successive-halving racing scheduler; RaceRungs
	// and RaceEta shape its plan (defaults 2 and 3) and are only valid
	// alongside Race. Surrogate interleaves deterministic quadratic-model
	// sizing proposals with the annealer's random moves.
	Race      bool `json:"race,omitempty"`
	RaceRungs int  `json:"raceRungs,omitempty"`
	RaceEta   int  `json:"raceEta,omitempty"`
	Surrogate bool `json:"surrogate,omitempty"`

	// Mode "yield" only: Monte-Carlo draw count (default 1000) and the
	// pass/fail ENOB spec (default bits−1).
	Draws   int     `json:"draws,omitempty"`
	MinENOB float64 `json:"minEnob,omitempty"`
}

// Yield reports whether the request asks for the Monte-Carlo sign-off
// lane: synthesize first, then sample mismatch realizations.
func (r StudyRequest) Yield() bool { return r.Mode == "yield" }

// YieldSpec translates the request's yield knobs into the engine spec.
// Zero fields take the yield.Spec defaults for the target resolution.
func (r StudyRequest) YieldSpec() yield.Spec {
	return yield.Spec{Draws: r.Draws, MinENOB: r.MinENOB}
}

// JobKey is the content address the manager single-flights, dedupes, and
// journals on. Plain studies address by core.StudyKey; yield jobs extend
// it with the canonical yield spec, so a study and a yield analysis of
// the same design never collide, while re-submitted identical yield
// requests do.
func (r StudyRequest) JobKey(opts core.Options) string {
	key := core.StudyKey(opts)
	if r.Yield() {
		key = yield.Key(key, r.Bits, r.YieldSpec())
	}
	return key
}

// Options validates the request and translates it into engine options.
// Execution knobs (workers, pool, cache, hooks) are the server's to set;
// a request only describes the study.
func (r StudyRequest) Options() (core.Options, error) {
	if r.Bits < 4 || r.Bits > 20 {
		return core.Options{}, fmt.Errorf("bits %d out of range [4, 20]", r.Bits)
	}
	if r.SampleRate < 0 || r.VRef < 0 || r.Evals < 0 || r.Pattern < 0 || r.Restarts < 0 {
		return core.Options{}, fmt.Errorf("negative knob in request")
	}
	// Yield knobs are meaningless outside the yield lane; reject rather
	// than silently ignore, so a typo'd mode can't drop a 10k-draw ask.
	if !r.Yield() && (r.Draws != 0 || r.MinENOB != 0) {
		return core.Options{}, fmt.Errorf("draws/minEnob require mode %q", "yield")
	}
	// The racing shape is likewise rejected without the racing switch —
	// a dropped "race": true would otherwise silently run the uniform
	// flow under a different content address than the caller expects.
	if !r.Race && (r.RaceRungs != 0 || r.RaceEta != 0) {
		return core.Options{}, fmt.Errorf("raceRungs/raceEta require race")
	}
	if r.RaceRungs < 0 || r.RaceRungs > 6 {
		return core.Options{}, fmt.Errorf("raceRungs %d out of range [0, 6]", r.RaceRungs)
	}
	if r.RaceEta < 0 || r.RaceEta > 16 {
		return core.Options{}, fmt.Errorf("raceEta %d out of range [0, 16]", r.RaceEta)
	}
	if r.Draws < 0 || r.Draws > 100000 {
		return core.Options{}, fmt.Errorf("draws %d out of range [0, 100000]", r.Draws)
	}
	if r.MinENOB < 0 || r.MinENOB > float64(r.Bits) {
		return core.Options{}, fmt.Errorf("minEnob %g out of range [0, bits]", r.MinENOB)
	}
	// The yield lane always synthesizes with the full hybrid evaluator —
	// its error model is derived from the simulated stage metrics.
	mode := hybrid.Hybrid
	if !r.Yield() {
		var err error
		if mode, err = ParseMode(r.Mode); err != nil {
			return core.Options{}, err
		}
	}
	return core.Options{
		Bits:       r.Bits,
		SampleRate: r.SampleRate,
		VRef:       r.VRef,
		Mode:       mode,
		Retarget:   r.Retarget,
		Race:       r.Race,
		RaceRungs:  r.RaceRungs,
		RaceEta:    r.RaceEta,
		IncludeSHA: r.SHA,
		Synth: synth.Options{
			Seed:        r.Seed,
			MaxEvals:    r.Evals,
			PatternIter: r.Pattern,
			Restarts:    r.Restarts,
			Surrogate:   r.Surrogate,
		},
	}, nil
}

// StageJSON is one costed pipeline stage of a candidate.
type StageJSON struct {
	Stage        int     `json:"stage"`
	Bits         int     `json:"bits"`
	MDACPowerW   float64 `json:"mdacPowerW"`
	SubADCPowerW float64 `json:"subAdcPowerW"`
	TotalW       float64 `json:"totalW"`
	Feasible     bool    `json:"feasible"`
}

// CandidateJSON is one enumerated configuration fully costed.
type CandidateJSON struct {
	Config      []int   `json:"config"`
	TotalPowerW float64 `json:"totalPowerW"`
	AllFeasible bool    `json:"allFeasible"`
	// Pruned marks a candidate the racing scheduler dropped at a
	// low-fidelity rung; its power was costed at a reduced budget.
	Pruned bool        `json:"pruned,omitempty"`
	Stages []StageJSON `json:"stages,omitempty"`
}

// RaceJSON is the racing scheduler's scorecard on the wire.
type RaceJSON struct {
	Rungs      int `json:"rungs"`
	Promotions int `json:"promotions"`
	Pruned     int `json:"pruned"`
}

// StudyJSON is the machine-readable study result: the daemon's response
// body and the adcsyn -json output.
type StudyJSON struct {
	Bits             int             `json:"bits"`
	SampleRateHz     float64         `json:"fsHz"`
	Mode             string          `json:"mode"`
	Best             CandidateJSON   `json:"best"`
	Candidates       []CandidateJSON `json:"candidates"`
	MDACPoints       int             `json:"mdacPoints"`
	PaperMDACClasses int             `json:"paperMdacClasses"`
	TotalEvals       int             `json:"totalEvals"`
	CacheHits        int             `json:"cacheHits"`
	CacheMisses      int             `json:"cacheMisses"`
	SHAPowerW        float64         `json:"shaPowerW,omitempty"`
	FullPowerW       float64         `json:"fullPowerW,omitempty"`
	ElapsedSeconds   float64         `json:"elapsedSeconds"`
	// Race summarizes the successive-halving scheduler's work; only
	// racing studies carry it. The surrogate counters aggregate the
	// quadratic model's proposals across every synthesis in the study.
	Race               *RaceJSON `json:"race,omitempty"`
	SurrogateProposals int       `json:"surrogateProposals,omitempty"`
	SurrogateAccepted  int       `json:"surrogateAccepted,omitempty"`
	// Behavioral is the optional closed-loop sine-test verdict (the
	// adcsyn -verify -json path fills it; the daemon leaves it nil).
	Behavioral *BehavioralJSON `json:"behavioral,omitempty"`
	// Yield is the Monte-Carlo sign-off outcome; only mode "yield" jobs
	// carry it.
	Yield *yield.Result `json:"yield,omitempty"`
}

// BehavioralJSON is the behavioral sine-test outcome for the best
// configuration.
type BehavioralJSON struct {
	ENOB   float64 `json:"enob"`
	SNDRdB float64 `json:"sndrDb"`
	SFDRdB float64 `json:"sfdrDb"`
}

// EncodeStudy flattens a completed study into its wire form. The best
// candidate carries its per-stage breakdown; the ranked list stays
// summary-only to keep responses compact.
func EncodeStudy(st *core.Study, mode hybrid.Mode, elapsed time.Duration) *StudyJSON {
	out := &StudyJSON{
		Bits:             st.Bits,
		SampleRateHz:     st.SampleRate,
		Mode:             mode.String(),
		Best:             encodeCandidate(st.Best, true),
		MDACPoints:       len(st.MDACs),
		PaperMDACClasses: st.PaperMDACClasses,
		TotalEvals:       st.TotalEvals,
		CacheHits:        st.CacheHits,
		CacheMisses:      st.CacheMisses,
		ElapsedSeconds:   elapsed.Seconds(),
	}
	for _, c := range st.Candidates {
		out.Candidates = append(out.Candidates, encodeCandidate(c, false))
	}
	if st.SHA != nil {
		out.SHAPowerW = st.SHA.Metrics.Power
		out.FullPowerW = st.FullPower(st.Best)
	}
	if st.Race != nil {
		out.Race = &RaceJSON{Rungs: st.Race.Rungs, Promotions: st.Race.Promotions, Pruned: st.Race.Pruned}
	}
	out.SurrogateProposals = st.SurrogateProposals
	out.SurrogateAccepted = st.SurrogateAccepted
	return out
}

func encodeCandidate(c core.CandidateResult, withStages bool) CandidateJSON {
	out := CandidateJSON{
		Config:      append([]int(nil), c.Config...),
		TotalPowerW: c.TotalPower,
		AllFeasible: c.AllFeasible,
		Pruned:      c.Pruned,
	}
	if withStages {
		for _, s := range c.Stages {
			out.Stages = append(out.Stages, StageJSON{
				Stage: s.Stage, Bits: s.Bits,
				MDACPowerW: s.MDACPower, SubADCPowerW: s.SubADCPower,
				TotalW: s.Total, Feasible: s.Feasible,
			})
		}
	}
	return out
}
