package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"pipesyn/internal/sim"
)

// evalBuckets are the upper bounds (seconds) of the evaluation-latency
// histogram. Equation-mode evaluations are tens of microseconds, hybrid
// ones are milliseconds, and a stalled simulation can take seconds, so
// the buckets span five decades.
var evalBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1, 2.5, 10,
}

// Metrics is the daemon's stdlib-only metrics registry: counters and a
// latency histogram maintained with atomics (the evaluation observer
// sits on the synthesis hot path), rendered in Prometheus text
// exposition format by WriteTo. Gauges — queue depth, jobs by state,
// pool load, cache traffic — are sampled from their owners at scrape
// time rather than mirrored here, so they can never drift.
type Metrics struct {
	// Admission outcomes of POST /v1/studies.
	JobsAccepted atomic.Int64 // new job admitted to the queue
	JobsDeduped  atomic.Int64 // single-flighted onto an in-flight job
	JobsRejected atomic.Int64 // queue full (429) or draining (503)

	// Terminal outcomes.
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64

	// Durability and retention outcomes.
	JobsRecovered      atomic.Int64 // re-enqueued from the journal after a restart
	JobsRecoveryFailed atomic.Int64 // journaled jobs finalized failed with *RecoveryError
	JobsEvicted        atomic.Int64 // terminal jobs dropped by the retention ring

	evalCount   atomic.Int64
	evalSumNS   atomic.Int64
	evalBuckets [16]atomic.Int64 // len(evalBuckets)+1 for +Inf

	// Monte-Carlo yield lane: per-draw verdict counters and the ENOB
	// histogram across every realization the daemon has sampled.
	yieldPass         atomic.Int64
	yieldFail         atomic.Int64
	yieldENOBSumMicro atomic.Int64     // Σ ENOB in micro-bits (atomics can't add floats)
	yieldENOB         [13]atomic.Int64 // len(yieldENOBBuckets)+1 for +Inf

	// Racing lane: rung/promotion/prune counters fed from race_rung
	// progress events, and the surrogate's proposal accounting fed from
	// completed studies.
	raceRungs          atomic.Int64
	racePromotions     atomic.Int64
	racePrunes         atomic.Int64
	surrogateProposals atomic.Int64
	surrogateAccepted  atomic.Int64
}

// yieldENOBBuckets are the upper bounds (effective bits) of the yield
// ENOB histogram: dense around the 8–14 bit sign-off range the pipeline
// designs land in.
var yieldENOBBuckets = []float64{2, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16}

// ObserveEval records one evaluation's wall-clock cost. Safe for
// concurrent use; two atomic adds plus a bucket add.
func (m *Metrics) ObserveEval(d time.Duration) {
	m.evalCount.Add(1)
	m.evalSumNS.Add(int64(d))
	sec := d.Seconds()
	for i, ub := range evalBuckets {
		if sec <= ub {
			m.evalBuckets[i].Add(1)
			return
		}
	}
	m.evalBuckets[len(evalBuckets)].Add(1)
}

// Evals reports the total evaluations observed.
func (m *Metrics) Evals() int64 { return m.evalCount.Load() }

// ObserveYieldDraw records one Monte-Carlo realization's verdict and
// ENOB. On the yield hot path, concurrent across draw workers; atomics
// only.
func (m *Metrics) ObserveYieldDraw(enob float64, pass bool) {
	if pass {
		m.yieldPass.Add(1)
	} else {
		m.yieldFail.Add(1)
	}
	m.yieldENOBSumMicro.Add(int64(enob * 1e6))
	for i, ub := range yieldENOBBuckets {
		if enob <= ub {
			m.yieldENOB[i].Add(1)
			return
		}
	}
	m.yieldENOB[len(yieldENOBBuckets)].Add(1)
}

// YieldDraws reports the total Monte-Carlo draws observed.
func (m *Metrics) YieldDraws() int64 { return m.yieldPass.Load() + m.yieldFail.Load() }

// ObserveRaceRung records one completed racing rung's promotion
// decision, as carried by a race_rung progress event.
func (m *Metrics) ObserveRaceRung(promoted, pruned int) {
	m.raceRungs.Add(1)
	m.racePromotions.Add(int64(promoted))
	m.racePrunes.Add(int64(pruned))
}

// ObserveSurrogate folds one completed study's surrogate accounting in.
func (m *Metrics) ObserveSurrogate(proposals, accepted int) {
	m.surrogateProposals.Add(int64(proposals))
	m.surrogateAccepted.Add(int64(accepted))
}

// RaceRungs reports the racing rungs observed.
func (m *Metrics) RaceRungs() int64 { return m.raceRungs.Load() }

// Snapshot is the point-in-time gauge set a scrape renders alongside the
// counters; the Manager assembles it from the queue, the job table, the
// scheduler pool, and the synthesis cache.
type Snapshot struct {
	QueueDepth    int
	QueueCapacity int
	JobsByState   map[State]int
	Retained      int // terminal jobs currently held by the retention ring
	PoolQueued    int64
	PoolInFlight  int64
	PoolWorkers   int
	CacheHits     int64
	CacheMisses   int64
	Journal       JournalStats    // zero value when no journal is configured
	Kernel        sim.KernelStats // process-wide simulation-kernel counters
	Draining      bool
}

// WriteTo renders the registry plus the gauge snapshot in Prometheus
// text exposition format (version 0.0.4).
func (m *Metrics) WriteTo(w io.Writer, snap Snapshot) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("adcsynd_jobs_total", "Study jobs by admission or terminal event.")
	for _, kv := range []struct {
		label string
		v     int64
	}{
		{"accepted", m.JobsAccepted.Load()},
		{"deduped", m.JobsDeduped.Load()},
		{"rejected", m.JobsRejected.Load()},
		{"done", m.JobsDone.Load()},
		{"failed", m.JobsFailed.Load()},
		{"cancelled", m.JobsCancelled.Load()},
		{"recovered", m.JobsRecovered.Load()},
		{"recovery_failed", m.JobsRecoveryFailed.Load()},
		{"evicted", m.JobsEvicted.Load()},
	} {
		fmt.Fprintf(w, "adcsynd_jobs_total{event=%q} %d\n", kv.label, kv.v)
	}

	gauge("adcsynd_jobs", "Current jobs by state.")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "adcsynd_jobs{state=%q} %d\n", st, snap.JobsByState[st])
	}

	gauge("adcsynd_jobs_retained", "Terminal jobs held by the retention ring.")
	fmt.Fprintf(w, "adcsynd_jobs_retained %d\n", snap.Retained)

	gauge("adcsynd_queue_depth", "Jobs waiting in the admission queue.")
	fmt.Fprintf(w, "adcsynd_queue_depth %d\n", snap.QueueDepth)
	gauge("adcsynd_queue_capacity", "Admission queue capacity.")
	fmt.Fprintf(w, "adcsynd_queue_capacity %d\n", snap.QueueCapacity)

	gauge("adcsynd_pool_queued", "Synthesis tasks admitted to the worker pool but not yet running.")
	fmt.Fprintf(w, "adcsynd_pool_queued %d\n", snap.PoolQueued)
	gauge("adcsynd_pool_inflight", "Synthesis tasks executing on the worker pool right now.")
	fmt.Fprintf(w, "adcsynd_pool_inflight %d\n", snap.PoolInFlight)
	gauge("adcsynd_pool_workers", "Configured worker-pool concurrency bound.")
	fmt.Fprintf(w, "adcsynd_pool_workers %d\n", snap.PoolWorkers)

	counter("adcsynd_synth_cache_hits_total", "Content-addressed synthesis cache hits.")
	fmt.Fprintf(w, "adcsynd_synth_cache_hits_total %d\n", snap.CacheHits)
	counter("adcsynd_synth_cache_misses_total", "Content-addressed synthesis cache misses.")
	fmt.Fprintf(w, "adcsynd_synth_cache_misses_total %d\n", snap.CacheMisses)

	gauge("adcsynd_journal_records", "Journal records appended since the last compaction.")
	fmt.Fprintf(w, "adcsynd_journal_records %d\n", snap.Journal.Records)
	gauge("adcsynd_journal_bytes", "Journal file size on disk.")
	fmt.Fprintf(w, "adcsynd_journal_bytes %d\n", snap.Journal.Bytes)
	counter("adcsynd_journal_compactions_total", "Journal rewrites since the daemon started.")
	fmt.Fprintf(w, "adcsynd_journal_compactions_total %d\n", snap.Journal.Compactions)
	counter("adcsynd_journal_errors_total", "Journal append/fsync failures (durability degraded).")
	fmt.Fprintf(w, "adcsynd_journal_errors_total %d\n", snap.Journal.Errors)

	counter("adcsynd_kernel_factorizations_total", "Simulation-kernel numeric factorizations, by whether the Newton solve performed or reused one.")
	fmt.Fprintf(w, "adcsynd_kernel_factorizations_total{event=%q} %d\n", "performed", snap.Kernel.Factorizations)
	fmt.Fprintf(w, "adcsynd_kernel_factorizations_total{event=%q} %d\n", "reused", snap.Kernel.ReusedSolves)

	counter("adcsynd_kernel_reuse_fallbacks_total", "Newton-reuse divergences that re-ran the iteration with full Newton.")
	fmt.Fprintf(w, "adcsynd_kernel_reuse_fallbacks_total %d\n", snap.Kernel.ReuseFallbacks)

	counter("adcsynd_kernel_ordered_fallbacks_total", "Static-ordered factorizations that hit a zero pivot and dropped to partial pivoting.")
	fmt.Fprintf(w, "adcsynd_kernel_ordered_fallbacks_total %d\n", snap.Kernel.OrderedFallbacks)

	fmt.Fprintf(w, "# HELP adcsynd_kernel_batch_width Candidates per shared-kernel simulation batch.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_kernel_batch_width histogram\n")
	bcum := int64(0)
	for i, ub := range sim.KernelBatchWidthBounds {
		bcum += snap.Kernel.BatchWidths[i]
		fmt.Fprintf(w, "adcsynd_kernel_batch_width_bucket{le=%q} %d\n", fmt.Sprintf("%d", ub), bcum)
	}
	bcum += snap.Kernel.BatchWidths[len(sim.KernelBatchWidthBounds)]
	fmt.Fprintf(w, "adcsynd_kernel_batch_width_bucket{le=\"+Inf\"} %d\n", bcum)
	fmt.Fprintf(w, "adcsynd_kernel_batch_width_sum %d\n", snap.Kernel.BatchWidthSum)
	fmt.Fprintf(w, "adcsynd_kernel_batch_width_count %d\n", bcum)

	counter("adcsynd_yield_draws_total", "Monte-Carlo yield draws by pass/fail verdict.")
	fmt.Fprintf(w, "adcsynd_yield_draws_total{result=%q} %d\n", "pass", m.yieldPass.Load())
	fmt.Fprintf(w, "adcsynd_yield_draws_total{result=%q} %d\n", "fail", m.yieldFail.Load())

	fmt.Fprintf(w, "# HELP adcsynd_yield_enob Per-draw ENOB across Monte-Carlo yield realizations.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_yield_enob histogram\n")
	ycum := int64(0)
	for i, ub := range yieldENOBBuckets {
		ycum += m.yieldENOB[i].Load()
		fmt.Fprintf(w, "adcsynd_yield_enob_bucket{le=%q} %d\n", trimFloat(ub), ycum)
	}
	ycum += m.yieldENOB[len(yieldENOBBuckets)].Load()
	fmt.Fprintf(w, "adcsynd_yield_enob_bucket{le=\"+Inf\"} %d\n", ycum)
	fmt.Fprintf(w, "adcsynd_yield_enob_sum %g\n", float64(m.yieldENOBSumMicro.Load())/1e6)
	fmt.Fprintf(w, "adcsynd_yield_enob_count %d\n", ycum)

	counter("adcsynd_race_rungs_total", "Successive-halving rungs completed across racing studies.")
	fmt.Fprintf(w, "adcsynd_race_rungs_total %d\n", m.raceRungs.Load())
	counter("adcsynd_race_promotions_total", "Candidates promoted to a higher-fidelity rung.")
	fmt.Fprintf(w, "adcsynd_race_promotions_total %d\n", m.racePromotions.Load())
	counter("adcsynd_race_prunes_total", "Candidates dropped at a low-fidelity rung.")
	fmt.Fprintf(w, "adcsynd_race_prunes_total %d\n", m.racePrunes.Load())

	counter("adcsynd_surrogate_proposals_total", "Quadratic-surrogate sizing proposals, by whether the annealer accepted them.")
	fmt.Fprintf(w, "adcsynd_surrogate_proposals_total{result=%q} %d\n", "proposed", m.surrogateProposals.Load())
	fmt.Fprintf(w, "adcsynd_surrogate_proposals_total{result=%q} %d\n", "accepted", m.surrogateAccepted.Load())

	gauge("adcsynd_draining", "1 while the daemon is draining for shutdown.")
	d := 0
	if snap.Draining {
		d = 1
	}
	fmt.Fprintf(w, "adcsynd_draining %d\n", d)

	fmt.Fprintf(w, "# HELP adcsynd_eval_duration_seconds Wall-clock cost of one synthesis evaluation.\n")
	fmt.Fprintf(w, "# TYPE adcsynd_eval_duration_seconds histogram\n")
	cum := int64(0)
	for i, ub := range evalBuckets {
		cum += m.evalBuckets[i].Load()
		fmt.Fprintf(w, "adcsynd_eval_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.evalBuckets[len(evalBuckets)].Load()
	fmt.Fprintf(w, "adcsynd_eval_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "adcsynd_eval_duration_seconds_sum %g\n", time.Duration(m.evalSumNS.Load()).Seconds())
	fmt.Fprintf(w, "adcsynd_eval_duration_seconds_count %d\n", m.evalCount.Load())
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
