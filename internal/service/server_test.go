package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/netlist"
	"pipesyn/internal/service"
	"pipesyn/internal/sim"
	"pipesyn/internal/synth"
	"pipesyn/internal/testutil"
)

// tinyStudy is a request small enough to finish in tens of milliseconds
// in equation mode while still exercising the full flow.
func tinyStudy(bits int) service.StudyRequest {
	return service.StudyRequest{
		Bits: bits, Mode: "equation", Evals: 8, Pattern: 6, Seed: 3,
	}
}

func postStudy(t *testing.T, ts *httptest.Server, req service.StudyRequest) (*http.Response, service.SubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.SubmitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, out
}

func getStatus(t *testing.T, ts *httptest.Server, id string) service.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state,
// which fails the test if it is not the wanted one). The deadline is
// generous: hybrid-mode jobs under the race detector on a starved CI
// box take tens of seconds; polling costs passing tests nothing.
func waitState(t *testing.T, ts *httptest.Server, id string, want service.State) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q) while waiting for %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return service.JobStatus{}
}

func TestServiceLifecycleSubmitPollResult(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	resp, sub := postStudy(t, ts, tinyStudy(10))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	if sub.Deduped || sub.ID == "" || sub.Key == "" {
		t.Fatalf("unexpected submit response %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/studies/"+sub.ID {
		t.Fatalf("Location %q", loc)
	}

	st := waitState(t, ts, sub.ID, service.StateDone)
	if st.Result == nil {
		t.Fatal("done job has no result")
	}
	if st.Result.Bits != 10 || len(st.Result.Candidates) == 0 || len(st.Result.Best.Config) == 0 {
		t.Fatalf("implausible result %+v", st.Result)
	}
	if st.Result.TotalEvals <= 0 || st.Evals <= 0 {
		t.Fatalf("no evaluations recorded: result %d, job %d", st.Result.TotalEvals, st.Evals)
	}
	if st.Started == nil || st.Finished == nil {
		t.Fatal("missing timestamps on a finished job")
	}

	// The list endpoint knows the job too.
	lresp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("job list %+v", list.Jobs)
	}
}

func TestServiceQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	man := service.NewManager(service.Config{
		Workers: 1, QueueCap: 1, Executors: 1,
		EvalHook: func(ctx context.Context, eval int) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	man.Start()
	defer man.Drain(0)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	// First job occupies the single executor...
	_, j1 := postStudy(t, ts, tinyStudy(10))
	waitState(t, ts, j1.ID, service.StateRunning)
	// ...second fills the one queue slot...
	resp2, _ := postStudy(t, ts, tinyStudy(11))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d, want 202", resp2.StatusCode)
	}
	// ...third must bounce with backpressure, not queue unboundedly.
	resp3, _ := postStudy(t, ts, tinyStudy(12))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp3.StatusCode)
	}
	// Retry-After is computed from the observed drain rate; whatever the
	// estimate, the wire form must be an integer number of seconds ≥ 1
	// (RFC 9110 delay-seconds) so naive clients can sleep on it.
	ra := resp3.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q does not parse as clamped delay-seconds: %v", ra, err)
	}
	if got := man.Metrics().JobsRejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
}

func TestServiceSingleFlightDedup(t *testing.T) {
	gate := make(chan struct{})
	man := service.NewManager(service.Config{
		Workers: 1, QueueCap: 4, Executors: 1,
		EvalHook: func(ctx context.Context, eval int) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	// Occupy the executor so the identical pair stays in-flight together.
	_, blocker := postStudy(t, ts, tinyStudy(11))
	waitState(t, ts, blocker.ID, service.StateRunning)

	respA, jobA := postStudy(t, ts, tinyStudy(10))
	respB, jobB := postStudy(t, ts, tinyStudy(10))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("first identical submit: HTTP %d, want 202", respA.StatusCode)
	}
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("deduped submit: HTTP %d, want 200", respB.StatusCode)
	}
	if !jobB.Deduped || jobB.ID != jobA.ID || jobB.Key != jobA.Key {
		t.Fatalf("not single-flighted: %+v vs %+v", jobA, jobB)
	}

	close(gate)
	st := waitState(t, ts, jobA.ID, service.StateDone)
	waitState(t, ts, blocker.ID, service.StateDone)

	// One execution for two submissions: the engine spent the evals of
	// exactly two studies (blocker + the shared one), and the admission
	// counters agree.
	m := man.Metrics()
	if got := m.JobsAccepted.Load(); got != 2 {
		t.Fatalf("accepted %d, want 2", got)
	}
	if got := m.JobsDeduped.Load(); got != 1 {
		t.Fatalf("deduped %d, want 1", got)
	}
	blockerSt := getStatus(t, ts, blocker.ID)
	if total := m.Evals(); total != st.Evals+blockerSt.Evals {
		t.Fatalf("eval counter %d ≠ job evals %d+%d: a duplicate execution ran",
			total, st.Evals, blockerSt.Evals)
	}
}

func TestServiceEventsNDJSONOrdering(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	_, sub := postStudy(t, ts, tinyStudy(10))

	// Stream while the job runs; the handler holds the connection until
	// the job is terminal.
	resp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	var events []service.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: gap or reorder", i, ev.Seq)
		}
		if ev.JobID != sub.ID {
			t.Fatalf("event for wrong job %q", ev.JobID)
		}
	}
	if events[0].Kind != "queued" || events[1].Kind != "started" {
		t.Fatalf("lifecycle head %q,%q", events[0].Kind, events[1].Kind)
	}
	if events[2].Kind != "progress" || events[2].Progress == nil || events[2].Progress.Kind != "plan" {
		t.Fatalf("expected plan progress third, got %+v", events[2])
	}
	points := events[2].Progress.Points
	last := events[len(events)-1]
	if last.Kind != "done" || last.Result == nil {
		t.Fatalf("terminal event %+v", last)
	}
	// Every design point must start before it finishes, and all points
	// must be accounted for before the terminal event.
	started := map[int]bool{}
	doneCount := 0
	for _, ev := range events[2 : len(events)-1] {
		if ev.Kind != "progress" || ev.Progress == nil {
			t.Fatalf("unexpected mid-stream event %+v", ev)
		}
		switch ev.Progress.Kind {
		case "point_start":
			started[ev.Progress.Point] = true
		case "point_done":
			if !started[ev.Progress.Point] {
				t.Fatalf("point %d finished before starting", ev.Progress.Point)
			}
			doneCount++
		}
	}
	if doneCount != points {
		t.Fatalf("%d point_done events for %d planned points", doneCount, points)
	}
}

// TestServiceListStateFilter covers the ?state= listing filter (and its
// /v1/jobs alias): running and terminal jobs land in the right buckets
// and an unknown state is a 400, not an empty list.
func TestServiceListStateFilter(t *testing.T) {
	gate := make(chan struct{})
	man := service.NewManager(service.Config{
		Workers: 1, QueueCap: 4, Executors: 1,
		EvalHook: func(ctx context.Context, eval int) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	_, stalled := postStudy(t, ts, tinyStudy(10))
	waitState(t, ts, stalled.ID, service.StateRunning)

	listIDs := func(path string) []string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		var list struct {
			Jobs []service.JobStatus `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(list.Jobs))
		for _, j := range list.Jobs {
			ids = append(ids, j.ID)
		}
		return ids
	}

	if ids := listIDs("/v1/studies?state=running"); len(ids) != 1 || ids[0] != stalled.ID {
		t.Fatalf("running filter %v, want [%s]", ids, stalled.ID)
	}
	if ids := listIDs("/v1/jobs?state=done"); len(ids) != 0 {
		t.Fatalf("done filter before completion %v, want empty", ids)
	}
	close(gate)
	waitState(t, ts, stalled.ID, service.StateDone)
	if ids := listIDs("/v1/jobs?state=done"); len(ids) != 1 || ids[0] != stalled.ID {
		t.Fatalf("done filter %v, want [%s]", ids, stalled.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/studies?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestServiceCancelRunningJob(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	man := service.NewManager(service.Config{
		Workers: 1, QueueCap: 4, Executors: 1,
		EvalHook: func(ctx context.Context, eval int) error {
			<-ctx.Done() // stall until cancelled
			return ctx.Err()
		},
	})
	man.Start()
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	_, sub := postStudy(t, ts, tinyStudy(10))
	waitState(t, ts, sub.ID, service.StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	st := waitState(t, ts, sub.ID, service.StateCancelled)
	if st.Error == "" {
		t.Fatal("cancelled job should carry its cause")
	}
	if got := man.Metrics().JobsCancelled.Load(); got != 1 {
		t.Fatalf("cancelled counter %d", got)
	}
	man.Drain(time.Second)
}

func TestServiceDrainLeakFree(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	man := service.NewManager(service.Config{
		Workers: 2, QueueCap: 4, Executors: 1,
		EvalHook: func(ctx context.Context, eval int) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	man.Start()
	ts := httptest.NewServer(service.NewServer(man))

	// One running (stalled) job plus queued ones behind it.
	_, running := postStudy(t, ts, tinyStudy(10))
	waitState(t, ts, running.ID, service.StateRunning)
	_, queuedA := postStudy(t, ts, tinyStudy(11))
	_, queuedB := postStudy(t, ts, tinyStudy(12))

	// Keep an events stream open across the drain: it must end cleanly,
	// not leak its handler goroutine.
	evResp, err := http.Get(ts.URL + "/v1/studies/" + running.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}

	// Short grace: the stalled job cannot finish, so drain must cancel it.
	man.Drain(20 * time.Millisecond)

	if _, err := io.ReadAll(evResp.Body); err != nil {
		t.Fatalf("event stream did not end cleanly: %v", err)
	}
	evResp.Body.Close()

	for _, id := range []string{running.ID, queuedA.ID, queuedB.ID} {
		st := getStatus(t, ts, id)
		if st.State != service.StateCancelled {
			t.Fatalf("job %s drained into %q, want cancelled", id, st.State)
		}
	}
	// Post-drain submissions are refused.
	resp, _ := postStudy(t, ts, tinyStudy(13))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: HTTP %d, want 503", resp.StatusCode)
	}
	// Liveness stays green through a drain; readiness goes red.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: HTTP %d, want 200 (liveness)", hresp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: HTTP %d, want 503", rresp.StatusCode)
	}
	ts.Close() // before the leak check: the httptest listener has its own goroutines
}

func TestServiceMetricsScrape(t *testing.T) {
	cache, err := synth.NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4, Cache: cache})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	// The kernel counters are process-global; equation-mode studies never
	// touch the simulator, so drive one tiny OP directly to guarantee the
	// scrape has nonzero factorization counts to render.
	ckt, err := netlist.Parse("* divider\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.OP(ckt, sim.DCOpts{}); err != nil {
		t.Fatal(err)
	}

	_, sub := postStudy(t, ts, tinyStudy(10))
	waitState(t, ts, sub.ID, service.StateDone)
	// An identical re-submission is NOT deduped (the first is terminal)
	// but replays entirely from the synthesis cache.
	_, sub2 := postStudy(t, ts, tinyStudy(10))
	if sub2.Deduped {
		t.Fatal("terminal job must not dedupe a new submission")
	}
	st2 := waitState(t, ts, sub2.ID, service.StateDone)
	if st2.Result.CacheHits == 0 || st2.Result.CacheMisses != 0 {
		t.Fatalf("second run should be pure cache hits: %d hits / %d misses",
			st2.Result.CacheHits, st2.Result.CacheMisses)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, want := range []string{
		`adcsynd_jobs_total{event="accepted"} 2`,
		`adcsynd_jobs{state="done"} 2`,
		"adcsynd_queue_depth 0",
		"adcsynd_queue_capacity 4",
		"adcsynd_pool_inflight 0",
		"adcsynd_pool_queued 0",
		"adcsynd_synth_cache_hits_total",
		"adcsynd_synth_cache_misses_total",
		"adcsynd_eval_duration_seconds_count",
		`adcsynd_kernel_factorizations_total{event="performed"}`,
		`adcsynd_kernel_factorizations_total{event="reused"}`,
		"adcsynd_kernel_reuse_fallbacks_total",
		"adcsynd_kernel_ordered_fallbacks_total",
		`adcsynd_kernel_batch_width_bucket{le="+Inf"}`,
		"adcsynd_kernel_batch_width_sum",
		"adcsynd_kernel_batch_width_count",
		// Yield counters render (at zero) even when no yield job ran.
		`adcsynd_yield_draws_total{result="pass"} 0`,
		`adcsynd_yield_draws_total{result="fail"} 0`,
		`adcsynd_yield_enob_bucket{le="+Inf"} 0`,
		"adcsynd_yield_enob_count 0",
		"adcsynd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The OP above performed at least one factorization.
	if strings.Contains(text, `adcsynd_kernel_factorizations_total{event="performed"} 0`) {
		t.Error("kernel factorization counter is zero after a direct OP")
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
	// The histogram observed real evaluations.
	if strings.Contains(text, "adcsynd_eval_duration_seconds_count 0\n") {
		t.Error("evaluation histogram is empty after a fresh study")
	}
}
