package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"
)

// Server is the daemon's HTTP surface over a Manager:
//
//	POST   /v1/studies            submit a study (202; 200 when deduped;
//	                              413 over MaxStudyBodyBytes; 415 on a
//	                              non-JSON Content-Type;
//	                              429 + Retry-After when the queue is full;
//	                              503 while draining)
//	POST   /v1/jobs               alias of the submit above
//	GET    /v1/studies            list jobs, newest first; ?state= filters
//	GET    /v1/jobs               alias of the listing above
//	GET    /v1/studies/{id}       job status (+ result when done)
//	GET    /v1/studies/{id}/events per-stage progress as NDJSON, streamed
//	                              until the job is terminal
//	DELETE /v1/studies/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}[/events] aliases of the job routes above
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness: 200 while the process serves
//	GET    /readyz                readiness: 200 once Start has run (journal
//	                              replayed) and no drain is in progress
type Server struct {
	man *Manager
	mux *http.ServeMux
}

// NewServer wires the routes over a started Manager.
func NewServer(man *Manager) *Server {
	s := &Server{man: man, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/studies", s.submit)
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/studies", s.list)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	for _, base := range []string{"/v1/studies", "/v1/jobs"} {
		s.mux.HandleFunc("GET "+base+"/{id}", s.status)
		s.mux.HandleFunc("GET "+base+"/{id}/events", s.events)
		s.mux.HandleFunc("DELETE "+base+"/{id}", s.cancel)
	}
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manager exposes the job manager the server fronts (the cluster router
// shares it).
func (s *Server) Manager() *Manager { return s.man }

// SubmitResponse is the POST /v1/studies reply.
type SubmitResponse struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped"`
	// Events and Status are the URLs to follow the job with.
	Status string `json:"status"`
	Events string `json:"events"`
}

// MaxStudyBodyBytes bounds a study submission body. A valid request is a
// couple hundred bytes of knobs; a megabyte is already three orders of
// magnitude of slack, and the limit is what keeps one malicious or
// buggy client (or a proxying peer) from ballooning the daemon's memory.
const MaxStudyBodyBytes = 1 << 20

// DecodeStudyRequest enforces the submission guards — JSON Content-Type
// (415 otherwise) and the MaxStudyBodyBytes body cap (413) — then
// decodes the request. On failure the response has been written and ok
// is false. The cluster routing layer shares these guards, so a body is
// validated once at the entry node before it travels peer-to-peer.
func DecodeStudyRequest(w http.ResponseWriter, r *http.Request) (req StudyRequest, ok bool) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			httpError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("content type %q: want application/json", ct))
			return req, false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxStudyBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", MaxStudyBodyBytes))
			return req, false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return req, false
	}
	return req, true
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	req, ok := DecodeStudyRequest(w, r)
	if !ok {
		return
	}
	s.WriteSubmit(w, req)
}

// WriteSubmit admits the (already decoded) request and writes the
// submit response — the shared tail of the local submit handler and the
// cluster router's local-execution path. It returns the admitted job
// and whether it is fresh (false on dedup or error).
func (s *Server) WriteSubmit(w http.ResponseWriter, req StudyRequest) (*Job, bool) {
	job, deduped, err := s.man.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: the client should retry once the
		// queue has likely drained a slot. The manager estimates that
		// from the observed completion rate (clamped to [1, 60] s).
		w.Header().Set("Retry-After", strconv.Itoa(s.man.RetryAfter()))
		httpError(w, http.StatusTooManyRequests, err)
		return nil, false
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return nil, false
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	loc := "/v1/studies/" + job.ID
	w.Header().Set("Location", loc)
	writeJSON(w, code, SubmitResponse{
		ID: job.ID, Key: job.Key, State: job.State(), Deduped: deduped,
		Status: loc, Events: loc + "/events",
	})
	return job, !deduped
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	filter := State(r.URL.Query().Get("state"))
	switch filter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", filter))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.man.Jobs(filter)})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// events streams the job's progress as NDJSON: every recorded event is
// replayed first, then live events follow until the job goes terminal or
// the client disconnects. Each line is one Event; Seq makes gaps
// detectable on the consumer side.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	replay, live, unsubscribe := job.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return // job terminal, channel drained
			}
			if !emit(ev) {
				return
			}
		}
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.man.Cancel(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	job, _ := s.man.Get(id)
	writeJSON(w, http.StatusAccepted, struct {
		ID    string `json:"id"`
		State State  `json:"state"`
	}{id, job.State()})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.man.Metrics().WriteTo(w, s.man.Snapshot())
}

// healthz is liveness: the process is up and serving HTTP. It stays 200
// through a drain — a draining daemon is alive, just not ready — so
// orchestrators keep it running while in-flight jobs finish.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// readyz is readiness: Start has run (with a journal, replay precedes
// Start) and no drain is in progress. Load balancers and cluster
// heartbeats route on this.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if !s.man.Ready() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
