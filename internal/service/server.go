package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Server is the daemon's HTTP surface over a Manager:
//
//	POST   /v1/studies            submit a study (202; 200 when deduped;
//	                              429 + Retry-After when the queue is full;
//	                              503 while draining)
//	GET    /v1/studies            list jobs, newest first; ?state= filters
//	GET    /v1/jobs               alias of the listing above
//	GET    /v1/studies/{id}       job status (+ result when done)
//	GET    /v1/studies/{id}/events per-stage progress as NDJSON, streamed
//	                              until the job is terminal
//	DELETE /v1/studies/{id}       cancel a queued or running job
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               200 ok / 503 draining
type Server struct {
	man *Manager
	mux *http.ServeMux
}

// NewServer wires the routes over a started Manager.
func NewServer(man *Manager) *Server {
	s := &Server{man: man, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/studies", s.submit)
	s.mux.HandleFunc("GET /v1/studies", s.list)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/studies/{id}", s.status)
	s.mux.HandleFunc("GET /v1/studies/{id}/events", s.events)
	s.mux.HandleFunc("DELETE /v1/studies/{id}", s.cancel)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitResponse is the POST /v1/studies reply.
type SubmitResponse struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped"`
	// Events and Status are the URLs to follow the job with.
	Status string `json:"status"`
	Events string `json:"events"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	job, deduped, err := s.man.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: the client should retry once the
		// queue has likely drained a slot. The manager estimates that
		// from the observed completion rate (clamped to [1, 60] s).
		w.Header().Set("Retry-After", strconv.Itoa(s.man.RetryAfter()))
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	loc := "/v1/studies/" + job.ID
	w.Header().Set("Location", loc)
	writeJSON(w, code, SubmitResponse{
		ID: job.ID, Key: job.Key, State: job.State(), Deduped: deduped,
		Status: loc, Events: loc + "/events",
	})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	filter := State(r.URL.Query().Get("state"))
	switch filter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", filter))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.man.Jobs(filter)})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// events streams the job's progress as NDJSON: every recorded event is
// replayed first, then live events follow until the job goes terminal or
// the client disconnects. Each line is one Event; Seq makes gaps
// detectable on the consumer side.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	replay, live, unsubscribe := job.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return // job terminal, channel drained
			}
			if !emit(ev) {
				return
			}
		}
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.man.Cancel(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	job, _ := s.man.Get(id)
	writeJSON(w, http.StatusAccepted, struct {
		ID    string `json:"id"`
		State State  `json:"state"`
	}{id, job.State()})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.man.Metrics().WriteTo(w, s.man.Snapshot())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.man.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
