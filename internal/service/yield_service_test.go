package service_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/service"
)

// tinyYield is a yield-mode request small enough for CI: a modest
// converter, a tiny synthesis budget, and a few dozen draws.
func tinyYield(bits, draws int) service.StudyRequest {
	return service.StudyRequest{
		Bits: bits, Mode: "yield", Evals: 8, Pattern: 6, Seed: 3, Draws: draws,
	}
}

func TestServiceYieldLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("yield job synthesizes in hybrid mode (seconds)")
	}
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	req := tinyYield(8, 48)
	resp, sub := postStudy(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	st := waitState(t, ts, sub.ID, service.StateDone)
	res := st.Result
	if res == nil || res.Yield == nil {
		t.Fatalf("yield job finished without a yield result: %+v", res)
	}
	if res.Mode != "yield" {
		t.Fatalf("result mode %q, want yield", res.Mode)
	}
	y := res.Yield
	if y.Draws != 48 || len(res.Best.Config) == 0 {
		t.Fatalf("implausible yield result %+v over %+v", y, res.Best)
	}
	if y.MinENOB != 7 { // default: bits − 1
		t.Fatalf("defaulted MinENOB %g, want 7", y.MinENOB)
	}
	if y.ENOB.Min > y.ENOB.P50 || y.ENOB.P50 > y.ENOB.Max || y.ENOB.Max <= 0 {
		t.Fatalf("ENOB distribution out of order: %+v", y.ENOB)
	}
	if y.Pass < 0 || y.Pass > y.Draws || y.Yield != float64(y.Pass)/float64(y.Draws) {
		t.Fatalf("inconsistent pass accounting: %+v", y)
	}

	// The event stream replayed chunk-granular yield progress.
	evResp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	chunks := 0
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "progress" && ev.Progress != nil && ev.Progress.Kind == "yield_chunk" {
			chunks++
			if ev.Progress.Draws != 48 || ev.Progress.Done < 1 || ev.Progress.Done > 48 {
				t.Fatalf("bad yield chunk %+v", ev.Progress)
			}
		}
	}
	if chunks < 2 { // 48 draws at chunk 32 → one mid-run chunk plus the final one
		t.Fatalf("saw %d yield_chunk events, want >= 2", chunks)
	}

	// The scrape carries the draw counters and the ENOB histogram.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	blob, _ := io.ReadAll(mresp.Body)
	text := string(blob)
	for _, want := range []string{
		`adcsynd_yield_draws_total{result="pass"}`,
		`adcsynd_yield_draws_total{result="fail"}`,
		`adcsynd_yield_enob_bucket{le="+Inf"} 48`,
		"adcsynd_yield_enob_count 48",
		"adcsynd_yield_enob_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if man.Metrics().YieldDraws() != 48 {
		t.Fatalf("metrics saw %d draws, want 48", man.Metrics().YieldDraws())
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// The determinism contract holds through the whole serving stack: the
// same yield request answered by daemons with different worker counts
// produces identical distributions.
func TestServiceYieldDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two hybrid syntheses")
	}
	run := func(workers int) *service.StudyJSON {
		man := service.NewManager(service.Config{Workers: workers, QueueCap: 4})
		man.Start()
		defer man.Drain(time.Second)
		ts := httptest.NewServer(service.NewServer(man))
		defer ts.Close()
		_, sub := postStudy(t, ts, tinyYield(8, 32))
		return waitState(t, ts, sub.ID, service.StateDone).Result
	}
	a, b := run(1), run(4)
	if a == nil || b == nil || a.Yield == nil || b.Yield == nil {
		t.Fatal("missing yield results")
	}
	if !reflect.DeepEqual(a.Yield, b.Yield) {
		t.Fatalf("yield differs across worker counts:\n1 worker: %+v\n4 workers: %+v", a.Yield, b.Yield)
	}
	if !reflect.DeepEqual(a.Best, b.Best) {
		t.Fatalf("best design differs across worker counts")
	}
}

func TestYieldRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  service.StudyRequest
	}{
		{"draws without yield mode", service.StudyRequest{Bits: 10, Mode: "equation", Draws: 100}},
		{"minEnob without yield mode", service.StudyRequest{Bits: 10, MinENOB: 8}},
		{"negative draws", service.StudyRequest{Bits: 10, Mode: "yield", Draws: -1}},
		{"draws over cap", service.StudyRequest{Bits: 10, Mode: "yield", Draws: 1 << 20}},
		{"minEnob above bits", service.StudyRequest{Bits: 10, Mode: "yield", MinENOB: 11}},
	}
	for _, tc := range cases {
		if _, err := tc.req.Options(); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		}
	}

	// A yield job and the plain study of the same design must not share
	// a single-flight identity, while draw count shapes the yield key.
	yreq := service.StudyRequest{Bits: 10, Mode: "yield", Seed: 3, Draws: 100}
	plain := service.StudyRequest{Bits: 10, Mode: "hybrid", Seed: 3}
	yopts, err := yreq.Options()
	if err != nil {
		t.Fatal(err)
	}
	popts, err := plain.Options()
	if err != nil {
		t.Fatal(err)
	}
	if yreq.JobKey(yopts) == plain.JobKey(popts) {
		t.Fatal("yield job key must differ from the underlying study key")
	}
	more := yreq
	more.Draws = 200
	if more.JobKey(yopts) == yreq.JobKey(yopts) {
		t.Fatal("draw count must shape the yield job key")
	}
}
