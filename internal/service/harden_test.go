package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/service"
)

// TestServiceSubmitContentType: a submit with a non-JSON Content-Type is
// refused with 415 before the body is read; an explicit JSON type and a
// missing header both pass.
func TestServiceSubmitContentType(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 1, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	body, _ := json.Marshal(tinyStudy(10))
	for _, tc := range []struct {
		ct string
		// reject: expect 415. Otherwise expect admission — 202, or 200
		// when the submit dedupes against a still-in-flight twin.
		reject bool
	}{
		{ct: "application/x-www-form-urlencoded", reject: true},
		{ct: "text/plain", reject: true},
		{ct: "application/json"},
		{ct: "application/json; charset=utf-8"},
		{ct: "application/study+json"},
		{ct: ""}, // no header: trusted to be JSON
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/studies", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if tc.ct != "" {
			req.Header.Set("Content-Type", tc.ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch {
		case tc.reject && resp.StatusCode != http.StatusUnsupportedMediaType:
			t.Fatalf("Content-Type %q: HTTP %d, want 415", tc.ct, resp.StatusCode)
		case !tc.reject && resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK:
			t.Fatalf("Content-Type %q: HTTP %d, want 202/200", tc.ct, resp.StatusCode)
		}
	}
}

// TestServiceSubmitBodyLimit: a body over MaxStudyBodyBytes answers 413,
// and the oversized submit is not admitted.
func TestServiceSubmitBodyLimit(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 1, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	// Valid JSON, just bloated past the cap with an ignored field.
	huge := `{"bits": 10, "pad": "` + strings.Repeat("x", service.MaxStudyBodyBytes) + `"}`
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: HTTP %d, want 413", resp.StatusCode)
	}
	if got := man.Metrics().JobsAccepted.Load(); got != 0 {
		t.Fatalf("oversized submit was admitted (%d jobs)", got)
	}
}

// TestServiceReadyzLifecycle: readyz is 503 until Start (journal replay
// happens before Start, so "started" is the replay-complete signal) and
// 200 after; healthz is 200 throughout.
func TestServiceReadyzLifecycle(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before Start: HTTP %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Start: HTTP %d, want 503", code)
	}
	man.Start()
	defer man.Drain(time.Second)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after Start: HTTP %d, want 200", code)
	}
}

// TestServiceStatusOwnerAndStudyKey: JobStatus carries the admitting
// node's id and the synthesis content address (for plain studies, equal
// to the job key) so cross-node debugging can correlate.
func TestServiceStatusOwnerAndStudyKey(t *testing.T) {
	man := service.NewManager(service.Config{
		Workers: 2, QueueCap: 4, NodeID: "http://node-a:8080",
	})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	_, sub := postStudy(t, ts, tinyStudy(10))
	st := waitState(t, ts, sub.ID, service.StateDone)
	if st.Owner != "http://node-a:8080" {
		t.Fatalf("owner %q, want the node id", st.Owner)
	}
	if st.StudyKey == "" {
		t.Fatal("status missing studyKey")
	}
	if st.StudyKey != sub.Key {
		t.Fatalf("plain study: studyKey %q should equal job key %q", st.StudyKey, sub.Key)
	}

	// A yield study's job key extends the study key; they must differ.
	yreq := tinyStudy(10)
	yreq.Mode = "yield"
	yreq.Draws = 8
	_, ysub := postStudy(t, ts, yreq)
	yst := waitState(t, ts, ysub.ID, service.StateDone)
	if yst.StudyKey == "" || yst.StudyKey == ysub.Key {
		t.Fatalf("yield study: studyKey %q vs job key %q, want distinct", yst.StudyKey, ysub.Key)
	}
}
