package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipesyn/internal/core"
	"pipesyn/internal/sched"
	"pipesyn/internal/synth"
)

// State is a job's position in the lifecycle: queued → running →
// done | failed | cancelled. Terminal states never change.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state can still change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one line of a job's NDJSON progress stream. Seq increases by
// one per event within a job, so a consumer can detect gaps. Progress
// carries the study-level payload on kind "progress"; Result rides the
// terminal "done" event.
type Event struct {
	Seq      int                 `json:"seq"`
	JobID    string              `json:"job"`
	Kind     string              `json:"kind"` // queued|started|progress|done|failed|cancelled
	State    State               `json:"state"`
	Progress *core.ProgressEvent `json:"progress,omitempty"`
	Error    string              `json:"error,omitempty"`
	Result   *StudyJSON          `json:"result,omitempty"`
}

// Job is one submitted study. All mutable fields are guarded by mu; the
// exported accessors snapshot them.
type Job struct {
	ID      string
	Key     string // core.StudyKey content address — the single-flight identity
	Req     StudyRequest
	Created time.Time

	mu       sync.Mutex
	state    State
	err      error
	result   *StudyJSON
	started  time.Time
	finished time.Time
	evals    int64
	events   []Event
	subs     map[int]chan Event
	nextSub  int
	cancel   context.CancelFunc // set while running
	done     chan struct{}      // closed on terminal transition
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	State    State        `json:"state"`
	Request  StudyRequest `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Evals    int64        `json:"evals"`
	Error    string       `json:"error,omitempty"`
	Result   *StudyJSON   `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Key: j.Key, State: j.state, Request: j.Req,
		Created: j.Created, Evals: j.evals, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State reports the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// appendEvent records and broadcasts one event. Slow subscribers do not
// stall the engine: a full subscriber channel drops the event for that
// subscriber only (the buffer is far larger than any study's event
// count, so this only bites a consumer that stopped reading).
func (j *Job) appendEvent(kind string, fill func(*Event)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{Seq: len(j.events), JobID: j.ID, Kind: kind, State: j.state}
	if fill != nil {
		fill(&ev)
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events recorded so far plus a live channel for
// the rest. The channel is closed once the job is terminal and all
// events are delivered. The returned cancel is idempotent and must be
// called when the consumer stops reading.
func (j *Job) Subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append(replay, j.events...)
	ch := make(chan Event, 1024)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	var once sync.Once
	return replay, ch, func() {
		once.Do(func() {
			j.mu.Lock()
			if c, ok := j.subs[id]; ok {
				delete(j.subs, id)
				close(c)
			}
			j.mu.Unlock()
		})
	}
}

// begin transitions queued → running; false means the job went terminal
// first (cancelled while queued) and must not run.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// Errors returned by Submit; the HTTP layer maps them to status codes.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrNotFound  = errors.New("service: no such job")
)

// Config sizes a Manager.
type Config struct {
	// Workers bounds the shared synthesis pool (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue (default 16). A full queue
	// rejects new submissions with ErrQueueFull — backpressure instead
	// of unbounded goroutines.
	QueueCap int
	// Executors is how many studies run concurrently (default 1; each
	// study already fans out internally on the shared pool).
	Executors int
	// JobTimeout bounds one study's wall clock (0 = unlimited).
	JobTimeout time.Duration
	// Cache is the shared content-addressed synthesis cache (nil = none).
	Cache *synth.Cache
	// Metrics receives counters and evaluation latencies (nil = a
	// private registry nobody scrapes).
	Metrics *Metrics
	// EvalHook is threaded to synth.Options.EvalHook on every job — the
	// same fault-injection/stall seam the engine's robustness tests
	// use, here so service tests can gate a job mid-run. Nil in
	// production.
	EvalHook func(ctx context.Context, eval int) error
}

// Manager owns the job table, the bounded admission queue, and the
// executor goroutines that run studies on one shared sched.Pool.
type Manager struct {
	cfg     Config
	pool    *sched.Pool
	metrics *Metrics

	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]*Job // queued/running job per study key (single-flight)
	nextID   int
	draining bool

	loopCtx  context.Context
	stopLoop context.CancelFunc
	wg       sync.WaitGroup
}

// NewManager builds a stopped manager; Start launches the executors.
func NewManager(cfg Config) *Manager {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:      cfg,
		pool:     sched.NewPool(cfg.Workers),
		metrics:  cfg.Metrics,
		queue:    make(chan *Job, cfg.QueueCap),
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]*Job),
		loopCtx:  ctx,
		stopLoop: cancel,
	}
}

// Metrics returns the registry the manager reports into.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Start launches the executor goroutines.
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Executors; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-m.loopCtx.Done():
					return
				case job := <-m.queue:
					m.runJob(job)
				}
			}
		}()
	}
}

// Submit admits a study request. When an identical study (same content
// address) is already queued or running, the in-flight job is returned
// with deduped=true and no new execution starts — concurrent identical
// submissions share one run. A full queue returns ErrQueueFull; a
// draining manager returns ErrDraining.
func (m *Manager) Submit(req StudyRequest) (job *Job, deduped bool, err error) {
	opts, err := req.Options()
	if err != nil {
		return nil, false, err
	}
	key := core.StudyKey(opts)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.JobsRejected.Add(1)
		return nil, false, ErrDraining
	}
	if inflight, ok := m.byKey[key]; ok {
		m.metrics.JobsDeduped.Add(1)
		return inflight, true, nil
	}
	m.nextID++
	job = &Job{
		ID:      fmt.Sprintf("s%06d-%s", m.nextID, key[:8]),
		Key:     key,
		Req:     req,
		Created: time.Now(),
		state:   StateQueued,
		subs:    make(map[int]chan Event),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.metrics.JobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.byKey[key] = job
	m.metrics.JobsAccepted.Add(1)
	job.appendEvent("queued", nil)
	return job, false, nil
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status, newest first.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	// Newest first by ID (IDs are monotonic).
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].ID > out[i].ID {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a running
// one has its context cancelled and goes terminal within one evaluation
// granule. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return nil
	case j.state == StateQueued:
		j.mu.Unlock()
		m.finalize(j, StateCancelled, nil, context.Canceled)
		return nil
	default: // running
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
}

// Snapshot assembles the gauge set for a /metrics scrape.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	byState := make(map[State]int)
	for _, j := range m.jobs {
		byState[j.State()]++
	}
	// State() takes j.mu while m.mu is held: safe, the lock order
	// everywhere is Manager.mu → Job.mu.
	snap := Snapshot{
		QueueDepth:    len(m.queue),
		QueueCapacity: cap(m.queue),
		JobsByState:   byState,
		Draining:      m.draining,
	}
	m.mu.Unlock()
	snap.PoolQueued = m.pool.Queued()
	snap.PoolInFlight = m.pool.InFlight()
	snap.PoolWorkers = m.pool.Workers()
	if m.cfg.Cache != nil {
		cs := m.cfg.Cache.Stats()
		snap.CacheHits = cs.Hits
		snap.CacheMisses = cs.Misses
	}
	return snap
}

// Draining reports whether the manager has begun shutdown.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// runJob executes one study on an executor goroutine.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(m.loopCtx)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(m.loopCtx, m.cfg.JobTimeout)
	}
	defer cancel()
	if !job.begin(cancel) {
		return // cancelled while queued
	}
	job.appendEvent("started", nil)

	opts, err := job.Req.Options()
	if err != nil {
		// Submit validated already; a failure here is a programming error.
		m.finalize(job, StateFailed, nil, err)
		return
	}
	opts.Pool = m.pool
	opts.Synth.Cache = m.cfg.Cache
	opts.Synth.EvalHook = m.cfg.EvalHook
	opts.Progress = func(ev core.ProgressEvent) {
		p := ev
		job.appendEvent("progress", func(e *Event) { e.Progress = &p })
	}
	opts.Synth.Progress = func(p synth.Progress) {
		m.metrics.ObserveEval(p.Elapsed)
		job.mu.Lock()
		job.evals++
		job.mu.Unlock()
	}

	start := time.Now()
	study, err := core.Optimize(ctx, opts)
	switch {
	case err == nil:
		m.finalize(job, StateDone, EncodeStudy(study, opts.Mode, time.Since(start)), nil)
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		m.finalize(job, StateCancelled, nil, err)
	default:
		m.finalize(job, StateFailed, nil, err)
	}
}

// finalize moves a job to a terminal state exactly once: records the
// outcome, emits the terminal event, closes subscriber channels and the
// done channel, releases the single-flight key, and bumps the counters.
func (m *Manager) finalize(job *Job, state State, result *StudyJSON, err error) {
	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		return
	}
	job.state = state
	job.finished = time.Now()
	job.result = result
	job.err = err
	// The terminal event, the subscriber close, and the state flip are
	// one critical section: a Subscribe on the other side of the lock
	// either sees the complete event log (terminal line included) or
	// gets the terminal event on its live channel before the close.
	ev := Event{Seq: len(job.events), JobID: job.ID, Kind: string(state), State: state, Result: result}
	if err != nil {
		ev.Error = err.Error()
	}
	job.events = append(job.events, ev)
	for id, ch := range job.subs {
		select {
		case ch <- ev:
		default:
		}
		delete(job.subs, id)
		close(ch)
	}
	close(job.done)
	job.mu.Unlock()

	m.mu.Lock()
	if m.byKey[job.Key] == job {
		delete(m.byKey, job.Key)
	}
	m.mu.Unlock()

	switch state {
	case StateDone:
		m.metrics.JobsDone.Add(1)
	case StateFailed:
		m.metrics.JobsFailed.Add(1)
	case StateCancelled:
		m.metrics.JobsCancelled.Add(1)
	}
}

// Drain shuts the manager down: new submissions are rejected, queued
// jobs are cancelled immediately, and running jobs get up to timeout to
// finish before their contexts are cancelled. Drain blocks until every
// executor goroutine has exited, so a clean return means no engine
// goroutines remain.
func (m *Manager) Drain(timeout time.Duration) {
	m.mu.Lock()
	m.draining = true
	var queued, running []*Job
	for _, j := range m.jobs {
		switch j.State() {
		case StateQueued:
			queued = append(queued, j)
		case StateRunning:
			running = append(running, j)
		}
	}
	m.mu.Unlock()

	// Queued jobs are rejected immediately: they have not started, so
	// there is nothing worth waiting for.
	for _, j := range queued {
		// Cancel handles the race where an executor began the job after
		// the snapshot above: it cancels the running context instead.
		_ = m.Cancel(j.ID)
	}

	// In-flight jobs get the grace window, then cancellation. The timer
	// channel delivers once, so remember expiry instead of re-receiving.
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	expired := false
	for _, j := range running {
		if !expired {
			select {
			case <-j.Done():
				continue
			case <-deadline.C:
				expired = true
			}
		}
		_ = m.Cancel(j.ID)
		<-j.Done() // cancellation lands within one evaluation granule
	}
	// A job that slipped from queued to running between the snapshot and
	// Cancel above is already cancelled (context), so Done closes fast;
	// sweep anything left to be safe.
	m.mu.Lock()
	var rest []*Job
	for _, j := range m.jobs {
		if !j.State().Terminal() && j.State() == StateRunning {
			rest = append(rest, j)
		}
	}
	m.mu.Unlock()
	for _, j := range rest {
		_ = m.Cancel(j.ID)
		<-j.Done()
	}

	m.stopLoop()
	m.wg.Wait()

	// Anything still sitting in the queue channel was finalized as
	// cancelled above and is skipped by begin(); drop the references.
	for {
		select {
		case <-m.queue:
		default:
			return
		}
	}
}
