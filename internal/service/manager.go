package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipesyn/internal/core"
	"pipesyn/internal/sched"
	"pipesyn/internal/sim"
	"pipesyn/internal/synth"
	"pipesyn/internal/yield"
)

// State is a job's position in the lifecycle: queued → running →
// done | failed | cancelled. Terminal states never change.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state can still change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one line of a job's NDJSON progress stream. Seq increases by
// one per event within a job, so a consumer can detect gaps. Progress
// carries the study-level payload on kind "progress"; Result rides the
// terminal "done" event. A job re-enqueued from the journal after a
// crash opens its stream with kind "recovered" instead of "queued".
type Event struct {
	Seq      int                 `json:"seq"`
	JobID    string              `json:"job"`
	Kind     string              `json:"kind"` // queued|recovered|started|progress|done|failed|cancelled
	State    State               `json:"state"`
	Progress *core.ProgressEvent `json:"progress,omitempty"`
	Error    string              `json:"error,omitempty"`
	Result   *StudyJSON          `json:"result,omitempty"`
}

// Job is one submitted study. All mutable fields are guarded by mu; the
// exported accessors snapshot them.
type Job struct {
	ID  string
	Key string // job content address (JobKey) — the single-flight identity
	// StudyKey is the synthesis content address (core.StudyKey). It
	// equals Key for plain studies; yield jobs extend it with the
	// canonical spec, so both are reported for cross-node debugging.
	StudyKey string
	// Owner is the cluster node that admitted (or took over) the job;
	// empty outside cluster mode.
	Owner   string
	Req     StudyRequest
	Created time.Time

	mu       sync.Mutex
	state    State
	err      error
	result   *StudyJSON
	started  time.Time
	finished time.Time
	evals    int64
	events   []Event
	subs     map[int]chan Event
	nextSub  int
	cancel   context.CancelFunc // set while running
	done     chan struct{}      // closed on terminal transition
}

// JobStatus is the wire form of a job's current state. Owner and
// StudyKey make cross-node job lookup debuggable: a cluster operator can
// see which node ran the job and which synthesis content address it
// resolves to, whatever entry node answered the GET.
type JobStatus struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	StudyKey string       `json:"studyKey,omitempty"`
	Owner    string       `json:"owner,omitempty"`
	State    State        `json:"state"`
	Request  StudyRequest `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Evals    int64        `json:"evals"`
	Error    string       `json:"error,omitempty"`
	Result   *StudyJSON   `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Key: j.Key, StudyKey: j.StudyKey, Owner: j.Owner,
		State: j.state, Request: j.Req,
		Created: j.Created, Evals: j.evals, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State reports the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// appendEvent records and broadcasts one event. Slow subscribers do not
// stall the engine: a full subscriber channel drops the event for that
// subscriber only (the buffer is far larger than any study's event
// count, so this only bites a consumer that stopped reading).
func (j *Job) appendEvent(kind string, fill func(*Event)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{Seq: len(j.events), JobID: j.ID, Kind: kind, State: j.state}
	if fill != nil {
		fill(&ev)
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events recorded so far plus a live channel for
// the rest. The channel is closed once the job is terminal and all
// events are delivered. The returned cancel is idempotent and must be
// called when the consumer stops reading.
func (j *Job) Subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append(replay, j.events...)
	ch := make(chan Event, 1024)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	var once sync.Once
	return replay, ch, func() {
		once.Do(func() {
			j.mu.Lock()
			if c, ok := j.subs[id]; ok {
				delete(j.subs, id)
				close(c)
			}
			j.mu.Unlock()
		})
	}
}

// begin transitions queued → running; false means the job went terminal
// first (cancelled while queued) and must not run.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// Errors returned by Submit; the HTTP layer maps them to status codes.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrNotFound  = errors.New("service: no such job")
)

// Config sizes a Manager.
type Config struct {
	// Workers bounds the shared synthesis pool (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue (default 16). A full queue
	// rejects new submissions with ErrQueueFull — backpressure instead
	// of unbounded goroutines.
	QueueCap int
	// Executors is how many studies run concurrently (default 1; each
	// study already fans out internally on the shared pool).
	Executors int
	// JobTimeout bounds one study's wall clock (0 = unlimited).
	JobTimeout time.Duration
	// Cache is the shared content-addressed synthesis cache (nil = none).
	Cache *synth.Cache
	// Metrics receives counters and evaluation latencies (nil = a
	// private registry nobody scrapes).
	Metrics *Metrics
	// EvalHook is threaded to synth.Options.EvalHook on every job — the
	// same fault-injection/stall seam the engine's robustness tests
	// use, here so service tests can gate a job mid-run. Nil in
	// production.
	EvalHook func(ctx context.Context, eval int) error
	// Journal is the durable job WAL (nil = in-memory only). When set,
	// call Recover before Start so jobs admitted before a crash are
	// replayed rather than lost.
	Journal *Journal
	// Retain bounds how many terminal jobs stay queryable (default 256).
	// Older terminal jobs are evicted — from the ring AND the job table,
	// so a long-running daemon's memory stays proportional to Retain
	// plus the active set, not to total traffic.
	Retain int
	// RetainAge additionally evicts terminal jobs older than this
	// (0 = no age bound).
	RetainAge time.Duration
	// DefaultRace turns the successive-halving racing scheduler on for
	// every submitted study that did not ask for racing itself (the
	// daemon's -race-default). Normalization happens at admission, before
	// key computation and journaling, so dedup, recovery, and cluster
	// handoff all see the normalized request. In cluster mode every node
	// must agree on this flag, like the rest of the ring configuration.
	DefaultRace bool
	// NodeID is this node's cluster identity (its advertised base URL).
	// Empty outside cluster mode. Stamped on every job as its owner and
	// journaled with submit/start records.
	NodeID string
	// Lease is the cluster job-lease duration: submit/start journal
	// records carry a deadline of now+Lease, and the cluster layer
	// renews replicas on the same cadence. Zero means no lease
	// bookkeeping (single-node mode).
	Lease time.Duration
}

// Manager owns the job table, the bounded admission queue, and the
// executor goroutines that run studies on one shared sched.Pool.
type Manager struct {
	cfg     Config
	pool    *sched.Pool
	metrics *Metrics

	queue chan *Job

	mu        sync.Mutex
	jobs      map[string]*Job
	byKey     map[string]*Job // queued/running job per study key (single-flight)
	terminals []*Job          // retention ring, oldest first; members of jobs
	avgJobNS  float64         // EWMA of completed-job wall time (drives Retry-After)
	nextID    int
	draining  bool
	started   bool // set by Start; readiness = started && !draining

	loopCtx  context.Context
	stopLoop context.CancelFunc
	wg       sync.WaitGroup
}

// NewManager builds a stopped manager; Start launches the executors.
func NewManager(cfg Config) *Manager {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:      cfg,
		pool:     sched.NewPool(cfg.Workers),
		metrics:  cfg.Metrics,
		queue:    make(chan *Job, cfg.QueueCap),
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]*Job),
		loopCtx:  ctx,
		stopLoop: cancel,
	}
}

// Metrics returns the registry the manager reports into.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Start launches the executor goroutines and marks the manager ready:
// callers that journal must Recover first, so Ready implies the journal
// has been replayed.
func (m *Manager) Start() {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	for i := 0; i < m.cfg.Executors; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-m.loopCtx.Done():
					return
				case job := <-m.queue:
					m.runJob(job)
				}
			}
		}()
	}
}

// RecoveryError is the typed reason a journaled job could not be
// re-enqueued after a crash: its request no longer validates, its
// content address no longer matches, or the journal entry is missing
// the request altogether. The job is finalized failed with this error
// so the outcome is queryable instead of silently dropped.
type RecoveryError struct {
	JobID  string
	Reason string
}

func (e *RecoveryError) Error() string {
	return fmt.Sprintf("service: job %s unrecoverable after restart: %s", e.JobID, e.Reason)
}

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	Records   int // decodable journal records replayed
	Dropped   int // torn or corrupt lines skipped (expected after a crash)
	Recovered int // queued/running jobs re-enqueued for execution
	Failed    int // unrecoverable entries finalized failed (*RecoveryError)
	Restored  int // terminal jobs restored into the retention ring
}

// Recover replays the configured journal into the job table. Call it
// after NewManager and before Start (it assumes no concurrent use):
// terminal jobs are restored with their results, jobs that were queued
// or running when the process died are re-enqueued behind a "recovered"
// event — their content-addressed StudyKey means the re-run replays
// from the synthesis cache — and entries that no longer validate are
// finalized failed with a *RecoveryError. The journal is compacted to
// the reconstructed table before returning. With no journal configured
// Recover is a no-op.
func (m *Manager) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	jn := m.cfg.Journal
	if jn == nil {
		return stats, nil
	}
	recs, dropped, err := jn.replay()
	stats.Dropped = dropped
	if err != nil {
		return stats, err
	}
	stats.Records = len(recs)

	// Fold the log: last writer wins per job, submit order preserved.
	type folded struct {
		submit  journalRecord
		state   State
		errStr  string
		result  *StudyJSON
		final   time.Time
		evicted bool
	}
	var order []string
	byID := make(map[string]*folded)
	for _, rec := range recs {
		if rec.Op == "submit" {
			if _, ok := byID[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			byID[rec.ID] = &folded{submit: rec, state: StateQueued}
			continue
		}
		f, ok := byID[rec.ID]
		if !ok {
			stats.Dropped++ // start/final/evict without a submit
			continue
		}
		switch rec.Op {
		case "start":
			f.state = StateRunning
		case "final":
			f.state, f.errStr, f.result, f.final = rec.State, rec.Error, rec.Result, rec.Time
		case "evict":
			f.evicted = true
		default:
			stats.Dropped++
		}
	}

	type pending struct {
		job *Job
		key string
	}
	var pend []pending
	for _, id := range order {
		f := byID[id]
		if f.evicted {
			continue
		}
		// Keep IDs monotonic across restarts.
		var n int
		if _, err := fmt.Sscanf(id, "s%d-", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
		var req StudyRequest
		if f.submit.Req != nil {
			req = *f.submit.Req
		}
		owner := f.submit.Owner
		if owner == "" {
			owner = m.cfg.NodeID
		}
		job := &Job{
			ID: id, Key: f.submit.Key, Owner: owner,
			Req: req, Created: f.submit.Created,
			state: StateQueued,
			subs:  make(map[int]chan Event),
			done:  make(chan struct{}),
		}
		if f.submit.Req != nil {
			if opts, err := req.Options(); err == nil {
				job.StudyKey = core.StudyKey(opts)
			}
		}

		if f.state.Terminal() {
			job.state = f.state
			job.result = f.result
			job.finished = f.final
			if f.errStr != "" {
				job.err = errors.New(f.errStr)
			}
			job.events = []Event{{JobID: id, Kind: string(f.state), State: f.state, Result: f.result, Error: f.errStr}}
			close(job.done)
			m.mu.Lock()
			m.jobs[id] = job
			m.terminals = append(m.terminals, job)
			m.mu.Unlock()
			stats.Restored++
			continue
		}

		// Queued or running at crash time: validate the round trip
		// request → options → StudyKey before re-enqueueing.
		reason := ""
		key := f.submit.Key
		if f.submit.Req == nil {
			reason = "journal entry has no request"
		} else if opts, err := req.Options(); err != nil {
			reason = "request no longer validates: " + err.Error()
		} else if rekey := req.JobKey(opts); key == "" {
			key = rekey
			job.Key = rekey
		} else if rekey != key {
			reason = "study content address changed across restart"
		}
		m.mu.Lock()
		m.jobs[id] = job
		if reason == "" {
			if _, dup := m.byKey[key]; dup {
				reason = "another in-flight job holds the same study key"
			} else {
				m.byKey[key] = job
			}
		}
		m.mu.Unlock()
		if reason != "" {
			m.metrics.JobsRecoveryFailed.Add(1)
			stats.Failed++
			m.finalize(job, StateFailed, nil, &RecoveryError{JobID: id, Reason: reason})
			continue
		}
		pend = append(pend, pending{job, key})
	}

	// Every recovered job must fit the admission queue; grow it before
	// the executors start rather than fail jobs that already earned
	// their 202 in a previous life.
	if len(pend) > cap(m.queue) {
		m.queue = make(chan *Job, len(pend)+m.cfg.QueueCap)
	}
	for _, p := range pend {
		p.job.appendEvent("recovered", nil)
		m.queue <- p.job
		m.metrics.JobsRecovered.Add(1)
		stats.Recovered++
	}

	m.mu.Lock()
	m.evictLocked(time.Now())
	m.mu.Unlock()
	m.compactJournal()
	return stats, nil
}

// RetryAfter estimates how many seconds a 429'd client should wait for
// an admission slot: the EWMA of recent job service times, scaled by
// the queue depth ahead of it and the executor parallelism, clamped to
// [1, 60]. Before any job has finished it falls back to 1 second.
func (m *Manager) RetryAfter() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return computeRetryAfter(time.Duration(m.avgJobNS), len(m.queue), m.cfg.Executors)
}

func computeRetryAfter(avgJob time.Duration, depth, executors int) int {
	if avgJob <= 0 {
		return 1
	}
	if executors < 1 {
		executors = 1
	}
	est := avgJob * time.Duration(depth+1) / time.Duration(executors)
	secs := int(est / time.Second)
	if est%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Submit admits a study request. When an identical study (same content
// address) is already queued or running, the in-flight job is returned
// with deduped=true and no new execution starts — concurrent identical
// submissions share one run. A full queue returns ErrQueueFull; a
// draining manager returns ErrDraining.
func (m *Manager) Submit(req StudyRequest) (job *Job, deduped bool, err error) {
	req = m.normalize(req)
	opts, err := req.Options()
	if err != nil {
		return nil, false, err
	}
	key := req.JobKey(opts)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.JobsRejected.Add(1)
		return nil, false, ErrDraining
	}
	if inflight, ok := m.byKey[key]; ok {
		m.metrics.JobsDeduped.Add(1)
		return inflight, true, nil
	}
	m.nextID++
	job = &Job{
		ID:       fmt.Sprintf("s%06d-%s", m.nextID, key[:8]),
		Key:      key,
		StudyKey: core.StudyKey(opts),
		Owner:    m.cfg.NodeID,
		Req:      req,
		Created:  time.Now(),
		state:    StateQueued,
		subs:     make(map[int]chan Event),
		done:     make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.metrics.JobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.byKey[key] = job
	m.metrics.JobsAccepted.Add(1)
	job.appendEvent("queued", nil)
	// Journal inside the admission critical section: once the caller has
	// the 202, the job survives a crash. The fsync cost rides the
	// submission path, which is rare next to the work it admits.
	if m.cfg.Journal != nil {
		req := job.Req
		now := time.Now()
		m.cfg.Journal.append(journalRecord{
			Op: "submit", ID: job.ID, Time: now,
			Key: key, Req: &req, Created: job.Created,
			Owner: m.cfg.NodeID, Lease: m.leaseDeadline(now),
		})
	}
	return job, false, nil
}

// Resubmit re-enqueues a job under a caller-chosen ID — the cluster
// lease-handoff path: a ring successor whose dead peer's lease expired
// re-admits the job under the SAME id, so the client's handle keeps
// working across the takeover. Semantics mirror journal recovery: the
// job opens its event stream with "recovered" and counts toward the
// recovered metric. When the id is already known here, or another
// in-flight job holds the same content address, that job is returned
// with accepted=false — the takeover became a no-op or a dedup.
func (m *Manager) Resubmit(id string, req StudyRequest) (job *Job, accepted bool, err error) {
	req = m.normalize(req)
	opts, err := req.Options()
	if err != nil {
		return nil, false, err
	}
	key := req.JobKey(opts)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if j, ok := m.jobs[id]; ok {
		return j, false, nil
	}
	if inflight, ok := m.byKey[key]; ok {
		m.metrics.JobsDeduped.Add(1)
		return inflight, false, nil
	}
	job = &Job{
		ID:       id,
		Key:      key,
		StudyKey: core.StudyKey(opts),
		Owner:    m.cfg.NodeID,
		Req:      req,
		Created:  time.Now(),
		state:    StateQueued,
		subs:     make(map[int]chan Event),
		done:     make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.metrics.JobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	// Keep locally minted IDs monotonic past the adopted one so a later
	// Submit can never collide with it.
	var n int
	if _, serr := fmt.Sscanf(id, "s%d-", &n); serr == nil && n > m.nextID {
		m.nextID = n
	}
	m.jobs[id] = job
	m.byKey[key] = job
	m.metrics.JobsAccepted.Add(1)
	m.metrics.JobsRecovered.Add(1)
	job.appendEvent("recovered", nil)
	if m.cfg.Journal != nil {
		reqCopy := req
		now := time.Now()
		m.cfg.Journal.append(journalRecord{
			Op: "submit", ID: id, Time: now,
			Key: key, Req: &reqCopy, Created: job.Created,
			Owner: m.cfg.NodeID, Lease: m.leaseDeadline(now),
		})
	}
	return job, true, nil
}

// normalize applies the daemon's request defaults before admission.
// Idempotent: a request that already went through a peer's normalize
// passes unchanged, so cluster handoff cannot double-apply it.
func (m *Manager) normalize(req StudyRequest) StudyRequest {
	if m.cfg.DefaultRace && !req.Race {
		req.Race = true
	}
	return req
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status, newest first. A non-empty filter
// keeps only jobs in that state. Age-based retention is applied lazily
// here (and on scrape), so an idle daemon still sheds old terminals.
func (m *Manager) Jobs(filter State) []JobStatus {
	m.mu.Lock()
	m.evictLocked(time.Now())
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		if filter != "" && st.State != filter {
			continue
		}
		out = append(out, st)
	}
	// Newest first by ID (IDs are monotonic).
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].ID > out[i].ID {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a running
// one has its context cancelled and goes terminal within one evaluation
// granule. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return nil
	case j.state == StateQueued:
		j.mu.Unlock()
		m.finalize(j, StateCancelled, nil, context.Canceled)
		return nil
	default: // running
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
}

// Snapshot assembles the gauge set for a /metrics scrape.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	m.evictLocked(time.Now())
	byState := make(map[State]int)
	for _, j := range m.jobs {
		byState[j.State()]++
	}
	// State() takes j.mu while m.mu is held: safe, the lock order
	// everywhere is Manager.mu → Job.mu.
	snap := Snapshot{
		QueueDepth:    len(m.queue),
		QueueCapacity: cap(m.queue),
		JobsByState:   byState,
		Retained:      len(m.terminals),
		Draining:      m.draining,
	}
	m.mu.Unlock()
	if m.cfg.Journal != nil {
		snap.Journal = m.cfg.Journal.Stats()
	}
	snap.PoolQueued = m.pool.Queued()
	snap.PoolInFlight = m.pool.InFlight()
	snap.PoolWorkers = m.pool.Workers()
	if m.cfg.Cache != nil {
		cs := m.cfg.Cache.Stats()
		snap.CacheHits = cs.Hits
		snap.CacheMisses = cs.Misses
	}
	snap.Kernel = sim.ReadKernelStats()
	return snap
}

// Draining reports whether the manager has begun shutdown.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Ready reports whether the manager can accept work: Start has run
// (journal replay, if configured, happens before Start) and no drain is
// in progress. /readyz serves this.
func (m *Manager) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started && !m.draining
}

// NodeID returns the configured cluster identity ("" outside cluster
// mode).
func (m *Manager) NodeID() string { return m.cfg.NodeID }

// leaseDeadline computes the journal/replica lease for a record stamped
// now; nil when lease bookkeeping is off.
func (m *Manager) leaseDeadline(now time.Time) *time.Time {
	if m.cfg.Lease <= 0 {
		return nil
	}
	t := now.Add(m.cfg.Lease)
	return &t
}

// runJob executes one study on an executor goroutine.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(m.loopCtx)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(m.loopCtx, m.cfg.JobTimeout)
	}
	defer cancel()
	if !job.begin(cancel) {
		return // cancelled while queued
	}
	job.appendEvent("started", nil)
	if m.cfg.Journal != nil {
		// Losing this record to a crash is harmless: a job journaled as
		// queued is re-enqueued by replay exactly like a running one.
		now := time.Now()
		m.cfg.Journal.append(journalRecord{
			Op: "start", ID: job.ID, Time: now,
			Owner: m.cfg.NodeID, Lease: m.leaseDeadline(now),
		})
	}

	opts, err := job.Req.Options()
	if err != nil {
		// Submit validated already; a failure here is a programming error.
		m.finalize(job, StateFailed, nil, err)
		return
	}
	opts.Pool = m.pool
	opts.Synth.Cache = m.cfg.Cache
	opts.Synth.EvalHook = m.cfg.EvalHook
	opts.Progress = func(ev core.ProgressEvent) {
		if ev.Kind == "race_rung" {
			// The event's Pruned is cumulative; the per-rung cut is
			// entrants minus promotions (the final rung promotes nobody
			// and prunes nobody).
			pruned := 0
			if ev.Promoted > 0 {
				pruned = ev.Candidates - ev.Promoted
			}
			m.metrics.ObserveRaceRung(ev.Promoted, pruned)
		}
		p := ev
		job.appendEvent("progress", func(e *Event) { e.Progress = &p })
	}
	opts.Synth.Progress = func(p synth.Progress) {
		m.metrics.ObserveEval(p.Elapsed)
		job.mu.Lock()
		job.evals++
		job.mu.Unlock()
	}

	start := time.Now()
	study, err := core.Optimize(ctx, opts)
	var result *StudyJSON
	if err == nil {
		m.metrics.ObserveSurrogate(study.SurrogateProposals, study.SurrogateAccepted)
		if job.Req.Yield() {
			result, err = m.runYield(ctx, job, study, opts, start)
		} else {
			result = EncodeStudy(study, opts.Mode, time.Since(start))
		}
	}
	switch {
	case err == nil:
		m.finalize(job, StateDone, result, nil)
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		m.finalize(job, StateCancelled, nil, err)
	default:
		m.finalize(job, StateFailed, nil, err)
	}
}

// runYield extends a completed synthesis with the Monte-Carlo sign-off
// lane: map the best design onto its error model, sample the draws on
// the shared pool, and fold the distributions into the study result.
// Draw seeds derive from the synthesis StudyKey (not the yield JobKey),
// so the same design re-analyzed under a different draw count replays
// the same leading realizations.
func (m *Manager) runYield(ctx context.Context, job *Job, study *core.Study, opts core.Options, start time.Time) (*StudyJSON, error) {
	spec := job.Req.YieldSpec()
	model, err := yield.FromStudy(study, opts, spec)
	if err != nil {
		return nil, err
	}
	yres, err := yield.Run(ctx, m.pool, model, core.StudyKey(opts), spec, yield.Hooks{
		Progress: func(p yield.Progress) {
			ev := core.ProgressEvent{Kind: "yield_chunk", Done: p.Done, Draws: p.Draws, Pass: p.Pass}
			job.appendEvent("progress", func(e *Event) { e.Progress = &ev })
		},
		Draw: func(_ int, d yield.Draw) {
			m.metrics.ObserveYieldDraw(d.ENOB, d.Pass)
		},
	})
	if err != nil {
		return nil, err
	}
	out := EncodeStudy(study, opts.Mode, time.Since(start))
	out.Mode = "yield"
	out.Yield = yres
	return out, nil
}

// finalize moves a job to a terminal state exactly once: records the
// outcome, emits the terminal event, closes subscriber channels and the
// done channel, releases the single-flight key, and bumps the counters.
func (m *Manager) finalize(job *Job, state State, result *StudyJSON, err error) {
	// Manager.mu wraps the whole transition (lock order Manager.mu →
	// Job.mu) so the terminal flip, the single-flight release, and the
	// retention-ring insert are one atomic step: anyone who observes the
	// job as done also observes a correctly bounded job table.
	m.mu.Lock()
	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		m.mu.Unlock()
		return
	}
	job.state = state
	job.finished = time.Now()
	job.result = result
	job.err = err
	// The terminal event, the subscriber close, and the state flip are
	// one critical section: a Subscribe on the other side of the lock
	// either sees the complete event log (terminal line included) or
	// gets the terminal event on its live channel before the close.
	ev := Event{Seq: len(job.events), JobID: job.ID, Kind: string(state), State: state, Result: result}
	if err != nil {
		ev.Error = err.Error()
	}
	job.events = append(job.events, ev)
	for id, ch := range job.subs {
		select {
		case ch <- ev:
		default:
		}
		delete(job.subs, id)
		close(ch)
	}
	close(job.done)
	started, finished := job.started, job.finished
	job.mu.Unlock()

	if m.byKey[job.Key] == job {
		delete(m.byKey, job.Key)
	}
	// Terminal jobs enter the retention ring instead of living in
	// m.jobs forever; eviction below is what keeps the daemon's memory
	// bounded under sustained traffic.
	m.terminals = append(m.terminals, job)
	if !started.IsZero() {
		// EWMA of job service time, the drain-rate estimate behind
		// Retry-After on 429.
		d := float64(finished.Sub(started))
		if m.avgJobNS == 0 {
			m.avgJobNS = d
		} else {
			m.avgJobNS += 0.3 * (d - m.avgJobNS)
		}
	}
	m.evictLocked(time.Now())
	m.mu.Unlock()

	// Journal after the in-memory flip: a crash in the gap replays the
	// job as queued/running and re-runs it, which the content-addressed
	// synthesis cache makes nearly free — at-least-once, never lost.
	if m.cfg.Journal != nil {
		rec := journalRecord{Op: "final", ID: job.ID, Time: time.Now(), State: state, Result: result}
		if err != nil {
			rec.Error = err.Error()
		}
		m.cfg.Journal.append(rec)
	}

	switch state {
	case StateDone:
		m.metrics.JobsDone.Add(1)
	case StateFailed:
		m.metrics.JobsFailed.Add(1)
	case StateCancelled:
		m.metrics.JobsCancelled.Add(1)
	}

	if j := m.cfg.Journal; j != nil && j.recordsSinceCompact() > journalCompactEvery {
		m.compactJournal()
	}
}

// evictLocked (caller holds m.mu) trims the terminal-job ring to the
// size and age bounds, removing evicted jobs from the job table — the
// fix for the unbounded m.jobs growth the serving layer shipped with.
func (m *Manager) evictLocked(now time.Time) {
	for len(m.terminals) > 0 {
		oldest := m.terminals[0]
		over := len(m.terminals) > m.cfg.Retain
		if !over && m.cfg.RetainAge > 0 {
			oldest.mu.Lock()
			over = now.Sub(oldest.finished) > m.cfg.RetainAge
			oldest.mu.Unlock()
		}
		if !over {
			return
		}
		m.terminals[0] = nil
		m.terminals = m.terminals[1:]
		delete(m.jobs, oldest.ID)
		m.metrics.JobsEvicted.Add(1)
		if m.cfg.Journal != nil {
			m.cfg.Journal.append(journalRecord{Op: "evict", ID: oldest.ID, Time: now})
		}
	}
}

// compactJournal rewrites the WAL as one submit record per live job
// plus a final record for the retained terminals. Replay of the
// compacted file reconstructs exactly the current job table.
func (m *Manager) compactJournal() {
	m.mu.Lock()
	recs := make([]journalRecord, 0, 2*len(m.jobs))
	for _, j := range m.jobs {
		j.mu.Lock()
		req := j.Req
		recs = append(recs, journalRecord{
			Op: "submit", ID: j.ID, Time: j.Created,
			Key: j.Key, Req: &req, Created: j.Created,
			Owner: j.Owner,
		})
		if j.state.Terminal() {
			rec := journalRecord{Op: "final", ID: j.ID, Time: j.finished, State: j.state, Result: j.result}
			if j.err != nil {
				rec.Error = j.err.Error()
			}
			recs = append(recs, rec)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	_ = m.cfg.Journal.compact(recs)
}

// Drain shuts the manager down: new submissions are rejected, queued
// jobs are cancelled immediately, and running jobs get up to timeout to
// finish before their contexts are cancelled. Drain blocks until every
// executor goroutine has exited, so a clean return means no engine
// goroutines remain.
func (m *Manager) Drain(timeout time.Duration) {
	m.mu.Lock()
	m.draining = true
	var queued, running []*Job
	for _, j := range m.jobs {
		switch j.State() {
		case StateQueued:
			queued = append(queued, j)
		case StateRunning:
			running = append(running, j)
		}
	}
	m.mu.Unlock()

	// Queued jobs are rejected immediately: they have not started, so
	// there is nothing worth waiting for.
	for _, j := range queued {
		// Cancel handles the race where an executor began the job after
		// the snapshot above: it cancels the running context instead.
		_ = m.Cancel(j.ID)
	}

	// In-flight jobs get the grace window, then cancellation. The timer
	// channel delivers once, so remember expiry instead of re-receiving.
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	expired := false
	for _, j := range running {
		if !expired {
			select {
			case <-j.Done():
				continue
			case <-deadline.C:
				expired = true
			}
		}
		_ = m.Cancel(j.ID)
		<-j.Done() // cancellation lands within one evaluation granule
	}
	// A job that slipped from queued to running between the snapshot and
	// Cancel above is already cancelled (context), so Done closes fast;
	// sweep anything left to be safe.
	m.mu.Lock()
	var rest []*Job
	for _, j := range m.jobs {
		if !j.State().Terminal() && j.State() == StateRunning {
			rest = append(rest, j)
		}
	}
	m.mu.Unlock()
	for _, j := range rest {
		_ = m.Cancel(j.ID)
		<-j.Done()
	}

	m.stopLoop()
	m.wg.Wait()

	// Anything still sitting in the queue channel was finalized as
	// cancelled above and is skipped by begin(); drop the references.
	for {
		select {
		case <-m.queue:
		default:
			return
		}
	}
}
