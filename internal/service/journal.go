// Durability layer for the job manager: an append-only JSON-lines
// journal (write-ahead log) under the daemon's -state-dir, fsync'd on
// every submit, queued→running transition, finalize, and eviction, so a
// crash never loses an admitted study. On startup the manager replays
// the journal (Manager.Recover): terminal jobs are restored into the
// retention ring, jobs that were queued or running at crash time are
// re-enqueued with a "recovered" event — their content-addressed
// core.StudyKey means the re-run replays from the synthesis cache, so
// recovery costs roughly one cache sweep — and entries that no longer
// validate are finalized failed with a typed *RecoveryError.
//
// The journal is compacted (rewritten as one submit record plus, for
// terminal jobs, one final record per live job) on startup after replay
// and whenever the record count since the last compaction passes
// journalCompactEvery, so the file stays proportional to the retained
// job set rather than to total traffic. Compaction uses the same
// write-sync-rename-syncdir protocol as the synthesis disk cache:
// readers (the next boot) see either the old journal or the new one,
// never a torn file.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalRecord is one line of the WAL. Op distinguishes the four
// events a job's durable life consists of:
//
//	submit  job admitted (carries the request, key, and creation time)
//	start   job moved queued → running
//	final   job reached a terminal state (carries state, error, result)
//	evict   terminal job aged or rotated out of the retention ring
//
// Replay folds records by ID and keeps the last-writer state, so
// duplicate records (possible around compaction) are harmless.
type journalRecord struct {
	Op      string        `json:"op"`
	ID      string        `json:"id"`
	Time    time.Time     `json:"t"`
	Key     string        `json:"key,omitempty"`
	Req     *StudyRequest `json:"req,omitempty"`
	Created time.Time     `json:"created,omitempty"`
	State   State         `json:"state,omitempty"`
	Error   string        `json:"error,omitempty"`
	Result  *StudyJSON    `json:"result,omitempty"`
	// Cluster mode: the node that admitted the job and the wall-clock
	// deadline by which it must renew its claim. A ring successor that
	// holds a replica of this record re-enqueues the job under the same
	// ID once the lease expires and the owner stops heartbeating.
	Owner string     `json:"owner,omitempty"`
	Lease *time.Time `json:"lease,omitempty"`
}

// JournalStats is the point-in-time shape of the WAL for /metrics.
type JournalStats struct {
	Records     int   // records appended since open or last compaction
	Bytes       int64 // current file size
	Compactions int64 // rewrites since open
	Errors      int64 // append/fsync failures (durability degraded)
}

// Journal is the append-only job WAL. Safe for concurrent use; every
// append is fsync'd before returning so an acknowledged submission
// survives a crash.
type Journal struct {
	mu          sync.Mutex
	dir         string
	path        string
	f           *os.File
	records     int
	compactions int64
	errors      int64
}

// journalFile is the WAL's name inside -state-dir.
const journalFile = "journal.jsonl"

// journalCompactEvery bounds how many records accumulate between
// compactions. With ~4 records per job lifetime (submit, start, final,
// evict) this rewrites the file roughly every 256 completed jobs.
const journalCompactEvery = 1024

// OpenJournal opens (creating if missing) the job journal under dir.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &Journal{dir: dir, path: path, f: f}, nil
}

// Close releases the append handle. The journal stays valid on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Stats snapshots the WAL's size and health counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{Records: j.records, Compactions: j.compactions, Errors: j.errors}
	if fi, err := os.Stat(j.path); err == nil {
		st.Bytes = fi.Size()
	}
	return st
}

// append writes one record and fsyncs. Failures are counted rather than
// propagated: the journal is a durability layer, not an admission gate,
// and a full disk must degrade to lost-on-crash, not to a dead daemon.
func (j *Journal) append(rec journalRecord) {
	blob, err := json.Marshal(rec)
	if err != nil {
		// Value fields only; Marshal cannot fail. Loud beats silent.
		panic(fmt.Sprintf("service: journal marshal: %v", err))
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.errors++
		return
	}
	if _, err := j.f.Write(blob); err != nil {
		j.errors++
		return
	}
	if err := j.f.Sync(); err != nil {
		j.errors++
		return
	}
	j.records++
}

// recordsSinceCompact reports appends since the last rewrite.
func (j *Journal) recordsSinceCompact() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// replay reads every decodable record in file order. A torn or corrupt
// line — the expected artifact of a crash mid-append — is skipped and
// counted, never fatal: the WAL's job is to save what it can.
func (j *Journal) replay() (recs []journalRecord, dropped int, err error) {
	blob, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: read journal: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(blob))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" || rec.Op == "" {
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, dropped, fmt.Errorf("service: scan journal: %w", err)
	}
	return recs, dropped, nil
}

// compact atomically rewrites the journal to exactly recs and swaps the
// append handle to the new file. Records appended concurrently between
// the caller's snapshot and this rewrite can be lost; replay semantics
// make that safe — a lost "start" replays as queued (re-enqueued
// either way) and a lost "final" re-runs a study that the synthesis
// cache answers for free.
func (j *Journal) compact(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp, err := os.CreateTemp(j.dir, ".journal.tmp*")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		blob, err := json.Marshal(rec)
		if err != nil {
			panic(fmt.Sprintf("service: journal marshal: %v", err))
		}
		w.Write(blob)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// The rename itself must survive a crash: fsync the directory, the
	// same durability hole the synthesis cache plugs (see
	// synth.Cache.storeDisk).
	if err := syncDir(j.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.records = 0
	j.compactions++
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
