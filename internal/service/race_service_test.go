package service_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pipesyn/internal/service"
)

// tinyRace is an equation-mode racing request small enough for CI.
func tinyRace(bits int) service.StudyRequest {
	return service.StudyRequest{
		Bits: bits, Mode: "equation", Evals: 60, Pattern: 40, Seed: 1, Race: true,
	}
}

// TestServiceRaceLifecycle drives one racing study through the HTTP
// surface end to end: the result carries the racing scorecard and pruned
// flags, the event stream carries one race_rung line per rung, and the
// scrape carries the adcsynd_race_* counters.
func TestServiceRaceLifecycle(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4})
	man.Start()
	defer man.Drain(time.Second)
	ts := httptest.NewServer(service.NewServer(man))
	defer ts.Close()

	resp, sub := postStudy(t, ts, tinyRace(12))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	st := waitState(t, ts, sub.ID, service.StateDone)
	res := st.Result
	if res == nil || res.Race == nil {
		t.Fatalf("racing job finished without a race scorecard: %+v", res)
	}
	if res.Race.Rungs != 2 || res.Race.Pruned == 0 {
		t.Fatalf("implausible race scorecard: %+v", res.Race)
	}
	if res.Best.Pruned {
		t.Fatal("best candidate is pruned")
	}
	pruned := 0
	for _, c := range res.Candidates {
		if c.Pruned {
			pruned++
		}
	}
	if pruned != res.Race.Pruned {
		t.Fatalf("%d candidates flagged pruned, scorecard says %d", pruned, res.Race.Pruned)
	}

	// The event stream replayed one race_rung line per rung.
	evResp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	rungs := 0
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "progress" && ev.Progress != nil && ev.Progress.Kind == "race_rung" {
			rungs++
			if ev.Progress.Rung != rungs || ev.Progress.Candidates == 0 {
				t.Fatalf("bad race_rung event %+v", ev.Progress)
			}
		}
	}
	if rungs != res.Race.Rungs {
		t.Fatalf("saw %d race_rung events, scorecard says %d rungs", rungs, res.Race.Rungs)
	}

	// The scrape carries the racing counters, fed from the same events.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	blob, _ := io.ReadAll(mresp.Body)
	text := string(blob)
	for _, want := range []string{
		"adcsynd_race_rungs_total 2",
		"adcsynd_race_promotions_total",
		"adcsynd_race_prunes_total",
		`adcsynd_surrogate_proposals_total{result="proposed"}`,
		`adcsynd_surrogate_proposals_total{result="accepted"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if man.Metrics().RaceRungs() != 2 {
		t.Fatalf("metrics saw %d rungs, want 2", man.Metrics().RaceRungs())
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// The racing determinism contract holds through the whole serving stack:
// the same racing request answered by daemons with different worker
// counts produces identical studies, pruned flags included.
func TestServiceRaceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *service.StudyJSON {
		man := service.NewManager(service.Config{Workers: workers, QueueCap: 4})
		man.Start()
		defer man.Drain(time.Second)
		ts := httptest.NewServer(service.NewServer(man))
		defer ts.Close()
		_, sub := postStudy(t, ts, tinyRace(12))
		return waitState(t, ts, sub.ID, service.StateDone).Result
	}
	a, b := run(1), run(4)
	if a == nil || b == nil || a.Race == nil || b.Race == nil {
		t.Fatal("missing racing results")
	}
	a.ElapsedSeconds, b.ElapsedSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("racing study differs across worker counts:\n1 worker: %+v\n4 workers: %+v", a, b)
	}
}

// TestManagerDefaultRace: a daemon running with -race-default admits a
// plain request as a racing study — under the racing content address, so
// dedup against an explicitly raced submission still works.
func TestManagerDefaultRace(t *testing.T) {
	man := service.NewManager(service.Config{Workers: 2, QueueCap: 4, DefaultRace: true})
	man.Start()
	defer man.Drain(time.Second)
	plain := service.StudyRequest{Bits: 12, Mode: "equation", Evals: 60, Pattern: 40, Seed: 1}
	job, deduped, err := man.Submit(plain)
	if err != nil || deduped {
		t.Fatalf("submit: deduped=%v err=%v", deduped, err)
	}
	explicit := plain
	explicit.Race = true
	eopts, err := explicit.Options()
	if err != nil {
		t.Fatal(err)
	}
	if job.Key != explicit.JobKey(eopts) {
		t.Fatal("normalized job key differs from an explicitly raced request")
	}
	<-job.Done()
	st := job.Status()
	if !st.Request.Race {
		t.Fatal("journaled request was not normalized to race")
	}
	if st.Result == nil || st.Result.Race == nil || st.Result.Race.Pruned == 0 {
		t.Fatalf("defaulted racing study carries no race scorecard: %+v", st.Result)
	}
}

func TestRaceRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  service.StudyRequest
	}{
		{"rungs without race", service.StudyRequest{Bits: 10, RaceRungs: 3}},
		{"eta without race", service.StudyRequest{Bits: 10, RaceEta: 4}},
		{"rungs over cap", service.StudyRequest{Bits: 10, Race: true, RaceRungs: 7}},
		{"eta over cap", service.StudyRequest{Bits: 10, Race: true, RaceEta: 17}},
		{"negative rungs", service.StudyRequest{Bits: 10, Race: true, RaceRungs: -1}},
	}
	for _, tc := range cases {
		if _, err := tc.req.Options(); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		}
	}

	// A racing study and the uniform study of the same design are
	// different jobs; the dormant shape with Race off would not be.
	raced := service.StudyRequest{Bits: 10, Seed: 3, Race: true}
	plain := service.StudyRequest{Bits: 10, Seed: 3}
	ropts, err := raced.Options()
	if err != nil {
		t.Fatal(err)
	}
	popts, err := plain.Options()
	if err != nil {
		t.Fatal(err)
	}
	if raced.JobKey(ropts) == plain.JobKey(popts) {
		t.Fatal("racing job key must differ from the uniform study key")
	}
	surro := plain
	surro.Surrogate = true
	sopts, err := surro.Options()
	if err != nil {
		t.Fatal(err)
	}
	if surro.JobKey(sopts) == plain.JobKey(popts) {
		t.Fatal("surrogate must shape the job key")
	}
}
