package sched

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pipesyn/internal/testutil"
)

// TestForEachCancelStopsDispatch cancels mid-run: indices not yet
// dispatched must never start, the call must return ctx.Err(), and no
// helper goroutine may outlive the call.
func TestForEachCancelStopsDispatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(4)
	var started atomic.Int32
	err := p.ForEach(ctx, 1000, func(i int) {
		if started.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ForEach returned %v, want context.Canceled", err)
	}
	// The workers observe the cancellation before pulling the next index,
	// so at most one in-flight task per worker can complete after it.
	if n := started.Load(); n > 5+4 {
		t.Fatalf("%d tasks started after cancellation point", n)
	}
}

// TestForEachPreCancelled never runs a single task.
func TestForEachPreCancelled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := NewPool(2).ForEach(ctx, 10, func(int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("task ran under a pre-cancelled context")
	}
}

// TestForEachPanicFaultIsolated proves a panicking task surfaces as a
// *PanicError instead of crashing the process, and stops the fan-out.
func TestForEachPanicFaultIsolated(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		err := p.ForEach(context.Background(), 50, func(i int) {
			if i == 3 {
				panic("injected fault")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "injected fault" || !strings.Contains(pe.Label, "3") {
			t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError carries no stack")
		}
	}
}

// TestRunCancelDrainsDeterministically cancels a DAG mid-flight: Run
// must return promptly with ctx.Err(), never start post-cancel nodes,
// and still account for every node (no wedged drain, no leaks).
func TestRunCancelDrainsDeterministically(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const n = 100
		nodes := make([]Node, n)
		for i := range nodes {
			i := i
			var deps []int
			if i > 0 {
				deps = []int{i - 1} // a chain: cancellation hits mid-walk
			}
			nodes[i] = Node{Deps: deps, Run: func(context.Context) error {
				if ran.Add(1) == 10 {
					cancel()
				}
				return nil
			}}
		}
		start := time.Now()
		err := Run(ctx, NewPool(workers), nodes)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > 10+int32(workers) {
			t.Fatalf("workers=%d: %d nodes ran after cancellation", workers, got)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancelled Run took %s to drain", elapsed)
		}
		cancel()
	}
}

// TestRunPanicFaultNamesNode: a panicking node becomes an error naming
// the node via its Label, dependents never run, and the DAG drains.
func TestRunPanicFaultNamesNode(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, workers := range []int{1, 4} {
		depRan := false
		nodes := []Node{
			{Label: "healthy", Run: func(context.Context) error { return nil }},
			{Label: "design point stage 3 (2-bit)", Run: func(context.Context) error {
				panic("evaluator blew up")
			}},
			{Deps: []int{1}, Label: "dependent", Run: func(context.Context) error {
				depRan = true
				return nil
			}},
		}
		err := Run(context.Background(), NewPool(workers), nodes)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Label != "design point stage 3 (2-bit)" {
			t.Fatalf("workers=%d: panic labelled %q", workers, pe.Label)
		}
		if depRan {
			t.Fatal("dependent of a panicked node ran")
		}
	}
}

// TestRunPreCancelled returns ctx.Err() without running any node.
func TestRunPreCancelled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nodes := []Node{{Run: func(context.Context) error {
		t.Error("node ran under a pre-cancelled context")
		return nil
	}}}
	if err := Run(ctx, NewPool(2), nodes); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunDeadlineLeak exercises the timeout form of cancellation under
// stalled nodes: every node blocks until the deadline, Run must return
// DeadlineExceeded and release all helper goroutines.
func TestRunDeadlineLeak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = Node{Run: func(ctx context.Context) error {
			<-ctx.Done() // a stalled evaluation that honors cancellation
			return ctx.Err()
		}}
	}
	if err := Run(ctx, NewPool(4), nodes); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
