package sched

import (
	"context"
	"sync"
	"testing"
)

// TestPoolGaugesForEach checks the queued/inflight gauges the service
// /metrics endpoint scrapes: mid-flight they reflect the stalled tasks,
// and they settle back to zero when the work completes.
func TestPoolGaugesForEach(t *testing.T) {
	p := NewPool(3)
	if p.Queued() != 0 || p.InFlight() != 0 {
		t.Fatalf("idle pool: queued %d inflight %d", p.Queued(), p.InFlight())
	}
	const n = 8
	gate := make(chan struct{})
	running := make(chan struct{}, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.ForEach(context.Background(), n, func(i int) {
			running <- struct{}{}
			<-gate
		})
	}()
	// All 3 workers (2 helpers + caller) stall inside a task.
	for i := 0; i < 3; i++ {
		<-running
	}
	if got := p.InFlight(); got != 3 {
		t.Errorf("inflight %d, want 3", got)
	}
	if got := p.Queued(); got != n-3 {
		t.Errorf("queued %d, want %d", got, n-3)
	}
	close(gate)
	wg.Wait()
	if p.Queued() != 0 || p.InFlight() != 0 {
		t.Fatalf("after ForEach: queued %d inflight %d", p.Queued(), p.InFlight())
	}
}

// TestPoolGaugesRunSettleOnCancel verifies the gauges also settle when a
// DAG run drains nodes without executing them (cancellation path).
func TestPoolGaugesRunSettleOnCancel(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every node drains unrun
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = Node{Run: func(ctx context.Context) error { return nil }}
	}
	if err := Run(ctx, p, nodes); err == nil {
		t.Fatal("cancelled Run returned nil")
	}
	if p.Queued() != 0 || p.InFlight() != 0 {
		t.Fatalf("after cancelled Run: queued %d inflight %d", p.Queued(), p.InFlight())
	}
}
