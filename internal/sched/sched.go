// Package sched provides the shared concurrency substrate for the
// synthesis engine: a bounded worker budget (Pool) and a deterministic
// DAG runner (Run) for design points whose warm-start sources must
// complete before they dispatch.
//
// The paper's flow is embarrassingly parallel almost everywhere — the
// ~20 exact MDAC design points of a study, the independent restarts of
// one synthesis, and the per-resolution studies of a sweep are all
// independent evaluator-bound work — except for retargeting, where a
// design point prefers to seed from a neighbouring completed result.
// sched models that preference as an explicit dependency edge so the
// parallel schedule sees exactly the warm sources the serial schedule
// would, which is what makes the parallel study bit-identical to the
// serial one.
//
// Deadlock freedom under nesting (a sweep running studies, each study
// running design points, each design point running restarts, all on one
// Pool) comes from a simple rule: no caller ever blocks waiting for a
// token. A worker slot is acquired with TryAcquire only, and the calling
// goroutine always executes work itself, so forward progress never
// depends on a token being released.
//
// sched is also the engine's fault boundary. Both ForEach and Run accept
// a context: cancellation stops new work from dispatching (in-flight
// tasks finish their current unit) and surfaces as ctx.Err(). A panic in
// any task — whether it runs on a helper goroutine or inline on the
// caller — is recovered and converted into a *PanicError instead of
// crashing the process, and the DAG keeps draining deterministically so
// every started node is accounted for before Run returns.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error at the sched
// fault boundary. Label names the unit of work that panicked (the DAG
// node's Label, or the task index), Value is the recovered panic value,
// and Stack is the panicking goroutine's stack trace.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: panic in %s: %v", e.Label, e.Value)
}

// Pool is a shared bounded budget of extra worker goroutines. A Pool
// with N workers allows at most N-1 spawned helpers: the calling
// goroutine is always the N-th worker, which is what makes nested use
// (study → design point → restarts on one Pool) deadlock-free.
type Pool struct {
	workers int
	tokens  chan struct{}

	// Load gauges for operational visibility (the adcsynd /metrics
	// endpoint scrapes them): queued counts tasks admitted to a ForEach
	// or Run that have not started executing yet, inflight counts tasks
	// currently executing. Both are plain atomics so the hot dispatch
	// path pays two adds per task.
	queued   atomic.Int64
	inflight atomic.Int64
}

// NewPool sizes a budget of `workers` concurrent executors. workers <= 0
// defaults to GOMAXPROCS; workers == 1 makes every ForEach and Run fully
// serial on the calling goroutine, in deterministic index order.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers reports the configured concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Queued reports how many admitted tasks across all active ForEach and
// Run calls have not started executing yet. It is a point-in-time gauge
// for monitoring, not a synchronization primitive.
func (p *Pool) Queued() int64 { return p.queued.Load() }

// InFlight reports how many tasks are executing right now across all
// active ForEach and Run calls on this pool.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// TryAcquire claims a helper slot without blocking. Callers that get a
// slot must Release it when the helper goroutine exits.
func (p *Pool) TryAcquire() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (p *Pool) Release() { <-p.tokens }

// ForEach runs f(i) for every i in [0, n), spreading the calls over the
// calling goroutine plus as many helpers as the pool can spare right
// now. With a 1-worker pool the calls happen inline in index order.
//
// Cancelling ctx stops further indices from dispatching — tasks already
// running finish — and ForEach returns ctx.Err(). A panicking task does
// not crash the process: the panic is recovered, dispatch stops, and the
// lowest-index *PanicError is returned. Either way the caller must treat
// its per-index outputs as partial: an index may never have run.
func (p *Pool) ForEach(ctx context.Context, n int, f func(int)) error {
	if n <= 0 {
		return nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var claimed atomic.Int64
	p.queued.Add(int64(n))
	// Indices never claimed (cancellation, panic abort) leave the queued
	// gauge high; settle the residue once every worker has stopped.
	defer func() { p.queued.Add(claimed.Load() - int64(n)) }()
	var mu sync.Mutex
	panics := make(map[int]*PanicError)
	runOne := func(i int) {
		p.inflight.Add(1)
		defer p.inflight.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				panics[i] = &PanicError{
					Label: fmt.Sprintf("task %d", i),
					Value: r,
					Stack: debug.Stack(),
				}
				mu.Unlock()
				aborted.Store(true)
			}
		}()
		f(i)
	}
	work := func() {
		for !aborted.Load() && ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			claimed.Add(1)
			p.queued.Add(-1)
			runOne(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 1; spawned < n && p.TryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Release()
			work()
		}()
	}
	work()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Lowest task index wins so the reported fault is deterministic.
	var first *PanicError
	firstIdx := -1
	for i, pe := range panics {
		if first == nil || i < firstIdx {
			first, firstIdx = pe, i
		}
	}
	if first != nil {
		return first
	}
	return nil
}

// Node is one unit of DAG work. Deps lists the indices of nodes that
// must complete before this one runs — for a retargeting study, the
// design points this node would consider as warm-start seeds. Label
// names the node in fault reports (a panicking node surfaces as a
// *PanicError carrying it); empty labels fall back to the node index.
type Node struct {
	Deps  []int
	Label string
	Run   func(ctx context.Context) error
}

// Run executes the nodes respecting dependency edges, with at most
// pool.Workers() nodes in flight. Ready nodes dispatch lowest-index
// first, so a 1-worker pool reproduces the serial schedule exactly.
//
// Once any node fails, no further nodes start (in-flight ones finish);
// Run returns the error of the lowest-index failed node, which is
// deterministic regardless of worker count. Cancelling ctx likewise
// stops new nodes from starting: the remaining nodes drain unrun with
// ctx.Err() recorded, so a cancelled Run always reports an error that
// satisfies errors.Is(err, ctx.Err()). A panicking node is isolated at
// this boundary — recovered into a *PanicError naming the node — and
// never takes down the process or wedges the drain.
func Run(ctx context.Context, pool *Pool, nodes []Node) error {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, nd := range nodes {
		for _, d := range nd.Deps {
			if d < 0 || d >= n {
				return fmt.Errorf("sched: node %d depends on out-of-range node %d", i, d)
			}
			if d >= i {
				// Edges must point backwards: warm sources precede their
				// consumers in sorted key order, and this rules out cycles.
				return fmt.Errorf("sched: node %d depends on later node %d", i, d)
			}
			indeg[i]++
			dependents[d] = append(dependents[d], i)
		}
	}

	ready := make([]bool, n)
	readyCount := 0
	for i := range nodes {
		if indeg[i] == 0 {
			ready[i] = true
			readyCount++
		}
	}
	popMin := func() int {
		for i := range ready {
			if ready[i] {
				ready[i] = false
				readyCount--
				return i
			}
		}
		return -1
	}

	pool.queued.Add(int64(n))
	// Every node leaves the ready set exactly once — run or drained — so
	// the gauge settles to its prior value when Run returns.

	// exec runs one node behind the panic fault boundary.
	exec := func(i int) (err error) {
		pool.inflight.Add(1)
		defer pool.inflight.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				label := nodes[i].Label
				if label == "" {
					label = fmt.Sprintf("node %d", i)
				}
				err = &PanicError{Label: label, Value: r, Stack: debug.Stack()}
			}
		}()
		return nodes[i].Run(ctx)
	}

	errs := make([]error, n)
	done := make(chan int, n) // buffered: workers never block reporting
	completed := 0
	failed := false
	finish := func(i int) {
		completed++
		if errs[i] != nil {
			failed = true
		}
		for _, d := range dependents[i] {
			indeg[d]--
			if indeg[d] == 0 {
				ready[d] = true
				readyCount++
			}
		}
	}

	// Every edge points backwards (d < i), so the graph is acyclic and the
	// dispatcher always finds either a ready node or an in-flight one
	// until all n have finished.
	inFlight := 0
	for completed < n {
		cancelled := ctx.Err() != nil
		// Spawn helpers for ready nodes while the pool has spare slots.
		for readyCount > 0 && !failed && !cancelled && pool.TryAcquire() {
			i := popMin()
			pool.queued.Add(-1)
			inFlight++
			go func(i int) {
				defer pool.Release()
				errs[i] = exec(i)
				done <- i
			}(i)
		}
		if readyCount > 0 {
			// No spare slot (or aborting): the dispatcher works too.
			// After a failure this branch drains the remaining nodes
			// without running them; after a cancellation the drained
			// nodes record ctx.Err() so the cause is never lost.
			i := popMin()
			pool.queued.Add(-1)
			switch {
			case !failed && !cancelled:
				errs[i] = exec(i)
			case cancelled:
				errs[i] = ctx.Err()
			}
			finish(i)
			continue
		}
		i := <-done
		inFlight--
		finish(i)
	}
	return firstErr(errs)
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
