// Package sched provides the shared concurrency substrate for the
// synthesis engine: a bounded worker budget (Pool) and a deterministic
// DAG runner (Run) for design points whose warm-start sources must
// complete before they dispatch.
//
// The paper's flow is embarrassingly parallel almost everywhere — the
// ~20 exact MDAC design points of a study, the independent restarts of
// one synthesis, and the per-resolution studies of a sweep are all
// independent evaluator-bound work — except for retargeting, where a
// design point prefers to seed from a neighbouring completed result.
// sched models that preference as an explicit dependency edge so the
// parallel schedule sees exactly the warm sources the serial schedule
// would, which is what makes the parallel study bit-identical to the
// serial one.
//
// Deadlock freedom under nesting (a sweep running studies, each study
// running design points, each design point running restarts, all on one
// Pool) comes from a simple rule: no caller ever blocks waiting for a
// token. A worker slot is acquired with TryAcquire only, and the calling
// goroutine always executes work itself, so forward progress never
// depends on a token being released.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a shared bounded budget of extra worker goroutines. A Pool
// with N workers allows at most N-1 spawned helpers: the calling
// goroutine is always the N-th worker, which is what makes nested use
// (study → design point → restarts on one Pool) deadlock-free.
type Pool struct {
	workers int
	tokens  chan struct{}
}

// NewPool sizes a budget of `workers` concurrent executors. workers <= 0
// defaults to GOMAXPROCS; workers == 1 makes every ForEach and Run fully
// serial on the calling goroutine, in deterministic index order.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers reports the configured concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// TryAcquire claims a helper slot without blocking. Callers that get a
// slot must Release it when the helper goroutine exits.
func (p *Pool) TryAcquire() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (p *Pool) Release() { <-p.tokens }

// ForEach runs f(i) for every i in [0, n), spreading the calls over the
// calling goroutine plus as many helpers as the pool can spare right
// now. With a 1-worker pool the calls happen inline in index order.
func (p *Pool) ForEach(n int, f func(int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 1; spawned < n && p.TryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Node is one unit of DAG work. Deps lists the indices of nodes that
// must complete before this one runs — for a retargeting study, the
// design points this node would consider as warm-start seeds.
type Node struct {
	Deps []int
	Run  func() error
}

// Run executes the nodes respecting dependency edges, with at most
// pool.Workers() nodes in flight. Ready nodes dispatch lowest-index
// first, so a 1-worker pool reproduces the serial schedule exactly.
//
// Once any node fails, no further nodes start (in-flight ones finish);
// Run returns the error of the lowest-index failed node, which is
// deterministic regardless of worker count.
func Run(pool *Pool, nodes []Node) error {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, nd := range nodes {
		for _, d := range nd.Deps {
			if d < 0 || d >= n {
				return fmt.Errorf("sched: node %d depends on out-of-range node %d", i, d)
			}
			if d >= i {
				// Edges must point backwards: warm sources precede their
				// consumers in sorted key order, and this rules out cycles.
				return fmt.Errorf("sched: node %d depends on later node %d", i, d)
			}
			indeg[i]++
			dependents[d] = append(dependents[d], i)
		}
	}

	ready := make([]bool, n)
	readyCount := 0
	for i := range nodes {
		if indeg[i] == 0 {
			ready[i] = true
			readyCount++
		}
	}
	popMin := func() int {
		for i := range ready {
			if ready[i] {
				ready[i] = false
				readyCount--
				return i
			}
		}
		return -1
	}

	errs := make([]error, n)
	done := make(chan int, n) // buffered: workers never block reporting
	completed := 0
	failed := false
	finish := func(i int) {
		completed++
		if errs[i] != nil {
			failed = true
		}
		for _, d := range dependents[i] {
			indeg[d]--
			if indeg[d] == 0 {
				ready[d] = true
				readyCount++
			}
		}
	}

	// Every edge points backwards (d < i), so the graph is acyclic and the
	// dispatcher always finds either a ready node or an in-flight one
	// until all n have finished.
	inFlight := 0
	for completed < n {
		// Spawn helpers for ready nodes while the pool has spare slots.
		for readyCount > 0 && !failed && pool.TryAcquire() {
			i := popMin()
			inFlight++
			go func(i int) {
				defer pool.Release()
				errs[i] = nodes[i].Run()
				done <- i
			}(i)
		}
		if readyCount > 0 {
			// No spare slot (or aborting): the dispatcher works too.
			// After a failure this branch drains the remaining nodes
			// without running them.
			i := popMin()
			if !failed {
				errs[i] = nodes[i].Run()
			}
			finish(i)
			continue
		}
		i := <-done
		inFlight--
		finish(i)
	}
	return firstErr(errs)
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
