package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolDefaultsAndBounds(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("default pool has %d workers", w)
	}
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	// 3 workers = caller + 2 helper slots.
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("could not claim the two helper slots")
	}
	if p.TryAcquire() {
		t.Fatal("claimed a third helper slot from a 3-worker pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var hits [100]atomic.Int32
		p.ForEach(context.Background(), len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	p := NewPool(1)
	var order []int
	p.ForEach(context.Background(), 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("1-worker ForEach out of order: %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	p.ForEach(context.Background(), 64, func(i int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		for k := 0; k < 1000; k++ {
			_ = k * k
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks from a %d-worker pool", got, workers)
	}
}

// TestForEachNestedDoesNotDeadlock is the sweep→study→restart shape: every
// outer task fans out again on the same pool.
func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int32
	p.ForEach(context.Background(), 8, func(i int) {
		p.ForEach(context.Background(), 8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested ForEach ran %d of 64 tasks", total.Load())
	}
}

func TestRunRespectsDeps(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		const n = 30
		var doneAt [n]atomic.Int64
		var clock atomic.Int64
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			i := i
			var deps []int
			if i >= 2 {
				deps = []int{i - 2}
			}
			nodes[i] = Node{Deps: deps, Run: func(context.Context) error {
				for _, d := range nodes[i].Deps {
					if doneAt[d].Load() == 0 {
						t.Errorf("node %d ran before dep %d", i, d)
					}
				}
				doneAt[i].Store(clock.Add(1))
				return nil
			}}
		}
		if err := Run(context.Background(), p, nodes); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range doneAt {
			if doneAt[i].Load() == 0 {
				t.Fatalf("workers=%d: node %d never ran", workers, i)
			}
		}
	}
}

func TestRunSerialOrderWithOneWorker(t *testing.T) {
	p := NewPool(1)
	var order []int
	nodes := make([]Node, 12)
	for i := range nodes {
		i := i
		nodes[i] = Node{Run: func(context.Context) error { order = append(order, i); return nil }}
	}
	if err := Run(context.Background(), p, nodes); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial DAG out of order: %v", order)
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		nodes := []Node{
			{Run: func(context.Context) error { return nil }},
			{Run: func(context.Context) error { return errA }},
			{Run: func(context.Context) error { return errB }},
			{Deps: []int{1}, Run: func(context.Context) error { t.Error("dependent of failed node ran"); return nil }},
		}
		err := Run(context.Background(), NewPool(workers), nodes)
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if workers == 1 && !errors.Is(err, errA) {
			t.Fatalf("serial run must surface the first error, got %v", err)
		}
	}
}

func TestRunRejectsForwardAndBogusEdges(t *testing.T) {
	ok := func(context.Context) error { return nil }
	if err := Run(context.Background(), NewPool(1), []Node{{Deps: []int{1}, Run: ok}, {Run: ok}}); err == nil {
		t.Fatal("forward edge accepted")
	}
	if err := Run(context.Background(), NewPool(1), []Node{{Deps: []int{-1}, Run: ok}}); err == nil {
		t.Fatal("negative edge accepted")
	}
	if err := Run(context.Background(), NewPool(1), nil); err != nil {
		t.Fatalf("empty DAG: %v", err)
	}
}

// TestRunManyNodesUnderRace gives the race detector a dense interleaving
// to chew on (the `make race` CI lane).
func TestRunManyNodesUnderRace(t *testing.T) {
	p := NewPool(8)
	const n = 200
	results := make([]int, n)
	nodes := make([]Node, n)
	for i := range nodes {
		i := i
		var deps []int
		if i > 0 {
			deps = append(deps, (i-1)/2) // binary-tree shape
		}
		nodes[i] = Node{Deps: deps, Run: func(context.Context) error {
			v := i
			for _, d := range nodes[i].Deps {
				v += results[d] // cross-goroutine read through the DAG edge
			}
			results[i] = v
			return nil
		}}
	}
	if err := Run(context.Background(), p, nodes); err != nil {
		t.Fatal(err)
	}
	if results[0] != 0 {
		t.Fatal("root result wrong")
	}
	for i := 1; i < n; i++ {
		if results[i] != i+results[(i-1)/2] {
			t.Fatalf("node %d result %d, want %d", i, results[i], i+results[(i-1)/2])
		}
	}
	_ = fmt.Sprint(results[n-1])
}
