package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, e Expr, env map[string]float64) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestConstFolding(t *testing.T) {
	if e := Add(C(1), C(2), C(3)); !eq(e, 6) {
		t.Fatalf("Add consts = %s", e)
	}
	if e := Mul(C(2), C(3)); !eq(e, 6) {
		t.Fatalf("Mul consts = %s", e)
	}
	if e := Mul(C(0), V("x")); !e.IsZero() {
		t.Fatalf("0*x = %s, want 0", e)
	}
	if e := Add(); !e.IsZero() {
		t.Fatalf("empty Add = %s", e)
	}
	if e := Mul(); !e.IsOne() {
		t.Fatalf("empty Mul = %s", e)
	}
	if e := Pow(V("x"), 0); !e.IsOne() {
		t.Fatalf("x^0 = %s", e)
	}
	if e := Pow(C(2), 3); !eq(e, 8) {
		t.Fatalf("2^3 = %s", e)
	}
}

func eq(e Expr, v float64) bool {
	c, ok := e.IsConst()
	return ok && c == v
}

func TestFlattening(t *testing.T) {
	e := Add(V("a"), Add(V("b"), Add(V("c"), C(1))), C(2))
	env := map[string]float64{"a": 1, "b": 2, "c": 3}
	if got := evalOK(t, e, env); got != 9 {
		t.Fatalf("flattened sum = %g, want 9", got)
	}
	m := Mul(V("a"), Mul(V("b"), C(2)), C(3))
	if got := evalOK(t, m, env); got != 12 {
		t.Fatalf("flattened product = %g, want 12", got)
	}
}

func TestEvalUnbound(t *testing.T) {
	if _, err := V("missing").Eval(map[string]float64{}); err == nil {
		t.Fatal("expected unbound-variable error")
	}
	if _, err := Add(V("x"), V("missing")).Eval(map[string]float64{"x": 1}); err == nil {
		t.Fatal("expected unbound-variable error in sum")
	}
}

func TestDivPow(t *testing.T) {
	e := Div(V("gm"), V("C"))
	env := map[string]float64{"gm": 1e-3, "C": 1e-12}
	if got := evalOK(t, e, env); math.Abs(got-1e9) > 1 {
		t.Fatalf("gm/C = %g, want 1e9", got)
	}
	// Div by const folds.
	d := Div(V("x"), C(4))
	if got := evalOK(t, d, map[string]float64{"x": 8}); got != 2 {
		t.Fatalf("x/4 = %g", got)
	}
	// Nested pow collapses: (x^2)^3 = x^6.
	p := Pow(Pow(V("x"), 2), 3)
	if got := evalOK(t, p, map[string]float64{"x": 2}); got != 64 {
		t.Fatalf("(x^2)^3 = %g, want 64", got)
	}
}

func TestDivByZeroConstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero const should panic")
		}
	}()
	Div(V("x"), C(0))
}

func TestVars(t *testing.T) {
	e := Add(Mul(V("gm1"), V("ro")), Pow(V("s"), 2), C(3))
	got := e.Vars()
	want := []string{"gm1", "ro", "s"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestDiff(t *testing.T) {
	// d/dx (x² + 3x + 5) = 2x + 3
	x := V("x")
	e := Add(Pow(x, 2), Mul(C(3), x), C(5))
	d := e.Diff("x")
	for _, xv := range []float64{-2, 0, 1.5, 10} {
		got := evalOK(t, d, map[string]float64{"x": xv})
		want := 2*xv + 3
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("d(x²+3x+5)(%g) = %g, want %g", xv, got, want)
		}
	}
	// Product rule: d/dx (x·y) = y.
	p := Mul(x, V("y")).Diff("x")
	got := evalOK(t, p, map[string]float64{"x": 7, "y": 3})
	if got != 3 {
		t.Fatalf("d(xy)/dx = %g, want 3", got)
	}
	// Quotient: d/dx (1/x) = -1/x².
	q := Div(C(1), x).Diff("x")
	got = evalOK(t, q, map[string]float64{"x": 2})
	if math.Abs(got+0.25) > 1e-12 {
		t.Fatalf("d(1/x)/dx at 2 = %g, want -0.25", got)
	}
}

// Property: Diff agrees with a central finite difference for a random
// polynomial-ish expression.
func TestDiffNumericProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := V("x")
		e := Add(
			Mul(C(r.Float64()*4-2), Pow(x, 3)),
			Mul(C(r.Float64()*4-2), Pow(x, 2)),
			Mul(C(r.Float64()*4-2), x),
			C(r.Float64()),
		)
		d := e.Diff("x")
		x0 := r.Float64()*4 - 2
		h := 1e-5
		fp, _ := e.Eval(map[string]float64{"x": x0 + h})
		fm, _ := e.Eval(map[string]float64{"x": x0 - h})
		numeric := (fp - fm) / (2 * h)
		symbolic, err := d.Eval(map[string]float64{"x": x0})
		if err != nil {
			return false
		}
		return math.Abs(numeric-symbolic) < 1e-4*(1+math.Abs(symbolic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEvalC(t *testing.T) {
	// H = 1/(1 + s·RC) at s = j/RC has |H| = 1/√2.
	s := V("s")
	rc := 1e-9
	h := Div(C(1), Add(C(1), Mul(C(rc), s)))
	v, err := h.EvalC(map[string]complex128{"s": complex(0, 1/rc)})
	if err != nil {
		t.Fatal(err)
	}
	mag := math.Hypot(real(v), imag(v))
	if math.Abs(mag-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("|H| = %g, want %g", mag, 1/math.Sqrt2)
	}
}

func TestToRat(t *testing.T) {
	// H = gm/(gm + s·C) → single pole at -gm/C, DC gain 1.
	s := V("s")
	h := Div(V("gm"), Add(V("gm"), Mul(s, V("C"))))
	env := map[string]float64{"gm": 1e-3, "C": 1e-12}
	r, err := h.ToRat("s", env)
	if err != nil {
		t.Fatal(err)
	}
	if g := r.DCGain(); math.Abs(g-1) > 1e-9 {
		t.Fatalf("DCGain = %g, want 1", g)
	}
	poles := r.Poles()
	if len(poles) != 1 {
		t.Fatalf("poles = %v", poles)
	}
	wantPole := -1e-3 / 1e-12
	if math.Abs(real(poles[0])-wantPole) > math.Abs(wantPole)*1e-6 {
		t.Fatalf("pole = %v, want %g", poles[0], wantPole)
	}
}

// Property: ToRat and EvalC agree at random jω points.
func TestToRatMatchesEvalCProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := V("s")
		a, b, c := r.Float64()+0.5, r.Float64()+0.5, r.Float64()+0.5
		// H = (a + b·s)/(c + s + s²)
		h := Div(Add(C(a), Mul(C(b), s)), Add(C(c), s, Pow(s, 2)))
		env := map[string]float64{}
		rat, err := h.ToRat("s", env)
		if err != nil {
			return false
		}
		w := r.Float64()*10 + 0.1
		sv := complex(0, w)
		direct, err := h.EvalC(map[string]complex128{"s": sv})
		if err != nil {
			return false
		}
		viaRat := rat.Eval(sv)
		diff := direct - viaRat
		return math.Hypot(real(diff), imag(diff)) < 1e-9*(1+math.Hypot(real(direct), imag(direct)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	e := Add(Mul(C(2), V("x")), Pow(V("y"), -1))
	if e.String() == "" {
		t.Fatal("empty render")
	}
	if V("gm").String() != "gm" {
		t.Fatal("var render")
	}
}

func TestEmptyVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("V(\"\") should panic")
		}
	}()
	V("")
}
