package expr

import (
	"fmt"
	"sort"
)

// Program is a compiled expression: a flattened postfix instruction list
// with variables resolved to slice indices, so evaluation is a tight
// stack-machine loop with no string hashing and no tree recursion. Mason
// transfer functions are evaluated at hundreds of frequency points per
// synthesis candidate, and the compiled form is several times faster than
// walking the Expr tree.
type Program struct {
	code     []instr
	vars     []string
	maxStack int
}

type opcode uint8

const (
	opConst opcode = iota
	opVar
	opAdd // pops n, pushes sum
	opMul // pops n, pushes product
	opPow // pops 1, pushes power
)

type instr struct {
	op  opcode
	n   int32 // operand count (opAdd/opMul) or exponent (opPow)
	idx int32 // variable slot (opVar)
	val complex128
}

// Compile resolves every variable in e against its own sorted variable
// set and returns the program plus the variable order expected by EvalC.
func (e Expr) Compile() (*Program, []string, error) {
	vars := e.Vars()
	index := make(map[string]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	p := &Program{vars: vars}
	depth, err := p.emit(e, index, 0)
	if err != nil {
		return nil, nil, err
	}
	_ = depth
	return p, vars, nil
}

// emit appends postfix code for e; cur is the stack depth before the
// node's own result is pushed. It returns the depth after the push.
func (p *Program) emit(e Expr, index map[string]int, cur int) (int, error) {
	grow := func(d int) {
		if d > p.maxStack {
			p.maxStack = d
		}
	}
	switch e.kind {
	case kConst:
		p.code = append(p.code, instr{op: opConst, val: complex(e.val, 0)})
		grow(cur + 1)
		return cur + 1, nil
	case kVar:
		i, ok := index[e.name]
		if !ok {
			return 0, fmt.Errorf("expr: compile: unknown variable %q", e.name)
		}
		p.code = append(p.code, instr{op: opVar, idx: int32(i)})
		grow(cur + 1)
		return cur + 1, nil
	case kAdd, kMul:
		d := cur
		for _, a := range e.args {
			var err error
			d, err = p.emit(a, index, d)
			if err != nil {
				return 0, err
			}
		}
		op := opAdd
		if e.kind == kMul {
			op = opMul
		}
		p.code = append(p.code, instr{op: op, n: int32(len(e.args))})
		return cur + 1, nil
	case kPow:
		if _, err := p.emit(*e.base, index, cur); err != nil {
			return 0, err
		}
		p.code = append(p.code, instr{op: opPow, n: int32(e.expnt)})
		return cur + 1, nil
	}
	panic("expr: unknown kind")
}

// Vars returns the variable order for EvalC's vals argument.
func (p *Program) Vars() []string { return append([]string(nil), p.vars...) }

// VarIndex returns the slot of a variable, or -1.
func (p *Program) VarIndex(name string) int {
	i := sort.SearchStrings(p.vars, name)
	if i < len(p.vars) && p.vars[i] == name {
		return i
	}
	return -1
}

// Size reports the instruction count, a proxy for expression complexity.
func (p *Program) Size() int { return len(p.code) }

// EvalC evaluates the program; vals must be index-aligned with Vars().
// It is safe for concurrent use (the evaluation stack is local).
func (p *Program) EvalC(vals []complex128) (complex128, error) {
	if len(vals) != len(p.vars) {
		return 0, fmt.Errorf("expr: program needs %d values, got %d", len(p.vars), len(vals))
	}
	stack := make([]complex128, 0, p.maxStack)
	for i := range p.code {
		in := &p.code[i]
		switch in.op {
		case opConst:
			stack = append(stack, in.val)
		case opVar:
			stack = append(stack, vals[in.idx])
		case opAdd:
			n := int(in.n)
			var s complex128
			for _, v := range stack[len(stack)-n:] {
				s += v
			}
			stack = stack[:len(stack)-n]
			stack = append(stack, s)
		case opMul:
			n := int(in.n)
			pr := complex(1, 0)
			for _, v := range stack[len(stack)-n:] {
				pr *= v
			}
			stack = stack[:len(stack)-n]
			stack = append(stack, pr)
		case opPow:
			b := stack[len(stack)-1]
			out := complex(1, 0)
			k := int(in.n)
			inv := k < 0
			if inv {
				k = -k
			}
			for j := 0; j < k; j++ {
				out *= b
			}
			if inv {
				out = 1 / out
			}
			stack[len(stack)-1] = out
		}
	}
	if len(stack) != 1 {
		return 0, fmt.Errorf("expr: corrupt program (stack depth %d)", len(stack))
	}
	return stack[0], nil
}
