package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Program is a compiled expression: a flattened postfix instruction list
// with variables resolved to slice indices, so evaluation is a tight
// stack-machine loop with no string hashing and no tree recursion. Mason
// transfer functions are evaluated at hundreds of frequency points per
// synthesis candidate, and the compiled form is several times faster than
// walking the Expr tree.
//
// Compile also runs an optimization pass over the expression DAG:
// structurally identical subexpressions are interned and computed once
// (their value parked in a register and re-loaded at later uses), and
// constant subtrees are folded at compile time using the exact operation
// order of the runtime loop, so the optimized program is bit-identical
// to the naive one.
type Program struct {
	code     []instr
	vars     []string
	maxStack int
	nreg     int
}

type opcode uint8

const (
	opConst opcode = iota
	opVar
	opAdd   // pops n, pushes sum
	opMul   // pops n, pushes product
	opPow   // pops 1, pushes power
	opStore // copies top of stack into register (no pop)
	opLoad  // pushes register
)

type instr struct {
	op  opcode
	n   int32 // operand count (opAdd/opMul) or exponent (opPow)
	idx int32 // variable slot (opVar) or register (opLoad/opStore)
	val complex128
}

// dagNode is one interned subexpression during compilation. Structurally
// identical subtrees share a node; uses counts the parent references.
type dagNode struct {
	e    Expr
	kids []*dagNode // kAdd/kMul operands, or the kPow base

	uses    int
	reg     int32 // register once stored, -1 otherwise
	emitted bool

	isConst  bool
	constVal complex128
}

// compiler interns subexpressions by structural signature.
type compiler struct {
	index map[string]int
	nodes map[string]*dagNode
	sigs  map[*dagNode]string
}

// intern returns the shared DAG node for e, folding constant subtrees.
// Folding replicates the evaluation loop's accumulation order exactly
// (sequential complex adds/multiplies, repeated multiplication for
// powers) so optimized programs return bit-identical values.
func (c *compiler) intern(e Expr) (*dagNode, error) {
	var sig string
	var kids []*dagNode
	switch e.kind {
	case kConst:
		sig = "c" + strconv.FormatUint(math.Float64bits(e.val), 16)
	case kVar:
		if _, ok := c.index[e.name]; !ok {
			return nil, fmt.Errorf("expr: compile: unknown variable %q", e.name)
		}
		sig = "v" + e.name
	case kAdd, kMul:
		kids = make([]*dagNode, len(e.args))
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			k, err := c.intern(a)
			if err != nil {
				return nil, err
			}
			kids[i] = k
			parts[i] = c.sigs[k]
		}
		tag := "a("
		if e.kind == kMul {
			tag = "m("
		}
		sig = tag + strings.Join(parts, ",") + ")"
	case kPow:
		k, err := c.intern(*e.base)
		if err != nil {
			return nil, err
		}
		kids = []*dagNode{k}
		sig = "p" + strconv.Itoa(e.expnt) + "(" + c.sigs[k] + ")"
	default:
		panic("expr: unknown kind")
	}
	if n, ok := c.nodes[sig]; ok {
		n.uses++
		return n, nil
	}
	n := &dagNode{e: e, kids: kids, uses: 1, reg: -1}
	c.fold(n)
	c.nodes[sig] = n
	c.sigs[n] = sig
	return n, nil
}

// fold marks n constant (and precomputes its value) when possible.
func (c *compiler) fold(n *dagNode) {
	switch n.e.kind {
	case kConst:
		n.isConst, n.constVal = true, complex(n.e.val, 0)
		return
	case kVar:
		return
	}
	for _, k := range n.kids {
		if !k.isConst {
			return
		}
	}
	switch n.e.kind {
	case kAdd:
		var s complex128
		for _, k := range n.kids {
			s += k.constVal
		}
		n.isConst, n.constVal = true, s
	case kMul:
		pr := complex(1, 0)
		for _, k := range n.kids {
			pr *= k.constVal
		}
		n.isConst, n.constVal = true, pr
	case kPow:
		b := n.kids[0].constVal
		out := complex(1, 0)
		k := n.e.expnt
		inv := k < 0
		if inv {
			k = -k
		}
		for j := 0; j < k; j++ {
			out *= b
		}
		if inv {
			out = 1 / out
		}
		n.isConst, n.constVal = true, out
	}
}

// Compile resolves every variable in e against its own sorted variable
// set and returns the program plus the variable order expected by EvalC.
func (e Expr) Compile() (*Program, []string, error) {
	vars := e.Vars()
	index := make(map[string]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	c := &compiler{
		index: index,
		nodes: map[string]*dagNode{},
		sigs:  map[*dagNode]string{},
	}
	root, err := c.intern(e)
	if err != nil {
		return nil, nil, err
	}
	p := &Program{vars: vars}
	p.emit(root, index, 0)
	return p, vars, nil
}

// emit appends postfix code for the DAG node n; cur is the stack depth
// before the node's own result is pushed. It returns the depth after the
// push. A constant-folded or already-stored node becomes a single push;
// a composite node used more than once additionally parks its value in a
// fresh register the first time it is computed.
func (p *Program) emit(n *dagNode, index map[string]int, cur int) int {
	grow := func(d int) {
		if d > p.maxStack {
			p.maxStack = d
		}
	}
	if n.isConst {
		p.code = append(p.code, instr{op: opConst, val: n.constVal})
		grow(cur + 1)
		return cur + 1
	}
	if n.emitted && n.reg >= 0 {
		p.code = append(p.code, instr{op: opLoad, idx: n.reg})
		grow(cur + 1)
		return cur + 1
	}
	switch n.e.kind {
	case kVar:
		p.code = append(p.code, instr{op: opVar, idx: int32(index[n.e.name])})
		grow(cur + 1)
		// Variable pushes are as cheap as register loads; no CSE needed.
		return cur + 1
	case kAdd, kMul:
		d := cur
		for _, k := range n.kids {
			d = p.emit(k, index, d)
		}
		op := opAdd
		if n.e.kind == kMul {
			op = opMul
		}
		p.code = append(p.code, instr{op: op, n: int32(len(n.kids))})
	case kPow:
		p.emit(n.kids[0], index, cur)
		p.code = append(p.code, instr{op: opPow, n: int32(n.e.expnt)})
	default:
		panic("expr: unknown kind")
	}
	n.emitted = true
	if n.uses > 1 {
		n.reg = int32(p.nreg)
		p.nreg++
		p.code = append(p.code, instr{op: opStore, idx: n.reg})
	}
	return cur + 1
}

// Vars returns the variable order for EvalC's vals argument.
func (p *Program) Vars() []string { return append([]string(nil), p.vars...) }

// VarIndex returns the slot of a variable, or -1.
func (p *Program) VarIndex(name string) int {
	i := sort.SearchStrings(p.vars, name)
	if i < len(p.vars) && p.vars[i] == name {
		return i
	}
	return -1
}

// Size reports the instruction count, a proxy for expression complexity.
func (p *Program) Size() int { return len(p.code) }

// EvalBuf is the scratch state for EvalCInto. The zero value is ready to
// use; the first evaluation sizes it, after which evaluations of the
// same (or any smaller) program allocate nothing. A buffer must not be
// shared between concurrent evaluations.
type EvalBuf struct {
	stack []complex128
	regs  []complex128
}

// EvalC evaluates the program; vals must be index-aligned with Vars().
// It is safe for concurrent use (the evaluation scratch is local). Hot
// loops should hold an EvalBuf and call EvalCInto instead.
func (p *Program) EvalC(vals []complex128) (complex128, error) {
	var buf EvalBuf
	return p.EvalCInto(&buf, vals)
}

// EvalCInto evaluates the program using buf as scratch space, growing it
// only when the program needs more than any earlier evaluation did.
func (p *Program) EvalCInto(buf *EvalBuf, vals []complex128) (complex128, error) {
	if len(vals) != len(p.vars) {
		return 0, fmt.Errorf("expr: program needs %d values, got %d", len(p.vars), len(vals))
	}
	if cap(buf.stack) < p.maxStack {
		buf.stack = make([]complex128, 0, p.maxStack)
	}
	if cap(buf.regs) < p.nreg {
		buf.regs = make([]complex128, p.nreg)
	}
	stack := buf.stack[:0]
	regs := buf.regs[:cap(buf.regs)]
	for i := range p.code {
		in := &p.code[i]
		switch in.op {
		case opConst:
			stack = append(stack, in.val)
		case opVar:
			stack = append(stack, vals[in.idx])
		case opAdd:
			n := int(in.n)
			var s complex128
			for _, v := range stack[len(stack)-n:] {
				s += v
			}
			stack = stack[:len(stack)-n]
			stack = append(stack, s)
		case opMul:
			n := int(in.n)
			pr := complex(1, 0)
			for _, v := range stack[len(stack)-n:] {
				pr *= v
			}
			stack = stack[:len(stack)-n]
			stack = append(stack, pr)
		case opPow:
			b := stack[len(stack)-1]
			out := complex(1, 0)
			k := int(in.n)
			inv := k < 0
			if inv {
				k = -k
			}
			for j := 0; j < k; j++ {
				out *= b
			}
			if inv {
				out = 1 / out
			}
			stack[len(stack)-1] = out
		case opStore:
			regs[in.idx] = stack[len(stack)-1]
		case opLoad:
			stack = append(stack, regs[in.idx])
		}
	}
	buf.stack = stack[:0]
	if len(stack) != 1 {
		return 0, fmt.Errorf("expr: corrupt program (stack depth %d)", len(stack))
	}
	return stack[0], nil
}
