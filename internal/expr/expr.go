// Package expr implements a small symbolic expression engine: constants,
// named variables, n-ary sums and products, and integer powers. It is the
// algebra in which the DPI/SFG flow carries circuit quantities (gm, ro, C,
// and the Laplace variable s), and in which Mason's gain rule assembles
// symbolic transfer functions before they are bound to numbers extracted
// from a DC simulation.
//
// Expressions are immutable; the constructors perform light canonical
// simplification (constant folding, flattening, identity elimination) so
// that transfer functions stay readable and evaluation stays cheap.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pipesyn/internal/poly"
)

// Expr is an immutable symbolic expression.
type Expr struct {
	kind  kind
	val   float64 // kConst
	name  string  // kVar
	args  []Expr  // kAdd, kMul
	base  *Expr   // kPow
	expnt int     // kPow
}

type kind uint8

const (
	kConst kind = iota
	kVar
	kAdd
	kMul
	kPow
)

// C returns a constant expression.
func C(v float64) Expr { return Expr{kind: kConst, val: v} }

// V returns a variable expression with the given name. The name "s" is,
// by convention throughout this project, the Laplace variable.
func V(name string) Expr {
	if name == "" {
		panic("expr: empty variable name")
	}
	return Expr{kind: kVar, name: name}
}

// Zero and One are the additive and multiplicative identities.
var (
	Zero = C(0)
	One  = C(1)
)

// IsConst reports whether e is a constant, returning its value.
func (e Expr) IsConst() (float64, bool) {
	if e.kind == kConst {
		return e.val, true
	}
	return 0, false
}

// IsZero reports whether e is the constant 0.
func (e Expr) IsZero() bool { return e.kind == kConst && e.val == 0 }

// IsOne reports whether e is the constant 1.
func (e Expr) IsOne() bool { return e.kind == kConst && e.val == 1 }

// Add returns the simplified sum of the given expressions.
func Add(xs ...Expr) Expr {
	var flat []Expr
	constSum := 0.0
	for _, x := range xs {
		switch x.kind {
		case kConst:
			constSum += x.val
		case kAdd:
			for _, a := range x.args {
				if c, ok := a.IsConst(); ok {
					constSum += c
				} else {
					flat = append(flat, a)
				}
			}
		default:
			flat = append(flat, x)
		}
	}
	if constSum != 0 {
		flat = append(flat, C(constSum))
	}
	switch len(flat) {
	case 0:
		return Zero
	case 1:
		return flat[0]
	}
	return Expr{kind: kAdd, args: flat}
}

// Mul returns the simplified product of the given expressions.
func Mul(xs ...Expr) Expr {
	var flat []Expr
	constProd := 1.0
	for _, x := range xs {
		switch x.kind {
		case kConst:
			constProd *= x.val
		case kMul:
			for _, a := range x.args {
				if c, ok := a.IsConst(); ok {
					constProd *= c
				} else {
					flat = append(flat, a)
				}
			}
		default:
			flat = append(flat, x)
		}
	}
	if constProd == 0 {
		return Zero
	}
	if constProd != 1 {
		// Keep the constant in front for readability.
		flat = append([]Expr{C(constProd)}, flat...)
	}
	switch len(flat) {
	case 0:
		return One
	case 1:
		return flat[0]
	}
	return Expr{kind: kMul, args: flat}
}

// Sub returns a − b.
func Sub(a, b Expr) Expr { return Add(a, Neg(b)) }

// Neg returns −a.
func Neg(a Expr) Expr { return Mul(C(-1), a) }

// Div returns a / b, represented as a·b⁻¹.
func Div(a, b Expr) Expr {
	if c, ok := b.IsConst(); ok {
		if c == 0 {
			panic("expr: division by constant zero")
		}
		return Mul(a, C(1/c))
	}
	return Mul(a, Pow(b, -1))
}

// Pow returns base^n for integer n, folding trivial cases.
func Pow(base Expr, n int) Expr {
	switch n {
	case 0:
		return One
	case 1:
		return base
	}
	if c, ok := base.IsConst(); ok {
		return C(math.Pow(c, float64(n)))
	}
	if base.kind == kPow {
		return Pow(*base.base, base.expnt*n)
	}
	b := base
	return Expr{kind: kPow, base: &b, expnt: n}
}

// Eval evaluates e with variables bound by env. Unbound variables are an
// error (circuit algebra must never silently default a parameter).
func (e Expr) Eval(env map[string]float64) (float64, error) {
	switch e.kind {
	case kConst:
		return e.val, nil
	case kVar:
		v, ok := env[e.name]
		if !ok {
			return 0, fmt.Errorf("expr: unbound variable %q", e.name)
		}
		return v, nil
	case kAdd:
		s := 0.0
		for _, a := range e.args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			s += v
		}
		return s, nil
	case kMul:
		p := 1.0
		for _, a := range e.args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			p *= v
		}
		return p, nil
	case kPow:
		b, err := e.base.Eval(env)
		if err != nil {
			return 0, err
		}
		return math.Pow(b, float64(e.expnt)), nil
	}
	panic("expr: unknown kind")
}

// EvalC evaluates e over the complex numbers; used to evaluate transfer
// functions at s = jω without converting to a rational function first.
func (e Expr) EvalC(env map[string]complex128) (complex128, error) {
	switch e.kind {
	case kConst:
		return complex(e.val, 0), nil
	case kVar:
		v, ok := env[e.name]
		if !ok {
			return 0, fmt.Errorf("expr: unbound variable %q", e.name)
		}
		return v, nil
	case kAdd:
		var s complex128
		for _, a := range e.args {
			v, err := a.EvalC(env)
			if err != nil {
				return 0, err
			}
			s += v
		}
		return s, nil
	case kMul:
		p := complex(1, 0)
		for _, a := range e.args {
			v, err := a.EvalC(env)
			if err != nil {
				return 0, err
			}
			p *= v
		}
		return p, nil
	case kPow:
		b, err := e.base.EvalC(env)
		if err != nil {
			return 0, err
		}
		out := complex(1, 0)
		n := e.expnt
		inv := n < 0
		if inv {
			n = -n
		}
		for i := 0; i < n; i++ {
			out *= b
		}
		if inv {
			out = 1 / out
		}
		return out, nil
	}
	panic("expr: unknown kind")
}

// Vars returns the sorted set of variable names appearing in e.
func (e Expr) Vars() []string {
	set := map[string]bool{}
	e.collectVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (e Expr) collectVars(set map[string]bool) {
	switch e.kind {
	case kVar:
		set[e.name] = true
	case kAdd, kMul:
		for _, a := range e.args {
			a.collectVars(set)
		}
	case kPow:
		e.base.collectVars(set)
	}
}

// Diff returns ∂e/∂name using standard rules; used for symbolic
// sensitivity analysis of transfer-function coefficients.
func (e Expr) Diff(name string) Expr {
	switch e.kind {
	case kConst:
		return Zero
	case kVar:
		if e.name == name {
			return One
		}
		return Zero
	case kAdd:
		terms := make([]Expr, 0, len(e.args))
		for _, a := range e.args {
			terms = append(terms, a.Diff(name))
		}
		return Add(terms...)
	case kMul:
		// Product rule over n factors.
		var terms []Expr
		for i := range e.args {
			factors := make([]Expr, 0, len(e.args))
			for j, a := range e.args {
				if i == j {
					factors = append(factors, a.Diff(name))
				} else {
					factors = append(factors, a)
				}
			}
			terms = append(terms, Mul(factors...))
		}
		return Add(terms...)
	case kPow:
		// d(b^n) = n·b^(n-1)·db
		return Mul(C(float64(e.expnt)), Pow(*e.base, e.expnt-1), e.base.Diff(name))
	}
	panic("expr: unknown kind")
}

// String renders the expression with infix notation.
func (e Expr) String() string {
	switch e.kind {
	case kConst:
		return fmt.Sprintf("%.6g", e.val)
	case kVar:
		return e.name
	case kAdd:
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " + ") + ")"
	case kMul:
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = a.String()
		}
		return strings.Join(parts, "*")
	case kPow:
		return fmt.Sprintf("%s^%d", e.base.String(), e.expnt)
	}
	panic("expr: unknown kind")
}

// ToRat interprets e as a rational function in the variable sName (usually
// "s"), with every other variable bound numerically by env. This is the
// bridge from the symbolic Mason transfer function to the numeric Rat used
// for pole/zero and Bode extraction.
func (e Expr) ToRat(sName string, env map[string]float64) (poly.Rat, error) {
	return e.toRat(sName, env, poly.RatVar())
}

// ToRatScaled converts like ToRat but with the Laplace variable normalized:
// it returns H̃(s̃) = H(ω0·s̃). Circuit transfer functions whose dynamics
// live near ω0 then have polynomial coefficients of comparable magnitude,
// which keeps high-order Mason results evaluable in double precision
// (raw-s coefficients of a degree-40 network span hundreds of decades and
// underflow). Evaluate at s̃ = jω/ω0; poles/zeros scale by ω0.
func (e Expr) ToRatScaled(sName string, env map[string]float64, omega0 float64) (poly.Rat, error) {
	if omega0 <= 0 {
		return poly.Rat{}, fmt.Errorf("expr: non-positive frequency scale %g", omega0)
	}
	return e.toRat(sName, env, poly.RatVar().Scale(omega0))
}

func (e Expr) toRat(sName string, env map[string]float64, sVal poly.Rat) (poly.Rat, error) {
	switch e.kind {
	case kConst:
		return poly.RatConst(e.val), nil
	case kVar:
		if e.name == sName {
			return sVal, nil
		}
		v, ok := env[e.name]
		if !ok {
			return poly.Rat{}, fmt.Errorf("expr: unbound variable %q", e.name)
		}
		return poly.RatConst(v), nil
	case kAdd:
		acc := poly.RatConst(0)
		for _, a := range e.args {
			r, err := a.toRat(sName, env, sVal)
			if err != nil {
				return poly.Rat{}, err
			}
			acc = acc.Add(r)
		}
		return acc, nil
	case kMul:
		acc := poly.RatConst(1)
		for _, a := range e.args {
			r, err := a.toRat(sName, env, sVal)
			if err != nil {
				return poly.Rat{}, err
			}
			acc = acc.Mul(r)
		}
		return acc, nil
	case kPow:
		b, err := e.base.toRat(sName, env, sVal)
		if err != nil {
			return poly.Rat{}, err
		}
		n := e.expnt
		inv := n < 0
		if inv {
			n = -n
		}
		acc := poly.RatConst(1)
		for i := 0; i < n; i++ {
			acc = acc.Mul(b)
		}
		if inv {
			if acc.Num.IsZero() {
				return poly.Rat{}, fmt.Errorf("expr: inverse of zero in %s", e.String())
			}
			acc = poly.RatConst(1).Div(acc)
		}
		return acc, nil
	}
	panic("expr: unknown kind")
}
