package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompileMatchesEvalC(t *testing.T) {
	tf := ladderTF(6)
	env := ladderEnv(6, 3)
	prog, vars, err := tf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Size() == 0 {
		t.Fatal("empty program")
	}
	cenv := map[string]complex128{}
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		var v complex128
		if name == "s" {
			v = complex(0, 2e9)
		} else {
			v = complex(env[name], 0)
		}
		vals[i] = v
		cenv[name] = v
	}
	want, err := tf.EvalC(cenv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.EvalC(vals)
	if err != nil {
		t.Fatal(err)
	}
	if d := got - want; math.Hypot(real(d), imag(d)) > 1e-12*(1+math.Hypot(real(want), imag(want))) {
		t.Fatalf("compiled %v vs tree %v", got, want)
	}
}

// Property: compiled evaluation equals tree evaluation for random
// expressions built from the constructor grammar.
func TestCompileEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	names := []string{"a", "b", "c", "d"}
	var build func(r *rand.Rand, depth int) Expr
	build = func(r *rand.Rand, depth int) Expr {
		if depth == 0 || r.Float64() < 0.3 {
			if r.Float64() < 0.5 {
				return C(r.Float64()*4 - 2)
			}
			return V(names[r.Intn(len(names))])
		}
		switch r.Intn(4) {
		case 0:
			return Add(build(r, depth-1), build(r, depth-1))
		case 1:
			return Mul(build(r, depth-1), build(r, depth-1))
		case 2:
			return Pow(build(r, depth-1), r.Intn(3)+1)
		default:
			return Sub(build(r, depth-1), build(r, depth-1))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := build(r, 5)
		prog, vars, err := e.Compile()
		if err != nil {
			return false
		}
		cenv := map[string]complex128{}
		vals := make([]complex128, len(vars))
		for i, n := range vars {
			v := complex(r.Float64()*2+0.5, r.Float64())
			vals[i] = v
			cenv[n] = v
		}
		want, err1 := e.EvalC(cenv)
		got, err2 := prog.EvalC(vals)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		d := got - want
		return math.Hypot(real(d), imag(d)) <= 1e-9*(1+math.Hypot(real(want), imag(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestProgramVarIndex(t *testing.T) {
	e := Add(V("x"), Mul(V("y"), V("s")))
	prog, vars, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	if prog.VarIndex("s") < 0 || prog.VarIndex("zz") != -1 {
		t.Fatal("VarIndex misbehaves")
	}
	if got := prog.Vars(); len(got) != 3 {
		t.Fatalf("Vars = %v", got)
	}
	// Wrong value count errors.
	if _, err := prog.EvalC(make([]complex128, 1)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCompilePowNegative(t *testing.T) {
	e := Pow(V("x"), -2)
	prog, _, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.EvalC([]complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(got)-0.25) > 1e-15 || imag(got) != 0 {
		t.Fatalf("x^-2 at 2 = %v", got)
	}
}

// TestCompileCSE checks that a shared subexpression is computed once and
// re-loaded from a register, and that the optimized program agrees with
// tree evaluation bit-for-bit.
func TestCompileCSE(t *testing.T) {
	// d appears twice: the Mason numerator/denominator shape.
	d := Add(V("x"), Mul(V("y"), V("s")))
	e := Div(d, Add(One, Mul(d, V("k"))))
	prog, vars, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if prog.nreg == 0 {
		t.Fatal("expected the shared subexpression to be assigned a register")
	}
	env := map[string]complex128{
		"x": complex(0.7, 0), "y": complex(2e-12, 0),
		"s": complex(0, 6e9), "k": complex(0.25, 0),
	}
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		vals[i] = env[name]
	}
	want, err := e.EvalC(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.EvalC(vals)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compiled %v != tree %v", got, want)
	}
}

// TestCompileConstantFolding checks that constant subtrees collapse to a
// single push with the runtime's accumulation semantics preserved.
func TestCompileConstantFolding(t *testing.T) {
	// Pow of a sum of constants survives the constructors un-folded
	// (Add folds, but Pow of the folded constant folds via math.Pow in
	// the constructor) — build one the constructors cannot fold: the
	// product carries a variable that multiplies to a constant-free
	// position, while the 3-term constant chain folds in compile.
	e := Expr{kind: kMul, args: []Expr{C(2), C(3), V("x"), C(0.5)}}
	prog, vars, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("vars = %v", vars)
	}
	got, err := prog.EvalC([]complex128{complex(7, 0)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.EvalC(map[string]complex128{"x": complex(7, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compiled %v != tree %v", got, want)
	}
}

// TestEvalCIntoDoesNotAllocate pins the hot-loop contract: with a warm
// buffer, evaluation performs zero heap allocations.
func TestEvalCIntoDoesNotAllocate(t *testing.T) {
	d := Add(V("x"), Mul(V("y"), V("s")))
	e := Div(d, Add(One, Mul(d, V("k"))))
	prog, vars, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, len(vars))
	for i := range vals {
		vals[i] = complex(1+float64(i), 0.5)
	}
	var buf EvalBuf
	if _, err := prog.EvalCInto(&buf, vals); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := prog.EvalCInto(&buf, vals); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalCInto allocates %g objects per run, want 0", allocs)
	}
}
