package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompileMatchesEvalC(t *testing.T) {
	tf := ladderTF(6)
	env := ladderEnv(6, 3)
	prog, vars, err := tf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Size() == 0 {
		t.Fatal("empty program")
	}
	cenv := map[string]complex128{}
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		var v complex128
		if name == "s" {
			v = complex(0, 2e9)
		} else {
			v = complex(env[name], 0)
		}
		vals[i] = v
		cenv[name] = v
	}
	want, err := tf.EvalC(cenv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.EvalC(vals)
	if err != nil {
		t.Fatal(err)
	}
	if d := got - want; math.Hypot(real(d), imag(d)) > 1e-12*(1+math.Hypot(real(want), imag(want))) {
		t.Fatalf("compiled %v vs tree %v", got, want)
	}
}

// Property: compiled evaluation equals tree evaluation for random
// expressions built from the constructor grammar.
func TestCompileEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	names := []string{"a", "b", "c", "d"}
	var build func(r *rand.Rand, depth int) Expr
	build = func(r *rand.Rand, depth int) Expr {
		if depth == 0 || r.Float64() < 0.3 {
			if r.Float64() < 0.5 {
				return C(r.Float64()*4 - 2)
			}
			return V(names[r.Intn(len(names))])
		}
		switch r.Intn(4) {
		case 0:
			return Add(build(r, depth-1), build(r, depth-1))
		case 1:
			return Mul(build(r, depth-1), build(r, depth-1))
		case 2:
			return Pow(build(r, depth-1), r.Intn(3)+1)
		default:
			return Sub(build(r, depth-1), build(r, depth-1))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := build(r, 5)
		prog, vars, err := e.Compile()
		if err != nil {
			return false
		}
		cenv := map[string]complex128{}
		vals := make([]complex128, len(vars))
		for i, n := range vars {
			v := complex(r.Float64()*2+0.5, r.Float64())
			vals[i] = v
			cenv[n] = v
		}
		want, err1 := e.EvalC(cenv)
		got, err2 := prog.EvalC(vals)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		d := got - want
		return math.Hypot(real(d), imag(d)) <= 1e-9*(1+math.Hypot(real(want), imag(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestProgramVarIndex(t *testing.T) {
	e := Add(V("x"), Mul(V("y"), V("s")))
	prog, vars, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	if prog.VarIndex("s") < 0 || prog.VarIndex("zz") != -1 {
		t.Fatal("VarIndex misbehaves")
	}
	if got := prog.Vars(); len(got) != 3 {
		t.Fatalf("Vars = %v", got)
	}
	// Wrong value count errors.
	if _, err := prog.EvalC(make([]complex128, 1)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCompilePowNegative(t *testing.T) {
	e := Pow(V("x"), -2)
	prog, _, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.EvalC([]complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(got)-0.25) > 1e-15 || imag(got) != 0 {
		t.Fatalf("x^-2 at 2 = %v", got)
	}
}
