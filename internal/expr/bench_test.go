package expr

import (
	"math/rand"
	"testing"
)

// ladderTF builds an expression shaped like a Mason transfer function of
// an n-section ladder: nested sums of products with divisions.
func ladderTF(n int) Expr {
	s := V("s")
	h := One
	for i := 0; i < n; i++ {
		g := V(vname("g", i))
		c := V(vname("c", i))
		stage := Div(g, Add(g, Mul(s, c)))
		h = Mul(h, stage)
	}
	// A feedback-ish denominator coupling everything.
	return Div(h, Add(One, Mul(h, V("beta"))))
}

func vname(p string, i int) string {
	return p + string(rune('a'+i))
}

func ladderEnv(n int, seed int64) map[string]float64 {
	r := rand.New(rand.NewSource(seed))
	env := map[string]float64{"beta": 0.25}
	for i := 0; i < n; i++ {
		env[vname("g", i)] = 1e-3 * (1 + r.Float64())
		env[vname("c", i)] = 1e-12 * (1 + r.Float64())
	}
	return env
}

func BenchmarkEvalCTree(b *testing.B) {
	tf := ladderTF(8)
	env := ladderEnv(8, 1)
	cenv := map[string]complex128{}
	for k, v := range env {
		cenv[k] = complex(v, 0)
	}
	cenv["s"] = complex(0, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tf.EvalC(cenv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCCompiled(b *testing.B) {
	tf := ladderTF(8)
	env := ladderEnv(8, 1)
	prog, vars, err := tf.Compile()
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		if name == "s" {
			vals[i] = complex(0, 1e9)
		} else {
			vals[i] = complex(env[name], 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.EvalC(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCInto(b *testing.B) {
	tf := ladderTF(8)
	env := ladderEnv(8, 1)
	prog, vars, err := tf.Compile()
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]complex128, len(vars))
	for i, name := range vars {
		if name == "s" {
			vals[i] = complex(0, 1e9)
		} else {
			vals[i] = complex(env[name], 0)
		}
	}
	var buf EvalBuf
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.EvalCInto(&buf, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiff(b *testing.B) {
	tf := ladderTF(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tf.Diff("ga")
	}
}
