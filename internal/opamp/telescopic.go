package opamp

import (
	"fmt"
	"math"

	"pipesyn/internal/netlist"
	"pipesyn/internal/pdk"
)

// TelescopicSizing is the design-variable vector of a single-stage
// telescopic cascode OTA with a simple PMOS mirror load: NMOS input pair,
// NMOS cascodes, long-channel PMOS mirror, mirrored tail. One high-
// impedance node means no Miller compensation — the load capacitor is the
// compensation — so for the relaxed later pipeline stages it reaches the
// same bandwidth at a fraction of the two-stage OTA's current. Its gain
// tops out near gm1·ro(PMOS), which is why the 13-bit front stage still
// needs the two-stage Miller amplifier: the ablation benchmark quantifies
// exactly this trade.
type TelescopicSizing struct {
	W1, L1 float64 // input pair
	W3, L3 float64 // NMOS cascodes
	W5, L5 float64 // PMOS mirror (long channel for output resistance)
	KTail  float64 // tail ratio: Itail = KTail·IRef
	IRef   float64
	VBN    float64 // cascode gate bias
}

// TeleVarNames labels TelescopicSizing.Vector entries.
func TeleVarNames() []string {
	return []string{"W1", "L1", "W3", "L3", "W5", "L5", "KTail", "IRef", "VBN"}
}

// Vector flattens the sizing for an optimizer.
func (s TelescopicSizing) Vector() []float64 {
	return []float64{s.W1, s.L1, s.W3, s.L3, s.W5, s.L5, s.KTail, s.IRef, s.VBN}
}

// TeleFromVector rebuilds a telescopic sizing from a vector.
func TeleFromVector(v []float64) (TelescopicSizing, error) {
	if len(v) != 9 {
		return TelescopicSizing{}, fmt.Errorf("opamp: telescopic vector needs 9 entries, got %d", len(v))
	}
	return TelescopicSizing{
		W1: v[0], L1: v[1], W3: v[2], L3: v[3], W5: v[4], L5: v[5],
		KTail: v[6], IRef: v[7], VBN: v[8],
	}, nil
}

// Clamp bounds the telescopic variables.
func (s TelescopicSizing) Clamp(p *pdk.Process) TelescopicSizing {
	c := s
	c.W1, c.L1 = p.ClampW(s.W1), p.ClampL(s.L1)
	c.W3, c.L3 = p.ClampW(s.W3), p.ClampL(s.L3)
	c.W5, c.L5 = p.ClampW(s.W5), p.ClampL(s.L5)
	c.KTail = clamp(s.KTail, 0.2, 100)
	c.IRef = clamp(s.IRef, 1e-6, 5e-3)
	c.VBN = clamp(s.VBN, 0.6, p.VDD-0.3)
	return c
}

// BuildTelescopic appends the telescopic OTA to a circuit with the same
// port convention as Build (inp, inn, out, vdd).
func BuildTelescopic(c *netlist.Circuit, p *pdk.Process, s TelescopicSizing, prefix string) {
	n := func(base string) string { return prefix + base }
	mos := func(name, d, g, src, b, model string, w, l float64) *netlist.Element {
		return &netlist.Element{
			Name: prefix + name, Type: netlist.MOS,
			Nodes: []string{d, g, src, b}, Model: model,
			Params: map[string]float64{"w": w, "l": l},
		}
	}
	// Input pair.
	c.MustAdd(mos("m1", n("d1"), PortInN, n("tail"), "0", "nch", s.W1, s.L1))
	c.MustAdd(mos("m2", n("d2"), PortInP, n("tail"), "0", "nch", s.W1, s.L1))
	// NMOS cascodes with a shared gate bias. The inverting-input branch
	// (m1/m3) drives the output directly; the mirror diode hangs on the
	// inp branch so that out falls when inn rises — the polarity negative
	// feedback needs.
	c.MustAdd(mos("m3", PortOut, n("vbn"), n("d1"), "0", "nch", s.W3, s.L3))
	c.MustAdd(mos("m4", n("x1"), n("vbn"), n("d2"), "0", "nch", s.W3, s.L3))
	// PMOS mirror load, diode on x1.
	c.MustAdd(mos("m5", n("x1"), n("x1"), PortVDD, PortVDD, "pch", s.W5, s.L5))
	c.MustAdd(mos("m6", PortOut, n("x1"), PortVDD, PortVDD, "pch", s.W5, s.L5))
	// Bias chain: reference diode + tail mirror (same style as Build).
	c.MustAdd(mos("m7", n("bn"), n("bn"), "0", "0", "nch", refW, refL))
	c.MustAdd(mos("m8", n("tail"), n("bn"), "0", "0", "nch", s.KTail*refW, refL))
	c.MustAdd(&netlist.Element{
		Name: prefix + "iref", Type: netlist.ISource,
		Nodes: []string{PortVDD, n("bn")},
		Src:   &netlist.Source{DC: s.IRef},
	})
	c.MustAdd(&netlist.Element{
		Name: prefix + "vbn", Type: netlist.VSource,
		Nodes: []string{n("vbn"), "0"},
		Src:   &netlist.Source{DC: s.VBN},
	})
}

// InitialTelescopic derives the designer-equation starting point for the
// telescopic OTA: gm1 from GBW·CL directly (the load is the compensation).
func InitialTelescopic(p *pdk.Process, spec BlockSpec) TelescopicSizing {
	const vov = 0.2
	cl := spec.CLoad + spec.CFeed
	gm1 := 2 * math.Pi * spec.GBW * cl
	itail := gm1 * vov
	if sr := spec.SR * cl; sr > itail {
		itail = sr
	}
	iref := itail / 4
	if iref < 2e-6 {
		iref = 2e-6
	}
	wl := func(gm, id, kp float64) float64 { return gm * gm / (2 * kp * id) }
	l1 := 0.35e-6
	w1 := wl(gm1, itail/2, p.NMOS.KP) * l1
	// Cascodes sized like the pair; mirror long for output resistance.
	l5 := 2e-6
	gm5 := gm1 / 2
	w5 := wl(gm5, itail/2, p.PMOS.KP) * l5
	s := TelescopicSizing{
		W1: w1, L1: l1,
		W3: w1, L3: l1,
		W5: w5, L5: l5,
		KTail: itail / iref,
		IRef:  iref,
		// Cascode gate: high enough that the pair's drains sit a few
		// hundred millivolts above the tail node (body effect raises the
		// thresholds of the stacked devices).
		VBN: 1.75,
	}
	return s.Clamp(p)
}

// AnalyzeTelescopic evaluates the closed-form metrics of the sizing.
func AnalyzeTelescopic(p *pdk.Process, s TelescopicSizing, cl float64) Equations {
	const vov = 0.2
	itail := s.KTail * s.IRef
	id := itail / 2
	gm1 := math.Sqrt(2 * p.NMOS.KP * (s.W1 / s.L1) * id)
	gm3 := math.Sqrt(2 * p.NMOS.KP * (s.W3 / s.L3) * id)
	lam := func(base, l float64) float64 { return base * 0.25e-6 / l }
	gds2 := lam(p.NMOS.Lambda, s.L1) * id
	gds4 := lam(p.NMOS.Lambda, s.L3) * id
	gds6 := lam(p.PMOS.Lambda, s.L5) * id
	// Cascode boosts the NMOS side: Rn ≈ gm3/(gds2·gds4); the simple
	// mirror's ro dominates the output node.
	gn := gds2 * gds4 / gm3
	rout := 1 / (gn + gds6)
	e := Equations{GM1: gm1, GM5: gm3}
	e.A0 = gm1 * rout
	e.GBW = gm1 / (2 * math.Pi * cl)
	// Non-dominant pole at the cascode source node: gm3/Cpar with
	// Cpar ≈ Cgs3 + Cdb1.
	cpar := (2.0/3.0)*p.NMOS.Cox*s.W3*s.L3 + p.NMOS.CJW*s.W1
	e.P2 = gm3 / (2 * math.Pi * cpar)
	e.PM = 90 - math.Atan(e.GBW/e.P2)*180/math.Pi
	e.SR = itail / cl
	e.Power = p.VDD * (s.IRef + itail)
	// Swing: the telescopic stacks four devices below VDD.
	e.SwingLo = s.VBN - p.NMOS.VTO + vov // cascode source + vov
	e.SwingHi = p.VDD - 2*vov
	return e
}
