package opamp

import (
	"math"
	"testing"

	"pipesyn/internal/device"
	"pipesyn/internal/netlist"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
)

func teleSpec() BlockSpec {
	// A relaxed, late-stage-like block: modest bandwidth and gain.
	return BlockSpec{
		GBW:   150e6,
		SR:    100e6,
		CLoad: 0.2e-12,
		CFeed: 0.1e-12,
		Gain:  500,
		Swing: 0.4,
	}
}

func teleBench(t *testing.T, p *pdk.Process, s TelescopicSizing) *netlist.Circuit {
	t.Helper()
	c := netlist.New("telescopic unity bench")
	p.Attach(c)
	c.MustAdd(&netlist.Element{Name: "vdd", Type: netlist.VSource,
		Nodes: []string{"vdd", "0"}, Src: &netlist.Source{DC: p.VDD}})
	c.MustAdd(&netlist.Element{Name: "vin", Type: netlist.VSource,
		Nodes: []string{"inp", "0"}, Src: &netlist.Source{DC: 1.4, ACMag: 1}})
	BuildTelescopic(c, p, s, "a.")
	c.MustAdd(&netlist.Element{Name: "rfb", Type: netlist.Resistor,
		Nodes: []string{"out", "inn"}, Value: 1})
	c.MustAdd(&netlist.Element{Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{"out", "0"}, Value: 0.3e-12})
	return c
}

func TestTelescopicBiases(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialTelescopic(p, teleSpec())
	c := teleBench(t, p, s)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatalf("telescopic failed to bias: %v", err)
	}
	vout, _ := op.Voltage("out")
	if math.Abs(vout-1.4) > 0.1 {
		t.Fatalf("follower output = %g, want ≈1.4", vout)
	}
	for _, name := range []string{"a.m1", "a.m2", "a.m3", "a.m4", "a.m5", "a.m6", "a.m7", "a.m8"} {
		mop, ok := op.MOS[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if mop.Region != device.Saturation {
			t.Errorf("%s in %v (VGS=%.3f VDS=%.3f)", name, mop.Region, mop.VGS, mop.VDS)
		}
	}
}

func TestTelescopicGainAndBandwidth(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialTelescopic(p, teleSpec())
	// Open-loop-ish AC check through the closed-loop OP: the unity
	// follower must track to well under 1% (gain ≫ 100) and keep a wide
	// bandwidth (single-stage).
	c := teleBench(t, p, s)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := sim.AC(c, op, sim.ACOpts{FStart: 1e4, FStop: 30e9, PointsPerDecade: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ac.Characterize("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.DCGainDB) > 0.2 {
		t.Fatalf("follower error %g dB implies open-loop gain below ~40 dB", m.DCGainDB)
	}
	if m.F3DBHz < 50e6 {
		t.Fatalf("bandwidth %g too low", m.F3DBHz)
	}
}

func TestTelescopicEquations(t *testing.T) {
	p := pdk.TSMC025()
	spec := teleSpec()
	s := InitialTelescopic(p, spec)
	eq := AnalyzeTelescopic(p, s, spec.CLoad+spec.CFeed)
	if eq.A0 < 300 {
		t.Fatalf("telescopic gain %g implausibly low", eq.A0)
	}
	if eq.GBW < 0.5*spec.GBW {
		t.Fatalf("GBW %g far below target %g", eq.GBW, spec.GBW)
	}
	if eq.PM < 45 {
		t.Fatalf("PM %g", eq.PM)
	}
	if eq.Power <= 0 {
		t.Fatal("no power")
	}
	// The headline of the topology ablation: for the same relaxed block,
	// a single-stage telescopic burns less than the two-stage Miller.
	miller := InitialSizing(p, spec)
	meq := Analyze(p, miller, spec.CLoad+spec.CFeed)
	if eq.Power >= meq.Power {
		t.Fatalf("telescopic %g W should undercut Miller %g W on a relaxed block",
			eq.Power, meq.Power)
	}
}

func TestTelescopicVectorRoundTrip(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialTelescopic(p, teleSpec())
	v := s.Vector()
	if len(v) != len(TeleVarNames()) {
		t.Fatalf("vector/name mismatch")
	}
	s2, err := TeleFromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatalf("round trip: %+v vs %+v", s, s2)
	}
	if _, err := TeleFromVector(v[:3]); err == nil {
		t.Fatal("expected length error")
	}
}

func TestTelescopicClamp(t *testing.T) {
	p := pdk.TSMC025()
	s := TelescopicSizing{W1: 1, L1: 0, W3: -1, L3: 99, W5: 1e-6, L5: 1e-6,
		KTail: 1e9, IRef: 1, VBN: 9}
	c := s.Clamp(p)
	if c.W1 != p.WMax || c.L1 != p.LMin || c.KTail != 100 || c.IRef != 5e-3 {
		t.Fatalf("clamp failed: %+v", c)
	}
	if c.VBN > p.VDD-0.3+1e-12 {
		t.Fatalf("VBN unclamped: %g", c.VBN)
	}
}
