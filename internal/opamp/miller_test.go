package opamp

import (
	"math"
	"testing"

	"pipesyn/internal/device"
	"pipesyn/internal/netlist"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
)

func testSpec() BlockSpec {
	return BlockSpec{
		GBW:   400e6,
		SR:    200e6, // 200 V/µs
		CLoad: 1e-12,
		CFeed: 0.3e-12,
		Gain:  50000,
		Swing: 0.5,
	}
}

// Build the amp in unity-gain feedback (out tied to inn through a large
// resistor for DC) and verify it biases with every device saturated.
func unityTestbench(t *testing.T, p *pdk.Process, s MillerSizing) *netlist.Circuit {
	t.Helper()
	c := netlist.New("unity follower")
	p.Attach(c)
	c.MustAdd(&netlist.Element{Name: "vdd", Type: netlist.VSource,
		Nodes: []string{"vdd", "0"}, Src: &netlist.Source{DC: p.VDD}})
	c.MustAdd(&netlist.Element{Name: "vin", Type: netlist.VSource,
		Nodes: []string{"inp", "0"}, Src: &netlist.Source{DC: 1.4, ACMag: 1}})
	Build(c, p, s, "a.")
	c.MustAdd(&netlist.Element{Name: "rfb", Type: netlist.Resistor,
		Nodes: []string{"out", "inn"}, Value: 1}) // hard unity feedback
	c.MustAdd(&netlist.Element{Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{"out", "0"}, Value: 1e-12})
	return c
}

func TestInitialSizingBiases(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialSizing(p, testSpec())
	c := unityTestbench(t, p, s)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatalf("amp failed to bias: %v", err)
	}
	vout, _ := op.Voltage("out")
	// Unity follower: output tracks the 1.4 V input closely.
	if math.Abs(vout-1.4) > 0.1 {
		t.Fatalf("follower output = %g, want ≈1.4", vout)
	}
	for _, name := range []string{"a.m1", "a.m2", "a.m3", "a.m4", "a.m5", "a.m6", "a.m7", "a.m8"} {
		mop, ok := op.MOS[name]
		if !ok {
			t.Fatalf("missing device %s", name)
		}
		if mop.Region != device.Saturation {
			t.Errorf("%s in %v, want saturation (ID=%g VGS=%g VDS=%g)",
				name, mop.Region, mop.ID, mop.VGS, mop.VDS)
		}
	}
	// Power in a plausible envelope for these specs (sub-50 mW).
	pw := op.SupplyPower(c)
	if pw <= 0 || pw > 50e-3 {
		t.Fatalf("supply power = %g W", pw)
	}
}

func TestInitialSizingMeetsEquationTargets(t *testing.T) {
	p := pdk.TSMC025()
	spec := testSpec()
	s := InitialSizing(p, spec)
	eq := Analyze(p, s, spec.CLoad+spec.CFeed)
	// The designer equations should land near their own targets.
	if eq.GBW < 0.5*spec.GBW {
		t.Fatalf("equation GBW %g below half the %g target", eq.GBW, spec.GBW)
	}
	if eq.PM < 45 {
		t.Fatalf("equation PM %g too low", eq.PM)
	}
	if eq.SR < 0.3*spec.SR {
		t.Fatalf("equation SR %g far below target %g", eq.SR, spec.SR)
	}
	if eq.A0 < 1000 {
		t.Fatalf("two-stage gain %g implausibly low", eq.A0)
	}
	if eq.Power <= 0 {
		t.Fatal("non-positive power")
	}
}

func TestACGainOfBiasedAmp(t *testing.T) {
	// Drive inp with AC in the unity bench and verify low-frequency gain
	// is ≈ 1 (follower) and rolls off beyond the loop bandwidth.
	p := pdk.TSMC025()
	s := InitialSizing(p, testSpec())
	c := unityTestbench(t, p, s)
	op, err := sim.OP(c, sim.DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := sim.AC(c, op, sim.ACOpts{FStart: 1e3, FStop: 100e9, PointsPerDecade: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ac.Characterize("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.DCGainDB) > 0.2 {
		t.Fatalf("follower gain = %g dB, want ≈0", m.DCGainDB)
	}
	if m.F3DBHz < 50e6 {
		t.Fatalf("follower bandwidth = %g, implausibly low", m.F3DBHz)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialSizing(p, testSpec())
	v := s.Vector()
	if len(v) != len(VarNames()) {
		t.Fatalf("vector/name length mismatch %d vs %d", len(v), len(VarNames()))
	}
	s2, err := FromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, s2)
	}
	if _, err := FromVector(v[:5]); err == nil {
		t.Fatal("expected length error")
	}
}

func TestClamp(t *testing.T) {
	p := pdk.TSMC025()
	s := MillerSizing{W1: 1, L1: 0, W3: -1, L3: 99, W5: 1e-6, L5: 1e-6,
		KTail: 1e6, K2: 0, IRef: 1, CC: 1, RZ: -5}
	c := s.Clamp(p)
	if c.W1 != p.WMax || c.L1 != p.LMin || c.W3 != p.WMin || c.L3 != p.LMax {
		t.Fatalf("geometry clamp failed: %+v", c)
	}
	if c.KTail != 100 || c.K2 != 0.2 || c.IRef != 5e-3 || c.CC != p.CapMax || c.RZ != 1 {
		t.Fatalf("electrical clamp failed: %+v", c)
	}
}

func TestSupplyCurrent(t *testing.T) {
	s := MillerSizing{KTail: 4, K2: 10, IRef: 10e-6}
	want := 10e-6 * 15
	if got := s.SupplyCurrent(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("supply current = %g, want %g", got, want)
	}
}

// Slewing: a large differential step at the follower input drives the
// output at a finite ramp rate ≈ Itail/Cc.
func TestSlewRateObservable(t *testing.T) {
	p := pdk.TSMC025()
	s := InitialSizing(p, testSpec())
	c := netlist.New("slew bench")
	p.Attach(c)
	c.MustAdd(&netlist.Element{Name: "vdd", Type: netlist.VSource,
		Nodes: []string{"vdd", "0"}, Src: &netlist.Source{DC: p.VDD}})
	src := &netlist.Source{DC: 1.2, Kind: netlist.SrcPulse}
	src.Pulse.V1, src.Pulse.V2 = 1.2, 1.9
	src.Pulse.TD, src.Pulse.TR, src.Pulse.TF = 1e-9, 50e-12, 50e-12
	src.Pulse.PW, src.Pulse.PER = 1, 2
	c.MustAdd(&netlist.Element{Name: "vin", Type: netlist.VSource,
		Nodes: []string{"inp", "0"}, Src: src})
	Build(c, p, s, "a.")
	c.MustAdd(&netlist.Element{Name: "rfb", Type: netlist.Resistor,
		Nodes: []string{"out", "inn"}, Value: 1})
	c.MustAdd(&netlist.Element{Name: "cl", Type: netlist.Capacitor,
		Nodes: []string{"out", "0"}, Value: 1e-12})
	tr, err := sim.Tran(c, sim.TranOpts{TStop: 20e-9, TStep: 20e-12})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := tr.At("out", 0.9e-9)
	vEnd, _ := tr.At("out", 19e-9)
	if math.Abs(v0-1.2) > 0.1 {
		t.Fatalf("initial level %g", v0)
	}
	if math.Abs(vEnd-1.9) > 0.1 {
		t.Fatalf("final level %g; slewing never completed", vEnd)
	}
}
