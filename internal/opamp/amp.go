package opamp

import (
	"fmt"
	"pipesyn/internal/device"

	"pipesyn/internal/netlist"
	"pipesyn/internal/pdk"
)

// Amp abstracts a synthesizable amplifier cell: anything that can render
// itself into a netlist, expose its design variables as a flat vector, and
// report its closed-form designer equations can ride the sizing engine —
// the property that made NeoCircuit-style cell synthesis general, and that
// lets this project's optimizer drive both the two-stage Miller OTA and
// the telescopic cascode with the same code.
type Amp interface {
	// Build appends the amplifier to a circuit using the shared port
	// convention (PortInP, PortInN, PortOut, PortVDD), prefixing internal
	// nodes and element names.
	Build(c *netlist.Circuit, p *pdk.Process, prefix string)
	// Vector flattens the design variables.
	Vector() []float64
	// WithVector returns a new Amp of the same topology with the given
	// variables.
	WithVector(v []float64) (Amp, error)
	// Bound clamps every variable to its manufacturable range.
	Bound(p *pdk.Process) Amp
	// Analyze evaluates the designer's closed-form equations driving cl
	// farads of load.
	Analyze(p *pdk.Process, cl float64) Equations
	// SwingWindow extracts the output range with every device saturated
	// from a DC operating point (mos keyed by prefixed element name).
	SwingWindow(mos map[string]device.OP, prefix string, vdd float64) (lo, hi float64)
	// Topology names the cell class.
	Topology() Topology
}

// Topology enumerates the supported amplifier cells.
type Topology int

const (
	Miller Topology = iota
	Telescopic
)

func (t Topology) String() string {
	switch t {
	case Miller:
		return "two-stage-miller"
	case Telescopic:
		return "telescopic-cascode"
	}
	return "?"
}

// Initial returns the designer-equation starting sizing of a topology.
func Initial(t Topology, p *pdk.Process, spec BlockSpec) (Amp, error) {
	switch t {
	case Miller:
		return InitialSizing(p, spec), nil
	case Telescopic:
		return InitialTelescopic(p, spec), nil
	}
	return nil, fmt.Errorf("opamp: unknown topology %d", t)
}

// MillerSizing implements Amp.

// Build renders the two-stage OTA.
func (s MillerSizing) Build(c *netlist.Circuit, p *pdk.Process, prefix string) {
	Build(c, p, s, prefix)
}

// WithVector rebuilds the sizing from optimizer variables.
func (s MillerSizing) WithVector(v []float64) (Amp, error) { return FromVector(v) }

// Bound clamps the sizing (Amp interface form of Clamp).
func (s MillerSizing) Bound(p *pdk.Process) Amp { return s.Clamp(p) }

// SwingWindow reads the two output devices: the NMOS sink m6 sets the
// floor, the PMOS common-source m5 sets the ceiling.
func (s MillerSizing) SwingWindow(mos map[string]device.OP, prefix string, vdd float64) (float64, float64) {
	return mos[prefix+"m6"].VOV, vdd - mos[prefix+"m5"].VOV
}

// Analyze evaluates the Miller designer equations.
func (s MillerSizing) Analyze(p *pdk.Process, cl float64) Equations {
	return Analyze(p, s, cl)
}

// Topology identifies the cell class.
func (s MillerSizing) Topology() Topology { return Miller }

// TelescopicSizing implements Amp.

// Build renders the telescopic OTA.
func (s TelescopicSizing) Build(c *netlist.Circuit, p *pdk.Process, prefix string) {
	BuildTelescopic(c, p, s, prefix)
}

// WithVector rebuilds the sizing from optimizer variables.
func (s TelescopicSizing) WithVector(v []float64) (Amp, error) { return TeleFromVector(v) }

// Bound clamps the sizing (Amp interface form of Clamp).
func (s TelescopicSizing) Bound(p *pdk.Process) Amp { return s.Clamp(p) }

// SwingWindow reads the telescopic output stack: the floor is the cascode
// source level plus its overdrive (four stacked devices), the ceiling one
// PMOS overdrive below the rail.
func (s TelescopicSizing) SwingWindow(mos map[string]device.OP, prefix string, vdd float64) (float64, float64) {
	m3 := mos[prefix+"m3"]
	// The cascode's source sits VGS3 below the gate bias; the output can
	// fall to that level plus the cascode overdrive.
	lo := s.VBN - m3.VGS + m3.VOV
	hi := vdd - mos[prefix+"m6"].VOV
	return lo, hi
}

// Analyze evaluates the telescopic designer equations.
func (s TelescopicSizing) Analyze(p *pdk.Process, cl float64) Equations {
	return AnalyzeTelescopic(p, s, cl)
}

// Topology identifies the cell class.
func (s TelescopicSizing) Topology() Topology { return Telescopic }

// Interface conformance.
var (
	_ Amp = MillerSizing{}
	_ Amp = TelescopicSizing{}
)
