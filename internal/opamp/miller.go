// Package opamp generates transistor-level operational amplifiers for the
// MDAC residue stages. The workhorse is a classic two-stage Miller OTA
// (NMOS input pair, PMOS mirror load, PMOS common-source second stage,
// all bias currents derived from one reference through NMOS mirrors) —
// the topology class the paper's MDACs use, with enough open-loop gain for
// a 13-bit front stage when properly sized.
//
// The package also provides the designer's analytic sizing equations: an
// initial sizing derived from the block spec (gm from GBW·Cc, currents
// from slew rate, pole placement for phase margin). The synthesis engine
// starts from this point and refines it — exactly the division of labour
// the paper's hybrid methodology prescribes.
package opamp

import (
	"fmt"
	"math"

	"pipesyn/internal/netlist"
	"pipesyn/internal/pdk"
)

// MillerSizing is the design-variable vector of the two-stage OTA.
type MillerSizing struct {
	W1, L1 float64 // input differential pair (NMOS), per device
	W3, L3 float64 // PMOS mirror load, per device
	W5, L5 float64 // PMOS second-stage common source
	KTail  float64 // tail current mirror ratio: Itail = KTail·IRef
	K2     float64 // second-stage sink ratio:   I2   = K2·IRef
	IRef   float64 // bias reference current, A
	CC     float64 // Miller compensation capacitor, F
	RZ     float64 // zero-nulling resistor, Ω
}

// Vector flattens the sizing for the optimizer; FromVector inverts it.
// All geometric quantities are optimized in log space by the caller.
func (s MillerSizing) Vector() []float64 {
	return []float64{s.W1, s.L1, s.W3, s.L3, s.W5, s.L5, s.KTail, s.K2, s.IRef, s.CC, s.RZ}
}

// VarNames labels the Vector entries, index-aligned.
func VarNames() []string {
	return []string{"W1", "L1", "W3", "L3", "W5", "L5", "KTail", "K2", "IRef", "CC", "RZ"}
}

// FromVector rebuilds a sizing from an optimizer vector.
func FromVector(v []float64) (MillerSizing, error) {
	if len(v) != 11 {
		return MillerSizing{}, fmt.Errorf("opamp: sizing vector needs 11 entries, got %d", len(v))
	}
	return MillerSizing{
		W1: v[0], L1: v[1], W3: v[2], L3: v[3], W5: v[4], L5: v[5],
		KTail: v[6], K2: v[7], IRef: v[8], CC: v[9], RZ: v[10],
	}, nil
}

// Clamp bounds every variable to its manufacturable range.
func (s MillerSizing) Clamp(p *pdk.Process) MillerSizing {
	c := s
	c.W1, c.L1 = p.ClampW(s.W1), p.ClampL(s.L1)
	c.W3, c.L3 = p.ClampW(s.W3), p.ClampL(s.L3)
	c.W5, c.L5 = p.ClampW(s.W5), p.ClampL(s.L5)
	c.KTail = clamp(s.KTail, 0.2, 100)
	c.K2 = clamp(s.K2, 0.2, 200)
	c.IRef = clamp(s.IRef, 1e-6, 5e-3)
	c.CC = p.ClampC(s.CC)
	c.RZ = clamp(s.RZ, 1, 1e6)
	return c
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SupplyCurrent returns the nominal total supply current from the sizing
// (reference + tail + second stage), before simulation refinement.
func (s MillerSizing) SupplyCurrent() float64 {
	return s.IRef * (1 + s.KTail + s.K2)
}

// Ports of the generated amplifier.
const (
	PortInP = "inp"
	PortInN = "inn"
	PortOut = "out"
	PortVDD = "vdd"
)

// Fixed diode-reference geometry: the mirror ratios, not the diode, are
// the design variables.
const (
	refW = 5e-6
	refL = 1e-6
)

// Build appends the amplifier elements to the circuit. Internal nodes are
// prefixed to allow several amps per netlist. The caller provides supply
// and input-bias sources.
func Build(c *netlist.Circuit, p *pdk.Process, s MillerSizing, prefix string) {
	n := func(base string) string { return prefix + base }
	mos := func(name, d, g, src, b, model string, w, l float64) *netlist.Element {
		return &netlist.Element{
			Name: prefix + name, Type: netlist.MOS,
			Nodes: []string{d, g, src, b}, Model: model,
			Params: map[string]float64{"w": w, "l": l},
		}
	}
	// Input pair.
	c.MustAdd(mos("m1", n("x1"), PortInN, n("tail"), "0", "nch", s.W1, s.L1))
	c.MustAdd(mos("m2", n("x2"), PortInP, n("tail"), "0", "nch", s.W1, s.L1))
	// PMOS mirror load (diode on x1).
	c.MustAdd(mos("m3", n("x1"), n("x1"), PortVDD, PortVDD, "pch", s.W3, s.L3))
	c.MustAdd(mos("m4", n("x2"), n("x1"), PortVDD, PortVDD, "pch", s.W3, s.L3))
	// Second stage: PMOS common source from x2, NMOS sink.
	c.MustAdd(mos("m5", PortOut, n("x2"), PortVDD, PortVDD, "pch", s.W5, s.L5))
	c.MustAdd(mos("m6", PortOut, n("bn"), "0", "0", "nch", s.K2*refW, refL))
	// Bias chain: reference diode + tail mirror.
	c.MustAdd(mos("m7", n("bn"), n("bn"), "0", "0", "nch", refW, refL))
	c.MustAdd(mos("m8", n("tail"), n("bn"), "0", "0", "nch", s.KTail*refW, refL))
	c.MustAdd(&netlist.Element{
		Name: prefix + "iref", Type: netlist.ISource,
		Nodes: []string{PortVDD, n("bn")},
		Src:   &netlist.Source{DC: s.IRef},
	})
	// Miller compensation with zero-nulling resistor: x2 → rz → cc → out.
	c.MustAdd(&netlist.Element{
		Name: prefix + "rz", Type: netlist.Resistor,
		Nodes: []string{n("x2"), n("z")}, Value: s.RZ,
	})
	c.MustAdd(&netlist.Element{
		Name: prefix + "cc", Type: netlist.Capacitor,
		Nodes: []string{n("z"), PortOut}, Value: s.CC,
	})
}

// BlockSpec is the subset of an MDAC spec the amplifier cares about.
type BlockSpec struct {
	GBW   float64 // amplifier unity-gain bandwidth target, Hz
	SR    float64 // slew rate target, V/s
	CLoad float64 // total load at the output during hold, F
	CFeed float64 // feedback capacitor (adds to the load through the network)
	Gain  float64 // open-loop DC gain target, V/V
	Swing float64 // output swing (peak) around mid-supply, V
}

// InitialSizing computes the designer's-equation starting point:
//
//	Cc   ≈ 0.4·CL          (Miller ratio for PM ≈ 60–70°)
//	gm1  = 2π·GBW·Cc
//	Itail = max(gm1·Vov, SR·Cc)
//	gm5  = 2.2·2π·GBW·CL   (second pole beyond crossover)
//	Rz   = 1/gm5
//
// with W/L from the square law at Vov ≈ 0.2 V.
func InitialSizing(p *pdk.Process, spec BlockSpec) MillerSizing {
	const vov = 0.2
	cl := spec.CLoad + spec.CFeed
	cc := 0.4 * cl
	if cc < 2*p.CapMin {
		cc = 2 * p.CapMin
	}
	gm1 := 2 * math.Pi * spec.GBW * cc
	itail := gm1 * vov // two branches at Itail/2 each: gm = Itail/Vov
	if sr := spec.SR * cc; sr > itail {
		itail = sr
	}
	gm5 := 2.2 * 2 * math.Pi * spec.GBW * cl
	i2 := gm5 * vov / 2

	iref := itail / 4 // tail ratio 4 keeps the reference branch cheap
	if iref < 2e-6 {
		iref = 2e-6
	}
	wl := func(gm, id, kp float64) float64 { return gm * gm / (2 * kp * id) }
	l1 := 0.5e-6 // moderate length for gain without killing speed
	w1 := wl(gm1, itail/2, p.NMOS.KP) * l1
	l3 := 0.5e-6
	gm3 := gm1 / 2 // mirror gm is uncritical; size for matching headroom
	w3 := wl(gm3, itail/2, p.PMOS.KP) * l3
	l5 := 0.35e-6
	w5 := wl(gm5, i2, p.PMOS.KP) * l5

	s := MillerSizing{
		W1: w1, L1: l1,
		W3: w3, L3: l3,
		W5: w5, L5: l5,
		KTail: itail / iref,
		K2:    i2 / iref,
		IRef:  iref,
		CC:    cc,
		RZ:    1 / gm5,
	}
	return s.Clamp(p)
}

// Equations evaluates the textbook closed-form performance of the sizing —
// the pure "equation-based" evaluation path that the paper contrasts with
// hybrid evaluation. No simulation is involved.
type Equations struct {
	GM1, GM5 float64
	A0       float64 // open-loop DC gain
	GBW      float64 // gm1/(2π·Cc)
	P2       float64 // second pole gm5/(2π·CL)
	PM       float64 // phase margin estimate, degrees
	SR       float64 // min(Itail/Cc, I2/CL)
	Power    float64 // VDD·(IRef+Itail+I2)
	SwingLo  float64
	SwingHi  float64
}

// Analyze computes the closed-form metrics for a sizing driving cl farads.
func Analyze(p *pdk.Process, s MillerSizing, cl float64) Equations {
	const vov = 0.2
	itail := s.KTail * s.IRef
	i2 := s.K2 * s.IRef
	gm1 := math.Sqrt(2 * p.NMOS.KP * (s.W1 / s.L1) * (itail / 2))
	gm5 := math.Sqrt(2 * p.PMOS.KP * (s.W5 / s.L5) * i2)
	// Output conductances with the λ·L scaling the device model uses.
	lam := func(base, l float64) float64 { return base * 0.25e-6 / l }
	gds2 := lam(p.NMOS.Lambda, s.L1) * itail / 2
	gds4 := lam(p.PMOS.Lambda, s.L3) * itail / 2
	gds5 := lam(p.PMOS.Lambda, s.L5) * i2
	gds6 := lam(p.NMOS.Lambda, refL) * i2
	a1 := gm1 / (gds2 + gds4)
	a2 := gm5 / (gds5 + gds6)
	e := Equations{GM1: gm1, GM5: gm5}
	e.A0 = a1 * a2
	e.GBW = gm1 / (2 * math.Pi * s.CC)
	e.P2 = gm5 / (2 * math.Pi * cl)
	e.PM = 90 - math.Atan(e.GBW/e.P2)*180/math.Pi
	srInt := itail / s.CC
	srOut := i2 / cl
	e.SR = math.Min(srInt, srOut)
	e.Power = p.VDD * (s.IRef + itail + i2)
	e.SwingLo = vov         // M6 needs Vov to stay saturated
	e.SwingHi = p.VDD - vov // M5 likewise
	return e
}
