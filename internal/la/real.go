// Package la provides the linear algebra used by the circuit simulator:
// real and complex LU factorization with partial pivoting, triangular
// solves, determinants, and a handful of vector helpers.
//
// Circuit matrices from modified nodal analysis are small (tens of rows)
// but re-factored at every Newton iteration on a sparsity pattern that
// never changes for a compiled circuit. Two paths share the dense
// row-major storage: the plain dense Doolittle LU below, and the
// structure-exploiting symbolic/numeric split in sparse.go, which
// analyzes the pattern once and then skips the provably-zero update and
// substitution work on every refactor.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorization meets a pivot that is exactly
// zero or numerically negligible relative to the matrix scale.
var ErrSingular = errors.New("la: singular matrix")

// Matrix is a dense row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j); this is the "stamp" primitive used
// throughout MNA assembly.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero clears every element in place, preserving the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("la: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .6g\t", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U with unit-diagonal L stored below the diagonal of lu and U on
// and above it.
//
// The zero value is a reusable factorization workspace: FactorInto grows
// its storage on demand and refactors in place, so a long-lived LU held
// by a solver loop (one Newton iteration, one frequency point) performs
// no heap allocation after the first call, even when successive matrices
// change size.
type LU struct {
	lu    *Matrix
	piv   []int
	signs int // +1 or -1, permutation parity for determinants
}

// Factor computes the LU decomposition of a (which is not modified).
// It returns ErrSingular when a pivot is smaller than roughly machine
// epsilon times the largest row magnitude. Hot paths that refactor at
// every iteration should hold an LU and call FactorInto instead.
func Factor(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// ensure readies the workspace for an n×n factorization, reusing the
// existing backing storage whenever it is large enough.
func (f *LU) ensure(n int) {
	if f.lu == nil {
		f.lu = &Matrix{}
	}
	f.lu.Rows, f.lu.Cols = n, n
	if cap(f.lu.Data) < n*n {
		f.lu.Data = make([]float64, n*n)
	} else {
		f.lu.Data = f.lu.Data[:n*n]
	}
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	} else {
		f.piv = f.piv[:n]
	}
}

// FactorInto recomputes the factorization of a inside f's workspace,
// allocating only when the workspace must grow. a is not modified. On
// ErrSingular the workspace contents are undefined but f remains usable
// for the next FactorInto call.
func (f *LU) FactorInto(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: Factor requires square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f.ensure(n)
	lu := f.lu
	copy(lu.Data, a.Data)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	// Scale reference for singularity detection.
	maxAbs := 0.0
	for _, v := range lu.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find max |element| in column k at/below row k.
		p := k
		pm := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if av := math.Abs(lu.At(i, k)); av > pm {
				pm, p = av, i
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := lu.Data[p*n:(p+1)*n], lu.Data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) * inv
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			rowI := lu.Data[i*n : (i+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	f.signs = sign
	return nil
}

// Solve returns x with A·x = b. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.lu.Rows)
	f.SolveInto(x, b)
	return x
}

// SolveInto writes the solution of A·x = b into x without allocating.
// x must not alias b (the permuted load would corrupt the right-hand
// side); b is not modified.
func (f *LU) SolveInto(x, b []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("la: Solve dimension mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns det(A) from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.signs)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSystem is a convenience wrapper: factor a and solve for b.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// NormInf returns the infinity norm (max absolute entry) of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
