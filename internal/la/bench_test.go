package la

import (
	"math/rand"
	"testing"
)

func randomSystem(n int, seed int64) (*Matrix, []float64) {
	r := rand.New(rand.NewSource(seed))
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := r.Float64()*2 - 1
				a.Set(i, j, v)
				rowSum += v
			}
		}
		a.Set(i, i, rowSum+2)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64()
	}
	return a, b
}

// MNA matrices in this project are ~20×20; benchmark that regime using
// the workspace-reusing path every solver hot loop runs on.
func BenchmarkFactorSolve20(b *testing.B) {
	a, rhs := randomSystem(20, 1)
	var f LU
	x := make([]float64, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.FactorInto(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}

// BenchmarkFactorSolve20Alloc keeps the legacy allocate-per-call path
// measured so the workspace win stays visible in BENCH_kernels.json.
func BenchmarkFactorSolve20Alloc(b *testing.B) {
	a, rhs := randomSystem(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factor(a)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Solve(rhs)
	}
}

func complexSystem() (*CMatrix, []complex128) {
	ar, rhs := randomSystem(20, 2)
	a := NewCMatrix(20, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			a.Set(i, j, complex(ar.At(i, j), 0.1*ar.At(j, i)))
		}
	}
	cb := make([]complex128, 20)
	for i := range cb {
		cb[i] = complex(rhs[i], 0)
	}
	return a, cb
}

func BenchmarkCFactorSolve20(b *testing.B) {
	a, cb := complexSystem()
	var f CLU
	x := make([]complex128, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.FactorInto(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, cb)
	}
}

func BenchmarkCFactorSolve20Alloc(b *testing.B) {
	a, cb := complexSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := CFactor(a)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Solve(cb)
	}
}
