package la

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix used by the AC analysis,
// where every frequency point solves (G + jωC)·x = b.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: invalid dimensions %d×%d", r, c))
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns element (i,j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero clears all entries in place.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	out := NewCMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M·x.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("la: MulVec dimension mismatch")
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// CLU is the complex analogue of LU. Like LU, the zero value is a
// reusable workspace: FactorInto refactors in place, so an AC or noise
// sweep holding one CLU allocates nothing after the first frequency.
type CLU struct {
	lu    *CMatrix
	piv   []int
	signs int
}

// CFactor computes a partial-pivot LU factorization of the complex matrix
// a (not modified). Sweeps that refactor at every frequency point should
// hold a CLU and call FactorInto instead.
func CFactor(a *CMatrix) (*CLU, error) {
	f := &CLU{}
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// ensure readies the workspace for an n×n factorization, reusing the
// existing backing storage whenever it is large enough.
func (f *CLU) ensure(n int) {
	if f.lu == nil {
		f.lu = &CMatrix{}
	}
	f.lu.Rows, f.lu.Cols = n, n
	if cap(f.lu.Data) < n*n {
		f.lu.Data = make([]complex128, n*n)
	} else {
		f.lu.Data = f.lu.Data[:n*n]
	}
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	} else {
		f.piv = f.piv[:n]
	}
}

// FactorInto recomputes the factorization of a inside f's workspace,
// allocating only when the workspace must grow. a is not modified. On
// ErrSingular the workspace contents are undefined but f remains usable
// for the next FactorInto call.
func (f *CLU) FactorInto(a *CMatrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: CFactor requires square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f.ensure(n)
	lu := f.lu
	copy(lu.Data, a.Data)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	maxAbs := 0.0
	for _, v := range lu.Data {
		if av := cmplx.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		p := k
		pm := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if av := cmplx.Abs(lu.At(i, k)); av > pm {
				pm, p = av, i
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := lu.Data[p*n:(p+1)*n], lu.Data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) * inv
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			rowI := lu.Data[i*n : (i+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	f.signs = sign
	return nil
}

// Solve returns x with A·x = b.
func (f *CLU) Solve(b []complex128) []complex128 {
	x := make([]complex128, f.lu.Rows)
	f.SolveInto(x, b)
	return x
}

// SolveInto writes the solution of A·x = b into x without allocating.
// x must not alias b; b is not modified.
func (f *CLU) SolveInto(x, b []complex128) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("la: Solve dimension mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns det(A).
func (f *CLU) Det() complex128 {
	d := complex(float64(f.signs), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// CSolveSystem factors a and solves A·x = b in one call.
func CSolveSystem(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := CFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
