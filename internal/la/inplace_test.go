package la

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Diagonal dominance keeps random systems comfortably nonsingular.
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func randCMatrix(rng *rand.Rand, n int) *CMatrix {
	m := NewCMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, complex(float64(n), 0))
	}
	return m
}

// TestFactorIntoMatchesFactor checks that the reusable workspace path
// produces exactly the solutions and determinants of the legacy
// allocate-per-call API on random systems of varying size, including
// reuse of one workspace across different matrix sizes.
func TestFactorIntoMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ws LU
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(24)
		a := randMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		legacy, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: Factor: %v", trial, err)
		}
		if err := ws.FactorInto(a); err != nil {
			t.Fatalf("trial %d: FactorInto: %v", trial, err)
		}
		want := legacy.Solve(b)
		got := make([]float64, n)
		ws.SolveInto(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): solution[%d] = %g, legacy %g", trial, n, i, got[i], want[i])
			}
		}
		if d, dw := legacy.Det(), ws.Det(); d != dw {
			t.Fatalf("trial %d: Det %g != legacy %g", trial, dw, d)
		}
	}
}

func TestCFactorIntoMatchesCFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ws CLU
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(24)
		a := randCMatrix(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		legacy, err := CFactor(a)
		if err != nil {
			t.Fatalf("trial %d: CFactor: %v", trial, err)
		}
		if err := ws.FactorInto(a); err != nil {
			t.Fatalf("trial %d: FactorInto: %v", trial, err)
		}
		want := legacy.Solve(b)
		got := make([]complex128, n)
		ws.SolveInto(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): solution[%d] = %g, legacy %g", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestFactorIntoOneByOne(t *testing.T) {
	var ws LU
	a := NewMatrix(1, 1)
	a.Set(0, 0, 4)
	if err := ws.FactorInto(a); err != nil {
		t.Fatalf("FactorInto: %v", err)
	}
	x := make([]float64, 1)
	ws.SolveInto(x, []float64{8})
	if x[0] != 2 {
		t.Fatalf("1×1 solve: got %g, want 2", x[0])
	}
	if d := ws.Det(); d != 4 {
		t.Fatalf("1×1 det: got %g, want 4", d)
	}

	var cws CLU
	ca := NewCMatrix(1, 1)
	ca.Set(0, 0, complex(0, 2))
	if err := cws.FactorInto(ca); err != nil {
		t.Fatalf("complex FactorInto: %v", err)
	}
	cx := make([]complex128, 1)
	cws.SolveInto(cx, []complex128{complex(0, 4)})
	if cx[0] != 2 {
		t.Fatalf("complex 1×1 solve: got %g, want 2", cx[0])
	}
}

// TestFactorIntoSingularRecovers checks that a singular pivot reports
// ErrSingular, and that the same workspace factors a healthy matrix
// afterwards (the documented contract: workspace stays usable).
func TestFactorIntoSingularRecovers(t *testing.T) {
	var ws LU
	sing := NewMatrix(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 2)
	sing.Set(1, 0, 2)
	sing.Set(1, 1, 4) // rank 1
	if err := ws.FactorInto(sing); err != ErrSingular {
		t.Fatalf("singular matrix: got %v, want ErrSingular", err)
	}
	zero := NewMatrix(3, 3)
	if err := ws.FactorInto(zero); err != ErrSingular {
		t.Fatalf("zero matrix: got %v, want ErrSingular", err)
	}
	good := NewMatrix(2, 2)
	good.Set(0, 0, 2)
	good.Set(1, 1, 3)
	if err := ws.FactorInto(good); err != nil {
		t.Fatalf("healthy refactor after singular: %v", err)
	}
	x := make([]float64, 2)
	ws.SolveInto(x, []float64{4, 9})
	if x[0] != 2 || x[1] != 3 {
		t.Fatalf("solve after recovery: got %v, want [2 3]", x)
	}

	var cws CLU
	csing := NewCMatrix(2, 2)
	csing.Set(0, 0, 1)
	csing.Set(0, 1, complex(0, 1))
	csing.Set(1, 0, 2)
	csing.Set(1, 1, complex(0, 2))
	if err := cws.FactorInto(csing); err != ErrSingular {
		t.Fatalf("complex singular: got %v, want ErrSingular", err)
	}
	cgood := NewCMatrix(1, 1)
	cgood.Set(0, 0, complex(0, 1))
	if err := cws.FactorInto(cgood); err != nil {
		t.Fatalf("complex refactor after singular: %v", err)
	}
}

func TestFactorIntoNonSquare(t *testing.T) {
	var ws LU
	if err := ws.FactorInto(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square real matrix accepted")
	}
	var cws CLU
	if err := cws.FactorInto(NewCMatrix(3, 2)); err == nil {
		t.Fatal("non-square complex matrix accepted")
	}
}

// TestFactorIntoDoesNotAllocateSteadyState pins down the acceptance
// criterion directly: once the workspace is sized, factor+solve cycles
// on same-size systems are allocation-free.
func TestFactorIntoDoesNotAllocateSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 20
	a := randMatrix(rng, n)
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ws LU
	if err := ws.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ws.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		ws.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("real factor+solve allocates %g objects per run, want 0", allocs)
	}

	ca := randCMatrix(rng, n)
	cb := make([]complex128, n)
	cx := make([]complex128, n)
	var cws CLU
	if err := cws.FactorInto(ca); err != nil {
		t.Fatal(err)
	}
	callocs := testing.AllocsPerRun(100, func() {
		if err := cws.FactorInto(ca); err != nil {
			t.Fatal(err)
		}
		cws.SolveInto(cx, cb)
	})
	if callocs != 0 {
		t.Fatalf("complex factor+solve allocates %g objects per run, want 0", callocs)
	}
}

// Residual sanity on the reused workspace (the equivalence tests above
// compare against legacy output; this one checks A·x ≈ b directly).
func TestSolveIntoResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ws LU
	var cws CLU
	for _, n := range []int{1, 2, 7, 20, 3} {
		a := randMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := ws.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		ws.SolveInto(x, b)
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-10 {
				t.Fatalf("n=%d: residual %g at row %d", n, ax[i]-b[i], i)
			}
		}

		ca := randCMatrix(rng, n)
		cb := make([]complex128, n)
		for i := range cb {
			cb[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := cws.FactorInto(ca); err != nil {
			t.Fatal(err)
		}
		cx := make([]complex128, n)
		cws.SolveInto(cx, cb)
		cax := ca.MulVec(cx)
		for i := range cb {
			if cmplx.Abs(cax[i]-cb[i]) > 1e-10 {
				t.Fatalf("n=%d: complex residual %g at row %d", n, cmplx.Abs(cax[i]-cb[i]), i)
			}
		}
	}
}
