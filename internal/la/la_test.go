package la

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolve2x2(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivot(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("got %v, want [3 2]", x)
	}
}

func TestSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected ErrSingular for rank-1 matrix")
	}
	z := NewMatrix(3, 3)
	if _, err := Factor(z); err == nil {
		t.Fatal("expected ErrSingular for zero matrix")
	}
}

func TestNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-24) > 1e-12 {
		t.Fatalf("Det = %g, want 24", d)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// Row-swapped identity has determinant -1.
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d+1) > 1e-12 {
		t.Fatalf("Det = %g, want -1", d)
	}
}

// Property: for random diagonally-dominant matrices, A·Solve(A,b) ≈ b.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%8 + 2
		r := rand.New(rand.NewSource(seed))
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Float64()*2 - 1
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+r.Float64()) // strict dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*10 - 5
		}
		x, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCSolve(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, 2)
	a.Set(1, 0, 0)
	a.Set(1, 1, complex(0, 3))
	want := []complex128{complex(1, -1), complex(2, 2)}
	b := a.MulVec(want)
	x, err := CSolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		r := rand.New(rand.NewSource(seed))
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := complex(r.Float64()*2-1, r.Float64()*2-1)
					a.Set(i, j, v)
					rowSum += cmplx.Abs(v)
				}
			}
			a.Set(i, i, complex(rowSum+1, r.Float64()))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(r.Float64(), r.Float64())
		}
		x, err := CSolveSystem(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if cmplx.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, complex(2, 0))
	a.Set(1, 1, complex(2, 0))
	if _, err := CFactor(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if n := Norm2(v); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm2 = %g, want 5", n)
	}
	if n := NormInf(v); n != 4 {
		t.Fatalf("NormInf = %g, want 4", n)
	}
}

func TestStampAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Add(0, 0, 1.5)
	m.Add(0, 0, 2.5)
	if m.At(0, 0) != 4 {
		t.Fatalf("Add accumulate = %g, want 4", m.At(0, 0))
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero did not clear")
	}
}
