package la

import (
	"fmt"
	"math/bits"
	"math/cmplx"
)

// CSparseLU is the complex analogue of SparseLU for the AC and noise
// sweeps, which refactor (G + jωC) at every frequency point on a fixed
// pattern. Only the partial-pivot (Analyze) mode is supported: the
// static-order mode exists for the real Newton path, and the sweeps keep
// dynamic pivoting because ω rescales the entries at every point. As
// with SparseLU, results are bit-identical to CLU on matrices whose
// nonzeros lie inside the analyzed pattern.
type CSparseLU struct {
	sym    *Symbolic
	lu     *CMatrix
	piv    []int
	signs  int
	rowPat []uint64
	colPat []uint64
	lPat   []uint64
	ucols  []int32
}

// NewCSparseLU returns a complex factorization workspace for sym, which
// must come from Analyze (not AnalyzeOrdered). All storage is allocated
// here, so NumericFactor and SolveInto never allocate.
func NewCSparseLU(sym *Symbolic) *CSparseLU {
	if sym.ordered {
		panic("la: CSparseLU requires a partial-pivot (Analyze) symbolic analysis")
	}
	n := sym.n
	return &CSparseLU{
		sym:    sym,
		lu:     NewCMatrix(n, n),
		piv:    make([]int, n),
		rowPat: make([]uint64, len(sym.initPat)),
		colPat: make([]uint64, len(sym.initPat)),
		lPat:   make([]uint64, len(sym.initPat)),
		ucols:  make([]int32, 0, n),
	}
}

// Symbolic returns the analysis this workspace factors against.
func (f *CSparseLU) Symbolic() *Symbolic { return f.sym }

// NumericFactor refactors a — whose nonzeros must lie inside the
// analyzed pattern — reusing the workspace. The result is bit-identical
// to CLU.FactorInto on the same matrix. a is not modified.
func (f *CSparseLU) NumericFactor(a *CMatrix) error {
	s := f.sym
	n := s.n
	if a.Rows != n || a.Cols != n {
		return fmt.Errorf("la: NumericFactor size mismatch: analysis %d, matrix %d×%d", n, a.Rows, a.Cols)
	}
	if s.words == 1 {
		return f.factorW1(a)
	}
	lu := f.lu
	copy(lu.Data, a.Data)
	w := s.words
	rowPat := f.rowPat
	copy(rowPat, s.initPat)
	colPat := f.colPat
	copy(colPat, s.initColPat)
	lPat := f.lPat
	for i := range lPat {
		lPat[i] = 0
	}
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	maxAbs := 0.0
	data := lu.Data
	for _, idx := range s.nnzIdx {
		if av := cmplx.Abs(data[idx]); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		// Candidate rows for both the pivot scan and the update loop
		// come from the column-k transpose pattern; see the real-valued
		// NumericFactor for the invariant maintenance argument.
		p := k
		pm := cmplx.Abs(data[k*n+k])
		ck := colPat[k*w : (k+1)*w]
		startW := (k + 1) >> 6
		bmask := ^uint64(0) << uint((k+1)&63)
		for wi := startW; wi < w; wi++ {
			word := ck[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				i := wi<<6 | bits.TrailingZeros64(word)
				if av := cmplx.Abs(data[i*n+k]); av > pm {
					pm, p = av, i
				}
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := data[p*n:(p+1)*n], data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			pi, pk := rowPat[p*w:(p+1)*w], rowPat[k*w:(k+1)*w]
			for j := range pi {
				pi[j], pk[j] = pk[j], pi[j]
			}
			li, lk := lPat[p*w:(p+1)*w], lPat[k*w:(k+1)*w]
			for j := range li {
				li[j], lk[j] = lk[j], li[j]
			}
			kw, kb := k>>6, uint64(1)<<uint(k&63)
			pw2, pb := p>>6, uint64(1)<<uint(p&63)
			sw := k >> 6
			smask := ^uint64(0) << uint(k&63)
			for wi := sw; wi < w; wi++ {
				union := pi[wi] | pk[wi]
				if wi == sw {
					union &= smask
				}
				for ; union != 0; union &= union - 1 {
					j := wi<<6 | bits.TrailingZeros64(union)
					cw := colPat[j*w:]
					if (cw[kw]>>uint(k&63))&1 != (cw[pw2]>>uint(p&63))&1 {
						cw[kw] ^= kb
						cw[pw2] ^= pb
					}
				}
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / data[k*n+k]
		rowK := data[k*n : (k+1)*n]
		patK := rowPat[k*w : (k+1)*w]
		uc := f.ucols[:0]
		for wi := startW; wi < w; wi++ {
			word := patK[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				uc = append(uc, int32(wi<<6|bits.TrailingZeros64(word)))
			}
		}
		for wi := startW; wi < w; wi++ {
			word := ck[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				i := wi<<6 | bits.TrailingZeros64(word)
				l := data[i*n+k] * inv
				data[i*n+k] = l
				if l == 0 {
					continue
				}
				lPat[i*w+(k>>6)] |= 1 << uint(k&63)
				rowI := data[i*n : (i+1)*n]
				for _, j := range uc {
					rowI[j] -= l * rowK[j]
				}
				patI := rowPat[i*w : (i+1)*w]
				iw, ib := i>>6, uint64(1)<<uint(i&63)
				for wi2 := 0; wi2 < startW; wi2++ {
					patI[wi2] |= patK[wi2]
				}
				for wi2 := startW; wi2 < w; wi2++ {
					nb := patK[wi2] &^ patI[wi2]
					if wi2 == startW {
						nb &= bmask
					}
					patI[wi2] |= patK[wi2]
					for ; nb != 0; nb &= nb - 1 {
						j := wi2<<6 | bits.TrailingZeros64(nb)
						colPat[j*w+iw] |= ib
					}
				}
			}
		}
	}
	f.signs = sign
	return nil
}

// factorW1 is the single-word (n ≤ 64) specialization, the complex
// mirror of SparseLU.factorW1.
func (f *CSparseLU) factorW1(a *CMatrix) error {
	s := f.sym
	n := s.n
	lu := f.lu
	copy(lu.Data, a.Data)
	rowPat := f.rowPat
	copy(rowPat, s.initPat)
	colPat := f.colPat
	copy(colPat, s.initColPat)
	lPat := f.lPat
	for i := range lPat {
		lPat[i] = 0
	}
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	maxAbs := 0.0
	data := lu.Data
	for _, idx := range s.nnzIdx {
		if av := cmplx.Abs(data[idx]); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		kbit := uint64(1) << uint(k)
		above := ^uint64(0) << uint(k+1)
		p := k
		pm := cmplx.Abs(data[k*n+k])
		for word := colPat[k] & above; word != 0; word &= word - 1 {
			i := bits.TrailingZeros64(word)
			if av := cmplx.Abs(data[i*n+k]); av > pm {
				pm, p = av, i
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := data[p*n:(p+1)*n], data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			rowPat[k], rowPat[p] = rowPat[p], rowPat[k]
			lPat[k], lPat[p] = lPat[p], lPat[k]
			pbit := uint64(1) << uint(p)
			for union := (rowPat[k] | rowPat[p]) & (^uint64(0) << uint(k)); union != 0; union &= union - 1 {
				j := bits.TrailingZeros64(union)
				cw := colPat[j]
				if (cw>>uint(k))&1 != (cw>>uint(p))&1 {
					colPat[j] = cw ^ (kbit | pbit)
				}
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / data[k*n+k]
		rowK := data[k*n : (k+1)*n]
		patK := rowPat[k]
		uc := f.ucols[:0]
		for word := patK & above; word != 0; word &= word - 1 {
			uc = append(uc, int32(bits.TrailingZeros64(word)))
		}
		for word := colPat[k] & above; word != 0; word &= word - 1 {
			i := bits.TrailingZeros64(word)
			l := data[i*n+k] * inv
			data[i*n+k] = l
			if l == 0 {
				continue
			}
			lPat[i] |= kbit
			rowI := data[i*n : (i+1)*n]
			for _, j := range uc {
				rowI[j] -= l * rowK[j]
			}
			ibit := uint64(1) << uint(i)
			for nb := (patK &^ rowPat[i]) & above; nb != 0; nb &= nb - 1 {
				colPat[bits.TrailingZeros64(nb)] |= ibit
			}
			rowPat[i] |= patK
		}
	}
	f.signs = sign
	return nil
}

// solveW1 is the single-word specialization of the solve.
func (f *CSparseLU) solveW1(x, b []complex128) {
	n := f.sym.n
	data := f.lu.Data
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for word := f.lPat[i]; word != 0; word &= word - 1 {
			k := bits.TrailingZeros64(word)
			acc -= row[k] * x[k]
		}
		x[i] = acc
	}
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for word := f.rowPat[i] & (^uint64(0) << uint(i+1)); word != 0; word &= word - 1 {
			j := bits.TrailingZeros64(word)
			acc -= row[j] * x[j]
		}
		x[i] = acc / row[i]
	}
}

// Solve returns x with A·x = b.
func (f *CSparseLU) Solve(b []complex128) []complex128 {
	x := make([]complex128, f.sym.n)
	f.SolveInto(x, b)
	return x
}

// SolveInto writes the solution of A·x = b into x without allocating.
// x must not alias b; b is not modified.
func (f *CSparseLU) SolveInto(x, b []complex128) {
	s := f.sym
	n := s.n
	if len(b) != n || len(x) != n {
		panic("la: Solve dimension mismatch")
	}
	data := f.lu.Data
	if s.words == 1 {
		f.solveW1(x, b)
		return
	}
	w := s.words
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for wi, word := range f.lPat[i*w : (i+1)*w] {
			for ; word != 0; word &= word - 1 {
				k := wi<<6 | bits.TrailingZeros64(word)
				acc -= row[k] * x[k]
			}
		}
		x[i] = acc
	}
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		pw := f.rowPat[i*w : (i+1)*w]
		startW := (i + 1) >> 6
		for wi := startW; wi < w; wi++ {
			word := pw[wi]
			if wi == startW {
				word &= ^uint64(0) << uint((i+1)&63)
			}
			for ; word != 0; word &= word - 1 {
				j := wi<<6 | bits.TrailingZeros64(word)
				acc -= row[j] * x[j]
			}
		}
		x[i] = acc / row[i]
	}
}

// Det returns det(A) from the factorization.
func (f *CSparseLU) Det() complex128 {
	d := complex(float64(f.signs), 0)
	n := f.sym.n
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}
