package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSparse builds a random pattern at roughly the given density and
// a matrix with values only at marked positions. When fullDiag is set
// the diagonal is marked and boosted so the system is (almost surely)
// nonsingular; otherwise raw random structure is used, which exercises
// the singular-detection parity between the dense and sparse paths.
func randomSparse(n int, density float64, seed int64, fullDiag bool) (*Pattern, *Matrix, []float64) {
	r := rand.New(rand.NewSource(seed))
	p := NewPattern(n)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < density {
				p.Mark(i, j)
				a.Set(i, j, r.Float64()*2-1)
			}
		}
	}
	if fullDiag {
		for i := 0; i < n; i++ {
			p.Mark(i, i)
			a.Add(i, i, 3+r.Float64())
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64()
	}
	return p, a, b
}

// mnaSystem builds a synthetic MNA-shaped system at the simulator's
// actual operating point: ~20 unknowns at ~15% density, a grounded
// resistive node block assembled by conductance stamps, plus voltage-
// source branch rows with structural zeros on the diagonal (the entries
// that force pivoting in real circuit matrices).
func mnaSystem(seed int64) (*Pattern, *Matrix, []float64) {
	const nodes, branches = 18, 2
	n := nodes + branches
	r := rand.New(rand.NewSource(seed))
	p := NewPattern(n)
	a := NewMatrix(n, n)
	stamp := func(i, j int, g float64) {
		p.Mark(i, i)
		a.Add(i, i, g)
		if j >= 0 {
			p.Mark(j, j)
			p.Mark(i, j)
			p.Mark(j, i)
			a.Add(j, j, g)
			a.Add(i, j, -g)
			a.Add(j, i, -g)
		}
	}
	// Connected chain plus random extra couplings to reach ~15% density.
	for i := 0; i < nodes-1; i++ {
		stamp(i, i+1, 1e-4*(1+r.Float64()))
	}
	for k := 0; k < 8; k++ {
		i, j := r.Intn(nodes), r.Intn(nodes)
		if i != j {
			stamp(i, j, 1e-5*(1+r.Float64()))
		}
	}
	// Grounded elements pin the node block.
	for _, i := range []int{0, 5, 11} {
		stamp(i, -1, 1e-3*(1+r.Float64()))
	}
	// Voltage-source branches: incidence only, zero diagonal.
	for b := 0; b < branches; b++ {
		br := nodes + b
		node := 3 * (b + 1)
		p.Mark(node, br)
		p.Mark(br, node)
		a.Add(node, br, 1)
		a.Add(br, node, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() * 1e-3
	}
	return p, a, b
}

// TestSparseMatchesDenseBitExact is the determinism contract of the
// partial-pivot sparse mode: on any matrix covered by the analyzed
// pattern, the numeric refactor must reproduce the dense factorization
// bit for bit — same pivot sequence, same LU array, same solution, same
// determinant. Singular matrices must fail on both paths identically.
func TestSparseMatchesDenseBitExact(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		n := 4 + int(seed%17)
		density := 0.08 + 0.03*float64(seed%9)
		p, a, b := randomSparse(n, density, seed, seed%2 == 0)
		checkBitExact(t, p, a, b, seed)
	}
	for seed := int64(100); seed < 110; seed++ {
		p, a, b := mnaSystem(seed)
		checkBitExact(t, p, a, b, seed)
	}
	// n > 64 exercises the generic multi-word bitset path (all smaller
	// systems take the single-word specialization).
	for seed := int64(200); seed < 206; seed++ {
		n := 66 + int(seed%3)*13
		p, a, b := randomSparse(n, 0.06, seed, seed%2 == 0)
		checkBitExact(t, p, a, b, seed)
	}
}

func checkBitExact(t *testing.T, p *Pattern, a *Matrix, b []float64, seed int64) {
	t.Helper()
	sym := Analyze(p)
	if !sym.Covers(a) {
		t.Fatalf("seed %d: analysis does not cover matrix", seed)
	}
	var dense LU
	sparse := NewSparseLU(sym)
	denseErr := dense.FactorInto(a)
	sparseErr := sparse.NumericFactor(a)
	if (denseErr == nil) != (sparseErr == nil) {
		t.Fatalf("seed %d: dense err %v, sparse err %v", seed, denseErr, sparseErr)
	}
	if denseErr != nil {
		if !errors.Is(sparseErr, ErrSingular) {
			t.Fatalf("seed %d: sparse error %v, want ErrSingular", seed, sparseErr)
		}
		return
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		if dense.piv[i] != sparse.piv[i] {
			t.Fatalf("seed %d: pivot order diverges at %d: dense %v, sparse %v", seed, i, dense.piv, sparse.piv)
		}
	}
	// Factor arrays agree by value; dead multiplier slots (rows whose
	// column entry is a structural zero) may differ in zero sign — the
	// dense loop writes ±0 there, the sparse loop skips them, and no
	// later factor or solve step reads them.
	for i, v := range dense.lu.Data {
		if v != sparse.lu.Data[i] {
			t.Fatalf("seed %d: LU[%d,%d] dense %x sparse %x", seed, i/n, i%n,
				math.Float64bits(v), math.Float64bits(sparse.lu.Data[i]))
		}
	}
	xd := make([]float64, n)
	xs := make([]float64, n)
	dense.SolveInto(xd, b)
	sparse.SolveInto(xs, b)
	for i := range xd {
		if math.Float64bits(xd[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("seed %d: x[%d] dense %x sparse %x", seed, i,
				math.Float64bits(xd[i]), math.Float64bits(xs[i]))
		}
	}
	if math.Float64bits(dense.Det()) != math.Float64bits(sparse.Det()) {
		t.Fatalf("seed %d: det dense %g sparse %g", seed, dense.Det(), sparse.Det())
	}
}

// TestCSparseMatchesDenseBitExact extends the contract to the complex
// path the AC and noise sweeps run on.
func TestCSparseMatchesDenseBitExact(t *testing.T) {
	for seed := int64(0); seed < 34; seed++ {
		// The last seeds push n past 64 to cover the generic multi-word
		// path; everything smaller takes the single-word specialization.
		n := 4 + int(seed%13)
		if seed >= 30 {
			n = 66 + int(seed%3)*7
		}
		p, ar, br := randomSparse(n, 0.1+0.03*float64(seed%7), seed, seed%3 != 2)
		r := rand.New(rand.NewSource(seed + 999))
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := ar.At(i, j); v != 0 || p.Has(i, j) {
					a.Set(i, j, complex(v, 0.3*(r.Float64()*2-1)))
				}
			}
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(br[i], r.Float64())
		}
		sym := Analyze(p)
		var dense CLU
		sparse := NewCSparseLU(sym)
		denseErr := dense.FactorInto(a)
		sparseErr := sparse.NumericFactor(a)
		if (denseErr == nil) != (sparseErr == nil) {
			t.Fatalf("seed %d: dense err %v, sparse err %v", seed, denseErr, sparseErr)
		}
		if denseErr != nil {
			continue
		}
		xd := make([]complex128, n)
		xs := make([]complex128, n)
		dense.SolveInto(xd, b)
		sparse.SolveInto(xs, b)
		for i := range xd {
			if math.Float64bits(real(xd[i])) != math.Float64bits(real(xs[i])) ||
				math.Float64bits(imag(xd[i])) != math.Float64bits(imag(xs[i])) {
				t.Fatalf("seed %d: x[%d] dense %v sparse %v", seed, i, xd[i], xs[i])
			}
		}
	}
}

// TestSparseSingularParity pins the failure modes: a structurally
// singular pattern and an exactly zero matrix must return ErrSingular
// from the sparse path just as the dense path does.
func TestSparseSingularParity(t *testing.T) {
	// Column 2 empty: structurally singular.
	p := NewPattern(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j != 2 {
				p.Mark(i, j)
			}
		}
	}
	a := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j != 2 {
				a.Set(i, j, float64(1+i+j))
			}
		}
	}
	f := NewSparseLU(Analyze(p))
	if err := f.NumericFactor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("structurally singular: got %v, want ErrSingular", err)
	}
	// Zero matrix on a nonempty pattern.
	z := NewMatrix(4, 4)
	if err := f.NumericFactor(z); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix: got %v, want ErrSingular", err)
	}
	// The workspace must stay usable after a failure.
	pd, ad, bd := randomSparse(4, 1, 7, true)
	fd := NewSparseLU(Analyze(pd))
	if err := fd.NumericFactor(ad); err != nil {
		t.Fatal(err)
	}
	_ = fd.Solve(bd)
}

// TestOrderedMatchesDense checks the static Markowitz order against the
// dense path to 1e-12: a different elimination order cannot be bit-
// identical, but the solutions must agree to round-off.
func TestOrderedMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var p *Pattern
		var a *Matrix
		var b []float64
		if seed%2 == 0 {
			p, a, b = mnaSystem(seed)
		} else {
			// Static-order factorization has no numeric pivoting, so the
			// 1e-12 agreement claim is made on diagonally dominant
			// systems (which MNA node blocks are).
			p, a, b = randomSparse(10+int(seed), 0.2, seed, true)
			n := a.Rows
			for i := 0; i < n; i++ {
				rowSum := 0.0
				for j := 0; j < n; j++ {
					if j != i {
						rowSum += math.Abs(a.At(i, j))
					}
				}
				a.Set(i, i, rowSum+1)
			}
		}
		sym, err := AnalyzeOrdered(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f := NewSparseLU(sym)
		if err := f.NumericFactor(a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		xd, err := SolveSystem(a, b)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		xs := f.Solve(b)
		// Backward error at 1e-12 of the problem scale: the proper
		// "agrees with dense" criterion for a different elimination
		// order, which matches dense only to round-off.
		normA := 0.0
		for i := 0; i < a.Rows; i++ {
			rs := 0.0
			for j := 0; j < a.Cols; j++ {
				rs += math.Abs(a.At(i, j))
			}
			if rs > normA {
				normA = rs
			}
		}
		scale := normA*NormInf(xs) + NormInf(b)
		res := a.MulVec(xs)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-12*scale {
				t.Fatalf("seed %d: residual[%d] = %g exceeds 1e-12·%g", seed, i, res[i]-b[i], scale)
			}
		}
		xscale := math.Max(1, NormInf(xd))
		for i := range xd {
			if math.Abs(xd[i]-xs[i]) > 1e-10*xscale {
				t.Fatalf("seed %d: x[%d] dense %g ordered %g", seed, i, xd[i], xs[i])
			}
		}
		dd, ds := 1.0, f.Det()
		if fd, err := Factor(a); err == nil {
			dd = fd.Det()
		}
		if math.Abs(dd-ds) > 1e-9*math.Max(1, math.Abs(dd)) {
			t.Fatalf("seed %d: det dense %g ordered %g", seed, dd, ds)
		}
	}
}

// TestOrderedZeroPivotFallsBack: when the numeric values defeat the
// static pivot choice, the ordered factor must fail with ErrZeroPivot —
// distinguishable from true singularity — and the dense partial-pivot
// path must still solve the system (the documented fallback).
func TestOrderedZeroPivotFallsBack(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [3][3]float64{{0, 1, 2}, {1, 1, 1}, {2, 1, 1}}
	p := NewPattern(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p.Mark(i, j)
			a.Set(i, j, vals[i][j])
		}
	}
	sym, err := AnalyzeOrdered(p)
	if err != nil {
		t.Fatal(err)
	}
	f := NewSparseLU(sym)
	err = f.NumericFactor(a)
	if !errors.Is(err, ErrZeroPivot) {
		t.Fatalf("got %v, want ErrZeroPivot", err)
	}
	if errors.Is(err, ErrSingular) {
		t.Fatalf("zero-pivot error must not read as singular: %v", err)
	}
	x, err := SolveSystem(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("dense fallback failed: %v", err)
	}
	r := a.MulVec(x)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(r[i]-want) > 1e-12 {
			t.Fatalf("fallback residual[%d] = %g", i, r[i]-want)
		}
	}
}

// TestAnalyzeOrderedStructurallySingular: an empty column has no valid
// pivot in any order.
func TestAnalyzeOrderedStructurallySingular(t *testing.T) {
	p := NewPattern(3)
	p.Mark(0, 0)
	p.Mark(1, 0)
	p.Mark(1, 2)
	p.Mark(2, 2)
	if _, err := AnalyzeOrdered(p); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

// TestSparseNumericFactorNoAlloc is the hot-loop guard: once the
// workspace exists, refactor+solve must not touch the heap, in either
// mode and for the complex variant.
func TestSparseNumericFactorNoAlloc(t *testing.T) {
	p, a, b := mnaSystem(1)
	x := make([]float64, a.Rows)

	f := NewSparseLU(Analyze(p))
	allocs := testing.AllocsPerRun(200, func() {
		if err := f.NumericFactor(a); err != nil {
			t.Fatal(err)
		}
		f.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("partial-pivot refactor allocates %g objects, want 0", allocs)
	}

	osym, err := AnalyzeOrdered(p)
	if err != nil {
		t.Fatal(err)
	}
	fo := NewSparseLU(osym)
	allocs = testing.AllocsPerRun(200, func() {
		if err := fo.NumericFactor(a); err != nil {
			t.Fatal(err)
		}
		fo.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("static-order refactor allocates %g objects, want 0", allocs)
	}

	ca := NewCMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		ca.Data[i] = complex(v, 0.1*v)
	}
	cb := make([]complex128, len(b))
	for i := range b {
		cb[i] = complex(b[i], 0)
	}
	cx := make([]complex128, len(b))
	cf := NewCSparseLU(Analyze(p))
	allocs = testing.AllocsPerRun(200, func() {
		if err := cf.NumericFactor(ca); err != nil {
			t.Fatal(err)
		}
		cf.SolveInto(cx, cb)
	})
	if allocs != 0 {
		t.Fatalf("complex refactor allocates %g objects, want 0", allocs)
	}
}

// TestPatternBasics covers the marking API, including the ground (-1)
// convention MNA assemblers rely on.
func TestPatternBasics(t *testing.T) {
	p := NewPattern(70) // spans multiple bitset words
	p.Mark(0, 0)
	p.Mark(69, 69)
	p.Mark(3, 65)
	p.Mark(-1, 5)
	p.Mark(5, -1)
	p.Mark(0, 0) // idempotent
	if p.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", p.NNZ())
	}
	if !p.Has(3, 65) || p.Has(65, 3) {
		t.Fatal("Has disagrees with Mark")
	}
	a := NewMatrix(3, 3)
	a.Set(0, 1, 2)
	a.Set(2, 2, -1)
	q := PatternOf(a)
	if q.NNZ() != 2 || !q.Has(0, 1) || !q.Has(2, 2) {
		t.Fatalf("PatternOf wrong: nnz=%d", q.NNZ())
	}
	sym := Analyze(q)
	if sym.Stats().NNZ != 2 || sym.Stats().N != 3 {
		t.Fatalf("stats wrong: %+v", sym.Stats())
	}
}

// TestSymbolicMulVecInto checks the pattern mat-vec used by the
// modified-Newton residual path against the dense product.
func TestSymbolicMulVecInto(t *testing.T) {
	p, a, _ := mnaSystem(3)
	sym := Analyze(p)
	r := rand.New(rand.NewSource(11))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	want := a.MulVec(x)
	got := make([]float64, a.Rows)
	sym.MulVecInto(got, a, x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-15*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("y[%d] dense %g pattern %g", i, want[i], got[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() { sym.MulVecInto(got, a, x) })
	if allocs != 0 {
		t.Fatalf("MulVecInto allocates %g objects, want 0", allocs)
	}
}

// The speedup claim is made at the simulator's actual shape — ~20×20 at
// ~15% density with branch rows — not on dense random matrices. Dense
// vs sparse vs static-order, real and complex.

func BenchmarkMNAFactorSolve20Dense(b *testing.B) {
	_, a, rhs := mnaSystem(1)
	var f LU
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.FactorInto(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}

func BenchmarkMNAFactorSolve20Sparse(b *testing.B) {
	p, a, rhs := mnaSystem(1)
	f := NewSparseLU(Analyze(p))
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.NumericFactor(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}

func BenchmarkMNAFactorSolve20Ordered(b *testing.B) {
	p, a, rhs := mnaSystem(1)
	sym, err := AnalyzeOrdered(p)
	if err != nil {
		b.Fatal(err)
	}
	f := NewSparseLU(sym)
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.NumericFactor(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}

func BenchmarkCMNAFactorSolve20Dense(b *testing.B) {
	_, ar, rhs := mnaSystem(1)
	n := ar.Rows
	a := NewCMatrix(n, n)
	for i, v := range ar.Data {
		a.Data[i] = complex(v, 0.1*v)
	}
	cb := make([]complex128, n)
	for i := range cb {
		cb[i] = complex(rhs[i], 0)
	}
	var f CLU
	x := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.FactorInto(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, cb)
	}
}

func BenchmarkCMNAFactorSolve20Sparse(b *testing.B) {
	p, ar, rhs := mnaSystem(1)
	n := ar.Rows
	a := NewCMatrix(n, n)
	for i, v := range ar.Data {
		a.Data[i] = complex(v, 0.1*v)
	}
	cb := make([]complex128, n)
	for i := range cb {
		cb[i] = complex(rhs[i], 0)
	}
	f := NewCSparseLU(Analyze(p))
	x := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.NumericFactor(a); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, cb)
	}
}
