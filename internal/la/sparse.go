// sparse.go is the structure-exploiting solver core: MNA systems are
// factored millions of times per synthesis study on a sparsity pattern
// that never changes for the lifetime of a compiled circuit, so the
// pattern analysis — which positions can ever be nonzero, where fill-in
// lands, which update loops can be skipped — is hoisted out of the hot
// loop and done once ("symbolic factorization"). Each Newton iteration
// or frequency point then runs a numeric-only refactor that touches only
// the recorded positions.
//
// Two symbolic modes are offered:
//
//   - Analyze: keeps the dense path's partial pivoting intact and bounds
//     the fill over every pivot sequence the numeric values could select
//     (the merge closure below). Because the skipped updates are
//     provably zero on both sides, NumericFactor/SolveInto produce
//     results bit-identical to LU.FactorInto/SolveInto — the property
//     the simulator's determinism contract depends on.
//
//   - AnalyzeOrdered: picks a static Markowitz pivot order on the
//     pattern (KLU-style), records the exact fill for that order, and
//     factors with no pivot search at all. Fastest, but a different
//     elimination order means results agree with the dense path only to
//     round-off, and a numerically degraded pivot aborts with
//     ErrZeroPivot so the caller can fall back to partial pivoting.
package la

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrZeroPivot is returned by the static-order (AnalyzeOrdered) numeric
// factorization when a pivot chosen symbolically turns out numerically
// negligible. Callers should fall back to a partial-pivoting factor.
var ErrZeroPivot = errors.New("la: zero pivot under static-order factorization")

// Pattern is a fixed n×n sparsity pattern: the set of positions that can
// ever hold a nonzero. It is the input to the symbolic analysis; marking
// is idempotent, so assemblers can simply mirror their stamp calls.
type Pattern struct {
	n     int
	words int      // uint64 words per row
	rows  []uint64 // n*words bitset, row-major
}

// NewPattern returns an empty n×n pattern.
func NewPattern(n int) *Pattern {
	if n < 0 {
		panic(fmt.Sprintf("la: invalid pattern size %d", n))
	}
	w := (n + 63) >> 6
	return &Pattern{n: n, words: w, rows: make([]uint64, n*w)}
}

// PatternOf marks every nonzero of a. Structural zeros that merely
// happen to be nonzero-free in this particular matrix are not captured;
// assemblers whose values can cancel should Mark positions explicitly.
func PatternOf(a *Matrix) *Pattern {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("la: PatternOf requires square matrix, got %d×%d", a.Rows, a.Cols))
	}
	p := NewPattern(a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != 0 {
				p.Mark(i, j)
			}
		}
	}
	return p
}

// N returns the pattern's dimension.
func (p *Pattern) N() int { return p.n }

// Mark records position (i,j) as potentially nonzero. Negative indices
// are ignored so MNA assemblers can pass ground (-1) rows unguarded.
func (p *Pattern) Mark(i, j int) {
	if i < 0 || j < 0 {
		return
	}
	p.rows[i*p.words+(j>>6)] |= 1 << uint(j&63)
}

// Has reports whether (i,j) is in the pattern.
func (p *Pattern) Has(i, j int) bool {
	return p.rows[i*p.words+(j>>6)]&(1<<uint(j&63)) != 0
}

// NNZ counts the marked positions.
func (p *Pattern) NNZ() int {
	nnz := 0
	for _, w := range p.rows {
		nnz += bits.OnesCount64(w)
	}
	return nnz
}

// flatIdx returns the flat (row-major) indices of the marked positions,
// sorted ascending.
func (p *Pattern) flatIdx() []int32 {
	idx := make([]int32, 0, p.NNZ())
	for i := 0; i < p.n; i++ {
		row := p.rows[i*p.words : (i+1)*p.words]
		for wi, w := range row {
			for ; w != 0; w &= w - 1 {
				j := wi<<6 | bits.TrailingZeros64(w)
				idx = append(idx, int32(i*p.n+j))
			}
		}
	}
	return idx
}

// SymbolicStats summarizes a symbolic analysis for logging and tests.
type SymbolicStats struct {
	N       int
	NNZ     int     // marked positions in the input pattern
	FillNNZ int     // positions the factor can touch (L+U incl. fill)
	Density float64 // FillNNZ / N²
	Ordered bool
}

// Symbolic is a completed symbolic factorization of a Pattern: the
// static structure a SparseLU or CSparseLU consults on every numeric
// refactor. It is immutable after analysis and safe to share across
// factorization workspaces and goroutines.
type Symbolic struct {
	n       int
	ordered bool
	nnzIdx  []int32 // flat indices of the input pattern (scatter, max-abs scan)
	mulPtr  []int32 // CSR row offsets into nnzIdx/mulCol for MulVecInto
	mulCol  []int32 // column of each nnzIdx entry (avoids div/mod per entry)
	stats   SymbolicStats

	// Partial-pivot (Analyze) mode: the initial row and column patterns
	// as bitsets. The numeric factorization evolves working copies
	// alongside the values (fill under dynamic pivoting depends on the
	// pivot sequence the values select, so the live pattern is tracked
	// at run time; a static bound over all pivot sequences degenerates
	// to near-dense on chain-structured MNA systems). initColPat is the
	// transpose of initPat: bit i of word row j says row i has a live
	// entry in column j — the index the pivot scan iterates.
	words      int
	initPat    []uint64
	initColPat []uint64

	// Static-order (AnalyzeOrdered) mode, all in permuted coordinates:
	// position k eliminates original row rowOrder[k] / column colOrder[k].
	// The per-step/per-row index lists are stored flattened (CSR-style
	// ptr+idx pairs) so the numeric factor and solve loops walk one flat
	// array instead of chasing per-row slice headers.
	rowOrder, colOrder []int32
	scatterDst         []int32 // permuted flat index per nnzIdx entry
	lrowPtr, lrowIdx   []int32 // per step k: rows i>k with structural L(i,k)
	ucolPtr, ucolIdx   []int32 // per step k: columns j>k of the pivot row
	lpatPtr, lpatIdx   []int32 // per row i: its L columns, for forward solves
	fillIdx            []int32 // every permuted flat position the factor touches
	permSign           int     // parity of rowOrder ∘ colOrder⁻¹, for Det
}

// N returns the system dimension.
func (s *Symbolic) N() int { return s.n }

// Stats reports the pattern and fill figures of the analysis.
func (s *Symbolic) Stats() SymbolicStats { return s.stats }

// Covers reports whether every nonzero of a lies inside the analyzed
// pattern — the precondition NumericFactor relies on. Intended for tests
// and assembly-time validation, not hot loops.
func (s *Symbolic) Covers(a *Matrix) bool {
	if a.Rows != s.n || a.Cols != s.n {
		return false
	}
	have := make(map[int32]bool, len(s.nnzIdx))
	for _, idx := range s.nnzIdx {
		have[idx] = true
	}
	for i, v := range a.Data {
		if v != 0 && !have[int32(i)] {
			return false
		}
	}
	return true
}

// Analyze prepares the pivot-exact symbolic analysis: it captures the
// input pattern as row bitsets plus a flat nonzero index, which the
// numeric factorization evolves as its own live fill record while it
// pivots exactly like the dense path. NumericFactor and SolveInto driven
// by this analysis are bit-identical to the dense LU (the update and
// substitution work they skip is exact zeros on both sides).
func Analyze(p *Pattern) *Symbolic {
	n := p.n
	s := &Symbolic{n: n, words: p.words, nnzIdx: p.flatIdx()}
	s.initPat = make([]uint64, len(p.rows))
	copy(s.initPat, p.rows)
	s.initColPat = make([]uint64, len(p.rows))
	for _, idx := range s.nnzIdx {
		i, j := int(idx)/n, int(idx)%n
		s.initColPat[j*p.words+(i>>6)] |= 1 << uint(i&63)
	}
	s.stats = SymbolicStats{
		N: n, NNZ: len(s.nnzIdx), FillNNZ: len(s.nnzIdx),
		Density: float64(len(s.nnzIdx)) / float64(max(1, n*n)),
	}
	s.initMulIdx()
	return s
}

// initMulIdx builds the CSR view of nnzIdx (row offsets + per-entry
// column) that MulVecInto iterates. nnzIdx is sorted row-major, so the
// CSR walk visits entries in exactly the same order as a flat scan —
// the accumulation order, and hence the result, is unchanged.
func (s *Symbolic) initMulIdx() {
	n := s.n
	s.mulPtr = make([]int32, n+1)
	s.mulCol = make([]int32, len(s.nnzIdx))
	row := 0
	for t, idx := range s.nnzIdx {
		i, j := int(idx)/n, int(idx)%n
		for row < i {
			row++
			s.mulPtr[row] = int32(t)
		}
		s.mulCol[t] = int32(j)
	}
	for row < n {
		row++
		s.mulPtr[row] = int32(len(s.nnzIdx))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AnalyzeOrdered picks a static pivot order by Markowitz cost on the
// pattern — at each step the structural entry (r,c) minimizing
// (nnz(row r)−1)·(nnz(col c)−1), ties broken by lowest row then column —
// records the exact fill for that order, and returns a Symbolic whose
// numeric factorization runs with no pivot search. It fails when the
// pattern is structurally singular. The numeric factor aborts with
// ErrZeroPivot when a chosen pivot is numerically negligible; callers
// then fall back to a partial-pivoting factorization.
func AnalyzeOrdered(p *Pattern) (*Symbolic, error) {
	n, w := p.n, p.words
	s := &Symbolic{n: n, ordered: true, nnzIdx: p.flatIdx()}

	rowPat := make([]uint64, len(p.rows))
	copy(rowPat, p.rows)
	// Column pattern mirror: colPat[c] = set of rows with (r,c) marked.
	colPat := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		row := rowPat[i*w : (i+1)*w]
		for wi, word := range row {
			for ; word != 0; word &= word - 1 {
				c := wi<<6 | bits.TrailingZeros64(word)
				colPat[c*w+(i>>6)] |= 1 << uint(i&63)
			}
		}
	}
	activeRow := make([]bool, n)
	activeCol := make([]bool, n)
	for i := range activeRow {
		activeRow[i], activeCol[i] = true, true
	}
	countActive := func(set []uint64, active []bool) int {
		c := 0
		for wi, word := range set {
			for ; word != 0; word &= word - 1 {
				if active[wi<<6|bits.TrailingZeros64(word)] {
					c++
				}
			}
		}
		return c
	}

	s.rowOrder = make([]int32, n)
	s.colOrder = make([]int32, n)
	lrows := make([][]int32, n)
	ucols := make([][]int32, n)
	lpat := make([][]int32, n)
	posOfRow := make([]int32, n)
	fillNNZ := 0
	for k := 0; k < n; k++ {
		// Diagonal entries are preferred unconditionally (standard
		// circuit-simulator practice): MNA node rows are diagonally
		// dominant, so diagonal pivots bound element growth, and only
		// the voltage-branch rows — whose diagonal is structurally
		// zero — force off-diagonal pivots.
		bestR, bestC, bestCost := -1, -1, 0
		for r := 0; r < n; r++ {
			if !activeRow[r] || !activeCol[r] || rowPat[r*w+(r>>6)]&(1<<uint(r&63)) == 0 {
				continue
			}
			nr := countActive(rowPat[r*w:(r+1)*w], activeCol)
			nc := countActive(colPat[r*w:(r+1)*w], activeRow)
			cost := (nr - 1) * (nc - 1)
			if bestR < 0 || cost < bestCost {
				bestR, bestC, bestCost = r, r, cost
			}
		}
		if bestR < 0 {
			for r := 0; r < n; r++ {
				if !activeRow[r] {
					continue
				}
				nr := countActive(rowPat[r*w:(r+1)*w], activeCol)
				if nr == 0 {
					continue
				}
				row := rowPat[r*w : (r+1)*w]
				for wi, word := range row {
					for ; word != 0; word &= word - 1 {
						c := wi<<6 | bits.TrailingZeros64(word)
						if !activeCol[c] {
							continue
						}
						nc := countActive(colPat[c*w:(c+1)*w], activeRow)
						cost := (nr - 1) * (nc - 1)
						if bestR < 0 || cost < bestCost {
							bestR, bestC, bestCost = r, c, cost
						}
					}
				}
			}
		}
		if bestR < 0 {
			return nil, fmt.Errorf("la: pattern structurally singular at elimination step %d: %w", k, ErrSingular)
		}
		s.rowOrder[k], s.colOrder[k] = int32(bestR), int32(bestC)
		posOfRow[bestR] = int32(k)
		activeRow[bestR], activeCol[bestC] = false, false

		// Record the pivot row's active columns (U structure at step k,
		// in original column ids for now) and the rows it updates.
		pivRow := rowPat[bestR*w : (bestR+1)*w]
		var uOrig []int32
		for wi, word := range pivRow {
			for ; word != 0; word &= word - 1 {
				c := wi<<6 | bits.TrailingZeros64(word)
				if activeCol[c] {
					uOrig = append(uOrig, int32(c))
				}
			}
		}
		col := colPat[bestC*w : (bestC+1)*w]
		var lOrigRows []int32
		for wi, word := range col {
			for ; word != 0; word &= word - 1 {
				r := wi<<6 | bits.TrailingZeros64(word)
				if activeRow[r] {
					lOrigRows = append(lOrigRows, int32(r))
				}
			}
		}
		// Fill: each updated row absorbs the pivot row's active columns.
		for _, r := range lOrigRows {
			row := rowPat[int(r)*w : int(r+1)*w]
			for wi := range row {
				row[wi] |= pivRow[wi]
			}
			// Mirror into column patterns.
			for _, c := range uOrig {
				colPat[int(c)*w+(int(r)>>6)] |= 1 << uint(int(r)&63)
			}
		}
		ucols[k] = uOrig     // original ids; remapped below
		lrows[k] = lOrigRows // original ids; remapped below
		fillNNZ += len(uOrig) + 1 + len(lOrigRows)
	}

	// Remap the recorded structure into permuted coordinates.
	posOfCol := make([]int32, n)
	for k, c := range s.colOrder {
		posOfCol[c] = int32(k)
	}
	for k := 0; k < n; k++ {
		u := ucols[k]
		for i, c := range u {
			u[i] = posOfCol[c]
		}
		sortInt32(u)
		lr := lrows[k]
		for i, r := range lr {
			lr[i] = posOfRow[r]
		}
		sortInt32(lr)
		for _, i := range lr {
			lpat[i] = append(lpat[i], int32(k))
		}
	}
	// Flatten the per-step/per-row lists to CSR and record every permuted
	// position the numeric factor touches — the diagonal, each step's U
	// row segment, and each step's L column segment cover all of L+U
	// exactly once — so the factor zeroes fillNNZ slots, not n².
	s.lrowPtr, s.lrowIdx = flattenCSR(lrows)
	s.ucolPtr, s.ucolIdx = flattenCSR(ucols)
	s.lpatPtr, s.lpatIdx = flattenCSR(lpat)
	s.fillIdx = make([]int32, 0, fillNNZ)
	for k := 0; k < n; k++ {
		s.fillIdx = append(s.fillIdx, int32(k*n+k))
		for _, j := range ucols[k] {
			s.fillIdx = append(s.fillIdx, int32(k*n+int(j)))
		}
		for _, i := range lrows[k] {
			s.fillIdx = append(s.fillIdx, int32(int(i)*n+k))
		}
	}
	s.scatterDst = make([]int32, len(s.nnzIdx))
	for t, idx := range s.nnzIdx {
		i, j := int(idx)/n, int(idx)%n
		s.scatterDst[t] = posOfRow[i]*int32(n) + posOfCol[j]
	}
	s.permSign = permParity(s.rowOrder) * permParity(s.colOrder)
	s.stats = SymbolicStats{
		N: n, NNZ: len(s.nnzIdx), FillNNZ: fillNNZ,
		Density: float64(fillNNZ) / float64(max(1, n*n)),
		Ordered: true,
	}
	s.initMulIdx()
	return s, nil
}

// flattenCSR packs a ragged [][]int32 into ptr/idx arrays: row k's
// entries live in idx[ptr[k]:ptr[k+1]].
func flattenCSR(rows [][]int32) (ptr, idx []int32) {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	ptr = make([]int32, len(rows)+1)
	idx = make([]int32, 0, total)
	for k, r := range rows {
		idx = append(idx, r...)
		ptr[k+1] = int32(len(idx))
	}
	return ptr, idx
}

func sortInt32(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// permParity returns +1 for even permutations, -1 for odd.
func permParity(p []int32) int {
	seen := make([]bool, len(p))
	sign := 1
	for i := range p {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = int(p[j]) {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// SparseLU is a numeric factorization workspace bound to a Symbolic
// analysis. NumericFactor refactors in place with zero heap allocation;
// one SparseLU per solver loop, reused across iterations, is the
// intended usage. Not safe for concurrent use (share the Symbolic, not
// the workspace).
type SparseLU struct {
	sym    *Symbolic
	lu     *Matrix
	piv    []int
	signs  int
	rowPat []uint64  // live U-side pattern per row position, swapped with rows
	colPat []uint64  // transpose: live row positions per column
	lPat   []uint64  // per position: columns holding a nonzero multiplier
	ucols  []int32   // per-step scratch: live columns of the pivot row
	xp     []float64 // permuted scratch for the static-order solve
}

// NewSparseLU returns a factorization workspace for the analysis. All
// storage is allocated here, so NumericFactor and SolveInto never
// allocate.
func NewSparseLU(sym *Symbolic) *SparseLU {
	n := sym.n
	f := &SparseLU{sym: sym, lu: NewMatrix(n, n), piv: make([]int, n)}
	if sym.ordered {
		f.xp = make([]float64, n)
	} else {
		f.rowPat = make([]uint64, len(sym.initPat))
		f.colPat = make([]uint64, len(sym.initPat))
		f.lPat = make([]uint64, len(sym.initPat))
		f.ucols = make([]int32, 0, n)
	}
	return f
}

// Symbolic returns the analysis this workspace factors against.
func (f *SparseLU) Symbolic() *Symbolic { return f.sym }

// NumericFactor refactors a — whose nonzeros must lie inside the
// analyzed pattern — reusing the workspace. In partial-pivot mode the
// result is bit-identical to LU.FactorInto on the same matrix; in
// static-order mode a numerically negligible pivot aborts with
// ErrZeroPivot. a is not modified.
func (f *SparseLU) NumericFactor(a *Matrix) error {
	s := f.sym
	n := s.n
	if a.Rows != n || a.Cols != n {
		return fmt.Errorf("la: NumericFactor size mismatch: analysis %d, matrix %d×%d", n, a.Rows, a.Cols)
	}
	if s.ordered {
		return f.factorOrdered(a)
	}
	if s.words == 1 {
		return f.factorW1(a)
	}
	lu := f.lu
	copy(lu.Data, a.Data)
	w := s.words
	rowPat := f.rowPat
	copy(rowPat, s.initPat)
	colPat := f.colPat
	copy(colPat, s.initColPat)
	lPat := f.lPat
	for i := range lPat {
		lPat[i] = 0
	}
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	// Scale reference for singularity detection: identical to the dense
	// path's full scan because off-pattern entries are exactly zero.
	maxAbs := 0.0
	data := lu.Data
	for _, idx := range s.nnzIdx {
		if av := math.Abs(data[idx]); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		// Pivot scan with the dense path's decisions: rows without a
		// live entry in column k hold an exact zero there, which can
		// never win the strict comparison. The live row positions of
		// column k are one word iteration of its transpose pattern —
		// ascending, so ties resolve to the same first maximum as the
		// dense scan.
		p := k
		pm := math.Abs(data[k*n+k])
		ck := colPat[k*w : (k+1)*w]
		startW := (k + 1) >> 6
		bmask := ^uint64(0) << uint((k+1)&63)
		for wi := startW; wi < w; wi++ {
			word := ck[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				i := wi<<6 | bits.TrailingZeros64(word)
				if av := math.Abs(data[i*n+k]); av > pm {
					pm, p = av, i
				}
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := data[p*n:(p+1)*n], data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			pi, pk := rowPat[p*w:(p+1)*w], rowPat[k*w:(k+1)*w]
			for j := range pi {
				pi[j], pk[j] = pk[j], pi[j]
			}
			li, lk := lPat[p*w:(p+1)*w], lPat[k*w:(k+1)*w]
			for j := range li {
				li[j], lk[j] = lk[j], li[j]
			}
			// Transpose maintenance: swapping row positions k and p
			// swaps bits k and p of every column pattern. Columns where
			// neither row is live hold two zero bits, so only the union
			// of the two (already swapped) row patterns needs fixing;
			// columns below k are never consulted again.
			kw, kb := k>>6, uint64(1)<<uint(k&63)
			pw2, pb := p>>6, uint64(1)<<uint(p&63)
			sw := k >> 6
			smask := ^uint64(0) << uint(k&63)
			for wi := sw; wi < w; wi++ {
				union := pi[wi] | pk[wi]
				if wi == sw {
					union &= smask
				}
				for ; union != 0; union &= union - 1 {
					j := wi<<6 | bits.TrailingZeros64(union)
					cw := colPat[j*w:]
					if (cw[kw]>>uint(k&63))&1 != (cw[pw2]>>uint(p&63))&1 {
						cw[kw] ^= kb
						cw[pw2] ^= pb
					}
				}
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / data[k*n+k]
		rowK := data[k*n : (k+1)*n]
		patK := rowPat[k*w : (k+1)*w]
		// Live columns of the pivot row beyond k: the only positions a
		// row update can change. The dense path's remaining j-updates
		// subtract exact zeros.
		uc := f.ucols[:0]
		for wi := startW; wi < w; wi++ {
			word := patK[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				uc = append(uc, int32(wi<<6|bits.TrailingZeros64(word)))
			}
		}
		// Update rows: exactly the live positions of column k below the
		// (post-swap) diagonal. Rows with a structural zero there would
		// receive a dead ±0 multiplier in the dense loop that no later
		// factor or solve step reads; they are skipped entirely.
		for wi := startW; wi < w; wi++ {
			word := ck[wi]
			if wi == startW {
				word &= bmask
			}
			for ; word != 0; word &= word - 1 {
				i := wi<<6 | bits.TrailingZeros64(word)
				l := data[i*n+k] * inv
				data[i*n+k] = l
				if l == 0 {
					continue
				}
				lPat[i*w+(k>>6)] |= 1 << uint(k&63)
				rowI := data[i*n : (i+1)*n]
				for _, j := range uc {
					rowI[j] -= l * rowK[j]
				}
				// The updated row's live pattern absorbs the pivot
				// row's; fill-in (bits newly set beyond k) is mirrored
				// into the column patterns.
				patI := rowPat[i*w : (i+1)*w]
				iw, ib := i>>6, uint64(1)<<uint(i&63)
				for wi2 := 0; wi2 < startW; wi2++ {
					patI[wi2] |= patK[wi2]
				}
				for wi2 := startW; wi2 < w; wi2++ {
					nb := patK[wi2] &^ patI[wi2]
					if wi2 == startW {
						nb &= bmask
					}
					patI[wi2] |= patK[wi2]
					for ; nb != 0; nb &= nb - 1 {
						j := wi2<<6 | bits.TrailingZeros64(nb)
						colPat[j*w+iw] |= ib
					}
				}
			}
		}
	}
	f.signs = sign
	return nil
}

// factorOrdered runs the static-order elimination: scatter into permuted
// positions, then eliminate along the precomputed structure with no
// pivot search.
func (f *SparseLU) factorOrdered(a *Matrix) error {
	s := f.sym
	n := s.n
	data := f.lu.Data
	// Only the recorded L+U positions are ever read or written; zeroing
	// just those beats wiping the whole n² slab every refactor.
	for _, idx := range s.fillIdx {
		data[idx] = 0
	}
	maxAbs := 0.0
	for t, idx := range s.nnzIdx {
		v := a.Data[idx]
		data[s.scatterDst[t]] = v
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-12 // static order keeps no pivot search; demand headroom
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		pv := data[k*n+k]
		if math.Abs(pv) <= tol {
			return fmt.Errorf("la: step %d pivot %.3g below threshold %.3g: %w", k, pv, tol, ErrZeroPivot)
		}
		inv := 1 / pv
		rowK := data[k*n : (k+1)*n]
		uc := s.ucolIdx[s.ucolPtr[k]:s.ucolPtr[k+1]]
		for _, ii := range s.lrowIdx[s.lrowPtr[k]:s.lrowPtr[k+1]] {
			i := int(ii)
			l := data[i*n+k] * inv
			data[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := data[i*n : (i+1)*n]
			for _, j := range uc {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	f.signs = s.permSign
	return nil
}

// factorW1 is the single-word (n ≤ 64) specialization of the
// partial-pivot numeric factorization: every per-row pattern is one
// uint64, so the word loops and strided bitset indexing of the generic
// path collapse to scalar mask operations. Semantics are identical —
// bit-for-bit the same decisions and arithmetic as the generic path and
// the dense LU.
func (f *SparseLU) factorW1(a *Matrix) error {
	s := f.sym
	n := s.n
	lu := f.lu
	copy(lu.Data, a.Data)
	rowPat := f.rowPat
	copy(rowPat, s.initPat)
	colPat := f.colPat
	copy(colPat, s.initColPat)
	lPat := f.lPat
	for i := range lPat {
		lPat[i] = 0
	}
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	maxAbs := 0.0
	data := lu.Data
	for _, idx := range s.nnzIdx {
		if av := math.Abs(data[idx]); av > maxAbs {
			maxAbs = av
		}
	}
	tol := maxAbs * 1e-300
	if tol == 0 {
		tol = 1e-300
	}
	for k := 0; k < n; k++ {
		kbit := uint64(1) << uint(k)
		above := ^uint64(0) << uint(k+1) // zero for k = 63 by Go shift semantics
		p := k
		pm := math.Abs(data[k*n+k])
		for word := colPat[k] & above; word != 0; word &= word - 1 {
			i := bits.TrailingZeros64(word)
			if av := math.Abs(data[i*n+k]); av > pm {
				pm, p = av, i
			}
		}
		if pm <= tol {
			return ErrSingular
		}
		if p != k {
			ri, rk := data[p*n:(p+1)*n], data[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			rowPat[k], rowPat[p] = rowPat[p], rowPat[k]
			lPat[k], lPat[p] = lPat[p], lPat[k]
			pbit := uint64(1) << uint(p)
			for union := (rowPat[k] | rowPat[p]) & (^uint64(0) << uint(k)); union != 0; union &= union - 1 {
				j := bits.TrailingZeros64(union)
				cw := colPat[j]
				if (cw>>uint(k))&1 != (cw>>uint(p))&1 {
					colPat[j] = cw ^ (kbit | pbit)
				}
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / data[k*n+k]
		rowK := data[k*n : (k+1)*n]
		patK := rowPat[k]
		uc := f.ucols[:0]
		for word := patK & above; word != 0; word &= word - 1 {
			uc = append(uc, int32(bits.TrailingZeros64(word)))
		}
		for word := colPat[k] & above; word != 0; word &= word - 1 {
			i := bits.TrailingZeros64(word)
			l := data[i*n+k] * inv
			data[i*n+k] = l
			if l == 0 {
				continue
			}
			lPat[i] |= kbit
			rowI := data[i*n : (i+1)*n]
			for _, j := range uc {
				rowI[j] -= l * rowK[j]
			}
			ibit := uint64(1) << uint(i)
			for nb := (patK &^ rowPat[i]) & above; nb != 0; nb &= nb - 1 {
				colPat[bits.TrailingZeros64(nb)] |= ibit
			}
			rowPat[i] |= patK
		}
	}
	f.signs = sign
	return nil
}

// solveW1 is the single-word specialization of the partial-pivot solve.
func (f *SparseLU) solveW1(x, b []float64) {
	n := f.sym.n
	data := f.lu.Data
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for word := f.lPat[i]; word != 0; word &= word - 1 {
			k := bits.TrailingZeros64(word)
			acc -= row[k] * x[k]
		}
		x[i] = acc
	}
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for word := f.rowPat[i] & (^uint64(0) << uint(i+1)); word != 0; word &= word - 1 {
			j := bits.TrailingZeros64(word)
			acc -= row[j] * x[j]
		}
		x[i] = acc / row[i]
	}
}

// Solve returns x with A·x = b.
func (f *SparseLU) Solve(b []float64) []float64 {
	x := make([]float64, f.sym.n)
	f.SolveInto(x, b)
	return x
}

// SolveInto writes the solution of A·x = b into x without allocating.
// x must not alias b; b is not modified. In partial-pivot mode the
// result is bit-identical to the dense LU.SolveInto.
func (f *SparseLU) SolveInto(x, b []float64) {
	s := f.sym
	n := s.n
	if len(b) != n || len(x) != n {
		panic("la: Solve dimension mismatch")
	}
	data := f.lu.Data
	if s.ordered {
		xp := f.xp
		for i := 0; i < n; i++ {
			xp[i] = b[s.rowOrder[i]]
		}
		for i := 1; i < n; i++ {
			row := data[i*n : (i+1)*n]
			acc := xp[i]
			for _, k := range s.lpatIdx[s.lpatPtr[i]:s.lpatPtr[i+1]] {
				acc -= row[k] * xp[k]
			}
			xp[i] = acc
		}
		for i := n - 1; i >= 0; i-- {
			row := data[i*n : (i+1)*n]
			acc := xp[i]
			for _, j := range s.ucolIdx[s.ucolPtr[i]:s.ucolPtr[i+1]] {
				acc -= row[j] * xp[j]
			}
			xp[i] = acc / row[i]
		}
		for i := 0; i < n; i++ {
			x[s.colOrder[i]] = xp[i]
		}
		return
	}
	if s.words == 1 {
		f.solveW1(x, b)
		return
	}
	w := s.words
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution over the recorded nonzero multipliers (all
	// below the diagonal by construction); the dense path's remaining
	// terms subtract exact zeros.
	for i := 1; i < n; i++ {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		for wi, word := range f.lPat[i*w : (i+1)*w] {
			for ; word != 0; word &= word - 1 {
				k := wi<<6 | bits.TrailingZeros64(word)
				acc -= row[k] * x[k]
			}
		}
		x[i] = acc
	}
	// Back substitution over the live U pattern of each row.
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		acc := x[i]
		pw := f.rowPat[i*w : (i+1)*w]
		startW := (i + 1) >> 6
		for wi := startW; wi < w; wi++ {
			word := pw[wi]
			if wi == startW {
				word &= ^uint64(0) << uint((i+1)&63)
			}
			for ; word != 0; word &= word - 1 {
				j := wi<<6 | bits.TrailingZeros64(word)
				acc -= row[j] * x[j]
			}
		}
		x[i] = acc / row[i]
	}
}

// Det returns det(A) from the factorization.
func (f *SparseLU) Det() float64 {
	d := float64(f.signs)
	n := f.sym.n
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// MulVecInto computes y = A·x over the analyzed pattern only (off-
// pattern entries of a are zero by contract). Used by the modified-
// Newton residual path, where a dense mat-vec would cost as much as the
// sparse refactor it is meant to avoid.
func (s *Symbolic) MulVecInto(y []float64, a *Matrix, x []float64) {
	n := s.n
	if len(y) != n || len(x) != n || a.Rows != n || a.Cols != n {
		panic("la: MulVecInto dimension mismatch")
	}
	data := a.Data
	for i := 0; i < n; i++ {
		acc := 0.0
		for t := s.mulPtr[i]; t < s.mulPtr[i+1]; t++ {
			acc += data[s.nnzIdx[t]] * x[s.mulCol[t]]
		}
		y[i] = acc
	}
}
