// Package stagespec translates ADC-level requirements (resolution, sample
// rate, reference) into per-stage MDAC block specifications — the
// "designer-derived analytical model for system-level description" of the
// paper's hybrid methodology. The equations are the standard pipelined-ADC
// design procedure: kT/C noise budgeting sets the sampling capacitors,
// residue accuracy sets settling tolerance and open-loop gain, and the
// two-phase clock sets the available settling window.
package stagespec

import (
	"fmt"
	"math"

	"pipesyn/internal/enum"
	"pipesyn/internal/pdk"
)

// ADCSpec is the converter-level requirement set.
type ADCSpec struct {
	Bits       int     // K, effective resolution
	SampleRate float64 // Fs in Hz
	VRef       float64 // full-scale range, V (residues swing ±VRef/2)
	Process    *pdk.Process

	// NoiseFraction is the ratio of the total thermal-noise power budget
	// to the quantization noise power (default 1: equal split, ~3 dB SNR
	// cost, the conventional choice).
	NoiseFraction float64
	// SettleFraction is the share of the half-period left for linear
	// settling after non-overlap and slewing margins (default 0.75).
	SettleFraction float64
	// SlewFraction is the share of the half-period allowed for slewing
	// (default 0.25).
	SlewFraction float64
}

// FillDefaults populates zero-valued knobs.
func (a *ADCSpec) FillDefaults() {
	if a.VRef == 0 {
		a.VRef = 1.0
	}
	if a.Process == nil {
		a.Process = pdk.TSMC025()
	}
	if a.NoiseFraction == 0 {
		a.NoiseFraction = 1.0
	}
	if a.SettleFraction == 0 {
		a.SettleFraction = 0.75
	}
	if a.SlewFraction == 0 {
		a.SlewFraction = 0.25
	}
}

// Validate rejects inconsistent converter-level specs.
func (a *ADCSpec) Validate() error {
	switch {
	case a.Bits < 4 || a.Bits > 16:
		return fmt.Errorf("stagespec: resolution %d outside supported 4..16 bits", a.Bits)
	case a.SampleRate <= 0:
		return fmt.Errorf("stagespec: non-positive sample rate")
	case a.VRef <= 0:
		return fmt.Errorf("stagespec: non-positive reference")
	}
	return a.Process.Validate()
}

// MDACSpec is the block-level requirement set for one pipeline stage,
// ready for the synthesis engine.
type MDACSpec struct {
	Stage     int     // 1-based position
	Bits      int     // mᵢ, raw stage resolution
	PriorBits int     // R_{i-1}
	Gain      float64 // inter-stage residue gain 2^(mᵢ−1)
	Beta      float64 // feedback factor of the hold-phase loop ≈ 1/Gain

	CSample float64 // total sampling capacitance, F
	CFeed   float64 // feedback capacitance, F (CSample/Gain)
	CLoad   float64 // load during hold: next stage's sampling cap

	SettleTol float64 // required relative residue accuracy ε
	TSettle   float64 // linear-settling window, s
	TSlew     float64 // slewing window, s

	GBWMin   float64 // required loop unity-gain bandwidth, Hz
	SRMin    float64 // required slew rate, V/s
	GainMin  float64 // required amplifier DC gain, V/V
	SwingMin float64 // required output swing (peak), V

	StepMax float64 // worst-case residue step at the amplifier output, V

	// Sub-ADC requirements.
	ComparatorCount int
	CompOffsetTol   float64 // tolerable comparator offset, V
}

// Translate maps an ADC spec and a leading-stage configuration into MDAC
// block specs, one per listed stage.
func Translate(adc ADCSpec, cfg enum.Config) ([]MDACSpec, error) {
	adc.FillDefaults()
	if err := adc.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Valid(6) {
		return nil, fmt.Errorf("stagespec: invalid configuration %s", cfg)
	}
	if cfg.Resolution() > adc.Bits {
		return nil, fmt.Errorf("stagespec: configuration %s resolves %d bits, more than target %d",
			cfg, cfg.Resolution(), adc.Bits)
	}
	p := adc.Process
	lsb := adc.VRef / math.Pow(2, float64(adc.Bits))
	qNoise := lsb * lsb / 12
	thermalBudget := adc.NoiseFraction * qNoise

	tHalf := 1 / (2 * adc.SampleRate)
	tSettle := adc.SettleFraction * tHalf
	tSlew := adc.SlewFraction * tHalf

	specs := make([]MDACSpec, len(cfg))
	caps := make([]float64, len(cfg))

	// Noise budgeting: stage i gets a 2^-i share of the thermal budget
	// (geometric allocation front-loads the budget where capacitors are
	// most expensive); the input-referred noise of stage i is kT/Cᵢ
	// divided by the squared gain preceding it.
	totalShare := 0.0
	for i := range cfg {
		totalShare += math.Pow(0.5, float64(i+1))
	}
	for i, m := range cfg {
		share := math.Pow(0.5, float64(i+1)) / totalShare
		gPrior := 1.0
		if i > 0 {
			// Cumulative residue gain before stage i: 2^(R_{i-1}−1).
			gPrior = math.Pow(2, float64(cfg.ResolutionAfter(i)-1))
		}
		vnsq := share * thermalBudget * gPrior * gPrior
		caps[i] = p.ClampC(p.NoiseCapFor(vnsq))
		_ = m
	}

	for i, m := range cfg {
		gain := math.Pow(2, float64(m-1))
		prior := cfg.ResolutionAfter(i)
		// Residue accuracy: total stage error < ½ LSB of the bits that
		// remain after this stage completes its own mᵢ−1 effective bits.
		resAfter := cfg.ResolutionAfter(i + 1)
		eps := math.Pow(2, -float64(adc.Bits-resAfter+1))
		if adc.Bits == resAfter {
			eps = math.Pow(2, -2) // last stage: quarter-LSB, nearly free
		}

		// Linear settling: ε = exp(−t/τ) → required closed-loop τ.
		ntau := math.Log(1 / eps)
		tau := tSettle / ntau
		fCl := 1 / (2 * math.Pi * tau)
		beta := 1 / gain

		// Load: next listed stage's sampling cap, or a tail-stage cap.
		cl := p.CapMin * 4
		if i+1 < len(cfg) {
			cl = caps[i+1]
		}

		// Slew: worst residue step is the full reference (comparator
		// decision flips the DAC by VRef at the summing node ×gain ≈ VRef
		// at the output).
		step := adc.VRef
		sr := step / tSlew

		// Static accuracy: 1/(A·β) < ε/2.
		aMin := 2 / (eps * beta)

		specs[i] = MDACSpec{
			Stage:     i + 1,
			Bits:      m,
			PriorBits: prior,
			Gain:      gain,
			Beta:      beta,
			CSample:   caps[i],
			CFeed:     caps[i] / gain,
			CLoad:     cl,
			SettleTol: eps,
			TSettle:   tSettle,
			TSlew:     tSlew,
			// The amplifier's unity-gain bandwidth must place the loop
			// crossover β·GBW at f_cl: GBW = f_cl/β.
			GBWMin:   fCl / beta,
			SRMin:    sr,
			GainMin:  aMin,
			SwingMin: adc.VRef / 2,
			StepMax:  step,

			ComparatorCount: (1 << m) - 2,
			CompOffsetTol:   adc.VRef / math.Pow(2, float64(m+1)),
		}
	}
	return specs, nil
}

// TailStagePower estimates the power of one implied 2-bit tail stage using
// the closed-form model (the tail is identical across candidates, so only
// its rough magnitude matters for full-ADC numbers; the comparison figures
// exclude it exactly as the paper does).
func TailStagePower(adc ADCSpec) float64 {
	adc.FillDefaults()
	// A late 2-bit stage settles to a few bits: tiny caps, minimum-ish
	// current. Model: gm for f_cl at β=1/2 driving 4·CapMin, plus two
	// comparators.
	p := adc.Process
	tHalf := 1 / (2 * adc.SampleRate)
	tau := (0.75 * tHalf) / math.Log(1/0.01)
	gm := 2 * math.Pi / tau * (4 * p.CapMin) * 2
	id := gm * 0.2 / 2              // square-law I = gm·Vov/2
	return p.VDD * (2*id + 2*20e-6) // amp (2 branches) + 2 comparators
}
