package stagespec

import (
	"math"
	"testing"
	"testing/quick"

	"pipesyn/internal/enum"
)

func adc13() ADCSpec {
	return ADCSpec{Bits: 13, SampleRate: 40e6, VRef: 1.0}
}

func TestTranslate432(t *testing.T) {
	specs, err := Translate(adc13(), enum.Config{4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	s1 := specs[0]
	if s1.Gain != 8 || s1.Beta != 0.125 || s1.Bits != 4 {
		t.Fatalf("stage 1 = %+v", s1)
	}
	// Stage-1 settling tolerance: after stage 1, R=4, so ε = 2^-(13-4+1).
	if math.Abs(s1.SettleTol-math.Pow(2, -10)) > 1e-12 {
		t.Fatalf("ε1 = %g, want 2^-10", s1.SettleTol)
	}
	// 4-bit stage: 2^4−2 = 14 comparators.
	if s1.ComparatorCount != 14 {
		t.Fatalf("comparators = %d, want 14", s1.ComparatorCount)
	}
	// Settling window shares the half-period: 0.75·12.5ns.
	if math.Abs(s1.TSettle-0.75/(2*40e6)) > 1e-15 {
		t.Fatalf("TSettle = %g", s1.TSettle)
	}
	// GBW must comfortably exceed the sample rate for a 13-bit 40 MSPS
	// front stage (hundreds of MHz with β = 1/8).
	if s1.GBWMin < 200e6 {
		t.Fatalf("GBWMin = %g, implausibly low", s1.GBWMin)
	}
}

func TestCapsShrinkDownPipeline(t *testing.T) {
	specs, err := Translate(adc13(), enum.Config{4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].CSample >= specs[i-1].CSample {
			t.Fatalf("caps must shrink: C%d=%g ≥ C%d=%g",
				i+1, specs[i].CSample, i, specs[i-1].CSample)
		}
	}
	// Feedback cap is CSample/Gain.
	for _, s := range specs {
		if math.Abs(s.CFeed-s.CSample/s.Gain) > 1e-20 {
			t.Fatalf("CFeed inconsistent at stage %d", s.Stage)
		}
	}
}

func TestAccuracyRelaxesDownPipeline(t *testing.T) {
	specs, _ := Translate(adc13(), enum.Config{2, 2, 2, 2, 2, 2})
	for i := 1; i < len(specs); i++ {
		if specs[i].SettleTol <= specs[i-1].SettleTol {
			t.Fatalf("tolerance must relax down the pipe: ε%d=%g ε%d=%g",
				i+1, specs[i].SettleTol, i, specs[i-1].SettleTol)
		}
		if specs[i].GainMin >= specs[i-1].GainMin {
			t.Fatalf("gain requirement must relax down the pipe")
		}
	}
}

func TestFirstStageCapDominates(t *testing.T) {
	// The 13-bit front stage needs a kT/C-sized capacitor in the picofarad
	// class; sanity-check the absolute scale.
	specs, _ := Translate(adc13(), enum.Config{4, 3, 2})
	c1 := specs[0].CSample
	if c1 < 0.2e-12 || c1 > 20e-12 {
		t.Fatalf("C1 = %g F, outside the plausible pF range", c1)
	}
}

func TestHigherResolutionNeedsMoreCap(t *testing.T) {
	cfg := enum.Config{4, 3, 2}
	s13, _ := Translate(adc13(), cfg)
	a := adc13()
	a.Bits = 10
	s10, _ := Translate(a, cfg)
	if s13[0].CSample <= s10[0].CSample {
		t.Fatalf("13-bit C1 (%g) must exceed 10-bit C1 (%g)",
			s13[0].CSample, s10[0].CSample)
	}
	if s13[0].GainMin <= s10[0].GainMin {
		t.Fatal("13-bit gain requirement must exceed 10-bit")
	}
}

func TestTranslateErrors(t *testing.T) {
	if _, err := Translate(ADCSpec{Bits: 2, SampleRate: 1e6}, enum.Config{2, 2}); err == nil {
		t.Fatal("expected resolution-range error")
	}
	if _, err := Translate(ADCSpec{Bits: 13}, enum.Config{4, 3, 2}); err == nil {
		t.Fatal("expected sample-rate error")
	}
	if _, err := Translate(adc13(), enum.Config{}); err == nil {
		t.Fatal("expected invalid-config error")
	}
	if _, err := Translate(adc13(), enum.Config{3, 4}); err == nil {
		t.Fatal("expected ascending-config error")
	}
	// Config resolving more bits than the converter target.
	a := adc13()
	a.Bits = 5
	if _, err := Translate(a, enum.Config{4, 4}); err == nil {
		t.Fatal("expected over-resolution error")
	}
}

// Property: for any valid enumerated candidate, the translation yields
// monotonically relaxing accuracy and positive physical quantities.
func TestTranslateInvariantsProperty(t *testing.T) {
	cands, err := enum.Candidates(13, enum.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(pick uint8, bitsRaw uint8) bool {
		cfg := cands[int(pick)%len(cands)]
		a := adc13()
		a.Bits = int(bitsRaw)%6 + 8 // 8..13
		if cfg.Resolution() > a.Bits {
			return true
		}
		specs, err := Translate(a, cfg)
		if err != nil {
			return false
		}
		for i, s := range specs {
			if s.CSample <= 0 || s.GBWMin <= 0 || s.SRMin <= 0 ||
				s.GainMin <= 1 || s.TSettle <= 0 || s.SettleTol <= 0 {
				return false
			}
			if s.ComparatorCount != (1<<s.Bits)-2 {
				return false
			}
			if i > 0 && s.SettleTol < specs[i-1].SettleTol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTailStagePower(t *testing.T) {
	p := TailStagePower(adc13())
	if p <= 0 || p > 5e-3 {
		t.Fatalf("tail stage power = %g W, outside plausible range", p)
	}
}
