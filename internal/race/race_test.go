package race

import (
	"math"
	"reflect"
	"testing"
)

func TestPlanShape(t *testing.T) {
	// Two rungs at eta 4: a quarter-budget screen, then full fidelity.
	got := Plan(7, 2, 4)
	want := []Rung{{Divisor: 4, Keep: 4}, {Divisor: 1, Keep: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Plan(7,2,4) = %+v, want %+v", got, want)
	}

	// Three rungs: divisors are eta^2, eta, 1 and the halving chains
	// 7 → 4 → 2.
	got = Plan(7, 3, 3)
	want = []Rung{{Divisor: 9, Keep: 4}, {Divisor: 3, Keep: 2}, {Divisor: 1, Keep: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Plan(7,3,3) = %+v, want %+v", got, want)
	}

	// One rung is the uniform-budget flow: full fidelity, no pruning.
	got = Plan(7, 1, 4)
	want = []Rung{{Divisor: 1, Keep: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Plan(7,1,4) = %+v, want %+v", got, want)
	}

	// Clamps: zero/negative arguments degrade to sane plans instead of
	// panicking or emitting divisor 0.
	for _, p := range [][]Rung{Plan(0, 0, 0), Plan(1, 2, 1), Plan(3, 2, -5)} {
		for _, r := range p {
			if r.Divisor < 1 {
				t.Fatalf("plan emitted divisor %d", r.Divisor)
			}
		}
		if p[len(p)-1].Divisor != 1 || p[len(p)-1].Keep != 0 {
			t.Fatalf("final rung must be full fidelity with no promotion: %+v", p)
		}
	}

	// A single candidate is never pruned away.
	for _, r := range Plan(1, 3, 4) {
		if r.Keep < 0 || (r.Keep == 0) != (r.Divisor == 1) {
			t.Fatalf("single-candidate plan pruned the field: %+v", r)
		}
	}
}

func TestPromoteRanking(t *testing.T) {
	standings := []Standing{
		{Index: 0, Feasible: true, Cost: 3.0},
		{Index: 1, Feasible: false, Cost: 0.1}, // cheap but infeasible
		{Index: 2, Feasible: true, Cost: 1.0},
		{Index: 3, Feasible: true, Cost: 2.0},
		{Index: 4, Feasible: false, Cost: 9.0},
	}
	// Feasibility dominates cost: the cheap infeasible candidate loses to
	// every feasible one.
	if got, want := Promote(standings, 3), []int{0, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Promote(.., 3) = %v, want %v", got, want)
	}
	// With everything feasible exhausted, infeasibles rank by cost.
	if got, want := Promote(standings, 4), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Promote(.., 4) = %v, want %v", got, want)
	}
	// keep beyond the field promotes everyone; keep 0 promotes no one.
	if got := Promote(standings, 99); len(got) != 5 {
		t.Fatalf("oversized keep promoted %d of 5", len(got))
	}
	if got := Promote(standings, 0); got != nil {
		t.Fatalf("keep=0 promoted %v", got)
	}
	// Input order is untouched.
	if standings[1].Index != 1 || standings[0].Cost != 3.0 {
		t.Fatal("Promote mutated its input")
	}
}

func TestPromoteDeterministicTieBreak(t *testing.T) {
	// Exact cost ties resolve by enumeration index, so a racing study is
	// reproducible bit for bit no matter how the standings were computed.
	standings := []Standing{
		{Index: 3, Feasible: true, Cost: 1.0},
		{Index: 1, Feasible: true, Cost: 1.0},
		{Index: 2, Feasible: true, Cost: 1.0},
	}
	if got, want := Promote(standings, 2), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tie break = %v, want lowest indices %v", got, want)
	}
	// NaN costs (a candidate whose every stage failed to evaluate) must
	// not poison the ordering: they sort after real costs within their
	// feasibility class because every comparison with NaN is false.
	withNaN := []Standing{
		{Index: 0, Feasible: false, Cost: math.NaN()},
		{Index: 1, Feasible: true, Cost: 2.0},
	}
	if got, want := Promote(withNaN, 1), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("NaN handling = %v, want %v", got, want)
	}
}
