// Package race is the successive-halving scheduler behind the study
// engine's racing mode: every enumeration candidate runs at a cheap
// low-fidelity synthesis budget first, the top half (by feasibility,
// then cost) is promoted, and only the survivors pay for full fidelity.
// It is the mechanized analogue of the paper's designer pruning clearly
// losing stage-resolution configurations by inspection before spending
// simulation time on them.
//
// The package is pure planning and ranking — no goroutines, no
// randomness, no floating-point reductions — so the determinism contract
// of the surrounding engine (bit-identical studies for any worker count)
// reduces to calling these functions with deterministic inputs.
package race

import "sort"

// Standing is one candidate's costed outcome at a rung: its index in
// the enumeration order, whether every stage was feasible, and the total
// power-based cost the study ranks on.
type Standing struct {
	Index    int
	Feasible bool
	Cost     float64
}

// Rung is one fidelity level of a racing plan. Divisor scales the
// synthesis budget down (MaxEvals and PatternIter are divided by it,
// floored at one evaluation); Keep is how many candidates survive into
// the next rung (0 on the final rung — nothing follows it).
type Rung struct {
	Divisor int
	Keep    int
}

// Plan lays out a successive-halving schedule for n candidates over the
// given number of rungs with fidelity ratio eta between adjacent rungs:
// rung r of R runs at budget divisor eta^(R-1-r), so the final rung is
// always full fidelity (divisor 1). Each rung promotes the top half of
// its entrants (ceil/2, never fewer than one); the final rung keeps 0.
// Out-of-range arguments are clamped (rungs ≥ 1, eta ≥ 2), and a
// single-rung plan degenerates to the uniform-budget flow.
func Plan(n, rungs, eta int) []Rung {
	if rungs < 1 {
		rungs = 1
	}
	if eta < 2 {
		eta = 2
	}
	if n < 1 {
		n = 1
	}
	out := make([]Rung, rungs)
	entrants := n
	for r := 0; r < rungs; r++ {
		div := 1
		for k := 0; k < rungs-1-r; k++ {
			div *= eta
		}
		keep := (entrants + 1) / 2
		if keep < 1 {
			keep = 1
		}
		if r == rungs-1 {
			keep = 0 // nothing follows the full-fidelity rung
		}
		out[r] = Rung{Divisor: div, Keep: keep}
		if keep > 0 {
			entrants = keep
		}
	}
	return out
}

// Promote ranks the standings — fully feasible candidates first, then
// ascending cost, with the enumeration index as the deterministic tie
// breaker — and returns the indices of the top keep candidates in
// ascending index order, ready to drive the next rung in the same
// deterministic iteration order every worker count produces. The input
// slice is not modified. keep values beyond len(standings) promote
// everyone.
func Promote(standings []Standing, keep int) []int {
	if keep <= 0 {
		return nil
	}
	ranked := append([]Standing(nil), standings...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Index < b.Index
	})
	if keep > len(ranked) {
		keep = len(ranked)
	}
	out := make([]int, keep)
	for i := 0; i < keep; i++ {
		out[i] = ranked[i].Index
	}
	sort.Ints(out)
	return out
}
