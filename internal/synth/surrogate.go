// Deterministic quadratic surrogate for the sizing search: a
// per-coordinate quadratic model over the log-space design vectors the
// annealer has already paid to evaluate, proposing the model minimizer
// as a candidate sizing every few moves. This is the cheap Go analogue
// of the HEBO-style Bayesian sizing loop (SNIPPETS.md Snippet 2): the
// model is fit with exact least squares over an order-pinned history —
// no randomness, no iterative solvers — so a surrogate-guided run is
// exactly reproducible and stays bit-identical for any worker count.
package synth

import (
	"math"

	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
)

const (
	// surrogateWindow bounds the evaluation history the model fits on:
	// recent evaluations describe the current basin; ancient ones from a
	// hot annealing phase would drag the fit toward stale geometry.
	surrogateWindow = 64
	// surrogatePeriod is how many annealer moves (or batches) separate
	// two surrogate proposals; the moves in between feed the model.
	surrogatePeriod = 8
	// surrogateMinFit is the observation count below which the model
	// stays silent — a quadratic through too few points extrapolates
	// wildly.
	surrogateMinFit = 8
	// surrogateTrust clamps a proposal to this log-space distance from
	// the incumbent per coordinate (~1.65× either way in linear units):
	// the model is only trusted near the data that fit it.
	surrogateTrust = 0.5
)

// surrogate accumulates (log-sizing, cost) observations in a ring and
// proposes the per-coordinate quadratic minimizer around an incumbent.
// Not safe for concurrent use; each restart owns one.
type surrogate struct {
	dims int
	xs   [][]float64 // log-space sizing vectors (ring, insertion order)
	ys   []float64   // scalar costs
	next int         // overwrite cursor once the ring is full

	proposals int // proposals issued to the evaluator
	accepted  int // proposals the annealer accepted as incumbent
}

func newSurrogate(dims int) *surrogate {
	return &surrogate{dims: dims}
}

// observe folds one completed evaluation into the history. Failed or
// unbounded-cost candidates carry no gradient information and are
// skipped, as are vectors of unexpected shape.
func (s *surrogate) observe(sc scored) {
	if s == nil || sc.err != nil || sc.sizing == nil {
		return
	}
	if math.IsInf(sc.cost, 0) || math.IsNaN(sc.cost) {
		return
	}
	v := sc.sizing.Vector()
	if len(v) != s.dims {
		return
	}
	x := make([]float64, s.dims)
	for i, val := range v {
		if val <= 0 {
			return
		}
		x[i] = math.Log(val)
	}
	if len(s.xs) < surrogateWindow {
		s.xs = append(s.xs, x)
		s.ys = append(s.ys, sc.cost)
		return
	}
	s.xs[s.next] = x
	s.ys[s.next] = sc.cost
	s.next = (s.next + 1) % surrogateWindow
}

// propose fits the model and returns the trust-clamped minimizer built
// on the incumbent's cell class, or ok=false when there is not enough
// history, no coordinate has a convex fit that moves, or the rebuilt
// sizing is invalid.
func (s *surrogate) propose(incumbent opamp.Amp, proc *pdk.Process) (opamp.Amp, bool) {
	if s == nil || len(s.ys) < surrogateMinFit {
		return nil, false
	}
	v := incumbent.Vector()
	if len(v) != s.dims {
		return nil, false
	}
	moved := false
	out := make([]float64, s.dims)
	for d := 0; d < s.dims; d++ {
		xi := math.Log(v[d])
		out[d] = v[d]
		xStar, ok := s.fitDim(d)
		if !ok {
			continue
		}
		// Trust region: the quadratic is a local story.
		if xStar > xi+surrogateTrust {
			xStar = xi + surrogateTrust
		}
		if xStar < xi-surrogateTrust {
			xStar = xi - surrogateTrust
		}
		if math.Abs(xStar-xi) < 1e-12 {
			continue
		}
		out[d] = math.Exp(xStar)
		moved = true
	}
	if !moved {
		return nil, false
	}
	cand, err := incumbent.WithVector(out)
	if err != nil {
		return nil, false
	}
	return cand.Bound(proc), true
}

// fitDim least-squares fits y ≈ a·x² + b·x + c over the history's
// coordinate d and returns the minimizer -b/(2a) when the fit is
// usefully convex (a > 0 with a well-conditioned normal system).
func (s *surrogate) fitDim(d int) (float64, bool) {
	n := float64(len(s.ys))
	var s1, s2, s3, s4, t0, t1, t2 float64
	for i, x := range s.xs {
		xd := x[d]
		x2 := xd * xd
		s1 += xd
		s2 += x2
		s3 += x2 * xd
		s4 += x2 * x2
		y := s.ys[i]
		t0 += y
		t1 += xd * y
		t2 += x2 * y
	}
	// Degenerate spread (every observation at the same coordinate value)
	// makes the normal system singular; skip the dimension.
	if s2-s1*s1/n < 1e-18 {
		return 0, false
	}
	// Cramer's rule on the 3×3 normal equations
	//   [s4 s3 s2][a]   [t2]
	//   [s3 s2 s1][b] = [t1]
	//   [s2 s1 n ][c]   [t0]
	det := s4*(s2*n-s1*s1) - s3*(s3*n-s1*s2) + s2*(s3*s1-s2*s2)
	scale := s4*s2*n + 1e-300
	if math.Abs(det) < 1e-12*math.Abs(scale) {
		return 0, false
	}
	a := (t2*(s2*n-s1*s1) - s3*(t1*n-s1*t0) + s2*(t1*s1-s2*t0)) / det
	b := (s4*(t1*n-s1*t0) - t2*(s3*n-s1*s2) + s2*(s3*t0-t1*s2)) / det
	if a <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return 0, false // concave or flat: no interior minimizer to propose
	}
	return -b / (2 * a), true
}
