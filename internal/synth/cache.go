// Content-addressed result cache for the sizing engine. A synthesis is a
// pure function of (block spec, process, optimizer options, topology), so
// its result can be keyed by a hash of those inputs and replayed for
// free: regenerating figures, re-running a sweep, or retargeting a study
// all hit the same design points again. The warm-start seed is
// deliberately excluded from the key — warm and cold runs of the same
// request are interchangeable answers to the same question, which is
// what turns a retarget study over cached specs into pure cache hits.
package synth

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func init() {
	// Result.Sizing is an interface; gob needs the concrete cells.
	gob.Register(opamp.MillerSizing{})
	gob.Register(opamp.TelescopicSizing{})
}

// Canonical returns a copy of o with the execution-only knobs cleared —
// WarmStart (see package comment), Workers, Pool, Cache, EvalHook, and
// Progress can never change the result — and the zero fields normalized
// to their defaults. Two Options with equal Canonical forms request the
// same synthesis; CacheKey and the service-level study content address
// both hash this form.
func (o Options) Canonical() Options {
	o.WarmStart = nil
	o.Workers = 0
	o.Pool = nil
	o.Cache = nil
	o.EvalHook = nil
	o.Progress = nil
	o.defaults() // normalize zero fields without the warm-start shrink
	return o
}

// CacheKey computes the content address of a synthesis request: a
// SHA-256 over the block spec, the process name, and the canonicalized
// optimizer options (see Canonical). Keys are stable across processes,
// so a disk store written by one run is valid for every later one.
func CacheKey(spec stagespec.MDACSpec, proc *pdk.Process, opts Options) string {
	opts = opts.Canonical()
	procName := ""
	if proc != nil {
		procName = proc.Name
	}
	type keyFields struct {
		Spec                         stagespec.MDACSpec
		Process                      string
		Seed                         int64
		MaxEvals, PatternIter        int
		Restarts                     int
		InitTemp, CoolRate, PenaltyW float64
		Mode, Topology               int
		// BatchEval changes the annealing trajectory only when >1, and
		// keys minted before the knob existed must stay valid, so the
		// field is omitted from the serialized form at its default.
		// NewtonReuse follows the same pattern: the tolerance-contracted
		// reuse path can shift the trajectory, so it keys only when on.
		BatchEval   int  `json:",omitempty"`
		NewtonReuse bool `json:",omitempty"`
		// Surrogate redirects every few annealer moves to the quadratic
		// model's proposal, changing the trajectory; keys only when on.
		Surrogate bool `json:",omitempty"`
	}
	kf := keyFields{spec, procName, opts.Seed, opts.MaxEvals, opts.PatternIter,
		opts.Restarts, opts.InitTemp, opts.CoolRate, opts.PenaltyW,
		int(opts.Mode), int(opts.Topology), 0, opts.NewtonReuse, opts.Surrogate}
	if opts.BatchEval > 1 {
		kf.BatchEval = opts.BatchEval
	}
	blob, err := json.Marshal(kf)
	if err != nil {
		// Only value fields above; Marshal cannot fail. Keep the
		// signature clean and make any future regression loud.
		panic(fmt.Sprintf("synth: cache key marshal: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// CacheStats counts cache traffic since construction.
type CacheStats struct {
	Hits     int64 // Get calls answered (memory, disk, or peer fill)
	DiskHits int64 // subset of Hits served from the on-disk store
	PeerHits int64 // subset of Hits served by the fill hook (peer cache tier)
	Misses   int64 // Get calls that found nothing
	Puts     int64
	Evicted  int64 // LRU evictions from the in-memory tier
}

// Cache is a content-addressed synthesis result store: an in-memory LRU
// in front of an optional on-disk gob store, with optional fill/push
// hooks that extend it into a shared cluster tier. Safe for concurrent
// use by the parallel scheduler.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats
	fill    func(key string) (*Result, bool)
	push    func(key string, res *Result)
}

type cacheEntry struct {
	key string
	res Result
}

// DefaultCacheEntries bounds the in-memory tier when NewCache is given a
// non-positive size: generous for a full multi-resolution sweep (tens of
// design points per study) while staying a few megabytes at most.
const DefaultCacheEntries = 4096

// NewCache builds a cache holding up to maxEntries results in memory.
// A non-empty dir adds a persistent gob store (created if missing):
// misses fall through to disk, and every Put is written through.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("synth: cache dir: %w", err)
		}
	}
	return &Cache{
		max:     maxEntries,
		dir:     dir,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}, nil
}

// SetFill installs the miss-path fallback consulted after memory and
// disk — the peer cache tier: the cluster layer points it at the ring
// owner's /v1/cache/{key}. A fill hit is inserted into the local tiers
// (memory, and disk when configured), so repeated asks stay local. The
// hook runs outside the cache lock and must be safe for concurrent use.
func (c *Cache) SetFill(fill func(key string) (*Result, bool)) {
	c.mu.Lock()
	c.fill = fill
	c.mu.Unlock()
}

// SetPush installs the write-through hook invoked (outside the lock) on
// every Put: the cluster layer uses it to replicate fresh entries to the
// key's ring owner, so any peer's later fill finds them there. The hook
// must be safe for concurrent use and should not block the caller.
func (c *Cache) SetPush(push func(key string, res *Result)) {
	c.mu.Lock()
	c.push = push
	c.mu.Unlock()
}

// Get returns a copy of the cached result for key, consulting memory
// first, then the disk store, then the fill hook (peer tier).
func (c *Cache) Get(key string) (*Result, bool) {
	if res, ok := c.GetLocal(key); ok {
		return res, ok
	}
	c.mu.Lock()
	fill := c.fill
	c.mu.Unlock()
	if fill != nil {
		if res, ok := fill(key); ok && res != nil {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.PeerHits++
			c.insertLocked(key, *res)
			c.mu.Unlock()
			if c.dir != "" {
				_ = c.storeDisk(key, res)
			}
			return res, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// GetLocal is Get restricted to the local tiers (memory and disk): the
// handler serving /v1/cache/{key} to peers uses it, so one node's probe
// can never recurse into another fill. A local miss is not counted —
// the caller decides whether it falls through to the peer tier.
func (c *Cache) GetLocal(key string) (*Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.stats.Hits++
		c.mu.Unlock()
		return &res, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if res, err := c.loadDisk(key); err == nil {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.DiskHits++
			c.insertLocked(key, *res)
			c.mu.Unlock()
			return res, true
		}
	}
	return nil, false
}

// Put stores a copy of res under key, writing through to the disk store
// when one is configured and to the push hook when one is installed.
// Disk failures are non-fatal: the cache is an accelerator, not a
// source of truth.
func (c *Cache) Put(key string, res *Result) {
	if res == nil {
		return
	}
	push := c.putLocal(key, res)
	if push != nil {
		push(key, res)
	}
}

// PutLocal is Put without the push hook: the handler ingesting a peer's
// pushed entry uses it, so replication terminates at the receiving node
// instead of hopping onward under a disagreeing ring view.
func (c *Cache) PutLocal(key string, res *Result) {
	if res == nil {
		return
	}
	c.putLocal(key, res)
}

func (c *Cache) putLocal(key string, res *Result) func(string, *Result) {
	c.mu.Lock()
	c.stats.Puts++
	c.insertLocked(key, *res)
	push := c.push
	c.mu.Unlock()
	if c.dir != "" {
		_ = c.storeDisk(key, res)
	}
	return push
}

// EncodeResult writes res in the cache's wire/disk format (gob). The
// /v1/cache/{key} peer-fill endpoint serves exactly these bytes.
func EncodeResult(w io.Writer, res *Result) error {
	return gob.NewEncoder(w).Encode(res)
}

// DecodeResult reads a result in the cache's wire/disk format (gob).
func DecodeResult(r io.Reader) (*Result, error) {
	var res Result
	if err := gob.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats snapshots the traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) insertLocked(key string, res Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.stats.Evicted++
	}
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".gob")
}

func (c *Cache) loadDisk(key string) (*Result, error) {
	blob, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return nil, err
	}
	var res Result
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&res); err != nil {
		return nil, fmt.Errorf("synth: corrupt cache entry %s: %w", key, err)
	}
	return &res, nil
}

func (c *Cache) storeDisk(key string, res *Result) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return err
	}
	// Write-sync-rename: concurrent readers never see a torn entry
	// (rename is atomic and CreateTemp names are unique, so racing
	// same-key writers each publish a complete file), and the Sync
	// keeps a crash between rename and writeback from leaving a
	// truncated entry under the final name.
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// The data is durable but the rename is not until the directory
	// entry itself is synced: a crash here could resurface the old name
	// set and lose the entry. Cheap next to the synthesis it caches.
	dir, err := os.Open(c.dir)
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}
