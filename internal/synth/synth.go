// Package synth is the cell-level sizing engine standing in for the
// commercial tool (Cadence NeoCircuit) the paper used: a simulated-
// annealing global search with a coordinate pattern-search refinement,
// driving the hybrid evaluator on every candidate. Design variables are
// explored in log space (widths, currents and capacitors span decades),
// constraints enter through a penalty term, and the objective is static
// power.
//
// Retargeting — the paper's headline productivity claim (first synthesis
// 2–3 weeks, subsequent blocks 1 day) — is supported by warm starts: a
// previously synthesized sizing seeds the search for a neighbouring spec,
// and the annealing schedule shortens accordingly.
package synth

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pipesyn/internal/hybrid"
	"pipesyn/internal/mdac"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sched"
	"pipesyn/internal/stagespec"
)

// Options tunes the optimizer.
type Options struct {
	Seed        int64
	MaxEvals    int     // annealing evaluation budget (default 400)
	InitTemp    float64 // initial annealing temperature (default 2)
	CoolRate    float64 // geometric cooling per move (default 0.98)
	PenaltyW    float64 // constraint penalty weight (default 10)
	Mode        hybrid.Mode
	Topology    opamp.Topology // amplifier cell class (default Miller)
	WarmStart   opamp.Amp      // retargeting seed; nil = equation start
	PatternIter int            // pattern-search polish evaluations (default 120)
	// BatchEval sets the annealer's evaluation batch width: each move
	// draws BatchEval perturbations of the incumbent with sequential RNG
	// draws, scores them through one warm simulation kernel
	// (hybrid.EvaluateBatch), and folds the acceptance decisions in index
	// order. 0 or 1 keeps the historical one-candidate-per-move loop and
	// its exact search trajectory; widths >1 trade per-move locality for
	// kernel amortization and follow a different (still deterministic)
	// trajectory, so the value is part of the cache key only when >1.
	BatchEval int
	// NewtonReuse turns on the simulator's factorization-reuse Newton
	// variant for every evaluation in the search (DESIGN.md §5.5). The
	// reuse path is tolerance-contracted rather than bit-pinned, so a run
	// with it enabled may follow a different (still deterministic)
	// trajectory than the default; like BatchEval it joins the cache key
	// only when set.
	NewtonReuse bool
	// Surrogate interleaves deterministic quadratic-model proposals with
	// the annealer's random moves: a per-coordinate quadratic fit over
	// the log-space sizings already evaluated proposes its trust-clamped
	// minimizer every few moves in place of a random perturbation (see
	// surrogate.go). The model is fit with exact least squares over an
	// order-pinned history — no extra randomness — so the trajectory is
	// still deterministic, just different from the default; like
	// BatchEval the knob joins the cache key only when set.
	Surrogate bool
	// Restarts repeats the anneal+polish pipeline from fresh random seeds
	// and keeps the best outcome; use >1 when the power comparison must
	// be low-variance (the figure-reproduction sweeps do).
	Restarts int

	// Workers bounds the goroutines fanning the restarts out. Each
	// restart owns a deterministic RNG (Seed + r·9973) and the outcomes
	// reduce in restart order, so the result is identical for any worker
	// count. 0 or 1 runs serially.
	Workers int
	// Pool, when set, supplies a shared worker budget instead of Workers
	// — the study scheduler passes its own pool down so a whole sweep
	// respects one machine-wide bound. Never part of the cache key.
	Pool *sched.Pool
	// Cache, when set, short-circuits Synthesize with a previous result
	// for the same content address (see CacheKey) and records new
	// results for later runs. Never part of the cache key.
	Cache *Cache
	// EvalHook, when set, runs before every evaluator call with the
	// 1-based evaluation ordinal. It is the fault-injection seam for the
	// robustness tests: return an error to fail the candidate, panic to
	// exercise the scheduler's fault boundary, or block on ctx.Done() to
	// simulate a stalled evaluation. A non-nil return marks the
	// candidate infeasible exactly like an evaluator error. Never part
	// of the cache key.
	EvalHook func(ctx context.Context, eval int) error
	// Progress, when set, runs after every completed evaluation — the
	// observation seam the serving layer streams per-stage progress
	// from. Unlike EvalHook it cannot influence the search: it sees the
	// per-restart evaluation ordinal and the wall-clock cost of the
	// evaluation it just watched. Restarts may run in parallel, so the
	// callback must be safe for concurrent use and must not block (it
	// runs on the evaluator's hot path). Never part of the cache key.
	Progress func(p Progress)
}

// Progress is one evaluation-granule observation delivered to
// Options.Progress: Eval is the 1-based ordinal within one restart's
// evaluator, Elapsed the wall-clock cost of that evaluation (including a
// hook-rejected candidate's bookkeeping, which is ~0).
type Progress struct {
	Eval    int
	Elapsed time.Duration
}

func (o *Options) defaults() {
	if o.MaxEvals == 0 {
		o.MaxEvals = 400
	}
	if o.InitTemp == 0 {
		o.InitTemp = 2
	}
	if o.CoolRate == 0 {
		o.CoolRate = 0.98
	}
	if o.PenaltyW == 0 {
		o.PenaltyW = 10
	}
	if o.PatternIter == 0 {
		o.PatternIter = 120
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if o.BatchEval < 1 {
		o.BatchEval = 1
	}
	if o.WarmStart != nil {
		// Retargeting: the seed is near-feasible, so spend a fraction of
		// the budget on local refinement instead of global exploration.
		// Clamp to one evaluation so a small caller budget (racing rungs
		// run with MaxEvals as low as 2–8) never silently zeroes the
		// annealing loop and skips global search entirely.
		o.MaxEvals /= 8
		if o.MaxEvals < 1 {
			o.MaxEvals = 1
		}
		o.InitTemp /= 10
	}
}

// Result is a completed synthesis run.
type Result struct {
	Sizing   opamp.Amp
	Metrics  hybrid.Metrics
	Report   hybrid.SpecReport
	Feasible bool
	Evals    int     // evaluator calls spent (0 when served from the cache)
	Cost     float64 // final scalar cost
	// EvalsToFeasible is the evaluation count at which the first feasible
	// candidate appeared (0 when the start point was already feasible,
	// -1 when none was found) — the mechanized analogue of the paper's
	// setup-time comparison.
	EvalsToFeasible int
	// CacheHit marks a result replayed from Options.Cache instead of a
	// fresh search; Evals is 0 on such results.
	CacheHit bool
	// SurrogateProposals / SurrogateAccepted count the quadratic-model
	// sizing proposals issued to the evaluator and the subset the
	// annealer accepted as incumbent (0 unless Options.Surrogate; summed
	// across successful restarts).
	SurrogateProposals int
	SurrogateAccepted  int
}

// runRestart is the single-restart pipeline behind Synthesize; a
// package variable so tests can inject restart failures and verify the
// evaluation accounting.
var runRestart = synthesizeOnce

// Synthesize sizes the MDAC amplifier for the given stage spec at minimum
// power subject to the block constraints. With Restarts > 1 the whole
// pipeline repeats from fresh seeds — in parallel when Workers or Pool
// allow — and the best outcome wins. The reduction over restarts happens
// in restart order, so the result does not depend on the worker count.
//
// Cancelling ctx aborts the search within one evaluation granule and
// returns ctx.Err(); nothing is cached for a cancelled request, so a
// later retry re-runs the full search.
func Synthesize(ctx context.Context, spec stagespec.MDACSpec, proc *pdk.Process, opts Options) (*Result, error) {
	var cacheKey string
	if opts.Cache != nil {
		cacheKey = CacheKey(spec, proc, opts)
		if res, ok := opts.Cache.Get(cacheKey); ok {
			res.CacheHit = true
			res.Evals = 0 // no evaluator calls were spent this run
			// EvalsToFeasible is preserved as stored: it records what the
			// original search cost, and 0 already means "the start point was
			// feasible" — CacheHit is the signal that this replay was free.
			return res, nil
		}
	}
	opts.defaults()

	type restartOut struct {
		res   *Result
		evals int
		err   error
	}
	outs := make([]restartOut, opts.Restarts)
	oneRestart := func(r int) {
		runOpts := opts
		runOpts.Restarts = 1
		runOpts.Seed = opts.Seed + int64(r)*9973
		res, evals, err := runRestart(ctx, spec, proc, runOpts)
		outs[r] = restartOut{res: res, evals: evals, err: err}
	}
	if opts.Restarts > 1 && (opts.Pool != nil || opts.Workers > 1) {
		pool := opts.Pool
		if pool == nil {
			pool = sched.NewPool(opts.Workers)
		}
		if err := pool.ForEach(ctx, opts.Restarts, oneRestart); err != nil {
			// Cancellation or an isolated worker panic: the per-restart
			// outputs are partial, so surface the fault instead of
			// reducing over them.
			return nil, err
		}
	} else {
		for r := 0; r < opts.Restarts; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			oneRestart(r)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var best *Result
	var firstErr error
	totalEvals := 0
	firstFeasibleAt := -1
	surProps, surAcc := 0, 0
	for _, out := range outs {
		// Failed restarts still spent evaluator calls; count them so
		// Evals reflects the true search cost and EvalsToFeasible offsets
		// don't drift when an earlier restart errored out.
		totalEvals += out.evals
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		surProps += out.res.SurrogateProposals
		surAcc += out.res.SurrogateAccepted
		if out.res.EvalsToFeasible >= 0 && firstFeasibleAt < 0 {
			firstFeasibleAt = totalEvals - out.evals + out.res.EvalsToFeasible
		}
		if best == nil || betterResult(out.res, best) {
			best = out.res
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("synth: all restarts failed for stage %d (%d-bit)", spec.Stage, spec.Bits)
	}
	best.Evals = totalEvals
	best.EvalsToFeasible = firstFeasibleAt
	best.SurrogateProposals = surProps
	best.SurrogateAccepted = surAcc
	if opts.Cache != nil {
		opts.Cache.Put(cacheKey, best)
	}
	return best, nil
}

// betterResult prefers feasibility first, then lower cost.
func betterResult(a, b *Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Cost < b.Cost
}

// synthesizeOnce runs one anneal+polish pipeline. It reports the
// evaluator calls spent alongside the result so callers can account for
// the search cost of failed restarts too.
func synthesizeOnce(ctx context.Context, spec stagespec.MDACSpec, proc *pdk.Process, opts Options) (*Result, int, error) {
	rng := rand.New(rand.NewSource(opts.Seed))

	eqSeed, err := opamp.Initial(opts.Topology, proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	if err != nil {
		return nil, 0, err
	}
	ev := newEvaluator(spec, proc, opts.Mode, opts.PenaltyW, opts.EvalHook, opts.Progress)
	ev.se.NewtonReuse = opts.NewtonReuse
	ev.batch = opts.BatchEval
	best := ev.score(ctx, eqSeed)
	if opts.WarmStart != nil {
		// Retargeting: start from the better of the two seeds. A warm
		// start carried over from a *tighter* spec is over-designed for a
		// relaxed one, and the short retarget schedule would never shed
		// the excess power; the equation seed covers that case.
		warm := ev.score(ctx, opts.WarmStart)
		if warm.err == nil && (best.err != nil || warm.cost < best.cost) {
			best = warm
		}
	}
	if best.err != nil {
		// The start point may simply fail to bias; treat as very costly
		// and let annealing walk away from it. Typed sim.ConvergenceError
		// values land here too: an unsolvable candidate is a search
		// outcome, not an engine fault, so the annealer skips it.
		best.cost = math.Inf(1)
	}
	cur := best
	firstFeasible := -1
	if best.feasible() {
		firstFeasible = 0
	}
	var sur *surrogate
	if opts.Surrogate {
		sur = newSurrogate(len(eqSeed.Vector()))
		sur.observe(best)
	}

	// Simulated annealing over log-space perturbations. The context is
	// the abort signal: it is checked once per move, so a cancelled study
	// stops after the candidate (or batch) in flight.
	temp := opts.InitTemp
	fold := func(sc scored) bool {
		accepted := false
		if sc.err == nil {
			if firstFeasible < 0 && sc.feasible() {
				firstFeasible = sc.ord
			}
			accepted = sc.cost < cur.cost
			if !accepted && temp > 0 {
				accepted = rng.Float64() < math.Exp((cur.cost-sc.cost)/math.Max(temp*math.Abs(cur.cost)+1e-12, 1e-12))
			}
			if accepted {
				cur = sc
				if sc.cost < best.cost {
					best = sc
				}
			}
		}
		temp *= opts.CoolRate
		return accepted
	}
	moves := 0
	for ev.evals < opts.MaxEvals {
		if err := ctx.Err(); err != nil {
			return nil, ev.evals, err
		}
		moves++
		if opts.BatchEval <= 1 {
			// Every surrogatePeriod-th move the quadratic model, when it
			// has something to say, takes the slot a random perturbation
			// would have used. Skipping the perturb shifts the RNG stream
			// relative to a surrogate-off run, which is fine: Surrogate is
			// part of the cache key, like BatchEval.
			if sur != nil && moves%surrogatePeriod == 0 {
				if cand, ok := sur.propose(cur.sizing, proc); ok {
					sur.proposals++
					sc := ev.score(ctx, cand)
					sur.observe(sc)
					if fold(sc) {
						sur.accepted++
					}
					continue
				}
			}
			sc := ev.score(ctx, perturb(rng, cur.sizing, temp, proc))
			sur.observe(sc)
			fold(sc)
			continue
		}
		// Batched move: every perturbation starts from the incumbent and
		// the batch-start temperature (the draws are sequential, so the
		// trajectory is reproducible for a fixed BatchEval); acceptance
		// folds in index order, cooling once per candidate to keep the
		// schedule length identical to the serial loop.
		n := opts.BatchEval
		if rem := opts.MaxEvals - ev.evals; n > rem {
			n = rem
		}
		cands := make([]opamp.Amp, n)
		surIdx := -1
		for j := range cands {
			// In batch mode a surrogate proposal rides as candidate 0 of
			// the periodic batch; the remaining slots stay random draws.
			if j == 0 && sur != nil && moves%surrogatePeriod == 0 {
				if cand, ok := sur.propose(cur.sizing, proc); ok {
					cands[0] = cand
					surIdx = 0
					sur.proposals++
					continue
				}
			}
			cands[j] = perturb(rng, cur.sizing, temp, proc)
		}
		for j, sc := range ev.scoreBatch(ctx, cands) {
			sur.observe(sc)
			if fold(sc) && j == surIdx {
				sur.accepted++
			}
		}
	}

	// Coordinate pattern search around the best point.
	best = patternSearch(ctx, ev, best, opts.PatternIter, proc, &firstFeasible)
	if err := ctx.Err(); err != nil {
		return nil, ev.evals, err
	}

	if math.IsInf(best.cost, 1) {
		return nil, ev.evals, fmt.Errorf("synth: no candidate evaluated successfully for stage %d (%d-bit)",
			spec.Stage, spec.Bits)
	}
	out := &Result{
		Sizing:          best.sizing,
		Metrics:         best.metrics,
		Report:          best.report,
		Feasible:        best.feasible(),
		Evals:           ev.evals,
		Cost:            best.cost,
		EvalsToFeasible: firstFeasible,
	}
	if sur != nil {
		out.SurrogateProposals = sur.proposals
		out.SurrogateAccepted = sur.accepted
	}
	return out, ev.evals, nil
}

// scored couples a sizing with its evaluation. ord is the 1-based
// evaluator ordinal the candidate was scored at (the batch path scores
// several candidates before any of them is folded, so the fold cannot
// read the live counter).
type scored struct {
	sizing  opamp.Amp
	metrics hybrid.Metrics
	report  hybrid.SpecReport
	cost    float64
	ord     int
	err     error
}

func (s scored) feasible() bool { return s.err == nil && s.report.Violations == 0 }

type evaluator struct {
	spec     stagespec.MDACSpec
	proc     *pdk.Process
	se       *hybrid.StageEvaluator
	penaltyW float64
	evals    int
	batch    int // Options.BatchEval; >1 batches the pattern-search sweeps too
	hook     func(ctx context.Context, eval int) error
	progress func(p Progress)
}

func newEvaluator(spec stagespec.MDACSpec, proc *pdk.Process, mode hybrid.Mode, penaltyW float64, hook func(context.Context, int) error, progress func(Progress)) *evaluator {
	return &evaluator{
		spec: spec, proc: proc, penaltyW: penaltyW,
		se:       hybrid.NewStageEvaluator(spec, proc, mode),
		hook:     hook,
		progress: progress,
	}
}

// score runs the configured evaluation mode and folds constraint
// violations into a scalar cost: normalized power plus weighted penalty.
func (ev *evaluator) score(ctx context.Context, s opamp.Amp) scored {
	ev.evals++
	ord := ev.evals
	if ev.progress != nil {
		start := time.Now()
		defer func() { ev.progress(Progress{Eval: ord, Elapsed: time.Since(start)}) }()
	}
	if ev.hook != nil {
		if err := ev.hook(ctx, ord); err != nil {
			return scored{sizing: s, ord: ord, err: err, cost: math.Inf(1)}
		}
	}
	m, err := ev.se.Evaluate(ctx, s)
	return ev.finish(s, ord, m, err)
}

// finish folds an evaluation outcome into a scored candidate: constraint
// audit plus the scalar cost (normalized power + weighted penalty).
func (ev *evaluator) finish(s opamp.Amp, ord int, m hybrid.Metrics, err error) scored {
	out := scored{sizing: s, ord: ord, metrics: m, err: err}
	if err != nil {
		out.cost = math.Inf(1)
		return out
	}
	st := mdac.Stage{Spec: ev.spec, Sizing: s, Process: ev.proc}
	out.report = hybrid.Check(hybrid.SpecsFor(st), m)
	// Normalize power against a spec-scale reference so the penalty
	// weight is meaningful across stages.
	pRef := ev.proc.VDD * 1e-3 // 1 mA scale
	out.cost = m.Power/pRef + ev.penaltyW*out.report.Violations
	return out
}

// scoreBatch scores a slice of candidates through one warm simulation
// kernel. Hooks run per candidate in index order with the same ordinals
// the serial path would assign; hook-rejected candidates are excluded
// from the kernel call but still counted. Progress observations are
// emitted per candidate after the batch completes, each carrying an
// equal share of the batch's wall-clock cost.
func (ev *evaluator) scoreBatch(ctx context.Context, cands []opamp.Amp) []scored {
	out := make([]scored, len(cands))
	keep := make([]int, 0, len(cands))
	start := time.Now()
	for i, s := range cands {
		ev.evals++
		out[i] = scored{sizing: s, ord: ev.evals}
		if ev.hook != nil {
			if err := ev.hook(ctx, ev.evals); err != nil {
				out[i].err = err
				out[i].cost = math.Inf(1)
				continue
			}
		}
		keep = append(keep, i)
	}
	// The hook can reject every candidate in a chunk; skip the kernel
	// call instead of handing it a zero-length batch.
	if len(keep) > 0 {
		sub := make([]opamp.Amp, len(keep))
		for j, i := range keep {
			sub[j] = cands[i]
		}
		ms, errs := ev.se.EvaluateBatch(ctx, sub)
		for j, i := range keep {
			out[i] = ev.finish(cands[i], out[i].ord, ms[j], errs[j])
		}
	}
	if ev.progress != nil {
		share := time.Since(start) / time.Duration(len(cands))
		for i := range out {
			ev.progress(Progress{Eval: out[i].ord, Elapsed: share})
		}
	}
	return out
}

// perturb moves a random subset of variables in log space, with step size
// proportional to temperature.
func perturb(rng *rand.Rand, s opamp.Amp, temp float64, proc *pdk.Process) opamp.Amp {
	v := s.Vector()
	scale := 0.05 + 0.4*math.Min(temp, 1)
	n := 1 + rng.Intn(3)
	for k := 0; k < n; k++ {
		i := rng.Intn(len(v))
		factor := math.Exp(rng.NormFloat64() * scale)
		v[i] *= factor
	}
	out, err := s.WithVector(v)
	if err != nil {
		return s
	}
	return out.Bound(proc)
}

// patternSearch polishes with coordinate moves of shrinking step. A
// cancelled context stops the polish; the caller re-checks ctx and
// discards the partial result.
//
// Candidates are rebuilt with WithVector on the incumbent sizing (like
// perturb) so the polish preserves the amplifier's cell class: the old
// opamp.FromVector path always produced a MillerSizing and silently
// swapped a Telescopic amplifier's topology mid-search.
func patternSearch(ctx context.Context, ev *evaluator, best scored, budget int, proc *pdk.Process, firstFeasible *int) scored {
	if ev.batch > 1 {
		return patternSearchBatch(ctx, ev, best, budget, proc, firstFeasible)
	}
	step := 0.25
	dims := len(best.sizing.Vector())
	for spent := 0; spent < budget && step > 0.01; {
		improved := false
		for i := 0; i < dims && spent < budget; i++ {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				if ctx.Err() != nil {
					return best
				}
				v := best.sizing.Vector()
				v[i] *= dir
				cand, err := best.sizing.WithVector(v)
				if err != nil {
					continue
				}
				sc := ev.score(ctx, cand.Bound(proc))
				spent++
				if sc.err == nil {
					if *firstFeasible < 0 && sc.feasible() {
						*firstFeasible = ev.evals
					}
					if sc.cost < best.cost {
						best = sc
						improved = true
						break
					}
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best
}

// patternSearchBatch is the BatchEval>1 variant of the polish: each sweep
// around the incumbent is generated up front in the serial path's
// coordinate/direction order, scored through the warm batch kernel in
// chunks of ev.batch, and folded in index order. An improvement ends the
// sweep (the rest of the in-flight chunk still counts as spent budget,
// exactly like candidates the serial loop scored before breaking), so the
// trajectory is deterministic for a fixed width — but a different one
// than the serial loop's, which is why BatchEval is part of the cache
// key.
func patternSearchBatch(ctx context.Context, ev *evaluator, best scored, budget int, proc *pdk.Process, firstFeasible *int) scored {
	step := 0.25
	dims := len(best.sizing.Vector())
	spent := 0
	for spent < budget && step > 0.01 {
		improved := false
		moves := make([]opamp.Amp, 0, 2*dims)
		for i := 0; i < dims; i++ {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				v := best.sizing.Vector()
				v[i] *= dir
				cand, err := best.sizing.WithVector(v)
				if err != nil {
					continue
				}
				moves = append(moves, cand.Bound(proc))
			}
		}
		for off := 0; off < len(moves) && spent < budget && !improved; off += ev.batch {
			if ctx.Err() != nil {
				return best
			}
			end := off + ev.batch
			if end > len(moves) {
				end = len(moves)
			}
			if rem := budget - spent; end-off > rem {
				end = off + rem
			}
			for _, sc := range ev.scoreBatch(ctx, moves[off:end]) {
				spent++
				if sc.err == nil {
					if *firstFeasible < 0 && sc.feasible() {
						*firstFeasible = sc.ord
					}
					if !improved && sc.cost < best.cost {
						best = sc
						improved = true
					}
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best
}
