package synth

import (
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func lateStageSpecB(b *testing.B) (stagespec.MDACSpec, *pdk.Process) {
	b.Helper()
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	return specs[1], pdk.TSMC025()
}
