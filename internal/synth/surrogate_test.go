package synth

import (
	"context"
	"math"
	"reflect"
	"testing"

	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
)

// TestSurrogateFitRecoversQuadratic: the per-coordinate least-squares
// fit must recover the minimizer of an exactly quadratic history.
func TestSurrogateFitRecoversQuadratic(t *testing.T) {
	s := newSurrogate(1)
	for i := 0; i < 16; i++ {
		x := 0.1 * float64(i)
		s.xs = append(s.xs, []float64{x})
		s.ys = append(s.ys, (x-0.9)*(x-0.9)+0.25)
	}
	got, ok := s.fitDim(0)
	if !ok {
		t.Fatal("fit rejected a cleanly convex history")
	}
	if math.Abs(got-0.9) > 1e-6 {
		t.Fatalf("minimizer = %g, want 0.9", got)
	}

	// A concave history (a < 0) has no interior minimizer to propose.
	c := newSurrogate(1)
	for i := 0; i < 16; i++ {
		x := 0.1 * float64(i)
		c.xs = append(c.xs, []float64{x})
		c.ys = append(c.ys, -(x-0.9)*(x-0.9))
	}
	if _, ok := c.fitDim(0); ok {
		t.Fatal("fit proposed a minimizer for a concave history")
	}

	// Zero coordinate spread makes the normal system singular.
	z := newSurrogate(1)
	for i := 0; i < 16; i++ {
		z.xs = append(z.xs, []float64{0.5})
		z.ys = append(z.ys, float64(i))
	}
	if _, ok := z.fitDim(0); ok {
		t.Fatal("fit accepted a zero-spread history")
	}
}

// TestSurrogateObserveFilters: failed and unbounded evaluations carry no
// model information and must not enter the history; the ring must stay
// bounded at its window.
func TestSurrogateObserveFilters(t *testing.T) {
	spec, proc := lateStageSpec(t)
	seed, err := opamp.Initial(opamp.Miller, proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newSurrogate(len(seed.Vector()))
	s.observe(scored{sizing: seed, cost: math.Inf(1)})
	s.observe(scored{sizing: seed, cost: 1, err: context.Canceled})
	s.observe(scored{cost: 1})
	if len(s.ys) != 0 {
		t.Fatalf("filtered observations entered the history: %d", len(s.ys))
	}
	for i := 0; i < 3*surrogateWindow; i++ {
		s.observe(scored{sizing: seed, cost: float64(i)})
	}
	if len(s.ys) != surrogateWindow {
		t.Fatalf("history grew past the window: %d", len(s.ys))
	}
	// After wrapping, the ring holds the most recent window of costs.
	want := float64(3*surrogateWindow - surrogateWindow)
	found := false
	for _, y := range s.ys {
		if y == want {
			found = true
		}
		if y < want {
			t.Fatalf("stale observation %g survived the ring wrap", y)
		}
	}
	if !found {
		t.Fatal("ring lost a recent observation")
	}
}

// TestSynthesizeSurrogateDeterministic: a surrogate-guided search is a
// pure function of its options — two identical runs must agree bit for
// bit, the model must actually fire, and the trajectory must differ
// from a surrogate-off run (the knob is part of the cache key for that
// reason).
func TestSynthesizeSurrogateDeterministic(t *testing.T) {
	spec, proc := lateStageSpec(t)
	opts := Options{
		Seed: 5, MaxEvals: 150, PatternIter: 40,
		Mode: hybrid.EquationOnly, Surrogate: true,
	}
	a, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("surrogate run is not reproducible:\n%+v\n%+v", a, b)
	}
	if a.SurrogateProposals == 0 {
		t.Fatal("surrogate never proposed over 150 evaluations")
	}
	if a.SurrogateAccepted > a.SurrogateProposals {
		t.Fatalf("accepted %d of %d proposals", a.SurrogateAccepted, a.SurrogateProposals)
	}

	base := opts
	base.Surrogate = false
	c, err := Synthesize(context.Background(), spec, proc, base)
	if err != nil {
		t.Fatal(err)
	}
	if c.SurrogateProposals != 0 || c.SurrogateAccepted != 0 {
		t.Fatalf("surrogate counters leaked into a surrogate-off run: %+v", c)
	}
	if key, baseKey := CacheKey(spec, proc, opts), CacheKey(spec, proc, base); key == baseKey {
		t.Fatal("Surrogate does not move the cache key, but it changes the trajectory")
	}
}

// TestSynthesizeSurrogateBatchWorkerIdentity: the surrogate ride-along
// slot in batched moves and the restart reduction must keep the result
// independent of the worker count.
func TestSynthesizeSurrogateBatchWorkerIdentity(t *testing.T) {
	spec, proc := lateStageSpec(t)
	run := func(workers int) *Result {
		res, err := Synthesize(context.Background(), spec, proc, Options{
			Seed: 9, MaxEvals: 120, PatternIter: 30,
			Mode: hybrid.EquationOnly, Surrogate: true, BatchEval: 4,
			Restarts: 3, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial:\n%+v\n%+v", w, got, serial)
		}
	}
	if serial.SurrogateProposals == 0 {
		t.Fatal("batched surrogate never proposed")
	}
}
