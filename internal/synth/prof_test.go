package synth

import (
	"context"
	"testing"

	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
)

func BenchmarkHybridEval(b *testing.B) {
	spec, proc := lateStageSpecB(b)
	s0 := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	se := hybrid.NewStageEvaluator(spec, proc, hybrid.Hybrid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := se.Evaluate(context.Background(), s0); err != nil {
			b.Fatal(err)
		}
	}
}
