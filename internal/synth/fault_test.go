package synth

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/sched"
	"pipesyn/internal/testutil"
)

// TestPatternSearchPreservesTelescopic is the regression test for the
// polish-stage topology bug: patternSearch used to rebuild candidates
// with opamp.FromVector, which only understands the Miller cell. A
// telescopic incumbent's 9-entry vector was rejected on every move, so
// the polish silently did nothing for that topology. Rebuilding through
// the incumbent's own WithVector must both keep the cell class and
// actually improve the seed.
func TestPatternSearchPreservesTelescopic(t *testing.T) {
	spec, proc := lateStageSpec(t)
	seed, err := opamp.Initial(opamp.Telescopic, proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := newEvaluator(spec, proc, hybrid.EquationOnly, 10, nil, nil)
	start := ev.score(context.Background(), seed)
	if start.err != nil {
		t.Fatalf("telescopic seed failed to evaluate: %v", start.err)
	}
	ff := -1
	got := patternSearch(context.Background(), ev, start, 120, proc, &ff)
	if got.sizing.Topology() != opamp.Telescopic {
		t.Fatalf("polish changed topology to %v", got.sizing.Topology())
	}
	if !(got.cost < start.cost) {
		t.Fatalf("polish left a telescopic seed untouched: cost %g → %g (coordinate moves were all rejected)",
			start.cost, got.cost)
	}
}

// TestSynthesizeTelescopicStaysTelescopic runs the full pipeline on a
// telescopic request: whatever the anneal and polish do, the returned
// sizing must still be the requested cell class.
func TestSynthesizeTelescopicStaysTelescopic(t *testing.T) {
	spec, proc := lateStageSpec(t)
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 7, MaxEvals: 120, PatternIter: 60,
		Mode: hybrid.EquationOnly, Topology: opamp.Telescopic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sizing.Topology(); got != opamp.Telescopic {
		t.Fatalf("synthesized sizing has topology %v, want Telescopic", got)
	}
}

// stallHook blocks every evaluation until the context is cancelled —
// the worst-case evaluator for cancellation latency.
func stallHook(ctx context.Context, _ int) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestSynthesizeCancelPrompt: cancelling mid-search must surface
// ctx.Err() within one evaluation granule, even when that evaluation is
// stalled, and must not leak the search goroutines.
func TestSynthesizeCancelPrompt(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	spec, proc := lateStageSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	startT := time.Now()
	res, err := Synthesize(ctx, spec, proc, Options{
		Seed: 11, MaxEvals: 1000, Mode: hybrid.EquationOnly,
		EvalHook: stallHook,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled synthesis returned a result: %+v", res)
	}
	if elapsed := time.Since(startT); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v, want within one evaluation granule", elapsed)
	}
}

// TestSynthesizeBatchReuseCancel: cancelling a hybrid-mode search that
// runs batched moves (BatchEval > 1) on the reuse-Newton solver path
// must stop within one batch granule and leak nothing — the lane where
// the shared warm kernel, persistent reuse state, and cancellation all
// meet (run under -race in CI).
func TestSynthesizeBatchReuseCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	spec, proc := lateStageSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(80 * time.Millisecond)
		cancel()
	}()
	startT := time.Now()
	res, err := Synthesize(ctx, spec, proc, Options{
		Seed: 23, MaxEvals: 100000, PatternIter: 50000,
		Mode: hybrid.Hybrid, BatchEval: 4, NewtonReuse: true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled synthesis returned a result: %+v", res)
	}
	if elapsed := time.Since(startT); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want within one batch granule", elapsed)
	}
}

// TestSynthesizeDeadlineParallelRestarts: a deadline must tear down a
// pooled multi-restart study — every worker parked in a stalled
// evaluation — promptly and without goroutine leaks.
func TestSynthesizeDeadlineParallelRestarts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	spec, proc := lateStageSpec(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	startT := time.Now()
	_, err := Synthesize(ctx, spec, proc, Options{
		Seed: 13, MaxEvals: 1000, Mode: hybrid.EquationOnly,
		Restarts: 4, Workers: 4,
		EvalHook: stallHook,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(startT); elapsed > 5*time.Second {
		t.Fatalf("deadline teardown took %v", elapsed)
	}
}

// TestSynthesizePanicIsolated: a panicking evaluator inside a pooled
// restart must come back as a typed *sched.PanicError instead of
// crashing the process, and the pool's workers must not leak.
func TestSynthesizePanicIsolated(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	spec, proc := lateStageSpec(t)
	_, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 17, MaxEvals: 50, Mode: hybrid.EquationOnly,
		Restarts: 2, Workers: 2,
		EvalHook: func(context.Context, int) error {
			panic("injected evaluator fault")
		},
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "injected evaluator fault" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost its stack trace")
	}
}

// TestBatchEvalHookRejectsWholeChunk: when the fault hook rejects every
// candidate in an annealing chunk, scoreBatch must skip the simulation
// kernel instead of handing it a zero-length batch, while the rejected
// candidates still count as spent budget and the search routes around
// the dead chunks to a feasible design.
func TestBatchEvalHookRejectsWholeChunk(t *testing.T) {
	spec, proc := lateStageSpec(t)
	rejected := 0
	// BatchEval=4 and one seed evaluation put the first two annealing
	// chunks at ordinals 2–5 and 6–9; rejecting exactly that range makes
	// both chunks all-rejected.
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 31, MaxEvals: 40, PatternIter: 20,
		Mode: hybrid.EquationOnly, BatchEval: 4,
		EvalHook: func(_ context.Context, eval int) error {
			if eval >= 2 && eval <= 9 {
				rejected++
				return fmt.Errorf("injected fault at eval %d", eval)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("all-rejected chunks aborted the search: %v", err)
	}
	if rejected != 8 {
		t.Fatalf("hook rejected %d candidates, want the two full chunks (8)", rejected)
	}
	if !res.Feasible {
		t.Fatalf("search failed to route around rejected chunks: %v", res.Report.Failures)
	}
	if res.Evals < 10 {
		t.Fatalf("rejected candidates must still count as spent budget: Evals = %d", res.Evals)
	}
}

// TestEvalHookFaultsAreSearchOutcomes: sporadic evaluator failures are
// infeasible candidates, not engine faults — the search must route
// around them and still deliver a feasible design.
func TestEvalHookFaultsAreSearchOutcomes(t *testing.T) {
	spec, proc := lateStageSpec(t)
	faults := 0
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 19, MaxEvals: 150, PatternIter: 60, Mode: hybrid.EquationOnly,
		EvalHook: func(_ context.Context, eval int) error {
			if eval%3 == 0 {
				faults++
				return fmt.Errorf("injected fault at eval %d", eval)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("sporadic evaluator faults aborted the search: %v", err)
	}
	if faults == 0 {
		t.Fatal("fault injector never fired")
	}
	if !res.Feasible {
		t.Fatalf("search failed to route around injected faults: %v", res.Report.Failures)
	}
}
