package synth

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
)

func TestCacheKeyStability(t *testing.T) {
	spec, proc := lateStageSpec(t)
	opts := Options{Seed: 7, MaxEvals: 100, PatternIter: 50, Mode: hybrid.Hybrid}
	key := CacheKey(spec, proc, opts)
	if key == "" || len(key) != 64 {
		t.Fatalf("key = %q", key)
	}
	if CacheKey(spec, proc, opts) != key {
		t.Fatal("key not deterministic")
	}

	// Execution knobs and the warm-start seed must not move the key.
	same := opts
	same.Workers = 8
	same.Cache, _ = NewCache(1, "")
	same.WarmStart = opamp.MillerSizing{W1: 1e-6}
	if CacheKey(spec, proc, same) != key {
		t.Fatal("Workers/Cache/WarmStart leaked into the key")
	}
	// Zero options normalize to their defaults, so explicit defaults
	// share the address with implied ones.
	implied := Options{Seed: 7, MaxEvals: 100, PatternIter: 50, Mode: hybrid.Hybrid}
	implied.InitTemp = 0
	explicit := implied
	explicit.InitTemp = 2 // the documented default
	if CacheKey(spec, proc, implied) != CacheKey(spec, proc, explicit) {
		t.Fatal("default normalization failed")
	}
	// BatchEval 0 and 1 both mean serial annealing, so neither may move
	// the key — addresses minted before the knob existed stay valid.
	serial := opts
	serial.BatchEval = 1
	if CacheKey(spec, proc, serial) != key {
		t.Fatal("BatchEval=1 changed the key")
	}

	// Everything that shapes the result must move the key.
	for name, mutate := range map[string]func(*Options){
		"seed":     func(o *Options) { o.Seed++ },
		"budget":   func(o *Options) { o.MaxEvals++ },
		"mode":     func(o *Options) { o.Mode = hybrid.EquationOnly },
		"topology": func(o *Options) { o.Topology = opamp.Telescopic },
		"restarts": func(o *Options) { o.Restarts = 3 },
		"batch":    func(o *Options) { o.BatchEval = 8 },
	} {
		m := opts
		mutate(&m)
		if CacheKey(spec, proc, m) == key {
			t.Fatalf("%s change did not change the key", name)
		}
	}
	spec2 := spec
	spec2.GBWMin *= 1.01
	if CacheKey(spec2, proc, opts) == key {
		t.Fatal("spec change did not change the key")
	}
	if CacheKey(spec, pdk.TSMC025(), opts) != key {
		t.Fatal("same-named process must share the key")
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	res := &Result{Cost: 1, Evals: 10, Sizing: opamp.MillerSizing{W1: 2e-6}}
	c.Put("a", res)
	got, ok := c.Get("a")
	if !ok || got.Cost != 1 || got.Evals != 10 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	// Returned result is a copy: mutating it must not poison the cache.
	got.Cost = 99
	if again, _ := c.Get("a"); again.Cost != 1 {
		t.Fatal("cache entry aliased by caller mutation")
	}

	c.Put("b", &Result{Cost: 2})
	c.Get("a") // refresh a → b is now least recent
	c.Put("c", &Result{Cost: 3})
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU kept the least-recent entry")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("LRU evicted the refreshed entry")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 4 || st.Evicted != 1 || st.Puts != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := &Result{
		Sizing:   opamp.MillerSizing{W1: 3e-6, IRef: 20e-6, CC: 1e-13},
		Feasible: true, Evals: 123, Cost: 0.5, EvalsToFeasible: 9,
		Report: hybrid.SpecReport{Failures: []string{"x"}},
	}
	c1.Put("deadbeef", want)

	// A separate cache instance over the same directory stands in for a
	// fresh process: the entry must come back from disk, byte-faithful.
	c2, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("disk miss")
	}
	if got.Cost != want.Cost || got.Evals != want.Evals || !got.Feasible {
		t.Fatalf("got %+v", got)
	}
	sz, isMiller := got.Sizing.(opamp.MillerSizing)
	if !isMiller || sz.W1 != 3e-6 || sz.IRef != 20e-6 {
		t.Fatalf("sizing did not round-trip: %#v", got.Sizing)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Second Get is served from memory.
	c2.Get("deadbeef")
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A corrupt entry is a miss, not a crash.
	if err := os.WriteFile(filepath.Join(dir, "bad.gob"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("bad"); ok {
		t.Fatal("corrupt entry served")
	}
}

// TestSynthesizeCacheHitSkipsEvaluator drives the cache through
// Synthesize itself: the second identical request replays the result
// with zero evaluator calls, warm-start differences notwithstanding.
func TestSynthesizeCacheHitSkipsEvaluator(t *testing.T) {
	spec, proc := lateStageSpec(t)
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Seed: 3, MaxEvals: 200, PatternIter: 60,
		Mode: hybrid.EquationOnly, Cache: cache,
	}
	cold, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Evals == 0 {
		t.Fatalf("cold run: hit=%v evals=%d", cold.CacheHit, cold.Evals)
	}
	warm, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Evals != 0 {
		t.Fatalf("warm run: hit=%v evals=%d", warm.CacheHit, warm.Evals)
	}
	if warm.Cost != cold.Cost || warm.Feasible != cold.Feasible {
		t.Fatal("cached result differs from the original")
	}
	// A warm-started request for the same spec is the same content
	// address — the retarget flow turns into a cache hit too.
	retarget := opts
	retarget.WarmStart = cold.Sizing
	hit, err := Synthesize(context.Background(), spec, proc, retarget)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("warm-started request missed the cache")
	}
	if st := cache.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheHitPreservesEvalsToFeasible pins the racing metric through a
// cache replay. EvalsToFeasible documents three distinct outcomes: 0 =
// the start point was already feasible, -1 = none found, n>0 = the
// original search spent n evaluations reaching feasibility. The replay
// path used to rewrite n>0 to 0 — conflating "replayed for free" (which
// CacheHit already signals) with "feasible from the start" and
// corrupting every consumer that compares search effort across runs.
func TestCacheHitPreservesEvalsToFeasible(t *testing.T) {
	spec, proc := lateStageSpec(t)
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Reject the first few candidates so the cold search pays a nonzero
	// price for feasibility (the equation seed alone would cost 0). The
	// hook is an execution knob: it does not move the content address.
	opts := Options{
		Seed: 5, MaxEvals: 200, PatternIter: 60,
		Mode: hybrid.EquationOnly, Cache: cache,
		EvalHook: func(_ context.Context, eval int) error {
			if eval <= 4 {
				return fmt.Errorf("injected warm-up rejection at eval %d", eval)
			}
			return nil
		},
	}
	cold, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.EvalsToFeasible <= 0 {
		t.Fatalf("cold run EvalsToFeasible = %d, hook should have delayed feasibility", cold.EvalsToFeasible)
	}
	warm, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Evals != 0 {
		t.Fatalf("warm run: hit=%v evals=%d", warm.CacheHit, warm.Evals)
	}
	if warm.EvalsToFeasible != cold.EvalsToFeasible {
		t.Fatalf("cache replay corrupted EvalsToFeasible: stored %d, replayed %d",
			cold.EvalsToFeasible, warm.EvalsToFeasible)
	}
}

// TestCacheDiskConcurrentSameKeyPut hammers one key with concurrent
// writers — the daemon's single-flight makes same-key writes unlikely
// but not impossible (CLI runs and the service can share a -cache-dir)
// — while fresh cache instances read the entry from disk. The
// write-sync-rename protocol must never let a reader observe a torn or
// missing entry once the first Put has landed.
func TestCacheDiskConcurrentSameKeyPut(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{
		Sizing:   opamp.MillerSizing{W1: 3e-6, IRef: 20e-6, CC: 1e-13},
		Feasible: true, Evals: 7, Cost: 0.25,
	}
	writer.Put("cafe", res)

	const writers, reads = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := *res
			r.Evals = 100 + w // distinct payloads, same key
			for i := 0; i < reads; i++ {
				writer.Put("cafe", &r)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reads; i++ {
			// A fresh instance per read forces the disk path (no memory
			// tier to hide a torn file behind).
			reader, err := NewCache(0, dir)
			if err != nil {
				errs <- err
				return
			}
			got, ok := reader.Get("cafe")
			if !ok {
				errs <- fmt.Errorf("read %d: entry missing mid-write", i)
				return
			}
			if got.Cost != res.Cost || !got.Feasible {
				errs <- fmt.Errorf("read %d: torn entry %+v", i, got)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// No temp droppings left behind once all writers are done.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}

	// The survivor under the final name must be exactly one complete
	// entry from one of the writers — write-sync-rename-syncdir ends
	// with a durable, whole file, never an interleaving.
	final, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := final.Get("cafe")
	if !ok {
		t.Fatal("entry missing after all writers finished")
	}
	valid := got.Evals == res.Evals
	for w := 0; w < writers; w++ {
		valid = valid || got.Evals == 100+w
	}
	if !valid || got.Cost != res.Cost || !got.Feasible {
		t.Fatalf("final entry %+v is not any writer's payload", got)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly one durable entry, found %v", entries)
	}
}
