package synth

import (
	"math/rand"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func lateStageSpec(t *testing.T) (stagespec.MDACSpec, *pdk.Process) {
	t.Helper()
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	return specs[1], pdk.TSMC025()
}

func TestSynthesizeFindsFeasible(t *testing.T) {
	spec, proc := lateStageSpec(t)
	res, err := Synthesize(spec, proc, Options{
		Seed: 1, MaxEvals: 120, PatternIter: 60, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible sizing found: %v", res.Report.Failures)
	}
	if res.Metrics.Power <= 0 {
		t.Fatalf("power = %g", res.Metrics.Power)
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestSynthesizeReducesPower(t *testing.T) {
	// The optimizer should not end up more expensive than a feasible
	// start whose cost it was told to minimize.
	spec, proc := lateStageSpec(t)
	s0 := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	ev := newEvaluator(spec, proc, hybrid.Hybrid, 10)
	start := ev.score(s0)
	res, err := Synthesize(spec, proc, Options{
		Seed: 3, MaxEvals: 150, PatternIter: 80, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > start.cost*1.001 {
		t.Fatalf("optimizer worsened cost: %g → %g", start.cost, res.Cost)
	}
}

func TestWarmStartUsesFewerEvals(t *testing.T) {
	// Retargeting: synthesize a stage, then re-synthesize a neighbouring
	// spec seeded with the first result. The warm run must reach a
	// feasible point with far fewer evaluations (the paper's
	// "2–3 weeks → 1 day" effect).
	spec, proc := lateStageSpec(t)
	cold, err := Synthesize(spec, proc, Options{
		Seed: 5, MaxEvals: 150, PatternIter: 60, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible {
		t.Skip("cold run infeasible; retarget comparison not meaningful")
	}
	// Neighbouring spec: the same stage retargeted to 20% more bandwidth.
	spec2 := spec
	spec2.GBWMin *= 1.2
	warm, err := Synthesize(spec2, proc, Options{
		Seed: 6, MaxEvals: 150, PatternIter: 60, Mode: hybrid.Hybrid,
		WarmStart: cold.Sizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Feasible {
		t.Fatalf("warm retarget infeasible: %v", warm.Report.Failures)
	}
	if warm.Evals >= cold.Evals {
		t.Fatalf("warm start spent %d evals, cold %d — retargeting saved nothing",
			warm.Evals, cold.Evals)
	}
}

func TestPerturbStaysInBounds(t *testing.T) {
	proc := pdk.TSMC025()
	rng := rand.New(rand.NewSource(9))
	var s opamp.Amp = opamp.MillerSizing{
		W1: 1e-6, L1: 0.5e-6, W3: 1e-6, L3: 0.5e-6, W5: 5e-6, L5: 0.35e-6,
		KTail: 4, K2: 8, IRef: 20e-6, CC: 0.3e-12, RZ: 500,
	}
	for i := 0; i < 500; i++ {
		s = perturb(rng, s, 1.0, proc)
		ms := s.(opamp.MillerSizing)
		if ms.W1 < proc.WMin || ms.W1 > proc.WMax || ms.L1 < proc.LMin || ms.L1 > proc.LMax {
			t.Fatalf("geometry escaped bounds: %+v", ms)
		}
		if ms.IRef <= 0 || ms.CC <= 0 || ms.RZ <= 0 {
			t.Fatalf("non-positive electricals: %+v", ms)
		}
	}
}

func TestEquationModeSynthesisIsCheap(t *testing.T) {
	// Equation-only synthesis must run a large budget quickly and still
	// produce a sane sizing (this is the speed end of the paper's
	// trade-off).
	spec, proc := lateStageSpec(t)
	res, err := Synthesize(spec, proc, Options{
		Seed: 11, MaxEvals: 2000, PatternIter: 400, Mode: hybrid.EquationOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power <= 0 || res.Metrics.Power > 50e-3 {
		t.Fatalf("equation-mode power = %g", res.Metrics.Power)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.MaxEvals != 400 || o.InitTemp != 2 || o.PatternIter != 120 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	warm := Options{WarmStart: opamp.MillerSizing{}}
	warm.defaults()
	if warm.MaxEvals >= 400 || warm.InitTemp >= 2 {
		t.Fatalf("warm-start defaults must shrink the schedule: %+v", warm)
	}
}

func TestSynthesizeTelescopicTopology(t *testing.T) {
	// The sizing engine is topology-generic: a relaxed late stage
	// synthesizes with the telescopic cascode through the full hybrid
	// flow (DC bias, Mason loop TF, transient settling).
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[3] // fourth stage: low gain requirement suits the telescopic
	proc := pdk.TSMC025()
	res, err := Synthesize(spec, proc, Options{
		Seed: 13, MaxEvals: 120, PatternIter: 60,
		Mode: hybrid.Hybrid, Topology: opamp.Telescopic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizing.Topology() != opamp.Telescopic {
		t.Fatalf("result topology = %s", res.Sizing.Topology())
	}
	if res.Metrics.Power <= 0 {
		t.Fatalf("power = %g", res.Metrics.Power)
	}
	if res.Metrics.AmpGain < 50 {
		t.Fatalf("telescopic gain %g implausibly low", res.Metrics.AmpGain)
	}
	if !res.Metrics.Settled {
		t.Fatalf("telescopic stage did not settle: %+v", res.Report.Failures)
	}
}
